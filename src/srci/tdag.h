#ifndef PRKB_SRCI_TDAG_H_
#define PRKB_SRCI_TDAG_H_

#include <cstdint>
#include <vector>

namespace prkb::srci {

/// TDAG (tree-based dyadic range structure with middle nodes) from
/// Demertzis et al., "Practical Private Range Search Revisited" (SIGMOD'16).
///
/// Over the domain [0, 2^L) it contains, per level ℓ:
///   - the dyadic nodes  [i·2^ℓ, (i+1)·2^ℓ), and (for ℓ ≥ 1)
///   - the middle nodes  [i·2^ℓ + 2^(ℓ-1), (i+1)·2^ℓ + 2^(ℓ-1)),
/// i.e. ranges of dyadic size shifted by half. The key property powering the
/// SRC ("single range cover") schemes: every range [a, b] is covered by ONE
/// node of size at most ~4·|range|, so a range query needs a single token.
///
/// Nodes are identified by a packed 64-bit id; the structure is implicit
/// (nothing is materialised).
class Tdag {
 public:
  /// Domain is [0, 2^levels). `levels` in [1, 56].
  explicit Tdag(int levels);

  /// Smallest number of levels covering `domain_size` values.
  static int LevelsFor(uint64_t domain_size);

  int levels() const { return levels_; }
  uint64_t domain_size() const { return uint64_t{1} << levels_; }

  /// All node ids whose range contains `v` (≈ 2·levels of them).
  std::vector<uint64_t> Cover(uint64_t v) const;

  /// The best (smallest) single node covering [a, b]; requires a <= b and
  /// b < domain_size().
  uint64_t BestCover(uint64_t a, uint64_t b) const;

  /// Range of a node id (for tests/diagnostics): [lo, hi] inclusive.
  void NodeRange(uint64_t id, uint64_t* lo, uint64_t* hi) const;

 private:
  static uint64_t PackId(int level, bool middle, uint64_t index) {
    return (static_cast<uint64_t>(level) << 57) |
           (static_cast<uint64_t>(middle) << 56) | index;
  }

  int levels_;
};

}  // namespace prkb::srci

#endif  // PRKB_SRCI_TDAG_H_
