#include "srci/sse_index.h"

#include <cassert>
#include <cstring>

#include "crypto/sha256.h"

namespace prkb::srci {
namespace {

crypto::Aes128::Key KdfKey(const std::vector<uint8_t>& master_key) {
  // Accept arbitrary master-key material by hashing it down to 128 bits.
  const auto digest = crypto::Sha256::Hash(master_key.data(),
                                           master_key.size());
  crypto::Aes128::Key key;
  std::memcpy(key.data(), digest.data(), key.size());
  return key;
}

}  // namespace

SseIndex::SseIndex(const std::vector<uint8_t>& master_key)
    : kdf_(KdfKey(master_key)) {}

SseIndex::Token SseIndex::MakeToken(uint64_t label) const {
  uint8_t block[16] = {0};
  std::memcpy(block, &label, 8);
  uint8_t out[16];
  kdf_.EncryptBlock(block, out);
  ++crypto_ops_;
  Token token;
  std::memcpy(token.key.data(), out, token.key.size());
  return token;
}

void SseIndex::Cell(const crypto::Aes128& aes, uint32_t i, uint64_t* addr,
                    uint64_t* pad) const {
  uint8_t in[16] = {0};
  std::memcpy(in, &i, 4);
  uint8_t out[16];
  aes.EncryptBlock(in, out);
  ++crypto_ops_;
  std::memcpy(addr, out, 8);
  std::memcpy(pad, out + 8, 8);
}

void SseIndex::Put(uint64_t label, uint64_t payload) {
  const Token token = MakeToken(label);
  uint64_t token_hash;
  std::memcpy(&token_hash, token.key.data(), 8);
  uint32_t& count = counts_[token_hash];
  const crypto::Aes128 aes(token.key);
  uint64_t addr, pad;
  Cell(aes, count, &addr, &pad);
  // Cross-label collisions in the 64-bit address space have probability
  // ~2^-20 even at billions of entries; they would corrupt retrieval, so
  // fail fast rather than mask them.
  const bool inserted = table_.emplace(addr, payload ^ pad).second;
  assert(inserted);
  (void)inserted;
  ++count;
}

std::vector<uint64_t> SseIndex::Retrieve(const Token& token) const {
  std::vector<uint64_t> out;
  const crypto::Aes128 aes(token.key);
  for (uint32_t i = 0;; ++i) {
    uint64_t addr, pad;
    Cell(aes, i, &addr, &pad);
    const auto it = table_.find(addr);
    if (it == table_.end()) break;
    out.push_back(it->second ^ pad);
  }
  return out;
}

}  // namespace prkb::srci
