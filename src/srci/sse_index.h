#ifndef PRKB_SRCI_SSE_INDEX_H_
#define PRKB_SRCI_SSE_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "crypto/cipher.h"

namespace prkb::srci {

/// Searchable symmetric encryption dictionary in the style of Cash et al.'s
/// Π_bas (the building block of the [12] constructions): postings of label ℓ
/// are stored at pseudo-random addresses
///     addr_i = AES_{K(ℓ)}(i).hi,   value_i = payload_i ⊕ AES_{K(ℓ)}(i).lo,
/// where the per-label key K(ℓ) = AES_master(ℓ) (an AES-based PRF). The
/// storage server (SP) sees only a flat table of (random-looking address →
/// masked payload) pairs; a per-label token lets it walk exactly that
/// label's postings.
///
/// Token derivation and payload masking are key-holder operations — in this
/// repository's deployment model they happen inside the trusted machine that
/// maintains the index (see LogSrcI).
class SseIndex {
 public:
  explicit SseIndex(const std::vector<uint8_t>& master_key);

  /// Search token for a label: one derived AES key.
  struct Token {
    crypto::Aes128::Key key;
  };

  Token MakeToken(uint64_t label) const;

  /// Pre-sizes the hash tables for a bulk load of ~`postings` entries under
  /// ~`labels` distinct labels (avoids rehash churn).
  void Reserve(size_t postings, size_t labels) {
    table_.reserve(postings);
    counts_.reserve(labels);
  }

  /// Appends one 64-bit posting under `label` (key-holder operation).
  void Put(uint64_t label, uint64_t payload);

  /// Returns all postings of the token's label, in insertion order.
  std::vector<uint64_t> Retrieve(const Token& token) const;

  /// Number of stored postings and the SP-side footprint in bytes.
  size_t entries() const { return table_.size(); }
  size_t SizeBytes() const {
    // Hash-table entry: address + masked payload + bucket overhead.
    return table_.size() * (sizeof(uint64_t) * 2 + sizeof(void*)) +
           counts_.size() * (sizeof(uint64_t) + sizeof(uint32_t));
  }

  /// Total AES block operations performed (cost accounting).
  uint64_t crypto_ops() const { return crypto_ops_; }

 private:
  /// addr/pad for posting i under an expanded per-label key.
  void Cell(const crypto::Aes128& aes, uint32_t i, uint64_t* addr,
            uint64_t* pad) const;

  crypto::Aes128 kdf_;                             // AES-PRF for K(ℓ)
  std::unordered_map<uint64_t, uint64_t> table_;   // addr -> masked payload
  std::unordered_map<uint64_t, uint32_t> counts_;  // token hash -> #postings
  mutable uint64_t crypto_ops_ = 0;
};

}  // namespace prkb::srci

#endif  // PRKB_SRCI_SSE_INDEX_H_
