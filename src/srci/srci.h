#ifndef PRKB_SRCI_SRCI_H_
#define PRKB_SRCI_SRCI_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "edbms/cipherbase_qpf.h"
#include "edbms/service_provider.h"
#include "srci/sse_index.h"
#include "srci/tdag.h"

namespace prkb::srci {

/// Re-implementation of "Logarithmic-SRC-i" from Demertzis et al.
/// (SIGMOD'16), the paper's state-of-the-art competitor (Sec. 8.2.1).
///
/// Two-level single-range-cover design:
///   - TDAG1 over the VALUE domain. Each node stores, SSE-encrypted, the
///     interval(s) of sorted-order positions of the values it covers.
///   - TDAG2 over the POSITION space [0, capacity). Each tuple is filed
///     under every TDAG2 node covering its position (O(lg n) postings).
/// A range query resolves one TDAG1 token (single cover) into position
/// intervals, then one TDAG2 token per interval; the retrieved tuple ids are
/// a superset of the answer, confirmed exactly by decrypt-and-compare inside
/// the trusted machine — mirroring the paper's setup, where DO-side work of
/// [12] is delegated to a TM "like Cipherbase" and confirmation uses the
/// same machinery as the QPF.
///
/// Index construction and maintenance are key-holder work (TM), matching the
/// paper's deployment. Insertions append fresh single-position fragments to
/// the covering TDAG1 nodes (the scheme is not natively dynamic; this is the
/// straightforward TM-side extension, and its cost profile — dozens of
/// crypto ops per insert — is what Table 4 measures).
class LogSrcI {
 public:
  /// `db` must outlive the index. The index serves range queries on `attr`
  /// with values in [domain_lo, domain_hi].
  LogSrcI(edbms::CipherbaseEdbms* db, edbms::AttrId attr,
          edbms::Value domain_lo, edbms::Value domain_hi);

  /// Bulk-builds from the current table contents (TM decrypts every cell).
  /// `capacity_factor` reserves position space for future inserts.
  Status Build(double capacity_factor = 4.0);

  /// Exact range selection 'lo <= X <= hi'.
  std::vector<edbms::TupleId> Query(edbms::Value lo, edbms::Value hi,
                                    edbms::SelectionStats* stats = nullptr);

  /// Conjunctive multi-attribute range: intersection of per-index queries is
  /// assembled by the caller (one LogSrcI per attribute); this helper returns
  /// the unconfirmed candidate set so the caller can intersect before the
  /// expensive confirmation.
  std::vector<edbms::TupleId> QueryCandidates(edbms::Value lo,
                                              edbms::Value hi);

  /// Confirms candidates exactly via the TM (shared by Query and the
  /// multi-attribute driver).
  std::vector<edbms::TupleId> Confirm(const std::vector<edbms::TupleId>& cand,
                                      edbms::Value lo, edbms::Value hi);

  /// Indexes a newly inserted tuple (db->Insert must have happened already).
  Status InsertTuple(edbms::TupleId tid);

  /// SP-side index footprint (Table 3).
  size_t SizeBytes() const { return sse1_.SizeBytes() + sse2_.SizeBytes(); }

  /// TM decrypt operations spent on confirmation + maintenance.
  uint64_t tm_decrypts() const;

 private:
  uint64_t ToDomain(edbms::Value v) const {
    return static_cast<uint64_t>(v - domain_lo_);
  }

  edbms::CipherbaseEdbms* db_;
  edbms::AttrId attr_;
  edbms::Value domain_lo_, domain_hi_;
  Tdag tdag1_;
  Tdag tdag2_{1};  // re-initialised by Build once capacity is known
  SseIndex sse1_;
  SseIndex sse2_;
  uint64_t next_pos_ = 0;
  uint64_t capacity_ = 0;
  bool built_ = false;
};

}  // namespace prkb::srci

#endif  // PRKB_SRCI_SRCI_H_
