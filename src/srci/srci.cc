#include "srci/srci.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/stopwatch.h"
#include "crypto/prf.h"

namespace prkb::srci {
namespace {

using edbms::TupleId;
using edbms::Value;

std::vector<uint8_t> SseKey(uint64_t master_seed, const char* label) {
  std::vector<uint8_t> seed(8);
  for (int i = 0; i < 8; ++i) seed[i] = static_cast<uint8_t>(master_seed >> (8 * i));
  crypto::Prf prf(seed);
  return prf.DeriveKey(label);
}

}  // namespace

LogSrcI::LogSrcI(edbms::CipherbaseEdbms* db, edbms::AttrId attr,
                 Value domain_lo, Value domain_hi)
    : db_(db),
      attr_(attr),
      domain_lo_(domain_lo),
      domain_hi_(domain_hi),
      tdag1_(Tdag::LevelsFor(static_cast<uint64_t>(domain_hi - domain_lo) +
                             1)),
      sse1_(SseKey(db->data_owner().master_seed(), "srci-sse1")),
      sse2_(SseKey(db->data_owner().master_seed(), "srci-sse2")) {}

uint64_t LogSrcI::tm_decrypts() const {
  return db_->trusted_machine().value_decrypts();
}

Status LogSrcI::Build(double capacity_factor) {
  if (built_) return Status::NotSupported("already built");
  auto& tm = db_->trusted_machine();
  const auto& table = db_->table();
  const size_t n = table.num_rows();

  // TM decrypts and sorts the column (key-holder work, counted).
  std::vector<std::pair<Value, TupleId>> sorted;
  sorted.reserve(n);
  for (TupleId tid = 0; tid < n; ++tid) {
    if (!table.IsLive(tid)) continue;
    sorted.emplace_back(tm.DecryptValue(table.at(attr_, tid)), tid);
  }
  std::sort(sorted.begin(), sorted.end());

  capacity_ = std::max<uint64_t>(
      16, static_cast<uint64_t>(static_cast<double>(sorted.size()) *
                                capacity_factor));
  tdag2_ = Tdag(Tdag::LevelsFor(capacity_));

  // Pre-size the SSE stores: every tuple files ~2·levels postings in TDAG2,
  // and TDAG1 holds two interval endpoints per populated node.
  sse2_.Reserve(sorted.size() * (2 * tdag2_.levels() + 1),
                sorted.size() * 4);
  sse1_.Reserve(sorted.size() * 4, sorted.size() * 2);

  // TDAG1: per covering node, the contiguous interval of sorted positions.
  std::unordered_map<uint64_t, std::pair<uint64_t, uint64_t>> intervals;
  intervals.reserve(sorted.size() * 2);
  for (uint64_t pos = 0; pos < sorted.size(); ++pos) {
    for (uint64_t node : tdag1_.Cover(ToDomain(sorted[pos].first))) {
      auto [it, inserted] = intervals.try_emplace(node, pos, pos);
      if (!inserted) it->second.second = pos;  // positions are sorted
    }
  }
  for (const auto& [node, iv] : intervals) {
    sse1_.Put(node, iv.first);
    sse1_.Put(node, iv.second);
  }

  // TDAG2: file each tuple under every node covering its position.
  for (uint64_t pos = 0; pos < sorted.size(); ++pos) {
    for (uint64_t node : tdag2_.Cover(pos)) {
      sse2_.Put(node, sorted[pos].second);
    }
  }
  next_pos_ = sorted.size();
  built_ = true;
  return Status::Ok();
}

std::vector<TupleId> LogSrcI::QueryCandidates(Value lo, Value hi) {
  if (!built_ || lo > hi) return {};
  const Value clo = std::max(lo, domain_lo_);
  const Value chi = std::min(hi, domain_hi_);
  if (clo > chi) return {};

  // Level 1: one token resolves the covering node's position intervals.
  const uint64_t node1 = tdag1_.BestCover(ToDomain(clo), ToDomain(chi));
  const auto raw = sse1_.Retrieve(sse1_.MakeToken(node1));

  std::vector<TupleId> cand;
  std::unordered_set<TupleId> seen;
  for (size_t i = 0; i + 1 < raw.size(); i += 2) {
    const uint64_t plo = raw[i];
    const uint64_t phi = raw[i + 1];
    if (plo > phi || phi >= capacity_) continue;  // defensive
    // Level 2: one token per interval.
    const uint64_t node2 = tdag2_.BestCover(plo, phi);
    for (uint64_t posting : sse2_.Retrieve(sse2_.MakeToken(node2))) {
      const auto tid = static_cast<TupleId>(posting);
      if (seen.insert(tid).second) cand.push_back(tid);
    }
  }
  return cand;
}

std::vector<TupleId> LogSrcI::Confirm(const std::vector<TupleId>& cand,
                                      Value lo, Value hi) {
  auto& tm = db_->trusted_machine();
  const auto& table = db_->table();
  std::vector<TupleId> out;
  for (TupleId tid : cand) {
    if (!table.IsLive(tid)) continue;
    const Value v = tm.DecryptValue(table.at(attr_, tid));
    if (lo <= v && v <= hi) out.push_back(tid);
  }
  return out;
}

std::vector<TupleId> LogSrcI::Query(Value lo, Value hi,
                                    edbms::SelectionStats* stats) {
  // SRC-i works through its index, not the QPF, so the scope's deltas come
  // out zero — but every stats field is (re)filled, matching the other
  // selection paths' reset semantics.
  edbms::StatsScope scope(db_, stats, "srci.query");
  return Confirm(QueryCandidates(lo, hi), lo, hi);
}

Status LogSrcI::InsertTuple(TupleId tid) {
  if (!built_) return Status::NotSupported("index not built");
  if (next_pos_ >= capacity_) {
    return Status::OutOfRange("position capacity exhausted; rebuild");
  }
  auto& tm = db_->trusted_machine();
  const Value v = tm.DecryptValue(db_->table().at(attr_, tid));
  const uint64_t pos = next_pos_++;

  // Fresh single-position fragment for every TDAG1 node covering the value.
  for (uint64_t node : tdag1_.Cover(ToDomain(v))) {
    sse1_.Put(node, pos);
    sse1_.Put(node, pos);
  }
  // File the tuple in TDAG2 under its new position.
  for (uint64_t node : tdag2_.Cover(pos)) {
    sse2_.Put(node, tid);
  }
  return Status::Ok();
}

}  // namespace prkb::srci
