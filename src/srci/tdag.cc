#include "srci/tdag.h"

#include <cassert>

namespace prkb::srci {

Tdag::Tdag(int levels) : levels_(levels) {
  assert(levels >= 1 && levels <= 56);
}

int Tdag::LevelsFor(uint64_t domain_size) {
  int levels = 1;
  while ((uint64_t{1} << levels) < domain_size) ++levels;
  return levels;
}

std::vector<uint64_t> Tdag::Cover(uint64_t v) const {
  assert(v < domain_size());
  std::vector<uint64_t> out;
  out.reserve(2 * levels_ + 1);
  for (int l = 0; l <= levels_; ++l) {
    out.push_back(PackId(l, false, v >> l));
    if (l >= 1) {
      const uint64_t half = uint64_t{1} << (l - 1);
      if (v >= half) out.push_back(PackId(l, true, (v - half) >> l));
    }
  }
  return out;
}

uint64_t Tdag::BestCover(uint64_t a, uint64_t b) const {
  assert(a <= b && b < domain_size());
  for (int l = 0; l <= levels_; ++l) {
    if ((a >> l) == (b >> l)) return PackId(l, false, a >> l);
    if (l >= 1) {
      const uint64_t half = uint64_t{1} << (l - 1);
      if (a >= half && ((a - half) >> l) == ((b - half) >> l)) {
        return PackId(l, true, (a - half) >> l);
      }
    }
  }
  // Unreachable: the root covers everything.
  return PackId(levels_, false, 0);
}

void Tdag::NodeRange(uint64_t id, uint64_t* lo, uint64_t* hi) const {
  const int level = static_cast<int>(id >> 57);
  const bool middle = ((id >> 56) & 1) != 0;
  const uint64_t index = id & ((uint64_t{1} << 56) - 1);
  const uint64_t size = uint64_t{1} << level;
  const uint64_t shift = middle ? size / 2 : 0;
  *lo = index * size + shift;
  *hi = *lo + size - 1;
}

}  // namespace prkb::srci
