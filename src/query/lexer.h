#ifndef PRKB_QUERY_LEXER_H_
#define PRKB_QUERY_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace prkb::query {

/// Token of the SQL subset. Keywords are case-insensitive and normalised to
/// upper case; identifiers keep their spelling.
struct Token {
  enum class Kind {
    kKeyword,     // SELECT FROM WHERE AND BETWEEN
    kIdentifier,  // table / column names
    kNumber,      // optionally signed integer literal
    kOperator,    // < > <= >= =
    kStar,        // *
    kEnd,
  };
  Kind kind = Kind::kEnd;
  std::string text;
  int64_t number = 0;
};

/// Splits `sql` into tokens; rejects unknown characters and malformed
/// numbers. The result always ends with a kEnd token.
Result<std::vector<Token>> Lex(const std::string& sql);

}  // namespace prkb::query

#endif  // PRKB_QUERY_LEXER_H_
