#include "query/parser.h"

#include "query/lexer.h"

namespace prkb::query {
namespace {

class TokenStream {
 public:
  explicit TokenStream(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}

  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Next() { return tokens_[pos_++]; }

  bool ConsumeKeyword(const std::string& kw) {
    if (Peek().kind == Token::Kind::kKeyword && Peek().text == kw) {
      ++pos_;
      return true;
    }
    return false;
  }

 private:
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

Result<Condition> ParseCondition(TokenStream* ts) {
  if (ts->Peek().kind != Token::Kind::kIdentifier) {
    return Status::InvalidArgument("expected column name in WHERE");
  }
  Condition cond;
  cond.column = ts->Next().text;

  if (ts->ConsumeKeyword("BETWEEN")) {
    cond.kind = Condition::Kind::kBetween;
    if (ts->Peek().kind != Token::Kind::kNumber) {
      return Status::InvalidArgument("expected lower bound after BETWEEN");
    }
    cond.lo = ts->Next().number;
    if (!ts->ConsumeKeyword("AND")) {
      return Status::InvalidArgument("expected AND inside BETWEEN");
    }
    if (ts->Peek().kind != Token::Kind::kNumber) {
      return Status::InvalidArgument("expected upper bound after AND");
    }
    cond.hi = ts->Next().number;
    if (cond.lo > cond.hi) {
      return Status::InvalidArgument("BETWEEN bounds out of order");
    }
    return cond;
  }

  if (ts->Peek().kind != Token::Kind::kOperator) {
    return Status::InvalidArgument("expected comparison operator");
  }
  const std::string op = ts->Next().text;
  if (op == "<") {
    cond.op = edbms::CompareOp::kLt;
  } else if (op == ">") {
    cond.op = edbms::CompareOp::kGt;
  } else if (op == "<=") {
    cond.op = edbms::CompareOp::kLe;
  } else if (op == ">=") {
    cond.op = edbms::CompareOp::kGe;
  } else {
    return Status::InvalidArgument("unsupported operator '" + op + "'");
  }
  if (ts->Peek().kind != Token::Kind::kNumber) {
    return Status::InvalidArgument("expected integer literal after operator");
  }
  cond.lo = ts->Next().number;
  return cond;
}

}  // namespace

Result<SelectStatement> Parse(const std::string& sql) {
  PRKB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(sql));
  TokenStream ts(std::move(tokens));

  SelectStatement stmt;
  stmt.explain = ts.ConsumeKeyword("EXPLAIN");
  if (!ts.ConsumeKeyword("SELECT")) {
    return Status::InvalidArgument("expected SELECT");
  }
  if (ts.Peek().kind != Token::Kind::kStar) {
    return Status::InvalidArgument("only SELECT * is supported");
  }
  ts.Next();
  if (!ts.ConsumeKeyword("FROM")) {
    return Status::InvalidArgument("expected FROM");
  }
  if (ts.Peek().kind != Token::Kind::kIdentifier) {
    return Status::InvalidArgument("expected table name");
  }
  stmt.table = ts.Next().text;

  if (ts.Peek().kind == Token::Kind::kEnd) return stmt;
  if (!ts.ConsumeKeyword("WHERE")) {
    return Status::InvalidArgument("expected WHERE or end of statement");
  }
  while (true) {
    PRKB_ASSIGN_OR_RETURN(Condition cond, ParseCondition(&ts));
    stmt.conditions.push_back(cond);
    if (ts.ConsumeKeyword("AND")) continue;
    break;
  }
  if (ts.Peek().kind != Token::Kind::kEnd) {
    return Status::InvalidArgument("trailing tokens after WHERE clause");
  }
  return stmt;
}

}  // namespace prkb::query
