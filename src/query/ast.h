#ifndef PRKB_QUERY_AST_H_
#define PRKB_QUERY_AST_H_

#include <string>
#include <vector>

#include "edbms/types.h"

namespace prkb::query {

/// One WHERE conjunct of the supported SQL subset.
struct Condition {
  enum class Kind { kComparison, kBetween };
  Kind kind = Kind::kComparison;
  std::string column;
  edbms::CompareOp op = edbms::CompareOp::kLt;  // comparison only
  edbms::Value lo = 0;  // comparison constant, or BETWEEN lower bound
  edbms::Value hi = 0;  // BETWEEN upper bound (inclusive)
};

/// `[EXPLAIN] SELECT * FROM <table> [WHERE cond AND cond AND ...]`.
struct SelectStatement {
  std::string table;
  std::vector<Condition> conditions;
  /// EXPLAIN prefix: plan and cost the statement without executing it.
  bool explain = false;
};

}  // namespace prkb::query

#endif  // PRKB_QUERY_AST_H_
