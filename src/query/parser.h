#ifndef PRKB_QUERY_PARSER_H_
#define PRKB_QUERY_PARSER_H_

#include <string>

#include "common/result.h"
#include "query/ast.h"

namespace prkb::query {

/// Parses the supported subset:
///   SELECT * FROM <table> [WHERE <cond> (AND <cond>)*] [;]
///   <cond> := <column> (< | > | <= | >=) <int>
///           | <column> BETWEEN <int> AND <int>
/// Anything else yields InvalidArgument with a position-free message.
Result<SelectStatement> Parse(const std::string& sql);

}  // namespace prkb::query

#endif  // PRKB_QUERY_PARSER_H_
