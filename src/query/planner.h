#ifndef PRKB_QUERY_PLANNER_H_
#define PRKB_QUERY_PLANNER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "exec/alt_route.h"
#include "exec/plan.h"
#include "prkb/selection.h"
#include "query/ast.h"

namespace prkb::query {

/// Name → attribute-id mapping for one table.
class Catalog {
 public:
  void RegisterTable(const std::string& table,
                     const std::vector<std::string>& columns);
  Result<edbms::AttrId> ResolveColumn(const std::string& table,
                                      const std::string& column) const;
  bool HasTable(const std::string& table) const {
    return tables_.contains(table);
  }

 private:
  std::unordered_map<std::string,
                     std::unordered_map<std::string, edbms::AttrId>>
      tables_;
};

/// Execution outcome: the rows plus the physical plan that produced them.
/// Move-only (the plan owns its trapdoors).
struct ExecutionResult {
  std::vector<edbms::TupleId> rows;
  edbms::SelectionStats stats;
  /// One-line route summary, e.g. "prkb-md(4 trapdoors)" (== physical.summary).
  std::string plan;
  /// The chosen physical plan: per-operator cost estimates and, once
  /// executed, per-operator actual QPF costs.
  exec::Plan physical;
  /// True for `EXPLAIN SELECT ...`: the plan was built and costed but not
  /// executed — `rows` is empty and `stats` is all zeroes.
  bool explain_only = false;

  /// Rendered plan tree (estimates, plus actuals after execution).
  std::string Explain() const { return physical.Render(); }
};

/// Cost-based planner. Compiles the WHERE conjuncts into trapdoors (the DO
/// role), then — per attribute — collapses same-attribute predicates into a
/// single interval (a BETWEEN, a one-sided comparison, or a provably-empty
/// contradiction), enumerates the applicable physical routes:
///   - no predicate       → full table, zero QPF;
///   - one predicate      → single-predicate processing (Sec. 5 / App. A);
///   - comparisons only   → PRKB(MD) grid processing (Sec. 6.2) candidate;
///   - always             → per-predicate processing + intersection (SD+);
/// and picks the route with the lowest estimated QPF cost
/// (docs/COST_MODEL.md; ties prefer MD, matching the paper's Sec. 6
/// preference). A predicate that appears exactly once is passed through
/// verbatim, so single-condition statements keep the legacy trapdoors,
/// routes and byte-identical QPF behaviour.
class Planner {
 public:
  Planner(const Catalog* catalog, edbms::Edbms* db, core::PrkbIndex* index)
      : catalog_(catalog), db_(db), index_(index) {}

  /// Parses and executes `sql` against `table_name`'s schema.
  Result<ExecutionResult> ExecuteSql(const std::string& sql);

  /// Executes an already-parsed statement.
  Result<ExecutionResult> Execute(const SelectStatement& stmt);

  /// Registers an alternative single-attribute route (SRC-i, OPE) as a
  /// costed competitor on the single-predicate path. The route must outlive
  /// the planner and every plan it wins. With no routes registered the
  /// planner's output and behaviour are exactly the classic PRKB ones.
  ///
  /// Arbitration (docs/COST_MODEL.md): every admissible competitor is priced
  /// under the same calibrated constants, multiplied by the calibrator's
  /// per-route penalty — an EWMA of past actual/estimate ratios — so a route
  /// whose actuals keep losing to the runner-up's estimate is demoted until
  /// its estimates earn trust back (cal.route.{wins,losses,regret_ns}).
  void RegisterAltRoute(exec::AltRoute* route) {
    alt_routes_.push_back(route);
  }

 private:
  const Catalog* catalog_;
  edbms::Edbms* db_;
  core::PrkbIndex* index_;
  std::vector<exec::AltRoute*> alt_routes_;
};

}  // namespace prkb::query

#endif  // PRKB_QUERY_PLANNER_H_
