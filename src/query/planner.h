#ifndef PRKB_QUERY_PLANNER_H_
#define PRKB_QUERY_PLANNER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "prkb/selection.h"
#include "query/ast.h"

namespace prkb::query {

/// Name → attribute-id mapping for one table.
class Catalog {
 public:
  void RegisterTable(const std::string& table,
                     const std::vector<std::string>& columns);
  Result<edbms::AttrId> ResolveColumn(const std::string& table,
                                      const std::string& column) const;
  bool HasTable(const std::string& table) const {
    return tables_.contains(table);
  }

 private:
  std::unordered_map<std::string,
                     std::unordered_map<std::string, edbms::AttrId>>
      tables_;
};

/// Execution outcome: the rows plus how the statement was processed.
struct ExecutionResult {
  std::vector<edbms::TupleId> rows;
  edbms::SelectionStats stats;
  std::string plan;  // human-readable route, e.g. "prkb-md(4 trapdoors)"
};

/// Routes parsed statements to the cheapest PRKB path:
///   - no condition      → all live tuples, zero QPF;
///   - one condition     → single-predicate processing (Sec. 5 / App. A);
///   - comparisons only  → PRKB(MD) grid processing (Sec. 6.2);
///   - mixed kinds       → per-predicate processing + intersection (SD+).
/// Conceptually the planner spans both parties: the DO compiles plaintext
/// conditions into trapdoors, the SP executes them against the PRKB.
class Planner {
 public:
  Planner(const Catalog* catalog, edbms::Edbms* db, core::PrkbIndex* index)
      : catalog_(catalog), db_(db), index_(index) {}

  /// Parses and executes `sql` against `table_name`'s schema.
  Result<ExecutionResult> ExecuteSql(const std::string& sql);

  /// Executes an already-parsed statement.
  Result<ExecutionResult> Execute(const SelectStatement& stmt);

 private:
  const Catalog* catalog_;
  edbms::Edbms* db_;
  core::PrkbIndex* index_;
};

}  // namespace prkb::query

#endif  // PRKB_QUERY_PLANNER_H_
