#ifndef PRKB_QUERY_ALT_ROUTES_H_
#define PRKB_QUERY_ALT_ROUTES_H_

#include <cstdint>
#include <vector>

#include "edbms/cipherbase_qpf.h"
#include "edbms/ope.h"
#include "exec/alt_route.h"
#include "srci/srci.h"

namespace prkb::query {

/// Logarithmic-SRC-i (src/srci/) as a costed planner alternative. Strong
/// where PRKB is weak: a narrow range touches O(sel·n) candidates regardless
/// of how young the chain is, while PRKB's first queries pay near-full
/// scans. Weak where PRKB is strong: confirmation decrypts each candidate
/// with a scalar (unbatchable) TM entry, so every candidate pays a full
/// round trip — at remote latencies wide ranges are ruinous.
class SrciRoute : public exec::AltRoute {
 public:
  /// `db` must outlive the route; the index covers `attr` over the inclusive
  /// value domain [domain_lo, domain_hi].
  SrciRoute(edbms::CipherbaseEdbms* db, edbms::AttrId attr,
            edbms::Value domain_lo, edbms::Value domain_hi);

  /// Bulk-builds the underlying index from the current table (TM decrypts
  /// the whole column). Execute() calls this lazily on first use, but
  /// callers should pre-build while TM latency is cheap — the build is n
  /// scalar TM entries.
  Status EnsureBuilt();

  const char* name() const override { return "srci"; }
  /// False for other attributes, after a failed build, and once the table
  /// has grown past the build-time snapshot (the index is not maintained
  /// here — stale answers would break winner-set identity).
  bool Handles(edbms::AttrId attr) const override;
  bool Admissible() const override { return true; }
  exec::CostEstimate Estimate(edbms::AttrId attr, edbms::Value lo,
                              edbms::Value hi,
                              const exec::CostConstants& c) const override;
  std::vector<edbms::TupleId> Execute(edbms::AttrId attr, edbms::Value lo,
                                      edbms::Value hi,
                                      edbms::SelectionStats* stats,
                                      exec::AltActuals* actuals) override;

 private:
  edbms::CipherbaseEdbms* db_;
  edbms::AttrId attr_;
  edbms::Value domain_lo_, domain_hi_;
  srci::LogSrcI srci_;
  bool built_ = false;
  bool broken_ = false;
  size_t built_rows_ = 0;
};

/// Order-preserving encoding (src/edbms/ope.*) as a costed planner
/// alternative: the SP compares codes like plaintext, so a range is one
/// cache-friendly scan with zero TM round trips — by far the cheapest price
/// in every EXPLAIN. It is rendered precisely to make that temptation
/// visible, but ships inadmissible by default: the codes publish the total
/// order before a single query runs (RPOI = 100%, see attack_test.cc), which
/// is outside the leakage budget PRKB exists to protect.
class OpeRoute : public exec::AltRoute {
 public:
  /// `plain_column` is the DO-side plaintext of `attr` (the DO builds the
  /// code dictionary; the SP never sees plaintext). `db` must outlive the
  /// route and is used only for liveness filtering.
  OpeRoute(edbms::CipherbaseEdbms* db, edbms::AttrId attr,
           std::vector<edbms::Value> plain_column, uint64_t key,
           bool admissible = false);

  const char* name() const override { return "ope"; }
  bool Handles(edbms::AttrId attr) const override;
  bool Admissible() const override { return admissible_; }
  exec::CostEstimate Estimate(edbms::AttrId attr, edbms::Value lo,
                              edbms::Value hi,
                              const exec::CostConstants& c) const override;
  std::vector<edbms::TupleId> Execute(edbms::AttrId attr, edbms::Value lo,
                                      edbms::Value hi,
                                      edbms::SelectionStats* stats,
                                      exec::AltActuals* actuals) override;

 private:
  edbms::CipherbaseEdbms* db_;
  edbms::AttrId attr_;
  std::vector<edbms::Value> column_;
  uint64_t key_;
  bool admissible_;
  edbms::OpeColumn codes_;
  bool built_ = false;
};

}  // namespace prkb::query

#endif  // PRKB_QUERY_ALT_ROUTES_H_
