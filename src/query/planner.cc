#include "query/planner.h"

#include <limits>
#include <utility>

#include "exec/executor.h"
#include "prkb/selection.h"
#include "query/parser.h"

namespace prkb::query {

using edbms::Trapdoor;
using edbms::TupleId;
using edbms::Value;

void Catalog::RegisterTable(const std::string& table,
                            const std::vector<std::string>& columns) {
  auto& cols = tables_[table];
  for (size_t i = 0; i < columns.size(); ++i) {
    cols[columns[i]] = static_cast<edbms::AttrId>(i);
  }
}

Result<edbms::AttrId> Catalog::ResolveColumn(const std::string& table,
                                             const std::string& column) const {
  const auto t = tables_.find(table);
  if (t == tables_.end()) {
    return Status::NotFound("unknown table '" + table + "'");
  }
  const auto c = t->second.find(column);
  if (c == t->second.end()) {
    return Status::NotFound("unknown column '" + column + "'");
  }
  return c->second;
}

Result<ExecutionResult> Planner::ExecuteSql(const std::string& sql) {
  PRKB_ASSIGN_OR_RETURN(SelectStatement stmt, Parse(sql));
  return Execute(stmt);
}

namespace {

/// All conditions of one attribute, in first-appearance order.
struct AttrGroup {
  edbms::AttrId attr = 0;
  std::string column;
  std::vector<Condition> conds;
};

/// One predicate of the collapsed conjunction: what to compile into a
/// trapdoor plus its plaintext rendering for EXPLAIN.
struct CollapsedPred {
  edbms::AttrId attr = 0;
  Condition cond;
  std::string detail;
};

const char* OpText(edbms::CompareOp op) {
  switch (op) {
    case edbms::CompareOp::kLt:
      return "<";
    case edbms::CompareOp::kGt:
      return ">";
    case edbms::CompareOp::kLe:
      return "<=";
    case edbms::CompareOp::kGe:
      return ">=";
  }
  return "?";
}

std::string Describe(const std::string& column, const Condition& cond) {
  if (cond.kind == Condition::Kind::kBetween) {
    return column + " BETWEEN " + std::to_string(cond.lo) + " AND " +
           std::to_string(cond.hi);
  }
  return column + " " + OpText(cond.op) + " " + std::to_string(cond.lo);
}

/// Collapses ≥2 same-attribute conditions into one interval. Returns false
/// on a provable contradiction (empty interval). The bounds are inclusive;
/// strict comparisons tighten by one with care at the domain extremes.
bool CollapseGroup(const AttrGroup& group, CollapsedPred* out) {
  constexpr Value kMin = std::numeric_limits<Value>::min();
  constexpr Value kMax = std::numeric_limits<Value>::max();
  bool has_lo = false;
  bool has_hi = false;
  Value lo = kMin;
  Value hi = kMax;
  for (const Condition& cond : group.conds) {
    if (cond.kind == Condition::Kind::kBetween) {
      if (!has_lo || cond.lo > lo) lo = cond.lo;
      if (!has_hi || cond.hi < hi) hi = cond.hi;
      has_lo = has_hi = true;
      continue;
    }
    switch (cond.op) {
      case edbms::CompareOp::kLt:
        if (cond.lo == kMin) return false;  // x < MIN: empty
        if (!has_hi || cond.lo - 1 < hi) hi = cond.lo - 1;
        has_hi = true;
        break;
      case edbms::CompareOp::kLe:
        if (!has_hi || cond.lo < hi) hi = cond.lo;
        has_hi = true;
        break;
      case edbms::CompareOp::kGt:
        if (cond.lo == kMax) return false;  // x > MAX: empty
        if (!has_lo || cond.lo + 1 > lo) lo = cond.lo + 1;
        has_lo = true;
        break;
      case edbms::CompareOp::kGe:
        if (!has_lo || cond.lo > lo) lo = cond.lo;
        has_lo = true;
        break;
    }
  }
  if (has_lo && has_hi && lo > hi) return false;

  out->attr = group.attr;
  if (has_lo && has_hi) {
    out->cond.kind = Condition::Kind::kBetween;
    out->cond.lo = lo;
    out->cond.hi = hi;
  } else {
    out->cond.kind = Condition::Kind::kComparison;
    out->cond.op = has_hi ? edbms::CompareOp::kLe : edbms::CompareOp::kGe;
    out->cond.lo = has_hi ? hi : lo;
  }
  out->detail = Describe(group.column, out->cond) + " (collapsed " +
                std::to_string(group.conds.size()) + " conjuncts)";
  return true;
}

/// Scheduler fanouts worth trying for one route. Without a transport-latency
/// hint the ranking is pure QPF uses, which m only inflates — keep the index
/// default (0). With a hint, search the calibrated grid and let PriceNs
/// trade probe inflation against trip savings per route.
std::vector<size_t> CandidateFanouts(const core::PrkbOptions& options) {
  if (options.sequential_probes || options.rt_latency_hint_ns <= 0.0) {
    return {0};
  }
  return {2, 4, 8, 16};
}

using BuildFn = void (*)(const core::PrkbIndex&, exec::Plan*, bool);

/// Builds `build`'s route once per candidate m and keeps the cheapest by
/// PriceNs. The winning plan carries its m in Plan::probe_fanout, which the
/// executor threads into the probe scheduler.
exec::Plan BuildBestPlan(const core::PrkbIndex& index,
                         const std::vector<Trapdoor>& tds, BuildFn build) {
  exec::Plan best;
  double best_price = std::numeric_limits<double>::infinity();
  for (size_t m : CandidateFanouts(index.options())) {
    exec::Plan plan;
    std::vector<Trapdoor> copy = tds;
    plan.AdoptTrapdoors(std::move(copy));
    plan.probe_fanout = m;
    build(index, &plan, /*estimate=*/true);
    const double price = exec::PriceNs(plan.root.estimated,
                                       exec::ConstantsFor(index.options(), m));
    if (price < best_price) {
      best_price = price;
      best = std::move(plan);
    }
  }
  return best;
}

/// The winning plan's wall-clock price, for cross-route comparison.
double PlanPrice(const core::PrkbIndex& index, const exec::Plan& plan) {
  return exec::PriceNs(plan.root.estimated,
                       exec::ConstantsFor(index.options(), plan.probe_fanout));
}

void AttachDetail(exec::PlanNode* node, const std::string& desc) {
  node->detail = node->detail.empty() ? desc : desc + "; " + node->detail;
}

/// Writes each predicate's plaintext onto its plan node: the root for a
/// single-predicate plan, the per-predicate children for SD+ and MD roots.
void AnnotatePlan(exec::Plan* plan, const std::vector<CollapsedPred>& preds) {
  if (plan->root.td_index >= 0) {
    AttachDetail(&plan->root, preds[0].detail);
    return;
  }
  for (exec::PlanNode& child : plan->root.children) {
    if (child.td_index >= 0) {
      AttachDetail(&child, preds[static_cast<size_t>(child.td_index)].detail);
    }
  }
}

}  // namespace

Result<ExecutionResult> Planner::Execute(const SelectStatement& stmt) {
  if (!catalog_->HasTable(stmt.table)) {
    return Status::NotFound("unknown table '" + stmt.table + "'");
  }

  // Group the conjuncts by attribute (first-appearance order).
  std::vector<AttrGroup> groups;
  for (const Condition& cond : stmt.conditions) {
    PRKB_ASSIGN_OR_RETURN(edbms::AttrId attr,
                          catalog_->ResolveColumn(stmt.table, cond.column));
    AttrGroup* group = nullptr;
    for (AttrGroup& g : groups) {
      if (g.attr == attr) {
        group = &g;
        break;
      }
    }
    if (group == nullptr) {
      groups.push_back(AttrGroup{attr, cond.column, {}});
      group = &groups.back();
    }
    group->conds.push_back(cond);
  }

  // Collapse each attribute's conditions. A lone condition passes through
  // verbatim (identical trapdoor bytes → identical fast-path fingerprints);
  // two or more become one interval or a provable contradiction.
  bool contradiction = false;
  std::vector<CollapsedPred> preds;
  preds.reserve(groups.size());
  for (const AttrGroup& group : groups) {
    CollapsedPred pred;
    if (group.conds.size() == 1) {
      pred.attr = group.attr;
      pred.cond = group.conds[0];
      pred.detail = Describe(group.column, pred.cond);
    } else if (!CollapseGroup(group, &pred)) {
      contradiction = true;
      break;
    }
    preds.push_back(std::move(pred));
  }

  ExecutionResult out;
  out.explain_only = stmt.explain;
  const auto finish = [&]() -> Result<ExecutionResult> {
    out.plan = out.physical.summary;
    if (!stmt.explain) {
      out.rows = exec::Executor(index_).Run(&out.physical, &out.stats);
      // A remote QPF backend that died mid-query answers remaining probes
      // fail-closed (all-false), which would read as an empty result.
      // Surface the transport failure as the query's status instead.
      PRKB_RETURN_IF_ERROR(db_->Health());
    }
    return std::move(out);
  };

  if (contradiction) {
    exec::BuildEmptyPlan(&out.physical);
    return finish();
  }
  if (preds.empty()) {
    exec::BuildFullTablePlan(&out.physical);
    return finish();
  }

  // DO role: compile the collapsed predicates into trapdoors.
  std::vector<Trapdoor> tds;
  tds.reserve(preds.size());
  bool md_capable = true;
  for (const CollapsedPred& pred : preds) {
    if (pred.cond.kind == Condition::Kind::kBetween) {
      tds.push_back(db_->MakeBetween(pred.attr, pred.cond.lo, pred.cond.hi));
      md_capable = false;
    } else {
      tds.push_back(db_->MakeComparison(pred.attr, pred.cond.op, pred.cond.lo));
    }
    if (!index_->IsEnabled(pred.attr)) md_capable = false;
  }

  if (tds.size() == 1) {
    out.physical = BuildBestPlan(*index_, tds, exec::BuildSingleSelectPlan);
    AnnotatePlan(&out.physical, preds);
    return finish();
  }

  // SP role: enumerate the multi-predicate routes (each already carrying its
  // best scheduler m) and keep the cheapest by PriceNs — with no latency
  // hint this degenerates to the paper's pure QPF-use ranking. SD+ always
  // applies; the MD grid additionally requires comparisons-only over enabled
  // attributes. Ties go to MD (Sec. 6).
  exec::Plan sd_plan = BuildBestPlan(*index_, tds, exec::BuildSdPlusPlan);
  if (md_capable) {
    exec::Plan md_plan = BuildBestPlan(*index_, tds, exec::BuildMdGridPlan);
    out.physical = PlanPrice(*index_, md_plan) <= PlanPrice(*index_, sd_plan)
                       ? std::move(md_plan)
                       : std::move(sd_plan);
  } else {
    out.physical = std::move(sd_plan);
  }
  AnnotatePlan(&out.physical, preds);
  return finish();
}

}  // namespace prkb::query
