#include "query/planner.h"

#include "query/parser.h"

namespace prkb::query {

using edbms::Trapdoor;
using edbms::TupleId;

void Catalog::RegisterTable(const std::string& table,
                            const std::vector<std::string>& columns) {
  auto& cols = tables_[table];
  for (size_t i = 0; i < columns.size(); ++i) {
    cols[columns[i]] = static_cast<edbms::AttrId>(i);
  }
}

Result<edbms::AttrId> Catalog::ResolveColumn(const std::string& table,
                                             const std::string& column) const {
  const auto t = tables_.find(table);
  if (t == tables_.end()) {
    return Status::NotFound("unknown table '" + table + "'");
  }
  const auto c = t->second.find(column);
  if (c == t->second.end()) {
    return Status::NotFound("unknown column '" + column + "'");
  }
  return c->second;
}

Result<ExecutionResult> Planner::ExecuteSql(const std::string& sql) {
  PRKB_ASSIGN_OR_RETURN(SelectStatement stmt, Parse(sql));
  return Execute(stmt);
}

Result<ExecutionResult> Planner::Execute(const SelectStatement& stmt) {
  if (!catalog_->HasTable(stmt.table)) {
    return Status::NotFound("unknown table '" + stmt.table + "'");
  }

  // DO role: compile conditions into trapdoors.
  std::vector<Trapdoor> trapdoors;
  bool all_comparisons = true;
  for (const Condition& cond : stmt.conditions) {
    PRKB_ASSIGN_OR_RETURN(edbms::AttrId attr,
                          catalog_->ResolveColumn(stmt.table, cond.column));
    if (cond.kind == Condition::Kind::kBetween) {
      trapdoors.push_back(db_->MakeBetween(attr, cond.lo, cond.hi));
      all_comparisons = false;
    } else {
      trapdoors.push_back(db_->MakeComparison(attr, cond.op, cond.lo));
    }
  }

  // SP role: route.
  ExecutionResult out;
  if (trapdoors.empty()) {
    for (TupleId tid = 0; tid < db_->num_rows(); ++tid) {
      if (db_->IsLive(tid)) out.rows.push_back(tid);
    }
    out.plan = "full-table(no predicate)";
    return out;
  }
  if (trapdoors.size() == 1) {
    out.rows = index_->Select(trapdoors[0], &out.stats);
    out.plan = trapdoors[0].kind == edbms::PredicateKind::kBetween
                   ? "prkb-between"
                   : "prkb-sd";
    return out;
  }
  if (all_comparisons) {
    out.rows = index_->SelectRangeMd(trapdoors, &out.stats);
    out.plan = "prkb-md(" + std::to_string(trapdoors.size()) + " trapdoors)";
    return out;
  }
  out.rows = index_->SelectRangeSdPlus(trapdoors, &out.stats);
  out.plan =
      "prkb-sd+(" + std::to_string(trapdoors.size()) + " trapdoors)";
  return out;
}

}  // namespace prkb::query
