#include "query/planner.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "exec/executor.h"
#include "obs/trace.h"
#include "prkb/selection.h"
#include "query/parser.h"

namespace prkb::query {

using edbms::Trapdoor;
using edbms::TupleId;
using edbms::Value;

void Catalog::RegisterTable(const std::string& table,
                            const std::vector<std::string>& columns) {
  auto& cols = tables_[table];
  for (size_t i = 0; i < columns.size(); ++i) {
    cols[columns[i]] = static_cast<edbms::AttrId>(i);
  }
}

Result<edbms::AttrId> Catalog::ResolveColumn(const std::string& table,
                                             const std::string& column) const {
  const auto t = tables_.find(table);
  if (t == tables_.end()) {
    return Status::NotFound("unknown table '" + table + "'");
  }
  const auto c = t->second.find(column);
  if (c == t->second.end()) {
    return Status::NotFound("unknown column '" + column + "'");
  }
  return c->second;
}

Result<ExecutionResult> Planner::ExecuteSql(const std::string& sql) {
  PRKB_ASSIGN_OR_RETURN(SelectStatement stmt, Parse(sql));
  return Execute(stmt);
}

namespace {

/// All conditions of one attribute, in first-appearance order.
struct AttrGroup {
  edbms::AttrId attr = 0;
  std::string column;
  std::vector<Condition> conds;
};

/// One predicate of the collapsed conjunction: what to compile into a
/// trapdoor plus its plaintext rendering for EXPLAIN.
struct CollapsedPred {
  edbms::AttrId attr = 0;
  Condition cond;
  std::string detail;
};

const char* OpText(edbms::CompareOp op) {
  switch (op) {
    case edbms::CompareOp::kLt:
      return "<";
    case edbms::CompareOp::kGt:
      return ">";
    case edbms::CompareOp::kLe:
      return "<=";
    case edbms::CompareOp::kGe:
      return ">=";
  }
  return "?";
}

std::string Describe(const std::string& column, const Condition& cond) {
  if (cond.kind == Condition::Kind::kBetween) {
    return column + " BETWEEN " + std::to_string(cond.lo) + " AND " +
           std::to_string(cond.hi);
  }
  return column + " " + OpText(cond.op) + " " + std::to_string(cond.lo);
}

/// Collapses ≥2 same-attribute conditions into one interval. Returns false
/// on a provable contradiction (empty interval). The bounds are inclusive;
/// strict comparisons tighten by one with care at the domain extremes.
bool CollapseGroup(const AttrGroup& group, CollapsedPred* out) {
  constexpr Value kMin = std::numeric_limits<Value>::min();
  constexpr Value kMax = std::numeric_limits<Value>::max();
  bool has_lo = false;
  bool has_hi = false;
  Value lo = kMin;
  Value hi = kMax;
  for (const Condition& cond : group.conds) {
    if (cond.kind == Condition::Kind::kBetween) {
      if (!has_lo || cond.lo > lo) lo = cond.lo;
      if (!has_hi || cond.hi < hi) hi = cond.hi;
      has_lo = has_hi = true;
      continue;
    }
    switch (cond.op) {
      case edbms::CompareOp::kLt:
        if (cond.lo == kMin) return false;  // x < MIN: empty
        if (!has_hi || cond.lo - 1 < hi) hi = cond.lo - 1;
        has_hi = true;
        break;
      case edbms::CompareOp::kLe:
        if (!has_hi || cond.lo < hi) hi = cond.lo;
        has_hi = true;
        break;
      case edbms::CompareOp::kGt:
        if (cond.lo == kMax) return false;  // x > MAX: empty
        if (!has_lo || cond.lo + 1 > lo) lo = cond.lo + 1;
        has_lo = true;
        break;
      case edbms::CompareOp::kGe:
        if (!has_lo || cond.lo > lo) lo = cond.lo;
        has_lo = true;
        break;
    }
  }
  if (has_lo && has_hi && lo > hi) return false;

  out->attr = group.attr;
  if (has_lo && has_hi) {
    out->cond.kind = Condition::Kind::kBetween;
    out->cond.lo = lo;
    out->cond.hi = hi;
  } else {
    out->cond.kind = Condition::Kind::kComparison;
    out->cond.op = has_hi ? edbms::CompareOp::kLe : edbms::CompareOp::kGe;
    out->cond.lo = has_hi ? hi : lo;
  }
  out->detail = Describe(group.column, out->cond) + " (collapsed " +
                std::to_string(group.conds.size()) + " conjuncts)";
  return true;
}

/// Scheduler fanouts worth trying for one route. While the calibrated
/// round-trip latency is below the batching floor — loopback deployments
/// stay there forever, hinted or freshly-measured remote ones don't — m only
/// inflates QPF uses, so keep the index default (0). Above the floor, search
/// the grid and let PriceNs trade probe inflation against trip savings per
/// route. Reading the calibrator (not the static hint) is what lets a
/// mid-run latency shift open or close the fanout search without a restart.
std::vector<size_t> CandidateFanouts(const core::PrkbIndex& index) {
  if (index.options().sequential_probes ||
      index.calibrator().rt_latency_ns() <
          exec::CostCalibrator::kCalibratedFanoutFloorNs) {
    return {0};
  }
  return {2, 4, 8, 16};
}

using BuildFn = void (*)(const core::PrkbIndex&, exec::Plan*, bool);

/// Builds `build`'s route once per candidate m and keeps the cheapest by
/// PriceNs. The winning plan carries its m in Plan::probe_fanout, which the
/// executor threads into the probe scheduler.
exec::Plan BuildBestPlan(const core::PrkbIndex& index,
                         const std::vector<Trapdoor>& tds, BuildFn build) {
  exec::Plan best;
  double best_price = std::numeric_limits<double>::infinity();
  for (size_t m : CandidateFanouts(index)) {
    exec::Plan plan;
    std::vector<Trapdoor> copy = tds;
    plan.AdoptTrapdoors(std::move(copy));
    plan.probe_fanout = m;
    build(index, &plan, /*estimate=*/true);
    const double price =
        exec::PriceNs(plan.root.estimated, exec::ConstantsFor(index, m));
    if (price < best_price) {
      best_price = price;
      best = std::move(plan);
    }
  }
  return best;
}

/// The winning plan's wall-clock price, for cross-route comparison.
double PlanPrice(const core::PrkbIndex& index, const exec::Plan& plan) {
  return exec::PriceNs(plan.root.estimated,
                       exec::ConstantsFor(index, plan.probe_fanout));
}

/// Inclusive value range of one collapsed predicate, for the alternative
/// routes (which think in [lo, hi] rather than trapdoors). `ok` is false
/// when the condition denotes a provably-empty interval.
struct PredRange {
  Value lo = 0;
  Value hi = 0;
  bool ok = false;
};

PredRange RangeOf(const Condition& cond) {
  constexpr Value kMin = std::numeric_limits<Value>::min();
  constexpr Value kMax = std::numeric_limits<Value>::max();
  PredRange r;
  if (cond.kind == Condition::Kind::kBetween) {
    r.lo = cond.lo;
    r.hi = cond.hi;
    r.ok = cond.lo <= cond.hi;
    return r;
  }
  switch (cond.op) {
    case edbms::CompareOp::kLt:
      if (cond.lo == kMin) return r;  // x < MIN: empty
      r.lo = kMin;
      r.hi = cond.lo - 1;
      break;
    case edbms::CompareOp::kLe:
      r.lo = kMin;
      r.hi = cond.lo;
      break;
    case edbms::CompareOp::kGt:
      if (cond.lo == kMax) return r;  // x > MAX: empty
      r.lo = cond.lo + 1;
      r.hi = kMax;
      break;
    case edbms::CompareOp::kGe:
      r.lo = cond.lo;
      r.hi = kMax;
      break;
  }
  r.ok = true;
  return r;
}

void AttachDetail(exec::PlanNode* node, const std::string& desc) {
  node->detail = node->detail.empty() ? desc : desc + "; " + node->detail;
}

/// Writes each predicate's plaintext onto its plan node: the root for a
/// single-predicate plan, the per-predicate children for SD+ and MD roots.
void AnnotatePlan(exec::Plan* plan, const std::vector<CollapsedPred>& preds) {
  if (plan->root.td_index >= 0) {
    AttachDetail(&plan->root, preds[0].detail);
    return;
  }
  for (exec::PlanNode& child : plan->root.children) {
    if (child.td_index >= 0) {
      AttachDetail(&child, preds[static_cast<size_t>(child.td_index)].detail);
    }
  }
}

}  // namespace

Result<ExecutionResult> Planner::Execute(const SelectStatement& stmt) {
  if (!catalog_->HasTable(stmt.table)) {
    return Status::NotFound("unknown table '" + stmt.table + "'");
  }

  // Group the conjuncts by attribute (first-appearance order).
  std::vector<AttrGroup> groups;
  for (const Condition& cond : stmt.conditions) {
    PRKB_ASSIGN_OR_RETURN(edbms::AttrId attr,
                          catalog_->ResolveColumn(stmt.table, cond.column));
    AttrGroup* group = nullptr;
    for (AttrGroup& g : groups) {
      if (g.attr == attr) {
        group = &g;
        break;
      }
    }
    if (group == nullptr) {
      groups.push_back(AttrGroup{attr, cond.column, {}});
      group = &groups.back();
    }
    group->conds.push_back(cond);
  }

  // Collapse each attribute's conditions. A lone condition passes through
  // verbatim (identical trapdoor bytes → identical fast-path fingerprints);
  // two or more become one interval or a provable contradiction.
  bool contradiction = false;
  std::vector<CollapsedPred> preds;
  preds.reserve(groups.size());
  for (const AttrGroup& group : groups) {
    CollapsedPred pred;
    if (group.conds.size() == 1) {
      pred.attr = group.attr;
      pred.cond = group.conds[0];
      pred.detail = Describe(group.column, pred.cond);
    } else if (!CollapseGroup(group, &pred)) {
      contradiction = true;
      break;
    }
    preds.push_back(std::move(pred));
  }

  ExecutionResult out;
  out.explain_only = stmt.explain;
  // Cheapest losing competitor of whichever route competition ran below —
  // the reference the winner's actual wall-clock is judged against.
  bool have_runner = false;
  exec::CostEstimate runner_est;
  size_t runner_fanout = 0;
  const auto finish = [&]() -> Result<ExecutionResult> {
    out.plan = out.physical.summary;
    if (!stmt.explain) {
      const uint64_t t0 = obs::ObsTracer::NowNs();
      out.rows = exec::Executor(index_).Run(&out.physical, &out.stats);
      const uint64_t wall_ns = obs::ObsTracer::NowNs() - t0;
      // A remote QPF backend that died mid-query answers remaining probes
      // fail-closed (all-false), which would read as an empty result.
      // Surface the transport failure as the query's status instead.
      PRKB_RETURN_IF_ERROR(db_->Health());
      // Route feedback: re-price the winner's estimate at the per-trip
      // latency this very run realized (wall minus the eval-compute share,
      // over the trips it actually made), so the error EWMA captures
      // *structural* estimator error — wrong trip or eval counts — and not
      // a latency fit that lagged a mid-run transport shift. Without this,
      // the route that merely ran first after a shift would absorb the
      // whole surprise as a frozen penalty and never be retried.
      if (have_runner && !out.physical.route.empty()) {
        exec::CostConstants cc_run =
            exec::ConstantsFor(*index_, out.physical.probe_fanout);
        const uint64_t atrips = out.physical.root.actual.qpf_round_trips;
        if (atrips > 0) {
          const double compute =
              static_cast<double>(out.physical.root.actual.qpf_uses) *
              cc_run.eval_ns;
          cc_run.round_trip_latency_ns =
              std::max(0.0, static_cast<double>(wall_ns) - compute) /
              static_cast<double>(atrips);
        }
        const double est_now =
            exec::PriceNs(out.physical.root.estimated, cc_run);
        const double runner_now = exec::PriceNs(
            runner_est, exec::ConstantsFor(*index_, runner_fanout));
        index_->calibrator().ObserveRoute(out.physical.route, est_now,
                                          static_cast<double>(wall_ns),
                                          runner_now);
      }
    }
    return std::move(out);
  };

  if (contradiction) {
    exec::BuildEmptyPlan(&out.physical);
    return finish();
  }
  if (preds.empty()) {
    exec::BuildFullTablePlan(&out.physical);
    return finish();
  }

  // DO role: compile the collapsed predicates into trapdoors.
  std::vector<Trapdoor> tds;
  tds.reserve(preds.size());
  bool md_capable = true;
  for (const CollapsedPred& pred : preds) {
    if (pred.cond.kind == Condition::Kind::kBetween) {
      tds.push_back(db_->MakeBetween(pred.attr, pred.cond.lo, pred.cond.hi));
      md_capable = false;
    } else {
      tds.push_back(db_->MakeComparison(pred.attr, pred.cond.op, pred.cond.lo));
    }
    if (!index_->IsEnabled(pred.attr)) md_capable = false;
  }

  if (tds.size() == 1) {
    out.physical = BuildBestPlan(*index_, tds, exec::BuildSingleSelectPlan);
    out.physical.route = "prkb";
    AnnotatePlan(&out.physical, preds);
    // Hybrid arbitration (only with SRC-i / OPE routes registered — the
    // classic planner output is byte-identical otherwise): the PRKB plan
    // becomes one costed alternative among several. Every competitor is
    // priced under the same calibrated constants; the comparison scales each
    // price by the calibrator's per-route penalty, demoting routes whose
    // actuals keep losing to the runner-up's estimate (docs/COST_MODEL.md).
    if (!alt_routes_.empty()) {
      exec::CostCalibrator& cal = index_->calibrator();
      std::vector<exec::Plan::Alternative> alts;
      {
        exec::Plan::Alternative prkb;
        prkb.name = "prkb";
        prkb.estimated = out.physical.root.estimated;
        prkb.fanout = out.physical.probe_fanout;
        prkb.price_ns = PlanPrice(*index_, out.physical);
        prkb.chosen = true;
        alts.push_back(std::move(prkb));
      }
      double best_penalized = alts[0].price_ns * cal.RoutePenalty("prkb");
      size_t chosen = 0;
      exec::AltRoute* winner = nullptr;
      const PredRange range = RangeOf(preds[0].cond);
      const exec::CostConstants cc = exec::ConstantsFor(*index_);
      for (exec::AltRoute* route : alt_routes_) {
        if (!range.ok || !route->Handles(preds[0].attr)) continue;
        exec::Plan::Alternative alt;
        alt.name = route->name();
        alt.estimated = route->Estimate(preds[0].attr, range.lo, range.hi, cc);
        alt.price_ns = exec::PriceNs(alt.estimated, cc);
        alt.admissible = route->Admissible();
        const double penalized = alt.price_ns * cal.RoutePenalty(alt.name);
        const bool admissible = alt.admissible;
        alts.push_back(std::move(alt));
        if (admissible && penalized < best_penalized) {
          best_penalized = penalized;
          chosen = alts.size() - 1;
          winner = route;
        }
      }
      if (winner != nullptr) {
        alts[0].chosen = false;
        alts[chosen].chosen = true;
        exec::Plan alt_plan;
        alt_plan.root =
            exec::PlanNode(exec::PlanOp::kAltSelect, preds[0].attr, /*td=*/-1);
        alt_plan.root.detail = preds[0].detail;
        alt_plan.root.estimated = alts[chosen].estimated;
        alt_plan.root.has_estimate = true;
        alt_plan.summary = alts[chosen].name + "-range";
        alt_plan.route = alts[chosen].name;
        alt_plan.alt_route = winner;
        alt_plan.alt_lo = range.lo;
        alt_plan.alt_hi = range.hi;
        out.physical = std::move(alt_plan);
      }
      // Runner-up = cheapest admissible loser, by un-penalized price.
      double best_loser = std::numeric_limits<double>::infinity();
      for (const exec::Plan::Alternative& alt : alts) {
        if (alt.chosen || !alt.admissible) continue;
        if (alt.price_ns < best_loser) {
          best_loser = alt.price_ns;
          runner_est = alt.estimated;
          runner_fanout = alt.fanout;
          have_runner = true;
        }
      }
      out.physical.alternatives = std::move(alts);
    }
    return finish();
  }

  // SP role: enumerate the multi-predicate routes (each already carrying its
  // best scheduler m) and keep the cheapest by PriceNs — with no latency
  // hint this degenerates to the paper's pure QPF-use ranking. SD+ always
  // applies; the MD grid additionally requires comparisons-only over enabled
  // attributes. Ties go to MD (Sec. 6).
  exec::Plan sd_plan = BuildBestPlan(*index_, tds, exec::BuildSdPlusPlan);
  sd_plan.route = "prkb-sd+";
  if (md_capable) {
    exec::Plan md_plan = BuildBestPlan(*index_, tds, exec::BuildMdGridPlan);
    md_plan.route = "prkb-md";
    // The pick stays a plain price comparison (no penalty scaling — the
    // paper's deterministic MD-preferred ranking is load-bearing for the
    // differential suites); the loser is still recorded so the calibrator's
    // cal.route.* regret accounting covers the MD/SD+ competition too.
    const bool md_wins =
        PlanPrice(*index_, md_plan) <= PlanPrice(*index_, sd_plan);
    const exec::Plan& loser = md_wins ? sd_plan : md_plan;
    runner_est = loser.root.estimated;
    runner_fanout = loser.probe_fanout;
    have_runner = true;
    out.physical = md_wins ? std::move(md_plan) : std::move(sd_plan);
  } else {
    out.physical = std::move(sd_plan);
  }
  AnnotatePlan(&out.physical, preds);
  return finish();
}

}  // namespace prkb::query
