#include "query/alt_routes.h"

#include <algorithm>
#include <utility>

namespace prkb::query {

using edbms::SelectionStats;
using edbms::TupleId;
using edbms::Value;

SrciRoute::SrciRoute(edbms::CipherbaseEdbms* db, edbms::AttrId attr,
                     Value domain_lo, Value domain_hi)
    : db_(db),
      attr_(attr),
      domain_lo_(domain_lo),
      domain_hi_(domain_hi),
      srci_(db, attr, domain_lo, domain_hi) {}

Status SrciRoute::EnsureBuilt() {
  if (built_) return Status::Ok();
  const Status s = srci_.Build();
  if (!s.ok()) {
    broken_ = true;  // never offer a half-built index to the planner
    return s;
  }
  built_ = true;
  built_rows_ = db_->num_rows();
  return Status::Ok();
}

bool SrciRoute::Handles(edbms::AttrId attr) const {
  if (attr != attr_ || broken_) return false;
  // Build-time snapshot only: winner-set identity over staleness.
  return !built_ || db_->num_rows() == built_rows_;
}

exec::CostEstimate SrciRoute::Estimate(edbms::AttrId /*attr*/, Value lo,
                                       Value hi,
                                       const exec::CostConstants& c) const {
  const Value qlo = std::max(lo, domain_lo_);
  const Value qhi = std::min(hi, domain_hi_);
  const double span =
      static_cast<double>(domain_hi_) - static_cast<double>(domain_lo_) + 1.0;
  const double width = qlo > qhi ? 0.0
                                 : static_cast<double>(qhi) -
                                       static_cast<double>(qlo) + 1.0;
  return exec::EstimateSrciRange(db_->num_rows(), width / span, c);
}

std::vector<TupleId> SrciRoute::Execute(edbms::AttrId /*attr*/, Value lo,
                                        Value hi, SelectionStats* stats,
                                        exec::AltActuals* actuals) {
  const Value qlo = std::max(lo, domain_lo_);
  const Value qhi = std::min(hi, domain_hi_);
  if (qlo > qhi) return {};
  if (!EnsureBuilt().ok()) return {};
  // Snapshot the TM counters after the (possibly lazy) build so the
  // calibrator only sees the query's own confirmation work.
  edbms::TrustedMachine& tm = db_->trusted_machine();
  const uint64_t decrypts0 = tm.value_decrypts();
  const uint64_t trips0 = tm.round_trips();
  std::vector<TupleId> rows = srci_.Query(qlo, qhi, stats);
  if (actuals != nullptr) {
    actuals->evals = tm.value_decrypts() - decrypts0;
    actuals->round_trips = tm.round_trips() - trips0;
  }
  return rows;
}

OpeRoute::OpeRoute(edbms::CipherbaseEdbms* db, edbms::AttrId attr,
                   std::vector<Value> plain_column, uint64_t key,
                   bool admissible)
    : db_(db),
      attr_(attr),
      column_(std::move(plain_column)),
      key_(key),
      admissible_(admissible) {}

bool OpeRoute::Handles(edbms::AttrId attr) const {
  // The code column is positional (one code per tuple id) — any growth past
  // the snapshot invalidates it.
  return attr == attr_ && !column_.empty() &&
         db_->num_rows() == column_.size();
}

exec::CostEstimate OpeRoute::Estimate(edbms::AttrId /*attr*/, Value /*lo*/,
                                      Value /*hi*/,
                                      const exec::CostConstants& c) const {
  return exec::EstimateOpeRange(column_.size(), c);
}

std::vector<TupleId> OpeRoute::Execute(edbms::AttrId /*attr*/, Value lo,
                                       Value hi, SelectionStats* stats,
                                       exec::AltActuals* actuals) {
  const edbms::StatsScope scope(db_, stats, "ope.scan");
  if (!built_) {
    codes_ = edbms::OpeColumn::Build(column_, key_);
    built_ = true;
  }
  std::vector<TupleId> rows;
  if (codes_.size() == 0) return rows;  // EncodeProbe needs a dictionary
  const uint64_t clo = codes_.EncodeProbe(lo);
  const uint64_t chi = codes_.EncodeProbe(hi);
  for (TupleId tid = 0; tid < codes_.size(); ++tid) {
    if (!db_->IsLive(tid)) continue;
    const uint64_t code = codes_.code_at(tid);
    if (code >= clo && code <= chi) rows.push_back(tid);
  }
  if (actuals != nullptr) {
    actuals->evals = codes_.size();  // one code comparison per tuple
    actuals->round_trips = 0;        // the whole point of OPE
  }
  return rows;
}

}  // namespace prkb::query
