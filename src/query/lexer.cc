#include "query/lexer.h"

#include <cctype>

namespace prkb::query {
namespace {

bool IsKeyword(const std::string& upper) {
  return upper == "SELECT" || upper == "FROM" || upper == "WHERE" ||
         upper == "AND" || upper == "BETWEEN" || upper == "EXPLAIN";
}

std::string ToUpper(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::toupper(c));
  return out;
}

}  // namespace

Result<std::vector<Token>> Lex(const std::string& sql) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c)) || c == ';') {
      ++i;
      continue;
    }
    if (c == '*') {
      out.push_back(Token{Token::Kind::kStar, "*", 0});
      ++i;
      continue;
    }
    if (c == '<' || c == '>' || c == '=') {
      std::string op(1, c);
      if ((c == '<' || c == '>') && i + 1 < n && sql[i + 1] == '=') {
        op += '=';
        ++i;
      }
      out.push_back(Token{Token::Kind::kOperator, op, 0});
      ++i;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t j = i + 1;
      while (j < n && std::isdigit(static_cast<unsigned char>(sql[j]))) ++j;
      const std::string lit = sql.substr(i, j - i);
      try {
        Token tok{Token::Kind::kNumber, lit, std::stoll(lit)};
        out.push_back(tok);
      } catch (...) {
        return Status::InvalidArgument("number out of range: " + lit);
      }
      i = j;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i + 1;
      while (j < n && (std::isalnum(static_cast<unsigned char>(sql[j])) ||
                       sql[j] == '_')) {
        ++j;
      }
      const std::string word = sql.substr(i, j - i);
      const std::string upper = ToUpper(word);
      if (IsKeyword(upper)) {
        out.push_back(Token{Token::Kind::kKeyword, upper, 0});
      } else {
        out.push_back(Token{Token::Kind::kIdentifier, word, 0});
      }
      i = j;
      continue;
    }
    return Status::InvalidArgument(std::string("unexpected character '") + c +
                                   "'");
  }
  out.push_back(Token{Token::Kind::kEnd, "", 0});
  return out;
}

}  // namespace prkb::query
