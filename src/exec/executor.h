#ifndef PRKB_EXEC_EXECUTOR_H_
#define PRKB_EXEC_EXECUTOR_H_

#include <vector>

#include "edbms/service_provider.h"
#include "exec/plan.h"
#include "prkb/fingerprint.h"
#include "prkb/probe_sched.h"

namespace prkb::core {
class PrkbIndex;
struct PrkbOptions;
}  // namespace prkb::core

namespace prkb::exec {

/// Runs a physical plan tree against the PRKB primitives. This is the single
/// copy of the fast-path-cache consult, the StatsScope accounting and the
/// QFilter → QScan → updatePRKB pipeline that used to be duplicated across
/// `SelectComparison`, `SelectBetween` dispatch, `RunMd` and
/// `SelectRangeSdPlus`. Execution is byte-identical to the legacy drivers in
/// QPF and RNG consumption; on top it records per-operator actual costs on
/// the plan nodes and mirrors `exec.*` metrics (docs/OBSERVABILITY.md).
class Executor {
 public:
  explicit Executor(core::PrkbIndex* index) : index_(index) {}

  /// Executes the plan, recording actual costs on each node. `stats`
  /// receives the whole-operation accounting exactly as the legacy entry
  /// points produced it (the root operator owns the StatsScope).
  std::vector<edbms::TupleId> Run(Plan* plan,
                                  edbms::SelectionStats* stats = nullptr);

  /// Read-only execution attempt for shared-lock concurrent serving: runs
  /// the plan iff it provably cannot mutate the index (baseline scan, empty
  /// chain, repeat-predicate cache hit) and returns true; returns false —
  /// without spending any QPF and without counting a cache miss — when the
  /// caller must retry under an exclusive lock.
  static bool TryRunReadOnly(const core::PrkbIndex& index, const Plan& plan,
                             std::vector<edbms::TupleId>* out,
                             edbms::SelectionStats* stats);

 private:
  std::vector<edbms::TupleId> RunPredicateBody(Plan* plan, PlanNode* node);
  std::vector<edbms::TupleId> RunComparison(PlanNode* node,
                                            const edbms::Trapdoor& td,
                                            const core::TrapdoorFp* fp,
                                            const core::ProbeSchedOptions& sopt);
  std::vector<edbms::TupleId> RunBetween(PlanNode* node,
                                         const edbms::Trapdoor& td,
                                         const core::TrapdoorFp* fp,
                                         const core::ProbeSchedOptions& sopt);
  std::vector<edbms::TupleId> RunIntersect(Plan* plan, PlanNode* node);
  std::vector<edbms::TupleId> RunGridPrune(Plan* plan, PlanNode* node);

  core::PrkbIndex* index_;
};

/// Cost constants matching the runtime the options configure: the scheduler
/// m, the scan batch size and the planner's transport-latency hint.
/// `probe_fanout_override` (nonzero) substitutes a candidate m — the
/// planner's per-route m search and Plan::probe_fanout use this. This is the
/// configured-only builder; query paths use the index overload below.
CostConstants ConstantsFor(const core::PrkbOptions& options,
                           size_t probe_fanout_override = 0);

/// Calibrated cost constants for pricing against `index`: the configured
/// shape above with `eval_ns` and `round_trip_latency_ns` replaced by the
/// index's CostCalibrator fits (docs/COST_MODEL.md, "Calibrated vs
/// configured"). The single funnel every query-path price goes through —
/// nothing on a query path reads CostConstants::Defaults() directly.
CostConstants ConstantsFor(const core::PrkbIndex& index,
                           size_t probe_fanout_override = 0);

/// The runtime scheduler knobs a plan executes under: the index options'
/// sched() with the plan's probe_fanout override applied.
core::ProbeSchedOptions SchedFor(const core::PrkbIndex& index,
                                 const Plan& plan);

/// ---- Plan builders -------------------------------------------------------
///
/// All builders expect `plan->BorrowTrapdoor` / `plan->AdoptTrapdoors` to
/// have bound the trapdoors already; they only construct the node tree and
/// the legacy route summary. Estimates are filled only when `estimate` is
/// true (the planner / EXPLAIN path) — the PrkbIndex hot paths skip them, so
/// plan construction there costs a few small allocations and no QPF.

/// Single-predicate plan over plan->td(0): LinearScan when the attribute has
/// no chain, else PredicateSelect with the stage children.
void BuildSingleSelectPlan(const core::PrkbIndex& index, Plan* plan,
                           bool estimate);

/// PRKB(SD+) plan: Intersect over one single-predicate subtree per trapdoor.
void BuildSdPlusPlan(const core::PrkbIndex& index, Plan* plan, bool estimate);

/// PRKB(MD) plan: GridPrune with one QFilterProbe child per dimension. Only
/// valid when every trapdoor is a comparison on an enabled attribute.
void BuildMdGridPlan(const core::PrkbIndex& index, Plan* plan, bool estimate);

/// No-predicate plan: every live tuple, zero QPF.
void BuildFullTablePlan(Plan* plan);

/// Contradiction plan: provably empty result, zero QPF.
void BuildEmptyPlan(Plan* plan);

}  // namespace prkb::exec

#endif  // PRKB_EXEC_EXECUTOR_H_
