#include "exec/plan.h"

#include <cstdio>

namespace prkb::exec {

const char* PlanOpName(PlanOp op) {
  switch (op) {
    case PlanOp::kFullTable:
      return "FullTable";
    case PlanOp::kEmptyResult:
      return "EmptyResult";
    case PlanOp::kLinearScan:
      return "LinearScan";
    case PlanOp::kPredicateSelect:
      return "PredicateSelect";
    case PlanOp::kFastPathLookup:
      return "FastPathLookup";
    case PlanOp::kQFilterProbe:
      return "QFilterProbe";
    case PlanOp::kPartitionScan:
      return "PartitionScan";
    case PlanOp::kApplySplit:
      return "ApplySplit";
    case PlanOp::kGridPrune:
      return "GridPrune";
    case PlanOp::kIntersect:
      return "Intersect";
    case PlanOp::kBufferScan:
      return "BufferScan";
    case PlanOp::kBufferFlush:
      return "BufferFlush";
    case PlanOp::kAltSelect:
      return "AltSelect";
  }
  return "?";
}

PlanNode* PlanNode::Child(PlanOp o) {
  for (PlanNode& ch : children) {
    if (ch.op == o) return &ch;
  }
  return nullptr;
}

const PlanNode* PlanNode::Child(PlanOp o) const {
  for (const PlanNode& ch : children) {
    if (ch.op == o) return &ch;
  }
  return nullptr;
}

namespace {

bool NodeHasAttr(PlanOp op) {
  switch (op) {
    case PlanOp::kLinearScan:
    case PlanOp::kPredicateSelect:
    case PlanOp::kFastPathLookup:
    case PlanOp::kQFilterProbe:
    case PlanOp::kPartitionScan:
    case PlanOp::kApplySplit:
    case PlanOp::kBufferScan:
    case PlanOp::kBufferFlush:
    case PlanOp::kAltSelect:
      return true;
    default:
      return false;
  }
}

void RenderNode(const PlanNode& node, int depth, std::string* out) {
  char buf[160];
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(PlanOpName(node.op));
  if (NodeHasAttr(node.op)) {
    std::snprintf(buf, sizeof(buf), " attr=%u", node.attr);
    out->append(buf);
  }
  if (!node.detail.empty()) {
    out->append(" [");
    out->append(node.detail);
    out->append("]");
  }
  if (node.has_estimate) {
    std::snprintf(buf, sizeof(buf),
                  "  (est %.1f probes + %.1f scans, %.1f trips)",
                  node.estimated.probes, node.estimated.scans,
                  node.estimated.round_trips);
    out->append(buf);
  }
  if (node.actual.executed) {
    if (node.actual.cache_hit) {
      out->append("  (actual cache hit, 0 qpf)");
    } else {
      std::snprintf(buf, sizeof(buf),
                    "  (actual %llu qpf, %llu round trips)",
                    static_cast<unsigned long long>(node.actual.qpf_uses),
                    static_cast<unsigned long long>(
                        node.actual.qpf_round_trips));
      out->append(buf);
    }
  }
  out->append("\n");
  for (const PlanNode& ch : node.children) RenderNode(ch, depth + 1, out);
}

}  // namespace

std::string Plan::Render() const {
  std::string out;
  if (!summary.empty()) {
    out.append("plan: ");
    out.append(summary);
    if (probe_fanout != 0) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), " m=%zu",
                    static_cast<size_t>(probe_fanout));
      out.append(buf);
    }
    out.append("\n");
  }
  RenderNode(root, 0, &out);
  // Route arbitration: every competitor considered, priced under the same
  // calibrated constants. "(est " keeps these lines inside the golden
  // snapshot's capture (scripts/check_explain.sh).
  for (const Alternative& alt : alternatives) {
    char fanout[24] = "";
    if (alt.fanout != 0) {
      std::snprintf(fanout, sizeof(fanout), " m=%zu", alt.fanout);
    }
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "alternative %s%s  (est %.1f probes + %.1f scans, "
                  "%.1f trips)  price %.3f ms%s%s\n",
                  alt.name.c_str(), fanout, alt.estimated.probes,
                  alt.estimated.scans, alt.estimated.round_trips,
                  alt.price_ns / 1e6, alt.chosen ? " [chosen]" : "",
                  alt.admissible ? "" : " [inadmissible]");
    out.append(buf);
  }
  return out;
}

}  // namespace prkb::exec
