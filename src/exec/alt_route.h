#ifndef PRKB_EXEC_ALT_ROUTE_H_
#define PRKB_EXEC_ALT_ROUTE_H_

#include <vector>

#include "edbms/service_provider.h"
#include "edbms/types.h"
#include "exec/cost.h"

namespace prkb::exec {

/// Measured execution costs of an alternative route, in the calibrator's
/// units: `evals` is whatever the route pays per-element work on (TM value
/// decrypts for SRC-i, code comparisons for OPE) and `round_trips` is the
/// number of backend entries that each charged a transport latency.
struct AltActuals {
  uint64_t evals = 0;
  uint64_t round_trips = 0;
};

/// An alternative single-attribute range-selection strategy competing with
/// the PRKB physical plans inside query::Planner (DESIGN.md, Enc²DB-style
/// hybrid arbitration). Implementations live above the exec layer (e.g.
/// query::SrciRoute over src/srci/, query::OpeRoute over src/edbms/ope.*);
/// the executor only needs this surface to run a chosen one.
///
/// Estimate() must be pure arithmetic — it prices EXPLAIN output, which is
/// pinned to spend zero QPF.
class AltRoute {
 public:
  virtual ~AltRoute() = default;

  /// Stable route name used for EXPLAIN alternatives, calibrator feedback
  /// keys, and cal.route.* accounting.
  virtual const char* name() const = 0;

  /// Whether this route can answer a range on `attr` right now. Routes with
  /// a build-time snapshot should return false once the table drifted past
  /// what they indexed.
  virtual bool Handles(edbms::AttrId attr) const = 0;

  /// Policy gate: an inadmissible route is still costed and rendered in
  /// EXPLAIN (so its price is visible) but never chosen — e.g. OPE's
  /// order-leaking codes kept out of the default leakage budget.
  virtual bool Admissible() const = 0;

  /// Priced cost of answering `attr IN [lo, hi]` (inclusive, already
  /// clamped to be non-empty) under the calibrated constants. Pure.
  virtual CostEstimate Estimate(edbms::AttrId attr, edbms::Value lo,
                                edbms::Value hi,
                                const CostConstants& c) const = 0;

  /// Executes the range, returning the exact winner set (dead tuples
  /// filtered). Fills `*stats` like every other selection path and reports
  /// measured work in `*actuals` for calibrator feedback.
  virtual std::vector<edbms::TupleId> Execute(edbms::AttrId attr,
                                              edbms::Value lo, edbms::Value hi,
                                              edbms::SelectionStats* stats,
                                              AltActuals* actuals) = 0;
};

}  // namespace prkb::exec

#endif  // PRKB_EXEC_ALT_ROUTE_H_
