#include "exec/cost.h"

#include <algorithm>
#include <cmath>

namespace prkb::exec {

const CostConstants& CostConstants::Defaults() {
  static const CostConstants c;
  return c;
}

double CeilLg(size_t k) {
  if (k <= 1) return 0.0;
  return std::ceil(std::log2(static_cast<double>(k)));
}

CostEstimate EstimateLinearScan(size_t live_rows, const CostConstants&) {
  return CostEstimate{0.0, static_cast<double>(live_rows)};
}

CostEstimate EstimateComparison(size_t k, size_t n, const CostConstants& c) {
  if (k == 0) return {};
  const double kk = static_cast<double>(k);
  const double nn = static_cast<double>(n);
  CostEstimate est;
  // A probe never repeats a partition, so k itself caps the bound.
  est.probes = std::min(kk, c.qfilter_overhead + CeilLg(k));
  est.scans = std::min(nn, c.comparison_scan_partitions * nn / kk);
  return est;
}

CostEstimate EstimateBetween(size_t k, size_t n, const CostConstants& c) {
  if (k == 0) return {};
  const double kk = static_cast<double>(k);
  const double nn = static_cast<double>(n);
  CostEstimate est;
  // Anchor hunt, then one binary search per band end (each ≤ ⌈lg k⌉ fresh
  // samples); the sample-label memo keeps the sum below k.
  est.probes =
      std::min(kk, c.between_anchor_probes + 2.0 * CeilLg(k));
  est.scans = std::min(nn, c.between_end_partitions * nn / kk);
  return est;
}

CostEstimate EstimateMdGrid(const std::vector<MdDim>& dims,
                            const CostConstants& c) {
  CostEstimate est;
  double band = 0.0;
  for (const MdDim& d : dims) {
    if (d.k == 0) continue;
    est.probes += std::min(static_cast<double>(d.k),
                           c.qfilter_overhead + CeilLg(d.k));
    band += std::min(static_cast<double>(d.n),
                     c.md_band_partitions * static_cast<double>(d.n) /
                         static_cast<double>(d.k));
  }
  // Each surviving band tuple costs ≈ one evaluation: the cheap-pass grid
  // rejection is free and the expensive pass short-circuits on the first 0.
  est.scans = c.md_band_eval_factor * band;
  return est;
}

}  // namespace prkb::exec
