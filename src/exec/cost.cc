#include "exec/cost.h"

#include <algorithm>
#include <cmath>

namespace prkb::exec {
namespace {

double Fanout(const CostConstants& c) {
  return c.probe_fanout < 2.0 ? 2.0 : c.probe_fanout;
}

double ScanBatch(const CostConstants& c) {
  return c.scan_batch < 1.0 ? 1.0 : c.scan_batch;
}

}  // namespace

const CostConstants& CostConstants::Defaults() {
  static const CostConstants c;
  return c;
}

double CeilLg(size_t k) {
  if (k <= 1) return 0.0;
  return std::ceil(std::log2(static_cast<double>(k)));
}

double CeilLogM(size_t k, double m) {
  if (k <= 1) return 0.0;
  if (m < 2.0) m = 2.0;
  return std::ceil(std::log2(static_cast<double>(k)) / std::log2(m));
}

double PriceNs(const CostEstimate& est, const CostConstants& c) {
  return est.Total() * c.eval_ns + est.round_trips * c.round_trip_latency_ns;
}

CostEstimate EstimateLinearScan(size_t live_rows, const CostConstants& c) {
  CostEstimate est;
  est.scans = static_cast<double>(live_rows);
  est.round_trips = std::ceil(est.scans / ScanBatch(c));
  return est;
}

CostEstimate EstimateComparison(size_t k, size_t n, const CostConstants& c) {
  if (k == 0) return {};
  const double kk = static_cast<double>(k);
  const double nn = static_cast<double>(n);
  const double m = Fanout(c);
  CostEstimate est;
  // A probe never repeats a partition, so k itself caps the bound. Each
  // search round ships m−1 pivots, so probes grow by (m−1)/lg m while the
  // trips below shrink by lg m; m = 2 is the paper's 2 + ⌈lg k⌉.
  est.probes = std::min(kk, c.qfilter_overhead + (m - 1.0) * CeilLogM(k, m));
  est.scans = std::min(nn, c.comparison_scan_partitions * nn / kk);
  // One ends round plus ⌈log_m k⌉ search rounds, then chunked NS scans.
  est.round_trips =
      std::min(kk, 1.0 + CeilLogM(k, m)) + std::ceil(est.scans / ScanBatch(c));
  return est;
}

CostEstimate EstimateBetween(size_t k, size_t n, const CostConstants& c) {
  if (k == 0) return {};
  const double kk = static_cast<double>(k);
  const double nn = static_cast<double>(n);
  const double m = Fanout(c);
  CostEstimate est;
  // Anchor hunt, then one search per band end (each ≤ (m−1)·⌈log_m k⌉
  // fresh samples); the sample-label memo keeps the sum below k.
  est.probes = std::min(
      kk, c.between_anchor_probes + 2.0 * (m - 1.0) * CeilLogM(k, m));
  est.scans = std::min(nn, c.between_end_partitions * nn / kk);
  // Anchor probes ship m−1 per trip; the two end searches fuse into shared
  // rounds after one shared ends round.
  est.round_trips = std::ceil(c.between_anchor_probes / (m - 1.0)) + 1.0 +
                    CeilLogM(k, m) + std::ceil(est.scans / ScanBatch(c));
  return est;
}

CostEstimate EstimateMdGrid(const std::vector<MdDim>& dims,
                            const CostConstants& c) {
  const double m = Fanout(c);
  CostEstimate est;
  double band = 0.0;
  double filter_trips = 0.0;
  for (const MdDim& d : dims) {
    if (d.k == 0) continue;
    est.probes += std::min(static_cast<double>(d.k),
                           c.qfilter_overhead + (m - 1.0) * CeilLogM(d.k, m));
    band += std::min(static_cast<double>(d.n),
                     c.md_band_partitions * static_cast<double>(d.n) /
                         static_cast<double>(d.k));
    // Fused per-dimension filters share rounds: the stage pays the slowest
    // dimension's trips, not the sum.
    filter_trips = std::max(
        filter_trips,
        std::min(static_cast<double>(d.k), 1.0 + CeilLogM(d.k, m)));
  }
  // Each surviving band tuple costs ≈ one evaluation: the cheap-pass grid
  // rejection is free and the expensive pass short-circuits on the first 0.
  est.scans = c.md_band_eval_factor * band;
  est.round_trips = filter_trips + std::ceil(est.scans / ScanBatch(c));
  return est;
}

CostEstimate EstimateBufferScan(size_t buffered, const CostConstants& c) {
  CostEstimate est;
  est.scans = static_cast<double>(buffered);
  est.round_trips = std::ceil(est.scans / ScanBatch(c));
  return est;
}

CostEstimate EstimateBufferFlush(size_t buffered, size_t k,
                                 const CostConstants& c) {
  if (buffered == 0) return {};
  const double m = Fanout(c);
  const double per_tuple =
      std::min(static_cast<double>(k), (m - 1.0) * CeilLogM(k, m));
  CostEstimate est;
  // Every tuple pays its own m-ary search probes (Sec. 7.1), but the
  // lock-step rounds ship the whole batch together: ~⌈log_m k⌉ trips total,
  // not per tuple — the entire point of deferring placement.
  est.probes = static_cast<double>(buffered) * per_tuple;
  est.round_trips = CeilLogM(k, m);
  return est;
}

CostEstimate EstimateSrciRange(size_t n, double sel, const CostConstants& c) {
  const double nn = static_cast<double>(n);
  const double s = std::clamp(sel, 0.0, 1.0);
  // TDAG best-cover candidates: at most a 2x superset of the true range,
  // floored at one posting block (pow2 position nodes).
  const double cand = std::min(nn, std::max(c.srci_candidate_floor, 2.0 * s * nn));
  CostEstimate est;
  // One scalar TM confirm decrypt per candidate — priced as a probe (one
  // backend evaluation) and, unbatchable, as one round trip each.
  est.probes = cand;
  est.scans = c.srci_posting_eval_factor * cand;
  est.round_trips = cand;
  return est;
}

CostEstimate EstimateOpeRange(size_t n, const CostConstants& c) {
  CostEstimate est;
  est.scans = c.ope_code_eval_factor * static_cast<double>(n);
  return est;
}

}  // namespace prkb::exec
