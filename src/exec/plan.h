#ifndef PRKB_EXEC_PLAN_H_
#define PRKB_EXEC_PLAN_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "edbms/encryption.h"
#include "exec/cost.h"

namespace prkb::exec {

/// Physical operators of the selection executor. Leaf operators map 1:1 onto
/// the paper's primitives; the grouping operators own a StatsScope/span pair
/// matching the legacy entry points so observability is unchanged.
enum class PlanOp : uint8_t {
  kFullTable,        // all live tuples, zero QPF (no predicate)
  kEmptyResult,      // contradiction detected at plan time, zero QPF
  kLinearScan,       // baseline QPF scan (attribute has no chain)
  kPredicateSelect,  // one single-predicate selection (Sec. 5 / App. A)
  kFastPathLookup,   // repeat-predicate fingerprint → cut cache consult
  kQFilterProbe,     // sampled probes: QFilter / anchor hunt + end searches
  kPartitionScan,    // exhaustive NS / end-partition scan
  kApplySplit,       // updatePRKB: apply the discovered split, zero QPF
  kGridPrune,        // PRKB(MD) grid classification + band testing (Sec. 6.2)
  kIntersect,        // PRKB(SD+): per-predicate selects + bitset intersection
  kBufferScan,       // batch-scan the deferred-insert buffer, merge winners
  kBufferFlush,      // place the whole insert buffer (lock-step batch)
  kAltSelect,        // an alternative route (SRC-i / OPE) won the arbitration
};

const char* PlanOpName(PlanOp op);

/// One node of a physical plan: a typed operator plus estimated and (after
/// execution) actual QPF cost — the structured replacement for the free-form
/// route string the planner used to emit.
struct PlanNode {
  PlanOp op = PlanOp::kFullTable;
  edbms::AttrId attr = 0;
  /// Index into Plan::tds for predicate-bound nodes, -1 otherwise.
  int td_index = -1;
  /// Plaintext annotation for EXPLAIN (e.g. "temp < 60"); only the planner —
  /// the DO side, which knows the plaintext — fills it in.
  std::string detail;

  CostEstimate estimated;
  bool has_estimate = false;

  struct Actual {
    bool executed = false;
    bool cache_hit = false;
    uint64_t qpf_uses = 0;
    uint64_t qpf_round_trips = 0;
  };
  Actual actual;

  std::vector<PlanNode> children;

  PlanNode() = default;
  PlanNode(PlanOp o, edbms::AttrId a, int td) : op(o), attr(a), td_index(td) {}

  /// First direct child with the given op, or nullptr.
  PlanNode* Child(PlanOp o);
  const PlanNode* Child(PlanOp o) const;
};

class AltRoute;

/// A complete physical plan: the operator tree plus the trapdoors it binds.
/// Trapdoors are referenced by index; the plan either borrows them from the
/// caller (the PrkbIndex hot paths, zero-copy) or owns them (the planner,
/// via AdoptTrapdoors). Move-only: nodes hold indices, but `tds` holds
/// pointers into `owned` once adopted.
class Plan {
 public:
  Plan() = default;
  Plan(const Plan&) = delete;
  Plan& operator=(const Plan&) = delete;
  Plan(Plan&&) = default;
  Plan& operator=(Plan&&) = default;

  /// Takes ownership of the trapdoors and exposes them by index. Must be
  /// called before nodes are built and at most once.
  void AdoptTrapdoors(std::vector<edbms::Trapdoor> tds) {
    owned_ = std::move(tds);
    tds_.clear();
    tds_.reserve(owned_.size());
    for (const edbms::Trapdoor& td : owned_) tds_.push_back(&td);
  }
  /// Borrows caller-owned trapdoors (they must outlive the plan).
  void BorrowTrapdoor(const edbms::Trapdoor* td) { tds_.push_back(td); }

  const edbms::Trapdoor& td(int i) const { return *tds_[static_cast<size_t>(i)]; }
  size_t num_trapdoors() const { return tds_.size(); }

  /// Rendered EXPLAIN tree: one line per operator with estimated and, where
  /// executed, actual QPF costs.
  std::string Render() const;

  PlanNode root;
  /// Legacy one-line route summary (e.g. "prkb-md(4 trapdoors)").
  std::string summary;
  /// Probe-scheduler m chosen for this plan by the planner's latency-aware
  /// costing (0 = use the index's PrkbOptions::probe_fanout unchanged).
  size_t probe_fanout = 0;

  /// One competitor considered by the planner's route arbitration. Only
  /// populated when alternative routes are registered — classic planner
  /// output is unchanged otherwise.
  struct Alternative {
    std::string name;
    CostEstimate estimated;
    /// Probe fanout the estimate was priced under (PRKB routes only).
    size_t fanout = 0;
    /// Penalized plan-time price (PriceNs x calibrator route penalty).
    double price_ns = 0.0;
    bool chosen = false;
    bool admissible = true;
  };
  std::vector<Alternative> alternatives;

  /// Calibrator feedback key of the winning route ("prkb", "srci", ...).
  std::string route;

  /// When an alternative route won: the route to run and its clamped
  /// inclusive range. The route object is owned by whoever registered it
  /// with the planner and must outlive the plan.
  AltRoute* alt_route = nullptr;
  edbms::Value alt_lo = 0;
  edbms::Value alt_hi = 0;

 private:
  std::vector<const edbms::Trapdoor*> tds_;
  std::vector<edbms::Trapdoor> owned_;
};

}  // namespace prkb::exec

#endif  // PRKB_EXEC_PLAN_H_
