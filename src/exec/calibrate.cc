#include "exec/calibrate.h"

#include <algorithm>
#include <cstdio>

namespace prkb::exec {
namespace {

/// cal.* instruments (docs/OBSERVABILITY.md). Gauges reflect the last
/// calibrator that fitted — with per-shard calibrators the shards share the
/// global gauges last-writer-wins; `.cost` and ShardReport expose the
/// per-instance values.
struct CalMetrics {
  obs::Counter* fits;
  obs::Counter* route_wins;
  obs::Counter* route_losses;
  obs::Counter* route_regret_ns;
  obs::Gauge* eval_ns;
  obs::Gauge* rt_latency_ns;
  obs::Gauge* coalesce_x1000;

  static const CalMetrics& Get() {
    static const CalMetrics m = {
        obs::MetricsRegistry::Global().GetCounter("cal.fits"),
        obs::MetricsRegistry::Global().GetCounter("cal.route.wins"),
        obs::MetricsRegistry::Global().GetCounter("cal.route.losses"),
        obs::MetricsRegistry::Global().GetCounter("cal.route.regret_ns"),
        obs::MetricsRegistry::Global().GetGauge("cal.eval_ns"),
        obs::MetricsRegistry::Global().GetGauge("cal.rt_latency_ns"),
        obs::MetricsRegistry::Global().GetGauge("cal.coalesce_x1000"),
    };
    return m;
  }
};

double Ewma(double fit, uint64_t samples, double sample, double alpha) {
  return samples == 0 ? sample : (1.0 - alpha) * fit + alpha * sample;
}

}  // namespace

CostCalibrator::CostCalibrator(double eval_ns_default,
                               double rt_latency_hint_ns)
    : eval_ns_default_(eval_ns_default),
      rt_latency_hint_ns_(rt_latency_hint_ns) {}

void CostCalibrator::ObserveRoundTrips(uint64_t trips, uint64_t total_ns,
                                       double evals) {
  if (trips == 0) return;
  const std::lock_guard<std::mutex> lock(mu_);
  const double compute = evals * EvalNsLocked();
  const double sample =
      std::max(0.0, static_cast<double>(total_ns) - compute) /
      static_cast<double>(trips);
  rt_fit_ = Ewma(rt_fit_, rt_samples_, sample, kFitAlpha);
  ++rt_samples_;
  CalMetrics::Get().fits->Add(1);
  CalMetrics::Get().rt_latency_ns->Set(
      static_cast<int64_t>(RtLatencyNsLocked()));
}

void CostCalibrator::ObservePlan(double evals, double trips,
                                 uint64_t wall_ns) {
  if (evals < 1.0) return;
  const std::lock_guard<std::mutex> lock(mu_);
  // The transport share is subtracted at the *fitted* per-trip time — what
  // this execution actually experienced — never the hinted floor, which may
  // describe a transport the local clock cannot see.
  if (trips > 0.0 && rt_samples_ == 0) return;
  const double residual = static_cast<double>(wall_ns) - trips * rt_fit_;
  // A non-positive residual means the latency fit — momentarily stale after
  // a downward transport shift — over-explains the whole run. The window
  // then carries no eval signal; fitting 0 would erode the eval rate that
  // ObserveRoundTrips' compute subtraction depends on, deadlocking both
  // fits in an all-transport attribution.
  if (residual <= 0.0 && trips > 0.0) return;
  eval_fit_ =
      Ewma(eval_fit_, eval_samples_, std::max(0.0, residual) / evals,
           kFitAlpha);
  ++eval_samples_;
  CalMetrics::Get().fits->Add(1);
  CalMetrics::Get().eval_ns->Set(static_cast<int64_t>(EvalNsLocked()));
}

void CostCalibrator::ObserveCoalescing(double factor) {
  if (!(factor >= 1.0)) factor = 1.0;
  const std::lock_guard<std::mutex> lock(mu_);
  coalesce_fit_ = Ewma(coalesce_fit_, coalesce_samples_, factor, kFitAlpha);
  ++coalesce_samples_;
  CalMetrics::Get().coalesce_x1000->Set(
      static_cast<int64_t>(std::max(1.0, coalesce_fit_) * 1000.0));
}

void CostCalibrator::ObserveRoute(const std::string& route,
                                  double est_price_ns, double actual_ns,
                                  double runner_up_est_ns) {
  const double ratio = actual_ns / std::max(est_price_ns, 1.0);
  const std::lock_guard<std::mutex> lock(mu_);
  RouteStats& rs = routes_[route];
  rs.err_ewma = Ewma(rs.err_ewma, rs.observations, ratio, kErrAlpha);
  ++rs.observations;
  // Regret-style scoring: a choice "loses" when its actual exceeded what
  // the planner expected the runner-up to cost.
  if (runner_up_est_ns > 0.0 && actual_ns > runner_up_est_ns) {
    ++rs.losses;
    rs.regret_ns += actual_ns - runner_up_est_ns;
    CalMetrics::Get().route_losses->Add(1);
    CalMetrics::Get().route_regret_ns->Add(
        static_cast<uint64_t>(actual_ns - runner_up_est_ns));
  } else {
    ++rs.wins;
    CalMetrics::Get().route_wins->Add(1);
  }
}

double CostCalibrator::EvalNsLocked() const {
  return eval_samples_ >= kWarmupSamples ? eval_fit_ : eval_ns_default_;
}

double CostCalibrator::RtLatencyNsLocked() const {
  const bool warmed = rt_samples_ >= kWarmupSamples;
  if (rt_latency_hint_ns_ > 0.0) {
    return warmed ? std::max(rt_latency_hint_ns_, rt_fit_)
                  : rt_latency_hint_ns_;
  }
  return warmed ? rt_fit_ : 0.0;
}

double CostCalibrator::eval_ns() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return EvalNsLocked();
}

double CostCalibrator::rt_latency_ns() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return RtLatencyNsLocked();
}

double CostCalibrator::coalesce_factor() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return coalesce_samples_ == 0 ? 1.0 : std::max(1.0, coalesce_fit_);
}

double CostCalibrator::RoutePenalty(const std::string& route) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = routes_.find(route);
  if (it == routes_.end()) return 1.0;
  return std::clamp(it->second.err_ewma, 1.0, kMaxPenalty);
}

CostCalibrator::Snapshot CostCalibrator::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  Snapshot s;
  s.eval_ns = EvalNsLocked();
  s.rt_latency_ns = RtLatencyNsLocked();
  s.eval_ns_default = eval_ns_default_;
  s.rt_latency_hint_ns = rt_latency_hint_ns_;
  s.eval_samples = eval_samples_;
  s.rt_samples = rt_samples_;
  s.coalesce_factor =
      coalesce_samples_ == 0 ? 1.0 : std::max(1.0, coalesce_fit_);
  s.coalesce_samples = coalesce_samples_;
  s.routes.assign(routes_.begin(), routes_.end());
  return s;
}

std::string CostCalibrator::Describe() const {
  const Snapshot s = snapshot();
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "  eval_ns: %.1f (configured %.1f, %llu sample(s))\n",
                s.eval_ns, s.eval_ns_default,
                static_cast<unsigned long long>(s.eval_samples));
  out += line;
  std::snprintf(line, sizeof(line),
                "  rt_latency_ns: %.1f (hint %.1f, %llu sample(s))\n",
                s.rt_latency_ns, s.rt_latency_hint_ns,
                static_cast<unsigned long long>(s.rt_samples));
  out += line;
  std::snprintf(line, sizeof(line),
                "  coalesce_factor: %.2fx (%llu sample(s))\n",
                s.coalesce_factor,
                static_cast<unsigned long long>(s.coalesce_samples));
  out += line;
  if (s.routes.empty()) {
    out += "  routes: none observed\n";
    return out;
  }
  for (const auto& [name, rs] : s.routes) {
    std::snprintf(
        line, sizeof(line),
        "  route %-9s %llu win(s) %llu loss(es)  err-ewma %.2f  "
        "penalty %.2f  regret %.3f ms\n",
        name.c_str(), static_cast<unsigned long long>(rs.wins),
        static_cast<unsigned long long>(rs.losses), rs.err_ewma,
        std::clamp(rs.err_ewma, 1.0, kMaxPenalty), rs.regret_ns / 1e6);
    out += line;
  }
  return out;
}

}  // namespace prkb::exec
