#ifndef PRKB_EXEC_CALIBRATE_H_
#define PRKB_EXEC_CALIBRATE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace prkb::exec {

/// Online calibration of the cost model's two priced constants plus
/// per-route estimate-error tracking (docs/COST_MODEL.md, "Calibrated vs
/// configured").
///
/// `CostConstants` starts from configuration: `eval_ns` defaults to a
/// hand-measured number and `round_trip_latency_ns` comes from
/// `PrkbOptions.rt_latency_hint_ns`. Both drift the moment TM latency, batch
/// size, or deployment topology changes. The calibrator closes the loop with
/// two EWMA fits fed by the executor after every physical plan run:
///
///   - round-trip latency L: the mean per-trip wall time, from the
///     qpf.round_trip_ns histogram delta of the run (and, for alternative
///     routes that bypass the QPF, the route's own trip count against its
///     wall clock).
///   - eval cost: the residual wall time after subtracting the transport
///     share, `max(0, wall - trips * L_fitted) / evals`.
///
/// A warmup floor (kWarmupSamples) keeps the configured values in force
/// until enough samples arrived. A configured hint > 0 additionally acts as
/// a *floor* on the fitted latency: it encodes an offline measurement of a
/// transport the local wall clock cannot see (e.g. pricing a remote
/// deployment from a local planner), so calibration may raise it but never
/// undercut it. A hint of 0 means "measure it yourself" and is fully
/// bidirectional.
///
/// Route arbitration feedback (`ObserveRoute`) tracks, per planner route,
/// an EWMA of actual/estimate price ratios — with the estimate re-priced at
/// observation-time constants, so the ratio captures *structural* estimator
/// error (selectivity mis-estimation) rather than constant drift, which the
/// two fits above already absorb. The ratio clamps into a multiplicative
/// penalty [1, kMaxPenalty] applied to that route's priced estimate at plan
/// time, demoting routes whose actuals keep losing to the runner-up's
/// estimate (cal.route.{wins,losses,regret_ns}).
///
/// Thread safety: all state behind one mutex; instruments are the global
/// registry's (stable pointers, internally atomic). Safe to share across
/// ConcurrentPrkbIndex's shared-lock selection paths.
class CostCalibrator {
 public:
  /// Samples required before a fit replaces the configured value.
  static constexpr uint64_t kWarmupSamples = 10;
  /// Calibrated latency at which the planner starts searching probe fanouts
  /// m > 1 even without a configured hint (query::CandidateFanouts).
  static constexpr double kCalibratedFanoutFloorNs = 1e4;
  /// EWMA weight of a new sample for the two constant fits: a half-life of
  /// one sample, so a transport shift is re-fitted within a handful of
  /// queries in either direction (bench_adaptive_drift gates the decay).
  static constexpr double kFitAlpha = 0.5;
  /// EWMA weight of a new sample for per-route estimate-error ratios.
  static constexpr double kErrAlpha = 0.5;
  /// Ceiling on the multiplicative route penalty.
  static constexpr double kMaxPenalty = 64.0;

  explicit CostCalibrator(double eval_ns_default = 1000.0,
                          double rt_latency_hint_ns = 0.0);

  /// One observation of `trips` round trips taking `total_ns` of wall time
  /// altogether, with `evals` evaluations computed *inside* those trips.
  /// Feeds the latency fit with the per-trip mean after charging the evals
  /// to the eval fit's current rate — on a loopback deployment the trip
  /// window is almost entirely batch compute, and without the subtraction
  /// the latency fit would absorb it and starve the eval fit to zero.
  void ObserveRoundTrips(uint64_t trips, uint64_t total_ns,
                         double evals = 0.0);

  /// One completed physical plan: `evals` QPF evaluations across `trips`
  /// round trips in `wall_ns`. Feeds the eval fit with the per-eval
  /// residual after the fitted transport share. Skipped until the latency
  /// fit has at least one sample to attribute that share (unless the plan
  /// made no trips at all).
  void ObservePlan(double evals, double trips, uint64_t wall_ns);

  /// One observation of the transport's coalescing factor c (logical rounds
  /// per backend entry, QpfOracle::CoalescingFactor). Clamped to ≥ 1 and
  /// EWMA-fitted like the constants; the planner prices round-trip latency
  /// as L/c (docs/COST_MODEL.md, "Amortised rounds").
  void ObserveCoalescing(double factor);

  /// One executed planner route choice: the chosen route's estimate
  /// (re-priced at current constants), its measured wall time, and the
  /// runner-up's re-priced estimate (0 when there was no competitor).
  void ObserveRoute(const std::string& route, double est_price_ns,
                    double actual_ns, double runner_up_est_ns);

  /// Fitted per-eval cost once warmed, the configured default before.
  double eval_ns() const;

  /// Fitted round-trip latency once warmed (never below a positive
  /// configured hint), the hint before.
  double rt_latency_ns() const;

  /// Fitted coalescing factor c ≥ 1; exactly 1.0 until observed, so
  /// non-coalescing deployments (and the golden EXPLAIN snapshots) price
  /// the full L unchanged.
  double coalesce_factor() const;

  /// Multiplicative plan-time penalty for `route`, in [1, kMaxPenalty].
  /// 1.0 for routes never observed.
  double RoutePenalty(const std::string& route) const;

  struct RouteStats {
    uint64_t observations = 0;
    uint64_t wins = 0;
    uint64_t losses = 0;
    /// EWMA of actual/estimate price ratios (>1 = underestimating).
    double err_ewma = 1.0;
    double regret_ns = 0.0;
  };

  struct Snapshot {
    double eval_ns = 0.0;
    double rt_latency_ns = 0.0;
    double eval_ns_default = 0.0;
    double rt_latency_hint_ns = 0.0;
    uint64_t eval_samples = 0;
    uint64_t rt_samples = 0;
    double coalesce_factor = 1.0;
    uint64_t coalesce_samples = 0;
    /// Sorted by route name.
    std::vector<std::pair<std::string, RouteStats>> routes;
  };
  Snapshot snapshot() const;

  /// Human-readable state for `prkb_shell`'s `.cost`.
  std::string Describe() const;

 private:
  /// Effective constants under the warmup floor; caller holds mu_.
  double EvalNsLocked() const;
  double RtLatencyNsLocked() const;

  mutable std::mutex mu_;
  const double eval_ns_default_;
  const double rt_latency_hint_ns_;
  double eval_fit_ = 0.0;
  double rt_fit_ = 0.0;
  double coalesce_fit_ = 1.0;
  uint64_t eval_samples_ = 0;
  uint64_t rt_samples_ = 0;
  uint64_t coalesce_samples_ = 0;
  std::map<std::string, RouteStats> routes_;
};

}  // namespace prkb::exec

#endif  // PRKB_EXEC_CALIBRATE_H_
