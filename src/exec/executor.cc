// Plan execution over the PRKB primitives.
//
// The operator bodies here are the relocated legacy drivers — the QPF and
// RNG consumption of every default-path operation is byte-identical to the
// pre-exec-layer code (replay_test / batch_qpf_test pin this). What the
// layer adds on top: per-operator actual-cost capture on the plan nodes,
// `exec.*` operator metrics, and one shared implementation of the
// fast-path-cache consult + StatsScope accounting that selection.cc,
// between.cc dispatch, multidim.cc and the SD+ loop used to duplicate.

#include "exec/executor.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/bitvector.h"
#include "edbms/batch_scan.h"
#include "exec/alt_route.h"
#include "exec/calibrate.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "prkb/selection.h"
#include "prkb/wal.h"

namespace prkb::exec {

using edbms::SelectionStats;
using edbms::StatsScope;
using edbms::Trapdoor;
using edbms::TupleId;

namespace {

/// One `exec.<op>` counter per operator kind (docs/OBSERVABILITY.md), plus
/// the plan-level estimate-quality histogram.
struct ExecMetrics {
  obs::Counter* op[13];
  obs::Counter* plan_runs;
  obs::LatencyHistogram* est_error_pct;
  /// Queries that paid the exact-answer batch scan over a pending insert
  /// buffer instead of flushing it (docs/OBSERVABILITY.md, update.buffer.*).
  obs::Counter* buffered_scans;

  static const ExecMetrics& Get() {
    auto& reg = obs::MetricsRegistry::Global();
    static const ExecMetrics m = {
        {
            reg.GetCounter("exec.full_table"),
            reg.GetCounter("exec.empty_result"),
            reg.GetCounter("exec.linear_scan"),
            reg.GetCounter("exec.predicate_select"),
            reg.GetCounter("exec.fast_path_lookup"),
            reg.GetCounter("exec.qfilter_probe"),
            reg.GetCounter("exec.partition_scan"),
            reg.GetCounter("exec.apply_split"),
            reg.GetCounter("exec.grid_prune"),
            reg.GetCounter("exec.intersect"),
            reg.GetCounter("exec.buffer_scan"),
            reg.GetCounter("exec.buffer_flush"),
            reg.GetCounter("exec.alt_select"),
        },
        reg.GetCounter("exec.plan_runs"),
        reg.GetHistogram("exec.est_error_pct"),
        reg.GetCounter("update.buffer.buffered_scans"),
    };
    return m;
  }
};

/// Snapshots the oracle counters; Commit() stamps the delta onto a node as
/// its actual cost and bumps the operator's `exec.*` counter.
class NodeCost {
 public:
  explicit NodeCost(const edbms::Edbms* db)
      : db_(db), uses0_(db->uses()), trips0_(db->round_trips()) {}

  void Commit(PlanNode* node) const {
    if (node == nullptr) return;
    node->actual.executed = true;
    node->actual.qpf_uses = db_->uses() - uses0_;
    node->actual.qpf_round_trips = db_->round_trips() - trips0_;
    ExecMetrics::Get().op[static_cast<size_t>(node->op)]->Add(1);
  }

  uint64_t uses() const { return db_->uses() - uses0_; }
  uint64_t round_trips() const { return db_->round_trips() - trips0_; }

 private:
  const edbms::Edbms* db_;
  uint64_t uses0_;
  uint64_t trips0_;
};

void MarkZeroCost(PlanNode* node, bool cache_hit = false) {
  if (node == nullptr) return;
  node->actual.executed = true;
  node->actual.cache_hit = cache_hit;
  ExecMetrics::Get().op[static_cast<size_t>(node->op)]->Add(1);
}

}  // namespace

CostConstants ConstantsFor(const core::PrkbOptions& options,
                           size_t probe_fanout_override) {
  CostConstants c = CostConstants::Defaults();
  size_t m = probe_fanout_override != 0 ? probe_fanout_override
                                        : options.probe_fanout;
  // The sequential-probes ablation runs the paper's binary search, which the
  // m = 2 formulas price exactly.
  if (options.sequential_probes && probe_fanout_override == 0) m = 2;
  c.probe_fanout = static_cast<double>(m < 2 ? 2 : m);
  c.scan_batch =
      static_cast<double>(options.batch_size < 1 ? 1 : options.batch_size);
  c.round_trip_latency_ns = options.rt_latency_hint_ns;
  c.buffer_flush_horizon = options.buffer_flush_horizon;
  return c;
}

CostConstants ConstantsFor(const core::PrkbIndex& index,
                           size_t probe_fanout_override) {
  CostConstants c = ConstantsFor(index.options(), probe_fanout_override);
  const CostCalibrator& cal = index.calibrator();
  c.eval_ns = cal.eval_ns();
  // Under a coalescing transport (net::RoundBus) each logical round shares
  // its backend entry with c−1 concurrent rounds on average, so the planner
  // prices the amortised L/c. The factor is exactly 1.0 until observed —
  // direct backends and the golden EXPLAIN snapshots are unchanged.
  c.round_trip_latency_ns = cal.rt_latency_ns() / cal.coalesce_factor();
  return c;
}

core::ProbeSchedOptions SchedFor(const core::PrkbIndex& index,
                                 const Plan& plan) {
  core::ProbeSchedOptions o = index.options().sched();
  if (plan.probe_fanout != 0) {
    o.fanout = plan.probe_fanout < 2 ? 2 : plan.probe_fanout;
  }
  return o;
}

std::vector<TupleId> Executor::RunComparison(
    PlanNode* node, const Trapdoor& td, const core::TrapdoorFp* fp,
    const core::ProbeSchedOptions& sopt) {
  core::Pop& pop = index_->pop(td.attr);
  if (pop.k() == 0) return {};  // empty table

  Rng rng = index_->OpRng();
  const NodeCost probe_cost(index_->db());
  core::PrepaidScan prepaid;
  const core::QFilterResult filter =
      index_->options().sequential_probes
          ? core::QFilter(pop, td, index_->db(), &rng)
          : core::ScheduledQFilter(pop, td, index_->db(), &rng, sopt,
                                   &prepaid);
  // Speculative prefetches ride the filter's final round, so their uses land
  // on the probe node; QScan consumes them instead of re-paying.
  probe_cost.Commit(node->Child(PlanOp::kQFilterProbe));

  const NodeCost scan_cost(index_->db());
  core::QScanResult scan =
      core::QScan(pop, filter, td, index_->db(),
                  index_->options().scan_policy(), &prepaid);
  scan_cost.Commit(node->Child(PlanOp::kPartitionScan));
  core::RecordSpeculativeWaste(prepaid);

  // Assemble TW ∪ TWNS.
  std::vector<TupleId> result;
  size_t win_size = 0;
  for (size_t p = filter.win_begin; p < filter.win_end; ++p) {
    win_size += pop.members_at(p).Size();
  }
  result.reserve(win_size + scan.winners.size());
  for (size_t p = filter.win_begin; p < filter.win_end; ++p) {
    pop.members_at(p).AppendTo(&result);
  }
  result.insert(result.end(), scan.winners.begin(), scan.winners.end());

  const obs::ObsTracer::Span split_span("exec.apply_split");
  const uint64_t cut_id =
      core::ApplyComparisonSplit(&pop, filter, std::move(scan), td);
  MarkZeroCost(node->Child(PlanOp::kApplySplit));
  // Cache only a cut of our own making: the predicate's separating point is
  // exactly there, so the chain sides stay exact across future inserts.
  // A no-split outcome (boundary-aligned predicate) is NOT cacheable — its
  // threshold lies somewhere in a value gap no retained cut pins down.
  if (fp != nullptr && cut_id != core::Pop::kNoCut) {
    pop.RememberComparison(*fp, cut_id);
  }
  return result;
}

std::vector<TupleId> Executor::RunBetween(PlanNode* node, const Trapdoor& td,
                                          const core::TrapdoorFp* fp,
                                          const core::ProbeSchedOptions& sopt) {
  static obs::Counter* const between_probes =
      obs::MetricsRegistry::Global().GetCounter("between.probes");
  static obs::Counter* const between_probe_trips =
      obs::MetricsRegistry::Global().GetCounter("between.probe_trips");
  const uint64_t probes0 = between_probes->value();
  const uint64_t probe_trips0 = between_probe_trips->value();
  const NodeCost cost(index_->db());
  std::vector<TupleId> result = index_->SelectBetween(td, fp, sopt);
  // Split the operation's QPF spend the way the Appendix-A phases do:
  // sampled probes (anchor hunt + end searches) vs end-partition scans. The
  // driver reports the probe phases' round trips itself (the scheduler
  // ships several probes per trip); the scan stage gets the remainder.
  const uint64_t probes = between_probes->value() - probes0;
  const uint64_t probe_trips = between_probe_trips->value() - probe_trips0;
  if (PlanNode* pn = node->Child(PlanOp::kQFilterProbe)) {
    pn->actual.executed = true;
    pn->actual.qpf_uses = probes;
    pn->actual.qpf_round_trips = probe_trips;
    ExecMetrics::Get().op[static_cast<size_t>(pn->op)]->Add(1);
  }
  if (PlanNode* sn = node->Child(PlanOp::kPartitionScan)) {
    sn->actual.executed = true;
    sn->actual.qpf_uses = cost.uses() - probes;
    sn->actual.qpf_round_trips = cost.round_trips() - probe_trips;
    ExecMetrics::Get().op[static_cast<size_t>(sn->op)]->Add(1);
  }
  MarkZeroCost(node->Child(PlanOp::kApplySplit));
  return result;
}

std::vector<TupleId> Executor::RunPredicateBody(Plan* plan, PlanNode* node) {
  const NodeCost cost(index_->db());
  std::vector<TupleId> result;
  if (node->op == PlanOp::kLinearScan) {
    // No knowledge base on this attribute: plain QPF scan.
    edbms::BaselineScanner scanner(index_->db(), index_->options().scan_policy());
    result = scanner.Select(plan->td(node->td_index));
    cost.Commit(node);
    return result;
  }
  assert(node->op == PlanOp::kPredicateSelect);
  const Trapdoor& td = plan->td(node->td_index);
  // Deferred inserts, flush route (DESIGN.md §14): place the whole buffer
  // before the probes run, so the chain the QFilter walks already covers
  // every tuple and the query needs no merge step.
  if (PlanNode* flush = node->Child(PlanOp::kBufferFlush)) {
    const NodeCost flush_cost(index_->db());
    index_->FlushBuffered(td.attr);
    flush_cost.Commit(flush);
  }
  const core::ProbeSchedOptions sopt = SchedFor(*index_, *plan);
  PlanNode* lookup = node->Child(PlanOp::kFastPathLookup);
  if (lookup == nullptr) {
    // Fast path disabled: always probe (the paper's literal algorithms).
    result = td.kind == edbms::PredicateKind::kBetween
                 ? RunBetween(node, td, nullptr, sopt)
                 : RunComparison(node, td, nullptr, sopt);
  } else {
    core::Pop& pop = index_->pop(td.attr);
    const obs::ObsTracer::Span lookup_span("exec.fast_path_lookup");
    const core::TrapdoorFp fp = core::FingerprintTrapdoor(td);
    if (const core::Pop::FastPathEntry* e = pop.LookupFastPath(fp)) {
      // The chain was already cut by this exact trapdoor: the answer is the
      // satisfied side of its cut(s). Zero QPF uses, no probes, no split.
      core::CacheMetrics::Get().hits->Add(1);
      MarkZeroCost(lookup, /*cache_hit=*/true);
      result = pop.AssembleFastPath(*e);
      node->actual.cache_hit = true;
    } else {
      core::CacheMetrics::Get().misses->Add(1);
      MarkZeroCost(lookup, /*cache_hit=*/false);
      result = td.kind == edbms::PredicateKind::kBetween
                   ? RunBetween(node, td, &fp, sopt)
                   : RunComparison(node, td, &fp, sopt);
    }
  }
  // Deferred inserts, scan route: the chain's answer misses the buffered
  // tuples, so the query stays exact by batch-testing the buffer and merging
  // its winners. Buffered tuples are off-chain by invariant (Pop::Validate),
  // so the merge can never duplicate a result.
  if (PlanNode* bscan = node->Child(PlanOp::kBufferScan)) {
    const NodeCost scan_cost(index_->db());
    const core::Pop& pop = index_->pop(td.attr);
    std::vector<TupleId> btids;
    pop.insert_buffer().AppendTo(&btids);
    const std::vector<uint8_t> sat = edbms::ScanTuples(
        index_->db(), td, btids, index_->options().scan_policy());
    for (size_t j = 0; j < btids.size(); ++j) {
      if (sat[j] != 0) result.push_back(btids[j]);
    }
    scan_cost.Commit(bscan);
    ExecMetrics::Get().buffered_scans->Add(1);
  }
  cost.Commit(node);
  return result;
}

std::vector<TupleId> Executor::RunIntersect(Plan* plan, PlanNode* node) {
  const NodeCost cost(index_->db());
  std::vector<TupleId> result;
  bool first = true;
  BitVector mask;
  for (PlanNode& child : node->children) {
    std::vector<TupleId> part;
    {
      // Each per-predicate subtree keeps the legacy nested span + per-op
      // accounting the SD+ loop produced by calling Select() per trapdoor.
      const obs::ObsTracer::Span span("prkb.select");
      StatsScope scope(index_->db(), nullptr, "select");
      part = RunPredicateBody(plan, &child);
    }
    if (first) {
      mask.Resize(index_->db()->num_rows());
      for (TupleId tid : part) mask.Set(tid);
      first = false;
    } else {
      BitVector m2(index_->db()->num_rows());
      for (TupleId tid : part) m2.Set(tid);
      mask.And(m2);
    }
  }
  if (!first) {
    for (uint32_t tid : mask.ToIndices()) result.push_back(tid);
  }
  cost.Commit(node);
  return result;
}

std::vector<TupleId> Executor::RunGridPrune(Plan* plan, PlanNode* node) {
  // Buffered dimensions flush before the grid runs: PRKB(MD) classifies by
  // chain membership, so every queried dimension must cover its tuples.
  for (PlanNode& child : node->children) {
    if (child.op != PlanOp::kBufferFlush) continue;
    const NodeCost flush_cost(index_->db());
    index_->FlushBuffered(child.attr);
    flush_cost.Commit(&child);
  }
  std::vector<const Trapdoor*> tds;
  tds.reserve(node->children.size());
  for (const PlanNode& child : node->children) {
    if (child.op != PlanOp::kQFilterProbe) continue;
    tds.push_back(&plan->td(child.td_index));
  }
  const NodeCost cost(index_->db());
  std::vector<TupleId> result = index_->RunMd(tds, SchedFor(*index_, *plan));
  cost.Commit(node);
  return result;
}

std::vector<TupleId> Executor::Run(Plan* plan, SelectionStats* stats) {
  static obs::LatencyHistogram* const qpf_rt_ns =
      obs::MetricsRegistry::Global().GetHistogram("qpf.round_trip_ns");
  PlanNode* root = &plan->root;
  ExecMetrics::Get().plan_runs->Add(1);
  const NodeCost plan_cost(index_->db());
  // Calibration signal: this run's share of the qpf.round_trip_ns histogram
  // gives the measured per-trip latency; the residual wall clock after that
  // share gives the per-eval cost. Concurrent executors smear each other's
  // deltas — acceptable for an EWMA of the same deployment-wide transport.
  const uint64_t rt_count0 = qpf_rt_ns->count();
  const uint64_t rt_sum0 = qpf_rt_ns->sum();
  const uint64_t t0 = obs::ObsTracer::NowNs();
  AltActuals alt_actuals;
  std::vector<TupleId> result;
  switch (root->op) {
    case PlanOp::kFullTable: {
      if (stats != nullptr) *stats = SelectionStats{};
      const edbms::Edbms* db = index_->db();
      for (TupleId tid = 0; tid < db->num_rows(); ++tid) {
        if (db->IsLive(tid)) result.push_back(tid);
      }
      MarkZeroCost(root);
      break;
    }
    case PlanOp::kEmptyResult: {
      if (stats != nullptr) *stats = SelectionStats{};
      MarkZeroCost(root);
      break;
    }
    case PlanOp::kLinearScan:
    case PlanOp::kPredicateSelect: {
      const obs::ObsTracer::Span span("prkb.select");
      StatsScope scope(index_->db(), stats, "select");
      result = RunPredicateBody(plan, root);
      break;
    }
    case PlanOp::kIntersect: {
      const obs::ObsTracer::Span span("prkb.select_sdplus");
      StatsScope scope(index_->db(), stats, "select_sdplus");
      result = RunIntersect(plan, root);
      break;
    }
    case PlanOp::kGridPrune: {
      StatsScope scope(index_->db(), stats, "select_md");
      result = RunGridPrune(plan, root);
      break;
    }
    case PlanOp::kAltSelect: {
      // An alternative route won the arbitration: it executes outside the
      // PRKB machinery and reports its own measured work. The StatsScope
      // inside the route (or the zero-fill below) keeps stats semantics.
      assert(plan->alt_route != nullptr);
      const obs::ObsTracer::Span span("exec.alt_select");
      result = plan->alt_route->Execute(root->attr, plan->alt_lo,
                                        plan->alt_hi, stats, &alt_actuals);
      root->actual.executed = true;
      root->actual.qpf_uses = alt_actuals.evals;
      root->actual.qpf_round_trips = alt_actuals.round_trips;
      ExecMetrics::Get().op[static_cast<size_t>(root->op)]->Add(1);
      break;
    }
    default:
      assert(false && "not a plan root");
      break;
  }
  const uint64_t wall_ns = obs::ObsTracer::NowNs() - t0;
  CostCalibrator& cal = index_->calibrator();
  if (root->op == PlanOp::kAltSelect) {
    // The route's own trip count against the whole wall clock, with its
    // per-candidate decrypts charged to the eval rate. No eval fit — the
    // route's evals are not QPF evaluations.
    cal.ObserveRoundTrips(alt_actuals.round_trips, wall_ns,
                          static_cast<double>(alt_actuals.evals));
  } else {
    const uint64_t trips = qpf_rt_ns->count() - rt_count0;
    const uint64_t trip_ns = qpf_rt_ns->sum() - rt_sum0;
    cal.ObserveRoundTrips(trips, trip_ns,
                          static_cast<double>(plan_cost.uses()));
    cal.ObservePlan(static_cast<double>(plan_cost.uses()),
                    static_cast<double>(plan_cost.round_trips()), wall_ns);
  }
  // Close the round-bus feedback loop: fold the transport's observed
  // coalescing factor into the fit the planner prices L/c from, and push
  // the fitted latency back down so the bus can re-derive its linger
  // window. Both are no-ops on direct backends (factor 1.0, empty
  // CalibrateTransport).
  cal.ObserveCoalescing(index_->db()->CoalescingFactor());
  index_->db()->CalibrateTransport(
      static_cast<uint64_t>(std::max(0.0, cal.rt_latency_ns())));
  if (root->has_estimate) {
    const double est = root->estimated.Total();
    const double err =
        std::abs(static_cast<double>(plan_cost.uses()) - est) /
        std::max(est, 1.0);
    ExecMetrics::Get().est_error_pct->Record(
        static_cast<uint64_t>(err * 100.0));
  }
  // Group-commit the chain mutations this plan produced. Run() is the one
  // funnel every selection path shares (PrkbIndex::Select* and the planner's
  // direct execution), so the WAL's one-fsync-per-logical-op contract holds
  // regardless of which layer drove the plan.
  if (core::PrkbWal* wal = index_->wal()) (void)wal->Commit();
  return result;
}

bool Executor::TryRunReadOnly(const core::PrkbIndex& index, const Plan& plan,
                              std::vector<TupleId>* out,
                              SelectionStats* stats) {
  const PlanNode& root = plan.root;
  switch (root.op) {
    case PlanOp::kLinearScan: {
      // No chain to mutate: the baseline scan is read-only w.r.t. the index
      // (the QPF oracle itself is thread-safe).
      const obs::ObsTracer::Span span("prkb.select");
      StatsScope scope(index.db_, stats, "select");
      edbms::BaselineScanner scanner(index.db_, index.options().scan_policy());
      *out = scanner.Select(plan.td(root.td_index));
      return true;
    }
    case PlanOp::kPredicateSelect: {
      // A planned buffer flush rewrites the chain: exclusive lock only.
      if (root.Child(PlanOp::kBufferFlush) != nullptr) return false;
      const Trapdoor& td = plan.td(root.td_index);
      const core::Pop& pop = index.pop(td.attr);
      if (pop.k() == 0 && pop.insert_buffer().Empty()) {
        const obs::ObsTracer::Span span("prkb.select");
        StatsScope scope(index.db_, stats, "select");
        out->clear();
        return true;
      }
      if (root.Child(PlanOp::kFastPathLookup) == nullptr) return false;
      const core::Pop::FastPathEntry* e =
          pop.LookupFastPath(core::FingerprintTrapdoor(td));
      // A miss bails out before spending any QPF; the exclusive retry both
      // answers and records the miss, so cache accounting stays single-count.
      if (e == nullptr) return false;
      const obs::ObsTracer::Span span("prkb.select");
      StatsScope scope(index.db_, stats, "select");
      core::CacheMetrics::Get().hits->Add(1);
      *out = pop.AssembleFastPath(*e);
      // The scan route mutates nothing: batch-test the buffer and merge, as
      // the exclusive path would. QPF evaluation is thread-safe.
      if (root.Child(PlanOp::kBufferScan) != nullptr &&
          !pop.insert_buffer().Empty()) {
        std::vector<TupleId> btids;
        pop.insert_buffer().AppendTo(&btids);
        const std::vector<uint8_t> sat = edbms::ScanTuples(
            index.db_, td, btids, index.options().scan_policy());
        for (size_t j = 0; j < btids.size(); ++j) {
          if (sat[j] != 0) out->push_back(btids[j]);
        }
        ExecMetrics::Get().buffered_scans->Add(1);
      }
      return true;
    }
    case PlanOp::kFullTable:
    case PlanOp::kEmptyResult:
      // Zero-QPF roots never mutate, but they are planner-level shapes the
      // shared-lock facade does not serve; fall through to the safe answer.
    default:
      return false;
  }
}

// ---- Plan builders --------------------------------------------------------

namespace {

PlanNode BuildPredicateNode(const core::PrkbIndex& index, const Plan& plan,
                            int i, bool estimate) {
  const Trapdoor& td = plan.td(i);
  const CostConstants cc = ConstantsFor(index, plan.probe_fanout);
  if (!index.IsEnabled(td.attr)) {
    PlanNode node(PlanOp::kLinearScan, td.attr, i);
    if (estimate) {
      node.estimated = EstimateLinearScan(index.db()->num_rows(), cc);
      node.has_estimate = true;
    }
    return node;
  }
  PlanNode node(PlanOp::kPredicateSelect, td.attr, i);
  const bool between = td.kind == edbms::PredicateKind::kBetween;

  CostEstimate full;
  bool cached = false;
  if (estimate) {
    const core::PrkbIndex::ChainStats st = index.StatsFor(td.attr);
    full = between ? EstimateBetween(st.k, st.tuples, cc)
                   : EstimateComparison(st.k, st.tuples, cc);
    // Plan-time peek (no metrics): an already-cut trapdoor answers from the
    // chain alone. Hit/miss accounting happens at execution only.
    if (index.options().fast_path &&
        index.pop(td.attr).LookupFastPath(core::FingerprintTrapdoor(td)) !=
            nullptr) {
      full = CostEstimate{};
      cached = true;
      node.detail = "cached";
    }
  }

  // Deferred-insert routing (DESIGN.md §14, docs/COST_MODEL.md): a pending
  // buffer must be either flushed onto the chain or batch-scanned for this
  // query to stay exact. Flush pays its placement probes once; the scan
  // recurs on every query until someone flushes — so flush wins whenever its
  // one-off price is within buffer_flush_horizon of a single scan (always at
  // high transport latency, where the lock-step rounds dominate), and
  // unconditionally once the buffer hits the synchronous-flush cap.
  const size_t buffered = index.pop(td.attr).insert_buffer().Size();
  if (buffered != 0) {
    const CostEstimate flush_est =
        EstimateBufferFlush(buffered, index.pop(td.attr).k(), cc);
    const CostEstimate scan_est = EstimateBufferScan(buffered, cc);
    const bool cap_hit = index.options().max_buffered_inserts != 0 &&
                         buffered >= index.options().max_buffered_inserts;
    const bool flush =
        cap_hit || PriceNs(flush_est, cc) <=
                       cc.buffer_flush_horizon * PriceNs(scan_est, cc);
    PlanNode buf(flush ? PlanOp::kBufferFlush : PlanOp::kBufferScan, td.attr,
                 i);
    buf.detail = std::to_string(buffered) + " buffered";
    if (estimate) {
      buf.estimated = flush ? flush_est : scan_est;
      buf.has_estimate = true;
      full += buf.estimated;
    }
    node.children.push_back(std::move(buf));
  }

  if (index.options().fast_path) {
    PlanNode lookup(PlanOp::kFastPathLookup, td.attr, i);
    if (estimate) lookup.has_estimate = true;
    node.children.push_back(std::move(lookup));
  }
  PlanNode probe(PlanOp::kQFilterProbe, td.attr, i);
  if (between) probe.detail = "anchor+ends";
  PlanNode scan(PlanOp::kPartitionScan, td.attr, i);
  scan.detail = between ? "end-partitions" : "ns-pair";
  PlanNode split(PlanOp::kApplySplit, td.attr, i);
  if (estimate) {
    // Split the trip estimate the way the stages pay it: chunked scans get
    // ⌈scans/batch⌉, the filter rounds get the rest.
    const double scan_trips =
        cached ? 0.0 : std::ceil(full.scans / std::max(cc.scan_batch, 1.0));
    probe.estimated = CostEstimate{cached ? 0.0 : full.probes, 0.0,
                                   cached ? 0.0 : full.round_trips - scan_trips};
    probe.has_estimate = true;
    scan.estimated = CostEstimate{0.0, cached ? 0.0 : full.scans, scan_trips};
    scan.has_estimate = true;
    split.has_estimate = true;
    node.estimated = full;
    node.has_estimate = true;
  }
  node.children.push_back(std::move(probe));
  node.children.push_back(std::move(scan));
  node.children.push_back(std::move(split));
  return node;
}

}  // namespace

void BuildSingleSelectPlan(const core::PrkbIndex& index, Plan* plan,
                           bool estimate) {
  plan->root = BuildPredicateNode(index, *plan, 0, estimate);
  plan->summary = plan->td(0).kind == edbms::PredicateKind::kBetween
                      ? "prkb-between"
                      : "prkb-sd";
}

void BuildSdPlusPlan(const core::PrkbIndex& index, Plan* plan, bool estimate) {
  PlanNode root(PlanOp::kIntersect, 0, -1);
  root.children.reserve(plan->num_trapdoors());
  for (size_t i = 0; i < plan->num_trapdoors(); ++i) {
    PlanNode child =
        BuildPredicateNode(index, *plan, static_cast<int>(i), estimate);
    if (estimate) root.estimated += child.estimated;
    root.children.push_back(std::move(child));
  }
  root.has_estimate = estimate;
  plan->root = std::move(root);
  plan->summary =
      "prkb-sd+(" + std::to_string(plan->num_trapdoors()) + " trapdoors)";
}

void BuildMdGridPlan(const core::PrkbIndex& index, Plan* plan, bool estimate) {
  PlanNode root(PlanOp::kGridPrune, 0, -1);
  root.children.reserve(plan->num_trapdoors());
  const CostConstants cc = ConstantsFor(index, plan->probe_fanout);
  std::vector<MdDim> dims;
  for (size_t i = 0; i < plan->num_trapdoors(); ++i) {
    const Trapdoor& td = plan->td(static_cast<int>(i));
    assert(td.kind == edbms::PredicateKind::kComparison &&
           index.IsEnabled(td.attr));
    // A buffered dimension always flushes: the grid classifies by chain
    // membership, so its tuples must be on the chain before pruning.
    const size_t buffered = index.pop(td.attr).insert_buffer().Size();
    if (buffered != 0) {
      PlanNode flush(PlanOp::kBufferFlush, td.attr, static_cast<int>(i));
      flush.detail = std::to_string(buffered) + " buffered";
      if (estimate) {
        flush.estimated =
            EstimateBufferFlush(buffered, index.pop(td.attr).k(), cc);
        flush.has_estimate = true;
        root.estimated += flush.estimated;
      }
      root.children.push_back(std::move(flush));
    }
    PlanNode child(PlanOp::kQFilterProbe, td.attr, static_cast<int>(i));
    if (estimate) {
      const core::PrkbIndex::ChainStats st = index.StatsFor(td.attr);
      bool cached =
          index.options().fast_path &&
          index.pop(td.attr).LookupFastPath(core::FingerprintTrapdoor(td)) !=
              nullptr;
      if (cached) {
        child.detail = "cached";
      } else {
        dims.push_back(MdDim{st.k, st.tuples});
        // Per-dimension filter trips; the root pays only the fused max.
        child.estimated = CostEstimate{
            EstimateComparison(st.k, st.tuples, cc).probes, 0.0,
            std::min(static_cast<double>(st.k),
                     1.0 + CeilLogM(st.k, cc.probe_fanout))};
      }
      child.has_estimate = true;
    }
    root.children.push_back(std::move(child));
  }
  if (estimate) {
    // += keeps any buffer-flush children's estimates accumulated above.
    root.estimated += EstimateMdGrid(dims, cc);
    root.has_estimate = true;
  }
  plan->root = std::move(root);
  plan->summary =
      "prkb-md(" + std::to_string(plan->num_trapdoors()) + " trapdoors)";
}

void BuildFullTablePlan(Plan* plan) {
  plan->root = PlanNode(PlanOp::kFullTable, 0, -1);
  plan->root.has_estimate = true;
  plan->summary = "full-table(no predicate)";
}

void BuildEmptyPlan(Plan* plan) {
  plan->root = PlanNode(PlanOp::kEmptyResult, 0, -1);
  plan->root.has_estimate = true;
  plan->summary = "empty(contradiction)";
}

}  // namespace prkb::exec
