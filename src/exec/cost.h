#ifndef PRKB_EXEC_COST_H_
#define PRKB_EXEC_COST_H_

#include <cstddef>
#include <vector>

namespace prkb::exec {

/// Estimated QPF spend of one plan operator, split the way the paper (and
/// docs/COST_MODEL.md) splits every selection cost: sampled probes (QFilter
/// binary searches, BETWEEN anchor hunts) versus exhaustive-scan evaluations
/// (NS partitions, end partitions, MD bands). Unit: QPF uses.
struct CostEstimate {
  double probes = 0.0;
  double scans = 0.0;

  double Total() const { return probes + scans; }
  CostEstimate& operator+=(const CostEstimate& o) {
    probes += o.probes;
    scans += o.scans;
    return *this;
  }
};

/// Calibratable constants behind the estimate formulas. The defaults are
/// fitted against the paper's bounds and this repo's bench JSON — see
/// "Calibrating the estimator" in docs/COST_MODEL.md for the re-fitting
/// procedure; the tests in tests/exec_test.cc golden-pin the formulas.
struct CostConstants {
  /// The additive term of the QFilter bound 2 + ⌈lg k⌉ (Sec. 6.1).
  double qfilter_overhead = 2.0;
  /// NS partitions a comparison QScan pays for on average: 2 partitions
  /// bounded above, minus the early-stop saving (Sec. 6.2 lines 9-13;
  /// `qscan.early_stops` in bench JSON sits near 50%).
  double comparison_scan_partitions = 1.5;
  /// Expected partition samples until the BETWEEN anchor hunt hits the
  /// satisfied band (Appendix A phase 1), at the neutral planning-time
  /// selectivity assumption of ~25%.
  double between_anchor_probes = 4.0;
  /// End partitions a BETWEEN actually scans of the ≤ 4 candidates
  /// (`between.end_scans` / `between.invocations` in bench JSON).
  double between_end_partitions = 3.0;
  /// NS partitions contributing band tuples per MD dimension (≤ 2).
  double md_band_partitions = 2.0;
  /// Fraction of MD band tuples surviving free grid pruning and costing one
  /// evaluation each (`md.evals` / `md.band_tuples` in bench JSON).
  double md_band_eval_factor = 0.5;

  static const CostConstants& Defaults();
};

/// ⌈lg k⌉ with lg 0 = lg 1 = 0, as used by the paper's probe bounds.
double CeilLg(size_t k);

/// Baseline linear scan: one QPF use per live tuple (Sec. 3.2).
CostEstimate EstimateLinearScan(size_t live_rows,
                                const CostConstants& c = CostConstants::Defaults());

/// Uncached single-comparison selection on a chain of k partitions over n
/// tuples: QFilter probes + NS-pair scan (Sec. 5).
CostEstimate EstimateComparison(size_t k, size_t n,
                                const CostConstants& c = CostConstants::Defaults());

/// Uncached BETWEEN selection (Appendix A): anchor hunt + two end binary
/// searches + end-partition scans.
CostEstimate EstimateBetween(size_t k, size_t n,
                             const CostConstants& c = CostConstants::Defaults());

/// One (k, n) chain shape per MD dimension. Dimensions answered from the
/// repeat-predicate cache classify for free and must be omitted.
struct MdDim {
  size_t k = 0;
  size_t n = 0;
};

/// PRKB(MD) grid selection over the given uncached dimensions: one QFilter
/// per dimension plus the pruned NS-band evaluations (Sec. 6.2).
CostEstimate EstimateMdGrid(const std::vector<MdDim>& dims,
                            const CostConstants& c = CostConstants::Defaults());

}  // namespace prkb::exec

#endif  // PRKB_EXEC_COST_H_
