#ifndef PRKB_EXEC_COST_H_
#define PRKB_EXEC_COST_H_

#include <cstddef>
#include <vector>

namespace prkb::exec {

/// Estimated QPF spend of one plan operator, split the way the paper (and
/// docs/COST_MODEL.md) splits every selection cost: sampled probes (QFilter
/// searches, BETWEEN anchor hunts) versus exhaustive-scan evaluations (NS
/// partitions, end partitions, MD bands). Unit: QPF uses. `round_trips`
/// prices the same work in backend entries — with the m-ary probe scheduler
/// the two axes diverge (more probes, far fewer trips), and PriceNs combines
/// them under a transport-latency assumption.
struct CostEstimate {
  double probes = 0.0;
  double scans = 0.0;
  double round_trips = 0.0;

  double Total() const { return probes + scans; }
  CostEstimate& operator+=(const CostEstimate& o) {
    probes += o.probes;
    scans += o.scans;
    round_trips += o.round_trips;
    return *this;
  }
};

/// Calibratable constants behind the estimate formulas. The defaults are
/// fitted against the paper's bounds and this repo's bench JSON — see
/// "Calibrating the estimator" in docs/COST_MODEL.md for the re-fitting
/// procedure; the tests in tests/exec_test.cc golden-pin the formulas.
struct CostConstants {
  /// The additive term of the QFilter bound 2 + ⌈lg k⌉ (Sec. 6.1).
  double qfilter_overhead = 2.0;
  /// NS partitions a comparison QScan pays for on average: 2 partitions
  /// bounded above, minus the early-stop saving (Sec. 6.2 lines 9-13;
  /// `qscan.early_stops` in bench JSON sits near 50%).
  double comparison_scan_partitions = 1.5;
  /// Expected partition samples until the BETWEEN anchor hunt hits the
  /// satisfied band (Appendix A phase 1), at the neutral planning-time
  /// selectivity assumption of ~25%.
  double between_anchor_probes = 4.0;
  /// End partitions a BETWEEN actually scans of the ≤ 4 candidates
  /// (`between.end_scans` / `between.invocations` in bench JSON).
  double between_end_partitions = 3.0;
  /// NS partitions contributing band tuples per MD dimension (≤ 2).
  double md_band_partitions = 2.0;
  /// Fraction of MD band tuples surviving free grid pruning and costing one
  /// evaluation each (`md.evals` / `md.band_tuples` in bench JSON).
  double md_band_eval_factor = 0.5;
  /// m of the batched probe scheduler (DESIGN.md §11): each search round
  /// ships m−1 pivots in one trip, so probe bounds inflate to
  /// overhead + (m−1)·⌈log_m k⌉ while filter trips shrink to
  /// 1 + ⌈log_m k⌉. 2 reproduces the paper's sequential binary-search
  /// formulas exactly.
  double probe_fanout = 2.0;
  /// Tuples per scan-path QPF round trip (PrkbOptions::batch_size).
  double scan_batch = 1.0;
  /// Assumed transport latency per backend round trip, in ns (0 = the
  /// paper's pure use-count costing; PriceNs then ranks by Total() alone).
  double round_trip_latency_ns = 0.0;
  /// Assumed compute cost of one QPF evaluation, in ns.
  double eval_ns = 1000.0;
  /// Deferred-insert routing bias (PrkbOptions::buffer_flush_horizon): flush
  /// the buffer when its one-off price is within this factor of a single
  /// buffered scan — the flush pays once, the scan recurs on every query
  /// until someone flushes (docs/COST_MODEL.md).
  double buffer_flush_horizon = 8.0;
  /// SSE posting-list work per SRC-i candidate, as a fraction of one QPF
  /// evaluation: the two-level TDAG retrieval decrypts and dedups roughly
  /// one posting per candidate before the TM confirms it.
  double srci_posting_eval_factor = 0.5;
  /// Cost of one OPE code comparison as a fraction of a QPF evaluation —
  /// plain integer compares on the SP, no crypto per tuple.
  double ope_code_eval_factor = 0.01;
  /// Smallest SRC-i candidate set a range retrieval produces: TDAG posting
  /// nodes are power-of-two position blocks, so even a range matching a
  /// handful of tuples retrieves (and confirm-decrypts) a whole block.
  double srci_candidate_floor = 64.0;

  static const CostConstants& Defaults();
};

/// ⌈lg k⌉ with lg 0 = lg 1 = 0, as used by the paper's probe bounds.
double CeilLg(size_t k);

/// ⌈log_m k⌉ with the same degenerate-k convention; m < 2 is clamped to 2.
double CeilLogM(size_t k, double m);

/// Wall-clock price of an estimate: evaluations at eval_ns plus round trips
/// at round_trip_latency_ns. With latency 0 this degenerates to the paper's
/// QPF-use ranking (scaled by eval_ns), so planner decisions are unchanged.
double PriceNs(const CostEstimate& est, const CostConstants& c);

/// Baseline linear scan: one QPF use per live tuple (Sec. 3.2).
CostEstimate EstimateLinearScan(size_t live_rows,
                                const CostConstants& c = CostConstants::Defaults());

/// Uncached single-comparison selection on a chain of k partitions over n
/// tuples: QFilter probes + NS-pair scan (Sec. 5).
CostEstimate EstimateComparison(size_t k, size_t n,
                                const CostConstants& c = CostConstants::Defaults());

/// Uncached BETWEEN selection (Appendix A): anchor hunt + two end searches
/// (fused into shared rounds by the scheduler) + end-partition scans.
CostEstimate EstimateBetween(size_t k, size_t n,
                             const CostConstants& c = CostConstants::Defaults());

/// One (k, n) chain shape per MD dimension. Dimensions answered from the
/// repeat-predicate cache classify for free and must be omitted.
struct MdDim {
  size_t k = 0;
  size_t n = 0;
};

/// PRKB(MD) grid selection over the given uncached dimensions: one QFilter
/// per dimension plus the pruned NS-band evaluations (Sec. 6.2). The
/// per-dimension filters fuse into shared probe rounds, so the filter stage
/// pays the max — not the sum — of the per-dimension trip counts.
CostEstimate EstimateMdGrid(const std::vector<MdDim>& dims,
                            const CostConstants& c = CostConstants::Defaults());

/// Exact-answer fallback over `buffered` deferred inserts: one scan
/// evaluation per buffered tuple, chunked like every scan path. Paid by
/// every query until the buffer is flushed.
CostEstimate EstimateBufferScan(size_t buffered,
                                const CostConstants& c = CostConstants::Defaults());

/// One lock-step batched placement of `buffered` deferred inserts against a
/// chain of k partitions: each tuple re-pays the m-ary search probes of
/// Sec. 7.1, but the rounds ship together, so the whole batch costs
/// ~⌈log_m k⌉ trips. Paid once; later queries see an empty buffer.
CostEstimate EstimateBufferFlush(size_t buffered, size_t k,
                                 const CostConstants& c = CostConstants::Defaults());

/// Logarithmic-SRC-i range over n rows at fractional selectivity `sel`
/// (clamped to [0, 1]): the TDAG cover yields at most a 2x candidate
/// superset (never below srci_candidate_floor — posting blocks are
/// power-of-two sized), each candidate pays one SSE posting retrieval (scans, at
/// srci_posting_eval_factor) and one scalar TM confirm decrypt — which is
/// also one unbatchable round trip each, making SRC-i latency-bound on slow
/// transports.
CostEstimate EstimateSrciRange(size_t n, double sel,
                               const CostConstants& c = CostConstants::Defaults());

/// OPE-column range: one plain code comparison per row on the SP (scans at
/// ope_code_eval_factor), zero probes, zero round trips. Cheap but
/// order-leaking — admissibility is a policy question, not a cost one.
CostEstimate EstimateOpeRange(size_t n,
                              const CostConstants& c = CostConstants::Defaults());

}  // namespace prkb::exec

#endif  // PRKB_EXEC_COST_H_
