#include "edbms/cipherbase_qpf.h"

namespace prkb::edbms {

CipherbaseEdbms::CipherbaseEdbms(uint64_t master_seed, size_t num_attrs)
    : do_(master_seed), tm_(master_seed), table_(num_attrs) {}

CipherbaseEdbms CipherbaseEdbms::FromPlainTable(uint64_t master_seed,
                                                const PlainTable& plain) {
  CipherbaseEdbms db(master_seed, plain.num_attrs());
  std::vector<Value> row(plain.num_attrs());
  for (TupleId tid = 0; tid < plain.num_rows(); ++tid) {
    for (AttrId a = 0; a < plain.num_attrs(); ++a) row[a] = plain.at(a, tid);
    db.Insert(row);
  }
  return db;
}

TupleId CipherbaseEdbms::Insert(const std::vector<Value>& row) {
  return table_.Append(do_.EncryptRow(row));
}

void CipherbaseEdbms::Delete(TupleId tid) { table_.Tombstone(tid); }

Trapdoor CipherbaseEdbms::MakeComparison(AttrId attr, CompareOp op, Value c) {
  return do_.MakeComparison(attr, op, c);
}

Trapdoor CipherbaseEdbms::MakeBetween(AttrId attr, Value lo, Value hi) {
  return do_.MakeBetween(attr, lo, hi);
}

bool CipherbaseEdbms::DoEval(const Trapdoor& td, TupleId tid) {
  return tm_.EvalPredicate(td, table_.at(td.attr, tid));
}

}  // namespace prkb::edbms
