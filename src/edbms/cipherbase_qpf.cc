#include "edbms/cipherbase_qpf.h"

namespace prkb::edbms {

CipherbaseEdbms::CipherbaseEdbms(uint64_t master_seed, size_t num_attrs)
    : do_(master_seed), tm_(master_seed), table_(num_attrs) {}

CipherbaseEdbms CipherbaseEdbms::FromPlainTable(uint64_t master_seed,
                                                const PlainTable& plain) {
  CipherbaseEdbms db(master_seed, plain.num_attrs());
  std::vector<Value> row(plain.num_attrs());
  for (TupleId tid = 0; tid < plain.num_rows(); ++tid) {
    for (AttrId a = 0; a < plain.num_attrs(); ++a) row[a] = plain.at(a, tid);
    db.Insert(row);
  }
  return db;
}

TupleId CipherbaseEdbms::Insert(const std::vector<Value>& row) {
  return table_.Append(do_.EncryptRow(row));
}

void CipherbaseEdbms::Delete(TupleId tid) { table_.Tombstone(tid); }

Trapdoor CipherbaseEdbms::MakeComparison(AttrId attr, CompareOp op, Value c) {
  return do_.MakeComparison(attr, op, c);
}

Trapdoor CipherbaseEdbms::MakeBetween(AttrId attr, Value lo, Value hi) {
  return do_.MakeBetween(attr, lo, hi);
}

bool CipherbaseEdbms::DoEval(const Trapdoor& td, TupleId tid) {
  return tm_.EvalPredicate(td, table_.at(td.attr, tid));
}

BitVector CipherbaseEdbms::DoEvalBatch(const Trapdoor& td,
                                       std::span<const TupleId> tids) {
  // Gather the batch's ciphertexts and ship them into the TM in one round
  // trip (Cipherbase-style predicate batching).
  std::vector<const EncValue*> cells;
  cells.reserve(tids.size());
  for (TupleId tid : tids) cells.push_back(&table_.at(td.attr, tid));
  return tm_.EvalPredicateBatch(td, cells);
}

BitVector CipherbaseEdbms::DoEvalMany(std::span<const ProbeRequest> reqs) {
  // Fused probe round: each lane carries its own trapdoor, so the gather
  // pairs every ciphertext with its predicate before the single TM entry.
  std::vector<const Trapdoor*> tds;
  std::vector<const EncValue*> cells;
  tds.reserve(reqs.size());
  cells.reserve(reqs.size());
  for (const ProbeRequest& r : reqs) {
    tds.push_back(r.td);
    cells.push_back(&table_.at(r.td->attr, r.tid));
  }
  return tm_.EvalPredicateMulti(tds, cells);
}

}  // namespace prkb::edbms
