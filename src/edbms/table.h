#ifndef PRKB_EDBMS_TABLE_H_
#define PRKB_EDBMS_TABLE_H_

#include <cassert>
#include <cstdint>
#include <vector>

#include "common/bitvector.h"
#include "edbms/encryption.h"
#include "edbms/types.h"

namespace prkb::edbms {

/// Plaintext relational table. Lives on the data-owner side and in test /
/// workload code as ground truth; the service provider never holds one.
class PlainTable {
 public:
  explicit PlainTable(size_t num_attrs) : cols_(num_attrs) {}

  size_t num_attrs() const { return cols_.size(); }
  size_t num_rows() const { return cols_.empty() ? 0 : cols_[0].size(); }

  /// Appends a row; `row.size()` must equal num_attrs(). Returns its id.
  TupleId AddRow(const std::vector<Value>& row) {
    assert(row.size() == cols_.size());
    for (size_t a = 0; a < cols_.size(); ++a) cols_[a].push_back(row[a]);
    return static_cast<TupleId>(num_rows() - 1);
  }

  Value at(AttrId attr, TupleId tid) const { return cols_[attr][tid]; }
  const std::vector<Value>& column(AttrId attr) const { return cols_[attr]; }

 private:
  std::vector<std::vector<Value>> cols_;
};

/// Column-oriented store of encrypted tuples held by the service provider.
/// Rows are append-only; deletion is a tombstone (the PRKB and baseline
/// scanners skip dead rows).
class EncryptedTable {
 public:
  explicit EncryptedTable(size_t num_attrs) : cols_(num_attrs) {}

  size_t num_attrs() const { return cols_.size(); }
  size_t num_rows() const { return cols_.empty() ? 0 : cols_[0].size(); }
  /// Rows that are not tombstoned.
  size_t num_live_rows() const { return num_rows() - dead_count_; }

  TupleId Append(const std::vector<EncValue>& row) {
    assert(row.size() == cols_.size());
    for (size_t a = 0; a < cols_.size(); ++a) cols_[a].push_back(row[a]);
    live_.Resize(num_rows(), true);
    return static_cast<TupleId>(num_rows() - 1);
  }

  const EncValue& at(AttrId attr, TupleId tid) const {
    return cols_[attr][tid];
  }

  bool IsLive(TupleId tid) const { return live_.Get(tid); }
  void Tombstone(TupleId tid) {
    if (live_.Get(tid)) {
      live_.Clear(tid);
      ++dead_count_;
    }
  }

  /// Ciphertext footprint in bytes (for the storage experiments).
  size_t SizeBytes() const {
    return num_rows() * num_attrs() * sizeof(EncValue);
  }

 private:
  std::vector<std::vector<EncValue>> cols_;
  BitVector live_;
  size_t dead_count_ = 0;
};

}  // namespace prkb::edbms

#endif  // PRKB_EDBMS_TABLE_H_
