#ifndef PRKB_EDBMS_QPF_H_
#define PRKB_EDBMS_QPF_H_

#include <cstdint>

#include "edbms/encryption.h"
#include "edbms/types.h"

namespace prkb::edbms {

/// The query processing function Θ of the paper's EDBMS model (Sec. 3.1):
/// given an encrypted predicate (trapdoor) and an encrypted tuple, returns
/// whether the tuple satisfies the hidden plain predicate — and nothing else.
///
/// Every evaluation is counted; "number of QPF uses" is the paper's primary
/// cost metric, and the entire point of PRKB is to minimise it.
class QpfOracle {
 public:
  virtual ~QpfOracle() = default;

  /// Θ(p̄, t̄) — counted.
  bool Eval(const Trapdoor& td, TupleId tid) {
    ++uses_;
    return DoEval(td, tid);
  }

  /// Total evaluations since construction / last reset.
  uint64_t uses() const { return uses_; }
  void ResetUses() { uses_ = 0; }

 private:
  virtual bool DoEval(const Trapdoor& td, TupleId tid) = 0;

  uint64_t uses_ = 0;
};

}  // namespace prkb::edbms

#endif  // PRKB_EDBMS_QPF_H_
