#ifndef PRKB_EDBMS_QPF_H_
#define PRKB_EDBMS_QPF_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <utility>

#include "common/bitvector.h"
#include "common/status.h"
#include "edbms/encryption.h"
#include "edbms/types.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace prkb::edbms {

/// Registry instruments shared by every oracle instance (the per-instance
/// atomics below feed SelectionStats deltas; these feed process-wide
/// snapshots). Names are catalogued in docs/OBSERVABILITY.md.
struct QpfMetrics {
  obs::Counter* uses;
  obs::Counter* round_trips;
  obs::Counter* batches;
  obs::LatencyHistogram* round_trip_ns;
  obs::LatencyHistogram* batch_tuples;

  static const QpfMetrics& Get() {
    static const QpfMetrics m = {
        obs::MetricsRegistry::Global().GetCounter("qpf.uses"),
        obs::MetricsRegistry::Global().GetCounter("qpf.round_trips"),
        obs::MetricsRegistry::Global().GetCounter("qpf.batches"),
        obs::MetricsRegistry::Global().GetHistogram("qpf.round_trip_ns"),
        obs::MetricsRegistry::Global().GetHistogram("qpf.batch_tuples"),
    };
    return m;
  }
};

/// One probe of a heterogeneous batch round: which predicate to apply to
/// which tuple. The probe scheduler (src/prkb/probe_sched.h) fills one span
/// of these per search round so concurrent searches — the m−1 pivots of an
/// m-ary QFilter, both BETWEEN end-searches, every PRKB(MD) dimension —
/// share a single round trip.
struct ProbeRequest {
  const Trapdoor* td;
  TupleId tid;
};

/// Handle for the split-phase SubmitMany/AwaitMany surface below. Tickets
/// are per-oracle, never 0 for a non-empty submission, and must be awaited
/// exactly once (on any thread).
using ProbeTicket = uint64_t;
inline constexpr ProbeTicket kEmptyProbeTicket = 0;

/// The query processing function Θ of the paper's EDBMS model (Sec. 3.1):
/// given an encrypted predicate (trapdoor) and an encrypted tuple, returns
/// whether the tuple satisfies the hidden plain predicate — and nothing else.
///
/// Every evaluation is counted; "number of QPF uses" is the paper's primary
/// cost metric, and the entire point of PRKB is to minimise it.
///
/// Transport cost is counted separately: each Eval/EvalBatch call is one
/// *round trip* into the backend (a trusted-machine entry for Cipherbase, an
/// MPC round for SDB). Batching many tuple evaluations into one round trip
/// leaves the paper's QPF-use metric — and the bits the SP observes —
/// unchanged while amortising the per-round latency.
///
/// Counters are atomic so parallel scan workers can share one oracle.
class QpfOracle {
 public:
  QpfOracle() = default;
  virtual ~QpfOracle() = default;

  // Atomics delete the implicit moves; backends are returned by value from
  // factories, so snapshot the counters explicitly. Not thread-safe against
  // concurrent Eval on the source (moving a live oracle is a caller bug).
  QpfOracle(QpfOracle&& other) noexcept
      : uses_(other.uses_.load(std::memory_order_relaxed)),
        round_trips_(other.round_trips_.load(std::memory_order_relaxed)),
        batches_(other.batches_.load(std::memory_order_relaxed)) {}
  QpfOracle& operator=(QpfOracle&& other) noexcept {
    uses_.store(other.uses_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    round_trips_.store(other.round_trips_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    batches_.store(other.batches_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    return *this;
  }

  /// Θ(p̄, t̄) — counted as one use and one round trip.
  bool Eval(const Trapdoor& td, TupleId tid) {
    uses_.fetch_add(1, std::memory_order_relaxed);
    round_trips_.fetch_add(1, std::memory_order_relaxed);
    const QpfMetrics& m = QpfMetrics::Get();
    m.uses->Add(1);
    m.round_trips->Add(1);
    const uint64_t t0 = obs::ObsTracer::NowNs();
    const bool out = DoEval(td, tid);
    m.round_trip_ns->Record(obs::ObsTracer::NowNs() - t0);
    return out;
  }

  /// Θ applied to a batch of tuples in one round trip. Bit i of the result
  /// is Θ(td, tids[i]). Counts |tids| uses but a single round trip; the
  /// default implementation loops over DoEval so every backend gets correct
  /// (if unamortised) behaviour for free.
  BitVector EvalBatch(const Trapdoor& td, std::span<const TupleId> tids) {
    if (tids.empty()) return BitVector();
    uses_.fetch_add(tids.size(), std::memory_order_relaxed);
    round_trips_.fetch_add(1, std::memory_order_relaxed);
    batches_.fetch_add(1, std::memory_order_relaxed);
    const QpfMetrics& m = QpfMetrics::Get();
    m.uses->Add(tids.size());
    m.round_trips->Add(1);
    m.batches->Add(1);
    m.batch_tuples->Record(tids.size());
    const uint64_t t0 = obs::ObsTracer::NowNs();
    BitVector out = DoEvalBatch(td, tids);
    m.round_trip_ns->Record(obs::ObsTracer::NowNs() - t0);
    return out;
  }

  /// Θ applied to a heterogeneous batch — each request names its own
  /// trapdoor — in one round trip. Bit i of the result is
  /// Θ(*reqs[i].td, reqs[i].tid). Counts |reqs| uses but a single round
  /// trip, exactly like EvalBatch; the default implementation loops over
  /// DoEval so every backend is correct (if unamortised) for free.
  BitVector EvalMany(std::span<const ProbeRequest> reqs) {
    if (reqs.empty()) return BitVector();
    uses_.fetch_add(reqs.size(), std::memory_order_relaxed);
    round_trips_.fetch_add(1, std::memory_order_relaxed);
    batches_.fetch_add(1, std::memory_order_relaxed);
    const QpfMetrics& m = QpfMetrics::Get();
    m.uses->Add(reqs.size());
    m.round_trips->Add(1);
    m.batches->Add(1);
    m.batch_tuples->Record(reqs.size());
    const uint64_t t0 = obs::ObsTracer::NowNs();
    BitVector out = DoEvalMany(reqs);
    m.round_trip_ns->Record(obs::ObsTracer::NowNs() - t0);
    return out;
  }

  /// Split-phase EvalMany for the probe scheduler: SubmitMany ships the
  /// round and returns a ticket; AwaitMany blocks for its bits. All logical
  /// accounting — |reqs| uses, one round trip, one batch — happens at
  /// submission, identically to EvalMany, so per-selection SelectionStats
  /// and the paper's QPF-use metric are byte-for-byte unaffected by *how*
  /// the round physically travels. The default implementation evaluates
  /// synchronously at submit and stashes the bits (every backend behaves
  /// like EvalMany split in two); a coalescing transport (net::RoundBus)
  /// overrides the Do* hooks to merge concurrently submitted rounds from
  /// different selections into one backend entry. The pointed-to trapdoors
  /// must stay alive until AwaitMany returns.
  ProbeTicket SubmitMany(std::span<const ProbeRequest> reqs) {
    if (reqs.empty()) return kEmptyProbeTicket;
    uses_.fetch_add(reqs.size(), std::memory_order_relaxed);
    round_trips_.fetch_add(1, std::memory_order_relaxed);
    batches_.fetch_add(1, std::memory_order_relaxed);
    const QpfMetrics& m = QpfMetrics::Get();
    m.uses->Add(reqs.size());
    m.round_trips->Add(1);
    m.batches->Add(1);
    m.batch_tuples->Record(reqs.size());
    const ProbeTicket t = tickets_->Open(obs::ObsTracer::NowNs());
    DoSubmitMany(t, reqs);
    return t;
  }

  /// Blocks until ticket `t`'s round completes and returns its bits (bit i
  /// is Θ(*reqs[i].td, reqs[i].tid) of the submitted span). Records the
  /// logical round's qpf.round_trip_ns from submit to completion, so any
  /// coalescing linger is visible in the histogram the calibrator fits.
  BitVector AwaitMany(ProbeTicket t) {
    if (t == kEmptyProbeTicket) return BitVector();
    BitVector out = DoAwaitMany(t);
    QpfMetrics::Get().round_trip_ns->Record(obs::ObsTracer::NowNs() -
                                            tickets_->Close(t));
    return out;
  }

  /// Observed logical-rounds-per-backend-entry of a coalescing transport
  /// (net::RoundBus); 1.0 for direct backends. The executor feeds this into
  /// CostCalibrator so the planner prices the amortised round latency L/c.
  virtual double CoalescingFactor() const { return 1.0; }

  /// Push-down of the calibrator's fitted round-trip latency, from which a
  /// coalescing transport derives its linger window. No-op for direct
  /// backends.
  virtual void CalibrateTransport(uint64_t /*rt_latency_ns*/) {}

  /// --- Uncounted backend entries for transport shims ----------------------
  ///
  /// net::QpfServer re-enters the backend on behalf of a remote client whose
  /// own QpfOracle wrappers (RemoteQpfOracle / RemoteEdbms) already counted
  /// the round trip and the uses. These entries evaluate without touching
  /// any counter or registry metric, so a served evaluation is counted
  /// exactly once — client-side, where the paper's cost accrues. Never call
  /// these from query-processing code; they exist only for the serving shim.
  bool ServeEval(const Trapdoor& td, TupleId tid) { return DoEval(td, tid); }
  BitVector ServeEvalBatch(const Trapdoor& td, std::span<const TupleId> tids) {
    return DoEvalBatch(td, tids);
  }
  BitVector ServeEvalMany(std::span<const ProbeRequest> reqs) {
    return DoEvalMany(reqs);
  }

  /// Transport health: non-OK once the oracle can no longer reach its
  /// backend (a RemoteQpfOracle whose channel died mid-query). In-process
  /// backends are always healthy; callers that just ran a selection check
  /// this to turn silently-empty remote results into a clean error.
  virtual Status Health() const { return Status::Ok(); }

  /// Total evaluations since construction / last reset.
  uint64_t uses() const { return uses_.load(std::memory_order_relaxed); }
  /// Total backend entries (scalar calls + batch calls).
  uint64_t round_trips() const {
    return round_trips_.load(std::memory_order_relaxed);
  }
  /// Of which batch calls.
  uint64_t batches() const { return batches_.load(std::memory_order_relaxed); }
  void ResetUses() {
    uses_.store(0, std::memory_order_relaxed);
    round_trips_.store(0, std::memory_order_relaxed);
    batches_.store(0, std::memory_order_relaxed);
  }

 private:
  virtual bool DoEval(const Trapdoor& td, TupleId tid) = 0;

  /// Backend hook for amortised batch evaluation. Implementations must
  /// return exactly the bits the scalar path would: PRKB's correctness and
  /// the leakage argument both assume batching changes *when* bits travel,
  /// never *which* bits.
  virtual BitVector DoEvalBatch(const Trapdoor& td,
                                std::span<const TupleId> tids) {
    BitVector out(tids.size());
    for (size_t i = 0; i < tids.size(); ++i) {
      out.Assign(i, DoEval(td, tids[i]));
    }
    return out;
  }

  /// Backend hook for the heterogeneous batch. Same contract as
  /// DoEvalBatch: identical bits to the scalar path, amortised transport.
  virtual BitVector DoEvalMany(std::span<const ProbeRequest> reqs) {
    BitVector out(reqs.size());
    for (size_t i = 0; i < reqs.size(); ++i) {
      out.Assign(i, DoEval(*reqs[i].td, reqs[i].tid));
    }
    return out;
  }

  /// Backend hooks for the split-phase surface. The defaults evaluate at
  /// submit time and park the bits in the ticket book, so non-coalescing
  /// backends need nothing; a coalescing transport overrides both to defer
  /// the backend entry until its linger window closes.
  virtual void DoSubmitMany(ProbeTicket t, std::span<const ProbeRequest> reqs) {
    tickets_->Stash(t, DoEvalMany(reqs));
  }
  virtual BitVector DoAwaitMany(ProbeTicket t) { return tickets_->Unstash(t); }

  /// Submit-time bookkeeping shared by all backends: the submit timestamp
  /// for the round-trip histogram, plus the default implementation's ready
  /// bits. Held by pointer so the user-defined moves stay trivial — an
  /// oracle is never moved with tickets in flight (same caller contract as
  /// moving during Eval).
  class TicketBook {
   public:
    ProbeTicket Open(uint64_t t0_ns) {
      const std::lock_guard<std::mutex> lock(mu_);
      const ProbeTicket t = next_++;
      open_.emplace(t, Entry{t0_ns, BitVector()});
      return t;
    }
    uint64_t Close(ProbeTicket t) {
      const std::lock_guard<std::mutex> lock(mu_);
      const auto it = open_.find(t);
      if (it == open_.end()) return 0;
      const uint64_t t0 = it->second.t0_ns;
      open_.erase(it);
      return t0;
    }
    void Stash(ProbeTicket t, BitVector bits) {
      const std::lock_guard<std::mutex> lock(mu_);
      const auto it = open_.find(t);
      if (it != open_.end()) it->second.ready = std::move(bits);
    }
    BitVector Unstash(ProbeTicket t) {
      const std::lock_guard<std::mutex> lock(mu_);
      const auto it = open_.find(t);
      return it == open_.end() ? BitVector() : std::move(it->second.ready);
    }

   private:
    struct Entry {
      uint64_t t0_ns;
      BitVector ready;
    };
    std::mutex mu_;
    ProbeTicket next_ = 1;
    std::unordered_map<ProbeTicket, Entry> open_;
  };

  std::atomic<uint64_t> uses_{0};
  std::atomic<uint64_t> round_trips_{0};
  std::atomic<uint64_t> batches_{0};
  std::unique_ptr<TicketBook> tickets_ = std::make_unique<TicketBook>();
};

}  // namespace prkb::edbms

#endif  // PRKB_EDBMS_QPF_H_
