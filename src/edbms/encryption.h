#ifndef PRKB_EDBMS_ENCRYPTION_H_
#define PRKB_EDBMS_ENCRYPTION_H_

#include <cstdint>
#include <vector>

#include "crypto/cipher.h"
#include "crypto/prf.h"
#include "edbms/types.h"

namespace prkb::edbms {

/// A probabilistically encrypted attribute value: AES-128-CTR with a unique
/// 64-bit nonce. Two encryptions of equal plaintexts are unlinkable, so the
/// service provider learns nothing from ciphertexts alone — exactly the
/// EDBMS premise the paper builds on.
struct EncValue {
  uint64_t nonce = 0;
  uint64_t ct = 0;
};

/// Symmetric value encryption shared by the data owner (encrypts) and the
/// trusted machine (decrypts). Constructed from a derived AES key.
class ValueCrypter {
 public:
  explicit ValueCrypter(const crypto::Aes128::Key& key) : ctr_(key) {}

  /// Encrypts `v` under `nonce`. The caller guarantees nonce uniqueness.
  EncValue Encrypt(Value v, uint64_t nonce) const {
    return EncValue{nonce, ctr_.CryptWord(nonce, static_cast<uint64_t>(v))};
  }

  /// Recovers the plain value.
  Value Decrypt(const EncValue& ev) const {
    return static_cast<Value>(ctr_.CryptWord(ev.nonce, ev.ct));
  }

 private:
  crypto::AesCtr ctr_;
};

/// SP-visible encrypted predicate: the trapdoor the data owner hands over so
/// the QPF can evaluate the (hidden) predicate on encrypted tuples. The SP
/// sees the target attribute and the predicate *family* (Sec. 3.1), but the
/// operator and constants are sealed in `blob` (nonce || ct || MAC tag).
struct Trapdoor {
  AttrId attr = 0;
  PredicateKind kind = PredicateKind::kComparison;
  /// SP-visible handle; unique per issued trapdoor. Equality of uids does NOT
  /// imply predicate equivalence — that is only discoverable through QPF
  /// outputs (Def. 4.3).
  uint64_t uid = 0;
  std::vector<uint8_t> blob;
};

/// Byte layout of the sealed trapdoor payload.
struct TrapdoorPayload {
  CompareOp op;
  Value lo;
  Value hi;
};

inline constexpr size_t kTrapdoorNonceSize = 8;
inline constexpr size_t kTrapdoorCtSize = 17;  // op(1) + lo(8) + hi(8)
inline constexpr size_t kTrapdoorTagSize = 16;
inline constexpr size_t kTrapdoorBlobSize =
    kTrapdoorNonceSize + kTrapdoorCtSize + kTrapdoorTagSize;

/// Seals `payload` into a trapdoor blob (encrypt-then-MAC).
std::vector<uint8_t> SealTrapdoor(const crypto::AesCtr& cipher,
                                  const crypto::HmacSha256& mac, AttrId attr,
                                  PredicateKind kind, uint64_t nonce,
                                  const TrapdoorPayload& payload);

/// Verifies the MAC and opens the blob. Returns false on tampering.
bool OpenTrapdoor(const crypto::AesCtr& cipher, const crypto::HmacSha256& mac,
                  const Trapdoor& td, TrapdoorPayload* out);

}  // namespace prkb::edbms

#endif  // PRKB_EDBMS_ENCRYPTION_H_
