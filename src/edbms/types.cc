#include "edbms/types.h"

#include <cstdio>

namespace prkb::edbms {
namespace {

const char* OpName(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return "<";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

}  // namespace

std::string PlainPredicate::ToString() const {
  char buf[96];
  if (kind == PredicateKind::kBetween) {
    std::snprintf(buf, sizeof(buf), "C%u BETWEEN %lld AND %lld", attr,
                  static_cast<long long>(lo), static_cast<long long>(hi));
  } else {
    std::snprintf(buf, sizeof(buf), "C%u %s %lld", attr, OpName(op),
                  static_cast<long long>(lo));
  }
  return buf;
}

}  // namespace prkb::edbms
