#include "edbms/service_provider.h"

#include "common/stopwatch.h"

namespace prkb::edbms {

std::vector<TupleId> BaselineScanner::Select(const Trapdoor& td,
                                             SelectionStats* stats) const {
  Stopwatch watch;
  const uint64_t uses_before = db_->uses();
  std::vector<TupleId> out;
  const size_t n = db_->num_rows();
  for (TupleId tid = 0; tid < n; ++tid) {
    if (!db_->IsLive(tid)) continue;
    if (db_->Eval(td, tid)) out.push_back(tid);
  }
  if (stats != nullptr) {
    stats->qpf_uses = db_->uses() - uses_before;
    stats->millis = watch.ElapsedMillis();
  }
  return out;
}

std::vector<TupleId> BaselineScanner::SelectConjunction(
    const std::vector<Trapdoor>& tds, SelectionStats* stats) const {
  Stopwatch watch;
  const uint64_t uses_before = db_->uses();
  std::vector<TupleId> out;
  const size_t n = db_->num_rows();
  for (TupleId tid = 0; tid < n; ++tid) {
    if (!db_->IsLive(tid)) continue;
    bool all = true;
    for (const Trapdoor& td : tds) {
      if (!db_->Eval(td, tid)) {
        all = false;
        break;
      }
    }
    if (all) out.push_back(tid);
  }
  if (stats != nullptr) {
    stats->qpf_uses = db_->uses() - uses_before;
    stats->millis = watch.ElapsedMillis();
  }
  return out;
}

}  // namespace prkb::edbms
