#include "edbms/service_provider.h"

#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace prkb::edbms {
namespace {

std::vector<TupleId> LiveTuples(const Edbms& db) {
  std::vector<TupleId> out;
  const size_t n = db.num_rows();
  out.reserve(n);
  for (TupleId tid = 0; tid < n; ++tid) {
    if (db.IsLive(tid)) out.push_back(tid);
  }
  return out;
}

/// The PRKB fast-path cache counters live in the shared registry (the prkb
/// layer registers the same names); snapshotting them here lets every
/// operation report its cache delta without a dependency on that layer.
struct CacheCounters {
  obs::Counter* hits;
  obs::Counter* misses;
  static const CacheCounters& Get() {
    static const CacheCounters c = {
        obs::MetricsRegistry::Global().GetCounter("prkb.cache.hits"),
        obs::MetricsRegistry::Global().GetCounter("prkb.cache.misses"),
    };
    return c;
  }
};

}  // namespace

StatsScope::StatsScope(const Edbms* db, SelectionStats* stats, const char* op)
    : db_(db),
      stats_(stats),
      op_(op),
      uses_(db->uses()),
      trips_(db->round_trips()),
      batches_(db->batches()),
      cache_hits_(CacheCounters::Get().hits->value()),
      cache_misses_(CacheCounters::Get().misses->value()) {}

void StatsScope::Finish() {
  if (done_) return;
  done_ = true;
  const double millis = watch_.ElapsedMillis();
  if (stats_ != nullptr) {
    stats_->qpf_uses = db_->uses() - uses_;
    stats_->qpf_round_trips = db_->round_trips() - trips_;
    stats_->qpf_batches = db_->batches() - batches_;
    stats_->cache_hits = CacheCounters::Get().hits->value() - cache_hits_;
    stats_->cache_misses = CacheCounters::Get().misses->value() - cache_misses_;
    stats_->millis = millis;
  }
  // Op-level registry mirror. The lookup-by-name cost is per operation, not
  // per tuple, so the convenience beats caching pointers per op string.
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetCounter(std::string(op_) + ".count")->Add(1);
  registry.GetHistogram(std::string(op_) + ".duration_ns")
      ->Record(static_cast<uint64_t>(millis * 1e6));
}

std::vector<TupleId> BaselineScanner::Select(const Trapdoor& td,
                                             SelectionStats* stats) const {
  const obs::ObsTracer::Span span("baseline.scan");
  StatsScope scope(db_, stats, "baseline.select");

  const std::vector<TupleId> live = LiveTuples(*db_);
  const std::vector<uint8_t> hit = ScanTuples(db_, td, live, policy_);
  std::vector<TupleId> out;
  for (size_t i = 0; i < live.size(); ++i) {
    if (hit[i]) out.push_back(live[i]);
  }
  return out;
}

std::vector<TupleId> BaselineScanner::SelectConjunction(
    const std::vector<Trapdoor>& tds, SelectionStats* stats) const {
  const obs::ObsTracer::Span span("baseline.conjunction");
  StatsScope scope(db_, stats, "baseline.conjunction");
  std::vector<TupleId> out;

  if (!policy_.batched() && !policy_.parallel()) {
    // Legacy scalar loop: left-to-right per tuple, stop at the first 0.
    const size_t n = db_->num_rows();
    for (TupleId tid = 0; tid < n; ++tid) {
      if (!db_->IsLive(tid)) continue;
      bool all = true;
      for (const Trapdoor& td : tds) {
        if (!db_->Eval(td, tid)) {
          all = false;
          break;
        }
      }
      if (all) out.push_back(tid);
    }
  } else {
    // Predicate-at-a-time over the survivor set: tuple t reaches predicate i
    // iff predicates 0..i-1 all held — exactly the tuples the scalar loop
    // evaluates predicate i on, so the QPF-use count is unchanged.
    std::vector<TupleId> survivors = LiveTuples(*db_);
    for (const Trapdoor& td : tds) {
      if (survivors.empty()) break;
      const std::vector<uint8_t> hit = ScanTuples(db_, td, survivors, policy_);
      size_t w = 0;
      for (size_t i = 0; i < survivors.size(); ++i) {
        if (hit[i]) survivors[w++] = survivors[i];
      }
      survivors.resize(w);
    }
    out = std::move(survivors);
  }
  return out;
}

}  // namespace prkb::edbms
