#include "edbms/service_provider.h"

#include "common/stopwatch.h"

namespace prkb::edbms {
namespace {

std::vector<TupleId> LiveTuples(const Edbms& db) {
  std::vector<TupleId> out;
  const size_t n = db.num_rows();
  out.reserve(n);
  for (TupleId tid = 0; tid < n; ++tid) {
    if (db.IsLive(tid)) out.push_back(tid);
  }
  return out;
}

}  // namespace

void BaselineScanner::FillStats(SelectionStats* stats, uint64_t uses_before,
                                uint64_t trips_before, uint64_t batches_before,
                                double millis) const {
  if (stats == nullptr) return;
  stats->qpf_uses = db_->uses() - uses_before;
  stats->qpf_round_trips = db_->round_trips() - trips_before;
  stats->qpf_batches = db_->batches() - batches_before;
  stats->millis = millis;
}

std::vector<TupleId> BaselineScanner::Select(const Trapdoor& td,
                                             SelectionStats* stats) const {
  Stopwatch watch;
  const uint64_t uses_before = db_->uses();
  const uint64_t trips_before = db_->round_trips();
  const uint64_t batches_before = db_->batches();

  const std::vector<TupleId> live = LiveTuples(*db_);
  const std::vector<uint8_t> hit = ScanTuples(db_, td, live, policy_);
  std::vector<TupleId> out;
  for (size_t i = 0; i < live.size(); ++i) {
    if (hit[i]) out.push_back(live[i]);
  }
  FillStats(stats, uses_before, trips_before, batches_before,
            watch.ElapsedMillis());
  return out;
}

std::vector<TupleId> BaselineScanner::SelectConjunction(
    const std::vector<Trapdoor>& tds, SelectionStats* stats) const {
  Stopwatch watch;
  const uint64_t uses_before = db_->uses();
  const uint64_t trips_before = db_->round_trips();
  const uint64_t batches_before = db_->batches();
  std::vector<TupleId> out;

  if (!policy_.batched() && !policy_.parallel()) {
    // Legacy scalar loop: left-to-right per tuple, stop at the first 0.
    const size_t n = db_->num_rows();
    for (TupleId tid = 0; tid < n; ++tid) {
      if (!db_->IsLive(tid)) continue;
      bool all = true;
      for (const Trapdoor& td : tds) {
        if (!db_->Eval(td, tid)) {
          all = false;
          break;
        }
      }
      if (all) out.push_back(tid);
    }
  } else {
    // Predicate-at-a-time over the survivor set: tuple t reaches predicate i
    // iff predicates 0..i-1 all held — exactly the tuples the scalar loop
    // evaluates predicate i on, so the QPF-use count is unchanged.
    std::vector<TupleId> survivors = LiveTuples(*db_);
    for (const Trapdoor& td : tds) {
      if (survivors.empty()) break;
      const std::vector<uint8_t> hit = ScanTuples(db_, td, survivors, policy_);
      size_t w = 0;
      for (size_t i = 0; i < survivors.size(); ++i) {
        if (hit[i]) survivors[w++] = survivors[i];
      }
      survivors.resize(w);
    }
    out = std::move(survivors);
  }

  FillStats(stats, uses_before, trips_before, batches_before,
            watch.ElapsedMillis());
  return out;
}

}  // namespace prkb::edbms
