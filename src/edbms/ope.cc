#include "edbms/ope.h"

#include <algorithm>

#include "common/rng.h"

namespace prkb::edbms {

OpeColumn OpeColumn::Build(const std::vector<Value>& column, uint64_t key) {
  OpeColumn out;
  std::vector<Value> distinct = column;
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());

  // Rank-preserving codes with keyed positive jitter between consecutive
  // ranks. Gaps keep room for probes between any two stored values.
  Rng rng(key);
  out.dictionary_.reserve(distinct.size());
  uint64_t code = 1 << 20;
  for (Value v : distinct) {
    code += (1 << 20) + rng.UniformInt(0, (1 << 18));
    out.dictionary_.emplace_back(v, code);
  }

  out.codes_.reserve(column.size());
  for (Value v : column) {
    const auto it = std::lower_bound(
        out.dictionary_.begin(), out.dictionary_.end(), v,
        [](const auto& pr, Value x) { return pr.first < x; });
    out.codes_.push_back(it->second);
  }
  return out;
}

uint64_t OpeColumn::EncodeProbe(Value x) const {
  // Code strictly between the codes of the neighbouring stored values.
  const auto it = std::lower_bound(
      dictionary_.begin(), dictionary_.end(), x,
      [](const auto& pr, Value v) { return pr.first < v; });
  if (it == dictionary_.end()) return dictionary_.back().second + 512;
  if (it->first == x) return it->second;
  if (it == dictionary_.begin()) return it->second - 512;
  return (std::prev(it)->second + it->second) / 2;
}

std::vector<TupleId> OpeColumn::RecoverTotalOrder() const {
  std::vector<TupleId> order(codes_.size());
  for (TupleId t = 0; t < codes_.size(); ++t) order[t] = t;
  std::stable_sort(order.begin(), order.end(), [this](TupleId a, TupleId b) {
    return codes_[a] < codes_[b];
  });
  return order;
}

}  // namespace prkb::edbms
