#ifndef PRKB_EDBMS_CIPHERBASE_QPF_H_
#define PRKB_EDBMS_CIPHERBASE_QPF_H_

#include <vector>

#include "edbms/data_owner.h"
#include "edbms/edbms.h"
#include "edbms/table.h"
#include "edbms/trusted_machine.h"

namespace prkb::edbms {

/// Cipherbase/TrustedDB-style EDBMS: encrypted cells at the SP, QPF realised
/// by shipping (trapdoor, ciphertext) into a trusted machine that decrypts
/// and compares (Sec. 2.1, first approach). This is the backend the paper's
/// experiments model.
class CipherbaseEdbms : public Edbms {
 public:
  /// Builds an empty instance with `num_attrs` columns.
  CipherbaseEdbms(uint64_t master_seed, size_t num_attrs);

  /// Bulk-load helper: encrypts and uploads a whole plaintext table.
  static CipherbaseEdbms FromPlainTable(uint64_t master_seed,
                                        const PlainTable& plain);

  TupleId Insert(const std::vector<Value>& row) override;
  void Delete(TupleId tid) override;
  Trapdoor MakeComparison(AttrId attr, CompareOp op, Value c) override;
  Trapdoor MakeBetween(AttrId attr, Value lo, Value hi) override;

  size_t num_attrs() const override { return table_.num_attrs(); }
  size_t num_rows() const override { return table_.num_rows(); }
  bool IsLive(TupleId tid) const override { return table_.IsLive(tid); }
  size_t StoredBytes() const override { return table_.SizeBytes(); }

  /// Component access for code that models TM-assisted subsystems (SRC-i
  /// index maintenance, extension operators) and for tests.
  DataOwner& data_owner() { return do_; }
  TrustedMachine& trusted_machine() { return tm_; }
  const EncryptedTable& table() const { return table_; }

 private:
  bool DoEval(const Trapdoor& td, TupleId tid) override;
  BitVector DoEvalBatch(const Trapdoor& td,
                        std::span<const TupleId> tids) override;
  BitVector DoEvalMany(std::span<const ProbeRequest> reqs) override;

  DataOwner do_;
  TrustedMachine tm_;
  EncryptedTable table_;
};

}  // namespace prkb::edbms

#endif  // PRKB_EDBMS_CIPHERBASE_QPF_H_
