#ifndef PRKB_EDBMS_EDBMS_H_
#define PRKB_EDBMS_EDBMS_H_

#include <cstdint>
#include <vector>

#include "edbms/qpf.h"
#include "edbms/types.h"

namespace prkb::edbms {

/// Backend-agnostic view of a deployed EDBMS instance. It bundles, for the
/// simulator's convenience, the two roles of the paper's model:
///   - the DO-side client API (insert rows, issue trapdoors), and
///   - the SP-side QPF (inherited QpfOracle::Eval) plus table geometry.
/// PRKB and the benchmark harness only ever touch the SP-side surface; the
/// per-backend classes (CipherbaseEdbms, SdbEdbms) wire up the actual
/// DataOwner / TrustedMachine / share-store machinery.
class Edbms : public QpfOracle {
 public:
  /// --- DO-side client API ------------------------------------------------
  virtual TupleId Insert(const std::vector<Value>& row) = 0;
  virtual void Delete(TupleId tid) = 0;
  virtual Trapdoor MakeComparison(AttrId attr, CompareOp op, Value c) = 0;
  virtual Trapdoor MakeBetween(AttrId attr, Value lo, Value hi) = 0;

  /// --- SP-side geometry ---------------------------------------------------
  virtual size_t num_attrs() const = 0;
  virtual size_t num_rows() const = 0;
  virtual bool IsLive(TupleId tid) const = 0;

  /// Bytes of encrypted payload stored at the SP.
  virtual size_t StoredBytes() const = 0;
};

}  // namespace prkb::edbms

#endif  // PRKB_EDBMS_EDBMS_H_
