#ifndef PRKB_EDBMS_SDB_QPF_H_
#define PRKB_EDBMS_SDB_QPF_H_

#include <atomic>
#include <vector>

#include "common/bitvector.h"
#include "common/latency.h"
#include "edbms/data_owner.h"
#include "edbms/edbms.h"

namespace prkb::edbms {

/// SDB-style EDBMS backend: secret sharing between DO and SP (Sec. 2.1,
/// second approach). Each cell x is stored at the SP as the additive share
///   s = x + PRF_k(attr, tid)   (mod 2^64),
/// and the DO regenerates its own share from the PRF on demand (modelling
/// SDB's RSA-like share-generating function, which spares the DO from
/// storing shares).
///
/// QPF evaluation is a simulated two-party round: the SP ships
/// (share, cell-id, trapdoor-uid) to the DO endpoint, which reconstructs the
/// value and answers the predicate bit. Message/round counters expose the
/// MPC cost structure; an optional per-round latency emulates the network.
/// PRKB never looks inside — it only sees the counted Θ bit, demonstrating
/// the paper's claim that PRKB sits on top of *any* QPF-style EDBMS.
class SdbEdbms : public Edbms {
 public:
  SdbEdbms(uint64_t master_seed, size_t num_attrs);

  static SdbEdbms FromPlainTable(uint64_t master_seed,
                                 const PlainTable& plain);

  // Atomic MPC counters delete the implicit move; snapshot them so the
  // factory can return by value. Never move a backend mid-scan.
  SdbEdbms(SdbEdbms&& other) noexcept
      : Edbms(std::move(other)),
        do_(std::move(other.do_)),
        share_cols_(std::move(other.share_cols_)),
        live_(std::move(other.live_)),
        dead_count_(other.dead_count_),
        rounds_(other.rounds_.load(std::memory_order_relaxed)),
        bytes_(other.bytes_.load(std::memory_order_relaxed)),
        latency_(other.latency_) {}

  TupleId Insert(const std::vector<Value>& row) override;
  void Delete(TupleId tid) override;
  Trapdoor MakeComparison(AttrId attr, CompareOp op, Value c) override;
  Trapdoor MakeBetween(AttrId attr, Value lo, Value hi) override;

  size_t num_attrs() const override { return share_cols_.size(); }
  size_t num_rows() const override {
    return share_cols_.empty() ? 0 : share_cols_[0].size();
  }
  bool IsLive(TupleId tid) const override { return live_.Get(tid); }
  size_t StoredBytes() const override {
    return num_rows() * num_attrs() * sizeof(uint64_t);
  }

  /// MPC accounting. One batch evaluation costs one round: the SP packs the
  /// whole share vector into a single request and gets a bit vector back.
  uint64_t rounds() const { return rounds_.load(std::memory_order_relaxed); }
  uint64_t bytes_transferred() const {
    return bytes_.load(std::memory_order_relaxed);
  }
  /// Per-MPC-round delay, charged through the backend's LatencyModel (the
  /// single simulation hook; zero it when serving behind a real wire).
  void set_round_latency_ns(uint64_t ns) { latency_.set_ns(ns); }
  LatencyModel& latency_model() { return latency_; }

  DataOwner& data_owner() { return do_; }

  /// SP-visible share of one cell (exactly what a compromised SP can read;
  /// exposed for leakage auditing and tests).
  uint64_t share_at(AttrId attr, TupleId tid) const {
    return share_cols_[attr][tid];
  }

 private:
  bool DoEval(const Trapdoor& td, TupleId tid) override;
  BitVector DoEvalBatch(const Trapdoor& td,
                        std::span<const TupleId> tids) override;
  BitVector DoEvalMany(std::span<const ProbeRequest> reqs) override;
  void SimulateLatency() const;
  bool Reconstruct(const Trapdoor& td, const PlainPredicate& pred,
                   TupleId tid) const;

  DataOwner do_;
  std::vector<std::vector<uint64_t>> share_cols_;
  BitVector live_;
  size_t dead_count_ = 0;
  std::atomic<uint64_t> rounds_{0};
  std::atomic<uint64_t> bytes_{0};
  LatencyModel latency_;
};

}  // namespace prkb::edbms

#endif  // PRKB_EDBMS_SDB_QPF_H_
