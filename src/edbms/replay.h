#ifndef PRKB_EDBMS_REPLAY_H_
#define PRKB_EDBMS_REPLAY_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "edbms/edbms.h"

namespace prkb::edbms {

/// A log of everything the service provider observed from the QPF: which
/// trapdoor was applied to which tuple and the single output bit. This is,
/// by the paper's security argument (Sec. 3.3), the *complete* input from
/// which the PRKB is built — so an index rebuilt from the transcript alone
/// must be bit-identical to the live one. tests/replay_test.cc enforces
/// exactly that.
struct QpfTranscript {
  struct Entry {
    uint64_t trapdoor_uid;
    TupleId tid;
    bool output;
  };
  std::vector<Entry> entries;
};

/// Pass-through EDBMS wrapper that records every Θ evaluation.
class RecordingEdbms : public Edbms {
 public:
  RecordingEdbms(Edbms* inner, QpfTranscript* transcript)
      : inner_(inner), transcript_(transcript) {}

  TupleId Insert(const std::vector<Value>& row) override {
    return inner_->Insert(row);
  }
  void Delete(TupleId tid) override { inner_->Delete(tid); }
  Trapdoor MakeComparison(AttrId attr, CompareOp op, Value c) override {
    return inner_->MakeComparison(attr, op, c);
  }
  Trapdoor MakeBetween(AttrId attr, Value lo, Value hi) override {
    return inner_->MakeBetween(attr, lo, hi);
  }
  size_t num_attrs() const override { return inner_->num_attrs(); }
  size_t num_rows() const override { return inner_->num_rows(); }
  bool IsLive(TupleId tid) const override { return inner_->IsLive(tid); }
  size_t StoredBytes() const override { return inner_->StoredBytes(); }

 private:
  bool DoEval(const Trapdoor& td, TupleId tid) override {
    const bool out = inner_->Eval(td, tid);
    transcript_->entries.push_back(
        QpfTranscript::Entry{td.uid, tid, out});
    return out;
  }

  // Forward batches as batches (so the inner backend amortises its round
  // trip) while still logging every observed bit in order.
  BitVector DoEvalBatch(const Trapdoor& td,
                        std::span<const TupleId> tids) override {
    BitVector out = inner_->EvalBatch(td, tids);
    for (size_t i = 0; i < tids.size(); ++i) {
      transcript_->entries.push_back(
          QpfTranscript::Entry{td.uid, tids[i], out.Get(i)});
    }
    return out;
  }

  BitVector DoEvalMany(std::span<const ProbeRequest> reqs) override {
    BitVector out = inner_->EvalMany(reqs);
    for (size_t i = 0; i < reqs.size(); ++i) {
      transcript_->entries.push_back(
          QpfTranscript::Entry{reqs[i].td->uid, reqs[i].tid, out.Get(i)});
    }
    return out;
  }

  Edbms* inner_;
  QpfTranscript* transcript_;
};

/// Ciphertext-free EDBMS that answers Θ purely from a transcript. It holds
/// no keys and no data beyond observed bits — if an index built against it
/// matches the live index, the index provably depended on nothing else.
///
/// Insert/trapdoor issue are unsupported (the replayed run must re-use the
/// original run's trapdoors and geometry).
class ReplayEdbms : public Edbms {
 public:
  ReplayEdbms(size_t num_attrs, size_t num_rows,
              const QpfTranscript& transcript)
      : num_attrs_(num_attrs), num_rows_(num_rows) {
    for (const auto& e : transcript.entries) {
      outputs_[Key(e.trapdoor_uid, e.tid)] = e.output;
    }
  }

  /// Count of (trapdoor, tuple) pairs the replayed run asked for that the
  /// transcript did not contain. Must stay 0 for a faithful replay.
  uint64_t misses() const { return misses_; }

  TupleId Insert(const std::vector<Value>&) override {
    // Replay runs are read-only.
    return 0;
  }
  void Delete(TupleId) override {}
  Trapdoor MakeComparison(AttrId, CompareOp, Value) override { return {}; }
  Trapdoor MakeBetween(AttrId, Value, Value) override { return {}; }
  size_t num_attrs() const override { return num_attrs_; }
  size_t num_rows() const override { return num_rows_; }
  bool IsLive(TupleId) const override { return true; }
  size_t StoredBytes() const override { return 0; }

 private:
  static uint64_t Key(uint64_t uid, TupleId tid) {
    return uid * 0x100000000ULL + tid;
  }

  bool DoEval(const Trapdoor& td, TupleId tid) override {
    const auto it = outputs_.find(Key(td.uid, tid));
    if (it == outputs_.end()) {
      ++misses_;
      return false;
    }
    return it->second;
  }

  size_t num_attrs_;
  size_t num_rows_;
  std::unordered_map<uint64_t, bool> outputs_;
  uint64_t misses_ = 0;
};

}  // namespace prkb::edbms

#endif  // PRKB_EDBMS_REPLAY_H_
