#include "edbms/trusted_machine.h"

#include <mutex>

#include "common/latency.h"
#include "obs/metrics.h"

namespace prkb::edbms {
namespace {

/// TM entries and per-entry work, process-wide (docs/OBSERVABILITY.md).
struct TmMetrics {
  obs::Counter* entries;
  obs::Counter* evals;
  obs::Counter* value_decrypts;
  obs::LatencyHistogram* batch_cells;

  static const TmMetrics& Get() {
    static const TmMetrics m = {
        obs::MetricsRegistry::Global().GetCounter("tm.entries"),
        obs::MetricsRegistry::Global().GetCounter("tm.evals"),
        obs::MetricsRegistry::Global().GetCounter("tm.value_decrypts"),
        obs::MetricsRegistry::Global().GetHistogram("tm.batch_cells"),
    };
    return m;
  }
};

std::vector<uint8_t> SeedBytes(uint64_t seed) {
  std::vector<uint8_t> out(8);
  for (int i = 0; i < 8; ++i) out[i] = static_cast<uint8_t>(seed >> (8 * i));
  return out;
}

}  // namespace

TrustedMachine::TrustedMachine(uint64_t master_seed)
    : prf_(SeedBytes(master_seed)),
      crypter_(prf_.DeriveAesKey("value-enc")),
      trapdoor_cipher_(prf_.DeriveAesKey("trapdoor-enc")),
      trapdoor_mac_(prf_.DeriveKey("trapdoor-mac")) {}

void TrustedMachine::SimulateLatency() const { latency_.Apply(); }

const TrapdoorPayload* TrustedMachine::Open(const Trapdoor& td) {
  {
    std::shared_lock<std::shared_mutex> lock(verified_mu_);
    auto it = verified_.find(td.uid);
    if (it != verified_.end()) return &it->second;
  }
  TrapdoorPayload payload;
  if (!OpenTrapdoor(trapdoor_cipher_, trapdoor_mac_, td, &payload)) {
    return nullptr;
  }
  std::unique_lock<std::shared_mutex> lock(verified_mu_);
  return &verified_.try_emplace(td.uid, payload).first->second;
}

bool TrustedMachine::Compare(const TrapdoorPayload& p, PredicateKind kind,
                             const EncValue& cell) const {
  const Value v = crypter_.Decrypt(cell);
  if (kind == PredicateKind::kBetween) return p.lo <= v && v <= p.hi;
  switch (p.op) {
    case CompareOp::kLt:
      return v < p.lo;
    case CompareOp::kGt:
      return v > p.lo;
    case CompareOp::kLe:
      return v <= p.lo;
    case CompareOp::kGe:
      return v >= p.lo;
  }
  return false;
}

bool TrustedMachine::EvalPredicate(const Trapdoor& td, const EncValue& cell,
                                   bool* ok) {
  predicate_evals_.fetch_add(1, std::memory_order_relaxed);
  round_trips_.fetch_add(1, std::memory_order_relaxed);
  TmMetrics::Get().entries->Add(1);
  TmMetrics::Get().evals->Add(1);
  SimulateLatency();
  const TrapdoorPayload* p = Open(td);
  if (p == nullptr) {
    if (ok != nullptr) *ok = false;
    return false;
  }
  if (ok != nullptr) *ok = true;
  return Compare(*p, td.kind, cell);
}

BitVector TrustedMachine::EvalPredicateBatch(
    const Trapdoor& td, std::span<const EncValue* const> cells, bool* ok) {
  BitVector out(cells.size());
  predicate_evals_.fetch_add(cells.size(), std::memory_order_relaxed);
  round_trips_.fetch_add(1, std::memory_order_relaxed);
  const TmMetrics& m = TmMetrics::Get();
  m.entries->Add(1);
  m.evals->Add(cells.size());
  m.batch_cells->Record(cells.size());
  SimulateLatency();  // the whole batch travels in one round trip
  const TrapdoorPayload* p = Open(td);
  if (p == nullptr) {
    if (ok != nullptr) *ok = false;
    return out;
  }
  if (ok != nullptr) *ok = true;
  for (size_t i = 0; i < cells.size(); ++i) {
    out.Assign(i, Compare(*p, td.kind, *cells[i]));
  }
  return out;
}

BitVector TrustedMachine::EvalPredicateMulti(
    std::span<const Trapdoor* const> tds,
    std::span<const EncValue* const> cells, bool* ok) {
  BitVector out(cells.size());
  predicate_evals_.fetch_add(cells.size(), std::memory_order_relaxed);
  round_trips_.fetch_add(1, std::memory_order_relaxed);
  const TmMetrics& m = TmMetrics::Get();
  m.entries->Add(1);
  m.evals->Add(cells.size());
  m.batch_cells->Record(cells.size());
  SimulateLatency();  // the whole fused round travels in one round trip
  bool all_ok = true;
  for (size_t i = 0; i < cells.size(); ++i) {
    const TrapdoorPayload* p = Open(*tds[i]);
    if (p == nullptr) {
      all_ok = false;
      continue;  // lane stays false
    }
    out.Assign(i, Compare(*p, tds[i]->kind, *cells[i]));
  }
  if (ok != nullptr) *ok = all_ok;
  return out;
}

Value TrustedMachine::DecryptValue(const EncValue& cell) {
  value_decrypts_.fetch_add(1, std::memory_order_relaxed);
  round_trips_.fetch_add(1, std::memory_order_relaxed);
  TmMetrics::Get().entries->Add(1);
  TmMetrics::Get().value_decrypts->Add(1);
  SimulateLatency();
  return crypter_.Decrypt(cell);
}

}  // namespace prkb::edbms
