#include "edbms/trusted_machine.h"

#include <chrono>

namespace prkb::edbms {
namespace {

std::vector<uint8_t> SeedBytes(uint64_t seed) {
  std::vector<uint8_t> out(8);
  for (int i = 0; i < 8; ++i) out[i] = static_cast<uint8_t>(seed >> (8 * i));
  return out;
}

}  // namespace

TrustedMachine::TrustedMachine(uint64_t master_seed)
    : prf_(SeedBytes(master_seed)),
      crypter_(prf_.DeriveAesKey("value-enc")),
      trapdoor_cipher_(prf_.DeriveAesKey("trapdoor-enc")),
      trapdoor_mac_(prf_.DeriveKey("trapdoor-mac")) {}

void TrustedMachine::SimulateLatency() const {
  if (call_latency_ns_ == 0) return;
  const auto start = std::chrono::steady_clock::now();
  while (std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - start)
             .count() < static_cast<int64_t>(call_latency_ns_)) {
  }
}

const TrapdoorPayload* TrustedMachine::Open(const Trapdoor& td) {
  auto it = verified_.find(td.uid);
  if (it != verified_.end()) return &it->second;
  TrapdoorPayload payload;
  if (!OpenTrapdoor(trapdoor_cipher_, trapdoor_mac_, td, &payload)) {
    return nullptr;
  }
  return &verified_.emplace(td.uid, payload).first->second;
}

bool TrustedMachine::EvalPredicate(const Trapdoor& td, const EncValue& cell,
                                   bool* ok) {
  ++predicate_evals_;
  SimulateLatency();
  const TrapdoorPayload* p = Open(td);
  if (p == nullptr) {
    if (ok != nullptr) *ok = false;
    return false;
  }
  if (ok != nullptr) *ok = true;
  const Value v = crypter_.Decrypt(cell);
  if (td.kind == PredicateKind::kBetween) return p->lo <= v && v <= p->hi;
  switch (p->op) {
    case CompareOp::kLt:
      return v < p->lo;
    case CompareOp::kGt:
      return v > p->lo;
    case CompareOp::kLe:
      return v <= p->lo;
    case CompareOp::kGe:
      return v >= p->lo;
  }
  return false;
}

Value TrustedMachine::DecryptValue(const EncValue& cell) {
  ++value_decrypts_;
  SimulateLatency();
  return crypter_.Decrypt(cell);
}

}  // namespace prkb::edbms
