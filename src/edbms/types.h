#ifndef PRKB_EDBMS_TYPES_H_
#define PRKB_EDBMS_TYPES_H_

#include <cstdint>
#include <string>

namespace prkb::edbms {

/// Plain attribute value. The paper evaluates on integer domains
/// (e.g. [1, 30M]); we use a signed 64-bit domain throughout.
using Value = int64_t;

/// Dense tuple identifier assigned by the service provider in insertion
/// order. Identifiers are never reused; deleted tuples become tombstones.
using TupleId = uint32_t;

/// Attribute (column) index within a table.
using AttrId = uint32_t;

/// Comparison operators of a simple comparison predicate 'X op c'.
/// Per the paper (Sec. 3.1), the SP cannot distinguish which of the four is
/// inside a trapdoor — they are all processed by the same algorithm.
enum class CompareOp : uint8_t { kLt = 0, kGt = 1, kLe = 2, kGe = 3 };

/// Predicate families the SP *can* distinguish (different algorithms).
enum class PredicateKind : uint8_t { kComparison = 0, kBetween = 1 };

/// Plaintext form of a predicate. Exists only on the data-owner side and in
/// test oracles; the service provider never sees one.
struct PlainPredicate {
  AttrId attr = 0;
  PredicateKind kind = PredicateKind::kComparison;
  CompareOp op = CompareOp::kLt;  // comparison only
  Value lo = 0;                   // comparison constant, or BETWEEN lower
  Value hi = 0;                   // BETWEEN upper (inclusive)

  /// Ground-truth evaluation on a plain value.
  bool Satisfies(Value v) const {
    if (kind == PredicateKind::kBetween) return lo <= v && v <= hi;
    switch (op) {
      case CompareOp::kLt:
        return v < lo;
      case CompareOp::kGt:
        return v > lo;
      case CompareOp::kLe:
        return v <= lo;
      case CompareOp::kGe:
        return v >= lo;
    }
    return false;
  }

  std::string ToString() const;
};

}  // namespace prkb::edbms

#endif  // PRKB_EDBMS_TYPES_H_
