#ifndef PRKB_EDBMS_SERVICE_PROVIDER_H_
#define PRKB_EDBMS_SERVICE_PROVIDER_H_

#include <vector>

#include "common/stopwatch.h"
#include "edbms/batch_scan.h"
#include "edbms/edbms.h"

namespace prkb::edbms {

/// Result of a selection together with its cost, in the paper's two units —
/// plus the transport-level breakdown the batched pipeline amortises.
struct SelectionStats {
  uint64_t qpf_uses = 0;
  /// Backend entries paid for: scalar QPF calls plus batch calls. This is
  /// the unit per-round-trip latency is charged on.
  uint64_t qpf_round_trips = 0;
  /// Of which batched (EvalBatch) calls.
  uint64_t qpf_batches = 0;
  /// Repeat-predicate fast-path outcomes attributed to this operation. The
  /// deltas come from the process-global `prkb.cache.{hits,misses}` counters,
  /// so under concurrent callers they are approximate (another thread's hit
  /// can land inside this operation's window); in single-threaded use they
  /// are exact. 0/0 for operations that never consult the cache.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  double millis = 0.0;
};

/// Uniform SelectionStats accounting, routed through the obs registry.
/// Snapshots the oracle's cost counters at construction; Finish() (or the
/// destructor) overwrites EVERY field of *stats with this operation's delta,
/// so a stats struct reused across calls never retains a stale field — the
/// pre-obs code filled different subsets on different paths (e.g. Insert
/// skipped qpf_batches). Also mirrors the operation into the registry as
/// `<op>.count` and `<op>.duration_ns` (docs/OBSERVABILITY.md).
class StatsScope {
 public:
  /// `op` is the registry metric prefix; `stats` may be null (the registry
  /// mirroring still happens).
  StatsScope(const Edbms* db, SelectionStats* stats, const char* op);
  ~StatsScope() { Finish(); }
  StatsScope(const StatsScope&) = delete;
  StatsScope& operator=(const StatsScope&) = delete;

  /// Idempotent; called by the destructor if not called explicitly.
  void Finish();

 private:
  const Edbms* db_;
  SelectionStats* stats_;
  const char* op_;
  uint64_t uses_;
  uint64_t trips_;
  uint64_t batches_;
  uint64_t cache_hits_;
  uint64_t cache_misses_;
  Stopwatch watch_;
  bool done_ = false;
};

/// The paper's *Baseline* processing mode (Sec. 3.2): the SP tests every
/// live encrypted tuple with the QPF, one by one — or, with a batched
/// policy, in chunked batch round trips that evaluate exactly the same
/// (trapdoor, tuple) pairs.
class BaselineScanner {
 public:
  explicit BaselineScanner(Edbms* db, BatchPolicy policy = {})
      : db_(db), policy_(policy) {}

  /// Linear scan with one QPF use per live tuple.
  std::vector<TupleId> Select(const Trapdoor& td,
                              SelectionStats* stats = nullptr) const;

  /// Conjunction of trapdoors (e.g. a multi-dimensional range): per tuple,
  /// predicates are evaluated left to right and stop at the first 0 — the
  /// paper's footnote 5 ("EDBMS can stop processing for a tuple when one of
  /// the predicates is not satisfied"). The batched variant evaluates
  /// predicate i only on the survivors of predicates 0..i-1, which is the
  /// same evaluation set, round-trip amortised.
  std::vector<TupleId> SelectConjunction(const std::vector<Trapdoor>& tds,
                                         SelectionStats* stats = nullptr) const;

 private:
  Edbms* db_;
  BatchPolicy policy_;
};

}  // namespace prkb::edbms

#endif  // PRKB_EDBMS_SERVICE_PROVIDER_H_
