#ifndef PRKB_EDBMS_SERVICE_PROVIDER_H_
#define PRKB_EDBMS_SERVICE_PROVIDER_H_

#include <vector>

#include "edbms/edbms.h"

namespace prkb::edbms {

/// Result of a selection together with its cost, in the paper's two units.
struct SelectionStats {
  uint64_t qpf_uses = 0;
  double millis = 0.0;
};

/// The paper's *Baseline* processing mode (Sec. 3.2): the SP tests every
/// live encrypted tuple with the QPF, one by one. This is what every
/// PRKB-enabled run is compared against.
class BaselineScanner {
 public:
  explicit BaselineScanner(Edbms* db) : db_(db) {}

  /// Linear scan with one QPF use per live tuple.
  std::vector<TupleId> Select(const Trapdoor& td,
                              SelectionStats* stats = nullptr) const;

  /// Conjunction of trapdoors (e.g. a multi-dimensional range): per tuple,
  /// predicates are evaluated left to right and stop at the first 0 — the
  /// paper's footnote 5 ("EDBMS can stop processing for a tuple when one of
  /// the predicates is not satisfied").
  std::vector<TupleId> SelectConjunction(const std::vector<Trapdoor>& tds,
                                         SelectionStats* stats = nullptr) const;

 private:
  Edbms* db_;
};

}  // namespace prkb::edbms

#endif  // PRKB_EDBMS_SERVICE_PROVIDER_H_
