#ifndef PRKB_EDBMS_BATCH_SCAN_H_
#define PRKB_EDBMS_BATCH_SCAN_H_

#include <cstddef>
#include <span>
#include <vector>

#include "edbms/qpf.h"

namespace prkb::edbms {

/// How scan loops consume the QPF: scalar per-tuple calls (the paper's
/// literal model), chunked batch round trips, and optionally several batch
/// round trips kept in flight concurrently by the shared thread pool.
///
/// Neither knob changes which (trapdoor, tuple) pairs are evaluated on the
/// exhaustive scan paths — only how the evaluations are packaged — so QPF-use
/// counts and leakage are identical to the scalar path.
struct BatchPolicy {
  /// Tuples per EvalBatch round trip. <= 1 selects the scalar legacy loop.
  size_t batch_size = 1;
  /// Threads issuing batches concurrently (including the caller). <= 1 keeps
  /// scans single-threaded.
  size_t workers = 1;

  bool batched() const { return batch_size > 1; }
  bool parallel() const { return workers > 1; }
};

/// Evaluates `td` on every tuple of `tids`, honouring `policy`. Returns one
/// byte per tuple (1 = satisfied) in input order. Deterministic for a fixed
/// input regardless of batch size or worker count.
std::vector<uint8_t> ScanTuples(QpfOracle* qpf, const Trapdoor& td,
                                std::span<const TupleId> tids,
                                const BatchPolicy& policy);

}  // namespace prkb::edbms

#endif  // PRKB_EDBMS_BATCH_SCAN_H_
