#ifndef PRKB_EDBMS_DATA_OWNER_H_
#define PRKB_EDBMS_DATA_OWNER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "crypto/cipher.h"
#include "crypto/hmac.h"
#include "crypto/prf.h"
#include "edbms/encryption.h"
#include "edbms/table.h"
#include "edbms/types.h"

namespace prkb::edbms {

/// The data owner (DO). Holds the master key, performs application-level
/// encryption of tuples, and issues trapdoors for queries. The DO is *not*
/// involved in building or using the PRKB (the paper's headline property) —
/// it only does what any EDBMS client does: encrypt data and send queries.
class DataOwner {
 public:
  /// Derives all working keys from a seed (stands in for key provisioning).
  explicit DataOwner(uint64_t master_seed);

  /// --- Data upload -------------------------------------------------------

  /// Encrypts one row (fresh nonce per cell).
  std::vector<EncValue> EncryptRow(const std::vector<Value>& row);

  /// Encrypts a whole plaintext table into a new EncryptedTable.
  EncryptedTable EncryptTable(const PlainTable& plain);

  /// --- Query issue -------------------------------------------------------

  /// Issues a trapdoor for the comparison predicate 'attr op c'.
  Trapdoor MakeComparison(AttrId attr, CompareOp op, Value c);

  /// Issues a trapdoor for 'attr BETWEEN lo AND hi' (inclusive).
  Trapdoor MakeBetween(AttrId attr, Value lo, Value hi);

  /// --- Client-side utilities --------------------------------------------

  /// Decrypts a value (used when the DO consumes query answers and by test
  /// oracles; never available to the SP).
  Value DecryptValue(const EncValue& ev) const { return crypter_.Decrypt(ev); }

  /// Plain form of an issued trapdoor, looked up by uid. Models the DO's own
  /// memory of its queries; used by the SDB-style MPC endpoint and by tests.
  const PlainPredicate& PlainFormOf(uint64_t uid) const {
    return issued_.at(uid);
  }

  /// Additive mask for SDB-style secret sharing of cell (attr, tid): the DO
  /// can regenerate its share from the PRF instead of storing it (the paper
  /// notes SDB's RSA-like share generation serves the same purpose).
  uint64_t ShareMask(AttrId attr, TupleId tid) const;

  /// Key material shared with the trusted machine during provisioning.
  uint64_t master_seed() const { return master_seed_; }

 private:
  Trapdoor Issue(AttrId attr, PredicateKind kind, const TrapdoorPayload& p);

  uint64_t master_seed_;
  crypto::Prf prf_;
  ValueCrypter crypter_;
  crypto::AesCtr trapdoor_cipher_;
  crypto::HmacSha256 trapdoor_mac_;
  uint64_t next_nonce_ = 1;
  uint64_t next_uid_ = 1;
  std::unordered_map<uint64_t, PlainPredicate> issued_;
};

}  // namespace prkb::edbms

#endif  // PRKB_EDBMS_DATA_OWNER_H_
