#include "edbms/data_owner.h"

namespace prkb::edbms {
namespace {

std::vector<uint8_t> SeedBytes(uint64_t seed) {
  std::vector<uint8_t> out(8);
  for (int i = 0; i < 8; ++i) out[i] = static_cast<uint8_t>(seed >> (8 * i));
  return out;
}

}  // namespace

DataOwner::DataOwner(uint64_t master_seed)
    : master_seed_(master_seed),
      prf_(SeedBytes(master_seed)),
      crypter_(prf_.DeriveAesKey("value-enc")),
      trapdoor_cipher_(prf_.DeriveAesKey("trapdoor-enc")),
      trapdoor_mac_(prf_.DeriveKey("trapdoor-mac")) {}

std::vector<EncValue> DataOwner::EncryptRow(const std::vector<Value>& row) {
  std::vector<EncValue> out;
  out.reserve(row.size());
  for (Value v : row) out.push_back(crypter_.Encrypt(v, next_nonce_++));
  return out;
}

EncryptedTable DataOwner::EncryptTable(const PlainTable& plain) {
  EncryptedTable enc(plain.num_attrs());
  std::vector<Value> row(plain.num_attrs());
  for (TupleId tid = 0; tid < plain.num_rows(); ++tid) {
    for (AttrId a = 0; a < plain.num_attrs(); ++a) row[a] = plain.at(a, tid);
    enc.Append(EncryptRow(row));
  }
  return enc;
}

Trapdoor DataOwner::Issue(AttrId attr, PredicateKind kind,
                          const TrapdoorPayload& p) {
  Trapdoor td;
  td.attr = attr;
  td.kind = kind;
  td.uid = next_uid_++;
  td.blob = SealTrapdoor(trapdoor_cipher_, trapdoor_mac_, attr, kind,
                         next_nonce_++, p);

  PlainPredicate plain;
  plain.attr = attr;
  plain.kind = kind;
  plain.op = p.op;
  plain.lo = p.lo;
  plain.hi = p.hi;
  issued_.emplace(td.uid, plain);
  return td;
}

Trapdoor DataOwner::MakeComparison(AttrId attr, CompareOp op, Value c) {
  return Issue(attr, PredicateKind::kComparison,
               TrapdoorPayload{op, c, /*hi=*/0});
}

Trapdoor DataOwner::MakeBetween(AttrId attr, Value lo, Value hi) {
  return Issue(attr, PredicateKind::kBetween,
               TrapdoorPayload{CompareOp::kLt, lo, hi});
}

uint64_t DataOwner::ShareMask(AttrId attr, TupleId tid) const {
  return prf_.Eval64("sdb-share",
                     (static_cast<uint64_t>(attr) << 32) | tid);
}

}  // namespace prkb::edbms
