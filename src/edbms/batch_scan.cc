#include "edbms/batch_scan.h"

#include <algorithm>

#include "common/thread_pool.h"

namespace prkb::edbms {

std::vector<uint8_t> ScanTuples(QpfOracle* qpf, const Trapdoor& td,
                                std::span<const TupleId> tids,
                                const BatchPolicy& policy) {
  std::vector<uint8_t> out(tids.size());
  if (!policy.batched()) {
    for (size_t i = 0; i < tids.size(); ++i) {
      out[i] = qpf->Eval(td, tids[i]) ? 1 : 0;
    }
    return out;
  }

  const size_t chunk = policy.batch_size;
  const size_t num_chunks = (tids.size() + chunk - 1) / chunk;
  auto run_chunk = [&](size_t c) {
    const size_t begin = c * chunk;
    const size_t len = std::min(chunk, tids.size() - begin);
    const BitVector bits = qpf->EvalBatch(td, tids.subspan(begin, len));
    for (size_t i = 0; i < len; ++i) out[begin + i] = bits.Get(i) ? 1 : 0;
  };

  if (policy.parallel() && num_chunks > 1) {
    // Each chunk writes a disjoint byte range of `out`; the oracle's own
    // counters are atomic, so chunks are independent tasks.
    ThreadPool::Shared().ParallelFor(num_chunks, run_chunk, policy.workers);
  } else {
    for (size_t c = 0; c < num_chunks; ++c) run_chunk(c);
  }
  return out;
}

}  // namespace prkb::edbms
