#ifndef PRKB_EDBMS_OPE_H_
#define PRKB_EDBMS_OPE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "edbms/types.h"

namespace prkb::edbms {

/// Order-preserving encoding of one column, in the style of CryptDB's OPE
/// layer / mOPE (an "ideal-security" order-revealing code built by the data
/// owner). Plain values map to codes such that x < y ⟺ code(x) < code(y);
/// the service provider can index and compare them like plaintext.
///
/// This exists for the paper's security contrast (end of Sec. 8.1): with
/// OPE the total order is public *before a single query is answered*
/// (RPOI = 100% immediately), which is what makes the inference attacks of
/// Naveed et al. fully effective — whereas the selection-revealing model
/// PRKB builds on leaks ordering only gradually and partially. Not used by
/// any processing path; see attack_test.cc and examples/attack_audit.
class OpeColumn {
 public:
  /// Encodes `column` under `key`: rank-preserving codes with keyed jitter,
  /// so equal plaintexts share a code and order is exactly preserved.
  static OpeColumn Build(const std::vector<Value>& column, uint64_t key);

  /// Code of the value at tuple id `tid`.
  uint64_t code_at(TupleId tid) const { return codes_[tid]; }
  size_t size() const { return codes_.size(); }

  /// Encodes a fresh value consistently with the column's code space
  /// (needed by the DO to issue OPE range queries). Returns a code c with
  /// the property: for every stored value v, v <relation> x ⟺
  /// code(v) <relation'> c in a way that preserves answers.
  uint64_t EncodeProbe(Value x) const;

  /// What a compromised SP recovers from the codes alone: the complete
  /// total order (as the permutation of tuple ids sorted by code).
  std::vector<TupleId> RecoverTotalOrder() const;

 private:
  std::vector<uint64_t> codes_;             // by tuple id
  std::vector<std::pair<Value, uint64_t>> dictionary_;  // sorted (v, code)
};

}  // namespace prkb::edbms

#endif  // PRKB_EDBMS_OPE_H_
