#include "edbms/sdb_qpf.h"

#include "common/latency.h"
#include "obs/metrics.h"

namespace prkb::edbms {
namespace {

/// MPC transport cost, process-wide (docs/OBSERVABILITY.md).
struct SdbMetrics {
  obs::Counter* rounds;
  obs::Counter* bytes;

  static const SdbMetrics& Get() {
    static const SdbMetrics m = {
        obs::MetricsRegistry::Global().GetCounter("sdb.mpc_rounds"),
        obs::MetricsRegistry::Global().GetCounter("sdb.mpc_bytes"),
    };
    return m;
  }
};

}  // namespace

SdbEdbms::SdbEdbms(uint64_t master_seed, size_t num_attrs)
    : do_(master_seed), share_cols_(num_attrs) {}

SdbEdbms SdbEdbms::FromPlainTable(uint64_t master_seed,
                                  const PlainTable& plain) {
  SdbEdbms db(master_seed, plain.num_attrs());
  std::vector<Value> row(plain.num_attrs());
  for (TupleId tid = 0; tid < plain.num_rows(); ++tid) {
    for (AttrId a = 0; a < plain.num_attrs(); ++a) row[a] = plain.at(a, tid);
    db.Insert(row);
  }
  return db;
}

TupleId SdbEdbms::Insert(const std::vector<Value>& row) {
  const TupleId tid = static_cast<TupleId>(num_rows());
  for (AttrId a = 0; a < share_cols_.size(); ++a) {
    const uint64_t mask = do_.ShareMask(a, tid);
    share_cols_[a].push_back(static_cast<uint64_t>(row[a]) + mask);
  }
  live_.Resize(num_rows(), true);
  return tid;
}

void SdbEdbms::Delete(TupleId tid) {
  if (live_.Get(tid)) {
    live_.Clear(tid);
    ++dead_count_;
  }
}

Trapdoor SdbEdbms::MakeComparison(AttrId attr, CompareOp op, Value c) {
  return do_.MakeComparison(attr, op, c);
}

Trapdoor SdbEdbms::MakeBetween(AttrId attr, Value lo, Value hi) {
  return do_.MakeBetween(attr, lo, hi);
}

void SdbEdbms::SimulateLatency() const { latency_.Apply(); }

bool SdbEdbms::Reconstruct(const Trapdoor& td, const PlainPredicate& pred,
                           TupleId tid) const {
  // ---- DO endpoint (conceptually across the network) ----
  const uint64_t share = share_cols_[td.attr][tid];
  const uint64_t mask = do_.ShareMask(td.attr, tid);
  return pred.Satisfies(static_cast<Value>(share - mask));
}

bool SdbEdbms::DoEval(const Trapdoor& td, TupleId tid) {
  // One request/response round: share + ids out, one bit back.
  const uint64_t nbytes =
      sizeof(uint64_t) + sizeof(TupleId) + sizeof(uint64_t) + 1;
  rounds_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(nbytes, std::memory_order_relaxed);
  SdbMetrics::Get().rounds->Add(1);
  SdbMetrics::Get().bytes->Add(nbytes);
  SimulateLatency();
  return Reconstruct(td, do_.PlainFormOf(td.uid), tid);
}

BitVector SdbEdbms::DoEvalBatch(const Trapdoor& td,
                                std::span<const TupleId> tids) {
  // One MPC round for the whole batch: all shares and ids travel in a single
  // request, the trapdoor uid once, and the answer is one packed bit vector.
  const uint64_t nbytes = tids.size() * (sizeof(uint64_t) + sizeof(TupleId)) +
                          sizeof(uint64_t) + (tids.size() + 7) / 8;
  rounds_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(nbytes, std::memory_order_relaxed);
  SdbMetrics::Get().rounds->Add(1);
  SdbMetrics::Get().bytes->Add(nbytes);
  SimulateLatency();
  const PlainPredicate& pred = do_.PlainFormOf(td.uid);
  BitVector out(tids.size());
  for (size_t i = 0; i < tids.size(); ++i) {
    out.Assign(i, Reconstruct(td, pred, tids[i]));
  }
  return out;
}

BitVector SdbEdbms::DoEvalMany(std::span<const ProbeRequest> reqs) {
  // One MPC round for a fused probe batch. Unlike DoEvalBatch the trapdoor
  // uid travels per lane (each request may name a different predicate).
  const uint64_t nbytes =
      reqs.size() * (sizeof(uint64_t) + sizeof(TupleId) + sizeof(uint64_t)) +
      (reqs.size() + 7) / 8;
  rounds_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(nbytes, std::memory_order_relaxed);
  SdbMetrics::Get().rounds->Add(1);
  SdbMetrics::Get().bytes->Add(nbytes);
  SimulateLatency();
  BitVector out(reqs.size());
  for (size_t i = 0; i < reqs.size(); ++i) {
    out.Assign(i, Reconstruct(*reqs[i].td, do_.PlainFormOf(reqs[i].td->uid),
                              reqs[i].tid));
  }
  return out;
}

}  // namespace prkb::edbms
