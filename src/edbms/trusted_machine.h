#ifndef PRKB_EDBMS_TRUSTED_MACHINE_H_
#define PRKB_EDBMS_TRUSTED_MACHINE_H_

#include <cstdint>
#include <unordered_map>

#include "crypto/cipher.h"
#include "crypto/hmac.h"
#include "crypto/prf.h"
#include "edbms/encryption.h"
#include "edbms/types.h"

namespace prkb::edbms {

/// Software stand-in for the tamper-resistant trusted machine (TM) of
/// Cipherbase / TrustedDB. The TM is provisioned with the data owner's key
/// material; the service provider hands it ciphertexts and gets back exactly
/// one bit per predicate evaluation.
///
/// Substitution note (see DESIGN.md): the paper runs this on an FPGA /
/// crypto-coprocessor. Here the decrypt-and-compare really happens (portable
/// AES), and an optional fixed per-call latency emulates the hardware round
/// trip. Both the paper's cost metrics are preserved: the call count, and a
/// per-call cost that dwarfs a plain comparison.
class TrustedMachine {
 public:
  /// Provisioned with the same seed as the data owner.
  explicit TrustedMachine(uint64_t master_seed);

  /// Θ's inner worker: verifies the trapdoor, decrypts the cell, compares.
  /// Returns false (and sets ok=false if provided) on a forged trapdoor.
  bool EvalPredicate(const Trapdoor& td, const EncValue& cell,
                     bool* ok = nullptr);

  /// Decrypts a cell inside the TM (used by the Logarithmic-SRC-i
  /// confirmation step and index maintenance). Counted separately.
  Value DecryptValue(const EncValue& cell);

  /// Configures an artificial busy-wait per TM entry, in nanoseconds, to
  /// emulate hardware/transport latency. 0 (default) disables it.
  void set_call_latency_ns(uint64_t ns) { call_latency_ns_ = ns; }

  uint64_t predicate_evals() const { return predicate_evals_; }
  uint64_t value_decrypts() const { return value_decrypts_; }
  void ResetCounters() {
    predicate_evals_ = 0;
    value_decrypts_ = 0;
  }

 private:
  void SimulateLatency() const;
  /// Opens (or fetches from the verified cache) the plain form of `td`.
  const TrapdoorPayload* Open(const Trapdoor& td);

  crypto::Prf prf_;
  ValueCrypter crypter_;
  crypto::AesCtr trapdoor_cipher_;
  crypto::HmacSha256 trapdoor_mac_;
  // Verified trapdoors, keyed by uid: MAC verification happens once per
  // trapdoor, not once per tuple.
  std::unordered_map<uint64_t, TrapdoorPayload> verified_;
  uint64_t predicate_evals_ = 0;
  uint64_t value_decrypts_ = 0;
  uint64_t call_latency_ns_ = 0;
};

}  // namespace prkb::edbms

#endif  // PRKB_EDBMS_TRUSTED_MACHINE_H_
