#ifndef PRKB_EDBMS_TRUSTED_MACHINE_H_
#define PRKB_EDBMS_TRUSTED_MACHINE_H_

#include <atomic>
#include <cstdint>
#include <shared_mutex>
#include <span>
#include <unordered_map>

#include "common/bitvector.h"
#include "common/latency.h"
#include "crypto/cipher.h"
#include "crypto/hmac.h"
#include "crypto/prf.h"
#include "edbms/encryption.h"
#include "edbms/types.h"

namespace prkb::edbms {

/// Software stand-in for the tamper-resistant trusted machine (TM) of
/// Cipherbase / TrustedDB. The TM is provisioned with the data owner's key
/// material; the service provider hands it ciphertexts and gets back exactly
/// one bit per predicate evaluation.
///
/// Substitution note (see DESIGN.md): the paper runs this on an FPGA /
/// crypto-coprocessor. Here the decrypt-and-compare really happens (portable
/// AES), and an optional fixed per-entry latency emulates the hardware round
/// trip. Both the paper's cost metrics are preserved: the call count, and a
/// per-call cost that dwarfs a plain comparison.
///
/// Entries come in two granularities: scalar EvalPredicate (one round trip
/// per tuple) and EvalPredicateBatch (one round trip for a whole ciphertext
/// batch, bulk AES-CTR decrypt inside). Counters are atomic and the verified
/// trapdoor cache is lock-protected so parallel scan workers can drive one TM
/// concurrently.
class TrustedMachine {
 public:
  /// Provisioned with the same seed as the data owner.
  explicit TrustedMachine(uint64_t master_seed);

  // The mutex and atomics delete the implicit move; the owning Edbms is
  // returned by value from factories, so move explicitly (fresh mutex,
  // counter snapshot). Never move a TM with scans in flight.
  TrustedMachine(TrustedMachine&& other) noexcept
      : prf_(std::move(other.prf_)),
        crypter_(std::move(other.crypter_)),
        trapdoor_cipher_(std::move(other.trapdoor_cipher_)),
        trapdoor_mac_(std::move(other.trapdoor_mac_)),
        verified_(std::move(other.verified_)),
        predicate_evals_(
            other.predicate_evals_.load(std::memory_order_relaxed)),
        value_decrypts_(other.value_decrypts_.load(std::memory_order_relaxed)),
        round_trips_(other.round_trips_.load(std::memory_order_relaxed)),
        latency_(other.latency_) {}

  /// Θ's inner worker: verifies the trapdoor, decrypts the cell, compares.
  /// Returns false (and sets ok=false if provided) on a forged trapdoor.
  bool EvalPredicate(const Trapdoor& td, const EncValue& cell,
                     bool* ok = nullptr);

  /// Batched TM entry: one simulated round trip for the whole batch, then a
  /// bulk decrypt-and-compare of every cell. Bit i of the result corresponds
  /// to cells[i]. Counts |cells| predicate evaluations but a single round
  /// trip. All bits are false (ok=false) on a forged trapdoor.
  BitVector EvalPredicateBatch(const Trapdoor& td,
                               std::span<const EncValue* const> cells,
                               bool* ok = nullptr);

  /// Heterogeneous batched TM entry: one simulated round trip for a batch
  /// where every cell may carry its own trapdoor (the probe scheduler's
  /// fused rounds mix predicates from concurrent searches). tds and cells
  /// are parallel arrays; bit i is tds[i] applied to cells[i]. Counts
  /// |cells| predicate evaluations but a single round trip. A forged
  /// trapdoor yields false for its own lanes only (and ok=false overall).
  BitVector EvalPredicateMulti(std::span<const Trapdoor* const> tds,
                               std::span<const EncValue* const> cells,
                               bool* ok = nullptr);

  /// Decrypts a cell inside the TM (used by the Logarithmic-SRC-i
  /// confirmation step and index maintenance). Counted separately.
  Value DecryptValue(const EncValue& cell);

  /// Configures an artificial per-TM-entry delay, in nanoseconds, to emulate
  /// hardware/transport latency. 0 (default) disables it. Short delays spin;
  /// delays above ~50µs genuinely sleep (common/latency.h). Charged through
  /// the TM's LatencyModel — the single simulation hook per backend entry —
  /// so serving this TM behind a real wire (net::QpfServer) never
  /// double-counts latency: zero the model when the transport is physical.
  void set_call_latency_ns(uint64_t ns) { latency_.set_ns(ns); }
  LatencyModel& latency_model() { return latency_; }
  const LatencyModel& latency_model() const { return latency_; }

  uint64_t predicate_evals() const {
    return predicate_evals_.load(std::memory_order_relaxed);
  }
  uint64_t value_decrypts() const {
    return value_decrypts_.load(std::memory_order_relaxed);
  }
  /// Number of TM entries: scalar calls plus batch calls (the unit the
  /// simulated latency is charged per).
  uint64_t round_trips() const {
    return round_trips_.load(std::memory_order_relaxed);
  }
  void ResetCounters() {
    predicate_evals_.store(0, std::memory_order_relaxed);
    value_decrypts_.store(0, std::memory_order_relaxed);
    round_trips_.store(0, std::memory_order_relaxed);
  }

 private:
  void SimulateLatency() const;
  /// Opens (or fetches from the verified cache) the plain form of `td`.
  const TrapdoorPayload* Open(const Trapdoor& td);
  /// Decrypt-and-compare of one cell under an opened trapdoor.
  bool Compare(const TrapdoorPayload& p, PredicateKind kind,
               const EncValue& cell) const;

  crypto::Prf prf_;
  ValueCrypter crypter_;
  crypto::AesCtr trapdoor_cipher_;
  crypto::HmacSha256 trapdoor_mac_;
  // Verified trapdoors, keyed by uid: MAC verification happens once per
  // trapdoor, not once per tuple. Guarded for parallel scan workers;
  // unordered_map never moves values, so returned pointers stay valid.
  std::shared_mutex verified_mu_;
  std::unordered_map<uint64_t, TrapdoorPayload> verified_;
  std::atomic<uint64_t> predicate_evals_{0};
  std::atomic<uint64_t> value_decrypts_{0};
  std::atomic<uint64_t> round_trips_{0};
  LatencyModel latency_;
};

}  // namespace prkb::edbms

#endif  // PRKB_EDBMS_TRUSTED_MACHINE_H_
