#include "edbms/encryption.h"

#include <cstring>

namespace prkb::edbms {
namespace {

// MAC input: attr || kind || nonce || ct.
std::vector<uint8_t> MacInput(AttrId attr, PredicateKind kind, uint64_t nonce,
                              const uint8_t* ct) {
  std::vector<uint8_t> msg;
  msg.reserve(4 + 1 + 8 + kTrapdoorCtSize);
  for (int i = 0; i < 4; ++i) msg.push_back(static_cast<uint8_t>(attr >> (8 * i)));
  msg.push_back(static_cast<uint8_t>(kind));
  for (int i = 0; i < 8; ++i) msg.push_back(static_cast<uint8_t>(nonce >> (8 * i)));
  msg.insert(msg.end(), ct, ct + kTrapdoorCtSize);
  return msg;
}

}  // namespace

std::vector<uint8_t> SealTrapdoor(const crypto::AesCtr& cipher,
                                  const crypto::HmacSha256& mac, AttrId attr,
                                  PredicateKind kind, uint64_t nonce,
                                  const TrapdoorPayload& payload) {
  uint8_t ct[kTrapdoorCtSize];
  ct[0] = static_cast<uint8_t>(payload.op);
  std::memcpy(ct + 1, &payload.lo, 8);
  std::memcpy(ct + 9, &payload.hi, 8);
  cipher.Crypt(nonce, ct, kTrapdoorCtSize);

  const auto tag = mac.Compute(MacInput(attr, kind, nonce, ct));

  std::vector<uint8_t> blob(kTrapdoorBlobSize);
  std::memcpy(blob.data(), &nonce, kTrapdoorNonceSize);
  std::memcpy(blob.data() + kTrapdoorNonceSize, ct, kTrapdoorCtSize);
  std::memcpy(blob.data() + kTrapdoorNonceSize + kTrapdoorCtSize, tag.data(),
              kTrapdoorTagSize);
  return blob;
}

bool OpenTrapdoor(const crypto::AesCtr& cipher, const crypto::HmacSha256& mac,
                  const Trapdoor& td, TrapdoorPayload* out) {
  if (td.blob.size() != kTrapdoorBlobSize) return false;
  uint64_t nonce;
  std::memcpy(&nonce, td.blob.data(), kTrapdoorNonceSize);
  uint8_t ct[kTrapdoorCtSize];
  std::memcpy(ct, td.blob.data() + kTrapdoorNonceSize, kTrapdoorCtSize);

  const auto expect = mac.Compute(MacInput(td.attr, td.kind, nonce, ct));
  crypto::HmacSha256::Tag got{};
  std::memcpy(got.data(), td.blob.data() + kTrapdoorNonceSize + kTrapdoorCtSize,
              kTrapdoorTagSize);
  // Only the first kTrapdoorTagSize bytes of the tag are stored; compare them
  // in constant time.
  uint8_t diff = 0;
  for (size_t i = 0; i < kTrapdoorTagSize; ++i) diff |= expect[i] ^ got[i];
  if (diff != 0) return false;

  cipher.Crypt(nonce, ct, kTrapdoorCtSize);
  out->op = static_cast<CompareOp>(ct[0]);
  std::memcpy(&out->lo, ct + 1, 8);
  std::memcpy(&out->hi, ct + 9, 8);
  return true;
}

}  // namespace prkb::edbms
