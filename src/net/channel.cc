#include "net/channel.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace prkb::net {
namespace {

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

}  // namespace

Channel::Channel(Channel&& other) noexcept
    : fd_(other.fd_.exchange(-1, std::memory_order_relaxed)) {}

Channel& Channel::operator=(Channel&& other) noexcept {
  if (this != &other) {
    CloseFd();
    fd_.store(other.fd_.exchange(-1, std::memory_order_relaxed),
              std::memory_order_relaxed);
  }
  return *this;
}

void Channel::CloseFd() {
  const int fd = fd_.exchange(-1, std::memory_order_relaxed);
  if (fd >= 0) ::close(fd);
}

Result<Channel> Channel::ConnectTcp(const std::string& host, uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad IPv4 address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status s = Errno("connect " + host + ":" + std::to_string(port));
    ::close(fd);
    return s;
  }
  // Probe rounds are latency-bound request/response pairs; Nagle would add
  // a delayed-ack round to every one of them.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Channel(fd);
}

Result<Channel> Channel::ConnectUnix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    return Status::InvalidArgument("unix socket path too long: " + path);
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status s = Errno("connect " + path);
    ::close(fd);
    return s;
  }
  return Channel(fd);
}

Status Channel::WriteAll(int fd, const uint8_t* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    off += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status Channel::ReadAll(int fd, uint8_t* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    const ssize_t n = ::recv(fd, data + off, len - off, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    if (n == 0) return Status::IoError("connection closed by peer");
    off += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status Channel::Send(const Frame& frame) {
  const int fd = this->fd();
  if (fd < 0) return Status::IoError("send on closed channel");
  if (frame.payload.size() > kMaxFramePayload) {
    return Status::InvalidArgument("frame payload exceeds cap");
  }
  uint8_t header[kFrameHeaderBytes];
  EncodeFrameHeader(frame.type, frame.corr,
                    static_cast<uint32_t>(frame.payload.size()), header);
  const std::lock_guard<std::mutex> lock(send_mu_);
  PRKB_RETURN_IF_ERROR(WriteAll(fd, header, sizeof(header)));
  if (!frame.payload.empty()) {
    PRKB_RETURN_IF_ERROR(
        WriteAll(fd, frame.payload.data(), frame.payload.size()));
  }
  const NetMetrics& m = NetMetrics::Get();
  m.frames_sent->Add(1);
  m.bytes_sent->Add(sizeof(header) + frame.payload.size());
  return Status::Ok();
}

Status Channel::Recv(Frame* out) {
  const int fd = this->fd();
  if (fd < 0) return Status::IoError("recv on closed channel");
  uint8_t header[kFrameHeaderBytes];
  PRKB_RETURN_IF_ERROR(ReadAll(fd, header, sizeof(header)));
  uint32_t payload_len = 0;
  const Status hs =
      DecodeFrameHeader(header, &out->type, &out->corr, &payload_len);
  if (!hs.ok()) {
    NetMetrics::Get().errors->Add(1);
    return hs;
  }
  out->payload.resize(payload_len);
  if (payload_len > 0) {
    PRKB_RETURN_IF_ERROR(ReadAll(fd, out->payload.data(), payload_len));
  }
  const NetMetrics& m = NetMetrics::Get();
  m.frames_recv->Add(1);
  m.bytes_recv->Add(sizeof(header) + payload_len);
  return Status::Ok();
}

void Channel::Shutdown() {
  const int fd = this->fd();
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_.exchange(-1, std::memory_order_relaxed)),
      port_(other.port_), unix_path_(std::move(other.unix_path_)) {
  other.unix_path_.clear();
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_.store(other.fd_.exchange(-1, std::memory_order_relaxed),
              std::memory_order_relaxed);
    port_ = other.port_;
    unix_path_ = std::move(other.unix_path_);
    other.unix_path_.clear();
  }
  return *this;
}

Result<Listener> Listener::ListenTcp(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status s = Errno("bind 127.0.0.1:" + std::to_string(port));
    ::close(fd);
    return s;
  }
  if (::listen(fd, SOMAXCONN) != 0) {
    const Status s = Errno("listen");
    ::close(fd);
    return s;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const Status s = Errno("getsockname");
    ::close(fd);
    return s;
  }
  Listener out;
  out.fd_ = fd;
  out.port_ = ntohs(addr.sin_port);
  return out;
}

Result<Listener> Listener::ListenUnix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    return Status::InvalidArgument("unix socket path too long: " + path);
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status s = Errno("bind " + path);
    ::close(fd);
    return s;
  }
  if (::listen(fd, SOMAXCONN) != 0) {
    const Status s = Errno("listen");
    ::close(fd);
    return s;
  }
  Listener out;
  out.fd_ = fd;
  out.unix_path_ = path;
  return out;
}

Result<Channel> Listener::Accept() {
  const int fd = fd_.load(std::memory_order_relaxed);
  if (fd < 0) return Status::IoError("accept on closed listener");
  while (true) {
    const int cfd = ::accept(fd, nullptr, nullptr);
    if (cfd < 0) {
      if (errno == EINTR) continue;
      return Errno("accept");
    }
    const int one = 1;
    ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return Channel(cfd);
  }
}

void Listener::Close() {
  const int fd = fd_.exchange(-1, std::memory_order_relaxed);
  if (fd >= 0) {
    // shutdown() first so a thread blocked in accept() wakes with an error
    // instead of racing the close.
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  if (!unix_path_.empty()) {
    ::unlink(unix_path_.c_str());
    unix_path_.clear();
  }
}

}  // namespace prkb::net
