#ifndef PRKB_NET_QPF_CLIENT_H_
#define PRKB_NET_QPF_CLIENT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "edbms/edbms.h"
#include "net/channel.h"
#include "net/frame.h"

namespace prkb::net {

/// Correlation-id multiplexer over one Channel: the client half of the
/// pipelined QPF transport (DESIGN.md §12).
///
/// Any number of threads may Submit concurrently; each request is stamped
/// with a fresh correlation id and written to the shared channel, and the
/// caller parks in Await until the completion thread — the single reader of
/// the channel — matches the response id back to its slot. Requests complete
/// in whatever order the server finishes them, so while one selection's
/// m-ary round is being evaluated, other selections' rounds travel and
/// evaluate concurrently: in-flight depth equals the number of concurrently
/// blocked callers, with no per-caller connection.
///
/// On any transport failure the client goes sticky-broken: every pending and
/// future call fails fast with the same IoError (no hangs), surfaced to
/// query processing through QpfOracle::Health.
class QpfClient {
 public:
  static Result<std::unique_ptr<QpfClient>> ConnectTcp(const std::string& host,
                                                       uint16_t port);
  static Result<std::unique_ptr<QpfClient>> ConnectUnix(
      const std::string& path);
  ~QpfClient();

  QpfClient(const QpfClient&) = delete;
  QpfClient& operator=(const QpfClient&) = delete;

  /// Ships a request frame; returns the correlation id to Await on. The
  /// submit-then-await split is what lets a caller overlap local work (or
  /// other submissions) with the round trip.
  Result<uint64_t> Submit(MsgType type, std::vector<uint8_t> payload);

  /// Blocks until the response for `corr` arrives (or the channel dies).
  Status Await(uint64_t corr, Frame* resp);

  /// Submit + Await: one blocking round trip, pipelined with other callers.
  Status Call(MsgType type, std::vector<uint8_t> payload, Frame* resp);

  /// Liveness round trip.
  Status Ping();

  /// Fetches the serving process's counter snapshot (kStatsReq).
  Result<std::vector<StatsEntry>> FetchStats();

  /// Sticky transport status: OK until the channel breaks, then the error.
  Status Health() const;

  /// Severs the channel; pending and future calls fail with IoError.
  void Close();

 private:
  explicit QpfClient(Channel ch);
  void CompletionLoop();
  void FailAllPending(const Status& s);

  Channel ch_;
  std::thread completion_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  struct Slot {
    bool done = false;
    Status st;  // transport verdict; resp is valid only when st.ok()
    Frame resp;
  };
  std::unordered_map<uint64_t, Slot> pending_;
  uint64_t next_corr_ = 1;
  Status broken_;  // sticky
  /// First submission against a broken client logs the sticky status once;
  /// every such call also bumps net.client.failclosed, so fail-closed
  /// all-false bits are observable rather than silent.
  std::atomic<bool> logged_failclosed_{false};
};

/// Client-side QPF backend: Θ over the wire. Plugs into everything that
/// consumes a QpfOracle (ProbeRound, ScanTuples, the SDB-style harness) and
/// keeps the standard accounting — each Eval/EvalBatch/EvalMany is one use
/// bundle and one *real* round trip; qpf.round_trip_ns measures the wire.
class RemoteQpfOracle : public edbms::QpfOracle {
 public:
  explicit RemoteQpfOracle(QpfClient* client) : client_(client) {}

  Status Health() const override { return client_->Health(); }

 private:
  bool DoEval(const edbms::Trapdoor& td, edbms::TupleId tid) override;
  BitVector DoEvalBatch(const edbms::Trapdoor& td,
                        std::span<const edbms::TupleId> tids) override;
  BitVector DoEvalMany(std::span<const edbms::ProbeRequest> reqs) override;

  QpfClient* client_;
};

/// Client-side Edbms for serving deployments: the data-owner surface
/// (Insert / Delete / trapdoor issuing) and the SP-side table geometry stay
/// on the co-located `local` instance — both roles live at the service
/// provider in the paper's model — while every Θ evaluation crosses the
/// channel to the QpfServer hosting `local`'s trusted machine. Drop-in for
/// PrkbIndex: selections run unchanged, but each probe round is a real
/// network round trip, counted once by this oracle's wrappers (the server
/// serves uncounted).
class RemoteEdbms : public edbms::Edbms {
 public:
  RemoteEdbms(edbms::Edbms* local, QpfClient* client)
      : local_(local), client_(client) {}

  edbms::TupleId Insert(const std::vector<edbms::Value>& row) override {
    return local_->Insert(row);
  }
  void Delete(edbms::TupleId tid) override { local_->Delete(tid); }
  edbms::Trapdoor MakeComparison(edbms::AttrId attr, edbms::CompareOp op,
                                 edbms::Value c) override {
    return local_->MakeComparison(attr, op, c);
  }
  edbms::Trapdoor MakeBetween(edbms::AttrId attr, edbms::Value lo,
                              edbms::Value hi) override {
    return local_->MakeBetween(attr, lo, hi);
  }

  size_t num_attrs() const override { return local_->num_attrs(); }
  size_t num_rows() const override { return local_->num_rows(); }
  bool IsLive(edbms::TupleId tid) const override {
    return local_->IsLive(tid);
  }
  size_t StoredBytes() const override { return local_->StoredBytes(); }

  Status Health() const override { return client_->Health(); }

 private:
  bool DoEval(const edbms::Trapdoor& td, edbms::TupleId tid) override;
  BitVector DoEvalBatch(const edbms::Trapdoor& td,
                        std::span<const edbms::TupleId> tids) override;
  BitVector DoEvalMany(std::span<const edbms::ProbeRequest> reqs) override;

  edbms::Edbms* local_;
  QpfClient* client_;
};

}  // namespace prkb::net

#endif  // PRKB_NET_QPF_CLIENT_H_
