#include "net/qpf_client.h"

#include <cstdio>
#include <utility>

#include "obs/metrics.h"

namespace prkb::net {
namespace {

/// Distinct from net.errors: counts calls refused because the client is
/// sticky-broken — each one surfaces to the caller as fail-closed all-false
/// bits (docs/OBSERVABILITY.md).
obs::Counter* FailclosedCounter() {
  static obs::Counter* const c =
      obs::MetricsRegistry::Global().GetCounter("net.client.failclosed");
  return c;
}

}  // namespace

QpfClient::QpfClient(Channel ch) : ch_(std::move(ch)) {
  completion_ = std::thread([this] { CompletionLoop(); });
}

QpfClient::~QpfClient() { Close(); }

Result<std::unique_ptr<QpfClient>> QpfClient::ConnectTcp(
    const std::string& host, uint16_t port) {
  auto ch = Channel::ConnectTcp(host, port);
  if (!ch.ok()) return ch.status();
  return std::unique_ptr<QpfClient>(new QpfClient(std::move(ch).value()));
}

Result<std::unique_ptr<QpfClient>> QpfClient::ConnectUnix(
    const std::string& path) {
  auto ch = Channel::ConnectUnix(path);
  if (!ch.ok()) return ch.status();
  return std::unique_ptr<QpfClient>(new QpfClient(std::move(ch).value()));
}

Result<uint64_t> QpfClient::Submit(MsgType type, std::vector<uint8_t> payload) {
  uint64_t corr = 0;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (!broken_.ok()) {
      FailclosedCounter()->Add(1);
      if (!logged_failclosed_.exchange(true, std::memory_order_relaxed)) {
        std::fprintf(stderr,
                     "qpf_client: channel is sticky-broken (%s); this and "
                     "all further calls fail closed with all-false bits\n",
                     broken_.ToString().c_str());
      }
      return broken_;
    }
    corr = next_corr_++;
    pending_.emplace(corr, Slot{});
  }
  NetMetrics::Get().inflight->Add(1);
  Frame req;
  req.type = type;
  req.corr = corr;
  req.payload = std::move(payload);
  const Status s = ch_.Send(req);
  if (!s.ok()) {
    // The channel is gone for everyone, not just this request. Reclaim this
    // slot (its caller sees the error here, never Awaits), then fail every
    // other waiter and go sticky-broken.
    {
      const std::lock_guard<std::mutex> lock(mu_);
      pending_.erase(corr);
    }
    NetMetrics::Get().inflight->Add(-1);
    FailAllPending(s);
    return s;
  }
  return corr;
}

Status QpfClient::Await(uint64_t corr, Frame* resp) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto it = pending_.find(corr);
  if (it == pending_.end()) {
    return Status::InvalidArgument("unknown correlation id");
  }
  cv_.wait(lock, [&] { return it->second.done; });
  const Status st = it->second.st;
  if (st.ok()) *resp = std::move(it->second.resp);
  pending_.erase(it);
  lock.unlock();
  NetMetrics::Get().inflight->Add(-1);
  return st;
}

Status QpfClient::Call(MsgType type, std::vector<uint8_t> payload,
                       Frame* resp) {
  auto corr = Submit(type, std::move(payload));
  if (!corr.ok()) return corr.status();
  PRKB_RETURN_IF_ERROR(Await(corr.value(), resp));
  if (resp->type == MsgType::kErrorResp) {
    // The transport worked; the server refused. Surface the remote status.
    Status remote;
    PRKB_RETURN_IF_ERROR(DecodeErrorResp(resp->payload, &remote));
    return remote;
  }
  return Status::Ok();
}

Status QpfClient::Ping() {
  Frame resp;
  PRKB_RETURN_IF_ERROR(Call(MsgType::kPingReq, {}, &resp));
  if (resp.type != MsgType::kPongResp) {
    return Status::Internal("unexpected response to ping");
  }
  return Status::Ok();
}

Result<std::vector<StatsEntry>> QpfClient::FetchStats() {
  Frame resp;
  PRKB_RETURN_IF_ERROR(Call(MsgType::kStatsReq, {}, &resp));
  if (resp.type != MsgType::kStatsResp) {
    return Status::Internal("unexpected response to stats request");
  }
  std::vector<StatsEntry> entries;
  PRKB_RETURN_IF_ERROR(DecodeStatsResp(resp.payload, &entries));
  return entries;
}

Status QpfClient::Health() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return broken_;
}

void QpfClient::Close() {
  FailAllPending(Status::IoError("client closed"));
  ch_.Shutdown();
  if (completion_.joinable()) completion_.join();
}

void QpfClient::CompletionLoop() {
  while (true) {
    Frame resp;
    const Status s = ch_.Recv(&resp);
    if (!s.ok()) {
      FailAllPending(s);
      return;
    }
    std::unique_lock<std::mutex> lock(mu_);
    const auto it = pending_.find(resp.corr);
    if (it == pending_.end()) {
      // A response nobody asked for (stale or corrupt correlation id):
      // count it and keep serving the legitimate waiters.
      lock.unlock();
      NetMetrics::Get().errors->Add(1);
      continue;
    }
    it->second.st = Status::Ok();
    it->second.resp = std::move(resp);
    it->second.done = true;
    lock.unlock();
    cv_.notify_all();
  }
}

void QpfClient::FailAllPending(const Status& s) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (broken_.ok()) broken_ = s;
    for (auto& [corr, slot] : pending_) {
      if (!slot.done) {
        slot.st = broken_;
        slot.done = true;
      }
    }
  }
  cv_.notify_all();
}

namespace {

/// All-false bits of the expected width: the safe answer when the transport
/// failed mid-round. The caller sees an empty winner set plus a non-OK
/// Health(), which the executor turns into a clean error.
BitVector FailClosed(size_t n) { return BitVector(n); }

}  // namespace

bool RemoteQpfOracle::DoEval(const edbms::Trapdoor& td, edbms::TupleId tid) {
  Frame resp;
  if (!client_->Call(MsgType::kEvalReq, EncodeEvalReq(td, tid), &resp).ok()) {
    return false;
  }
  BitVector bits;
  if (!DecodeResultResp(resp.payload, &bits).ok() || bits.size() != 1) {
    return false;
  }
  return bits.Get(0);
}

BitVector RemoteQpfOracle::DoEvalBatch(const edbms::Trapdoor& td,
                                       std::span<const edbms::TupleId> tids) {
  Frame resp;
  if (!client_->Call(MsgType::kEvalBatchReq, EncodeEvalBatchReq(td, tids),
                     &resp)
           .ok()) {
    return FailClosed(tids.size());
  }
  BitVector bits;
  if (!DecodeResultResp(resp.payload, &bits).ok() ||
      bits.size() != tids.size()) {
    return FailClosed(tids.size());
  }
  return bits;
}

BitVector RemoteQpfOracle::DoEvalMany(
    std::span<const edbms::ProbeRequest> reqs) {
  Frame resp;
  if (!client_->Call(MsgType::kEvalManyReq, EncodeEvalManyReq(reqs), &resp)
           .ok()) {
    return FailClosed(reqs.size());
  }
  BitVector bits;
  if (!DecodeResultResp(resp.payload, &bits).ok() ||
      bits.size() != reqs.size()) {
    return FailClosed(reqs.size());
  }
  return bits;
}

bool RemoteEdbms::DoEval(const edbms::Trapdoor& td, edbms::TupleId tid) {
  Frame resp;
  if (!client_->Call(MsgType::kEvalReq, EncodeEvalReq(td, tid), &resp).ok()) {
    return false;
  }
  BitVector bits;
  if (!DecodeResultResp(resp.payload, &bits).ok() || bits.size() != 1) {
    return false;
  }
  return bits.Get(0);
}

BitVector RemoteEdbms::DoEvalBatch(const edbms::Trapdoor& td,
                                   std::span<const edbms::TupleId> tids) {
  Frame resp;
  if (!client_->Call(MsgType::kEvalBatchReq, EncodeEvalBatchReq(td, tids),
                     &resp)
           .ok()) {
    return FailClosed(tids.size());
  }
  BitVector bits;
  if (!DecodeResultResp(resp.payload, &bits).ok() ||
      bits.size() != tids.size()) {
    return FailClosed(tids.size());
  }
  return bits;
}

BitVector RemoteEdbms::DoEvalMany(std::span<const edbms::ProbeRequest> reqs) {
  Frame resp;
  if (!client_->Call(MsgType::kEvalManyReq, EncodeEvalManyReq(reqs), &resp)
           .ok()) {
    return FailClosed(reqs.size());
  }
  BitVector bits;
  if (!DecodeResultResp(resp.payload, &bits).ok() ||
      bits.size() != reqs.size()) {
    return FailClosed(reqs.size());
  }
  return bits;
}

}  // namespace prkb::net
