#ifndef PRKB_NET_FRAME_H_
#define PRKB_NET_FRAME_H_

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/bitvector.h"
#include "common/serial.h"
#include "common/status.h"
#include "edbms/encryption.h"
#include "edbms/qpf.h"
#include "obs/metrics.h"

namespace prkb::net {

/// Transport telemetry shared by Channel / QpfServer / QpfClient
/// (docs/OBSERVABILITY.md). `inflight` tracks correlation ids submitted but
/// not yet completed on the client side — the pipelining depth the async
/// completion queue sustains.
struct NetMetrics {
  obs::Counter* frames_sent;
  obs::Counter* frames_recv;
  obs::Counter* bytes_sent;
  obs::Counter* bytes_recv;
  obs::Counter* reconnects;
  obs::Counter* errors;
  obs::Gauge* inflight;

  static const NetMetrics& Get() {
    static const NetMetrics m = {
        obs::MetricsRegistry::Global().GetCounter("net.frames_sent"),
        obs::MetricsRegistry::Global().GetCounter("net.frames_recv"),
        obs::MetricsRegistry::Global().GetCounter("net.bytes_sent"),
        obs::MetricsRegistry::Global().GetCounter("net.bytes_recv"),
        obs::MetricsRegistry::Global().GetCounter("net.reconnects"),
        obs::MetricsRegistry::Global().GetCounter("net.errors"),
        obs::MetricsRegistry::Global().GetGauge("net.inflight"),
    };
    return m;
  }
};

/// Message kinds of the QPF wire protocol (DESIGN.md §12). Requests carry a
/// client-chosen correlation id; the matching response echoes it, which is
/// what lets one channel multiplex rounds from many concurrent selections.
enum class MsgType : uint8_t {
  kEvalReq = 1,       // Trapdoor + TupleId            → kResultResp (1 bit)
  kEvalBatchReq = 2,  // Trapdoor + TupleId list       → kResultResp
  kEvalManyReq = 3,   // Trapdoor table + (td, tid)*   → kResultResp
  kResultResp = 4,    // BitVector of Θ outcomes
  kErrorResp = 5,     // Status code + message
  kPingReq = 6,       // liveness probe                → kPongResp
  kPongResp = 7,
  kStatsReq = 8,      // server-side counter snapshot  → kStatsResp
  kStatsResp = 9,     // (name, value) pairs
};

/// Wire layout: a fixed 17-byte header — magic u32 | type u8 | corr u64 |
/// payload_len u32, all little-endian — followed by `payload_len` bytes of
/// payload encoded with common/serial.h. Length-prefixing keeps the reader a
/// dumb two-read loop (header, then exactly payload_len bytes), the same
/// shape Kunlun's stream_channel uses for its EC-point batches.
inline constexpr uint32_t kFrameMagic = 0x31465051;  // "QPF1"
inline constexpr size_t kFrameHeaderBytes = 17;
/// Upper bound a receiver enforces before trusting a length field. Generous
/// for any probe round (a 4096-tuple batch is ~16 KiB) while making a
/// corrupt or hostile length fail fast instead of allocating gigabytes.
inline constexpr uint32_t kMaxFramePayload = 64u << 20;

/// One decoded frame.
struct Frame {
  MsgType type = MsgType::kErrorResp;
  uint64_t corr = 0;
  std::vector<uint8_t> payload;
};

/// Serialises the header into `out[kFrameHeaderBytes]`.
void EncodeFrameHeader(MsgType type, uint64_t corr, uint32_t payload_len,
                       uint8_t* out);

/// Parses and validates a header: magic, known type, payload_len bound.
Status DecodeFrameHeader(const uint8_t* in, MsgType* type, uint64_t* corr,
                         uint32_t* payload_len);

/// --- Payload codecs -------------------------------------------------------
/// Encoders return the serialised payload; decoders validate exhaustively
/// (truncation, trailing garbage, out-of-range indices) and return
/// Corruption on any malformed input — a server must survive arbitrary
/// bytes without crashing.

void EncodeTrapdoor(const edbms::Trapdoor& td, Encoder* enc);
Status DecodeTrapdoor(Decoder* dec, edbms::Trapdoor* out);

std::vector<uint8_t> EncodeEvalReq(const edbms::Trapdoor& td,
                                   edbms::TupleId tid);
Status DecodeEvalReq(std::span<const uint8_t> payload, edbms::Trapdoor* td,
                     edbms::TupleId* tid);

std::vector<uint8_t> EncodeEvalBatchReq(const edbms::Trapdoor& td,
                                        std::span<const edbms::TupleId> tids);
Status DecodeEvalBatchReq(std::span<const uint8_t> payload,
                          edbms::Trapdoor* td,
                          std::vector<edbms::TupleId>* tids);

/// Heterogeneous round: distinct trapdoors are sent once, each request is a
/// (table index, tuple) pair — a fused m-ary round re-uses its few predicate
/// trapdoors across many lanes, so the dedup dominates the frame size.
struct ManyReq {
  std::vector<edbms::Trapdoor> tds;
  struct Item {
    uint32_t td_index;
    edbms::TupleId tid;
  };
  std::vector<Item> items;
};
std::vector<uint8_t> EncodeEvalManyReq(
    std::span<const edbms::ProbeRequest> reqs);
Status DecodeEvalManyReq(std::span<const uint8_t> payload, ManyReq* out);

std::vector<uint8_t> EncodeResultResp(const BitVector& bits);
Status DecodeResultResp(std::span<const uint8_t> payload, BitVector* out);

std::vector<uint8_t> EncodeErrorResp(const Status& status);
/// Returns the decoded remote status through `out` (always non-OK), or
/// Corruption if the payload itself is malformed.
Status DecodeErrorResp(std::span<const uint8_t> payload, Status* out);

using StatsEntry = std::pair<std::string, uint64_t>;
std::vector<uint8_t> EncodeStatsResp(std::span<const StatsEntry> entries);
Status DecodeStatsResp(std::span<const uint8_t> payload,
                       std::vector<StatsEntry>* out);

}  // namespace prkb::net

#endif  // PRKB_NET_FRAME_H_
