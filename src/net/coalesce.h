#ifndef PRKB_NET_COALESCE_H_
#define PRKB_NET_COALESCE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/bitvector.h"
#include "common/status.h"
#include "edbms/edbms.h"
#include "edbms/qpf.h"
#include "obs/metrics.h"

namespace prkb::net {

/// Round-bus telemetry (docs/OBSERVABILITY.md). `factor_x1000` is the EWMA
/// coalescing factor — logical rounds carried per backend entry — in
/// thousandths; `linger_ns` the current adaptive linger window.
struct CoalesceMetrics {
  obs::Counter* rounds;
  obs::Counter* requests;
  obs::Counter* entries;
  obs::Counter* merged_rounds;
  obs::Counter* dedup_tds;
  obs::Counter* overflow_splits;
  obs::Gauge* linger_ns;
  obs::Gauge* factor_x1000;

  static const CoalesceMetrics& Get() {
    static const CoalesceMetrics m = {
        obs::MetricsRegistry::Global().GetCounter("coalesce.rounds"),
        obs::MetricsRegistry::Global().GetCounter("coalesce.requests"),
        obs::MetricsRegistry::Global().GetCounter("coalesce.entries"),
        obs::MetricsRegistry::Global().GetCounter("coalesce.merged_rounds"),
        obs::MetricsRegistry::Global().GetCounter("coalesce.dedup_tds"),
        obs::MetricsRegistry::Global().GetCounter("coalesce.overflow_splits"),
        obs::MetricsRegistry::Global().GetGauge("coalesce.linger_ns"),
        obs::MetricsRegistry::Global().GetGauge("coalesce.factor_x1000"),
    };
    return m;
  }
};

struct RoundBusOptions {
  /// Fixed linger window (ns) used until — and instead of, when
  /// `adaptive_linger` is off — a fitted latency arrives. 0 = flush the
  /// moment a waiter can collect, i.e. pure passthrough for a lone caller.
  uint64_t linger_ns = 0;
  /// Derive the window from SetFittedLatency (the executor pushes the
  /// calibrator's fitted round-trip latency down after every query).
  bool adaptive_linger = true;
  /// Window = linger_frac × fitted L, so lingering costs a small, bounded
  /// fraction of the latency it amortises.
  double linger_frac = 0.125;
  /// Below this fitted L the transport is loopback-grade and the window
  /// snaps to zero: a lone query's latency must not pay for coalescing it
  /// cannot benefit from. The calibrator's fit is the TOTAL per-round time
  /// — transport plus the backend's per-batch compute, which alone reaches
  /// ~100 µs for a full scan round on a slow core — so the floor sits well
  /// above that; an entry worth amortising (FPGA/LAN round trips) fits
  /// hundreds of microseconds.
  uint64_t linger_floor_latency_ns = 200'000;
  uint64_t max_linger_ns = 2'000'000;
  /// Conservative wire budget per merged entry, kept under net's
  /// kMaxFramePayload (64 MiB); a merged batch estimated past it is split
  /// into multiple entries (coalesce.overflow_splits).
  size_t max_entry_bytes = 48u << 20;
};

/// The round bus (DESIGN.md §15): a per-oracle submission queue that merges
/// concurrently in-flight probe rounds from *different* selections into one
/// backend entry — one wire frame, one trusted-machine entry — within a
/// linger window derived from the fitted round-trip latency.
///
/// Protocol: Submit enqueues a round and returns a ticket; Await blocks on
/// it. The first awaiting thread that finds no collection in progress
/// elects itself collector, lingers with the lock released, then takes the
/// whole queue as one batch, *releases the collector role before flushing*
/// — so the next window opens while this entry is still on the wire,
/// preserving the transport's pipelining — and scatter-gathers the bits
/// back to every waiting round. Value-equal trapdoors referenced by
/// different selections are sent once per entry (cross-request dedup).
///
/// Counting: the bus enters the backend exclusively through the uncounted
/// ServeEval* surface. All logical accounting stays with the caller's
/// QpfOracle wrappers (CoalescedEdbms below), so per-selection stats are
/// identical to an uncoalesced run while tm.round_trips / net frames show
/// the physical collapse.
///
/// Lifetime contract: the trapdoors referenced by submitted requests must
/// outlive Await of the owning ticket (callers either park in Await or own
/// the trapdoor across it; both hold throughout the codebase).
class RoundBus {
 public:
  explicit RoundBus(edbms::QpfOracle* inner, RoundBusOptions opts = {});

  RoundBus(const RoundBus&) = delete;
  RoundBus& operator=(const RoundBus&) = delete;

  /// Enqueues one logical round; returns 0 for an empty span. A nonzero
  /// `key` becomes the round's ticket (caller-chosen, e.g. the oracle's
  /// ProbeTicket, avoiding a ticket-translation map); it must be unique
  /// among outstanding rounds and below 2^62 — internally allocated tickets
  /// live above that line.
  uint64_t Submit(std::span<const edbms::ProbeRequest> reqs,
                  uint64_t key = 0);

  /// Blocks until ticket `t`'s round has travelled; bit i of the result is
  /// Θ(*reqs[i].td, reqs[i].tid) of the submitted span. Each ticket must be
  /// awaited exactly once.
  BitVector Await(uint64_t t);

  /// Submit + Await in one call, for the synchronous Eval* paths. When the
  /// linger window is zero and nothing is queued or collecting, this skips
  /// the ticket/scatter machinery entirely — there is nothing to merge with
  /// and no window to hold for, so a lone loopback caller pays one mutex
  /// acquisition over the uncoalesced path.
  BitVector Exchange(std::span<const edbms::ProbeRequest> reqs);

  /// Fast-path gate for the single-trapdoor Eval/EvalBatch forwards: when
  /// the window is zero, nothing is queued or collecting, and the round fits
  /// the entry budget, claims the round as one backend entry — all bus
  /// accounting applied — and returns true; the caller then serves it on the
  /// inner oracle's scalar/batch surface, skipping ProbeRequest
  /// materialisation and the per-probe bit-vector the EvalMany path builds.
  /// The decline path is one relaxed atomic load when a window is open.
  bool TryDirect(const edbms::Trapdoor& td, size_t n);

  /// Push-down of the calibrator's fitted round-trip latency; recomputes
  /// the linger window per RoundBusOptions.
  void SetFittedLatency(uint64_t rt_latency_ns);

  uint64_t linger_ns() const {
    return linger_ns_.load(std::memory_order_relaxed);
  }
  /// EWMA logical-rounds-per-entry; 1.0 until the first flush.
  double factor() const;

  struct Stats {
    uint64_t rounds = 0;
    uint64_t requests = 0;
    uint64_t entries = 0;
    uint64_t merged_rounds = 0;
    uint64_t dedup_tds = 0;
    uint64_t overflow_splits = 0;
    uint64_t linger_ns = 0;
    double factor = 1.0;
  };
  Stats stats() const;

 private:
  struct Sub {
    enum State : uint8_t { kQueued, kFlushing, kDone };
    std::vector<edbms::ProbeRequest> reqs;
    BitVector bits;
    State state = kQueued;
  };

  /// Collector role: linger (lock released), take the queue, flush it as
  /// one-or-more backend entries, wake the owners. `lk` holds mu_ on entry
  /// and exit.
  void CollectAndFlush(std::unique_lock<std::mutex>& lk);

  /// Merges `batch` into chunked ServeEvalMany entries with trapdoor dedup
  /// and scatters the bits back into each Sub. Runs without mu_ held.
  /// Returns the number of backend entries shipped.
  size_t FlushBatch(const std::vector<std::shared_ptr<Sub>>& batch);

  edbms::QpfOracle* inner_;
  const RoundBusOptions opts_;
  std::atomic<uint64_t> linger_ns_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  /// Internal tickets start above the caller-key range (see Submit).
  uint64_t next_ticket_ = uint64_t{1} << 62;
  bool collecting_ = false;
  std::vector<std::shared_ptr<Sub>> queue_;
  std::unordered_map<uint64_t, std::shared_ptr<Sub>> subs_;
  /// EWMA of batch-rounds / entries per flush; guarded by mu_.
  double factor_ewma_ = 1.0;
  uint64_t flushes_ = 0;
  Stats totals_;
};

/// Drop-in Edbms whose Θ surface rides a RoundBus: DO-side calls and table
/// geometry forward to the wrapped instance (a local CipherbaseEdbms /
/// SdbEdbms, or a RemoteEdbms — giving socketless benches and the real wire
/// the same merge point), while every Eval/EvalBatch/EvalMany and every
/// SubmitMany ticket the probe scheduler ships merges with concurrent
/// selections' rounds before entering the backend.
class CoalescedEdbms : public edbms::Edbms {
 public:
  explicit CoalescedEdbms(edbms::Edbms* inner, RoundBusOptions opts = {})
      : inner_(inner), bus_(inner, opts) {}

  // --- DO-side client API: pure forwards -----------------------------------
  edbms::TupleId Insert(const std::vector<edbms::Value>& row) override {
    return inner_->Insert(row);
  }
  void Delete(edbms::TupleId tid) override { inner_->Delete(tid); }
  edbms::Trapdoor MakeComparison(edbms::AttrId attr, edbms::CompareOp op,
                                 edbms::Value c) override {
    return inner_->MakeComparison(attr, op, c);
  }
  edbms::Trapdoor MakeBetween(edbms::AttrId attr, edbms::Value lo,
                              edbms::Value hi) override {
    return inner_->MakeBetween(attr, lo, hi);
  }

  // --- SP-side geometry: pure forwards -------------------------------------
  size_t num_attrs() const override { return inner_->num_attrs(); }
  size_t num_rows() const override { return inner_->num_rows(); }
  bool IsLive(edbms::TupleId tid) const override {
    return inner_->IsLive(tid);
  }
  size_t StoredBytes() const override { return inner_->StoredBytes(); }
  Status Health() const override { return inner_->Health(); }

  // --- Transport feedback ---------------------------------------------------
  double CoalescingFactor() const override { return bus_.factor(); }
  void CalibrateTransport(uint64_t rt_latency_ns) override {
    bus_.SetFittedLatency(rt_latency_ns);
  }

  RoundBus& bus() { return bus_; }
  const RoundBus& bus() const { return bus_; }
  edbms::Edbms* inner() { return inner_; }

 private:
  bool DoEval(const edbms::Trapdoor& td, edbms::TupleId tid) override {
    if (bus_.TryDirect(td, 1)) return inner_->ServeEval(td, tid);
    const edbms::ProbeRequest one{&td, tid};
    const BitVector bits = bus_.Exchange({&one, 1});
    return bits.size() == 1 && bits.Get(0);
  }
  BitVector DoEvalBatch(const edbms::Trapdoor& td,
                        std::span<const edbms::TupleId> tids) override {
    if (tids.empty()) return BitVector();
    if (bus_.TryDirect(td, tids.size())) {
      return inner_->ServeEvalBatch(td, tids);
    }
    std::vector<edbms::ProbeRequest> reqs;
    reqs.reserve(tids.size());
    for (const edbms::TupleId tid : tids) reqs.push_back({&td, tid});
    return bus_.Exchange(reqs);
  }
  BitVector DoEvalMany(std::span<const edbms::ProbeRequest> reqs) override {
    return bus_.Exchange(reqs);
  }
  // The split-phase ticket surface needs no override: the base default
  // evaluates through this DoEvalMany — i.e. through the bus — at Ship time
  // and stashes the bits for Await. A shipping thread blocks in Exchange
  // exactly as it would have blocked in Collect (rounds ship and collect
  // back-to-back), and concurrent selections still merge inside the bus.

  edbms::Edbms* inner_;
  RoundBus bus_;
};

}  // namespace prkb::net

#endif  // PRKB_NET_COALESCE_H_
