#include "net/coalesce.h"

#include <algorithm>
#include <chrono>
#include <unordered_set>
#include <utility>

namespace prkb::net {
namespace {

/// Conservative wire-size estimates for chunking a merged entry under
/// RoundBusOptions.max_entry_bytes. Deliberately above the exact
/// EncodeEvalManyReq encoding (varints + u32 tid per item; varint header +
/// blob per trapdoor) so an estimated-fitting chunk always fits the frame.
constexpr size_t kChunkFixedBytes = 64;
constexpr size_t kItemBytes = 16;

size_t TdBytes(const edbms::Trapdoor& td) { return 48 + td.blob.size(); }

bool SameTrapdoor(const edbms::Trapdoor& a, const edbms::Trapdoor& b) {
  return a.uid == b.uid && a.attr == b.attr && a.kind == b.kind &&
         a.blob == b.blob;
}

/// Upper bound on one round's wire size, cheap enough to gate the fast
/// paths on: runs of the same trapdoor pointer (the shape of every scan
/// round) charge the trapdoor once, so the common case is a pointer compare
/// per request with a single dereference. Non-adjacent repeats re-charge —
/// still an over-estimate, never an under-estimate.
size_t EstimateBytes(std::span<const edbms::ProbeRequest> reqs) {
  size_t bytes = kChunkFixedBytes + reqs.size() * kItemBytes;
  const edbms::Trapdoor* last = nullptr;
  for (const edbms::ProbeRequest& req : reqs) {
    if (req.td != last) {
      bytes += TdBytes(*req.td);
      last = req.td;
    }
  }
  return bytes;
}

}  // namespace

RoundBus::RoundBus(edbms::QpfOracle* inner, RoundBusOptions opts)
    : inner_(inner), opts_(opts), linger_ns_(opts.linger_ns) {
  CoalesceMetrics::Get().linger_ns->Set(static_cast<int64_t>(opts.linger_ns));
}

uint64_t RoundBus::Submit(std::span<const edbms::ProbeRequest> reqs,
                          uint64_t key) {
  if (reqs.empty()) return 0;
  const CoalesceMetrics& m = CoalesceMetrics::Get();
  m.rounds->Add(1);
  m.requests->Add(reqs.size());
  std::unique_lock<std::mutex> lk(mu_);
  const uint64_t t = key != 0 ? key : next_ticket_++;
  totals_.rounds += 1;
  totals_.requests += reqs.size();
  if (linger_ns_.load(std::memory_order_relaxed) == 0 && queue_.empty() &&
      !collecting_ && EstimateBytes(reqs) <= opts_.max_entry_bytes) {
    // Lone round, no window to hold for: evaluate inline (lock released) and
    // stash the bits for Await, skipping the queue/collector machinery and
    // the request copy. The span's backing stays valid for the duration of
    // this call, so no copy is needed.
    auto sub = std::make_shared<Sub>();
    sub->state = Sub::kFlushing;
    subs_.emplace(t, sub);
    totals_.entries += 1;
    factor_ewma_ = flushes_ == 0 ? 1.0 : 0.75 * factor_ewma_ + 0.25;
    ++flushes_;
    lk.unlock();
    BitVector bits = inner_->ServeEvalMany(reqs);
    lk.lock();
    sub->bits = std::move(bits);
    sub->state = Sub::kDone;
    lk.unlock();
    cv_.notify_all();  // an Await may already be parked on this ticket
    m.entries->Add(1);
    return t;
  }
  auto sub = std::make_shared<Sub>();
  sub->reqs.assign(reqs.begin(), reqs.end());
  subs_.emplace(t, sub);
  queue_.push_back(std::move(sub));
  return t;
}

BitVector RoundBus::Exchange(std::span<const edbms::ProbeRequest> reqs) {
  if (reqs.empty()) return BitVector();
  {
    std::unique_lock<std::mutex> lk(mu_);
    if (linger_ns_.load(std::memory_order_relaxed) == 0 && queue_.empty() &&
        !collecting_ && EstimateBytes(reqs) <= opts_.max_entry_bytes) {
      totals_.rounds += 1;
      totals_.requests += reqs.size();
      totals_.entries += 1;
      factor_ewma_ = flushes_ == 0 ? 1.0 : 0.75 * factor_ewma_ + 0.25;
      ++flushes_;
      lk.unlock();
      // The factor gauge is refreshed on merged flushes and stats() reads;
      // skipping it here keeps the passthrough to counter bumps only.
      const CoalesceMetrics& m = CoalesceMetrics::Get();
      m.rounds->Add(1);
      m.requests->Add(reqs.size());
      m.entries->Add(1);
      return inner_->ServeEvalMany(reqs);
    }
  }
  return Await(Submit(reqs));
}

bool RoundBus::TryDirect(const edbms::Trapdoor& td, size_t n) {
  if (n == 0) return false;
  // Lock-free decline while a window is open: with a nonzero linger every
  // round must go through the queue so it can merge.
  if (linger_ns_.load(std::memory_order_relaxed) != 0) return false;
  const size_t bytes = kChunkFixedBytes + n * kItemBytes + TdBytes(td);
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (linger_ns_.load(std::memory_order_relaxed) != 0 || !queue_.empty() ||
        collecting_ || bytes > opts_.max_entry_bytes) {
      return false;
    }
    totals_.rounds += 1;
    totals_.requests += n;
    totals_.entries += 1;
    factor_ewma_ = flushes_ == 0 ? 1.0 : 0.75 * factor_ewma_ + 0.25;
    ++flushes_;
  }
  const CoalesceMetrics& m = CoalesceMetrics::Get();
  m.rounds->Add(1);
  m.requests->Add(n);
  m.entries->Add(1);
  return true;
}

BitVector RoundBus::Await(uint64_t t) {
  if (t == 0) return BitVector();
  std::unique_lock<std::mutex> lk(mu_);
  const auto it = subs_.find(t);
  if (it == subs_.end()) return BitVector();  // unknown/double-awaited ticket
  std::shared_ptr<Sub> sub = std::move(it->second);
  subs_.erase(it);
  while (sub->state != Sub::kDone) {
    if (!collecting_ && sub->state == Sub::kQueued) {
      // No collection in progress and our round is still queued: elect
      // ourselves collector. This flushes at least our own round.
      CollectAndFlush(lk);
    } else {
      cv_.wait(lk, [&] {
        return sub->state == Sub::kDone ||
               (!collecting_ && sub->state == Sub::kQueued);
      });
    }
  }
  return std::move(sub->bits);
}

void RoundBus::CollectAndFlush(std::unique_lock<std::mutex>& lk) {
  collecting_ = true;
  const uint64_t linger = linger_ns_.load(std::memory_order_relaxed);
  if (linger > 0) {
    // Linger with the lock released so concurrent selections can queue
    // their rounds into this entry. A spurious wakeup only shortens the
    // window; correctness never depends on the full linger elapsing.
    cv_.wait_for(lk, std::chrono::nanoseconds(linger));
  }
  std::vector<std::shared_ptr<Sub>> batch = std::move(queue_);
  queue_.clear();
  for (const auto& s : batch) s->state = Sub::kFlushing;
  // Hand the collector role to the next waiter *before* the (possibly slow)
  // backend entry: successive entries overlap on the wire exactly like the
  // pipelined client's correlation-id multiplexing.
  collecting_ = false;
  cv_.notify_all();
  lk.unlock();
  const size_t entries = FlushBatch(batch);
  lk.lock();
  for (const auto& s : batch) s->state = Sub::kDone;
  if (entries > 0) {
    const double sample =
        static_cast<double>(batch.size()) / static_cast<double>(entries);
    factor_ewma_ =
        flushes_ == 0 ? sample : 0.75 * factor_ewma_ + 0.25 * sample;
    ++flushes_;
    CoalesceMetrics::Get().factor_x1000->Set(
        static_cast<int64_t>(factor_ewma_ * 1000.0));
  }
  cv_.notify_all();
}

size_t RoundBus::FlushBatch(const std::vector<std::shared_ptr<Sub>>& batch) {
  if (batch.empty()) return 0;
  if (batch.size() == 1 &&
      EstimateBytes(batch[0]->reqs) <= opts_.max_entry_bytes) {
    // One in-budget round in the window: ship it verbatim — it is exactly
    // the entry the uncoalesced transport would send (intra-round dedup
    // happens at encode time), so the cross-request dedup/scatter machinery
    // below would only add latency.
    Sub& sub = *batch[0];
    sub.bits = inner_->ServeEvalMany(sub.reqs);
    CoalesceMetrics::Get().entries->Add(1);
    const std::lock_guard<std::mutex> lock(mu_);
    totals_.entries += 1;
    return 1;
  }

  // Merge every queued round into chunks under the wire budget, sending
  // each distinct predicate once per chunk however many selections carry
  // it. Dedup is by trapdoor *value* (uid + full compare): different
  // selections hold different Trapdoor copies of the same issued predicate,
  // which pointer identity — the intra-round key EncodeEvalManyReq uses —
  // cannot see.
  struct Chunk {
    std::vector<edbms::ProbeRequest> reqs;
    std::unordered_map<uint64_t, const edbms::Trapdoor*> canon;
    std::unordered_set<const edbms::Trapdoor*> raw;
    size_t bytes = kChunkFixedBytes;
  };
  std::vector<Chunk> chunks(1);
  struct Slot {
    uint32_t chunk;
    uint32_t index;
  };
  std::vector<std::vector<Slot>> slots(batch.size());

  const CoalesceMetrics& m = CoalesceMetrics::Get();
  uint64_t dedup = 0;
  uint64_t splits = 0;
  for (size_t si = 0; si < batch.size(); ++si) {
    slots[si].reserve(batch[si]->reqs.size());
    for (const edbms::ProbeRequest& req : batch[si]->reqs) {
      Chunk* c = &chunks.back();
      const edbms::Trapdoor* canonical = nullptr;
      const auto hit = c->canon.find(req.td->uid);
      if (hit != c->canon.end() && SameTrapdoor(*hit->second, *req.td)) {
        canonical = hit->second;
      }
      size_t add = kItemBytes + (canonical == nullptr ? TdBytes(*req.td) : 0);
      if (c->bytes + add > opts_.max_entry_bytes && !c->reqs.empty()) {
        chunks.emplace_back();
        c = &chunks.back();
        canonical = nullptr;
        add = kItemBytes + TdBytes(*req.td);
        ++splits;
      }
      if (canonical == nullptr) {
        c->canon.try_emplace(req.td->uid, req.td);
        canonical = req.td;
      } else if (canonical != req.td && !c->raw.contains(req.td)) {
        ++dedup;  // a distinct pointer collapsed onto the canonical copy
      }
      c->raw.insert(req.td);
      c->reqs.push_back(edbms::ProbeRequest{canonical, req.tid});
      c->bytes += add;
      slots[si].push_back(
          Slot{static_cast<uint32_t>(chunks.size() - 1),
               static_cast<uint32_t>(c->reqs.size() - 1)});
    }
  }

  std::vector<BitVector> bits(chunks.size());
  for (size_t i = 0; i < chunks.size(); ++i) {
    bits[i] = inner_->ServeEvalMany(chunks[i].reqs);
  }

  for (size_t si = 0; si < batch.size(); ++si) {
    Sub& sub = *batch[si];
    sub.bits = BitVector(sub.reqs.size());
    for (size_t j = 0; j < slots[si].size(); ++j) {
      const Slot& s = slots[si][j];
      if (s.index < bits[s.chunk].size()) {
        sub.bits.Assign(j, bits[s.chunk].Get(s.index));
      }
    }
  }

  m.entries->Add(chunks.size());
  if (batch.size() >= 2) m.merged_rounds->Add(batch.size());
  if (dedup > 0) m.dedup_tds->Add(dedup);
  if (splits > 0) m.overflow_splits->Add(splits);
  {
    // totals_ is guarded by mu_, which FlushBatch runs outside of; take it
    // briefly just for the stats roll-up.
    const std::lock_guard<std::mutex> lock(mu_);
    totals_.entries += chunks.size();
    if (batch.size() >= 2) totals_.merged_rounds += batch.size();
    totals_.dedup_tds += dedup;
    totals_.overflow_splits += splits;
  }
  return chunks.size();
}

void RoundBus::SetFittedLatency(uint64_t rt_latency_ns) {
  if (!opts_.adaptive_linger) return;
  uint64_t linger = 0;
  if (rt_latency_ns >= opts_.linger_floor_latency_ns) {
    linger = std::min<uint64_t>(
        static_cast<uint64_t>(static_cast<double>(rt_latency_ns) *
                              opts_.linger_frac),
        opts_.max_linger_ns);
  }
  linger_ns_.store(linger, std::memory_order_relaxed);
  CoalesceMetrics::Get().linger_ns->Set(static_cast<int64_t>(linger));
}

double RoundBus::factor() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return flushes_ == 0 ? 1.0 : std::max(1.0, factor_ewma_);
}

RoundBus::Stats RoundBus::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  Stats out = totals_;
  out.linger_ns = linger_ns_.load(std::memory_order_relaxed);
  out.factor = flushes_ == 0 ? 1.0 : std::max(1.0, factor_ewma_);
  return out;
}

}  // namespace prkb::net
