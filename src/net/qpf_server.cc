#include "net/qpf_server.h"

#include <utility>

#include "obs/metrics.h"

namespace prkb::net {

QpfServer::QpfServer(edbms::QpfOracle* oracle, QpfServerOptions opts)
    : oracle_(oracle), opts_(opts) {
  if (opts_.workers < 1) opts_.workers = 1;
  if (opts_.max_queue < opts_.workers) opts_.max_queue = opts_.workers;
}

QpfServer::~QpfServer() { Stop(); }

Status QpfServer::ServeTcp(uint16_t port) {
  auto listener = Listener::ListenTcp(port);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(listener).value();
  Start();
  return Status::Ok();
}

Status QpfServer::ServeUnix(const std::string& path) {
  auto listener = Listener::ListenUnix(path);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(listener).value();
  Start();
  return Status::Ok();
}

void QpfServer::Start() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stopping_ = false;
    started_ = true;
  }
  for (size_t i = 0; i < opts_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  acceptor_ = std::thread([this] { AcceptLoop(); });
}

void QpfServer::Stop() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
    stopping_ = true;
  }
  listener_.Close();
  {
    // Severing the sockets wakes every reader blocked in Recv.
    const std::lock_guard<std::mutex> lock(mu_);
    for (auto& conn : conns_) conn->ch.Shutdown();
  }
  work_cv_.notify_all();
  space_cv_.notify_all();
  if (acceptor_.joinable()) acceptor_.join();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  std::vector<std::unique_ptr<Conn>> conns;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    conns.swap(conns_);
  }
  for (auto& conn : conns) {
    if (conn->reader.joinable()) conn->reader.join();
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    queue_.clear();
    started_ = false;
  }
}

void QpfServer::AcceptLoop() {
  while (true) {
    auto ch = listener_.Accept();
    if (!ch.ok()) return;  // listener closed: shutting down
    const std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    conns_.push_back(std::make_unique<Conn>());
    Conn* conn = conns_.back().get();
    conn->ch = std::move(ch).value();
    conn->reader = std::thread([this, conn] { ReaderLoop(conn); });
  }
}

void QpfServer::ReaderLoop(Conn* conn) {
  while (true) {
    Frame frame;
    const Status s = conn->ch.Recv(&frame);
    if (!s.ok()) {
      // EOF / shutdown ends the connection; a malformed header additionally
      // severs it (framing is lost — nothing after a bad header can be
      // trusted). Either way: clean exit, no crash.
      if (s.code() == Status::Code::kCorruption) {
        const Frame err{MsgType::kErrorResp, 0, EncodeErrorResp(s)};
        (void)conn->ch.Send(err);
        conn->ch.Shutdown();
      }
      return;
    }
    std::unique_lock<std::mutex> lock(mu_);
    space_cv_.wait(lock, [this] {
      return stopping_ || queue_.size() < opts_.max_queue;
    });
    if (stopping_) return;
    queue_.push_back(Work{conn, std::move(frame)});
    lock.unlock();
    work_cv_.notify_one();
  }
}

void QpfServer::WorkerLoop() {
  while (true) {
    Work work;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;
      work = std::move(queue_.front());
      queue_.pop_front();
    }
    space_cv_.notify_one();
    Handle(work.conn, std::move(work.frame));
  }
}

void QpfServer::Handle(Conn* conn, Frame&& req) {
  frames_served_.fetch_add(1, std::memory_order_relaxed);
  switch (req.type) {
    case MsgType::kEvalReq: {
      edbms::Trapdoor td;
      edbms::TupleId tid = 0;
      const Status s = DecodeEvalReq(req.payload, &td, &tid);
      if (!s.ok()) {
        Reply(conn, req.corr, MsgType::kErrorResp, EncodeErrorResp(s));
        return;
      }
      BitVector bit(1);
      bit.Assign(0, oracle_->ServeEval(td, tid));
      Reply(conn, req.corr, MsgType::kResultResp, EncodeResultResp(bit));
      return;
    }
    case MsgType::kEvalBatchReq: {
      edbms::Trapdoor td;
      std::vector<edbms::TupleId> tids;
      const Status s = DecodeEvalBatchReq(req.payload, &td, &tids);
      if (!s.ok()) {
        Reply(conn, req.corr, MsgType::kErrorResp, EncodeErrorResp(s));
        return;
      }
      const BitVector bits = oracle_->ServeEvalBatch(td, tids);
      Reply(conn, req.corr, MsgType::kResultResp, EncodeResultResp(bits));
      return;
    }
    case MsgType::kEvalManyReq: {
      ManyReq many;
      const Status s = DecodeEvalManyReq(req.payload, &many);
      if (!s.ok()) {
        Reply(conn, req.corr, MsgType::kErrorResp, EncodeErrorResp(s));
        return;
      }
      std::vector<edbms::ProbeRequest> reqs;
      reqs.reserve(many.items.size());
      for (const auto& item : many.items) {
        reqs.push_back(
            edbms::ProbeRequest{&many.tds[item.td_index], item.tid});
      }
      const BitVector bits = oracle_->ServeEvalMany(reqs);
      Reply(conn, req.corr, MsgType::kResultResp, EncodeResultResp(bits));
      return;
    }
    case MsgType::kPingReq:
      Reply(conn, req.corr, MsgType::kPongResp, {});
      return;
    case MsgType::kStatsReq: {
      // Counter snapshot of the serving process, for remote observability
      // (prkb_shell's .cache over a live connection). Touch the canonical
      // families first so qpf.*/net.* appear even before their first event.
      (void)edbms::QpfMetrics::Get();
      (void)NetMetrics::Get();
      const obs::MetricsSnapshot snap =
          obs::MetricsRegistry::Global().Snapshot();
      std::vector<StatsEntry> entries;
      entries.reserve(snap.counters.size());
      for (const auto& [name, value] : snap.counters) {
        entries.emplace_back(name, value);
      }
      Reply(conn, req.corr, MsgType::kStatsResp, EncodeStatsResp(entries));
      return;
    }
    default:
      // A response type arriving at the server is a confused client; answer
      // with an error so its completion queue can fail the correlation id.
      NetMetrics::Get().errors->Add(1);
      Reply(conn, req.corr, MsgType::kErrorResp,
            EncodeErrorResp(Status::InvalidArgument(
                "unexpected frame type at server")));
      return;
  }
}

void QpfServer::Reply(Conn* conn, uint64_t corr, MsgType type,
                      std::vector<uint8_t> payload) {
  Frame resp;
  resp.type = type;
  resp.corr = corr;
  resp.payload = std::move(payload);
  if (!conn->ch.Send(resp).ok()) {
    // Peer is gone; its reader thread will notice on the next Recv.
    NetMetrics::Get().errors->Add(1);
  }
}

}  // namespace prkb::net
