#ifndef PRKB_NET_CHANNEL_H_
#define PRKB_NET_CHANNEL_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "net/frame.h"

namespace prkb::net {

/// Blocking, full-duplex, length-prefixed frame stream over a connected
/// socket (TCP with TCP_NODELAY, or unix-domain). This is the trusted-machine
/// boundary as an actual wire: every frame that crosses it is a real kernel
/// round trip, not a SimulatedLatencyNanos spin.
///
/// Concurrency contract: Send is internally serialised (many worker threads
/// may answer on one connection; many client threads may submit on one),
/// Recv is single-consumer — exactly one reader thread per channel (the
/// server's per-connection reader, the client's completion thread).
/// Shutdown() wakes a blocked Recv with an IoError, which is how both sides
/// unblock their readers on teardown.
class Channel {
 public:
  Channel() = default;
  /// Takes ownership of a connected socket fd.
  explicit Channel(int fd) : fd_(fd) {}
  ~Channel() { CloseFd(); }

  Channel(Channel&& other) noexcept;
  Channel& operator=(Channel&& other) noexcept;
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  static Result<Channel> ConnectTcp(const std::string& host, uint16_t port);
  static Result<Channel> ConnectUnix(const std::string& path);

  bool valid() const { return fd() >= 0; }

  /// Writes one frame (header + payload) atomically with respect to other
  /// senders on this channel. Counts net.frames_sent / net.bytes_sent.
  Status Send(const Frame& frame);

  /// Blocks for the next frame. Validates the header (magic, type, payload
  /// cap) before trusting the length. Returns IoError on EOF/shutdown and
  /// Corruption on a malformed header — in both cases the channel is dead.
  Status Recv(Frame* out);

  /// Half-closes both directions, waking a blocked Recv. Idempotent; safe to
  /// call from any thread while a reader is blocked.
  void Shutdown();

 private:
  void CloseFd();
  static Status WriteAll(int fd, const uint8_t* data, size_t len);
  static Status ReadAll(int fd, uint8_t* data, size_t len);
  int fd() const { return fd_.load(std::memory_order_relaxed); }

  // Atomic because Shutdown() (teardown, any thread) races Send/Recv on the
  // reader and writer threads. The fd itself stays open until the destructor,
  // so a racing syscall sees a shut-down socket, never a stale fd number.
  std::atomic<int> fd_{-1};
  std::mutex send_mu_;
};

/// Passive socket accepting Channel connections.
class Listener {
 public:
  Listener() = default;
  ~Listener() { Close(); }
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Binds 127.0.0.1:`port`; port 0 picks an ephemeral port (see port()).
  static Result<Listener> ListenTcp(uint16_t port);
  /// Binds a unix-domain socket at `path` (unlinks a stale one first).
  static Result<Listener> ListenUnix(const std::string& path);

  uint16_t port() const { return port_; }
  bool valid() const { return fd_.load(std::memory_order_relaxed) >= 0; }

  /// Blocks for the next connection. IoError once Close() was called.
  Result<Channel> Accept();

  /// Closes the listening socket, waking a blocked Accept. Safe to call
  /// from any thread while the accept loop is blocked.
  void Close();

 private:
  // Atomic for the same reason as Channel::fd_: Close() races Accept().
  std::atomic<int> fd_{-1};
  uint16_t port_ = 0;
  std::string unix_path_;
};

}  // namespace prkb::net

#endif  // PRKB_NET_CHANNEL_H_
