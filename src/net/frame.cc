#include "net/frame.h"

#include <unordered_map>

namespace prkb::net {
namespace {

bool KnownType(uint8_t t) {
  return t >= static_cast<uint8_t>(MsgType::kEvalReq) &&
         t <= static_cast<uint8_t>(MsgType::kStatsResp);
}

}  // namespace

void EncodeFrameHeader(MsgType type, uint64_t corr, uint32_t payload_len,
                       uint8_t* out) {
  size_t p = 0;
  for (int i = 0; i < 4; ++i) {
    out[p++] = static_cast<uint8_t>(kFrameMagic >> (8 * i));
  }
  out[p++] = static_cast<uint8_t>(type);
  for (int i = 0; i < 8; ++i) out[p++] = static_cast<uint8_t>(corr >> (8 * i));
  for (int i = 0; i < 4; ++i) {
    out[p++] = static_cast<uint8_t>(payload_len >> (8 * i));
  }
}

Status DecodeFrameHeader(const uint8_t* in, MsgType* type, uint64_t* corr,
                         uint32_t* payload_len) {
  size_t p = 0;
  uint32_t magic = 0;
  for (int i = 0; i < 4; ++i) magic |= static_cast<uint32_t>(in[p++]) << (8 * i);
  if (magic != kFrameMagic) return Status::Corruption("bad frame magic");
  const uint8_t raw_type = in[p++];
  if (!KnownType(raw_type)) {
    return Status::Corruption("unknown frame type " + std::to_string(raw_type));
  }
  uint64_t c = 0;
  for (int i = 0; i < 8; ++i) c |= static_cast<uint64_t>(in[p++]) << (8 * i);
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= static_cast<uint32_t>(in[p++]) << (8 * i);
  if (len > kMaxFramePayload) {
    return Status::Corruption("frame payload length " + std::to_string(len) +
                              " exceeds cap");
  }
  *type = static_cast<MsgType>(raw_type);
  *corr = c;
  *payload_len = len;
  return Status::Ok();
}

void EncodeTrapdoor(const edbms::Trapdoor& td, Encoder* enc) {
  enc->PutU32(td.attr);
  enc->PutU8(static_cast<uint8_t>(td.kind));
  enc->PutU64(td.uid);
  enc->PutBytes(td.blob);
}

Status DecodeTrapdoor(Decoder* dec, edbms::Trapdoor* out) {
  uint8_t kind = 0;
  PRKB_RETURN_IF_ERROR(dec->GetU32(&out->attr));
  PRKB_RETURN_IF_ERROR(dec->GetU8(&kind));
  if (kind > static_cast<uint8_t>(edbms::PredicateKind::kBetween)) {
    return Status::Corruption("bad predicate kind in trapdoor");
  }
  out->kind = static_cast<edbms::PredicateKind>(kind);
  PRKB_RETURN_IF_ERROR(dec->GetU64(&out->uid));
  PRKB_RETURN_IF_ERROR(dec->GetBytes(&out->blob));
  return Status::Ok();
}

std::vector<uint8_t> EncodeEvalReq(const edbms::Trapdoor& td,
                                   edbms::TupleId tid) {
  Encoder enc;
  EncodeTrapdoor(td, &enc);
  enc.PutU32(tid);
  return enc.Release();
}

Status DecodeEvalReq(std::span<const uint8_t> payload, edbms::Trapdoor* td,
                     edbms::TupleId* tid) {
  Decoder dec(payload.data(), payload.size());
  PRKB_RETURN_IF_ERROR(DecodeTrapdoor(&dec, td));
  PRKB_RETURN_IF_ERROR(dec.GetU32(tid));
  if (!dec.Done()) return Status::Corruption("trailing bytes in EvalReq");
  return Status::Ok();
}

std::vector<uint8_t> EncodeEvalBatchReq(const edbms::Trapdoor& td,
                                        std::span<const edbms::TupleId> tids) {
  Encoder enc;
  EncodeTrapdoor(td, &enc);
  enc.PutVarint(tids.size());
  for (const edbms::TupleId tid : tids) enc.PutU32(tid);
  return enc.Release();
}

Status DecodeEvalBatchReq(std::span<const uint8_t> payload,
                          edbms::Trapdoor* td,
                          std::vector<edbms::TupleId>* tids) {
  Decoder dec(payload.data(), payload.size());
  PRKB_RETURN_IF_ERROR(DecodeTrapdoor(&dec, td));
  uint64_t n = 0;
  PRKB_RETURN_IF_ERROR(dec.GetVarint(&n));
  if (n * sizeof(edbms::TupleId) > dec.remaining()) {
    return Status::Corruption("EvalBatchReq count exceeds payload");
  }
  tids->clear();
  tids->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    edbms::TupleId tid = 0;
    PRKB_RETURN_IF_ERROR(dec.GetU32(&tid));
    tids->push_back(tid);
  }
  if (!dec.Done()) return Status::Corruption("trailing bytes in EvalBatchReq");
  return Status::Ok();
}

std::vector<uint8_t> EncodeEvalManyReq(
    std::span<const edbms::ProbeRequest> reqs) {
  // Distinct trapdoors once, then (index, tid) pairs. Probe rounds reference
  // their trapdoors by pointer, so pointer identity is the dedup key.
  Encoder enc;
  std::vector<const edbms::Trapdoor*> tds;
  std::unordered_map<const edbms::Trapdoor*, uint32_t> index_of;
  for (const auto& req : reqs) {
    if (index_of.try_emplace(req.td, static_cast<uint32_t>(tds.size())).second) {
      tds.push_back(req.td);
    }
  }
  enc.PutVarint(tds.size());
  for (const edbms::Trapdoor* td : tds) EncodeTrapdoor(*td, &enc);
  enc.PutVarint(reqs.size());
  for (const auto& req : reqs) {
    enc.PutVarint(index_of.at(req.td));
    enc.PutU32(req.tid);
  }
  return enc.Release();
}

Status DecodeEvalManyReq(std::span<const uint8_t> payload, ManyReq* out) {
  Decoder dec(payload.data(), payload.size());
  uint64_t num_tds = 0;
  PRKB_RETURN_IF_ERROR(dec.GetVarint(&num_tds));
  if (num_tds > dec.remaining()) {
    return Status::Corruption("EvalManyReq trapdoor count exceeds payload");
  }
  out->tds.clear();
  out->tds.resize(num_tds);
  for (uint64_t i = 0; i < num_tds; ++i) {
    PRKB_RETURN_IF_ERROR(DecodeTrapdoor(&dec, &out->tds[i]));
  }
  uint64_t num_items = 0;
  PRKB_RETURN_IF_ERROR(dec.GetVarint(&num_items));
  if (num_items > dec.remaining()) {
    return Status::Corruption("EvalManyReq item count exceeds payload");
  }
  out->items.clear();
  out->items.reserve(num_items);
  for (uint64_t i = 0; i < num_items; ++i) {
    uint64_t td_index = 0;
    edbms::TupleId tid = 0;
    PRKB_RETURN_IF_ERROR(dec.GetVarint(&td_index));
    PRKB_RETURN_IF_ERROR(dec.GetU32(&tid));
    if (td_index >= num_tds) {
      return Status::Corruption("EvalManyReq trapdoor index out of range");
    }
    out->items.push_back(
        ManyReq::Item{static_cast<uint32_t>(td_index), tid});
  }
  if (!dec.Done()) return Status::Corruption("trailing bytes in EvalManyReq");
  return Status::Ok();
}

std::vector<uint8_t> EncodeResultResp(const BitVector& bits) {
  Encoder enc;
  enc.PutVarint(bits.size());
  uint8_t acc = 0;
  for (size_t i = 0; i < bits.size(); ++i) {
    if (bits.Get(i)) acc |= static_cast<uint8_t>(1u << (i & 7));
    if ((i & 7) == 7) {
      enc.PutU8(acc);
      acc = 0;
    }
  }
  if (bits.size() & 7) enc.PutU8(acc);
  return enc.Release();
}

Status DecodeResultResp(std::span<const uint8_t> payload, BitVector* out) {
  Decoder dec(payload.data(), payload.size());
  uint64_t n = 0;
  PRKB_RETURN_IF_ERROR(dec.GetVarint(&n));
  const uint64_t bytes = (n + 7) / 8;
  if (bytes != dec.remaining()) {
    return Status::Corruption("ResultResp bit payload size mismatch");
  }
  out->Resize(0);
  out->Resize(n);
  for (uint64_t b = 0; b < bytes; ++b) {
    uint8_t byte = 0;
    PRKB_RETURN_IF_ERROR(dec.GetU8(&byte));
    for (int j = 0; j < 8; ++j) {
      const uint64_t i = b * 8 + static_cast<uint64_t>(j);
      if (i >= n) break;
      out->Assign(i, (byte >> j) & 1);
    }
  }
  if (!dec.Done()) return Status::Corruption("trailing bytes in ResultResp");
  return Status::Ok();
}

std::vector<uint8_t> EncodeErrorResp(const Status& status) {
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(status.code()));
  enc.PutString(status.message());
  return enc.Release();
}

Status DecodeErrorResp(std::span<const uint8_t> payload, Status* out) {
  Decoder dec(payload.data(), payload.size());
  uint8_t code = 0;
  std::string msg;
  PRKB_RETURN_IF_ERROR(dec.GetU8(&code));
  PRKB_RETURN_IF_ERROR(dec.GetString(&msg));
  if (!dec.Done()) return Status::Corruption("trailing bytes in ErrorResp");
  // Collapse unknown / OK codes to Internal: an error frame must decode to
  // an error, whatever a confused peer put in the code byte.
  switch (static_cast<Status::Code>(code)) {
    case Status::Code::kInvalidArgument:
      *out = Status::InvalidArgument(std::move(msg));
      break;
    case Status::Code::kNotFound:
      *out = Status::NotFound(std::move(msg));
      break;
    case Status::Code::kCorruption:
      *out = Status::Corruption(std::move(msg));
      break;
    case Status::Code::kNotSupported:
      *out = Status::NotSupported(std::move(msg));
      break;
    case Status::Code::kOutOfRange:
      *out = Status::OutOfRange(std::move(msg));
      break;
    case Status::Code::kIoError:
      *out = Status::IoError(std::move(msg));
      break;
    default:
      *out = Status::Internal(std::move(msg));
      break;
  }
  return Status::Ok();
}

std::vector<uint8_t> EncodeStatsResp(std::span<const StatsEntry> entries) {
  Encoder enc;
  enc.PutVarint(entries.size());
  for (const auto& [name, value] : entries) {
    enc.PutString(name);
    enc.PutU64(value);
  }
  return enc.Release();
}

Status DecodeStatsResp(std::span<const uint8_t> payload,
                       std::vector<StatsEntry>* out) {
  Decoder dec(payload.data(), payload.size());
  uint64_t n = 0;
  PRKB_RETURN_IF_ERROR(dec.GetVarint(&n));
  if (n > dec.remaining()) {
    return Status::Corruption("StatsResp entry count exceeds payload");
  }
  out->clear();
  out->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    StatsEntry entry;
    PRKB_RETURN_IF_ERROR(dec.GetString(&entry.first));
    PRKB_RETURN_IF_ERROR(dec.GetU64(&entry.second));
    out->push_back(std::move(entry));
  }
  if (!dec.Done()) return Status::Corruption("trailing bytes in StatsResp");
  return Status::Ok();
}

}  // namespace prkb::net
