#ifndef PRKB_NET_QPF_SERVER_H_
#define PRKB_NET_QPF_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "edbms/qpf.h"
#include "net/channel.h"
#include "net/frame.h"

namespace prkb::net {

struct QpfServerOptions {
  /// Request-processing threads. This is the server-side pipelining depth:
  /// up to `workers` rounds — from one connection or many — evaluate in the
  /// backend concurrently, which is what lets 8 in-flight clients overlap
  /// their trusted-machine latency instead of queueing behind one another.
  size_t workers = 8;
  /// Pending-request cap across all connections; beyond it the reader
  /// threads stall (backpressure) instead of buffering unboundedly.
  size_t max_queue = 1024;
};

/// Hosts a QpfOracle behind a socket endpoint — the paper's trusted-machine
/// boundary as an actual service (DESIGN.md §12). One accept thread, one
/// reader thread per connection, a shared worker pool evaluating rounds via
/// the oracle's *uncounted* Serve entries (the remote client's QpfOracle
/// wrappers already count each round exactly once).
///
/// Responses may be sent out of order: each carries the request's
/// correlation id, so a slow m-ary round from one selection never blocks a
/// fast repeat-predicate probe from another — the wire analogue of the
/// probe scheduler's fused rounds.
class QpfServer {
 public:
  explicit QpfServer(edbms::QpfOracle* oracle, QpfServerOptions opts = {});
  ~QpfServer();

  QpfServer(const QpfServer&) = delete;
  QpfServer& operator=(const QpfServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral, see port()) and starts serving.
  Status ServeTcp(uint16_t port = 0);
  /// Binds a unix-domain socket at `path` and starts serving.
  Status ServeUnix(const std::string& path);

  uint16_t port() const { return listener_.port(); }

  /// Stops accepting, severs every connection (in-flight requests get their
  /// reply or a dead channel), joins all threads. Idempotent.
  void Stop();

  uint64_t frames_served() const {
    return frames_served_.load(std::memory_order_relaxed);
  }

 private:
  struct Conn {
    Channel ch;
    std::thread reader;
  };
  struct Work {
    Conn* conn;
    Frame frame;
  };

  void Start();
  void AcceptLoop();
  void ReaderLoop(Conn* conn);
  void WorkerLoop();
  void Handle(Conn* conn, Frame&& req);
  void Reply(Conn* conn, uint64_t corr, MsgType type,
             std::vector<uint8_t> payload);

  edbms::QpfOracle* oracle_;
  QpfServerOptions opts_;
  Listener listener_;
  std::thread acceptor_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable space_cv_;
  std::deque<Work> queue_;
  std::vector<std::unique_ptr<Conn>> conns_;
  bool stopping_ = false;
  bool started_ = false;
  std::atomic<uint64_t> frames_served_{0};
};

}  // namespace prkb::net

#endif  // PRKB_NET_QPF_SERVER_H_
