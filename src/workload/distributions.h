#ifndef PRKB_WORKLOAD_DISTRIBUTIONS_H_
#define PRKB_WORKLOAD_DISTRIBUTIONS_H_

#include <cstdint>

#include "common/rng.h"
#include "edbms/types.h"

namespace prkb::workload {

/// Value distributions used by the paper's synthetic evaluation (Sec. 8.2.2:
/// uniform, normal, correlated and anti-correlated; results were reported for
/// uniform as the others behaved alike).
enum class Distribution {
  kUniform,
  kNormal,
  kCorrelated,
  kAntiCorrelated,
  kZipf,
  kLogNormal,
};

/// Draws one value in [lo, hi] from `dist`. For correlated/anti-correlated
/// draws, `base` is the row's shared latent value in [0, 1] (ignored
/// otherwise).
edbms::Value DrawValue(Distribution dist, edbms::Value lo, edbms::Value hi,
                       double base, Rng* rng);

/// Clamps v into [lo, hi].
edbms::Value Clamp(edbms::Value v, edbms::Value lo, edbms::Value hi);

}  // namespace prkb::workload

#endif  // PRKB_WORKLOAD_DISTRIBUTIONS_H_
