#ifndef PRKB_WORKLOAD_QUERY_GEN_H_
#define PRKB_WORKLOAD_QUERY_GEN_H_

#include <vector>

#include "common/rng.h"
#include "edbms/types.h"

namespace prkb::workload {

/// Generates the query mixes the paper's experiments use.
class QueryGen {
 public:
  QueryGen(edbms::Value domain_lo, edbms::Value domain_hi, uint64_t seed)
      : lo_(domain_lo), hi_(domain_hi), rng_(seed) {}

  /// A random single comparison predicate 'X op c' with uniform c and a
  /// uniformly chosen operator (Sec. 8.1 / 8.2.3 workloads).
  edbms::PlainPredicate RandomComparison(edbms::AttrId attr);

  /// A range 'lb < X < ub' whose width is `selectivity` of the domain,
  /// returned as the two plain comparison halves (Sec. 8.2.4: "lb and ub are
  /// two parameters generated randomly according to selectivity").
  /// plains[0] is 'X > lb', plains[1] is 'X < ub'.
  std::vector<edbms::PlainPredicate> RandomRange(edbms::AttrId attr,
                                                 double selectivity);

  /// A d-dimensional box: two comparison predicates per attribute with the
  /// given per-dimension selectivity (Sec. 8.2.5 workload).
  std::vector<edbms::PlainPredicate> RandomBox(
      const std::vector<edbms::AttrId>& attrs, double selectivity_per_dim);

  /// A box of fixed side length centred at a random point (the Sec. 8.2.6
  /// "1km x 1km" tourist query shape). Bounds per attribute are supplied.
  std::vector<edbms::PlainPredicate> RandomWindow(
      const std::vector<edbms::AttrId>& attrs,
      const std::vector<edbms::Value>& lo,
      const std::vector<edbms::Value>& hi, edbms::Value side);

  Rng* rng() { return &rng_; }

 private:
  edbms::Value lo_, hi_;
  Rng rng_;
};

}  // namespace prkb::workload

#endif  // PRKB_WORKLOAD_QUERY_GEN_H_
