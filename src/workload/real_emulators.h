#ifndef PRKB_WORKLOAD_REAL_EMULATORS_H_
#define PRKB_WORKLOAD_REAL_EMULATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "edbms/table.h"

namespace prkb::workload {

/// A generated stand-in for one of the paper's real datasets, plus the
/// metadata the experiments need.
///
/// Substitution (DESIGN.md): the paper's datasets (NY Hospital Inpatient
/// Discharges 2013, US Labor Statistics 2017, GeoNames US Buildings) are not
/// redistributable here. Each emulator reproduces the properties the
/// experiments actually exercise — cardinality, domain size, duplication
/// profile and clustering — with a documented distribution. `scale`
/// multiplies the row count (1.0 = paper scale).
struct RealDataset {
  std::string name;
  edbms::PlainTable table{1};
  std::vector<edbms::Value> domain_lo;
  std::vector<edbms::Value> domain_hi;
};

/// Hospital Charges: 2,426,516 rows, heavy-tailed dollar amounts with strong
/// duplication at common charge points.
RealDataset MakeHospitalCharges(double scale, uint64_t seed = 1);

/// Labor Salary: 6,156,470 rows, log-normal salaries rounded to $10 steps.
RealDataset MakeLaborSalary(double scale, uint64_t seed = 2);

/// US Buildings: 1,122,932 rows, 2 attributes (latitude, longitude) in
/// micro-degree fixed point, drawn from a mixture of urban clusters plus a
/// rural background. Attribute 0 = latitude, attribute 1 = longitude.
RealDataset MakeUsBuildings(double scale, uint64_t seed = 3);

/// Approximate number of micro-degree units per kilometre (used to phrase
/// the paper's "1km x 1km" tourist query, Sec. 8.2.2).
inline constexpr edbms::Value kMicroDegPerKm = 9000;

}  // namespace prkb::workload

#endif  // PRKB_WORKLOAD_REAL_EMULATORS_H_
