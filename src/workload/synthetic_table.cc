#include "workload/synthetic_table.h"

namespace prkb::workload {

edbms::PlainTable MakeSyntheticTable(const SyntheticSpec& spec) {
  edbms::PlainTable table(spec.attrs);
  Rng rng(spec.seed);
  std::vector<edbms::Value> row(spec.attrs);
  for (size_t r = 0; r < spec.rows; ++r) {
    const double base = rng.UniformDouble();  // latent for (anti)correlated
    for (size_t a = 0; a < spec.attrs; ++a) {
      row[a] = DrawValue(spec.dist, spec.domain_lo, spec.domain_hi, base,
                         &rng);
    }
    table.AddRow(row);
  }
  return table;
}

}  // namespace prkb::workload
