#include "workload/query_gen.h"

#include <cassert>

namespace prkb::workload {

using edbms::AttrId;
using edbms::CompareOp;
using edbms::PlainPredicate;
using edbms::Value;

PlainPredicate QueryGen::RandomComparison(AttrId attr) {
  static constexpr CompareOp kOps[] = {CompareOp::kLt, CompareOp::kGt,
                                       CompareOp::kLe, CompareOp::kGe};
  return PlainPredicate{.attr = attr,
                        .op = kOps[rng_.UniformInt(0, 3)],
                        .lo = rng_.UniformInt64(lo_, hi_)};
}

std::vector<PlainPredicate> QueryGen::RandomRange(AttrId attr,
                                                  double selectivity) {
  const auto width = static_cast<Value>(
      static_cast<double>(hi_ - lo_) * selectivity);
  const Value lb = rng_.UniformInt64(lo_, hi_ - width);
  const Value ub = lb + width;
  return {
      PlainPredicate{.attr = attr, .op = CompareOp::kGt, .lo = lb},
      PlainPredicate{.attr = attr, .op = CompareOp::kLt, .lo = ub},
  };
}

std::vector<PlainPredicate> QueryGen::RandomBox(
    const std::vector<AttrId>& attrs, double selectivity_per_dim) {
  std::vector<PlainPredicate> out;
  out.reserve(attrs.size() * 2);
  for (AttrId attr : attrs) {
    auto dim = RandomRange(attr, selectivity_per_dim);
    out.push_back(dim[0]);
    out.push_back(dim[1]);
  }
  return out;
}

std::vector<PlainPredicate> QueryGen::RandomWindow(
    const std::vector<AttrId>& attrs, const std::vector<Value>& lo,
    const std::vector<Value>& hi, Value side) {
  assert(attrs.size() == lo.size() && attrs.size() == hi.size());
  std::vector<PlainPredicate> out;
  out.reserve(attrs.size() * 2);
  for (size_t d = 0; d < attrs.size(); ++d) {
    const Value lb = rng_.UniformInt64(lo[d], hi[d] - side);
    out.push_back(
        PlainPredicate{.attr = attrs[d], .op = CompareOp::kGt, .lo = lb});
    out.push_back(PlainPredicate{.attr = attrs[d], .op = CompareOp::kLt,
                                 .lo = lb + side});
  }
  return out;
}

}  // namespace prkb::workload
