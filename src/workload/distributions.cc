#include "workload/distributions.h"

#include <cmath>

namespace prkb::workload {

using edbms::Value;

Value Clamp(Value v, Value lo, Value hi) {
  if (v < lo) return lo;
  if (v > hi) return hi;
  return v;
}

Value DrawValue(Distribution dist, Value lo, Value hi, double base,
                Rng* rng) {
  const double span = static_cast<double>(hi - lo);
  switch (dist) {
    case Distribution::kUniform:
      return rng->UniformInt64(lo, hi);
    case Distribution::kNormal: {
      // Centered, ~6 sigma across the domain.
      const double x = 0.5 + rng->Normal() / 6.0;
      return Clamp(lo + static_cast<Value>(x * span), lo, hi);
    }
    case Distribution::kCorrelated: {
      // Row attributes cluster around the shared latent `base`.
      const double x = base + rng->Normal() * 0.05;
      return Clamp(lo + static_cast<Value>(x * span), lo, hi);
    }
    case Distribution::kAntiCorrelated: {
      // Attributes trade off against the latent: high base -> low value.
      const double x = (1.0 - base) + rng->Normal() * 0.05;
      return Clamp(lo + static_cast<Value>(x * span), lo, hi);
    }
    case Distribution::kZipf: {
      // Inverse-CDF approximation of Zipf(s=1.1) over the domain ranks.
      const double u = rng->UniformDouble();
      const double s = 1.1;
      const double x = std::pow(1.0 - u, -1.0 / (s - 1.0)) - 1.0;
      return Clamp(lo + static_cast<Value>(x), lo, hi);
    }
    case Distribution::kLogNormal: {
      // Heavy-tailed positive values spanning roughly the whole domain.
      const double mu = std::log(span / 50.0 + 1.0);
      const double x = std::exp(mu + 1.0 * rng->Normal());
      return Clamp(lo + static_cast<Value>(x), lo, hi);
    }
  }
  return lo;
}

}  // namespace prkb::workload
