#include "workload/real_emulators.h"

#include <cmath>

#include "common/rng.h"
#include "workload/distributions.h"

namespace prkb::workload {
namespace {

using edbms::Value;

size_t ScaledRows(size_t paper_rows, double scale) {
  const double rows = static_cast<double>(paper_rows) * scale;
  return rows < 1.0 ? 1 : static_cast<size_t>(rows);
}

}  // namespace

RealDataset MakeHospitalCharges(double scale, uint64_t seed) {
  constexpr size_t kPaperRows = 2'426'516;
  constexpr Value kLo = 1;
  constexpr Value kHi = 10'000'000;  // dollars; rare seven-figure stays

  RealDataset ds;
  ds.name = "Hospital";
  ds.table = edbms::PlainTable(1);
  ds.domain_lo = {kLo};
  ds.domain_hi = {kHi};
  Rng rng(seed);
  const size_t rows = ScaledRows(kPaperRows, scale);
  for (size_t i = 0; i < rows; ++i) {
    // Log-normal charges (median ~$12k) rounded to whole dollars; rounding
    // plus the body of the distribution yields the heavy duplication real
    // billing data shows.
    const double x = std::exp(9.4 + 1.1 * rng.Normal());
    ds.table.AddRow({Clamp(static_cast<Value>(x), kLo, kHi)});
  }
  return ds;
}

RealDataset MakeLaborSalary(double scale, uint64_t seed) {
  constexpr size_t kPaperRows = 6'156'470;
  constexpr Value kLo = 1;
  constexpr Value kHi = 5'000'000;

  RealDataset ds;
  ds.name = "Labor";
  ds.table = edbms::PlainTable(1);
  ds.domain_lo = {kLo};
  ds.domain_hi = {kHi};
  Rng rng(seed);
  const size_t rows = ScaledRows(kPaperRows, scale);
  for (size_t i = 0; i < rows; ++i) {
    // Salaries cluster on round figures: log-normal, rounded to $10.
    const double x = std::exp(10.65 + 0.6 * rng.Normal());
    const Value v = (static_cast<Value>(x) / 10) * 10;
    ds.table.AddRow({Clamp(v, kLo, kHi)});
  }
  return ds;
}

RealDataset MakeUsBuildings(double scale, uint64_t seed) {
  constexpr size_t kPaperRows = 1'122'932;
  // Continental US bounding box in micro-degrees.
  constexpr Value kLatLo = 24'500'000, kLatHi = 49'400'000;
  constexpr Value kLonLo = -124'800'000, kLonHi = -66'900'000;

  RealDataset ds;
  ds.name = "USBuildings";
  ds.table = edbms::PlainTable(2);
  ds.domain_lo = {kLatLo, kLonLo};
  ds.domain_hi = {kLatHi, kLonHi};
  Rng rng(seed);

  // ~240 urban clusters with zipf-ish weights, plus a rural background.
  constexpr int kClusters = 240;
  struct Cluster {
    double lat, lon, sigma, weight;
  };
  std::vector<Cluster> clusters(kClusters);
  double total_weight = 0;
  for (int c = 0; c < kClusters; ++c) {
    clusters[c].lat = rng.UniformDouble() * (kLatHi - kLatLo) + kLatLo;
    clusters[c].lon = rng.UniformDouble() * (kLonHi - kLonLo) + kLonLo;
    // City radii from a few km (sigma ~ 3km) to metro areas (~30km).
    clusters[c].sigma = (3.0 + 27.0 * rng.UniformDouble()) * kMicroDegPerKm;
    clusters[c].weight = 1.0 / (1.0 + c);  // zipf-like city sizes
    total_weight += clusters[c].weight;
  }

  const size_t rows = ScaledRows(kPaperRows, scale);
  for (size_t i = 0; i < rows; ++i) {
    Value lat, lon;
    if (rng.Bernoulli(0.15)) {
      // Rural background.
      lat = rng.UniformInt64(kLatLo, kLatHi);
      lon = rng.UniformInt64(kLonLo, kLonHi);
    } else {
      double pick = rng.UniformDouble() * total_weight;
      int c = 0;
      while (c + 1 < kClusters && pick > clusters[c].weight) {
        pick -= clusters[c].weight;
        ++c;
      }
      lat = Clamp(static_cast<Value>(clusters[c].lat +
                                     rng.Normal() * clusters[c].sigma),
                  kLatLo, kLatHi);
      lon = Clamp(static_cast<Value>(clusters[c].lon +
                                     rng.Normal() * clusters[c].sigma),
                  kLonLo, kLonHi);
    }
    ds.table.AddRow({lat, lon});
  }
  return ds;
}

}  // namespace prkb::workload
