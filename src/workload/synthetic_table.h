#ifndef PRKB_WORKLOAD_SYNTHETIC_TABLE_H_
#define PRKB_WORKLOAD_SYNTHETIC_TABLE_H_

#include <cstdint>

#include "edbms/table.h"
#include "workload/distributions.h"

namespace prkb::workload {

/// Specification of a synthetic dataset in the paper's setup (Sec. 8.2.2):
/// integer domain [1, 30M], values drawn independently per attribute.
struct SyntheticSpec {
  size_t rows = 1000;
  size_t attrs = 1;
  edbms::Value domain_lo = 1;
  edbms::Value domain_hi = 30'000'000;
  Distribution dist = Distribution::kUniform;
  uint64_t seed = 42;
};

/// Materialises the plaintext table for `spec`.
edbms::PlainTable MakeSyntheticTable(const SyntheticSpec& spec);

}  // namespace prkb::workload

#endif  // PRKB_WORKLOAD_SYNTHETIC_TABLE_H_
