#include "ext/skyline.h"

#include <algorithm>
#include <limits>

namespace prkb::ext {
namespace {

using edbms::TupleId;
using edbms::Value;

}  // namespace

SkylineResult SkylineMinMin(const core::PrkbIndex& index,
                            edbms::CipherbaseEdbms* db, edbms::AttrId attr_x,
                            edbms::AttrId attr_y, bool x_min_at_front,
                            bool y_min_at_front) {
  SkylineResult out;
  auto& tm = db->trusted_machine();
  const uint64_t before = tm.value_decrypts();

  const core::Pop& px = index.pop(attr_x);
  const core::Pop& py = index.pop(attr_y);
  const size_t kx = px.k(), ky = py.k();
  if (kx == 0 || ky == 0) return out;

  // Normalised grid coordinates: 0 = minimal partition.
  auto xi = [&](TupleId tid) {
    const size_t pos = px.pos_of(px.partition_of(tid));
    return x_min_at_front ? pos : kx - 1 - pos;
  };
  auto yi = [&](TupleId tid) {
    const size_t pos = py.pos_of(py.partition_of(tid));
    return y_min_at_front ? pos : ky - 1 - pos;
  };

  // Mark non-empty cells.
  constexpr size_t kEmpty = std::numeric_limits<size_t>::max();
  std::vector<size_t> min_y_at_x(kx, kEmpty);  // per column, smallest y
  const size_t n = db->num_rows();
  for (TupleId tid = 0; tid < n; ++tid) {
    if (px.partition_of(tid) == core::Pop::kNoPartition) continue;
    const size_t x = xi(tid), y = yi(tid);
    min_y_at_x[x] = std::min(min_y_at_x[x], y);
  }
  // strict_min_y[x] = smallest y among non-empty cells with column < x.
  std::vector<size_t> strict_min_y(kx, kEmpty);
  size_t running = kEmpty;
  for (size_t x = 0; x < kx; ++x) {
    strict_min_y[x] = running;
    running = std::min(running, min_y_at_x[x]);
  }

  // Candidates: tuples whose cell is not strictly dominated.
  std::vector<TupleId> cand;
  for (TupleId tid = 0; tid < n; ++tid) {
    if (px.partition_of(tid) == core::Pop::kNoPartition) continue;
    const size_t x = xi(tid), y = yi(tid);
    if (strict_min_y[x] != kEmpty && strict_min_y[x] < y) continue;
    cand.push_back(tid);
  }
  out.candidates = cand.size();

  // TM-side exact skyline over the candidates.
  struct Point {
    Value x, y;
    TupleId tid;
  };
  std::vector<Point> pts;
  pts.reserve(cand.size());
  for (TupleId tid : cand) {
    pts.push_back(Point{tm.DecryptValue(db->table().at(attr_x, tid)),
                        tm.DecryptValue(db->table().at(attr_y, tid)), tid});
  }
  std::sort(pts.begin(), pts.end(), [](const Point& a, const Point& b) {
    if (a.x != b.x) return a.x < b.x;
    if (a.y != b.y) return a.y < b.y;
    return a.tid < b.tid;
  });
  // Dominance is strict in at least one coordinate, so coincident points are
  // mutually non-dominating: every copy of a skyline point is reported.
  Value best_y = std::numeric_limits<Value>::max();
  Value kept_x = 0, kept_y = 0;
  bool any = false;
  for (const Point& p : pts) {
    if (p.y < best_y || (any && p.x == kept_x && p.y == kept_y)) {
      out.skyline.push_back(p.tid);
      best_y = std::min(best_y, p.y);
      kept_x = p.x;
      kept_y = p.y;
      any = true;
    }
  }
  out.tm_decrypts = tm.value_decrypts() - before;
  return out;
}

}  // namespace prkb::ext
