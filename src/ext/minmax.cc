#include "ext/minmax.h"

#include <limits>

namespace prkb::ext {
namespace {

using edbms::TupleId;
using edbms::Value;

ExtremeResult FindExtreme(const core::PrkbIndex& index,
                          edbms::CipherbaseEdbms* db, edbms::AttrId attr,
                          bool want_min) {
  ExtremeResult out;
  auto& tm = db->trusted_machine();
  const uint64_t before = tm.value_decrypts();

  auto consider = [&](TupleId tid, Value* best_v) {
    const Value v = tm.DecryptValue(db->table().at(attr, tid));
    const bool better =
        want_min ? (v < *best_v || (v == *best_v && tid < out.tid))
                 : (v > *best_v || (v == *best_v && tid < out.tid));
    if (!out.found || better) {
      *best_v = v;
      out.tid = tid;
      out.found = true;
    }
  };

  Value best = want_min ? std::numeric_limits<Value>::max()
                        : std::numeric_limits<Value>::min();
  if (index.IsEnabled(attr) && index.pop(attr).k() > 0) {
    const core::Pop& pop = index.pop(attr);
    // The extreme lives in one of the two end partitions — the SP does not
    // know which end is which, so both are candidates.
    pop.members_at(0).ForEach([&](TupleId tid) { consider(tid, &best); });
    if (pop.k() > 1) {
      pop.members_at(pop.k() - 1).ForEach(
          [&](TupleId tid) { consider(tid, &best); });
    }
  } else {
    for (TupleId tid = 0; tid < db->num_rows(); ++tid) {
      if (db->IsLive(tid)) consider(tid, &best);
    }
  }
  out.tm_decrypts = tm.value_decrypts() - before;
  return out;
}

}  // namespace

ExtremeResult FindMin(const core::PrkbIndex& index,
                      edbms::CipherbaseEdbms* db, edbms::AttrId attr) {
  return FindExtreme(index, db, attr, /*want_min=*/true);
}

ExtremeResult FindMax(const core::PrkbIndex& index,
                      edbms::CipherbaseEdbms* db, edbms::AttrId attr) {
  return FindExtreme(index, db, attr, /*want_min=*/false);
}

}  // namespace prkb::ext
