#ifndef PRKB_EXT_MINMAX_H_
#define PRKB_EXT_MINMAX_H_

#include <cstdint>

#include "edbms/cipherbase_qpf.h"
#include "prkb/selection.h"

namespace prkb::ext {

/// Result of an extreme-value query: the winning tuple and the number of
/// trusted-machine decryptions it cost.
struct ExtremeResult {
  edbms::TupleId tid = 0;
  uint64_t tm_decrypts = 0;
  bool found = false;
};

/// MIN/MAX via PRKB (the paper's future-work direction, Sec. 9): the global
/// minimum and maximum can only live in the two END partitions of the chain
/// (the chain is value-sorted in one of two directions), so the trusted
/// machine only inspects |P₁| + |Pₖ| cells instead of all n. Ties resolve to
/// the lowest tuple id.
ExtremeResult FindMin(const core::PrkbIndex& index,
                      edbms::CipherbaseEdbms* db, edbms::AttrId attr);
ExtremeResult FindMax(const core::PrkbIndex& index,
                      edbms::CipherbaseEdbms* db, edbms::AttrId attr);

}  // namespace prkb::ext

#endif  // PRKB_EXT_MINMAX_H_
