#ifndef PRKB_EXT_SKYLINE_H_
#define PRKB_EXT_SKYLINE_H_

#include <cstdint>
#include <vector>

#include "edbms/cipherbase_qpf.h"
#include "prkb/selection.h"

namespace prkb::ext {

/// Result of a 2-D skyline query plus its TM cost and the pruning rate.
struct SkylineResult {
  std::vector<edbms::TupleId> skyline;
  uint64_t tm_decrypts = 0;
  size_t candidates = 0;  // tuples that survived grid pruning
};

/// 2-D min-min skyline via PRKB (future work, Sec. 9). The two chains
/// partition the plane into the grid of Fig. 5; a cell is pruned when some
/// non-empty cell is strictly better in both partition orders, because then
/// every tuple in it is dominated. Only surviving cells' tuples are
/// decrypted inside the TM for the exact skyline.
///
/// The SP does not know which chain end holds the small values, so the data
/// owner supplies one bit per attribute (`x_min_at_front`,
/// `y_min_at_front`): whether the chain's front partition holds the minimal
/// values. This is DO-side knowledge, consistent with the EDBMS model (the
/// DO issues queries; it learns the orientation from any answer).
SkylineResult SkylineMinMin(const core::PrkbIndex& index,
                            edbms::CipherbaseEdbms* db, edbms::AttrId attr_x,
                            edbms::AttrId attr_y, bool x_min_at_front,
                            bool y_min_at_front);

}  // namespace prkb::ext

#endif  // PRKB_EXT_SKYLINE_H_
