#ifndef PRKB_PRKB_PROBE_SCHED_H_
#define PRKB_PRKB_PROBE_SCHED_H_

#include <cstddef>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/bitvector.h"
#include "common/rng.h"
#include "edbms/qpf.h"
#include "prkb/pop.h"
#include "prkb/qfilter.h"

namespace prkb::core {

/// Knobs for the batched probe scheduler (DESIGN.md §11). The paper counts
/// QPF uses; a deployment also pays one round trip per backend entry, so the
/// scheduler trades a bounded use inflation — ≤ (m−1)/lg m× for the m-ary
/// search — for a ~lg m× cut in round trips.
struct ProbeSchedOptions {
  /// m: pivots per search round is m−1. 2 reproduces the paper's binary
  /// search probe-for-probe (the two end probes still share one round).
  size_t fanout = 8;
  /// Fuse concurrent searches (BETWEEN's two end-searches, PRKB(MD)'s
  /// per-dimension filters) into shared rounds instead of running them
  /// back-to-back.
  bool fuse = true;
  /// Once the surviving interval is ≤ 2 partitions, let the first QScan
  /// chunk of every candidate NS partition ride in the final probe round.
  bool speculative = true;
  /// Tuples prefetched per candidate partition when speculating.
  size_t spec_chunk = 1;
};

/// Speculatively prefetched Θ outcomes for the leading members of candidate
/// NS partitions, keyed by chain position at QFilter time (QScan runs before
/// any split, so positions are stable). QScan consumes matching prefixes;
/// whatever it never asks for is the speculation's waste.
struct PrepaidScan {
  struct Outcome {
    edbms::TupleId tid;
    bool output;
  };
  std::unordered_map<size_t, std::vector<Outcome>> by_pos;
  size_t total = 0;
  size_t consumed = 0;

  size_t waste() const { return total - consumed; }
};

/// Adds a finished selection's unconsumed prefetches to the
/// `probe_sched.speculative_waste` counter.
void RecordSpeculativeWaste(const PrepaidScan& prepaid);

/// One shippable probe round: heterogeneous (trapdoor, tuple) requests from
/// any number of concurrent searches, evaluated in a single
/// QpfOracle::EvalMany round trip (scalar Eval when only one lane queued).
class ProbeRound {
 public:
  explicit ProbeRound(edbms::QpfOracle* qpf) : qpf_(qpf) {}

  /// Queues Θ(td, tid); returns the lane to pass to ResultOf after Flush.
  /// `source` tags the owning search — a flushed round carrying requests
  /// from ≥ 2 sources counts as fused.
  size_t Add(const edbms::Trapdoor& td, edbms::TupleId tid, int source = 0);

  /// Ships every queued request as one split-phase SubmitMany ticket (a
  /// lone probe stays a scalar Eval). No-op when empty or already in
  /// flight. On a coalescing transport, the window between Ship and
  /// Collect is where concurrent selections' rounds merge into one
  /// backend entry.
  void Ship();

  /// Blocks for the bits of the in-flight ticket. No-op when nothing is in
  /// flight.
  void Collect();

  /// Ships every queued request in one round trip: Ship + Collect.
  void Flush() {
    Ship();
    Collect();
  }

  /// Lane outcome from the last Flush.
  bool ResultOf(size_t lane) const { return results_.Get(lane); }

  size_t pending() const {
    return (shipped_ || inflight_) ? 0 : reqs_.size();
  }
  /// Round trips this ProbeRound has shipped so far.
  uint64_t trips() const { return trips_; }

 private:
  edbms::QpfOracle* qpf_;
  std::vector<edbms::ProbeRequest> reqs_;
  std::vector<int> sources_;
  BitVector results_;
  edbms::ProbeTicket ticket_ = edbms::kEmptyProbeTicket;
  bool inflight_ = false;
  bool shipped_ = false;
  uint64_t trips_ = 0;
};

/// m-ary adjacent-flip search over chain positions: maintains an interval
/// (a, b) with label(a) != label(b) and narrows it with min(m−1, b−a−1)
/// evenly-spaced pivots per round until b − a == 1. The chain-label
/// structure (Lemma 5.1: one possibly-mixed partition, homogeneous labels on
/// either side) guarantees each probed round has exactly one flip, so any m
/// converges to the same adjacent pair the paper's binary search finds.
class FlipSearch {
 public:
  FlipSearch(size_t a, size_t b, bool label_a, size_t fanout)
      : a_(a), b_(b), label_a_(label_a), fanout_(fanout < 2 ? 2 : fanout) {}

  bool done() const { return b_ - a_ <= 1; }
  size_t a() const { return a_; }
  size_t b() const { return b_; }
  bool label_a() const { return label_a_; }

  /// Appends this round's pivot positions (ascending, interior to (a, b)).
  void Pivots(std::vector<size_t>* out) const;

  /// Consumes the labels of this round's pivots (parallel arrays, the exact
  /// output of Pivots) and narrows the interval to the flip gap.
  void Absorb(std::span<const size_t> pivots, std::span<const uint8_t> labels);

 private:
  size_t a_;
  size_t b_;
  bool label_a_;
  size_t fanout_;
};

/// Scheduler-backed QFilter: same contract and result as QFilter() — the
/// paper's Algorithm 1 semantics, byte-identical NS pair and winner group —
/// but probing in m-ary batched rounds. With `prepaid` non-null and
/// speculation enabled, the final disambiguation round also carries the
/// first QScan chunk of the candidate NS partitions.
QFilterResult ScheduledQFilter(const Pop& pop, const edbms::Trapdoor& td,
                               edbms::QpfOracle* qpf, Rng* rng,
                               const ProbeSchedOptions& opts,
                               PrepaidScan* prepaid = nullptr);

/// One dimension of a fused multi-filter request.
struct FusedFilterReq {
  const Pop* pop;
  const edbms::Trapdoor* td;
  QFilterResult* out;
};

/// Runs several QFilters over distinct chains, sharing one probe round per
/// search round when opts.fuse is set (PRKB(MD)'s per-dimension filters pay
/// max instead of sum of their round trips). Sequential per-filter rounds
/// when fusion is off. Results land in each request's `out`.
void FusedQFilters(std::span<const FusedFilterReq> reqs,
                   edbms::QpfOracle* qpf, Rng* rng,
                   const ProbeSchedOptions& opts);

}  // namespace prkb::core

#endif  // PRKB_PRKB_PROBE_SCHED_H_
