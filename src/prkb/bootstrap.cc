#include "prkb/bootstrap.h"

#include "common/rng.h"

namespace prkb::core {

BootstrapResult BootstrapPrkb(PrkbIndex* index, edbms::Edbms* db,
                              edbms::AttrId attr, edbms::Value domain_lo,
                              edbms::Value domain_hi, size_t queries,
                              uint64_t seed) {
  BootstrapResult out;
  if (!index->IsEnabled(attr) || queries == 0 || domain_hi <= domain_lo) {
    return out;
  }
  out.k_before = index->pop(attr).k();
  const uint64_t uses_before = db->uses();

  Rng rng(seed ^ 0xB007);
  const double span = static_cast<double>(domain_hi - domain_lo);
  const double step = span / static_cast<double>(queries + 1);
  for (size_t i = 1; i <= queries; ++i) {
    // Evenly spaced constant with +/- step/4 jitter.
    const double jitter = (rng.UniformDouble() - 0.5) * step / 2.0;
    const auto c = static_cast<edbms::Value>(
        static_cast<double>(domain_lo) + step * static_cast<double>(i) +
        jitter);
    index->Select(db->MakeComparison(attr, edbms::CompareOp::kLt, c));
    ++out.queries_issued;
  }
  out.qpf_uses = db->uses() - uses_before;
  out.k_after = index->pop(attr).k();
  return out;
}

}  // namespace prkb::core
