// BETWEEN-operator processing (paper Appendix A).
//
// A BETWEEN trapdoor returns 1 exactly on a contiguous band of the chain:
// the T-containing positions form one interval [ta, tb], and only its two
// end partitions can be non-homogeneous. Processing mirrors QFilter/QScan:
// probe partition samples until a positive anchor is found, binary-search
// both ends, scan (at most four) candidate end partitions, and infer the
// pure-T middle for free. Each splittable end extends the PRKB with one cut;
// when both ends split, the two cuts are linked as siblings so the trapdoor
// can steer future insertions three-ways.
//
// The appendix's exceptional case — the whole satisfied band strictly inside
// one partition, i.e. an (F, T, F) pattern — is detected and left unsplit:
// the two F groups cannot be ordered.

#include <algorithm>
#include <cassert>
#include <map>
#include <optional>
#include <span>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "prkb/selection.h"

namespace prkb::core {
namespace {

using edbms::Trapdoor;
using edbms::TupleId;

/// BETWEEN telemetry: probes are the Appendix-A anchor hunt plus the two
/// end binary searches; end-partition scans are additionally counted by the
/// shared qscan.* scan metrics (docs/OBSERVABILITY.md).
struct BetweenMetrics {
  obs::Counter* invocations;
  obs::Counter* probes;
  obs::Counter* probe_trips;
  obs::Counter* end_scans;

  static const BetweenMetrics& Get() {
    static const BetweenMetrics m = {
        obs::MetricsRegistry::Global().GetCounter("between.invocations"),
        obs::MetricsRegistry::Global().GetCounter("between.probes"),
        obs::MetricsRegistry::Global().GetCounter("between.probe_trips"),
        obs::MetricsRegistry::Global().GetCounter("between.end_scans"),
    };
    return m;
  }
};

struct ScannedPartition {
  std::vector<TupleId> t_members;
  std::vector<TupleId> f_members;
  bool mixed() const { return !t_members.empty() && !f_members.empty(); }
  bool has_t() const { return !t_members.empty(); }
};

}  // namespace

std::vector<TupleId> PrkbIndex::SelectBetween(const Trapdoor& td,
                                              const TrapdoorFp* fp,
                                              const ProbeSchedOptions& sched) {
  Pop& pop = pops_.at(td.attr);
  const size_t k = pop.k();
  if (k == 0) return {};
  const obs::ObsTracer::Span span("between.select");
  const BetweenMetrics& metrics = BetweenMetrics::Get();
  metrics.invocations->Add(1);
  Rng rng = OpRng();
  const bool sequential = options_.sequential_probes;
  const uint64_t trips_before = db_->round_trips();

  // Cached sample labels per chain position (-1 unknown). A position probed
  // once never pays again — batched pivots whose label is already cached are
  // absorbed for free.
  std::vector<int8_t> sample(k, -1);
  ProbeRound probe_round(db_);
  auto probe = [&](size_t pos) -> bool {
    if (sample[pos] < 0) {
      metrics.probes->Add(1);
      sample[pos] =
          db_->Eval(td, SamplePartition(pop, pos, &rng)) ? 1 : 0;
    }
    return sample[pos] == 1;
  };
  // Batched counterpart: resolves every unknown position of `want` in one
  // round trip. Samples are drawn at enqueue time in `want` order.
  auto ensure = [&](std::span<const size_t> want) {
    std::vector<std::pair<size_t, size_t>> lanes;  // (pos, lane)
    for (size_t pos : want) {
      if (sample[pos] >= 0) continue;
      bool queued = false;
      for (const auto& l : lanes) queued = queued || l.first == pos;
      if (queued) continue;
      metrics.probes->Add(1);
      lanes.emplace_back(pos,
                         probe_round.Add(td, SamplePartition(pop, pos, &rng),
                                         static_cast<int>(pos)));
    }
    if (lanes.empty()) return;
    probe_round.Flush();
    for (const auto& [pos, lane] : lanes) {
      sample[pos] = probe_round.ResultOf(lane) ? 1 : 0;
    }
  };

  // ---- Phase 1: hunt for a positive anchor among partition samples. ----
  // The batched hunt probes m−1 positions per round; the anchor is still the
  // first positive in shuffle order, the overshoot stays cached.
  std::vector<size_t> order(k);
  for (size_t i = 0; i < k; ++i) order[i] = i;
  rng.Shuffle(&order);
  size_t anchor = k;  // k = not found
  if (sequential) {
    for (size_t pos : order) {
      if (probe(pos)) {
        anchor = pos;
        break;
      }
    }
  } else {
    const size_t chunk = sched.fanout < 2 ? 1 : sched.fanout - 1;
    for (size_t i = 0; i < k && anchor == k; i += chunk) {
      const size_t end = std::min(k, i + chunk);
      ensure(std::span<const size_t>(order).subspan(i, end - i));
      for (size_t j = i; j < end && anchor == k; ++j) {
        if (sample[order[j]] == 1) anchor = order[j];
      }
    }
  }

  // Chain positions that must be scanned exhaustively.
  std::vector<size_t> scan_positions;
  size_t middle_begin = 1, middle_end = 0;  // inferred pure-T range (empty)

  if (anchor == k) {
    // Exceptional fallback: no positive sample anywhere. The band may still
    // hide inside partitions whose sample came back 0 — scan everything.
    for (size_t p = 0; p < k; ++p) scan_positions.push_back(p);
  } else if (sequential) {
    // ---- Phase 2 (paper-literal): binary search both ends of the T band,
    // one blocking probe at a time. Low end: smallest position whose
    // partition contains a T is in {a, a+1} where label(a)=F, label(a+1)=T
    // (or {0} if position 0 is T).
    size_t low_hi;  // positive side of the low search
    if (probe(0)) {
      scan_positions.push_back(0);
      low_hi = 0;
    } else {
      size_t lo = 0, hi = anchor;  // label(lo)=F, label(hi)=T
      while (hi - lo > 1) {
        const size_t m = (lo + hi) / 2;
        if (probe(m)) {
          hi = m;
        } else {
          lo = m;
        }
      }
      scan_positions.push_back(lo);
      scan_positions.push_back(hi);
      low_hi = hi;
    }

    size_t high_lo;  // positive side of the high search
    if (probe(k - 1)) {
      scan_positions.push_back(k - 1);
      high_lo = k - 1;
    } else {
      size_t lo = anchor, hi = k - 1;  // label(lo)=T, label(hi)=F
      while (hi - lo > 1) {
        const size_t m = (lo + hi) / 2;
        if (probe(m)) {
          lo = m;
        } else {
          hi = m;
        }
      }
      scan_positions.push_back(lo);
      scan_positions.push_back(hi);
      high_lo = lo;
    }

    // Positions strictly between the scanned ends are pure T (they are
    // strictly inside [ta, tb]).
    middle_begin = low_hi + 1;
    middle_end = high_lo;  // exclusive
  } else {
    // ---- Phase 2 (scheduled): both chain ends share one round, then the
    // two end FlipSearches run m-ary — fused into common rounds when
    // sched.fuse is set, back-to-back otherwise. Same band, same scan set.
    {
      const size_t ends[2] = {0, k - 1};
      ensure(std::span<const size_t>(ends, k > 1 ? 2 : 1));
    }
    std::optional<FlipSearch> low, high;
    size_t low_hi = 0, high_lo = 0;
    if (sample[0] == 1) {
      scan_positions.push_back(0);
      low_hi = 0;
    } else {
      low.emplace(0, anchor, /*label_a=*/false, sched.fanout);
    }
    if (sample[k - 1] == 1) {
      scan_positions.push_back(k - 1);
      high_lo = k - 1;
    } else {
      high.emplace(anchor, k - 1, /*label_a=*/true, sched.fanout);
    }

    std::vector<size_t> lpiv, hpiv, batch;
    std::vector<uint8_t> labels;
    auto absorb = [&](FlipSearch* fs, const std::vector<size_t>& piv) {
      labels.clear();
      for (size_t pos : piv) labels.push_back(sample[pos] == 1 ? 1 : 0);
      fs->Absorb(piv, labels);
    };
    while ((low && !low->done()) || (high && !high->done())) {
      lpiv.clear();
      hpiv.clear();
      batch.clear();
      const bool low_active = low && !low->done();
      if (low_active) low->Pivots(&lpiv);
      // Without fusion the high search waits until the low one finishes.
      if (high && !high->done() && (sched.fuse || !low_active)) {
        high->Pivots(&hpiv);
      }
      batch.insert(batch.end(), lpiv.begin(), lpiv.end());
      batch.insert(batch.end(), hpiv.begin(), hpiv.end());
      ensure(batch);
      if (!lpiv.empty()) absorb(&*low, lpiv);
      if (!hpiv.empty()) absorb(&*high, hpiv);
    }

    if (low) {
      scan_positions.push_back(low->a());
      scan_positions.push_back(low->b());
      low_hi = low->b();
    }
    if (high) {
      scan_positions.push_back(high->a());
      scan_positions.push_back(high->b());
      high_lo = high->a();
    }
    middle_begin = low_hi + 1;
    middle_end = high_lo;  // exclusive
  }
  // Every round trip so far was a sample probe; the executor splits per-node
  // transport cost with this counter (the rest of the trips are scans).
  metrics.probe_trips->Add(db_->round_trips() - trips_before);

  std::sort(scan_positions.begin(), scan_positions.end());
  scan_positions.erase(
      std::unique(scan_positions.begin(), scan_positions.end()),
      scan_positions.end());

  // ---- Phase 3: exhaustive scan of the candidate end partitions. ----
  // Each candidate partition is scanned in full either way, so the batched
  // path evaluates exactly the scalar path's (trapdoor, tuple) pairs.
  std::map<size_t, ScannedPartition> scanned;
  for (size_t pos : scan_positions) {
    if (middle_begin <= pos && pos < middle_end) continue;  // known pure T
    ScannedPartition sp;
    metrics.end_scans->Add(1);
    ScanPartitionExact(pop, pos, td, db_, options_.scan_policy(),
                       &sp.t_members, &sp.f_members);
    scanned.emplace(pos, std::move(sp));
  }

  // ---- Assemble the result. ----
  std::vector<TupleId> result;
  for (const auto& [pos, sp] : scanned) {
    result.insert(result.end(), sp.t_members.begin(), sp.t_members.end());
  }
  for (size_t p = middle_begin; p < middle_end; ++p) {
    pop.members_at(p).AppendTo(&result);
  }

  // ---- Phase 4: updatePRKB. ----
  // A scanned mixed partition splits iff exactly one neighbour is known to
  // contain a T; the T half faces that neighbour.
  auto position_has_t = [&](size_t pos) -> bool {
    if (middle_begin <= pos && pos < middle_end) return true;
    auto it = scanned.find(pos);
    if (it != scanned.end()) return it->second.has_t();
    if (sample[pos] == 1) return true;
    return false;
  };

  struct PendingSplit {
    PartitionId pid;
    size_t pos;
    bool t_left;
  };
  std::vector<PendingSplit> splits;
  for (const auto& [pos, sp] : scanned) {
    if (!sp.mixed()) continue;
    const bool left_t = pos > 0 && position_has_t(pos - 1);
    const bool right_t = pos + 1 < k && position_has_t(pos + 1);
    if (left_t == right_t) continue;  // interior (F,T,F) band or isolated
    splits.push_back(PendingSplit{pop.pid_at(pos), pos, left_t});
  }

  std::vector<uint64_t> cut_ids;
  for (const auto& s : splits) {
    auto& sp = scanned.at(s.pos);
    std::vector<TupleId> left =
        s.t_left ? std::move(sp.t_members) : std::move(sp.f_members);
    std::vector<TupleId> right =
        s.t_left ? std::move(sp.f_members) : std::move(sp.t_members);
    cut_ids.push_back(
        pop.SplitPartition(s.pid, left, right, td, /*left_label=*/s.t_left));
  }
  if (cut_ids.size() == 2) {
    pop.LinkBetweenCuts(cut_ids[0], cut_ids[1]);
    // Both ends split: the satisfied band is exactly the run between the two
    // sibling cuts, so the trapdoor is answerable from the chain alone from
    // now on. One-ended outcomes stay uncached — the unsplit end's boundary
    // is not pinned by any cut of ours.
    if (fp != nullptr) pop.RememberBetween(*fp, cut_ids[0], cut_ids[1]);
  }
  return result;
}

}  // namespace prkb::core
