// Multi-dimensional range processing, "PRKB(MD)" (paper Sec. 6.2).
//
// A d-dimensional range arrives as 2d comparison trapdoors (two per
// attribute). One QFilter per trapdoor classifies, for that trapdoor, every
// chain partition as sure-True, sure-False or Not-Sure. Projected onto the
// grid of Fig. 5 this yields:
//   - the central region (True under every trapdoor): answers with 0 QPF;
//   - sure-False rows/columns: pruned with 0 QPF (Fig. 6b);
//   - the NS bands: only their tuples are tested, each only against the
//     trapdoors that are still undecided for its cell (Fig. 7), with
//     per-tuple short-circuiting on the first 0 and the partition-level
//     early-stop inference of Sec. 6.2 (a non-homogeneous NS partition
//     implies its partner is homogeneous).
//
// updatePRKB afterwards: every trapdoor whose non-homogeneous partition was
// fully resolved contributes a split. In the paper's (lazy) mode a partition
// whose scan was cut short by cross-dimension pruning is left unsplit; the
// eager option (ablation) finishes such scans with extra QPF uses.

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "common/bitvector.h"
#include "edbms/batch_scan.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "prkb/selection.h"

namespace prkb::core {
namespace {

using edbms::AttrId;
using edbms::Trapdoor;
using edbms::TupleId;

/// PRKB(MD) telemetry: band_tuples is the NS-band candidate set the grid
/// yields; evals is the QPF spend after free-classification pruning
/// (docs/COST_MODEL.md).
struct MdMetrics {
  obs::Counter* invocations;
  obs::Counter* band_tuples;
  obs::Counter* evals;
  obs::Counter* pruned_free;

  static const MdMetrics& Get() {
    static const MdMetrics m = {
        obs::MetricsRegistry::Global().GetCounter("md.invocations"),
        obs::MetricsRegistry::Global().GetCounter("md.band_tuples"),
        obs::MetricsRegistry::Global().GetCounter("md.evals"),
        obs::MetricsRegistry::Global().GetCounter("md.pruned_free"),
    };
    return m;
  }
};

/// Per-trapdoor processing state.
struct PredCtx {
  const Trapdoor* td = nullptr;
  Pop* pop = nullptr;
  TrapdoorFp fp;
  QFilterResult filter;

  /// Known homogeneous QPF output per partition id (sure-True / sure-False
  /// partitions from QFilter, plus labels learned during the query).
  std::unordered_map<PartitionId, int8_t> label_by_pid;

  /// The (at most two) Not-Sure partitions.
  struct Ns {
    PartitionId pid = Pop::kNoPartition;
    /// Homogeneous label implied by the partner's non-homogeneity, or -1.
    int8_t known = -1;
    size_t t_count = 0, f_count = 0;
    std::unordered_map<TupleId, bool> outcome;
  };
  Ns ns[2];
  int ns_count = 0;

  bool outside_label(int idx) const {
    return idx == 0 ? filter.label_first : filter.label_last;
  }
  int NsIndexOf(PartitionId pid) const {
    for (int i = 0; i < ns_count; ++i) {
      if (ns[i].pid == pid) return i;
    }
    return -1;
  }
};

/// Books one observed QPF output into the context: memoises the bit, updates
/// the partition's T/F tallies and fires the early-stop inference of Sec. 6.2
/// (a non-homogeneous NS partition implies its partner is homogeneous).
void RecordOutcome(PredCtx* pc, TupleId tid, bool out) {
  const PartitionId pid = pc->pop->partition_of(tid);
  const int idx = pc->NsIndexOf(pid);
  assert(idx >= 0);
  PredCtx::Ns& ns = pc->ns[idx];
  if (!ns.outcome.emplace(tid, out).second) return;  // already known
  (out ? ns.t_count : ns.f_count)++;
  if (ns.t_count > 0 && ns.f_count > 0 && pc->ns_count == 2) {
    // This partition is the separating one; the partner is homogeneous with
    // its outside label (early-stop inference, Sec. 6.2).
    const int partner = 1 - idx;
    if (pc->ns[partner].known == -1) {
      pc->ns[partner].known = pc->outside_label(partner) ? 1 : 0;
    }
  }
}

/// Evaluates `td` on `tid` for this context, spending a QPF use only when the
/// outcome is not already implied. Returns 0/1.
bool EvalForTuple(PredCtx* pc, edbms::Edbms* db, TupleId tid) {
  const PartitionId pid = pc->pop->partition_of(tid);
  if (auto it = pc->label_by_pid.find(pid); it != pc->label_by_pid.end()) {
    return it->second == 1;
  }
  const int idx = pc->NsIndexOf(pid);
  assert(idx >= 0);
  PredCtx::Ns& ns = pc->ns[idx];
  if (ns.known != -1) return ns.known == 1;
  if (auto it = ns.outcome.find(tid); it != ns.outcome.end()) {
    return it->second;
  }
  MdMetrics::Get().evals->Add(1);
  const bool out = db->Eval(*pc->td, tid);
  RecordOutcome(pc, tid, out);
  return out;
}

/// Tri-state classification of `tid` under `pc` without spending QPF:
/// 1 sure-true, 0 sure-false, -1 needs evaluation.
int8_t ClassifyTuple(const PredCtx& pc, TupleId tid) {
  const PartitionId pid = pc.pop->partition_of(tid);
  if (auto it = pc.label_by_pid.find(pid); it != pc.label_by_pid.end()) {
    return it->second;
  }
  const int idx = pc.NsIndexOf(pid);
  if (idx < 0) return 0;  // not covered by this chain (defensive)
  if (pc.ns[idx].known != -1) return pc.ns[idx].known;
  if (auto it = pc.ns[idx].outcome.find(tid); it != pc.ns[idx].outcome.end()) {
    return it->second ? 1 : 0;
  }
  return -1;
}

}  // namespace

std::vector<TupleId> PrkbIndex::RunMd(
    const std::vector<const Trapdoor*>& tds, const ProbeSchedOptions& sched) {
  assert(!tds.empty());
  const obs::ObsTracer::Span span("md.select");
  const MdMetrics& metrics = MdMetrics::Get();
  metrics.invocations->Add(1);

  // ---- Step 1: QFilter every trapdoor; classify partitions. ----
  // The fast-path consult runs first so only cache-missing dimensions filter;
  // those filters then share probe rounds (FusedQFilters) — d dimensions pay
  // the max, not the sum, of their search round trips.
  Rng rng = OpRng();
  std::vector<PredCtx> preds(tds.size());
  std::vector<size_t> filtered;
  std::vector<FusedFilterReq> filter_reqs;
  for (size_t i = 0; i < tds.size(); ++i) {
    PredCtx& pc = preds[i];
    pc.td = tds[i];
    pc.pop = &pops_.at(tds[i]->attr);
    if (pc.pop->k() == 0) return {};
    if (options_.fast_path) {
      pc.fp = FingerprintTrapdoor(*tds[i]);
      if (const Pop::FastPathEntry* e = pc.pop->LookupFastPath(pc.fp)) {
        // Already-cut trapdoor: every partition classifies for free off its
        // own cut — sure-T on the satisfied side, sure-F on the other. No
        // QFilter, no NS pair, zero QPF for this dimension.
        CacheMetrics::Get().hits->Add(1);
        const Pop::Cut* cut = pc.pop->FindCut(e->cut_id);
        const size_t cpos = pc.pop->CutPos(*cut);
        for (size_t pos = 0; pos < pc.pop->k(); ++pos) {
          const bool label = (pos < cpos) == cut->left_label;
          pc.label_by_pid.emplace(pc.pop->pid_at(pos), label ? 1 : 0);
        }
        pc.ns_count = 0;
        continue;
      }
      CacheMetrics::Get().misses->Add(1);
    }
    filtered.push_back(i);
    filter_reqs.push_back(FusedFilterReq{pc.pop, tds[i], &pc.filter});
  }
  if (options_.sequential_probes) {
    for (const FusedFilterReq& req : filter_reqs) {
      *req.out = QFilter(*req.pop, *req.td, db_, &rng);
    }
  } else {
    FusedQFilters(filter_reqs, db_, &rng, sched);
  }
  for (size_t i : filtered) {
    PredCtx& pc = preds[i];
    const size_t k = pc.pop->k();
    pc.ns[0].pid = pc.pop->pid_at(pc.filter.ns_a);
    pc.ns_count = 1;
    if (pc.filter.ns_b != pc.filter.ns_a) {
      pc.ns[1].pid = pc.pop->pid_at(pc.filter.ns_b);
      pc.ns_count = 2;
    }
    for (size_t pos = 0; pos < k; ++pos) {
      if (pos == pc.filter.ns_a || pos == pc.filter.ns_b) continue;
      bool label;
      if (pc.filter.boundary_case) {
        // Middle partitions share the common end label.
        label = pc.filter.label_first;
      } else {
        label = pos < pc.filter.ns_a ? pc.filter.label_first
                                     : pc.filter.label_last;
      }
      pc.label_by_pid.emplace(pc.pop->pid_at(pos), label ? 1 : 0);
    }
  }

  std::vector<TupleId> result;
  BitVector visited(db_->num_rows());
  const edbms::BatchPolicy policy = options_.scan_policy();

  // ---- Step 2: test tuples in the NS bands (Fig. 6b / Fig. 7). ----
  for (PredCtx& owner : preds) {
    for (int i = 0; i < owner.ns_count; ++i) {
      // Materialise: the iteration set is the membership at classification
      // time, in ascending tuple order.
      const std::vector<TupleId> members =
          owner.pop->members(owner.ns[i].pid).ToVector();

      if (!policy.batched()) {
        // Scalar path: per tuple, cheap classification pass, then undecided
        // trapdoors in order with a stop at the first 0.
        for (TupleId tid : members) {
          if (visited.Get(tid)) continue;
          visited.Set(tid);
          metrics.band_tuples->Add(1);

          // Cheap pass: reject on any sure-false trapdoor, collect the
          // undecided ones.
          bool rejected = false;
          for (const PredCtx& pc : preds) {
            if (ClassifyTuple(pc, tid) == 0) {
              rejected = true;
              break;
            }
          }
          if (rejected) {
            metrics.pruned_free->Add(1);
            continue;
          }

          // Expensive pass: evaluate undecided trapdoors, stop at first 0.
          bool all_true = true;
          for (PredCtx& pc : preds) {
            if (ClassifyTuple(pc, tid) == 1) continue;
            if (!EvalForTuple(&pc, db_, tid)) {
              all_true = false;
              break;
            }
          }
          if (all_true) result.push_back(tid);
        }
        continue;
      }

      // Batched path: process the band in chunks of batch_size. Tuples of a
      // chunk advance in lockstep rounds — each round classifies every still-
      // alive tuple, groups the ones needing an evaluation by their first
      // undecided trapdoor, and ships one batch round trip per trapdoor.
      // Per-tuple short-circuiting is preserved exactly (a tuple rejected by
      // round r is never evaluated in round r+1); the partition-level early-
      // stop inference fires with at most one chunk of slack, because bits
      // already in flight within a batch are paid for.
      for (size_t base = 0; base < members.size();
           base += policy.batch_size) {
        const size_t end =
            std::min(members.size(), base + policy.batch_size);
        std::vector<TupleId> alive;
        alive.reserve(end - base);
        for (size_t m = base; m < end; ++m) {
          const TupleId tid = members[m];
          if (visited.Get(tid)) continue;
          visited.Set(tid);
          alive.push_back(tid);
        }
        metrics.band_tuples->Add(alive.size());
        const std::vector<TupleId> chunk_order = alive;
        std::unordered_map<TupleId, bool> won;

        while (!alive.empty()) {
          std::vector<std::vector<TupleId>> need(preds.size());
          std::vector<TupleId> waiting;
          for (TupleId tid : alive) {
            bool rejected = false;
            int first_undecided = -1;
            for (size_t p = 0; p < preds.size(); ++p) {
              const int8_t c = ClassifyTuple(preds[p], tid);
              if (c == 0) {
                rejected = true;
                break;
              }
              if (c == -1 && first_undecided < 0) {
                first_undecided = static_cast<int>(p);
              }
            }
            if (rejected) continue;
            if (first_undecided < 0) {
              won.emplace(tid, true);  // sure-true under every trapdoor
              continue;
            }
            need[first_undecided].push_back(tid);
            waiting.push_back(tid);
          }
          alive = std::move(waiting);
          if (alive.empty()) break;
          for (size_t p = 0; p < preds.size(); ++p) {
            if (need[p].empty()) continue;
            metrics.evals->Add(need[p].size());
            const std::vector<uint8_t> bits =
                edbms::ScanTuples(db_, *preds[p].td, need[p], policy);
            for (size_t j = 0; j < need[p].size(); ++j) {
              RecordOutcome(&preds[p], need[p][j], bits[j] != 0);
            }
          }
        }
        for (TupleId tid : chunk_order) {
          if (won.contains(tid)) result.push_back(tid);
        }
      }
    }
  }

  // ---- Step 3: central region — sure-True under every trapdoor. ----
  {
    const PredCtx& first = preds[0];
    const size_t k = first.pop->k();
    for (size_t pos = 0; pos < k; ++pos) {
      const PartitionId pid = first.pop->pid_at(pos);
      const auto it = first.label_by_pid.find(pid);
      const bool sure_true =
          (it != first.label_by_pid.end() && it->second == 1) ||
          (first.NsIndexOf(pid) >= 0 &&
           first.ns[first.NsIndexOf(pid)].known == 1);
      if (!sure_true) continue;
      first.pop->members(pid).ForEach([&](TupleId tid) {
        if (visited.Get(tid)) return;
        bool all_true = true;
        for (size_t p = 1; p < preds.size(); ++p) {
          if (ClassifyTuple(preds[p], tid) != 1) {
            all_true = false;
            break;
          }
        }
        if (all_true) result.push_back(tid);
      });
    }
  }

  // ---- Step 4 (optional, ablation): finish incomplete NS scans. ----
  if (options_.eager_md_update) {
    for (PredCtx& pc : preds) {
      for (int i = 0; i < pc.ns_count; ++i) {
        PredCtx::Ns& ns = pc.ns[i];
        if (ns.known != -1) continue;
        if (!policy.batched()) {
          for (TupleId tid : pc.pop->members(ns.pid).ToVector()) {
            if (!ns.outcome.contains(tid)) EvalForTuple(&pc, db_, tid);
            if (ns.known != -1) break;  // partner inference fired
          }
          continue;
        }
        // Chunk-granular early stop: the inference check runs between batch
        // round trips instead of between scalar calls.
        const std::vector<TupleId> members =
            pc.pop->members(ns.pid).ToVector();
        for (size_t base = 0;
             base < members.size() && ns.known == -1;
             base += policy.batch_size) {
          const size_t end =
              std::min(members.size(), base + policy.batch_size);
          std::vector<TupleId> missing;
          for (size_t m = base; m < end; ++m) {
            if (!ns.outcome.contains(members[m])) {
              missing.push_back(members[m]);
            }
          }
          if (missing.empty()) continue;
          const std::vector<uint8_t> bits =
              edbms::ScanTuples(db_, *pc.td, missing, policy);
          for (size_t j = 0; j < missing.size(); ++j) {
            RecordOutcome(&pc, missing[j], bits[j] != 0);
          }
        }
      }
    }
  }

  // ---- Step 5: updatePRKB. ----
  for (PredCtx& pc : preds) {
    for (int i = 0; i < pc.ns_count; ++i) {
      PredCtx::Ns& ns = pc.ns[i];
      if (ns.known != -1) {
        pc.label_by_pid.emplace(ns.pid, ns.known);
        continue;
      }
      if (ns.t_count == 0 || ns.f_count == 0) {
        // Homogeneous as far as observed. Record the label only on full
        // coverage (an unscanned remainder could still differ).
        if (ns.outcome.size() == pc.pop->members(ns.pid).Size()) {
          pc.label_by_pid.emplace(ns.pid, ns.t_count > 0 ? 1 : 0);
        }
        continue;
      }
      // Mixed. Group outcomes by *current* partition: an earlier split (by
      // the sibling trapdoor of the same attribute) may have fragmented the
      // original NS partition.
      std::unordered_map<PartitionId, std::pair<std::vector<TupleId>,
                                                std::vector<TupleId>>>
          groups;
      for (const auto& [tid, out] : ns.outcome) {
        auto& g = groups[pc.pop->partition_of(tid)];
        (out ? g.first : g.second).push_back(tid);
      }
      // First pass: record the labels of fully-covered homogeneous groups —
      // they are the orientation evidence the mixed group needs, regardless
      // of hash-map iteration order.
      for (auto& [pid, g] : groups) {
        auto& [t_members, f_members] = g;
        if (t_members.size() + f_members.size() !=
                pc.pop->members(pid).Size() ||
            (!t_members.empty() && !f_members.empty())) {
          continue;
        }
        pc.label_by_pid.emplace(pid, t_members.empty() ? 0 : 1);
      }
      for (auto& [pid, g] : groups) {
        auto& [t_members, f_members] = g;
        if (t_members.size() + f_members.size() !=
            pc.pop->members(pid).Size()) {
          continue;  // incomplete (lazy mode): cannot split safely
        }
        if (t_members.empty() || f_members.empty()) {
          continue;  // homogeneous: label recorded above
        }
        // The separating point is inside this fragment, so the partner NS
        // partition is homogeneous with its outside label.
        if (pc.ns_count == 2) {
          const int partner = 1 - i;
          pc.label_by_pid.emplace(pc.ns[partner].pid,
                                  pc.outside_label(partner) ? 1 : 0);
        }
        // Orient against a neighbour with a known label for this trapdoor.
        const size_t pos = pc.pop->pos_of(pid);
        int8_t left_label = -1, right_label = -1;
        if (pos > 0) {
          auto it = pc.label_by_pid.find(pc.pop->pid_at(pos - 1));
          if (it != pc.label_by_pid.end()) left_label = it->second;
        }
        if (pos + 1 < pc.pop->k()) {
          auto it = pc.label_by_pid.find(pc.pop->pid_at(pos + 1));
          if (it != pc.label_by_pid.end()) right_label = it->second;
        }
        bool true_half_left;
        if (left_label != -1) {
          true_half_left = left_label == 1;
        } else if (right_label != -1) {
          true_half_left = right_label != 1;
        } else if (pc.pop->k() == 1) {
          true_half_left = false;  // first split: orientation is free
        } else {
          continue;  // no orientation evidence; leave unsplit
        }
        std::vector<TupleId> left =
            true_half_left ? std::move(t_members) : std::move(f_members);
        std::vector<TupleId> right =
            true_half_left ? std::move(f_members) : std::move(t_members);
        const uint64_t cut_id = pc.pop->SplitPartition(
            pid, std::move(left), std::move(right), *pc.td, true_half_left);
        // The split resolves this trapdoor's unique separating point, so the
        // whole chain now sides exactly on this cut — cacheable.
        if (options_.fast_path) pc.pop->RememberComparison(pc.fp, cut_id);
        // The halves now have known labels for every trapdoor that knew the
        // original partition; record ours and propagate the others.
        const PartitionId left_pid = pc.pop->pid_at(pos);
        pc.label_by_pid.emplace(left_pid, true_half_left ? 1 : 0);
        pc.label_by_pid.emplace(pid, true_half_left ? 0 : 1);
        for (PredCtx& other : preds) {
          // Partition ids are only meaningful within one chain: propagate to
          // the sibling trapdoors of the same attribute only.
          if (&other == &pc || other.pop != pc.pop) continue;
          if (auto it = other.label_by_pid.find(pid);
              it != other.label_by_pid.end()) {
            other.label_by_pid.emplace(left_pid, it->second);
          }
        }
      }
    }
  }
  return result;
}

}  // namespace prkb::core
