#include "prkb/fingerprint.h"

#include "crypto/sha256.h"

namespace prkb::core {

TrapdoorFp FingerprintTrapdoor(const edbms::Trapdoor& td) {
  crypto::Sha256 h;
  uint8_t header[5];
  header[0] = static_cast<uint8_t>(td.attr);
  header[1] = static_cast<uint8_t>(td.attr >> 8);
  header[2] = static_cast<uint8_t>(td.attr >> 16);
  header[3] = static_cast<uint8_t>(td.attr >> 24);
  header[4] = static_cast<uint8_t>(td.kind);
  h.Update(header, sizeof(header));
  h.Update(td.blob.data(), td.blob.size());
  const crypto::Sha256::Digest d = h.Finalize();
  auto load64 = [](const uint8_t* p) {
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
    return v;
  };
  return TrapdoorFp{load64(d.data()), load64(d.data() + 8)};
}

}  // namespace prkb::core
