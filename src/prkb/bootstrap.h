#ifndef PRKB_PRKB_BOOTSTRAP_H_
#define PRKB_PRKB_BOOTSTRAP_H_

#include <cstddef>

#include "prkb/selection.h"

namespace prkb::core {

/// Result of a PRKB bootstrap round.
struct BootstrapResult {
  size_t queries_issued = 0;
  uint64_t qpf_uses = 0;
  size_t k_before = 0;
  size_t k_after = 0;
};

/// The paper's cold-start remedy (Sec. 8.2.6): "DO can arbitrarily generate
/// queries (as few as 50) to help SP build an initial PRKB." Issues
/// `queries` comparison trapdoors with constants evenly spread over
/// [domain_lo, domain_hi] (jittered so repeated bootstraps keep adding
/// knowledge) and runs them through the index. Evenly spaced constants are
/// the best the DO can do without workload knowledge: they bound every
/// partition's width by domain/(queries+1).
///
/// The queries are ordinary selections issued by the DO — the bootstrap
/// changes nothing about the security story.
BootstrapResult BootstrapPrkb(PrkbIndex* index, edbms::Edbms* db,
                              edbms::AttrId attr, edbms::Value domain_lo,
                              edbms::Value domain_hi, size_t queries,
                              uint64_t seed = 0);

}  // namespace prkb::core

#endif  // PRKB_PRKB_BOOTSTRAP_H_
