#ifndef PRKB_PRKB_SHARD_H_
#define PRKB_PRKB_SHARD_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/metrics.h"
#include "prkb/concurrent.h"
#include "prkb/selection.h"

namespace prkb::core {

/// Routing telemetry for ShardedPrkbIndex (docs/OBSERVABILITY.md).
struct ShardMetrics {
  obs::Counter* selects_routed;
  obs::Counter* md_colocated;
  obs::Counter* md_composed;
  obs::Counter* fan_placements;
  obs::Counter* fan_erases;

  static const ShardMetrics& Get() {
    static const ShardMetrics m = {
        obs::MetricsRegistry::Global().GetCounter("shard.selects_routed"),
        obs::MetricsRegistry::Global().GetCounter("shard.md_colocated"),
        obs::MetricsRegistry::Global().GetCounter("shard.md_composed"),
        obs::MetricsRegistry::Global().GetCounter("shard.fan_placements"),
        obs::MetricsRegistry::Global().GetCounter("shard.fan_erases"),
    };
    return m;
  }
};

/// Attribute-hash-sharded PRKB serving index.
///
/// ConcurrentPrkbIndex already lets repeat-predicate selections on distinct
/// attributes run concurrently, but every *write* — Insert placement, Delete,
/// any MD range query — takes its one map lock exclusively and stalls the
/// whole table. Sharding splits the table's chains across N independent
/// ConcurrentPrkbIndex instances, routed by a hash of the attribute id, all
/// over the same Edbms store:
///
///   - A single-predicate Select touches only the owning shard; its chain,
///     cache and locks are bit-identical to the unsharded ones, so winner
///     sets and QPF uses do not change.
///   - Insert stores the row once, then fans chain placement across the
///     populated shards in parallel — an insert busy splitting chains on
///     shard 2 no longer blocks selections on shards 0, 1, 3.
///   - An MD range query whose attributes are co-located on one shard routes
///     whole (grid pruning intact). Otherwise it is composed per shard-group
///     — each shard answers the sub-query over its own dimensions (MD within
///     the group, the single-predicate path for singleton groups) and the
///     router intersects — which preserves exact winner sets but forgoes
///     cross-shard grid pruning, so it may spend more QPF uses than a
///     one-shard MD. `shard.md_composed` counts how often that tax is paid.
///
/// The Edbms store itself is shared; its mutations (Insert/Delete) are
/// serialised by a router-level mutex, which is cheap next to placement.
class ShardedPrkbIndex {
 public:
  /// `db` must outlive the index. `num_shards` is clamped to ≥ 1.
  ShardedPrkbIndex(edbms::Edbms* db, size_t num_shards,
                   PrkbOptions options = {});

  size_t num_shards() const { return shards_.size(); }

  /// Which shard owns `attr`'s chain. Stable for the life of the index.
  size_t ShardOf(edbms::AttrId attr) const {
    // Fibonacci mix so consecutive attr ids spread instead of striping.
    const uint64_t h = (attr + 1) * 0x9E3779B97F4A7C15ULL;
    return static_cast<size_t>(h >> 33) % shards_.size();
  }

  void EnableAttr(edbms::AttrId attr);
  bool IsEnabled(edbms::AttrId attr) const;
  std::vector<edbms::AttrId> EnabledAttrs() const;

  /// Durable serving: one WAL per shard, under `dir/shard-N`. Each shard
  /// recovers independently on open (docs/PERSISTENCE.md §7).
  Status OpenWal(const std::string& dir, WalOptions options = {});
  Status CompactWal();

  std::vector<edbms::TupleId> Select(const edbms::Trapdoor& td,
                                     edbms::SelectionStats* stats = nullptr);

  /// Exact winner sets always; whole-query grid pruning only when every
  /// trapdoor's attribute lands on one shard (see class comment).
  std::vector<edbms::TupleId> SelectRangeMd(
      const std::vector<edbms::Trapdoor>& tds,
      edbms::SelectionStats* stats = nullptr);

  std::vector<edbms::TupleId> SelectRangeSdPlus(
      const std::vector<edbms::Trapdoor>& tds,
      edbms::SelectionStats* stats = nullptr);

  edbms::TupleId Insert(const std::vector<edbms::Value>& row,
                        edbms::SelectionStats* stats = nullptr);
  void Delete(edbms::TupleId tid);

  PrkbIndex::ChainStats StatsFor(edbms::AttrId attr) const;
  size_t SizeBytes() const;

  /// Direct access for tests and the shell's `.shards` report.
  ConcurrentPrkbIndex& shard(size_t i) { return *shards_[i]; }
  const ConcurrentPrkbIndex& shard(size_t i) const { return *shards_[i]; }

  /// Point-in-time per-shard summary for observability surfaces.
  struct ShardReport {
    size_t shard = 0;
    std::vector<edbms::AttrId> attrs;
    size_t chains = 0;
    size_t tuples = 0;   // sum over chains (a tuple counts once per chain)
    size_t bytes = 0;
    uint64_t selects = 0;     // single-predicate selects routed here
    uint64_t placements = 0;  // insert placements fanned here
    /// This shard's calibrated constants (exec/calibrate.h): each shard
    /// measures its own transport round-trip latency — the PR 6 socket path
    /// gives different shards genuinely different L — so the probe fanout m
    /// calibrates per shard rather than globally.
    double cal_rt_latency_ns = 0.0;
    double cal_eval_ns = 0.0;
    uint64_t cal_rt_samples = 0;
  };
  std::vector<ShardReport> Describe() const;

 private:
  ConcurrentPrkbIndex& Owner(edbms::AttrId attr) { return *shards_[ShardOf(attr)]; }

  /// Unordered intersection of winner sets.
  static std::vector<edbms::TupleId> Intersect(
      std::vector<std::vector<edbms::TupleId>> sets);

  edbms::Edbms* db_;
  std::vector<std::unique_ptr<ConcurrentPrkbIndex>> shards_;
  /// Serialises raw Edbms store mutations (the store is not internally
  /// thread-safe; chain work never runs under this).
  std::mutex store_mu_;
  /// Per-shard routed-op tallies for Describe().
  std::vector<std::unique_ptr<std::atomic<uint64_t>>> shard_selects_;
  std::vector<std::unique_ptr<std::atomic<uint64_t>>> shard_placements_;
};

}  // namespace prkb::core

#endif  // PRKB_PRKB_SHARD_H_
