#ifndef PRKB_PRKB_PRKB_IO_H_
#define PRKB_PRKB_PRKB_IO_H_

#include <string>
#include <vector>

#include "common/serial.h"
#include "common/status.h"
#include "prkb/selection.h"

namespace prkb::core {

/// Persists the PRKB index (every enabled attribute's chain plus retained
/// trapdoors) to `path`. Since the PRKB holds no plaintext — only tuple ids,
/// chain order and sealed trapdoors — the snapshot is exactly as sensitive as
/// the SP's live state, no more.
Status SavePrkb(const PrkbIndex& index, const std::string& path);

/// Restores a snapshot written by SavePrkb into `index` (replacing any
/// enabled attributes). The underlying EDBMS must contain the same tuples.
/// `loaded`, if non-null, receives the attributes the snapshot installed
/// (the WAL uses this to tell recovered chains from first-attach ones).
Status LoadPrkb(PrkbIndex* index, const std::string& path,
                std::vector<edbms::AttrId>* loaded = nullptr);

/// Shared sealed-trapdoor wire format (snapshot cuts and WAL split records
/// use the same encoding).
void EncodeTrapdoor(Encoder* enc, const edbms::Trapdoor& td);
Status DecodeTrapdoor(Decoder* dec, edbms::Trapdoor* td);

}  // namespace prkb::core

#endif  // PRKB_PRKB_PRKB_IO_H_
