#include <algorithm>
#include <cassert>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "prkb/selection.h"

namespace prkb::core {
namespace {

using edbms::TupleId;

/// Insertion-handling telemetry: evals is the O(lg k) re-evaluation budget of
/// Sec. 7.1; coarsen_merges count the fallback that trades knowledge for
/// placeability (docs/COST_MODEL.md).
struct UpdateMetrics {
  obs::Counter* placements;
  obs::Counter* evals;
  obs::Counter* coarsen_merges;
  obs::Counter* memo_hits;

  static const UpdateMetrics& Get() {
    static const UpdateMetrics m = {
        obs::MetricsRegistry::Global().GetCounter("update.placements"),
        obs::MetricsRegistry::Global().GetCounter("update.evals"),
        obs::MetricsRegistry::Global().GetCounter("update.coarsen_merges"),
        obs::MetricsRegistry::Global().GetCounter("update.memo_hits"),
    };
    return m;
  }
};

/// Inclusive range of chain positions.
struct Interval {
  size_t b, e;
  size_t size() const { return e - b + 1; }
};

size_t Total(const std::vector<Interval>& ivs) {
  size_t n = 0;
  for (const auto& iv : ivs) n += iv.size();
  return n;
}

/// Intersects `ivs` with [b, e] (inclusive). Pass e < b for an empty range.
std::vector<Interval> Clip(const std::vector<Interval>& ivs, size_t b,
                           size_t e) {
  std::vector<Interval> out;
  if (e + 1 <= b && e < b) {
    // empty clip range
  }
  for (const auto& iv : ivs) {
    const size_t nb = std::max(iv.b, b);
    const size_t ne = std::min(iv.e, e);
    if (nb <= ne && b <= e) out.push_back(Interval{nb, ne});
  }
  return out;
}

/// Union of two disjoint clip results against complementary ranges.
std::vector<Interval> ClipComplement(const std::vector<Interval>& ivs,
                                     size_t b, size_t e, size_t k) {
  // Complement of [b, e] within [0, k-1].
  std::vector<Interval> out;
  if (b > 0) {
    auto left = Clip(ivs, 0, b - 1);
    out.insert(out.end(), left.begin(), left.end());
  }
  if (e + 1 <= k - 1) {
    auto right = Clip(ivs, e + 1, k - 1);
    out.insert(out.end(), right.begin(), right.end());
  }
  return out;
}

/// How a usable cut partitions the chain into a "region" and its complement.
struct CutRegion {
  const Pop::Cut* cut;
  // Region selected when Θ outputs `label_for_region`.
  size_t region_b, region_e;
  bool label_for_region;
};

/// Size of `ivs` ∩ [b, e] without materialising it.
size_t CountClip(const std::vector<Interval>& ivs, size_t b, size_t e) {
  size_t n = 0;
  if (b > e) return 0;
  for (const auto& iv : ivs) {
    const size_t nb = std::max(iv.b, b);
    const size_t ne = std::min(iv.e, e);
    if (nb <= ne) n += ne - nb + 1;
  }
  return n;
}

}  // namespace

void PrkbIndex::PlaceTuple(edbms::AttrId attr, TupleId tid) {
  const obs::ObsTracer::Span span("update.place_tuple");
  UpdateMetrics::Get().placements->Add(1);
  Pop& pop = pops_.at(attr);
  if (pop.k() == 0) {
    pop.InitSingle(std::vector<TupleId>{tid});
    return;
  }
  if (pop.k() == 1) {
    pop.AddTuple(pop.pid_at(0), tid);
    return;
  }

  const size_t k = pop.k();
  std::vector<Interval> cand = {Interval{0, k - 1}};

  // Collect the usable cuts and their region semantics once; positions do
  // not change during the search (no splits happen here).
  std::vector<CutRegion> regions;
  for (const Pop::Cut& cut : pop.cuts()) {
    if (!cut.UsableForInsert()) continue;
    if (cut.trapdoor.kind == edbms::PredicateKind::kComparison) {
      const size_t c = pop.CutPos(cut);
      // Θ == left_label selects positions [0, c-1].
      regions.push_back(CutRegion{&cut, 0, c - 1, cut.left_label});
    } else {
      // BETWEEN with both ends known: Θ == 1 selects the inside positions.
      const Pop::Cut* sib = pop.FindCut(cut.sibling);
      if (sib == nullptr) continue;
      const size_t c1 = pop.CutPos(cut);
      const size_t c2 = pop.CutPos(*sib);
      if (c1 >= c2) continue;  // handled once, from the low end
      regions.push_back(CutRegion{&cut, c1, c2 - 1, true});
    }
  }

  // Sorted comparison-cut positions for the O(lg k)-per-step fast path:
  // while the candidate set is one interval [b, e], the best comparison cut
  // is simply the one with position nearest its midpoint, found by binary
  // search instead of scanning every cut.
  std::vector<std::pair<size_t, const CutRegion*>> cmp_by_pos;
  cmp_by_pos.reserve(regions.size());
  for (const CutRegion& r : regions) {
    if (r.cut->trapdoor.kind == edbms::PredicateKind::kComparison) {
      cmp_by_pos.emplace_back(r.region_e + 1, &r);  // cut position
    }
  }
  std::sort(cmp_by_pos.begin(), cmp_by_pos.end());

  // Θ(trapdoor, tid) outcomes already paid for during this placement, keyed
  // by trapdoor fingerprint: distinct cuts can share one trapdoor (BETWEEN
  // sibling pairs, MD-fragmented splits), and the greedy search must never
  // pay the backend twice for the same predicate.
  std::unordered_map<TrapdoorFp, bool, TrapdoorFpHash> memo;

  // Greedy binary search: repeatedly evaluate the cut minimising the
  // worst-case surviving candidate count (≈ ⌈lg k⌉ QPF uses, Sec. 7.1).
  while (Total(cand) > 1) {
    const CutRegion* best = nullptr;

    if (cand.size() == 1) {
      // Fast path: pick the comparison cut nearest the interval midpoint,
      // i.e. a position in (b, e] closest to (b + e + 1) / 2.
      const size_t b = cand[0].b, e = cand[0].e;
      const size_t mid = (b + e + 1) / 2;
      auto it = std::lower_bound(
          cmp_by_pos.begin(), cmp_by_pos.end(), mid,
          [](const auto& pr, size_t m) { return pr.first < m; });
      const CutRegion* cut_up =
          (it != cmp_by_pos.end() && it->first <= e) ? it->second : nullptr;
      const CutRegion* cut_down =
          (it != cmp_by_pos.begin() && std::prev(it)->first > b)
              ? std::prev(it)->second
              : nullptr;
      if (cut_up != nullptr && cut_down != nullptr) {
        best = (it->first - mid <= mid - std::prev(it)->first) ? cut_up
                                                               : cut_down;
      } else {
        best = cut_up != nullptr ? cut_up : cut_down;
      }
    }
    if (best == nullptr) {
      // General path: any usable cut (including BETWEEN pairs) minimising
      // the worst-case surviving count.
      const size_t total = Total(cand);
      size_t best_worst = total;
      for (const CutRegion& r : regions) {
        const size_t in_region = CountClip(cand, r.region_b, r.region_e);
        const size_t worst = std::max(in_region, total - in_region);
        if (worst < best_worst) {
          best_worst = worst;
          best = &r;
        }
      }
    }
    if (best == nullptr) break;  // no cut can narrow further

    bool output;
    if (const auto it = memo.find(best->cut->fp);
        options_.fast_path && it != memo.end()) {
      UpdateMetrics::Get().memo_hits->Add(1);
      output = it->second;
    } else {
      UpdateMetrics::Get().evals->Add(1);
      output = db_->Eval(best->cut->trapdoor, tid);
      memo.emplace(best->cut->fp, output);
    }
    if (output == best->label_for_region) {
      cand = Clip(cand, best->region_b, best->region_e);
    } else {
      cand = ClipComplement(cand, best->region_b, best->region_e, k);
    }
    assert(!cand.empty());
  }

  if (Total(cand) == 1) {
    pop.AddTuple(pop.pid_at(cand[0].b), tid);
    return;
  }

  // No usable cut separates the remaining candidates (possible only when
  // sibling-less BETWEEN cuts guard the boundary). Coarsen: merge the whole
  // candidate span into one partition — always knowledge-safe — and place
  // the tuple there.
  const size_t span_b = cand.front().b;
  size_t span_e = 0;
  for (const auto& iv : cand) span_e = std::max(span_e, iv.e);
  UpdateMetrics::Get().coarsen_merges->Add(span_e - span_b);
  for (size_t i = span_b; i < span_e; ++i) pop.MergeAt(span_b);
  pop.AddTuple(pop.pid_at(span_b), tid);
}

edbms::TupleId PrkbIndex::Insert(const std::vector<edbms::Value>& row,
                                 edbms::SelectionStats* stats) {
  // StatsScope fills every field (the old manual fill left qpf_batches
  // stale when the caller reused a stats struct across operations).
  edbms::StatsScope scope(db_, stats, "insert");
  const TupleId tid = db_->Insert(row);
  for (auto& [attr, pop] : pops_) {
    (void)pop;
    PlaceTuple(attr, tid);
  }
  return tid;
}

void PrkbIndex::Delete(edbms::TupleId tid) {
  db_->Delete(tid);
  for (auto& [attr, pop] : pops_) {
    (void)attr;
    if (pop.partition_of(tid) != Pop::kNoPartition) pop.RemoveTuple(tid);
  }
}

}  // namespace prkb::core
