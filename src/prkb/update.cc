#include <algorithm>
#include <cassert>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "prkb/probe_sched.h"
#include "prkb/selection.h"

namespace prkb::core {
namespace {

using edbms::TupleId;

/// Insertion-handling telemetry: evals is the O(lg k) re-evaluation budget of
/// Sec. 7.1; coarsen_merges count the fallback that trades knowledge for
/// placeability; the update.buffer.* family tracks the deferred-insert path
/// (docs/COST_MODEL.md, docs/OBSERVABILITY.md).
struct UpdateMetrics {
  obs::Counter* placements;
  obs::Counter* evals;
  obs::Counter* coarsen_merges;
  obs::Counter* memo_hits;
  obs::Counter* buffer_appends;
  obs::Counter* buffer_flushes;
  obs::LatencyHistogram* flush_batch_size;

  static const UpdateMetrics& Get() {
    static const UpdateMetrics m = {
        obs::MetricsRegistry::Global().GetCounter("update.placements"),
        obs::MetricsRegistry::Global().GetCounter("update.evals"),
        obs::MetricsRegistry::Global().GetCounter("update.coarsen_merges"),
        obs::MetricsRegistry::Global().GetCounter("update.memo_hits"),
        obs::MetricsRegistry::Global().GetCounter("update.buffer.appends"),
        obs::MetricsRegistry::Global().GetCounter("update.buffer.flushes"),
        obs::MetricsRegistry::Global().GetHistogram(
            "update.buffer.flush_batch_size"),
    };
    return m;
  }
};

/// Inclusive range of chain positions.
struct Interval {
  size_t b, e;
  size_t size() const { return e - b + 1; }
};

size_t Total(const std::vector<Interval>& ivs) {
  size_t n = 0;
  for (const auto& iv : ivs) n += iv.size();
  return n;
}

/// Intersects `ivs` with [b, e] (inclusive). Pass e < b for an empty range.
std::vector<Interval> Clip(const std::vector<Interval>& ivs, size_t b,
                           size_t e) {
  std::vector<Interval> out;
  if (e + 1 <= b && e < b) {
    // empty clip range
  }
  for (const auto& iv : ivs) {
    const size_t nb = std::max(iv.b, b);
    const size_t ne = std::min(iv.e, e);
    if (nb <= ne && b <= e) out.push_back(Interval{nb, ne});
  }
  return out;
}

/// Union of two disjoint clip results against complementary ranges.
std::vector<Interval> ClipComplement(const std::vector<Interval>& ivs,
                                     size_t b, size_t e, size_t k) {
  // Complement of [b, e] within [0, k-1].
  std::vector<Interval> out;
  if (b > 0) {
    auto left = Clip(ivs, 0, b - 1);
    out.insert(out.end(), left.begin(), left.end());
  }
  if (e + 1 <= k - 1) {
    auto right = Clip(ivs, e + 1, k - 1);
    out.insert(out.end(), right.begin(), right.end());
  }
  return out;
}

/// How a usable cut partitions the chain into a "region" and its complement.
struct CutRegion {
  const Pop::Cut* cut;
  // Region selected when Θ outputs `label_for_region`.
  size_t region_b, region_e;
  bool label_for_region;
};

/// Size of `ivs` ∩ [b, e] without materialising it.
size_t CountClip(const std::vector<Interval>& ivs, size_t b, size_t e) {
  size_t n = 0;
  if (b > e) return 0;
  for (const auto& iv : ivs) {
    const size_t nb = std::max(iv.b, b);
    const size_t ne = std::min(iv.e, e);
    if (nb <= ne) n += ne - nb + 1;
  }
  return n;
}

/// The fixed search geometry of one placement batch: usable cuts with their
/// region semantics, plus the sorted comparison-cut index for the
/// O(lg k)-per-step quantile pick. Positions never change during a search
/// (only AddTuple happens before the coarsen fallback), so one geometry
/// serves every tuple of a batch — which is what makes the lock-step flush
/// evaluate exactly the per-tuple (cut, tuple) pairs the eager sequential
/// placement would have.
struct PlacementGeometry {
  size_t k;
  std::vector<CutRegion> regions;
  std::vector<std::pair<size_t, const CutRegion*>> cmp_by_pos;

  explicit PlacementGeometry(const Pop& pop) : k(pop.k()) {
    for (const Pop::Cut& cut : pop.cuts()) {
      if (!cut.UsableForInsert()) continue;
      if (cut.trapdoor.kind == edbms::PredicateKind::kComparison) {
        const size_t c = pop.CutPos(cut);
        // Θ == left_label selects positions [0, c-1].
        regions.push_back(CutRegion{&cut, 0, c - 1, cut.left_label});
      } else {
        // BETWEEN with both ends known: Θ == 1 selects the inside positions.
        const Pop::Cut* sib = pop.FindCut(cut.sibling);
        if (sib == nullptr) continue;
        const size_t c1 = pop.CutPos(cut);
        const size_t c2 = pop.CutPos(*sib);
        if (c1 >= c2) continue;  // handled once, from the low end
        regions.push_back(CutRegion{&cut, c1, c2 - 1, true});
      }
    }
    cmp_by_pos.reserve(regions.size());
    for (const CutRegion& r : regions) {
      if (r.cut->trapdoor.kind == edbms::PredicateKind::kComparison) {
        cmp_by_pos.emplace_back(r.region_e + 1, &r);  // cut position
      }
    }
    std::sort(cmp_by_pos.begin(), cmp_by_pos.end());
  }

  /// Nearest usable comparison cut to `target`, constrained to (b, e] so it
  /// properly splits the interval [b, e]. Ties go to the upper cut.
  const CutRegion* NearestCmp(size_t b, size_t e, size_t target) const {
    auto it = std::lower_bound(
        cmp_by_pos.begin(), cmp_by_pos.end(), target,
        [](const auto& pr, size_t m) { return pr.first < m; });
    const CutRegion* cut_up =
        (it != cmp_by_pos.end() && it->first <= e) ? it->second : nullptr;
    const CutRegion* cut_down =
        (it != cmp_by_pos.begin() && std::prev(it)->first > b)
            ? std::prev(it)->second
            : nullptr;
    if (cut_up != nullptr && cut_down != nullptr) {
      return (it->first - target <= target - std::prev(it)->first) ? cut_up
                                                                   : cut_down;
    }
    return cut_up != nullptr ? cut_up : cut_down;
  }

  /// One round's greedy picks for `cand`: up to `npicks` cuts — the quantile
  /// comparison cuts of a single surviving interval, or the best worst-case
  /// separators in general. Empty when no usable cut can narrow further.
  void ComputePicks(const std::vector<Interval>& cand, size_t fanout,
                    size_t npicks, std::vector<const CutRegion*>* picks) const {
    picks->clear();
    if (cand.size() == 1) {
      // Fast path: comparison cuts nearest the m-quantiles of [b, e] (the
      // single midpoint when m = 2), each found by binary search.
      const size_t b = cand[0].b, e = cand[0].e;
      const size_t width = e - b + 1;
      for (size_t j = 1; j < fanout && picks->size() < npicks; ++j) {
        const size_t off = j * width / fanout;
        if (off == 0) continue;  // degenerate quantile; a later j covers it
        const CutRegion* r = NearestCmp(b, e, b + off);
        if (r == nullptr) continue;
        if (std::find(picks->begin(), picks->end(), r) == picks->end()) {
          picks->push_back(r);
        }
      }
    }
    if (picks->empty()) {
      // General path: any usable cuts (including BETWEEN pairs) minimising
      // the worst-case surviving count; only proper separators qualify.
      const size_t total = Total(cand);
      std::vector<std::pair<size_t, const CutRegion*>> scored;
      for (const CutRegion& r : regions) {
        const size_t in_region = CountClip(cand, r.region_b, r.region_e);
        const size_t worst = std::max(in_region, total - in_region);
        if (worst < total) scored.emplace_back(worst, &r);
      }
      std::stable_sort(
          scored.begin(), scored.end(),
          [](const auto& x, const auto& y) { return x.first < y.first; });
      for (const auto& [worst, r] : scored) {
        (void)worst;
        if (picks->size() >= npicks) break;
        picks->push_back(r);
      }
    }
  }
};

}  // namespace

void PrkbIndex::PlaceTuple(edbms::AttrId attr, TupleId tid) {
  const obs::ObsTracer::Span span("update.place_tuple");
  UpdateMetrics::Get().placements->Add(1);
  Pop& pop = pops_.at(attr);
  if (pop.k() == 0) {
    pop.InitSingle(std::vector<TupleId>{tid});
    return;
  }
  if (pop.k() == 1) {
    pop.AddTuple(pop.pid_at(0), tid);
    return;
  }

  const PlacementGeometry geo(pop);
  const size_t k = geo.k;
  std::vector<Interval> cand = {Interval{0, k - 1}};

  // Θ(trapdoor, tid) outcomes already paid for during this placement, keyed
  // by trapdoor fingerprint: distinct cuts can share one trapdoor (BETWEEN
  // sibling pairs, MD-fragmented splits), and the greedy search must never
  // pay the backend twice for the same predicate.
  std::unordered_map<TrapdoorFp, bool, TrapdoorFpHash> memo;

  // Greedy search, batched: each round picks up to m−1 cuts and evaluates
  // them in one QPF round trip, cutting the ~⌈lg k⌉ serial trips of
  // Sec. 7.1 to ~⌈log_m k⌉. m = 2 (and the sequential-probes ablation)
  // reproduce the paper's one-cut-per-trip binary placement exactly.
  const bool sequential = options_.sequential_probes;
  const size_t fanout =
      sequential ? 2 : (options_.probe_fanout < 2 ? 2 : options_.probe_fanout);
  const size_t npicks = sequential ? 1 : fanout - 1;
  ProbeRound probe_round(db_);
  std::vector<const CutRegion*> picks;
  while (Total(cand) > 1) {
    geo.ComputePicks(cand, fanout, npicks, &picks);
    if (picks.empty()) break;  // no cut can narrow further

    if (sequential) {
      // Paper-literal placement: one cut, one blocking scalar round trip.
      const CutRegion* best = picks[0];
      bool output;
      if (const auto it = memo.find(best->cut->fp);
          options_.fast_path && it != memo.end()) {
        UpdateMetrics::Get().memo_hits->Add(1);
        output = it->second;
      } else {
        UpdateMetrics::Get().evals->Add(1);
        output = db_->Eval(best->cut->trapdoor, tid);
        memo.emplace(best->cut->fp, output);
      }
      if (output == best->label_for_region) {
        cand = Clip(cand, best->region_b, best->region_e);
      } else {
        cand = ClipComplement(cand, best->region_b, best->region_e, k);
      }
      assert(!cand.empty());
      continue;
    }

    // Batched round: resolve memoised cuts for free, dedupe the rest by
    // trapdoor fingerprint (sibling/fragmented cuts share one lane) and ship
    // every remaining Θ in a single round trip.
    struct Decision {
      const CutRegion* r;
      bool memoized;
      bool value;   // when memoized
      size_t lane;  // when not
    };
    std::vector<Decision> decisions;
    std::unordered_map<TrapdoorFp, size_t, TrapdoorFpHash> lane_by_fp;
    for (const CutRegion* r : picks) {
      if (const auto it = memo.find(r->cut->fp);
          options_.fast_path && it != memo.end()) {
        UpdateMetrics::Get().memo_hits->Add(1);
        decisions.push_back(Decision{r, true, it->second, 0});
        continue;
      }
      const auto [lit, inserted] = lane_by_fp.try_emplace(r->cut->fp, 0);
      if (inserted) {
        lit->second = probe_round.Add(r->cut->trapdoor, tid);
        UpdateMetrics::Get().evals->Add(1);
      }
      decisions.push_back(Decision{r, false, false, lit->second});
    }
    probe_round.Flush();
    for (const Decision& d : decisions) {
      const bool output = d.memoized ? d.value : probe_round.ResultOf(d.lane);
      if (!d.memoized) memo.emplace(d.r->cut->fp, output);
      // Every outcome is ground truth about the tuple, so applying the
      // whole round keeps the true position in `cand` (later cuts may
      // simply stop narrowing).
      if (output == d.r->label_for_region) {
        cand = Clip(cand, d.r->region_b, d.r->region_e);
      } else {
        cand = ClipComplement(cand, d.r->region_b, d.r->region_e, k);
      }
      assert(!cand.empty());
    }
  }

  if (Total(cand) == 1) {
    pop.AddTuple(pop.pid_at(cand[0].b), tid);
    return;
  }

  // No usable cut separates the remaining candidates (possible only when
  // sibling-less BETWEEN cuts guard the boundary). Coarsen: merge the whole
  // candidate span into one partition — always knowledge-safe — and place
  // the tuple there.
  const size_t span_b = cand.front().b;
  size_t span_e = 0;
  for (const auto& iv : cand) span_e = std::max(span_e, iv.e);
  UpdateMetrics::Get().coarsen_merges->Add(span_e - span_b);
  for (size_t i = span_b; i < span_e; ++i) pop.MergeAt(span_b);
  pop.AddTuple(pop.pid_at(span_b), tid);
}

void PrkbIndex::BatchPlace(edbms::AttrId attr,
                           const std::vector<TupleId>& tids) {
  if (tids.empty()) return;
  if (tids.size() == 1 || options_.sequential_probes) {
    // Lock-step buys nothing for one tuple, and the sequential-probes
    // ablation wants one blocking trip per probe anyway.
    for (TupleId tid : tids) PlaceTuple(attr, tid);
    return;
  }
  const obs::ObsTracer::Span span("update.batch_place");
  Pop& pop = pops_.at(attr);
  size_t start = 0;
  if (pop.k() == 0) {
    UpdateMetrics::Get().placements->Add(1);
    pop.InitSingle(std::vector<TupleId>{tids[0]});
    start = 1;
  }
  if (pop.k() == 1) {
    // No cuts to search: every tuple lands in the sole partition, exactly
    // as the eager sequence would have placed it.
    for (size_t i = start; i < tids.size(); ++i) {
      UpdateMetrics::Get().placements->Add(1);
      pop.AddTuple(pop.pid_at(0), tids[i]);
    }
    return;
  }

  const PlacementGeometry geo(pop);
  const size_t k = geo.k;
  const size_t fanout = options_.probe_fanout < 2 ? 2 : options_.probe_fanout;
  const size_t npicks = fanout - 1;

  struct Search {
    TupleId tid;
    std::vector<Interval> cand;
    std::unordered_map<TrapdoorFp, bool, TrapdoorFpHash> memo;
    bool searching = true;
  };
  std::vector<Search> searches;
  searches.reserve(tids.size());
  for (TupleId tid : tids) {
    searches.push_back(Search{tid, {Interval{0, k - 1}}, {}, true});
  }

  // Lock-step rounds: every still-narrowing tuple contributes its round's
  // picks to ONE shared probe round. The geometry is fixed and each tuple's
  // picks depend only on its own candidate set, so the per-tuple
  // (cut, tuple) evaluations are exactly the eager sequential placement's —
  // only the round trips collapse (the ≥3× of BENCH_write_heavy.json).
  struct Decision {
    Search* s;
    const CutRegion* r;
    bool memoized;
    bool value;   // when memoized
    size_t lane;  // when not
  };
  ProbeRound probe_round(db_);
  std::vector<const CutRegion*> picks;
  std::vector<Decision> decisions;
  std::unordered_map<TrapdoorFp, size_t, TrapdoorFpHash> lane_by_fp;
  for (;;) {
    decisions.clear();
    for (Search& s : searches) {
      if (!s.searching) continue;
      if (Total(s.cand) <= 1) {
        s.searching = false;
        continue;
      }
      geo.ComputePicks(s.cand, fanout, npicks, &picks);
      if (picks.empty()) {
        s.searching = false;  // coarsen fallback, handled after the loop
        continue;
      }
      lane_by_fp.clear();  // lanes dedupe per (tuple, round), as in PlaceTuple
      for (const CutRegion* r : picks) {
        if (const auto it = s.memo.find(r->cut->fp);
            options_.fast_path && it != s.memo.end()) {
          UpdateMetrics::Get().memo_hits->Add(1);
          decisions.push_back(Decision{&s, r, true, it->second, 0});
          continue;
        }
        const auto [lit, inserted] = lane_by_fp.try_emplace(r->cut->fp, 0);
        if (inserted) {
          lit->second = probe_round.Add(r->cut->trapdoor, s.tid);
          UpdateMetrics::Get().evals->Add(1);
        }
        decisions.push_back(Decision{&s, r, false, false, lit->second});
      }
    }
    if (decisions.empty()) break;
    probe_round.Flush();
    for (const Decision& d : decisions) {
      const bool output = d.memoized ? d.value : probe_round.ResultOf(d.lane);
      if (!d.memoized) d.s->memo.emplace(d.r->cut->fp, output);
      if (output == d.r->label_for_region) {
        d.s->cand = Clip(d.s->cand, d.r->region_b, d.r->region_e);
      } else {
        d.s->cand = ClipComplement(d.s->cand, d.r->region_b, d.r->region_e, k);
      }
      assert(!d.s->cand.empty());
    }
  }

  // Resolved tuples land first, in append order. AddTuple never moves cuts
  // or positions, so every resolved position stays valid throughout.
  std::vector<TupleId> unresolved;
  for (Search& s : searches) {
    if (Total(s.cand) == 1) {
      UpdateMetrics::Get().placements->Add(1);
      pop.AddTuple(pop.pid_at(s.cand[0].b), s.tid);
    } else {
      unresolved.push_back(s.tid);
    }
  }
  // The rare coarsen cases (sibling-less BETWEEN cuts guarding the boundary)
  // re-run the scalar placement, which merges the blocked span against the
  // *current* chain — simpler and safer than patching candidate positions
  // through earlier tuples' merges, at the price of re-paying those few
  // tuples' probes.
  for (TupleId tid : unresolved) PlaceTuple(attr, tid);
}

void PrkbIndex::FlushBuffered(edbms::AttrId attr) {
  Pop& pop = pops_.at(attr);
  if (pop.insert_buffer().Empty()) return;
  const obs::ObsTracer::Span span("update.buffer_flush");
  std::vector<TupleId> tids;
  tids.reserve(pop.insert_buffer().Size());
  pop.insert_buffer().AppendTo(&tids);
  BatchPlace(attr, tids);  // AddTuple/InitSingle drain the buffer as they go
  UpdateMetrics::Get().buffer_flushes->Add(1);
  UpdateMetrics::Get().flush_batch_size->Record(tids.size());
  pop.NoteBufferFlushed(tids.size());
}

void PrkbIndex::BufferAppendAttr(edbms::AttrId attr, TupleId tid) {
  Pop& pop = pops_.at(attr);
  pop.BufferAppend(tid);
  UpdateMetrics::Get().buffer_appends->Add(1);
  if (options_.max_buffered_inserts > 0 &&
      pop.insert_buffer().Size() >= options_.max_buffered_inserts) {
    FlushBuffered(attr);
  }
}

edbms::TupleId PrkbIndex::Insert(const std::vector<edbms::Value>& row,
                                 edbms::SelectionStats* stats) {
  // StatsScope fills every field (the old manual fill left qpf_batches
  // stale when the caller reused a stats struct across operations).
  edbms::StatsScope scope(db_, stats, "insert");
  const TupleId tid = db_->Insert(row);
  for (auto& [attr, pop] : pops_) {
    (void)pop;
    if (options_.buffered_inserts) {
      BufferAppendAttr(attr, tid);
    } else {
      PlaceTuple(attr, tid);
    }
  }
  CommitWal();
  return tid;
}

void PrkbIndex::PlaceStored(edbms::TupleId tid, edbms::SelectionStats* stats) {
  // Distinct registry op from "insert" so a sharded insert reads as one
  // insert plus per-shard placements, not N inserts.
  edbms::StatsScope scope(db_, stats, "place");
  for (auto& [attr, pop] : pops_) {
    (void)pop;
    if (options_.buffered_inserts) {
      BufferAppendAttr(attr, tid);
    } else {
      PlaceTuple(attr, tid);
    }
  }
  CommitWal();
}

void PrkbIndex::Delete(edbms::TupleId tid) {
  db_->Delete(tid);
  EraseFromChains(tid);
}

void PrkbIndex::EraseFromChains(edbms::TupleId tid) {
  for (auto& [attr, pop] : pops_) {
    (void)attr;
    if (pop.partition_of(tid) != Pop::kNoPartition ||
        pop.insert_buffer().Contains(tid)) {
      pop.RemoveTuple(tid);
    }
  }
  CommitWal();
}

}  // namespace prkb::core
