#ifndef PRKB_PRKB_CONCURRENT_H_
#define PRKB_PRKB_CONCURRENT_H_

#include <array>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "prkb/selection.h"
#include "prkb/wal.h"

namespace prkb::core {

/// Lock telemetry for ConcurrentPrkbIndex (docs/OBSERVABILITY.md):
/// acquisition counts per mode, time spent blocked acquiring any lock, and
/// how often an optimistic shared-lock Select had to fall back to the
/// exclusive mutation path.
struct LockMetrics {
  obs::Counter* shared_acquisitions;
  obs::Counter* exclusive_acquisitions;
  obs::Counter* select_retries;
  obs::LatencyHistogram* wait_ns;

  static const LockMetrics& Get() {
    static const LockMetrics m = {
        obs::MetricsRegistry::Global().GetCounter(
            "prkb.lock.shared_acquisitions"),
        obs::MetricsRegistry::Global().GetCounter(
            "prkb.lock.exclusive_acquisitions"),
        obs::MetricsRegistry::Global().GetCounter("prkb.lock.select_retries"),
        obs::MetricsRegistry::Global().GetHistogram("prkb.lock.wait_ns"),
    };
    return m;
  }
};

/// Thread-safe facade over PrkbIndex for multi-client service providers.
///
/// PRKB selections are *potential* writes: answering a fresh predicate may
/// split partitions (updatePRKB). But a repeated predicate is answerable from
/// the fast-path cache without touching the chain, and on realistic workloads
/// repeats dominate — so serialising everything behind one mutex wastes
/// nearly all available parallelism on the cheapest operations.
///
/// Locking protocol (two levels, strictly ordered — map before stripes,
/// stripes in ascending index, never upgraded in place):
///   - `map_mu_` guards the attr → chain map structure and, when held
///     exclusively, every chain at once. Multi-attribute operations (Insert,
///     Delete, MD/SD+ range queries, EnableAttr, WithLocked) take it
///     exclusively and need no stripe locks.
///   - 16 stripe locks (attr mod 16) guard individual chain contents among
///     concurrent readers of `map_mu_`. Single-predicate Select first runs
///     optimistically under map-shared + stripe-shared via
///     PrkbIndex::TrySelectShared, which builds the predicate's physical
///     plan and runs it only if it is provably read-only — cache hits, empty
///     chains and no-index baseline scans complete here, concurrently with
///     each other, even on the same attribute. When the plan might mutate
///     the chain, all locks are released and the operation retries under
///     map-shared + stripe-exclusive, which serialises mutations
///     per-attribute while leaving other attributes' selections running.
///
/// The retry is a fresh acquisition, not an upgrade, so another thread may
/// answer (and cache) the same predicate in between — the retry then simply
/// takes Select's own cache-hit branch. The underlying algorithms stay
/// single-threaded and auditable; sampling randomness is per-operation
/// (PrkbIndex::OpRng), so shared-lock readers never contend on RNG state.
class ConcurrentPrkbIndex {
 public:
  ConcurrentPrkbIndex(edbms::Edbms* db, PrkbOptions options = {})
      : index_(db, options) {}

  void EnableAttr(edbms::AttrId attr) {
    const auto lock = LockExclusive(map_mu_);
    index_.EnableAttr(attr);
    MaybeCompactWal();
  }

  /// Durable serving: opens (recovering) a WAL on the inner index, under the
  /// exclusive lock. auto_compact is forced off — compaction snapshots every
  /// chain at once, which is only safe under the exclusive map lock, so this
  /// facade runs deferred compactions itself at its exclusive points.
  Status OpenWal(const std::string& dir, WalOptions options = {}) {
    const auto lock = LockExclusive(map_mu_);
    if (wal_ != nullptr) {
      return Status::InvalidArgument("WAL already open");
    }
    options.auto_compact = false;
    PRKB_ASSIGN_OR_RETURN(wal_, PrkbWal::Open(&index_, dir, options));
    return Status::Ok();
  }

  /// The attached WAL (for `.wal` status lines), or nullptr.
  PrkbWal* wal() const { return wal_.get(); }

  Status CompactWal() {
    const auto lock = LockExclusive(map_mu_);
    if (wal_ == nullptr) return Status::InvalidArgument("no WAL open");
    return wal_->Compact();
  }

  /// Detaches and destroys the WAL (committing pending records first).
  void CloseWal() {
    const auto lock = LockExclusive(map_mu_);
    wal_.reset();
  }

  std::vector<edbms::TupleId> Select(const edbms::Trapdoor& td,
                                     edbms::SelectionStats* stats = nullptr) {
    {
      const auto map_lock = LockShared(map_mu_);
      const auto stripe_lock = LockShared(StripeFor(td.attr));
      std::vector<edbms::TupleId> out;
      if (index_.TrySelectShared(td, &out, stats)) return out;
    }
    LockMetrics::Get().select_retries->Add(1);
    const auto map_lock = LockShared(map_mu_);
    const auto stripe_lock = LockExclusive(StripeFor(td.attr));
    return index_.Select(td, stats);
  }

  std::vector<edbms::TupleId> SelectRangeMd(
      const std::vector<edbms::Trapdoor>& tds,
      edbms::SelectionStats* stats = nullptr) {
    const auto lock = LockExclusive(map_mu_);
    auto out = index_.SelectRangeMd(tds, stats);
    MaybeCompactWal();
    return out;
  }

  std::vector<edbms::TupleId> SelectRangeSdPlus(
      const std::vector<edbms::Trapdoor>& tds,
      edbms::SelectionStats* stats = nullptr) {
    const auto lock = LockExclusive(map_mu_);
    auto out = index_.SelectRangeSdPlus(tds, stats);
    MaybeCompactWal();
    return out;
  }

  edbms::TupleId Insert(const std::vector<edbms::Value>& row,
                        edbms::SelectionStats* stats = nullptr) {
    // Buffered route (DESIGN.md §14): an insert is one store write plus an
    // O(1) append per enabled chain — no placement probes. The store append
    // mutates the encrypted table's column storage, which map-shared
    // selections read while evaluating QPF, so it must run at a
    // map-exclusive point like every other store write; it is brief local
    // work, and the win over the eager path is that no placement rounds
    // execute under any lock. The chain appends then run map-shared with
    // stripe-exclusive, serialising against same-attribute selections only.
    // A cap-triggered flush inside BufferAppendAttr mutates the chain under
    // exactly the locks the mutating-Select retry path holds.
    if (index_.options().buffered_inserts) {
      edbms::StatsScope scope(index_.db(), stats, "insert");
      edbms::TupleId tid;
      {
        const auto map_lock = LockExclusive(map_mu_);
        tid = index_.db()->Insert(row);
      }
      const auto map_lock = LockShared(map_mu_);
      for (const edbms::AttrId attr : index_.EnabledAttrs()) {
        const auto stripe_lock = LockExclusive(StripeFor(attr));
        index_.BufferAppendAttr(attr, tid);
      }
      // Group-commit the append records; compaction stays deferred to the
      // next exclusive point (it snapshots every chain at once).
      if (wal_ != nullptr) (void)wal_->Commit();
      return tid;
    }
    const auto lock = LockExclusive(map_mu_);
    const auto tid = index_.Insert(row, stats);
    MaybeCompactWal();
    return tid;
  }

  void Delete(edbms::TupleId tid) {
    const auto lock = LockExclusive(map_mu_);
    index_.Delete(tid);
    MaybeCompactWal();
  }

  /// Chain-only halves of Insert/Delete for the sharded router
  /// (ShardedPrkbIndex), which owns the single store operation itself and
  /// fans these across shards. Same exclusive locking as Insert/Delete.
  void PlaceStored(edbms::TupleId tid,
                   edbms::SelectionStats* stats = nullptr) {
    // Same buffered route as Insert, minus the store write (the sharded
    // router already owns that half).
    if (index_.options().buffered_inserts) {
      const auto map_lock = LockShared(map_mu_);
      edbms::StatsScope scope(index_.db(), stats, "place");
      for (const edbms::AttrId attr : index_.EnabledAttrs()) {
        const auto stripe_lock = LockExclusive(StripeFor(attr));
        index_.BufferAppendAttr(attr, tid);
      }
      if (wal_ != nullptr) (void)wal_->Commit();
      return;
    }
    const auto lock = LockExclusive(map_mu_);
    index_.PlaceStored(tid, stats);
    MaybeCompactWal();
  }

  void EraseFromChains(edbms::TupleId tid) {
    const auto lock = LockExclusive(map_mu_);
    index_.EraseFromChains(tid);
    MaybeCompactWal();
  }

  bool IsEnabled(edbms::AttrId attr) const {
    const auto map_lock = LockShared(map_mu_);
    return index_.IsEnabled(attr);
  }

  PrkbIndex::ChainStats StatsFor(edbms::AttrId attr) const {
    const auto map_lock = LockShared(map_mu_);
    const auto stripe_lock = LockShared(StripeFor(attr));
    return index_.StatsFor(attr);
  }

  std::vector<edbms::AttrId> EnabledAttrs() const {
    const auto map_lock = LockShared(map_mu_);
    return index_.EnabledAttrs();
  }

  /// The inner index's online cost calibrator. Internally synchronised —
  /// shared-lock selections feed it concurrently — so no map or stripe lock
  /// is taken here. Per facade instance: each shard of a ShardedPrkbIndex
  /// calibrates its own transport latency.
  exec::CostCalibrator& calibrator() const { return index_.calibrator(); }

  size_t SizeBytes() const {
    const auto map_lock = LockShared(map_mu_);
    const auto stripe_locks = LockAllStripesShared();
    return index_.SizeBytes();
  }

  std::string DescribeStats() const {
    const auto map_lock = LockShared(map_mu_);
    const auto stripe_locks = LockAllStripesShared();
    return index_.DescribeStats();
  }

  /// Runs `fn` under the exclusive lock with direct access to the inner
  /// index (for snapshots, validation, or anything not covered above).
  template <typename Fn>
  auto WithLocked(Fn&& fn) {
    const auto lock = LockExclusive(map_mu_);
    return fn(index_);
  }

 private:
  static constexpr size_t kStripes = 16;

  /// Runs a compaction the stripe-locked Select path had to defer. Caller
  /// must hold map_mu_ exclusively.
  void MaybeCompactWal() {
    if (wal_ != nullptr && wal_->compact_pending()) (void)wal_->Compact();
  }

  std::shared_mutex& StripeFor(edbms::AttrId attr) const {
    return stripes_[attr % kStripes];
  }

  static std::shared_lock<std::shared_mutex> LockShared(
      std::shared_mutex& mu) {
    const uint64_t t0 = obs::ObsTracer::NowNs();
    std::shared_lock<std::shared_mutex> lock(mu);
    const LockMetrics& m = LockMetrics::Get();
    m.wait_ns->Record(obs::ObsTracer::NowNs() - t0);
    m.shared_acquisitions->Add(1);
    return lock;
  }

  static std::unique_lock<std::shared_mutex> LockExclusive(
      std::shared_mutex& mu) {
    const uint64_t t0 = obs::ObsTracer::NowNs();
    std::unique_lock<std::shared_mutex> lock(mu);
    const LockMetrics& m = LockMetrics::Get();
    m.wait_ns->Record(obs::ObsTracer::NowNs() - t0);
    m.exclusive_acquisitions->Add(1);
    return lock;
  }

  /// Whole-index readers hold every stripe; ascending order keeps the
  /// acquisition graph acyclic against the single-stripe paths.
  std::array<std::shared_lock<std::shared_mutex>, kStripes>
  LockAllStripesShared() const {
    std::array<std::shared_lock<std::shared_mutex>, kStripes> locks;
    for (size_t i = 0; i < kStripes; ++i) {
      locks[i] = LockShared(stripes_[i]);
    }
    return locks;
  }

  mutable std::shared_mutex map_mu_;
  mutable std::array<std::shared_mutex, kStripes> stripes_;
  PrkbIndex index_;
  /// Declared after index_ so destruction detaches the WAL first.
  std::unique_ptr<PrkbWal> wal_;
};

}  // namespace prkb::core

#endif  // PRKB_PRKB_CONCURRENT_H_
