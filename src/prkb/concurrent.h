#ifndef PRKB_PRKB_CONCURRENT_H_
#define PRKB_PRKB_CONCURRENT_H_

#include <mutex>
#include <vector>

#include "prkb/selection.h"

namespace prkb::core {

/// Thread-safe facade over PrkbIndex for multi-client service providers.
///
/// PRKB selections are *writes*: answering a query may split partitions
/// (updatePRKB), so every operation takes the exclusive lock. The value of
/// this wrapper is a correct, boringly simple concurrency story — the
/// underlying algorithms stay single-threaded and auditable, matching how
/// the paper treats the index (a per-attribute SP-side structure mutated by
/// its own query stream). Throughput scales by sharding tables across
/// instances, not by intra-index parallelism.
class ConcurrentPrkbIndex {
 public:
  ConcurrentPrkbIndex(edbms::Edbms* db, PrkbOptions options = {})
      : index_(db, options) {}

  void EnableAttr(edbms::AttrId attr) {
    std::lock_guard<std::mutex> lock(mu_);
    index_.EnableAttr(attr);
  }

  std::vector<edbms::TupleId> Select(const edbms::Trapdoor& td,
                                     edbms::SelectionStats* stats = nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    return index_.Select(td, stats);
  }

  std::vector<edbms::TupleId> SelectRangeMd(
      const std::vector<edbms::Trapdoor>& tds,
      edbms::SelectionStats* stats = nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    return index_.SelectRangeMd(tds, stats);
  }

  std::vector<edbms::TupleId> SelectRangeSdPlus(
      const std::vector<edbms::Trapdoor>& tds,
      edbms::SelectionStats* stats = nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    return index_.SelectRangeSdPlus(tds, stats);
  }

  edbms::TupleId Insert(const std::vector<edbms::Value>& row,
                        edbms::SelectionStats* stats = nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    return index_.Insert(row, stats);
  }

  void Delete(edbms::TupleId tid) {
    std::lock_guard<std::mutex> lock(mu_);
    index_.Delete(tid);
  }

  size_t SizeBytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return index_.SizeBytes();
  }

  std::string DescribeStats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return index_.DescribeStats();
  }

  /// Runs `fn` under the lock with direct access to the inner index (for
  /// snapshots, validation, or anything not covered above).
  template <typename Fn>
  auto WithLocked(Fn&& fn) {
    std::lock_guard<std::mutex> lock(mu_);
    return fn(index_);
  }

 private:
  mutable std::mutex mu_;
  PrkbIndex index_;
};

}  // namespace prkb::core

#endif  // PRKB_PRKB_CONCURRENT_H_
