#include "prkb/shard.h"

#include <algorithm>
#include <map>
#include <thread>
#include <unordered_set>
#include <utility>

namespace prkb::core {

ShardedPrkbIndex::ShardedPrkbIndex(edbms::Edbms* db, size_t num_shards,
                                   PrkbOptions options)
    : db_(db) {
  if (num_shards < 1) num_shards = 1;
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<ConcurrentPrkbIndex>(db, options));
    shard_selects_.push_back(std::make_unique<std::atomic<uint64_t>>(0));
    shard_placements_.push_back(std::make_unique<std::atomic<uint64_t>>(0));
  }
}

void ShardedPrkbIndex::EnableAttr(edbms::AttrId attr) {
  Owner(attr).EnableAttr(attr);
}

bool ShardedPrkbIndex::IsEnabled(edbms::AttrId attr) const {
  return shards_[ShardOf(attr)]->IsEnabled(attr);
}

Status ShardedPrkbIndex::OpenWal(const std::string& dir, WalOptions options) {
  for (size_t i = 0; i < shards_.size(); ++i) {
    PRKB_RETURN_IF_ERROR(
        shards_[i]->OpenWal(dir + "/shard-" + std::to_string(i), options));
  }
  return Status::Ok();
}

Status ShardedPrkbIndex::CompactWal() {
  for (auto& shard : shards_) PRKB_RETURN_IF_ERROR(shard->CompactWal());
  return Status::Ok();
}

std::vector<edbms::AttrId> ShardedPrkbIndex::EnabledAttrs() const {
  std::vector<edbms::AttrId> out;
  for (const auto& shard : shards_) {
    const auto attrs = shard->EnabledAttrs();
    out.insert(out.end(), attrs.begin(), attrs.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<edbms::TupleId> ShardedPrkbIndex::Select(
    const edbms::Trapdoor& td, edbms::SelectionStats* stats) {
  ShardMetrics::Get().selects_routed->Add(1);
  shard_selects_[ShardOf(td.attr)]->fetch_add(1, std::memory_order_relaxed);
  return Owner(td.attr).Select(td, stats);
}

std::vector<edbms::TupleId> ShardedPrkbIndex::SelectRangeMd(
    const std::vector<edbms::Trapdoor>& tds, edbms::SelectionStats* stats) {
  if (tds.empty()) return {};
  // Group the dimensions by owning shard; std::map keeps group order stable
  // across runs regardless of the hash.
  std::map<size_t, std::vector<edbms::Trapdoor>> groups;
  for (const auto& td : tds) groups[ShardOf(td.attr)].push_back(td);

  if (groups.size() == 1) {
    ShardMetrics::Get().md_colocated->Add(1);
    return shards_[groups.begin()->first]->SelectRangeMd(tds, stats);
  }

  // Cross-shard composition: each shard answers its own dimensions (grid
  // pruning survives within a group), the router intersects. Exact winner
  // sets; the forgone cross-group pruning is the sharding tax.
  ShardMetrics::Get().md_composed->Add(1);
  const edbms::StatsScope scope(db_, stats, "select_md");
  std::vector<std::vector<edbms::TupleId>> sets;
  sets.reserve(groups.size());
  for (auto& [shard, group] : groups) {
    if (group.size() == 1) {
      sets.push_back(shards_[shard]->Select(group[0]));
    } else {
      sets.push_back(shards_[shard]->SelectRangeMd(group));
    }
  }
  return Intersect(std::move(sets));
}

std::vector<edbms::TupleId> ShardedPrkbIndex::SelectRangeSdPlus(
    const std::vector<edbms::Trapdoor>& tds, edbms::SelectionStats* stats) {
  if (tds.empty()) return {};
  std::map<size_t, std::vector<edbms::Trapdoor>> groups;
  for (const auto& td : tds) groups[ShardOf(td.attr)].push_back(td);

  if (groups.size() == 1) {
    return shards_[groups.begin()->first]->SelectRangeSdPlus(tds, stats);
  }

  // SD+ is already per-predicate select + intersect, so the cross-shard
  // composition is semantically identical; only probe-round fusion across
  // groups is lost.
  const edbms::StatsScope scope(db_, stats, "select_sdplus");
  std::vector<std::vector<edbms::TupleId>> sets;
  sets.reserve(groups.size());
  for (auto& [shard, group] : groups) {
    sets.push_back(shards_[shard]->SelectRangeSdPlus(group));
  }
  return Intersect(std::move(sets));
}

edbms::TupleId ShardedPrkbIndex::Insert(const std::vector<edbms::Value>& row,
                                        edbms::SelectionStats* stats) {
  const edbms::StatsScope scope(db_, stats, "insert");
  edbms::TupleId tid = 0;
  {
    const std::lock_guard<std::mutex> lock(store_mu_);
    tid = db_->Insert(row);
  }
  // Fan placement across the populated shards. Each shard takes only its own
  // exclusive lock, so selections on the other shards keep running — this
  // parallel section is the write-scaling win the sharding exists for.
  std::vector<size_t> populated;
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (!shards_[i]->EnabledAttrs().empty()) populated.push_back(i);
  }
  if (populated.empty()) return tid;
  ShardMetrics::Get().fan_placements->Add(populated.size());
  for (const size_t i : populated) {
    shard_placements_[i]->fetch_add(1, std::memory_order_relaxed);
  }
  if (populated.size() == 1) {
    shards_[populated[0]]->PlaceStored(tid);
    return tid;
  }
  // Plain threads, not the shared pool: placement issues QPF rounds that may
  // themselves lean on the pool, and nesting pool waits can deadlock.
  std::vector<std::thread> fan;
  fan.reserve(populated.size() - 1);
  for (size_t j = 1; j < populated.size(); ++j) {
    fan.emplace_back(
        [this, tid, i = populated[j]] { shards_[i]->PlaceStored(tid); });
  }
  shards_[populated[0]]->PlaceStored(tid);
  for (auto& t : fan) t.join();
  return tid;
}

void ShardedPrkbIndex::Delete(edbms::TupleId tid) {
  {
    const std::lock_guard<std::mutex> lock(store_mu_);
    db_->Delete(tid);
  }
  // Chain unlinking is QPF-free and cheap; sequential fan keeps it simple.
  ShardMetrics::Get().fan_erases->Add(shards_.size());
  for (auto& shard : shards_) shard->EraseFromChains(tid);
}

PrkbIndex::ChainStats ShardedPrkbIndex::StatsFor(edbms::AttrId attr) const {
  return shards_[ShardOf(attr)]->StatsFor(attr);
}

size_t ShardedPrkbIndex::SizeBytes() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->SizeBytes();
  return total;
}

std::vector<ShardedPrkbIndex::ShardReport> ShardedPrkbIndex::Describe() const {
  std::vector<ShardReport> out;
  out.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    ShardReport r;
    r.shard = i;
    r.attrs = shards_[i]->EnabledAttrs();
    r.chains = r.attrs.size();
    for (const edbms::AttrId attr : r.attrs) {
      const auto cs = shards_[i]->StatsFor(attr);
      r.tuples += cs.tuples;
      r.bytes += cs.bytes;
    }
    r.selects = shard_selects_[i]->load(std::memory_order_relaxed);
    r.placements = shard_placements_[i]->load(std::memory_order_relaxed);
    const exec::CostCalibrator::Snapshot cal =
        shards_[i]->calibrator().snapshot();
    r.cal_rt_latency_ns = cal.rt_latency_ns;
    r.cal_eval_ns = cal.eval_ns;
    r.cal_rt_samples = cal.rt_samples;
    out.push_back(std::move(r));
  }
  return out;
}

std::vector<edbms::TupleId> ShardedPrkbIndex::Intersect(
    std::vector<std::vector<edbms::TupleId>> sets) {
  if (sets.empty()) return {};
  // Start from the smallest set; membership-test against the rest.
  size_t smallest = 0;
  for (size_t i = 1; i < sets.size(); ++i) {
    if (sets[i].size() < sets[smallest].size()) smallest = i;
  }
  std::vector<edbms::TupleId> out = std::move(sets[smallest]);
  for (size_t i = 0; i < sets.size(); ++i) {
    if (i == smallest || out.empty()) continue;
    const std::unordered_set<edbms::TupleId> members(sets[i].begin(),
                                                     sets[i].end());
    std::erase_if(out,
                  [&members](edbms::TupleId t) { return !members.contains(t); });
  }
  return out;
}

}  // namespace prkb::core
