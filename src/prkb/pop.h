#ifndef PRKB_PRKB_POP_H_
#define PRKB_PRKB_POP_H_

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "common/serial.h"
#include "common/status.h"
#include "edbms/encryption.h"
#include "edbms/types.h"
#include "prkb/fingerprint.h"
#include "prkb/insert_buffer.h"
#include "prkb/memberset.h"

namespace prkb::core {

/// Identifier of a partition. Stable across chain mutations (splits shift
/// chain *positions*, never ids) but NOT across snapshot round trips —
/// persistence references partitions by chain position and cuts by id.
using PartitionId = uint32_t;

/// Observer of chain mutations. The WAL (prkb/wal.h) implements this to turn
/// every knowledge-changing operation into a log record; replay re-runs the
/// same operations with the listener detached. Callbacks fire *after* the
/// mutation, under whatever lock the caller already holds.
///
/// The callback arguments are chosen to be replayable: partitions are
/// identified by chain position (stable across snapshot round trips, exact at
/// replay time because records apply in order) and cuts by id (persisted
/// verbatim by the v2 snapshot and reassigned deterministically by
/// SplitPartition during replay).
class PopListener {
 public:
  virtual ~PopListener() = default;
  /// InitSingle re-seeded the chain with one partition holding `members`.
  virtual void OnInit(const MemberSet& members) = 0;
  /// A split put `left_members` at chain position `left_pos` and the
  /// remainder at `left_pos`+1, separated by a new cut built from `td`.
  virtual void OnSplit(size_t left_pos, const MemberSet& left_members,
                       const edbms::Trapdoor& td, bool left_label) = 0;
  virtual void OnLinkBetween(uint64_t low_cut, uint64_t high_cut) = 0;
  virtual void OnAdd(size_t pos, edbms::TupleId tid) = 0;
  virtual void OnRemove(edbms::TupleId tid) = 0;
  virtual void OnMerge(size_t pos) = 0;
  virtual void OnRememberComparison(uint64_t cut_id) = 0;
  virtual void OnRememberBetween(uint64_t low_cut, uint64_t high_cut) = 0;
  /// A tuple was appended to the insert buffer (deferred placement).
  virtual void OnBufferAppend(edbms::TupleId tid) = 0;
  /// A buffer flush completed: `placed` tuples left the buffer for the chain
  /// (the individual placements were reported via OnAdd/OnInit/OnSplit).
  virtual void OnBufferFlush(size_t placed) = 0;
};

/// Partial order partitions POPᶜₖ of one attribute (Def. 4.2): an ordered
/// chain of disjoint tuple groups P₁ ↦ P₂ ↦ … ↦ Pₖ such that all plain values
/// in each group are strictly on one side of each neighbouring group — in an
/// unknown global direction. This is the *entire* content of the PRKB for an
/// attribute (Sec. 4): the service provider derives it purely from observed
/// QPF outputs.
///
/// Alongside the chain we remember, per known separating point, the trapdoor
/// that created it (a "cut"). Cuts power insertion handling (Sec. 7.1): an
/// O(lg k) binary search re-evaluates old trapdoors on the new tuple.
///
/// Membership is stored compressed (MemberSet); all iteration is in
/// ascending tuple-id order, so winner assembly and serialisation are
/// deterministic functions of the chain state.
class Pop {
 public:
  static constexpr PartitionId kNoPartition =
      std::numeric_limits<PartitionId>::max();
  static constexpr uint64_t kNoCut = std::numeric_limits<uint64_t>::max();

  /// A known separating point and the encrypted predicate that produced it.
  struct Cut {
    uint64_t id = kNoCut;
    /// Partition immediately left of the cut in chain order.
    PartitionId left_pid = kNoPartition;
    edbms::Trapdoor trapdoor;
    /// Fingerprint of `trapdoor`, cached so fast-path invalidation and
    /// insert-time evaluation dedup never re-hash the blob.
    TrapdoorFp fp;
    /// For comparison trapdoors: the QPF output of every tuple on the
    /// chain-left side of this cut.
    bool left_label = false;
    /// For BETWEEN trapdoors: the cut at the other end of the satisfied
    /// region, or kNoCut when that end never produced a split.
    uint64_t sibling = kNoCut;
    bool dropped = false;

    /// A cut can steer an insertion search iff its trapdoor output can be
    /// translated into a chain side: always true for comparisons, and true
    /// for BETWEEN only when both ends are known.
    bool UsableForInsert() const {
      return !dropped && (trapdoor.kind == edbms::PredicateKind::kComparison ||
                          sibling != kNoCut);
    }
  };

  Pop() = default;

  /// initPRKB (Sec. 4): one big partition holding tuples 0..n-1.
  void InitSingle(size_t num_tuples);
  /// initPRKB over an explicit tuple set (e.g. live rows only).
  void InitSingle(const std::vector<edbms::TupleId>& tuples);

  /// --- Chain geometry -----------------------------------------------------

  /// k — number of partitions.
  size_t k() const { return chain_.size(); }
  /// Number of tuples currently covered by the chain.
  size_t num_tuples() const { return num_tuples_; }

  PartitionId pid_at(size_t pos) const { return chain_[pos]; }
  size_t pos_of(PartitionId pid) const { return pos_[pid]; }
  const MemberSet& members(PartitionId pid) const {
    return slots_[pid].members;
  }
  const MemberSet& members_at(size_t pos) const {
    return members(chain_[pos]);
  }
  /// Partition currently holding `tid`, or kNoPartition.
  PartitionId partition_of(edbms::TupleId tid) const {
    return tid < part_of_.size() ? part_of_[tid] : kNoPartition;
  }

  /// --- updatePRKB ----------------------------------------------------------

  /// Splits partition `pid` into (left_members, right_members) in chain
  /// order, recording `td` as the new cut between them. `left_label` is the
  /// QPF output of the left group under `td` (used by insertion handling for
  /// comparison trapdoors). Both halves must be non-empty and together equal
  /// the old membership. Returns the new cut's id.
  uint64_t SplitPartition(PartitionId pid,
                          const std::vector<edbms::TupleId>& left_members,
                          const std::vector<edbms::TupleId>& right_members,
                          const edbms::Trapdoor& td, bool left_label);
  /// Set-op form: the halves are already compressed (WAL replay ships only
  /// the left delta and computes right = old \ left).
  uint64_t SplitPartitionSets(PartitionId pid, MemberSet left_members,
                              MemberSet right_members,
                              const edbms::Trapdoor& td, bool left_label);

  /// Marks two cuts as the two ends of one BETWEEN trapdoor's region.
  void LinkBetweenCuts(uint64_t low_cut, uint64_t high_cut);

  /// Inserts a tuple into an existing partition (insertion handling decides
  /// which one). If the tuple is currently buffered it is drained from the
  /// buffer first — this single rule makes live flushes and WAL replay agree
  /// on the buffer state without a dedicated per-tuple flush record.
  void AddTuple(PartitionId pid, edbms::TupleId tid);

  /// Deletion handling (Sec. 7.2): drops the tuple; an emptied partition is
  /// removed from the chain and redundant cuts are retired. A tuple that is
  /// still buffered is simply dropped from the buffer (it never reached the
  /// chain, so no chain knowledge changes).
  void RemoveTuple(edbms::TupleId tid);

  /// --- Deferred inserts (DESIGN.md §14) -------------------------------------

  /// Appends a tuple to the insert buffer: O(1), zero QPF, no chain change.
  /// The tuple must not be covered by the chain or already buffered.
  void BufferAppend(edbms::TupleId tid);

  /// Records that a flush drained `placed` tuples (fires OnBufferFlush so the
  /// WAL can mark the flush boundary). The placements themselves must already
  /// have happened via AddTuple/InitSingle/SplitPartition.
  void NoteBufferFlushed(size_t placed);

  const InsertBuffer& insert_buffer() const { return buffer_; }

  /// Merges the partitions at chain positions `pos` and `pos+1` (knowledge
  /// coarsening; used when an insertion cannot side a tuple between two
  /// partitions separated only by an unusable cut). Returns the surviving
  /// partition id.
  PartitionId MergeAt(size_t pos);

  /// --- Cuts ----------------------------------------------------------------

  const std::vector<Cut>& cuts() const { return cuts_; }
  const Cut* FindCut(uint64_t id) const;
  /// Chain position of a cut: it lies between positions CutPos()-1 and
  /// CutPos(). Always in [1, k-1] for live cuts.
  size_t CutPos(const Cut& cut) const { return pos_[cut.left_pid] + 1; }

  /// --- Repeat-predicate fast path -----------------------------------------

  /// A cached zero-QPF answer anchor: the cut(s) the fingerprinted trapdoor
  /// itself carved into the chain. Comparison entries hold one cut (the
  /// satisfied side follows from its left_label); BETWEEN entries hold both
  /// sibling cuts (the satisfied band lies between them). Entries are never
  /// anchored at another predicate's cut: an alias anchor goes stale when an
  /// insert lands in the value gap between the two thresholds, whereas an
  /// own cut stays exact because insertion placement evaluates the very same
  /// trapdoor when siding the boundary.
  struct FastPathEntry {
    uint64_t cut_id = kNoCut;
    uint64_t cut_id2 = kNoCut;  // kNoCut for comparison entries
  };

  /// Records the cut a comparison trapdoor created. `cut_id`'s Cut must
  /// carry this fingerprint (own-cut invariant).
  void RememberComparison(const TrapdoorFp& fp, uint64_t cut_id);
  /// Records the two linked sibling cuts a BETWEEN trapdoor created.
  void RememberBetween(const TrapdoorFp& fp, uint64_t low_cut,
                       uint64_t high_cut);
  /// nullptr when the fingerprint is unknown. Entries whose anchor cuts get
  /// dropped are pruned eagerly by the mutating operations, so lookups never
  /// mutate and are safe under a shared lock.
  const FastPathEntry* LookupFastPath(const TrapdoorFp& fp) const;
  /// Zero-QPF answer: concatenates the members of every partition on the
  /// satisfied side of the entry's cut(s), each in ascending tuple order.
  std::vector<edbms::TupleId> AssembleFastPath(const FastPathEntry& e) const;
  size_t fast_path_entries() const { return fp_cache_.size(); }

  /// --- Persistence hooks ----------------------------------------------------

  /// Attaches (or detaches, with nullptr) a mutation observer. Not part of
  /// the serialised state; survives moves, not snapshot round trips.
  void set_listener(PopListener* listener) { listener_ = listener; }
  PopListener* listener() const { return listener_; }

  /// --- Accounting / diagnostics -------------------------------------------

  /// Index footprint (Table 3): compressed partition membership plus chain
  /// order, retained trapdoors and the fast-path cache.
  size_t SizeBytes() const;
  /// Compressed membership bytes alone (the MemberSet payloads).
  size_t MembershipBytes() const;
  /// What the membership would cost as raw vector<TupleId> storage —
  /// the pre-compression representation Table 3 originally reported.
  size_t RawMembershipBytes() const { return num_tuples_ * sizeof(edbms::TupleId); }
  /// Total MemberSet containers across the chain (memberset.containers).
  size_t MembershipContainers() const;

  /// Structural invariant check (chain/pos/membership consistency).
  Status Validate() const;

  /// Serialises the chain and its cuts (prkb_io.cc). Deterministic: members
  /// encode in ascending order, the fast-path cache fingerprint-sorted, and
  /// cut ids are preserved verbatim — so equal knowledge states encode to
  /// equal bytes, which is what the crash-recovery differential test checks.
  void EncodeTo(Encoder* enc) const;
  /// Rebuilds the chain from `dec`; returns Corruption on malformed input.
  Status DecodeFrom(Decoder* dec);

  /// Test oracle: checks the paper's knowledge invariant against ground
  /// truth — each partition is a contiguous run of the tuples ordered by
  /// plain value, and the chain is that order or its exact reverse.
  /// `plain_of[tid]` must be valid for every covered tuple.
  Status ValidateAgainstPlain(const std::vector<edbms::Value>& plain_of) const;

 private:
  struct Slot {
    MemberSet members;
    bool live = false;
  };

  PartitionId NewPartition(MemberSet members);
  void RebuildPositionsFrom(size_t pos);
  void DropCut(size_t cut_idx);

  std::vector<Slot> slots_;             // by pid
  std::vector<PartitionId> chain_;      // pos -> pid
  std::vector<uint32_t> pos_;           // pid -> pos
  std::vector<PartitionId> part_of_;    // tid -> pid
  std::vector<Cut> cuts_;
  std::unordered_map<uint64_t, size_t> cut_index_;  // cut id -> index
  std::unordered_map<TrapdoorFp, FastPathEntry, TrapdoorFpHash> fp_cache_;
  InsertBuffer buffer_;  // tuples stored but not yet placed on the chain
  uint64_t next_cut_id_ = 1;
  size_t num_tuples_ = 0;
  PopListener* listener_ = nullptr;
};

}  // namespace prkb::core

#endif  // PRKB_PRKB_POP_H_
