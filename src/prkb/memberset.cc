#include "prkb/memberset.h"

#include <algorithm>
#include <cassert>
#include <cstddef>

namespace prkb::core {

using edbms::TupleId;

namespace {

/// Number of (start, len−1) pairs an ascending uint16 sequence packs into.
size_t CountRuns(const std::vector<uint16_t>& sorted) {
  size_t runs = 0;
  for (size_t i = 0; i < sorted.size();) {
    size_t j = i + 1;
    while (j < sorted.size() && sorted[j] == sorted[j - 1] + 1) ++j;
    ++runs;
    i = j;
  }
  return runs;
}

}  // namespace

// --- Container form changes --------------------------------------------------

void MemberSet::ToBitmap(Container* c) {
  assert(c->kind != Container::kBitmap);
  std::vector<uint64_t> bits(kBitmapWords, 0);
  if (c->kind == Container::kArray) {
    for (uint16_t v : c->vals) bits[v >> 6] |= uint64_t{1} << (v & 63);
  } else {  // kRun
    for (size_t i = 0; i + 1 < c->vals.size(); i += 2) {
      const uint32_t start = c->vals[i];
      const uint32_t end = start + c->vals[i + 1];  // inclusive
      for (uint32_t v = start; v <= end; ++v) {
        bits[v >> 6] |= uint64_t{1} << (v & 63);
      }
    }
  }
  c->kind = Container::kBitmap;
  c->vals.clear();
  c->vals.shrink_to_fit();
  c->bits = std::move(bits);
}

void MemberSet::UnpackRuns(Container* c) {
  assert(c->kind == Container::kRun);
  if (c->n > kArrayMax) {
    ToBitmap(c);
    return;
  }
  std::vector<uint16_t> vals;
  vals.reserve(c->n);
  for (size_t i = 0; i + 1 < c->vals.size(); i += 2) {
    const uint32_t start = c->vals[i];
    const uint32_t end = start + c->vals[i + 1];
    for (uint32_t v = start; v <= end; ++v) {
      vals.push_back(static_cast<uint16_t>(v));
    }
  }
  c->kind = Container::kArray;
  c->vals = std::move(vals);
}

void MemberSet::Compact(Container* c) {
  // Materialise the sorted value list (cheap: n ≤ 65536), count runs, pick
  // the smallest of 2n (array), 8192 (bitmap) and 4·runs (run) bytes.
  std::vector<uint16_t> sorted;
  sorted.reserve(c->n);
  ForEachIn(*c, [&](TupleId tid) {
    sorted.push_back(static_cast<uint16_t>(tid & 0xFFFF));
  });
  const size_t runs = CountRuns(sorted);
  const size_t array_bytes = 2 * sorted.size();
  const size_t run_bytes = 4 * runs;
  const size_t bitmap_bytes = 8 * kBitmapWords;
  if (run_bytes <= array_bytes && run_bytes <= bitmap_bytes) {
    std::vector<uint16_t> pairs;
    pairs.reserve(2 * runs);
    for (size_t i = 0; i < sorted.size();) {
      size_t j = i + 1;
      while (j < sorted.size() && sorted[j] == sorted[j - 1] + 1) ++j;
      pairs.push_back(sorted[i]);
      pairs.push_back(static_cast<uint16_t>(j - i - 1));
      i = j;
    }
    c->kind = Container::kRun;
    c->vals = std::move(pairs);
    c->bits.clear();
    c->bits.shrink_to_fit();
  } else if (array_bytes <= bitmap_bytes) {
    c->kind = Container::kArray;
    c->vals = std::move(sorted);
    c->bits.clear();
    c->bits.shrink_to_fit();
  } else if (c->kind != Container::kBitmap) {
    c->kind = Container::kArray;  // ToBitmap converts from array/run
    c->vals = std::move(sorted);
    ToBitmap(c);
  }
}

size_t MemberSet::ContainerBytes(const Container& c) {
  return sizeof(Container) + c.vals.size() * sizeof(uint16_t) +
         c.bits.size() * sizeof(uint64_t);
}

// --- Container point ops -----------------------------------------------------

bool MemberSet::ContainerContains(const Container& c, uint16_t low) {
  switch (c.kind) {
    case Container::kArray:
      return std::binary_search(c.vals.begin(), c.vals.end(), low);
    case Container::kBitmap:
      return (c.bits[low >> 6] >> (low & 63)) & 1;
    case Container::kRun:
      for (size_t i = 0; i + 1 < c.vals.size(); i += 2) {
        if (low < c.vals[i]) return false;
        if (static_cast<uint32_t>(low) <=
            static_cast<uint32_t>(c.vals[i]) + c.vals[i + 1]) {
          return true;
        }
      }
      return false;
  }
  return false;
}

bool MemberSet::ContainerAdd(Container* c, uint16_t low) {
  if (c->kind == Container::kRun) UnpackRuns(c);
  if (c->kind == Container::kArray) {
    const auto it = std::lower_bound(c->vals.begin(), c->vals.end(), low);
    if (it != c->vals.end() && *it == low) return false;
    if (c->vals.size() >= kArrayMax) {
      ToBitmap(c);
    } else {
      c->vals.insert(it, low);
      ++c->n;
      return true;
    }
  }
  uint64_t& word = c->bits[low >> 6];
  const uint64_t mask = uint64_t{1} << (low & 63);
  if ((word & mask) != 0) return false;
  word |= mask;
  ++c->n;
  return true;
}

bool MemberSet::ContainerRemove(Container* c, uint16_t low) {
  if (c->kind == Container::kRun) UnpackRuns(c);
  if (c->kind == Container::kArray) {
    const auto it = std::lower_bound(c->vals.begin(), c->vals.end(), low);
    if (it == c->vals.end() || *it != low) return false;
    c->vals.erase(it);
    --c->n;
    return true;
  }
  uint64_t& word = c->bits[low >> 6];
  const uint64_t mask = uint64_t{1} << (low & 63);
  if ((word & mask) == 0) return false;
  word &= ~mask;
  --c->n;
  if (c->n <= kArrayMax) {
    // Shrink back to array form so sparse containers do not pin 8 KiB.
    std::vector<uint16_t> vals;
    vals.reserve(c->n);
    ForEachIn(*c, [&](TupleId tid) {
      vals.push_back(static_cast<uint16_t>(tid & 0xFFFF));
    });
    c->kind = Container::kArray;
    c->vals = std::move(vals);
    c->bits.clear();
    c->bits.shrink_to_fit();
  }
  return true;
}

uint16_t MemberSet::ContainerSelect(const Container& c, size_t rank) {
  assert(rank < c.n);
  switch (c.kind) {
    case Container::kArray:
      return c.vals[rank];
    case Container::kRun:
      for (size_t i = 0; i + 1 < c.vals.size(); i += 2) {
        const size_t len = static_cast<size_t>(c.vals[i + 1]) + 1;
        if (rank < len) return static_cast<uint16_t>(c.vals[i] + rank);
        rank -= len;
      }
      break;
    case Container::kBitmap:
      for (size_t w = 0; w < c.bits.size(); ++w) {
        const size_t pop = static_cast<size_t>(__builtin_popcountll(c.bits[w]));
        if (rank >= pop) {
          rank -= pop;
          continue;
        }
        uint64_t word = c.bits[w];
        while (rank-- > 0) word &= word - 1;
        return static_cast<uint16_t>(w * 64 + __builtin_ctzll(word));
      }
      break;
  }
  assert(false && "rank out of range");
  return 0;
}

// --- MemberSet container lookup ---------------------------------------------

size_t MemberSet::LowerBound(uint16_t key) const {
  size_t lo = 0, hi = containers_.size();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (containers_[mid].key < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

MemberSet::Container* MemberSet::FindContainer(uint16_t key) {
  const size_t i = LowerBound(key);
  if (i < containers_.size() && containers_[i].key == key) {
    return &containers_[i];
  }
  return nullptr;
}

const MemberSet::Container* MemberSet::FindContainer(uint16_t key) const {
  const size_t i = LowerBound(key);
  if (i < containers_.size() && containers_[i].key == key) {
    return &containers_[i];
  }
  return nullptr;
}

// --- Construction ------------------------------------------------------------

MemberSet MemberSet::FromTuples(const std::vector<TupleId>& tuples) {
  std::vector<TupleId> sorted = tuples;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  return FromSorted(sorted);
}

MemberSet MemberSet::FromSorted(const std::vector<TupleId>& sorted) {
  MemberSet out;
  size_t i = 0;
  while (i < sorted.size()) {
    const uint16_t key = KeyOf(sorted[i]);
    size_t j = i;
    while (j < sorted.size() && KeyOf(sorted[j]) == key) {
      assert(j == i || sorted[j] > sorted[j - 1]);
      ++j;
    }
    Container c;
    c.key = key;
    c.n = static_cast<uint32_t>(j - i);
    c.vals.reserve(j - i);
    for (size_t p = i; p < j; ++p) c.vals.push_back(LowOf(sorted[p]));
    if (c.vals.size() > kArrayMax) ToBitmap(&c);
    Compact(&c);
    out.containers_.push_back(std::move(c));
    i = j;
  }
  out.size_ = sorted.size();
  return out;
}

// --- Point ops ---------------------------------------------------------------

bool MemberSet::Add(TupleId tid) {
  const uint16_t key = KeyOf(tid);
  const size_t i = LowerBound(key);
  if (i == containers_.size() || containers_[i].key != key) {
    Container c;
    c.key = key;
    c.n = 1;
    c.vals.push_back(LowOf(tid));
    containers_.insert(containers_.begin() + static_cast<ptrdiff_t>(i),
                       std::move(c));
    ++size_;
    return true;
  }
  if (!ContainerAdd(&containers_[i], LowOf(tid))) return false;
  ++size_;
  return true;
}

bool MemberSet::Remove(TupleId tid) {
  Container* c = FindContainer(KeyOf(tid));
  if (c == nullptr || !ContainerRemove(c, LowOf(tid))) return false;
  --size_;
  if (c->n == 0) {
    containers_.erase(containers_.begin() + (c - containers_.data()));
  }
  return true;
}

bool MemberSet::Contains(TupleId tid) const {
  const Container* c = FindContainer(KeyOf(tid));
  return c != nullptr && ContainerContains(*c, LowOf(tid));
}

TupleId MemberSet::Select(size_t rank) const {
  assert(rank < size_);
  for (const Container& c : containers_) {
    if (rank < c.n) return Join(c.key, ContainerSelect(c, rank));
    rank -= c.n;
  }
  assert(false && "rank out of range");
  return 0;
}

void MemberSet::Clear() {
  containers_.clear();
  size_ = 0;
}

// --- Binary set-op kernels ---------------------------------------------------

const MemberSet::Container& MemberSet::Expanded(const Container& c,
                                                Container* scratch) {
  if (c.kind != Container::kRun) return c;
  *scratch = c;
  UnpackRuns(scratch);
  return *scratch;
}

MemberSet::Container MemberSet::UnionC(const Container& ca,
                                       const Container& cb) {
  Container sa, sb;
  const Container& a = Expanded(ca, &sa);
  const Container& b = Expanded(cb, &sb);
  Container out;
  out.key = a.key;
  if (a.kind == Container::kBitmap || b.kind == Container::kBitmap) {
    out = a.kind == Container::kBitmap ? a : b;
    const Container& other = a.kind == Container::kBitmap ? b : a;
    if (other.kind == Container::kBitmap) {
      uint32_t n = 0;
      for (size_t w = 0; w < kBitmapWords; ++w) {
        out.bits[w] |= other.bits[w];
        n += static_cast<uint32_t>(__builtin_popcountll(out.bits[w]));
      }
      out.n = n;
    } else {
      for (uint16_t v : other.vals) {
        uint64_t& word = out.bits[v >> 6];
        const uint64_t mask = uint64_t{1} << (v & 63);
        if ((word & mask) == 0) {
          word |= mask;
          ++out.n;
        }
      }
    }
  } else {
    out.kind = Container::kArray;
    out.vals.reserve(a.vals.size() + b.vals.size());
    std::set_union(a.vals.begin(), a.vals.end(), b.vals.begin(), b.vals.end(),
                   std::back_inserter(out.vals));
    out.n = static_cast<uint32_t>(out.vals.size());
    if (out.vals.size() > kArrayMax) ToBitmap(&out);
  }
  Compact(&out);
  return out;
}

MemberSet::Container MemberSet::IntersectC(const Container& ca,
                                           const Container& cb) {
  Container sa, sb;
  const Container& a = Expanded(ca, &sa);
  const Container& b = Expanded(cb, &sb);
  Container out;
  out.key = a.key;
  out.kind = Container::kArray;
  if (a.kind == Container::kBitmap && b.kind == Container::kBitmap) {
    out.kind = Container::kBitmap;
    out.bits.resize(kBitmapWords);
    uint32_t n = 0;
    for (size_t w = 0; w < kBitmapWords; ++w) {
      out.bits[w] = a.bits[w] & b.bits[w];
      n += static_cast<uint32_t>(__builtin_popcountll(out.bits[w]));
    }
    out.n = n;
  } else if (a.kind == Container::kArray && b.kind == Container::kArray) {
    std::set_intersection(a.vals.begin(), a.vals.end(), b.vals.begin(),
                          b.vals.end(), std::back_inserter(out.vals));
    out.n = static_cast<uint32_t>(out.vals.size());
  } else {
    const Container& arr = a.kind == Container::kArray ? a : b;
    const Container& bm = a.kind == Container::kArray ? b : a;
    for (uint16_t v : arr.vals) {
      if ((bm.bits[v >> 6] >> (v & 63)) & 1) out.vals.push_back(v);
    }
    out.n = static_cast<uint32_t>(out.vals.size());
  }
  Compact(&out);
  return out;
}

MemberSet::Container MemberSet::DifferenceC(const Container& ca,
                                            const Container& cb) {
  Container sa, sb;
  const Container& a = Expanded(ca, &sa);
  const Container& b = Expanded(cb, &sb);
  Container out;
  out.key = a.key;
  out.kind = Container::kArray;
  if (a.kind == Container::kArray) {
    if (b.kind == Container::kArray) {
      std::set_difference(a.vals.begin(), a.vals.end(), b.vals.begin(),
                          b.vals.end(), std::back_inserter(out.vals));
    } else {
      for (uint16_t v : a.vals) {
        if (((b.bits[v >> 6] >> (v & 63)) & 1) == 0) out.vals.push_back(v);
      }
    }
    out.n = static_cast<uint32_t>(out.vals.size());
  } else {
    out.kind = Container::kBitmap;
    out.bits = a.bits;
    out.n = a.n;
    if (b.kind == Container::kBitmap) {
      uint32_t n = 0;
      for (size_t w = 0; w < kBitmapWords; ++w) {
        out.bits[w] &= ~b.bits[w];
        n += static_cast<uint32_t>(__builtin_popcountll(out.bits[w]));
      }
      out.n = n;
    } else {
      for (uint16_t v : b.vals) {
        uint64_t& word = out.bits[v >> 6];
        const uint64_t mask = uint64_t{1} << (v & 63);
        if ((word & mask) != 0) {
          word &= ~mask;
          --out.n;
        }
      }
    }
  }
  Compact(&out);
  return out;
}

// --- Whole-set ops -----------------------------------------------------------

MemberSet MemberSet::Union(const MemberSet& a, const MemberSet& b) {
  MemberSet out;
  size_t i = 0, j = 0;
  while (i < a.containers_.size() || j < b.containers_.size()) {
    if (j == b.containers_.size() ||
        (i < a.containers_.size() &&
         a.containers_[i].key < b.containers_[j].key)) {
      out.containers_.push_back(a.containers_[i++]);
    } else if (i == a.containers_.size() ||
               b.containers_[j].key < a.containers_[i].key) {
      out.containers_.push_back(b.containers_[j++]);
    } else {
      out.containers_.push_back(UnionC(a.containers_[i++], b.containers_[j++]));
    }
    out.size_ += out.containers_.back().n;
  }
  return out;
}

MemberSet MemberSet::Intersect(const MemberSet& a, const MemberSet& b) {
  MemberSet out;
  size_t i = 0, j = 0;
  while (i < a.containers_.size() && j < b.containers_.size()) {
    const uint16_t ka = a.containers_[i].key;
    const uint16_t kb = b.containers_[j].key;
    if (ka < kb) {
      ++i;
    } else if (kb < ka) {
      ++j;
    } else {
      Container c = IntersectC(a.containers_[i++], b.containers_[j++]);
      if (c.n > 0) {
        out.size_ += c.n;
        out.containers_.push_back(std::move(c));
      }
    }
  }
  return out;
}

MemberSet MemberSet::Difference(const MemberSet& a, const MemberSet& b) {
  MemberSet out;
  size_t i = 0, j = 0;
  while (i < a.containers_.size()) {
    const uint16_t ka = a.containers_[i].key;
    while (j < b.containers_.size() && b.containers_[j].key < ka) ++j;
    if (j < b.containers_.size() && b.containers_[j].key == ka) {
      Container c = DifferenceC(a.containers_[i++], b.containers_[j++]);
      if (c.n > 0) {
        out.size_ += c.n;
        out.containers_.push_back(std::move(c));
      }
    } else {
      out.containers_.push_back(a.containers_[i++]);
      out.size_ += out.containers_.back().n;
    }
  }
  return out;
}

void MemberSet::UnionWith(const MemberSet& other) {
  if (other.Empty()) return;
  *this = Union(*this, other);
}

// --- Iteration ---------------------------------------------------------------

std::vector<TupleId> MemberSet::ToVector() const {
  std::vector<TupleId> out;
  out.reserve(size_);
  AppendTo(&out);
  return out;
}

void MemberSet::AppendTo(std::vector<TupleId>* out) const {
  ForEach([out](TupleId tid) { out->push_back(tid); });
}

// --- Maintenance / accounting ------------------------------------------------

void MemberSet::Optimize() {
  for (Container& c : containers_) Compact(&c);
}

size_t MemberSet::SizeBytes() const {
  size_t bytes = 0;
  for (const Container& c : containers_) bytes += ContainerBytes(c);
  return bytes;
}

// --- Serialization -----------------------------------------------------------

void MemberSet::EncodeTo(Encoder* enc) const {
  enc->PutVarint(containers_.size());
  for (const Container& c : containers_) {
    enc->PutVarint(c.key);
    enc->PutU8(static_cast<uint8_t>(c.kind));
    enc->PutVarint(c.n);
    switch (c.kind) {
      case Container::kArray: {
        // Delta-coded: first value, then gaps−1 (values are strictly
        // ascending, so every gap is ≥ 1).
        uint16_t prev = 0;
        for (size_t i = 0; i < c.vals.size(); ++i) {
          enc->PutVarint(i == 0 ? c.vals[0]
                                : static_cast<uint64_t>(c.vals[i] - prev - 1));
          prev = c.vals[i];
        }
        break;
      }
      case Container::kRun: {
        enc->PutVarint(c.vals.size() / 2);
        uint32_t prev_end = 0;
        for (size_t i = 0; i + 1 < c.vals.size(); i += 2) {
          enc->PutVarint(i == 0 ? c.vals[0] : c.vals[i] - prev_end - 2);
          enc->PutVarint(c.vals[i + 1]);
          prev_end = static_cast<uint32_t>(c.vals[i]) + c.vals[i + 1];
        }
        break;
      }
      case Container::kBitmap:
        for (uint64_t w : c.bits) enc->PutU64(w);
        break;
    }
  }
}

Status MemberSet::DecodeFrom(Decoder* dec) {
  Clear();
  uint64_t ncont;
  PRKB_RETURN_IF_ERROR(dec->GetVarint(&ncont));
  uint32_t prev_key = 0;
  for (uint64_t ci = 0; ci < ncont; ++ci) {
    uint64_t key, n;
    uint8_t kind;
    PRKB_RETURN_IF_ERROR(dec->GetVarint(&key));
    PRKB_RETURN_IF_ERROR(dec->GetU8(&kind));
    PRKB_RETURN_IF_ERROR(dec->GetVarint(&n));
    if (key > 0xFFFF || kind > Container::kRun || n == 0 || n > 65536) {
      return Status::Corruption("bad memberset container header");
    }
    if (ci > 0 && key <= prev_key) {
      return Status::Corruption("memberset containers out of order");
    }
    prev_key = static_cast<uint32_t>(key);
    Container c;
    c.key = static_cast<uint16_t>(key);
    c.kind = static_cast<Container::Kind>(kind);
    c.n = static_cast<uint32_t>(n);
    switch (c.kind) {
      case Container::kArray: {
        if (n > kArrayMax) return Status::Corruption("oversized array");
        c.vals.reserve(n);
        uint64_t acc = 0;
        for (uint64_t i = 0; i < n; ++i) {
          uint64_t d;
          PRKB_RETURN_IF_ERROR(dec->GetVarint(&d));
          acc = i == 0 ? d : acc + d + 1;
          if (acc > 0xFFFF) return Status::Corruption("array value overflow");
          c.vals.push_back(static_cast<uint16_t>(acc));
        }
        break;
      }
      case Container::kRun: {
        uint64_t nruns;
        PRKB_RETURN_IF_ERROR(dec->GetVarint(&nruns));
        if (nruns == 0 || nruns > 32768) {
          return Status::Corruption("bad run count");
        }
        uint64_t covered = 0;
        uint64_t prev_end = 0;
        for (uint64_t i = 0; i < nruns; ++i) {
          uint64_t start_d, len1;
          PRKB_RETURN_IF_ERROR(dec->GetVarint(&start_d));
          PRKB_RETURN_IF_ERROR(dec->GetVarint(&len1));
          const uint64_t start = i == 0 ? start_d : prev_end + start_d + 2;
          if (start > 0xFFFF || len1 > 0xFFFF || start + len1 > 0xFFFF) {
            return Status::Corruption("run out of range");
          }
          c.vals.push_back(static_cast<uint16_t>(start));
          c.vals.push_back(static_cast<uint16_t>(len1));
          prev_end = start + len1;
          covered += len1 + 1;
        }
        if (covered != n) return Status::Corruption("run cardinality mismatch");
        break;
      }
      case Container::kBitmap: {
        c.bits.resize(kBitmapWords);
        uint32_t pop = 0;
        for (size_t w = 0; w < kBitmapWords; ++w) {
          PRKB_RETURN_IF_ERROR(dec->GetU64(&c.bits[w]));
          pop += static_cast<uint32_t>(__builtin_popcountll(c.bits[w]));
        }
        if (pop != c.n) return Status::Corruption("bitmap cardinality");
        break;
      }
    }
    size_ += c.n;
    containers_.push_back(std::move(c));
  }
  return Status::Ok();
}

bool MemberSet::operator==(const MemberSet& other) const {
  if (size_ != other.size_) return false;
  return ToVector() == other.ToVector();
}

}  // namespace prkb::core
