#ifndef PRKB_PRKB_SELECTION_H_
#define PRKB_PRKB_SELECTION_H_

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "edbms/edbms.h"
#include "edbms/service_provider.h"
#include "exec/calibrate.h"
#include "obs/metrics.h"
#include "prkb/pop.h"
#include "prkb/probe_sched.h"
#include "prkb/qfilter.h"
#include "prkb/qscan.h"

namespace prkb::exec {
class Executor;
}  // namespace prkb::exec

namespace prkb::core {

class PrkbWal;

/// Extra knobs for PRKB processing.
struct PrkbOptions {
  /// Seed for the SP-local sampling randomness used by QFilter.
  uint64_t seed = 0x5EED;
  /// Multi-dimensional processing only: when true, an NS partition whose scan
  /// was cut short by cross-dimension pruning is finished off with direct QPF
  /// calls so updatePRKB can still split it (ablation: pay QPF now for a
  /// finer index later). The paper's algorithm corresponds to `false`.
  bool eager_md_update = false;
  /// Tuples per QPF batch round trip on the scan paths (QScan, BETWEEN end
  /// partitions, MD candidate bands, no-index linear scan). 1 = the paper's
  /// literal scalar model; larger values amortise the per-round-trip latency
  /// without changing which (trapdoor, tuple) pairs are evaluated on the
  /// single-predicate paths.
  size_t batch_size = 1;
  /// Threads (including the caller) issuing batch round trips concurrently
  /// when one partition yields multiple chunks. 1 = single-threaded scans.
  size_t scan_workers = 1;
  /// Repeat-predicate fast path: remember, per chain, the cut(s) each
  /// trapdoor carved and answer a byte-identical re-sent trapdoor from the
  /// chain alone — zero QPF uses, no probes, no split. `false` restores the
  /// always-probe behaviour (ablation / the paper's literal algorithms).
  bool fast_path = true;
  /// m for the batched probe scheduler (DESIGN.md §11): every search round
  /// evaluates up to m−1 pivot samples in one round trip, cutting the
  /// ~lg k serial probe trips to ~log_m k for ≤ (m−1)/lg m× more QPF uses.
  size_t probe_fanout = 8;
  /// Fuse concurrent searches (BETWEEN's two end-searches, PRKB(MD)'s
  /// per-dimension filters) into shared probe rounds.
  bool probe_fusion = true;
  /// Let the first QScan chunk of the candidate NS partitions ride in the
  /// final QFilter round once the surviving interval is ≤ 2 partitions.
  bool speculative_scan = true;
  /// Ablation / paper-literal mode: bypass the scheduler entirely and issue
  /// every probe as its own blocking scalar round trip (the pre-scheduler
  /// sequential binary search). Overrides the three knobs above.
  bool sequential_probes = false;
  /// Planner hint: expected per-round-trip transport latency, in ns. 0
  /// keeps the paper's pure QPF-use costing; > 0 makes the planner price
  /// routes as round_trips × latency + evals × unit_cost and pick m.
  double rt_latency_hint_ns = 0.0;
  /// POPE-style deferred inserts (DESIGN.md §14): Insert appends the tuple
  /// to a per-chain unsorted buffer in O(1) with zero QPF; placement waits
  /// until a selection touches the chain, which either batch-scans the
  /// buffer or flushes it through one lock-step m-ary placement — whichever
  /// the cost model prices cheaper. `false` keeps eager per-tuple placement
  /// (the paper's Sec. 7.1 behaviour).
  bool buffered_inserts = false;
  /// Hard cap on buffered tuples per chain; an append that reaches the cap
  /// flushes synchronously. 0 disables the cap.
  size_t max_buffered_inserts = 4096;
  /// Flush-vs-scan pricing bias: flush when its one-off cost is within this
  /// factor of a single buffered scan (the flush pays once, the scan on
  /// every query until someone flushes — see COST_MODEL.md).
  double buffer_flush_horizon = 8.0;

  edbms::BatchPolicy scan_policy() const {
    return edbms::BatchPolicy{batch_size, scan_workers};
  }

  ProbeSchedOptions sched() const {
    ProbeSchedOptions o;
    o.fanout = probe_fanout < 2 ? 2 : probe_fanout;
    o.fuse = probe_fusion;
    o.speculative = speculative_scan;
    o.spec_chunk = batch_size < 1 ? 1 : batch_size;
    return o;
  }
};

/// The PRKB index of one table: one partial-order-partition chain per enabled
/// attribute, plus the selection / update drivers of Secs. 5-7. Lives
/// entirely at the service provider; its only inputs are trapdoors and QPF
/// outputs.
class PrkbIndex {
 public:
  /// `db` must outlive the index.
  PrkbIndex(edbms::Edbms* db, PrkbOptions options = {});

  /// initPRKB for `attr`: a single partition over all live tuples.
  void EnableAttr(edbms::AttrId attr);
  bool IsEnabled(edbms::AttrId attr) const {
    return pops_.contains(attr);
  }
  Pop& pop(edbms::AttrId attr) { return pops_.at(attr); }
  const Pop& pop(edbms::AttrId attr) const { return pops_.at(attr); }
  /// Attributes with a chain, in ascending order.
  std::vector<edbms::AttrId> EnabledAttrs() const;
  /// Installs a deserialised chain (prkb_io.cc). With a WAL attached this
  /// re-hooks the chain's mutation listener and schedules a compaction (the
  /// log cannot describe a wholesale replacement; the next snapshot does).
  void InstallPop(edbms::AttrId attr, Pop pop);

  /// The write-ahead log observing this index, or nullptr (prkb/wal.h; set
  /// and cleared by PrkbWal itself, which the caller owns).
  PrkbWal* wal() const { return wal_; }

  /// Selection with one predicate (Sec. 5, and Appendix A for BETWEEN
  /// trapdoors): builds a single-predicate physical plan and runs it through
  /// the shared exec::Executor (QFilter → QScan → updatePRKB). Falls back to
  /// a plain linear scan when the attribute has no PRKB. The result is
  /// unordered.
  std::vector<edbms::TupleId> Select(const edbms::Trapdoor& td,
                                     edbms::SelectionStats* stats = nullptr);

  /// Read-only selection attempt for shared-lock concurrent serving
  /// (ConcurrentPrkbIndex): the chosen plan is run only if it is provably
  /// read-only — a fast-path cache hit, the baseline scan or the empty
  /// chain, none of which mutate the index — and returns true; returns
  /// false — without spending any QPF — when answering might mutate the
  /// chain, in which case the caller must retry with Select() under an
  /// exclusive lock. Never mutates the index.
  bool TrySelectShared(const edbms::Trapdoor& td,
                       std::vector<edbms::TupleId>* out,
                       edbms::SelectionStats* stats = nullptr) const;

  /// Multi-dimensional range query, naive extension "PRKB(SD+)" (Sec. 6
  /// baseline): runs single-predicate processing per trapdoor and intersects.
  std::vector<edbms::TupleId> SelectRangeSdPlus(
      const std::vector<edbms::Trapdoor>& tds,
      edbms::SelectionStats* stats = nullptr);

  /// Multi-dimensional range query, "PRKB(MD)" (Sec. 6.2): grid pruning +
  /// per-region predicate testing + early stop.
  std::vector<edbms::TupleId> SelectRangeMd(
      const std::vector<edbms::Trapdoor>& tds,
      edbms::SelectionStats* stats = nullptr);

  /// Insertion handling (Sec. 7.1): encrypts/stores the row via the EDBMS
  /// and places the new tuple in every enabled chain with O(lg k) QPF uses.
  /// Equivalent to db()->Insert(row) followed by PlaceStored(tid).
  edbms::TupleId Insert(const std::vector<edbms::Value>& row,
                        edbms::SelectionStats* stats = nullptr);

  /// The chain half of insertion handling: places an already-stored tuple
  /// into every enabled chain. Split out for sharded serving
  /// (ShardedPrkbIndex stores the row once, then fans placement across the
  /// shards owning the table's attributes).
  void PlaceStored(edbms::TupleId tid, edbms::SelectionStats* stats = nullptr);

  /// Deletion handling (Sec. 7.2). Equivalent to db()->Delete(tid) followed
  /// by EraseFromChains(tid).
  void Delete(edbms::TupleId tid);

  /// The chain half of deletion handling: unlinks a tuple from every enabled
  /// chain without touching the EDBMS store (the sharded router deletes the
  /// row once, then fans the unlink).
  void EraseFromChains(edbms::TupleId tid);

  /// Appends an already-stored tuple to `attr`'s insert buffer (zero QPF)
  /// and flushes synchronously if that reaches max_buffered_inserts. Used by
  /// the buffered Insert/PlaceStored paths and by ConcurrentPrkbIndex, which
  /// calls it per attribute under that attribute's stripe lock.
  void BufferAppendAttr(edbms::AttrId attr, edbms::TupleId tid);

  /// Places every buffered tuple of `attr` on the chain via one lock-step
  /// batched m-ary placement (update.cc), amortising the ~log_m k probe
  /// round trips over the whole batch. Byte-identical to placing the tuples
  /// eagerly in append order. No-op when the buffer is empty. Does not
  /// commit the WAL (the surrounding public operation does).
  void FlushBuffered(edbms::AttrId attr);

  /// Index footprint across all enabled attributes (Table 3).
  size_t SizeBytes() const;

  /// Point-in-time health/shape report of one attribute's chain.
  struct ChainStats {
    edbms::AttrId attr = 0;
    size_t k = 0;
    size_t tuples = 0;
    size_t min_partition = 0;
    size_t max_partition = 0;
    double mean_partition = 0.0;
    size_t cuts = 0;
    size_t insert_usable_cuts = 0;
    size_t bytes = 0;
  };
  ChainStats StatsFor(edbms::AttrId attr) const;
  /// Multi-line human-readable report over all enabled attributes.
  std::string DescribeStats() const;

  edbms::Edbms* db() { return db_; }
  const edbms::Edbms* db() const { return db_; }
  const PrkbOptions& options() const { return options_; }

  /// This index's online cost calibrator (exec/calibrate.h): fed by the
  /// executor after every plan run, consulted by exec::ConstantsFor on every
  /// query-path price. Per-index on purpose — each shard of a
  /// ShardedPrkbIndex measures its own transport latency, so m calibrates
  /// per shard rather than globally. Internally synchronised; mutable so the
  /// shared-lock selection paths can feed it.
  exec::CostCalibrator& calibrator() const { return calibrator_; }

 private:
  /// The executor runs plan operators against the private primitives below
  /// (it is the single relocated copy of the legacy selection drivers).
  friend class exec::Executor;
  /// The WAL attaches/detaches itself and hooks chains as they appear.
  friend class PrkbWal;

  /// Durability helpers, defined in wal.cc (they need the full PrkbWal):
  /// hooks `attr`'s chain to the attached WAL's per-attribute sink…
  void WalHookAttr(edbms::AttrId attr);
  /// …and makes the records of the finishing operation durable (group
  /// commit: one write + fsync per public mutating op). No-ops without a
  /// WAL.
  void CommitWal();

  /// Appendix A driver for BETWEEN trapdoors (between.cc). `fp` non-null
  /// caches the resulting cut pair (if both ends split). `sched` carries the
  /// probe-scheduler knobs (the planner may override m per route).
  std::vector<edbms::TupleId> SelectBetween(const edbms::Trapdoor& td,
                                            const TrapdoorFp* fp,
                                            const ProbeSchedOptions& sched);
  /// Places an already-stored tuple into the chain of `attr` (update.cc).
  void PlaceTuple(edbms::AttrId attr, edbms::TupleId tid);
  /// Places a batch of stored tuples into `attr`'s chain with lock-step
  /// m-ary searches sharing probe rounds (update.cc). Equivalent to calling
  /// PlaceTuple per tuple in order, with the round trips collapsed.
  void BatchPlace(edbms::AttrId attr, const std::vector<edbms::TupleId>& tids);

  /// PRKB(MD) implementation detail (multidim.cc).
  std::vector<edbms::TupleId> RunMd(
      const std::vector<const edbms::Trapdoor*>& tds,
      const ProbeSchedOptions& sched);

  /// Per-operation sampling RNG: seeded from the shared seed and an atomic
  /// sequence number, so concurrent shared-lock readers never contend on RNG
  /// state and single-threaded runs stay bit-for-bit reproducible.
  Rng OpRng() const {
    const uint64_t seq = op_seq_.fetch_add(1, std::memory_order_relaxed);
    return Rng(options_.seed ^ ((seq + 1) * 0x9E3779B97F4A7C15ULL));
  }

  edbms::Edbms* db_;
  PrkbOptions options_;
  mutable exec::CostCalibrator calibrator_;
  mutable std::atomic<uint64_t> op_seq_{0};
  std::unordered_map<edbms::AttrId, Pop> pops_;
  PrkbWal* wal_ = nullptr;
};

/// `prkb.cache.{hits,misses}` instruments shared by the selection paths
/// (selection.cc, multidim.cc) — docs/OBSERVABILITY.md.
struct CacheMetrics {
  obs::Counter* hits;
  obs::Counter* misses;
  static const CacheMetrics& Get();
};

/// updatePRKB for the single-comparison flow (Sec. 5.3): applies the split
/// discovered by QScan, orienting the two halves by the homogeneous
/// neighbour's label. Returns the new cut's id, or Pop::kNoCut when the
/// predicate turned out equivalent (no split).
uint64_t ApplyComparisonSplit(Pop* pop, const QFilterResult& filter,
                              QScanResult&& scan, const edbms::Trapdoor& td);

}  // namespace prkb::core

#endif  // PRKB_PRKB_SELECTION_H_
