#include "prkb/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <utility>

#include "obs/metrics.h"
#include "prkb/prkb_io.h"
#include "prkb/selection.h"

namespace prkb::core {
namespace {

// wal.log header. The version rides in the last byte.
constexpr uint8_t kLogMagic[8] = {'P', 'R', 'K', 'B', 'W', 'A', 'L', '1'};

// Record payload types ([u8 type][u32 attr][body] — docs/PERSISTENCE.md §3).
enum RecordType : uint8_t {
  kInit = 1,             // body: memberset
  kSplit = 2,            // body: varint left_pos, u8 left_label, trapdoor,
                         //       memberset (left half only)
  kLink = 3,             // body: varint low_cut, varint high_cut
  kAdd = 4,              // body: varint pos, varint tid
  kRemove = 5,           // body: varint tid
  kMerge = 6,            // body: varint pos
  kRememberCmp = 7,      // body: varint cut_id
  kRememberBetween = 8,  // body: varint low_cut, varint high_cut
  kBufAppend = 9,        // body: varint tid (deferred-insert buffer append)
  kBufFlush = 10,        // body: varint count (flush boundary marker; the
                         //       kAdd/kInit/kSplit records of the flush
                         //       precede it, so a torn tail mid-flush leaves
                         //       the unplaced suffix validly buffered)
};

// Upper bound on one record's framed payload; anything larger on disk is
// treated as a torn/corrupt tail. Generous: the largest legitimate record is
// an init/split memberset, ~2 bytes per tuple worst case.
constexpr uint32_t kMaxRecordBytes = 1u << 30;

struct WalMetrics {
  obs::Counter* appends;
  obs::Counter* bytes;
  obs::Counter* fsyncs;
  obs::Counter* replayed;
  obs::Counter* compactions;
  static const WalMetrics& Get() {
    auto& reg = obs::MetricsRegistry::Global();
    static const WalMetrics m = {
        reg.GetCounter("wal.appends"),
        reg.GetCounter("wal.bytes"),
        reg.GetCounter("wal.fsyncs"),
        reg.GetCounter("wal.replayed_records"),
        reg.GetCounter("wal.compactions"),
    };
    return m;
  }
};

Status FsyncFile(std::FILE* f) {
  if (std::fflush(f) != 0) return Status::IoError("fflush failed");
  if (::fsync(fileno(f)) != 0) {
    return Status::IoError(std::string("fsync failed: ") +
                           std::strerror(errno));
  }
  return Status::Ok();
}

// Durability of a rename requires fsyncing the containing directory too.
Status FsyncPath(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("open for fsync failed: " + path);
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Status::IoError("fsync failed: " + path);
  return Status::Ok();
}

}  // namespace

/// Turns one chain's mutation callbacks into framed log records. Stateless
/// apart from the (wal, attr) binding: every callback encodes a payload and
/// hands it to PrkbWal::Append, which owns all synchronisation.
class PrkbWal::AttrSink : public PopListener {
 public:
  AttrSink(PrkbWal* wal, edbms::AttrId attr) : wal_(wal), attr_(attr) {}

  void OnInit(const MemberSet& members) override {
    Encoder enc;
    Head(&enc, kInit);
    members.EncodeTo(&enc);
    wal_->Append(enc.buffer());
  }

  void OnSplit(size_t left_pos, const MemberSet& left_members,
               const edbms::Trapdoor& td, bool left_label) override {
    Encoder enc;
    Head(&enc, kSplit);
    enc.PutVarint(left_pos);
    enc.PutU8(left_label ? 1 : 0);
    EncodeTrapdoor(&enc, td);
    left_members.EncodeTo(&enc);
    wal_->Append(enc.buffer());
  }

  void OnLinkBetween(uint64_t low_cut, uint64_t high_cut) override {
    Encoder enc;
    Head(&enc, kLink);
    enc.PutVarint(low_cut);
    enc.PutVarint(high_cut);
    wal_->Append(enc.buffer());
  }

  void OnAdd(size_t pos, edbms::TupleId tid) override {
    Encoder enc;
    Head(&enc, kAdd);
    enc.PutVarint(pos);
    enc.PutVarint(tid);
    wal_->Append(enc.buffer());
  }

  void OnRemove(edbms::TupleId tid) override {
    Encoder enc;
    Head(&enc, kRemove);
    enc.PutVarint(tid);
    wal_->Append(enc.buffer());
  }

  void OnMerge(size_t pos) override {
    Encoder enc;
    Head(&enc, kMerge);
    enc.PutVarint(pos);
    wal_->Append(enc.buffer());
  }

  void OnRememberComparison(uint64_t cut_id) override {
    Encoder enc;
    Head(&enc, kRememberCmp);
    enc.PutVarint(cut_id);
    wal_->Append(enc.buffer());
  }

  void OnRememberBetween(uint64_t low_cut, uint64_t high_cut) override {
    Encoder enc;
    Head(&enc, kRememberBetween);
    enc.PutVarint(low_cut);
    enc.PutVarint(high_cut);
    wal_->Append(enc.buffer());
  }

  void OnBufferAppend(edbms::TupleId tid) override {
    Encoder enc;
    Head(&enc, kBufAppend);
    enc.PutVarint(tid);
    wal_->Append(enc.buffer());
  }

  void OnBufferFlush(size_t placed) override {
    Encoder enc;
    Head(&enc, kBufFlush);
    enc.PutVarint(placed);
    wal_->Append(enc.buffer());
  }

 private:
  void Head(Encoder* enc, RecordType type) const {
    enc->PutU8(type);
    enc->PutU32(attr_);
  }

  PrkbWal* wal_;
  const edbms::AttrId attr_;
};

PrkbWal::PrkbWal(PrkbIndex* index, std::string dir, WalOptions options)
    : index_(index), dir_(std::move(dir)), options_(options) {}

PrkbWal::~PrkbWal() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    (void)CommitLocked();  // best effort: don't lose buffered records
    if (log_ != nullptr) std::fclose(log_);
    log_ = nullptr;
  }
  // Detach every listener (sinks_ entries may outlive the chains they were
  // hooked to if the attr was re-installed; only detach our own sinks).
  for (const auto& [attr, sink] : sinks_) {
    if (index_->IsEnabled(attr) &&
        index_->pop(attr).listener() == sink.get()) {
      index_->pop(attr).set_listener(nullptr);
    }
  }
  if (index_->wal_ == this) index_->wal_ = nullptr;
}

Result<std::unique_ptr<PrkbWal>> PrkbWal::Open(PrkbIndex* index,
                                               const std::string& dir,
                                               WalOptions options) {
  if (index->wal() != nullptr) {
    return Status::InvalidArgument("index already has a WAL attached");
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Status::IoError("cannot create WAL dir " + dir);

  std::unique_ptr<PrkbWal> wal(new PrkbWal(index, dir, options));
  PRKB_RETURN_IF_ERROR(wal->Recover());
  PRKB_RETURN_IF_ERROR(wal->OpenFiles());
  PRKB_RETURN_IF_ERROR(wal->AttachAll());
  return wal;
}

std::string PrkbWal::SnapshotPath() const { return dir_ + "/snapshot.prkb"; }
std::string PrkbWal::LogPath() const { return dir_ + "/wal.log"; }

Status PrkbWal::Recover() {
  // 1. Snapshot, if any.
  recovered_attrs_.clear();
  std::error_code ec;
  if (std::filesystem::exists(SnapshotPath(), ec)) {
    std::vector<edbms::AttrId> loaded;
    PRKB_RETURN_IF_ERROR(LoadPrkb(index_, SnapshotPath(), &loaded));
    recovered_attrs_.insert(loaded.begin(), loaded.end());
  }

  // 2. The log. Absent or header-less → treated as fresh (OpenFiles rewrites
  //    it). A record tail that is torn (short) or CRC-corrupt severs the
  //    log: everything before the first bad frame is applied, the file is
  //    truncated to that point, and recovery succeeds — exactly the
  //    "crashed mid-append" contract. A record that frames correctly but
  //    fails to *apply* is a real corruption and fails the open loudly.
  if (!std::filesystem::exists(LogPath(), ec)) return Status::Ok();
  std::FILE* f = std::fopen(LogPath().c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open " + LogPath());
  std::fseek(f, 0, SEEK_END);
  const long fsize = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<uint8_t> buf(static_cast<size_t>(fsize < 0 ? 0 : fsize));
  const size_t got = std::fread(buf.data(), 1, buf.size(), f);
  std::fclose(f);
  if (got != buf.size()) return Status::IoError("short read " + LogPath());

  if (buf.size() < sizeof(kLogMagic)) return Status::Ok();  // fresh
  if (std::memcmp(buf.data(), kLogMagic, sizeof(kLogMagic)) != 0) {
    return Status::Corruption("bad WAL magic in " + LogPath());
  }

  size_t off = sizeof(kLogMagic);
  size_t good_end = off;
  while (off + 8 <= buf.size()) {
    uint32_t len = 0;
    uint32_t crc = 0;
    Decoder frame(buf.data() + off, 8);
    (void)frame.GetU32(&len);
    (void)frame.GetU32(&crc);
    if (len == 0 || len > kMaxRecordBytes) break;        // torn/garbage tail
    if (off + 8 + len > buf.size()) break;               // torn tail
    const uint8_t* payload = buf.data() + off + 8;
    if (Crc32(payload, len) != crc) break;               // bit rot: sever
    PRKB_RETURN_IF_ERROR(ApplyRecord(payload, len));
    ++stats_.replayed_records;
    WalMetrics::Get().replayed->Add(1);
    off += 8 + len;
    good_end = off;
  }
  if (good_end < buf.size()) {
    std::filesystem::resize_file(LogPath(), good_end, ec);
    if (ec) return Status::IoError("cannot truncate " + LogPath());
  }
  stats_.log_bytes = good_end;
  return Status::Ok();
}

Status PrkbWal::ApplyRecord(const uint8_t* payload, size_t size) {
  Decoder dec(payload, size);
  uint8_t type = 0;
  uint32_t attr = 0;
  PRKB_RETURN_IF_ERROR(dec.GetU8(&type));
  PRKB_RETURN_IF_ERROR(dec.GetU32(&attr));

  if (type == kInit) {
    MemberSet ms;
    PRKB_RETURN_IF_ERROR(ms.DecodeFrom(&dec));
    if (!dec.Done()) return Status::Corruption("trailing bytes in init");
    // Re-run initPRKB in place (listener not yet attached — Recover runs
    // before AttachAll — so replay emits no records). InitSingle resets the
    // chain but keeps the not-covered part of the insert buffer, matching
    // the live operation — a flush seeding an empty chain inits with just
    // the first buffered tuple.
    index_->pops_[attr].InitSingle(ms.ToVector());
    recovered_attrs_.insert(attr);
    return Status::Ok();
  }

  if (!index_->IsEnabled(attr)) {
    return Status::Corruption("WAL record for unknown attribute");
  }
  Pop& pop = index_->pop(attr);

  switch (type) {
    case kSplit: {
      uint64_t left_pos = 0;
      uint8_t left_label = 0;
      edbms::Trapdoor td;
      MemberSet left;
      PRKB_RETURN_IF_ERROR(dec.GetVarint(&left_pos));
      PRKB_RETURN_IF_ERROR(dec.GetU8(&left_label));
      PRKB_RETURN_IF_ERROR(DecodeTrapdoor(&dec, &td));
      PRKB_RETURN_IF_ERROR(left.DecodeFrom(&dec));
      if (!dec.Done()) return Status::Corruption("trailing bytes in split");
      if (left_pos >= pop.k()) {
        return Status::Corruption("split position out of range");
      }
      const PartitionId pid = pop.pid_at(left_pos);
      // The record ships only the left delta; the right half is recomputed
      // as a set difference against the pre-split membership.
      MemberSet right = MemberSet::Difference(pop.members(pid), left);
      if (left.Empty() || right.Empty() ||
          left.Size() + right.Size() != pop.members(pid).Size()) {
        return Status::Corruption("split halves do not partition the members");
      }
      pop.SplitPartitionSets(pid, std::move(left), std::move(right), td,
                             left_label != 0);
      return Status::Ok();
    }
    case kLink: {
      uint64_t low = 0, high = 0;
      PRKB_RETURN_IF_ERROR(dec.GetVarint(&low));
      PRKB_RETURN_IF_ERROR(dec.GetVarint(&high));
      if (!dec.Done()) return Status::Corruption("trailing bytes in link");
      if (pop.FindCut(low) == nullptr || pop.FindCut(high) == nullptr) {
        return Status::Corruption("link references unknown cut");
      }
      pop.LinkBetweenCuts(low, high);
      return Status::Ok();
    }
    case kAdd: {
      uint64_t pos = 0, tid = 0;
      PRKB_RETURN_IF_ERROR(dec.GetVarint(&pos));
      PRKB_RETURN_IF_ERROR(dec.GetVarint(&tid));
      if (!dec.Done()) return Status::Corruption("trailing bytes in add");
      if (pos >= pop.k()) return Status::Corruption("add position range");
      pop.AddTuple(pop.pid_at(pos), static_cast<edbms::TupleId>(tid));
      return Status::Ok();
    }
    case kRemove: {
      uint64_t tid = 0;
      PRKB_RETURN_IF_ERROR(dec.GetVarint(&tid));
      if (!dec.Done()) return Status::Corruption("trailing bytes in remove");
      if (pop.partition_of(static_cast<edbms::TupleId>(tid)) ==
              Pop::kNoPartition &&
          !pop.insert_buffer().Contains(static_cast<edbms::TupleId>(tid))) {
        return Status::Corruption("remove of uncovered tuple");
      }
      pop.RemoveTuple(static_cast<edbms::TupleId>(tid));
      return Status::Ok();
    }
    case kMerge: {
      uint64_t pos = 0;
      PRKB_RETURN_IF_ERROR(dec.GetVarint(&pos));
      if (!dec.Done()) return Status::Corruption("trailing bytes in merge");
      if (pos + 1 >= pop.k()) return Status::Corruption("merge position");
      pop.MergeAt(pos);
      return Status::Ok();
    }
    case kRememberCmp: {
      uint64_t cut_id = 0;
      PRKB_RETURN_IF_ERROR(dec.GetVarint(&cut_id));
      if (!dec.Done()) return Status::Corruption("trailing bytes in rm-cmp");
      const Pop::Cut* cut = pop.FindCut(cut_id);
      if (cut == nullptr) return Status::Corruption("remember unknown cut");
      // Own-cut invariant: the entry's fingerprint IS the anchor cut's.
      pop.RememberComparison(cut->fp, cut_id);
      return Status::Ok();
    }
    case kRememberBetween: {
      uint64_t low = 0, high = 0;
      PRKB_RETURN_IF_ERROR(dec.GetVarint(&low));
      PRKB_RETURN_IF_ERROR(dec.GetVarint(&high));
      if (!dec.Done()) return Status::Corruption("trailing bytes in rm-btw");
      const Pop::Cut* cut = pop.FindCut(low);
      if (cut == nullptr || pop.FindCut(high) == nullptr) {
        return Status::Corruption("remember unknown cut");
      }
      pop.RememberBetween(cut->fp, low, high);
      return Status::Ok();
    }
    case kBufAppend: {
      uint64_t tid = 0;
      PRKB_RETURN_IF_ERROR(dec.GetVarint(&tid));
      if (!dec.Done()) return Status::Corruption("trailing bytes in buf-app");
      const auto t = static_cast<edbms::TupleId>(tid);
      if (pop.partition_of(t) != Pop::kNoPartition ||
          pop.insert_buffer().Contains(t)) {
        return Status::Corruption("buffer append of covered/buffered tuple");
      }
      pop.BufferAppend(t);
      return Status::Ok();
    }
    case kBufFlush: {
      uint64_t count = 0;
      PRKB_RETURN_IF_ERROR(dec.GetVarint(&count));
      if (!dec.Done()) return Status::Corruption("trailing bytes in buf-fl");
      // Every placement record of the flush precedes this marker, and
      // AddTuple/InitSingle drain the buffer as they replay — so reaching
      // the marker with tuples still buffered means the log is inconsistent.
      if (!pop.insert_buffer().Empty()) {
        return Status::Corruption("flush marker with non-empty buffer");
      }
      pop.NoteBufferFlushed(count);
      return Status::Ok();
    }
    default:
      return Status::Corruption("unknown WAL record type");
  }
}

Status PrkbWal::OpenFiles() {
  // Append mode keeps whatever Recover left; a fresh/empty file gets the
  // header first.
  std::error_code ec;
  const auto size = std::filesystem::exists(LogPath(), ec)
                        ? std::filesystem::file_size(LogPath(), ec)
                        : 0;
  log_ = std::fopen(LogPath().c_str(), size >= sizeof(kLogMagic) ? "ab" : "wb");
  if (log_ == nullptr) return Status::IoError("cannot open " + LogPath());
  if (size < sizeof(kLogMagic)) {
    if (std::fwrite(kLogMagic, 1, sizeof(kLogMagic), log_) !=
        sizeof(kLogMagic)) {
      return Status::IoError("cannot write WAL header");
    }
    PRKB_RETURN_IF_ERROR(FsyncFile(log_));
    stats_.log_bytes = sizeof(kLogMagic);
  }
  return Status::Ok();
}

Status PrkbWal::AttachAll() {
  std::lock_guard<std::mutex> lock(mu_);
  index_->wal_ = this;
  bool full_snapshot_needed = false;
  for (edbms::AttrId attr : index_->EnabledAttrs()) {
    HookLocked(attr);
    // A chain that was enabled before Open() and has no recovered state
    // (first attach to a pre-warmed index) cannot be reconstructed from the
    // log alone — its cuts and cache predate the WAL. Capture everything in
    // one snapshot instead of lossy init records.
    if (!recovered_attrs_.contains(attr)) full_snapshot_needed = true;
  }
  if (full_snapshot_needed) return CompactLocked();
  return Status::Ok();
}

void PrkbWal::HookLocked(edbms::AttrId attr) {
  auto& sink = sinks_[attr];
  if (sink == nullptr) sink = std::make_unique<AttrSink>(this, attr);
  index_->pop(attr).set_listener(sink.get());
}

void PrkbWal::Append(const std::vector<uint8_t>& payload) {
  Encoder frame;
  frame.PutU32(static_cast<uint32_t>(payload.size()));
  frame.PutU32(Crc32(payload.data(), payload.size()));
  std::lock_guard<std::mutex> lock(mu_);
  pending_.insert(pending_.end(), frame.buffer().begin(), frame.buffer().end());
  pending_.insert(pending_.end(), payload.begin(), payload.end());
  ++stats_.appended_records;
  stats_.appended_bytes += 8 + payload.size();
  WalMetrics::Get().appends->Add(1);
  WalMetrics::Get().bytes->Add(8 + payload.size());
}

Status PrkbWal::Commit() {
  std::lock_guard<std::mutex> lock(mu_);
  PRKB_RETURN_IF_ERROR(CommitLocked());
  if (options_.compact_threshold_bytes > 0 &&
      stats_.log_bytes > options_.compact_threshold_bytes) {
    if (options_.auto_compact) return CompactLocked();
    compact_pending_ = true;
  }
  return Status::Ok();
}

bool PrkbWal::compact_pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return compact_pending_;
}

Status PrkbWal::CommitLocked() {
  if (pending_.empty()) return Status::Ok();
  if (log_ == nullptr) return Status::IoError("WAL log not open");
  const size_t n = std::fwrite(pending_.data(), 1, pending_.size(), log_);
  if (n != pending_.size()) return Status::IoError("short WAL append");
  if (options_.fsync_on_commit) {
    PRKB_RETURN_IF_ERROR(FsyncFile(log_));
    ++stats_.fsyncs;
    WalMetrics::Get().fsyncs->Add(1);
  } else if (std::fflush(log_) != 0) {
    return Status::IoError("fflush failed");
  }
  stats_.log_bytes += pending_.size();
  pending_.clear();
  ++stats_.commits;
  return Status::Ok();
}

Status PrkbWal::Compact() {
  std::lock_guard<std::mutex> lock(mu_);
  PRKB_RETURN_IF_ERROR(CommitLocked());
  return CompactLocked();
}

Status PrkbWal::CompactLocked() {
  // Records buffered before the snapshot point are folded into it; flush
  // them first only in the sense of dropping them — the snapshot below
  // captures their effects, so they need not hit the old log at all. (They
  // may already be on disk from an earlier commit; that is harmless, the
  // log is truncated next.)
  pending_.clear();

  // 1. Atomic snapshot: temp file + fsync + rename + directory fsync.
  const std::string tmp = SnapshotPath() + ".tmp";
  PRKB_RETURN_IF_ERROR(SavePrkb(*index_, tmp));
  {
    std::FILE* f = std::fopen(tmp.c_str(), "ab");
    if (f == nullptr) return Status::IoError("cannot reopen " + tmp);
    const Status s = FsyncFile(f);
    std::fclose(f);
    PRKB_RETURN_IF_ERROR(s);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, SnapshotPath(), ec);
  if (ec) return Status::IoError("cannot rename snapshot into place");
  PRKB_RETURN_IF_ERROR(FsyncPath(dir_));

  // 2. Truncate the log back to its header. Crash between 1 and 2 is safe:
  //    replaying the stale log over the new snapshot is re-applying
  //    operations the snapshot already contains — which the differential
  //    test would catch, so instead the log is rewritten through a temp file
  //    as well: write fresh header, fsync, rename.
  const std::string log_tmp = LogPath() + ".tmp";
  std::FILE* fresh = std::fopen(log_tmp.c_str(), "wb");
  if (fresh == nullptr) return Status::IoError("cannot open " + log_tmp);
  if (std::fwrite(kLogMagic, 1, sizeof(kLogMagic), fresh) !=
      sizeof(kLogMagic)) {
    std::fclose(fresh);
    return Status::IoError("cannot write WAL header");
  }
  const Status s = FsyncFile(fresh);
  if (!s.ok()) {
    std::fclose(fresh);
    return s;
  }
  if (log_ != nullptr) std::fclose(log_);
  log_ = nullptr;
  std::filesystem::rename(log_tmp, LogPath(), ec);
  if (ec) {
    std::fclose(fresh);
    return Status::IoError("cannot rename WAL log into place");
  }
  log_ = fresh;  // already positioned at end of header
  PRKB_RETURN_IF_ERROR(FsyncPath(dir_));
  stats_.log_bytes = sizeof(kLogMagic);
  ++stats_.compactions;
  compact_pending_ = false;
  WalMetrics::Get().compactions->Add(1);
  return Status::Ok();
}

PrkbWal::Stats PrkbWal::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.pending_bytes = pending_.size();
  return s;
}

// --- PrkbIndex durability helpers (need the complete PrkbWal) --------------

void PrkbIndex::WalHookAttr(edbms::AttrId attr) {
  if (wal_ != nullptr) {
    std::lock_guard<std::mutex> lock(wal_->mu_);
    wal_->HookLocked(attr);
  }
}

void PrkbIndex::CommitWal() {
  if (wal_ != nullptr) {
    // Commit failures must not corrupt query results — they surface through
    // wal()->Commit() for callers that need the status, and through the
    // stalled wal.* counters for everyone else.
    (void)wal_->Commit();
  }
}

void PrkbIndex::InstallPop(edbms::AttrId attr, Pop pop) {
  pops_[attr] = std::move(pop);
  if (wal_ != nullptr) {
    // The log cannot express a wholesale chain replacement; fold the new
    // state into a fresh snapshot instead.
    WalHookAttr(attr);
    (void)wal_->Compact();
  }
}

}  // namespace prkb::core
