#include "prkb/pop.h"

#include <algorithm>
#include <cassert>

#include "obs/metrics.h"

namespace prkb::core {

using edbms::TupleId;
using edbms::Value;

namespace {

/// Chain-evolution telemetry: splits are the PRKB's knowledge growth, merges
/// its deliberate coarsening; chain_k_after_split samples k as it grows
/// (docs/OBSERVABILITY.md).
struct PopMetrics {
  obs::Counter* splits;
  obs::Counter* merges;
  obs::LatencyHistogram* chain_k_after_split;

  static const PopMetrics& Get() {
    static const PopMetrics m = {
        obs::MetricsRegistry::Global().GetCounter("prkb.splits"),
        obs::MetricsRegistry::Global().GetCounter("prkb.merges"),
        obs::MetricsRegistry::Global().GetHistogram(
            "prkb.chain_k_after_split"),
    };
    return m;
  }
};

}  // namespace

void Pop::InitSingle(size_t num_tuples) {
  std::vector<TupleId> all(num_tuples);
  for (size_t i = 0; i < num_tuples; ++i) all[i] = static_cast<TupleId>(i);
  InitSingle(all);
}

void Pop::InitSingle(const std::vector<TupleId>& tuples) {
  slots_.clear();
  chain_.clear();
  pos_.clear();
  part_of_.clear();
  cuts_.clear();
  cut_index_.clear();
  fp_cache_.clear();
  next_cut_id_ = 1;
  num_tuples_ = tuples.size();
  // The insert buffer survives a re-init minus the tuples the new chain
  // covers: a flush seeding an empty chain inits with the first buffered
  // tuple and must not lose the rest, while a full re-enable covers every
  // live tuple and so drains the buffer completely.
  for (TupleId tid : tuples) buffer_.Remove(tid);
  if (tuples.empty()) {
    // Empty table: empty chain — still announced, so a WAL replays the
    // enable and recovers an empty-but-enabled attribute.
    if (listener_ != nullptr) listener_->OnInit(MemberSet());
    return;
  }

  const PartitionId pid = NewPartition(MemberSet::FromTuples(tuples));
  chain_.push_back(pid);
  pos_.resize(1, 0);
  for (TupleId tid : tuples) {
    if (tid >= part_of_.size()) part_of_.resize(tid + 1, kNoPartition);
    part_of_[tid] = pid;
  }
  if (listener_ != nullptr) listener_->OnInit(slots_[pid].members);
}

PartitionId Pop::NewPartition(MemberSet members) {
  const PartitionId pid = static_cast<PartitionId>(slots_.size());
  slots_.push_back(Slot{std::move(members), /*live=*/true});
  return pid;
}

void Pop::RebuildPositionsFrom(size_t pos) {
  pos_.resize(slots_.size());
  for (size_t p = pos; p < chain_.size(); ++p) {
    pos_[chain_[p]] = static_cast<uint32_t>(p);
  }
}

uint64_t Pop::SplitPartition(PartitionId pid,
                             const std::vector<TupleId>& left_members,
                             const std::vector<TupleId>& right_members,
                             const edbms::Trapdoor& td, bool left_label) {
  return SplitPartitionSets(pid, MemberSet::FromTuples(left_members),
                            MemberSet::FromTuples(right_members), td,
                            left_label);
}

uint64_t Pop::SplitPartitionSets(PartitionId pid, MemberSet left_members,
                                 MemberSet right_members,
                                 const edbms::Trapdoor& td, bool left_label) {
  assert(pid < slots_.size() && slots_[pid].live);
  assert(!left_members.Empty() && !right_members.Empty());
  assert(left_members.Size() + right_members.Size() ==
         slots_[pid].members.Size());

  const size_t pos = pos_[pid];
  // The RIGHT half keeps the old pid so that cuts recorded as "immediately
  // left of X" for partitions right of the split stay correct, and so that
  // the cut previously left of `pid` remains left of the new left half's
  // left neighbour... (the left half is inserted just before `pid`).
  slots_[pid].members = std::move(right_members);
  const PartitionId left_pid = NewPartition(std::move(left_members));
  slots_[left_pid].members.ForEach(
      [&](TupleId tid) { part_of_[tid] = left_pid; });

  chain_.insert(chain_.begin() + static_cast<ptrdiff_t>(pos), left_pid);
  RebuildPositionsFrom(pos);

  Cut cut;
  cut.id = next_cut_id_++;
  cut.left_pid = left_pid;
  cut.trapdoor = td;
  cut.fp = FingerprintTrapdoor(td);
  cut.left_label = left_label;
  cut_index_[cut.id] = cuts_.size();
  cuts_.push_back(std::move(cut));
  PopMetrics::Get().splits->Add(1);
  PopMetrics::Get().chain_k_after_split->Record(chain_.size());
  if (listener_ != nullptr) {
    listener_->OnSplit(pos, slots_[left_pid].members, td, left_label);
  }
  return cuts_.back().id;
}

void Pop::LinkBetweenCuts(uint64_t low_cut, uint64_t high_cut) {
  auto lo = cut_index_.find(low_cut);
  auto hi = cut_index_.find(high_cut);
  assert(lo != cut_index_.end() && hi != cut_index_.end());
  cuts_[lo->second].sibling = high_cut;
  cuts_[hi->second].sibling = low_cut;
  if (listener_ != nullptr) listener_->OnLinkBetween(low_cut, high_cut);
}

void Pop::AddTuple(PartitionId pid, TupleId tid) {
  assert(pid < slots_.size() && slots_[pid].live);
  // Placing a buffered tuple drains it from the buffer. WAL replay relies on
  // this: a flush logs plain kAdd records, and replaying them leaves exactly
  // the not-yet-placed suffix buffered — no per-tuple flush record needed.
  buffer_.Remove(tid);
  if (tid >= part_of_.size()) part_of_.resize(tid + 1, kNoPartition);
  assert(part_of_[tid] == kNoPartition);
  slots_[pid].members.Add(tid);
  part_of_[tid] = pid;
  ++num_tuples_;
  if (listener_ != nullptr) listener_->OnAdd(pos_[pid], tid);
}

void Pop::DropCut(size_t cut_idx) {
  Cut& cut = cuts_[cut_idx];
  if (cut.dropped) return;
  // The fast-path entry keyed by this cut's fingerprint (if any) anchors
  // through it (own-cut invariant), so it dies with the cut. BETWEEN entries
  // reference two cuts sharing one fingerprint; dropping either end erases
  // the entry.
  if (auto it = fp_cache_.find(cut.fp); it != fp_cache_.end() &&
      (it->second.cut_id == cut.id || it->second.cut_id2 == cut.id)) {
    fp_cache_.erase(it);
  }
  cut.dropped = true;
  if (cut.sibling != kNoCut) {
    auto it = cut_index_.find(cut.sibling);
    if (it != cut_index_.end()) cuts_[it->second].sibling = kNoCut;
  }
  cut.sibling = kNoCut;
}

void Pop::RemoveTuple(TupleId tid) {
  // A still-buffered tuple never reached the chain: dropping it changes no
  // chain knowledge, only the pending work set.
  if (buffer_.Remove(tid)) {
    if (listener_ != nullptr) listener_->OnRemove(tid);
    return;
  }
  assert(tid < part_of_.size() && part_of_[tid] != kNoPartition);
  const PartitionId pid = part_of_[tid];
  MemberSet& members = slots_[pid].members;
  const bool removed = members.Remove(tid);
  assert(removed);
  (void)removed;
  part_of_[tid] = kNoPartition;
  --num_tuples_;
  if (listener_ != nullptr) listener_->OnRemove(tid);

  if (!members.Empty()) return;

  // The partition emptied: remove it from the chain (POPᶜₖ becomes
  // POPᶜₖ₋₁, Sec. 7.2) and repair cut anchors.
  const size_t pos = pos_[pid];
  slots_[pid].live = false;
  chain_.erase(chain_.begin() + static_cast<ptrdiff_t>(pos));
  RebuildPositionsFrom(pos);

  for (size_t i = 0; i < cuts_.size(); ++i) {
    Cut& cut = cuts_[i];
    if (cut.dropped || cut.left_pid != pid) continue;
    if (pos == 0 || chain_.empty()) {
      // The cut slid off the chain head; it separates nothing any more.
      DropCut(i);
      continue;
    }
    const PartitionId dest = chain_[pos - 1];
    // Re-anchoring onto a boundary that already hosts a live cut would stack
    // two different thresholds on one boundary; a later insert into the
    // emptied value gap could then satisfy one cut's label invariant and
    // silently violate the other's. Coarsen instead of corrupting: retire
    // the sliding cut.
    bool occupied = false;
    for (const Cut& other : cuts_) {
      if (!other.dropped && other.left_pid == dest) {
        occupied = true;
        break;
      }
    }
    if (occupied) {
      DropCut(i);
    } else {
      cut.left_pid = dest;
    }
  }
  // Cuts that ended up on the chain tail edge separate nothing either.
  for (size_t i = 0; i < cuts_.size(); ++i) {
    if (!cuts_[i].dropped && CutPos(cuts_[i]) >= chain_.size()) DropCut(i);
  }
}

PartitionId Pop::MergeAt(size_t pos) {
  assert(pos + 1 < chain_.size());
  PopMetrics::Get().merges->Add(1);
  const PartitionId left = chain_[pos];
  const PartitionId right = chain_[pos + 1];
  MemberSet& lm = slots_[left].members;
  MemberSet& rm = slots_[right].members;
  rm.ForEach([&](TupleId tid) { part_of_[tid] = left; });
  lm.UnionWith(rm);
  rm.Clear();
  slots_[right].live = false;
  chain_.erase(chain_.begin() + static_cast<ptrdiff_t>(pos) + 1);
  RebuildPositionsFrom(pos);

  // Cuts anchored at `left` used to separate left|right; their separating
  // point is now strictly inside the merged partition, so they must not
  // steer future insertions — retire them. Cuts anchored at `right`
  // separated right|right-neighbour; that boundary survives as
  // merged|right-neighbour, so re-anchor them to the surviving id.
  for (size_t i = 0; i < cuts_.size(); ++i) {
    Cut& cut = cuts_[i];
    if (cut.dropped) continue;
    if (cut.left_pid == left) {
      DropCut(i);
    } else if (cut.left_pid == right) {
      cut.left_pid = left;
    }
  }
  if (listener_ != nullptr) listener_->OnMerge(pos);
  return left;
}

void Pop::BufferAppend(TupleId tid) {
  assert(partition_of(tid) == kNoPartition);
  buffer_.Append(tid);
  if (listener_ != nullptr) listener_->OnBufferAppend(tid);
}

void Pop::NoteBufferFlushed(size_t placed) {
  assert(buffer_.Empty());
  if (listener_ != nullptr) listener_->OnBufferFlush(placed);
}

const Pop::Cut* Pop::FindCut(uint64_t id) const {
  auto it = cut_index_.find(id);
  if (it == cut_index_.end()) return nullptr;
  const Cut& cut = cuts_[it->second];
  return cut.dropped ? nullptr : &cut;
}

void Pop::RememberComparison(const TrapdoorFp& fp, uint64_t cut_id) {
  assert(FindCut(cut_id) != nullptr && FindCut(cut_id)->fp == fp);
  fp_cache_.insert_or_assign(fp, FastPathEntry{cut_id, kNoCut});
  if (listener_ != nullptr) listener_->OnRememberComparison(cut_id);
}

void Pop::RememberBetween(const TrapdoorFp& fp, uint64_t low_cut,
                          uint64_t high_cut) {
  assert(FindCut(low_cut) != nullptr && FindCut(low_cut)->fp == fp);
  assert(FindCut(high_cut) != nullptr && FindCut(high_cut)->fp == fp);
  fp_cache_.insert_or_assign(fp, FastPathEntry{low_cut, high_cut});
  if (listener_ != nullptr) listener_->OnRememberBetween(low_cut, high_cut);
}

const Pop::FastPathEntry* Pop::LookupFastPath(const TrapdoorFp& fp) const {
  auto it = fp_cache_.find(fp);
  return it == fp_cache_.end() ? nullptr : &it->second;
}

std::vector<TupleId> Pop::AssembleFastPath(const FastPathEntry& e) const {
  const Cut* cut = FindCut(e.cut_id);
  assert(cut != nullptr);
  size_t begin, end;
  if (e.cut_id2 == kNoCut) {
    // Comparison: the satisfied run is the side whose homogeneous QPF
    // output is 1 — chain-left iff the left label is 1.
    const size_t cpos = CutPos(*cut);
    begin = cut->left_label ? 0 : cpos;
    end = cut->left_label ? cpos : chain_.size();
  } else {
    // BETWEEN: the satisfied band lies between the two sibling cuts. Chain
    // mutations can shuffle which end sits lower, so order by position.
    const Cut* cut2 = FindCut(e.cut_id2);
    assert(cut2 != nullptr);
    const size_t a = CutPos(*cut);
    const size_t b = CutPos(*cut2);
    begin = std::min(a, b);
    end = std::max(a, b);
  }
  size_t n = 0;
  for (size_t p = begin; p < end; ++p) n += slots_[chain_[p]].members.Size();
  std::vector<TupleId> out;
  out.reserve(n);
  for (size_t p = begin; p < end; ++p) {
    slots_[chain_[p]].members.AppendTo(&out);
  }
  return out;
}

size_t Pop::MembershipBytes() const {
  size_t bytes = 0;
  for (PartitionId pid : chain_) bytes += slots_[pid].members.SizeBytes();
  return bytes;
}

size_t Pop::MembershipContainers() const {
  size_t n = 0;
  for (PartitionId pid : chain_) n += slots_[pid].members.ContainerCount();
  return n;
}

size_t Pop::SizeBytes() const {
  size_t bytes = 0;
  // Partition membership, compressed (Table 3 compares this against the
  // 4 bytes/tuple the raw representation pays; RawMembershipBytes()).
  bytes += MembershipBytes();
  // Chain order.
  bytes += chain_.size() * sizeof(PartitionId);
  // Retained trapdoors for update handling (the paper's "slight increase").
  for (const Cut& cut : cuts_) {
    if (cut.dropped) continue;
    bytes += sizeof(Cut) + cut.trapdoor.blob.size();
  }
  // Repeat-predicate fast-path cache.
  bytes += fp_cache_.size() * (sizeof(TrapdoorFp) + sizeof(FastPathEntry));
  // Pending (buffered, not yet placed) inserts.
  bytes += buffer_.SizeBytes();
  return bytes;
}

Status Pop::Validate() const {
  size_t covered = 0;
  for (size_t p = 0; p < chain_.size(); ++p) {
    const PartitionId pid = chain_[p];
    if (pid >= slots_.size() || !slots_[pid].live) {
      return Status::Corruption("dead partition in chain");
    }
    if (pos_[pid] != p) return Status::Corruption("pos_ out of sync");
    if (slots_[pid].members.Empty()) {
      return Status::Corruption("empty partition in chain");
    }
    bool in_sync = true;
    slots_[pid].members.ForEach([&](TupleId tid) {
      if (tid >= part_of_.size() || part_of_[tid] != pid) in_sync = false;
      ++covered;
    });
    if (!in_sync) return Status::Corruption("part_of_ out of sync");
  }
  if (covered != num_tuples_) {
    return Status::Corruption("num_tuples_ out of sync");
  }
  for (const Cut& cut : cuts_) {
    if (cut.dropped) continue;
    if (cut.left_pid >= slots_.size() || !slots_[cut.left_pid].live) {
      return Status::Corruption("cut anchored at dead partition");
    }
    const size_t cpos = CutPos(cut);
    if (cpos < 1 || cpos > chain_.size() - 1) {
      return Status::Corruption("cut at chain edge");
    }
  }
  for (const auto& [fp, e] : fp_cache_) {
    const Cut* cut = FindCut(e.cut_id);
    if (cut == nullptr || !(cut->fp == fp)) {
      return Status::Corruption("fast-path entry with dead or alien anchor");
    }
    if (e.cut_id2 != kNoCut) {
      const Cut* cut2 = FindCut(e.cut_id2);
      if (cut2 == nullptr || !(cut2->fp == fp)) {
        return Status::Corruption("fast-path entry with dead or alien anchor");
      }
    }
  }
  // Buffered tuples are pending, not covered: a tuple on both sides would be
  // double-counted by selections (scan + partition result).
  for (TupleId tid : buffer_.order()) {
    if (partition_of(tid) != kNoPartition) {
      return Status::Corruption("buffered tuple also on chain");
    }
  }
  return Status::Ok();
}

Status Pop::ValidateAgainstPlain(const std::vector<Value>& plain_of) const {
  PRKB_RETURN_IF_ERROR(Validate());
  if (chain_.empty()) return Status::Ok();

  struct Range {
    Value lo, hi;
  };
  std::vector<Range> ranges;
  ranges.reserve(chain_.size());
  for (PartitionId pid : chain_) {
    Value lo = std::numeric_limits<Value>::max();
    Value hi = std::numeric_limits<Value>::min();
    bool missing = false;
    slots_[pid].members.ForEach([&](TupleId tid) {
      if (tid >= plain_of.size()) {
        missing = true;
        return;
      }
      lo = std::min(lo, plain_of[tid]);
      hi = std::max(hi, plain_of[tid]);
    });
    if (missing) return Status::InvalidArgument("missing plain value");
    ranges.push_back(Range{lo, hi});
  }
  // The chain must be strictly increasing or strictly decreasing in value
  // ranges; adjacent ranges must not overlap (Def. 4.2).
  bool ok_inc = true, ok_dec = true;
  for (size_t p = 0; p + 1 < ranges.size(); ++p) {
    if (!(ranges[p].hi < ranges[p + 1].lo)) ok_inc = false;
    if (!(ranges[p].lo > ranges[p + 1].hi)) ok_dec = false;
  }
  if (!ok_inc && !ok_dec) {
    return Status::Corruption("chain is not a partial order of plain values");
  }
  return Status::Ok();
}

}  // namespace prkb::core
