#include "prkb/qscan.h"

#include <cassert>
#include <span>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace prkb::core {
namespace {

/// QScan telemetry: tuples_scanned is the n/k-bound exhaustive work the
/// paper charges per NS partition; early stops track how often the second
/// scan is saved (docs/COST_MODEL.md).
struct QScanMetrics {
  obs::Counter* invocations;
  obs::Counter* tuples_scanned;
  obs::Counter* partitions_scanned;
  obs::Counter* early_stops;
  obs::LatencyHistogram* early_stop_pos;

  static const QScanMetrics& Get() {
    static const QScanMetrics m = {
        obs::MetricsRegistry::Global().GetCounter("qscan.invocations"),
        obs::MetricsRegistry::Global().GetCounter("qscan.tuples_scanned"),
        obs::MetricsRegistry::Global().GetCounter("qscan.partitions_scanned"),
        obs::MetricsRegistry::Global().GetCounter("qscan.early_stops"),
        obs::MetricsRegistry::Global().GetHistogram("qscan.early_stop_pos"),
    };
    return m;
  }
};

}  // namespace

void ScanPartitionExact(const Pop& pop, size_t pos, const edbms::Trapdoor& td,
                        edbms::QpfOracle* qpf,
                        const edbms::BatchPolicy& policy,
                        std::vector<edbms::TupleId>* true_out,
                        std::vector<edbms::TupleId>* false_out,
                        PrepaidScan* prepaid) {
  // Materialised once per scanned partition: QScan pays O(n/k) QPF calls on
  // these tuples anyway, so the decompression is noise next to the oracle.
  const std::vector<edbms::TupleId> members = pop.members_at(pos).ToVector();
  const QScanMetrics& metrics = QScanMetrics::Get();
  metrics.partitions_scanned->Add(1);
  metrics.tuples_scanned->Add(members.size());
  // Consume speculatively prefetched outcomes: they cover a member-order
  // prefix, so the appended bits are identical to a fresh scan's.
  size_t start = 0;
  if (prepaid != nullptr) {
    const auto it = prepaid->by_pos.find(pos);
    if (it != prepaid->by_pos.end()) {
      for (const PrepaidScan::Outcome& o : it->second) {
        if (start >= members.size() || members[start] != o.tid) break;
        (o.output ? true_out : false_out)->push_back(o.tid);
        ++start;
        ++prepaid->consumed;
      }
    }
  }
  const std::span<const edbms::TupleId> rest =
      std::span<const edbms::TupleId>(members).subspan(start);
  if (rest.empty()) return;
  if (!policy.batched() && !policy.parallel()) {
    for (edbms::TupleId tid : rest) {
      if (qpf->Eval(td, tid)) {
        true_out->push_back(tid);
      } else {
        false_out->push_back(tid);
      }
    }
    return;
  }
  const std::vector<uint8_t> hit = ScanTuples(qpf, td, rest, policy);
  for (size_t i = 0; i < rest.size(); ++i) {
    (hit[i] ? true_out : false_out)->push_back(rest[i]);
  }
}

QScanResult QScan(const Pop& pop, const QFilterResult& filter,
                  const edbms::Trapdoor& td, edbms::QpfOracle* qpf,
                  const edbms::BatchPolicy& policy, PrepaidScan* prepaid) {
  const obs::ObsTracer::Span span("qscan.ns_pair");
  const QScanMetrics& metrics = QScanMetrics::Get();
  metrics.invocations->Add(1);
  QScanResult out;

  // ---- First scan Pa (line 2) ----
  std::vector<edbms::TupleId> a_true, a_false;
  ScanPartitionExact(pop, filter.ns_a, td, qpf, policy, &a_true, &a_false,
                     prepaid);
  out.winners = a_true;

  const bool a_mixed = !a_true.empty() && !a_false.empty();
  if (a_mixed) {
    // Early stop (lines 9-13): Pa is the separating partition; Pb is
    // homogeneous with the label QFilter sampled on the far end.
    metrics.early_stops->Add(1);
    metrics.early_stop_pos->Record(filter.ns_a);
    out.split_found = true;
    out.split_pos = filter.ns_a;
    out.split_true = std::move(a_true);
    out.split_false = std::move(a_false);
    if (filter.ns_b != filter.ns_a && filter.label_last) {
      pop.members_at(filter.ns_b).AppendTo(&out.winners);
    }
    return out;
  }

  // Pa homogeneous: scan Pb as well (lines 4-7), unless k == 1 made the
  // "pair" a single partition.
  out.a_label = !a_true.empty();
  if (filter.ns_b == filter.ns_a) return out;

  std::vector<edbms::TupleId> b_true, b_false;
  ScanPartitionExact(pop, filter.ns_b, td, qpf, policy, &b_true, &b_false,
                     prepaid);
  out.scanned_b = true;
  out.winners.insert(out.winners.end(), b_true.begin(), b_true.end());

  if (!b_true.empty() && !b_false.empty()) {
    out.split_found = true;
    out.split_pos = filter.ns_b;
    out.split_true = std::move(b_true);
    out.split_false = std::move(b_false);
  }
  return out;
}

}  // namespace prkb::core
