#include "prkb/selection.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "exec/executor.h"
#include "obs/trace.h"

namespace prkb::core {

using edbms::SelectionStats;
using edbms::StatsScope;
using edbms::Trapdoor;
using edbms::TupleId;

const CacheMetrics& CacheMetrics::Get() {
  static const CacheMetrics m = {
      obs::MetricsRegistry::Global().GetCounter("prkb.cache.hits"),
      obs::MetricsRegistry::Global().GetCounter("prkb.cache.misses"),
  };
  return m;
}

PrkbIndex::PrkbIndex(edbms::Edbms* db, PrkbOptions options)
    : db_(db),
      options_(options),
      // Configured starting points; the executor's feedback takes over after
      // the warmup floor (not a query path — ConstantsFor(index) is).
      calibrator_(exec::CostConstants::Defaults().eval_ns,
                  options.rt_latency_hint_ns) {}

void PrkbIndex::EnableAttr(edbms::AttrId attr) {
  std::vector<TupleId> live;
  live.reserve(db_->num_rows());
  for (TupleId tid = 0; tid < db_->num_rows(); ++tid) {
    if (db_->IsLive(tid)) live.push_back(tid);
  }
  Pop& pop = pops_[attr];
  // Hook the chain to the WAL before initPRKB so the bootstrap init record
  // lands in the log (replay needs it to recreate the chain).
  if (wal_ != nullptr) WalHookAttr(attr);
  pop.InitSingle(live);
}

uint64_t ApplyComparisonSplit(Pop* pop, const QFilterResult& filter,
                              QScanResult&& scan, const Trapdoor& td) {
  if (!scan.split_found) return Pop::kNoCut;

  const size_t s = scan.split_pos;
  bool true_half_left;  // does split_true become the chain-left half?
  if (pop->k() == 1) {
    // First split ever: both orientations are consistent scenarios
    // (Sec. 4); pick F ↦ T by convention.
    true_half_left = false;
  } else if (s == filter.ns_b) {
    // Pa was scanned homogeneous; it is (or is output-isomorphic to) the
    // left neighbour, so the half matching its label sits next to it.
    true_half_left = scan.a_label;
  } else if (s > 0) {
    // s == ns_a with a left neighbour outside the NS pair: that side is
    // homogeneous with label1.
    true_half_left = filter.label_first;
  } else {
    // s == 0: orient against the right neighbour, which is homogeneous with
    // labelk in both the boundary and the recursive case.
    true_half_left = !filter.label_last;
  }

  std::vector<TupleId> left = true_half_left ? std::move(scan.split_true)
                                             : std::move(scan.split_false);
  std::vector<TupleId> right = true_half_left ? std::move(scan.split_false)
                                              : std::move(scan.split_true);
  const PartitionId pid = pop->pid_at(s);
  return pop->SplitPartition(pid, left, right, td,
                             /*left_label=*/true_half_left);
}

std::vector<TupleId> PrkbIndex::Select(const Trapdoor& td,
                                       SelectionStats* stats) {
  // Thin plan-builder: the selection pipeline itself (fast-path consult,
  // QFilter → QScan → updatePRKB, span + StatsScope accounting) lives in the
  // shared executor. Plan construction is pure — no QPF, no RNG.
  exec::Plan plan;
  plan.BorrowTrapdoor(&td);
  exec::BuildSingleSelectPlan(*this, &plan, /*estimate=*/false);
  return exec::Executor(this).Run(&plan, stats);
}

bool PrkbIndex::TrySelectShared(const Trapdoor& td, std::vector<TupleId>* out,
                                SelectionStats* stats) const {
  // "The chosen plan is read-only": the executor runs the plan only when it
  // provably cannot mutate the chain, and bails (false) otherwise.
  exec::Plan plan;
  plan.BorrowTrapdoor(&td);
  exec::BuildSingleSelectPlan(*this, &plan, /*estimate=*/false);
  return exec::Executor::TryRunReadOnly(*this, plan, out, stats);
}

std::vector<TupleId> PrkbIndex::SelectRangeSdPlus(
    const std::vector<Trapdoor>& tds, SelectionStats* stats) {
  exec::Plan plan;
  for (const Trapdoor& td : tds) plan.BorrowTrapdoor(&td);
  exec::BuildSdPlusPlan(*this, &plan, /*estimate=*/false);
  return exec::Executor(this).Run(&plan, stats);
}

std::vector<TupleId> PrkbIndex::SelectRangeMd(const std::vector<Trapdoor>& tds,
                                              SelectionStats* stats) {
  // The grid algorithm requires comparison trapdoors on enabled attributes;
  // anything else routes through the SD+ path, which handles every case.
  bool md_capable = !tds.empty();
  for (const Trapdoor& td : tds) {
    if (td.kind != edbms::PredicateKind::kComparison || !IsEnabled(td.attr)) {
      md_capable = false;
      break;
    }
  }
  if (md_capable) {
    exec::Plan plan;
    for (const Trapdoor& td : tds) plan.BorrowTrapdoor(&td);
    exec::BuildMdGridPlan(*this, &plan, /*estimate=*/false);
    // The GridPrune root owns the select_md StatsScope.
    return exec::Executor(this).Run(&plan, stats);
  }
  // Fallback keeps the legacy nested accounting: the select_md scope wraps
  // the whole operation, the Intersect root adds its own select_sdplus one.
  StatsScope scope(db_, stats, "select_md");
  exec::Plan plan;
  for (const Trapdoor& td : tds) plan.BorrowTrapdoor(&td);
  exec::BuildSdPlusPlan(*this, &plan, /*estimate=*/false);
  return exec::Executor(this).Run(&plan, nullptr);
}

PrkbIndex::ChainStats PrkbIndex::StatsFor(edbms::AttrId attr) const {
  const Pop& pop = pops_.at(attr);
  ChainStats st;
  st.attr = attr;
  st.k = pop.k();
  st.tuples = pop.num_tuples();
  st.bytes = pop.SizeBytes();
  if (pop.k() > 0) {
    st.min_partition = pop.members_at(0).Size();
    for (size_t p = 0; p < pop.k(); ++p) {
      const size_t sz = pop.members_at(p).Size();
      st.min_partition = std::min(st.min_partition, sz);
      st.max_partition = std::max(st.max_partition, sz);
    }
    st.mean_partition =
        static_cast<double>(st.tuples) / static_cast<double>(st.k);
  }
  for (const Pop::Cut& cut : pop.cuts()) {
    if (cut.dropped) continue;
    ++st.cuts;
    st.insert_usable_cuts += cut.UsableForInsert();
  }
  return st;
}

std::string PrkbIndex::DescribeStats() const {
  std::string out;
  for (edbms::AttrId attr : EnabledAttrs()) {
    const ChainStats st = StatsFor(attr);
    char line[192];
    std::snprintf(line, sizeof(line),
                  "attr %u: k=%zu tuples=%zu partition(min/mean/max)="
                  "%zu/%.1f/%zu cuts=%zu(usable %zu) bytes=%zu\n",
                  st.attr, st.k, st.tuples, st.min_partition,
                  st.mean_partition, st.max_partition, st.cuts,
                  st.insert_usable_cuts, st.bytes);
    out += line;
  }
  return out;
}

std::vector<edbms::AttrId> PrkbIndex::EnabledAttrs() const {
  std::vector<edbms::AttrId> attrs;
  attrs.reserve(pops_.size());
  for (const auto& [attr, pop] : pops_) attrs.push_back(attr);
  std::sort(attrs.begin(), attrs.end());
  return attrs;
}

size_t PrkbIndex::SizeBytes() const {
  // Publishing the membership gauges here keeps them fresh wherever the
  // footprint is actually observed (stats reports, Table 3 benches) —
  // docs/OBSERVABILITY.md `memberset.{containers,bytes}`.
  static obs::Gauge* g_containers =
      obs::MetricsRegistry::Global().GetGauge("memberset.containers");
  static obs::Gauge* g_bytes =
      obs::MetricsRegistry::Global().GetGauge("memberset.bytes");
  size_t total = 0;
  size_t containers = 0;
  size_t member_bytes = 0;
  for (const auto& [attr, pop] : pops_) {
    total += pop.SizeBytes();
    containers += pop.MembershipContainers();
    member_bytes += pop.MembershipBytes();
  }
  g_containers->Set(static_cast<int64_t>(containers));
  g_bytes->Set(static_cast<int64_t>(member_bytes));
  return total;
}

}  // namespace prkb::core
