#include "prkb/selection.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "common/bitvector.h"
#include "obs/trace.h"

namespace prkb::core {

using edbms::SelectionStats;
using edbms::StatsScope;
using edbms::Trapdoor;
using edbms::TupleId;

const CacheMetrics& CacheMetrics::Get() {
  static const CacheMetrics m = {
      obs::MetricsRegistry::Global().GetCounter("prkb.cache.hits"),
      obs::MetricsRegistry::Global().GetCounter("prkb.cache.misses"),
  };
  return m;
}

PrkbIndex::PrkbIndex(edbms::Edbms* db, PrkbOptions options)
    : db_(db), options_(options) {}

void PrkbIndex::EnableAttr(edbms::AttrId attr) {
  std::vector<TupleId> live;
  live.reserve(db_->num_rows());
  for (TupleId tid = 0; tid < db_->num_rows(); ++tid) {
    if (db_->IsLive(tid)) live.push_back(tid);
  }
  pops_[attr].InitSingle(live);
}

uint64_t ApplyComparisonSplit(Pop* pop, const QFilterResult& filter,
                              QScanResult&& scan, const Trapdoor& td) {
  if (!scan.split_found) return Pop::kNoCut;

  const size_t s = scan.split_pos;
  bool true_half_left;  // does split_true become the chain-left half?
  if (pop->k() == 1) {
    // First split ever: both orientations are consistent scenarios
    // (Sec. 4); pick F ↦ T by convention.
    true_half_left = false;
  } else if (s == filter.ns_b) {
    // Pa was scanned homogeneous; it is (or is output-isomorphic to) the
    // left neighbour, so the half matching its label sits next to it.
    true_half_left = scan.a_label;
  } else if (s > 0) {
    // s == ns_a with a left neighbour outside the NS pair: that side is
    // homogeneous with label1.
    true_half_left = filter.label_first;
  } else {
    // s == 0: orient against the right neighbour, which is homogeneous with
    // labelk in both the boundary and the recursive case.
    true_half_left = !filter.label_last;
  }

  std::vector<TupleId> left = true_half_left ? std::move(scan.split_true)
                                             : std::move(scan.split_false);
  std::vector<TupleId> right = true_half_left ? std::move(scan.split_false)
                                              : std::move(scan.split_true);
  const PartitionId pid = pop->pid_at(s);
  return pop->SplitPartition(pid, std::move(left), std::move(right), td,
                             /*left_label=*/true_half_left);
}

std::vector<TupleId> PrkbIndex::SelectComparison(const Trapdoor& td,
                                                 const TrapdoorFp* fp) {
  Pop& pop = pops_.at(td.attr);
  if (pop.k() == 0) return {};  // empty table

  Rng rng = OpRng();
  const QFilterResult filter = QFilter(pop, td, db_, &rng);
  QScanResult scan = QScan(pop, filter, td, db_, options_.scan_policy());

  // Assemble TW ∪ TWNS.
  std::vector<TupleId> result;
  size_t win_size = 0;
  for (size_t p = filter.win_begin; p < filter.win_end; ++p) {
    win_size += pop.members_at(p).size();
  }
  result.reserve(win_size + scan.winners.size());
  for (size_t p = filter.win_begin; p < filter.win_end; ++p) {
    const auto& m = pop.members_at(p);
    result.insert(result.end(), m.begin(), m.end());
  }
  result.insert(result.end(), scan.winners.begin(), scan.winners.end());

  const uint64_t cut_id =
      ApplyComparisonSplit(&pop, filter, std::move(scan), td);
  // Cache only a cut of our own making: the predicate's separating point is
  // exactly there, so the chain sides stay exact across future inserts.
  // A no-split outcome (boundary-aligned predicate) is NOT cacheable — its
  // threshold lies somewhere in a value gap no retained cut pins down.
  if (fp != nullptr && cut_id != Pop::kNoCut) {
    pop.RememberComparison(*fp, cut_id);
  }
  return result;
}

std::vector<TupleId> PrkbIndex::Select(const Trapdoor& td,
                                       SelectionStats* stats) {
  const obs::ObsTracer::Span span("prkb.select");
  StatsScope scope(db_, stats, "select");
  std::vector<TupleId> result;
  if (!IsEnabled(td.attr)) {
    // No knowledge base on this attribute: plain QPF scan.
    edbms::BaselineScanner scanner(db_, options_.scan_policy());
    result = scanner.Select(td);
    return result;
  }
  if (!options_.fast_path) {
    result = td.kind == edbms::PredicateKind::kBetween
                 ? SelectBetween(td, nullptr)
                 : SelectComparison(td, nullptr);
    return result;
  }
  const Pop& pop = pops_.at(td.attr);
  const TrapdoorFp fp = FingerprintTrapdoor(td);
  if (const Pop::FastPathEntry* e = pop.LookupFastPath(fp)) {
    // The chain was already cut by this exact trapdoor: the answer is the
    // satisfied side of its cut(s). Zero QPF uses, no probes, no split.
    CacheMetrics::Get().hits->Add(1);
    result = pop.AssembleFastPath(*e);
    return result;
  }
  CacheMetrics::Get().misses->Add(1);
  result = td.kind == edbms::PredicateKind::kBetween
               ? SelectBetween(td, &fp)
               : SelectComparison(td, &fp);
  return result;
}

bool PrkbIndex::TrySelectShared(const Trapdoor& td, std::vector<TupleId>* out,
                                SelectionStats* stats) const {
  if (IsEnabled(td.attr)) {
    const Pop& pop = pops_.at(td.attr);
    if (pop.k() == 0) {
      const obs::ObsTracer::Span span("prkb.select");
      StatsScope scope(db_, stats, "select");
      out->clear();
      return true;
    }
    if (!options_.fast_path) return false;
    const Pop::FastPathEntry* e = pop.LookupFastPath(FingerprintTrapdoor(td));
    // A miss bails out before spending any QPF; the exclusive retry both
    // answers and records the miss, so cache accounting stays single-count.
    if (e == nullptr) return false;
    const obs::ObsTracer::Span span("prkb.select");
    StatsScope scope(db_, stats, "select");
    CacheMetrics::Get().hits->Add(1);
    *out = pop.AssembleFastPath(*e);
    return true;
  }
  // No chain to mutate: the baseline scan is read-only w.r.t. the index
  // (the QPF oracle itself is thread-safe).
  const obs::ObsTracer::Span span("prkb.select");
  StatsScope scope(db_, stats, "select");
  edbms::BaselineScanner scanner(db_, options_.scan_policy());
  *out = scanner.Select(td);
  return true;
}

std::vector<TupleId> PrkbIndex::SelectRangeSdPlus(
    const std::vector<Trapdoor>& tds, SelectionStats* stats) {
  const obs::ObsTracer::Span span("prkb.select_sdplus");
  StatsScope scope(db_, stats, "select_sdplus");

  std::vector<TupleId> result;
  bool first = true;
  BitVector mask;
  for (const Trapdoor& td : tds) {
    const auto part = Select(td);
    if (first) {
      mask.Resize(db_->num_rows());
      for (TupleId tid : part) mask.Set(tid);
      first = false;
    } else {
      BitVector m2(db_->num_rows());
      for (TupleId tid : part) m2.Set(tid);
      mask.And(m2);
    }
  }
  if (!first) {
    for (uint32_t tid : mask.ToIndices()) result.push_back(tid);
  }
  return result;
}

std::vector<TupleId> PrkbIndex::SelectRangeMd(const std::vector<Trapdoor>& tds,
                                              SelectionStats* stats) {
  StatsScope scope(db_, stats, "select_md");
  // The grid algorithm requires comparison trapdoors on enabled attributes;
  // anything else routes through the SD+ path, which handles every case.
  bool md_capable = !tds.empty();
  for (const Trapdoor& td : tds) {
    if (td.kind != edbms::PredicateKind::kComparison || !IsEnabled(td.attr)) {
      md_capable = false;
      break;
    }
  }
  std::vector<TupleId> result;
  if (md_capable) {
    result = RunMd(tds);
  } else {
    result = SelectRangeSdPlus(tds);
  }
  return result;
}

PrkbIndex::ChainStats PrkbIndex::StatsFor(edbms::AttrId attr) const {
  const Pop& pop = pops_.at(attr);
  ChainStats st;
  st.attr = attr;
  st.k = pop.k();
  st.tuples = pop.num_tuples();
  st.bytes = pop.SizeBytes();
  if (pop.k() > 0) {
    st.min_partition = pop.members_at(0).size();
    for (size_t p = 0; p < pop.k(); ++p) {
      const size_t sz = pop.members_at(p).size();
      st.min_partition = std::min(st.min_partition, sz);
      st.max_partition = std::max(st.max_partition, sz);
    }
    st.mean_partition =
        static_cast<double>(st.tuples) / static_cast<double>(st.k);
  }
  for (const Pop::Cut& cut : pop.cuts()) {
    if (cut.dropped) continue;
    ++st.cuts;
    st.insert_usable_cuts += cut.UsableForInsert();
  }
  return st;
}

std::string PrkbIndex::DescribeStats() const {
  std::string out;
  for (edbms::AttrId attr : EnabledAttrs()) {
    const ChainStats st = StatsFor(attr);
    char line[192];
    std::snprintf(line, sizeof(line),
                  "attr %u: k=%zu tuples=%zu partition(min/mean/max)="
                  "%zu/%.1f/%zu cuts=%zu(usable %zu) bytes=%zu\n",
                  st.attr, st.k, st.tuples, st.min_partition,
                  st.mean_partition, st.max_partition, st.cuts,
                  st.insert_usable_cuts, st.bytes);
    out += line;
  }
  return out;
}

std::vector<edbms::AttrId> PrkbIndex::EnabledAttrs() const {
  std::vector<edbms::AttrId> attrs;
  attrs.reserve(pops_.size());
  for (const auto& [attr, pop] : pops_) attrs.push_back(attr);
  std::sort(attrs.begin(), attrs.end());
  return attrs;
}

size_t PrkbIndex::SizeBytes() const {
  size_t total = 0;
  for (const auto& [attr, pop] : pops_) total += pop.SizeBytes();
  return total;
}

}  // namespace prkb::core
