#ifndef PRKB_PRKB_QFILTER_H_
#define PRKB_PRKB_QFILTER_H_

#include <cstddef>

#include "common/rng.h"
#include "edbms/qpf.h"
#include "prkb/pop.h"

namespace prkb::core {

/// Outcome of QFilter (Algorithm 1): the Not-Sure pair plus the Winner group,
/// described as chain-position ranges so no tuple lists are materialised.
struct QFilterResult {
  /// True when Θ agreed on the samples of P₁ and Pₖ (line 3): the separating
  /// point is at one of the chain ends.
  bool boundary_case = false;

  /// Chain positions of the NS pair, ns_a < ns_b (ns_a == ns_b == 0 iff
  /// k == 1, where the single partition is the whole "pair").
  size_t ns_a = 0;
  size_t ns_b = 0;

  /// Sampled QPF labels of the chain ends (label1 / labelk in the paper).
  bool label_first = false;
  bool label_last = false;

  /// Winner group TW: every partition at a position in [win_begin, win_end)
  /// is T-homogeneous and its tuples satisfy the predicate with zero QPF
  /// uses. Empty range when there is no sure winner.
  size_t win_begin = 0;
  size_t win_end = 0;

  bool HasWinners() const { return win_begin < win_end; }
};

/// QFilter (Sec. 5.1): locates the NS pair with ≈ 2 + lg k sampled QPF calls
/// by exploiting Lemma 5.1, and derives the Winner group for free.
/// Requires pop.k() >= 1 and every partition non-empty.
QFilterResult QFilter(const Pop& pop, const edbms::Trapdoor& td,
                      edbms::QpfOracle* qpf, Rng* rng);

/// Draws the random sample tuple QFilter probes from a partition
/// ("Pᵢ.sample" in the paper).
edbms::TupleId SamplePartition(const Pop& pop, size_t pos, Rng* rng);

}  // namespace prkb::core

#endif  // PRKB_PRKB_QFILTER_H_
