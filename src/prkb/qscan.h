#ifndef PRKB_PRKB_QSCAN_H_
#define PRKB_PRKB_QSCAN_H_

#include <vector>

#include "edbms/batch_scan.h"
#include "edbms/qpf.h"
#include "prkb/pop.h"
#include "prkb/probe_sched.h"
#include "prkb/qfilter.h"

namespace prkb::core {

/// Outcome of QScan (Algorithm 2).
struct QScanResult {
  /// TWNS — tuples of the NS pair that satisfy the predicate.
  std::vector<edbms::TupleId> winners;

  /// Whether a non-homogeneous partition was found (Case 2 of Lemma 4.5:
  /// the predicate is inequivalent and updatePRKB can extend the chain).
  bool split_found = false;
  /// Chain position of the non-homogeneous partition.
  size_t split_pos = 0;
  /// Its exact division by QPF output — handed to updatePRKB so the split
  /// costs zero extra QPF uses (Sec. 5.3).
  std::vector<edbms::TupleId> split_true;
  std::vector<edbms::TupleId> split_false;

  /// Whether the second NS partition was actually scanned (false when the
  /// early-stop strategy fired).
  bool scanned_b = false;

  /// Actual (scanned) QPF label of the first NS partition; only meaningful
  /// when it was homogeneous (split_found == false or split_pos == ns_b).
  bool a_label = false;
};

/// QScan (Sec. 5.2): confirms the exact selection result inside the NS pair
/// with the early-stop strategy — if the first partition turns out
/// non-homogeneous, the second one's QPF outputs are already implied by
/// `filter.label_last` (labelb in the paper) and it is not scanned.
///
/// `policy` controls how the partition scans consume the QPF (chunked batch
/// round trips, optionally issued by parallel workers). Each NS partition is
/// still scanned exhaustively and the early stop between the two partitions
/// is unchanged, so results and QPF-use counts are identical to the scalar
/// path for every policy.
///
/// `prepaid` (optional) holds Θ outcomes the probe scheduler prefetched in
/// the final QFilter round; matching member-order prefixes are consumed
/// instead of re-evaluated, so the bits and their order are unchanged.
QScanResult QScan(const Pop& pop, const QFilterResult& filter,
                  const edbms::Trapdoor& td, edbms::QpfOracle* qpf,
                  const edbms::BatchPolicy& policy = {},
                  PrepaidScan* prepaid = nullptr);

/// Exhaustively tests every tuple of the partition at chain position `pos`,
/// appending satisfied tuples to `true_out` and the rest to `false_out` in
/// member order. Shared by QScan, BETWEEN processing and tests.
void ScanPartitionExact(const Pop& pop, size_t pos, const edbms::Trapdoor& td,
                        edbms::QpfOracle* qpf,
                        const edbms::BatchPolicy& policy,
                        std::vector<edbms::TupleId>* true_out,
                        std::vector<edbms::TupleId>* false_out,
                        PrepaidScan* prepaid = nullptr);

}  // namespace prkb::core

#endif  // PRKB_PRKB_QSCAN_H_
