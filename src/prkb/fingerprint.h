#ifndef PRKB_PRKB_FINGERPRINT_H_
#define PRKB_PRKB_FINGERPRINT_H_

#include <cstddef>
#include <cstdint>

#include "edbms/encryption.h"

namespace prkb::core {

/// 128-bit digest of a trapdoor's SP-visible bytes (attr, kind, blob).
///
/// The repeat-predicate fast path keys its per-chain cache on this value: a
/// client re-sending the *same issued trapdoor* re-sends the same blob, so
/// equal fingerprints identify byte-identical predicates. Two different
/// trapdoors for the same plaintext predicate get different blobs (fresh
/// nonce) and therefore different fingerprints — the SP never learns more
/// than "this exact ciphertext was seen before", which it could already
/// observe by comparing blobs directly. Truncated SHA-256, so accidental
/// collisions are out of the picture at any realistic cache size.
struct TrapdoorFp {
  uint64_t hi = 0;
  uint64_t lo = 0;

  bool operator==(const TrapdoorFp& o) const {
    return hi == o.hi && lo == o.lo;
  }
  bool operator<(const TrapdoorFp& o) const {
    return hi != o.hi ? hi < o.hi : lo < o.lo;
  }
};

struct TrapdoorFpHash {
  size_t operator()(const TrapdoorFp& fp) const {
    return static_cast<size_t>(fp.hi ^ (fp.lo * 0x9E3779B97F4A7C15ULL));
  }
};

/// Digests (attr, kind, blob). The uid is deliberately excluded: it is a
/// transport handle, and equal uids do not imply predicate equivalence.
TrapdoorFp FingerprintTrapdoor(const edbms::Trapdoor& td);

}  // namespace prkb::core

#endif  // PRKB_PRKB_FINGERPRINT_H_
