#include "prkb/probe_sched.h"

#include <algorithm>
#include <cassert>
#include <optional>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace prkb::core {
namespace {

/// Scheduler telemetry (docs/OBSERVABILITY.md): how often rounds actually
/// fuse, and what speculation prefetches vs wastes.
struct ProbeSchedMetrics {
  obs::Counter* rounds;
  obs::Counter* requests;
  obs::Counter* fused;
  obs::Counter* speculative;
  obs::Counter* speculative_waste;

  static const ProbeSchedMetrics& Get() {
    static const ProbeSchedMetrics m = {
        obs::MetricsRegistry::Global().GetCounter("probe_sched.rounds"),
        obs::MetricsRegistry::Global().GetCounter("probe_sched.requests"),
        obs::MetricsRegistry::Global().GetCounter("probe_sched.fused"),
        obs::MetricsRegistry::Global().GetCounter("probe_sched.speculative"),
        obs::MetricsRegistry::Global().GetCounter(
            "probe_sched.speculative_waste"),
    };
    return m;
  }
};

/// Same registry instruments qfilter.cc records, plus the round-trip pair
/// the m-ary bound is checked against (rounds_per_call ≤ 2 + ⌈log_m k⌉).
struct QFilterMetrics {
  obs::Counter* invocations;
  obs::Counter* probes;
  obs::Counter* rounds;
  obs::LatencyHistogram* chain_k;
  obs::LatencyHistogram* probes_per_call;
  obs::LatencyHistogram* rounds_per_call;

  static const QFilterMetrics& Get() {
    static const QFilterMetrics m = {
        obs::MetricsRegistry::Global().GetCounter("qfilter.invocations"),
        obs::MetricsRegistry::Global().GetCounter("qfilter.probes"),
        obs::MetricsRegistry::Global().GetCounter("qfilter.rounds"),
        obs::MetricsRegistry::Global().GetHistogram("qfilter.chain_k"),
        obs::MetricsRegistry::Global().GetHistogram("qfilter.probes_per_call"),
        obs::MetricsRegistry::Global().GetHistogram("qfilter.rounds_per_call"),
    };
    return m;
  }
};

}  // namespace

void RecordSpeculativeWaste(const PrepaidScan& prepaid) {
  if (prepaid.total == 0) return;
  ProbeSchedMetrics::Get().speculative_waste->Add(prepaid.waste());
}

size_t ProbeRound::Add(const edbms::Trapdoor& td, edbms::TupleId tid,
                       int source) {
  assert(!inflight_);  // queueing into a shipped-but-uncollected round
  if (shipped_) {
    reqs_.clear();
    sources_.clear();
    shipped_ = false;
  }
  reqs_.push_back(edbms::ProbeRequest{&td, tid});
  sources_.push_back(source);
  return reqs_.size() - 1;
}

void ProbeRound::Ship() {
  if (shipped_ || inflight_ || reqs_.empty()) return;
  const ProbeSchedMetrics& m = ProbeSchedMetrics::Get();
  m.rounds->Add(1);
  m.requests->Add(reqs_.size());
  bool mixed = false;
  for (size_t i = 1; i < sources_.size() && !mixed; ++i) {
    mixed = sources_[i] != sources_[0];
  }
  if (mixed) m.fused->Add(1);
  if (reqs_.size() == 1) {
    // A lone probe stays a scalar oracle call: one use, one round trip —
    // identical accounting to the paper's sequential loop.
    results_ = BitVector(1);
    results_.Assign(0, qpf_->Eval(*reqs_[0].td, reqs_[0].tid));
    ++trips_;
    shipped_ = true;
    return;
  }
  ticket_ = qpf_->SubmitMany(reqs_);
  inflight_ = true;
}

void ProbeRound::Collect() {
  if (!inflight_) return;
  results_ = qpf_->AwaitMany(ticket_);
  ticket_ = edbms::kEmptyProbeTicket;
  inflight_ = false;
  ++trips_;
  shipped_ = true;
}

void FlipSearch::Pivots(std::vector<size_t>* out) const {
  assert(!done());
  const size_t width = b_ - a_;
  const size_t npiv = std::min(fanout_ - 1, width - 1);
  // Evenly split (a, b): p_j = a + ⌊j·width/(npiv+1)⌋. width ≥ npiv+1, so
  // the pivots are distinct and interior; npiv == 1 reduces to the paper's
  // midpoint (a+b)/2.
  for (size_t j = 1; j <= npiv; ++j) {
    out->push_back(a_ + j * width / (npiv + 1));
  }
}

void FlipSearch::Absorb(std::span<const size_t> pivots,
                        std::span<const uint8_t> labels) {
  assert(pivots.size() == labels.size());
  size_t prev = a_;
  for (size_t i = 0; i < pivots.size(); ++i) {
    if ((labels[i] != 0) != label_a_) {
      // First flip: the separating partition lies in (prev, pivots[i]].
      a_ = prev;
      b_ = pivots[i];
      return;
    }
    prev = pivots[i];
  }
  // Every pivot matched label(a): the flip is in (last pivot, b).
  a_ = prev;
}

namespace {

/// State machine for one chain's m-ary QFilter: an ends round (positions 0
/// and k−1 share one trip), then FlipSearch rounds, each feeding lanes into
/// a shared ProbeRound so several engines can ride the same trip.
class QFilterEngine {
 public:
  QFilterEngine(const Pop* pop, const edbms::Trapdoor* td, Rng* rng,
                const ProbeSchedOptions* opts, PrepaidScan* prepaid)
      : pop_(pop), td_(td), rng_(rng), opts_(opts), prepaid_(prepaid),
        k_(pop->k()) {
    assert(k_ >= 1);
  }

  bool done() const { return phase_ == Phase::kDone; }

  void Enqueue(ProbeRound* round, int source) {
    assert(!done());
    lanes_.clear();
    pivots_.clear();
    spec_.clear();
    if (phase_ == Phase::kEnds) {
      pivots_.push_back(0);
      if (k_ > 1) pivots_.push_back(k_ - 1);
      // k ≤ 2 makes this round final whatever the labels say: the NS pair
      // is the whole chain, so its scan chunks can ride along.
      if (k_ <= 2) {
        for (size_t pos = 0; pos < k_; ++pos) EnqueueSpec(round, source, pos);
      }
    } else {
      search_->Pivots(&pivots_);
      if (search_->b() - search_->a() == 2) {
        // Final disambiguation round: the NS pair will be two of these
        // three positions, so prefetch all three candidates' first chunks.
        EnqueueSpec(round, source, search_->a());
        EnqueueSpec(round, source, search_->a() + 1);
        EnqueueSpec(round, source, search_->b());
      }
    }
    for (size_t pos : pivots_) {
      lanes_.push_back(
          round->Add(*td_, SamplePartition(*pop_, pos, rng_), source));
    }
    probes_ += pivots_.size();
    ++rounds_;
  }

  void Absorb(const ProbeRound& round) {
    for (const SpecLane& s : spec_) {
      prepaid_->by_pos[s.pos].push_back(
          PrepaidScan::Outcome{s.tid, round.ResultOf(s.lane)});
      ++prepaid_->total;
    }
    std::vector<uint8_t> labels;
    labels.reserve(lanes_.size());
    for (size_t lane : lanes_) labels.push_back(round.ResultOf(lane) ? 1 : 0);

    if (phase_ == Phase::kEnds) {
      out_.label_first = labels[0] != 0;
      out_.label_last = labels.back() != 0;
      if (k_ == 1) {
        // Degenerate POP₁: everything is the NS "pair"; QScan full-scans.
        out_.boundary_case = true;
        phase_ = Phase::kDone;
        return;
      }
      if (out_.label_first == out_.label_last) {
        // Boundary case: s = 1 or s = k; NS pair is <P₁, Pₖ>.
        out_.boundary_case = true;
        out_.ns_a = 0;
        out_.ns_b = k_ - 1;
        if (out_.label_first) {
          out_.win_begin = 1;
          out_.win_end = k_ - 1;
        }
        phase_ = Phase::kDone;
        return;
      }
      search_.emplace(0, k_ - 1, out_.label_first, opts_->fanout);
      phase_ = Phase::kSearch;
      if (search_->done()) Finalize();  // k == 2
      return;
    }
    search_->Absorb(pivots_, labels);
    if (search_->done()) Finalize();
  }

  QFilterResult Finish() {
    assert(done());
    const QFilterMetrics& m = QFilterMetrics::Get();
    m.invocations->Add(1);
    m.chain_k->Record(k_);
    m.probes->Add(probes_);
    m.probes_per_call->Record(probes_);
    m.rounds->Add(rounds_);
    m.rounds_per_call->Record(rounds_);
    return out_;
  }

 private:
  enum class Phase { kEnds, kSearch, kDone };
  struct SpecLane {
    size_t pos;
    edbms::TupleId tid;
    size_t lane;
  };

  void EnqueueSpec(ProbeRound* round, int source, size_t pos) {
    if (!opts_->speculative || prepaid_ == nullptr) return;
    const MemberSet& members = pop_->members_at(pos);
    const size_t n = std::min(opts_->spec_chunk, members.Size());
    for (size_t i = 0; i < n; ++i) {
      // Select(i) walks the compressed prefix: the speculative chunk covers
      // the same member-order prefix ScanPartitionExact consumes.
      const edbms::TupleId tid = members.Select(i);
      spec_.push_back(SpecLane{pos, tid, round->Add(*td_, tid, source)});
    }
    ProbeSchedMetrics::Get().speculative->Add(n);
  }

  void Finalize() {
    out_.ns_a = search_->a();
    out_.ns_b = search_->b();
    if (out_.label_first) {
      out_.win_begin = 0;
      out_.win_end = search_->a();
    } else {
      out_.win_begin = search_->b() + 1;
      out_.win_end = k_;
    }
    phase_ = Phase::kDone;
  }

  const Pop* pop_;
  const edbms::Trapdoor* td_;
  Rng* rng_;
  const ProbeSchedOptions* opts_;
  PrepaidScan* prepaid_;
  size_t k_;
  Phase phase_ = Phase::kEnds;
  std::optional<FlipSearch> search_;
  QFilterResult out_;
  std::vector<size_t> pivots_;
  std::vector<size_t> lanes_;
  std::vector<SpecLane> spec_;
  uint64_t probes_ = 0;
  uint64_t rounds_ = 0;
};

void RunEngines(std::vector<QFilterEngine>& engines, edbms::QpfOracle* qpf,
                bool fuse) {
  ProbeRound round(qpf);
  if (fuse) {
    std::vector<size_t> active;
    for (;;) {
      active.clear();
      for (size_t i = 0; i < engines.size(); ++i) {
        if (!engines[i].done()) {
          engines[i].Enqueue(&round, static_cast<int>(i));
          active.push_back(i);
        }
      }
      if (active.empty()) break;
      round.Flush();
      for (size_t i : active) engines[i].Absorb(round);
    }
    return;
  }
  for (size_t i = 0; i < engines.size(); ++i) {
    while (!engines[i].done()) {
      engines[i].Enqueue(&round, static_cast<int>(i));
      round.Flush();
      engines[i].Absorb(round);
    }
  }
}

}  // namespace

QFilterResult ScheduledQFilter(const Pop& pop, const edbms::Trapdoor& td,
                               edbms::QpfOracle* qpf, Rng* rng,
                               const ProbeSchedOptions& opts,
                               PrepaidScan* prepaid) {
  const obs::ObsTracer::Span span("qfilter.mary_search");
  std::vector<QFilterEngine> engines;
  engines.emplace_back(&pop, &td, rng, &opts, prepaid);
  RunEngines(engines, qpf, /*fuse=*/false);
  return engines[0].Finish();
}

void FusedQFilters(std::span<const FusedFilterReq> reqs,
                   edbms::QpfOracle* qpf, Rng* rng,
                   const ProbeSchedOptions& opts) {
  if (reqs.empty()) return;
  const obs::ObsTracer::Span span("probe_sched.fused_filters");
  std::vector<QFilterEngine> engines;
  engines.reserve(reqs.size());
  for (const FusedFilterReq& r : reqs) {
    engines.emplace_back(r.pop, r.td, rng, &opts, nullptr);
  }
  RunEngines(engines, qpf, opts.fuse);
  for (size_t i = 0; i < reqs.size(); ++i) {
    *reqs[i].out = engines[i].Finish();
  }
}

}  // namespace prkb::core
