#include "prkb/qfilter.h"

#include <cassert>

namespace prkb::core {

edbms::TupleId SamplePartition(const Pop& pop, size_t pos, Rng* rng) {
  const auto& members = pop.members_at(pos);
  assert(!members.empty());
  return members[rng->UniformInt(0, members.size() - 1)];
}

QFilterResult QFilter(const Pop& pop, const edbms::Trapdoor& td,
                      edbms::QpfOracle* qpf, Rng* rng) {
  const size_t k = pop.k();
  assert(k >= 1);
  QFilterResult out;

  if (k == 1) {
    // Degenerate POP₁: everything is the NS "pair"; QScan does a full scan.
    out.boundary_case = true;
    const bool label = qpf->Eval(td, SamplePartition(pop, 0, rng));
    out.label_first = out.label_last = label;
    return out;
  }

  const bool label1 = qpf->Eval(td, SamplePartition(pop, 0, rng));
  const bool labelk = qpf->Eval(td, SamplePartition(pop, k - 1, rng));
  out.label_first = label1;
  out.label_last = labelk;

  if (label1 == labelk) {
    // Boundary case (lines 4-10): s = 1 or s = k; NS pair is <P₁, Pₖ>.
    out.boundary_case = true;
    out.ns_a = 0;
    out.ns_b = k - 1;
    if (label1) {
      // All middle partitions are T-homogeneous.
      out.win_begin = 1;
      out.win_end = k - 1;
    }
    return out;
  }

  // Recursive case (lines 12-29): binary search maintaining
  // label(sample(a)) != label(sample(b)).
  size_t a = 0;
  size_t b = k - 1;
  bool label_a = label1;
  while (b - a > 1) {
    const size_t m = (a + b) / 2;
    const bool label_m = qpf->Eval(td, SamplePartition(pop, m, rng));
    if (label_m == label_a) {
      a = m;
      label_a = label_m;
    } else {
      b = m;
    }
  }
  out.ns_a = a;
  out.ns_b = b;
  if (label1) {
    // Positions [0, a) are T-homogeneous.
    out.win_begin = 0;
    out.win_end = a;
  } else {
    // Positions (b, k) are T-homogeneous.
    out.win_begin = b + 1;
    out.win_end = k;
  }
  return out;
}

}  // namespace prkb::core
