#include "prkb/qfilter.h"

#include <cassert>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace prkb::core {
namespace {

/// QFilter telemetry: probe count is the measured side of the paper's
/// 2 + ⌈lg k⌉ sample bound (docs/COST_MODEL.md).
struct QFilterMetrics {
  obs::Counter* invocations;
  obs::Counter* probes;
  obs::Counter* rounds;
  obs::LatencyHistogram* chain_k;
  obs::LatencyHistogram* probes_per_call;
  obs::LatencyHistogram* rounds_per_call;

  static const QFilterMetrics& Get() {
    static const QFilterMetrics m = {
        obs::MetricsRegistry::Global().GetCounter("qfilter.invocations"),
        obs::MetricsRegistry::Global().GetCounter("qfilter.probes"),
        obs::MetricsRegistry::Global().GetCounter("qfilter.rounds"),
        obs::MetricsRegistry::Global().GetHistogram("qfilter.chain_k"),
        obs::MetricsRegistry::Global().GetHistogram("qfilter.probes_per_call"),
        obs::MetricsRegistry::Global().GetHistogram("qfilter.rounds_per_call"),
    };
    return m;
  }
};

/// The sequential path ships every probe on its own round trip, so its
/// round count equals its probe count.
void RecordCall(const QFilterMetrics& metrics, uint64_t probes) {
  metrics.probes->Add(probes);
  metrics.probes_per_call->Record(probes);
  metrics.rounds->Add(probes);
  metrics.rounds_per_call->Record(probes);
}

}  // namespace

edbms::TupleId SamplePartition(const Pop& pop, size_t pos, Rng* rng) {
  const MemberSet& members = pop.members_at(pos);
  assert(!members.Empty());
  // Rank-select on the compressed set: no materialisation per probe.
  return members.Select(rng->UniformInt(0, members.Size() - 1));
}

QFilterResult QFilter(const Pop& pop, const edbms::Trapdoor& td,
                      edbms::QpfOracle* qpf, Rng* rng) {
  const size_t k = pop.k();
  assert(k >= 1);
  const obs::ObsTracer::Span span("qfilter.binary_search");
  const QFilterMetrics& metrics = QFilterMetrics::Get();
  metrics.invocations->Add(1);
  metrics.chain_k->Record(k);
  uint64_t probes = 0;
  auto probe = [&](size_t pos) {
    ++probes;
    return qpf->Eval(td, SamplePartition(pop, pos, rng));
  };
  QFilterResult out;

  if (k == 1) {
    // Degenerate POP₁: everything is the NS "pair"; QScan does a full scan.
    out.boundary_case = true;
    const bool label = probe(0);
    out.label_first = out.label_last = label;
    RecordCall(metrics, probes);
    return out;
  }

  const bool label1 = probe(0);
  const bool labelk = probe(k - 1);
  out.label_first = label1;
  out.label_last = labelk;

  if (label1 == labelk) {
    // Boundary case (lines 4-10): s = 1 or s = k; NS pair is <P₁, Pₖ>.
    out.boundary_case = true;
    out.ns_a = 0;
    out.ns_b = k - 1;
    if (label1) {
      // All middle partitions are T-homogeneous.
      out.win_begin = 1;
      out.win_end = k - 1;
    }
    RecordCall(metrics, probes);
    return out;
  }

  // Recursive case (lines 12-29): binary search maintaining
  // label(sample(a)) != label(sample(b)).
  size_t a = 0;
  size_t b = k - 1;
  bool label_a = label1;
  while (b - a > 1) {
    const size_t m = (a + b) / 2;
    const bool label_m = probe(m);
    if (label_m == label_a) {
      a = m;
      label_a = label_m;
    } else {
      b = m;
    }
  }
  out.ns_a = a;
  out.ns_b = b;
  if (label1) {
    // Positions [0, a) are T-homogeneous.
    out.win_begin = 0;
    out.win_end = a;
  } else {
    // Positions (b, k) are T-homogeneous.
    out.win_begin = b + 1;
    out.win_end = k;
  }
  RecordCall(metrics, probes);
  return out;
}

}  // namespace prkb::core
