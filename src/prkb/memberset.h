#ifndef PRKB_PRKB_MEMBERSET_H_
#define PRKB_PRKB_MEMBERSET_H_

#include <cstdint>
#include <vector>

#include "common/serial.h"
#include "common/status.h"
#include "edbms/types.h"

namespace prkb::core {

/// Compressed sorted set of tuple ids — the partition-membership
/// representation of `Pop` (docs/PERSISTENCE.md §2).
///
/// Roaring-style layout: ids are bucketed by their high 16 bits into
/// *containers* of low-16-bit values, each stored in whichever of three forms
/// is smallest for its population:
///
///   - array:  sorted `uint16_t` values (≤ 4096 entries, 2 bytes each)
///   - bitmap: 65536-bit bitset (8 KiB, wins above 4096 entries)
///   - run:    (start, length−1) pairs — wins when membership is clumped,
///             which is exactly what PRKB partitions look like whenever the
///             indexed value correlates with insertion order (timestamps,
///             auto-increment keys): a partition is a contiguous run of the
///             hidden sorted order, so its tuple ids form O(1) runs.
///
/// Iteration is always in ascending tuple-id order, which makes every
/// consumer deterministic (winner assembly, WAL deltas, snapshot encoding).
/// Mutations keep containers in their cheapest *mutable* form (array/bitmap);
/// `Optimize()` re-packs clumped containers into runs and is called by the
/// bulk constructors, so freshly split partitions are born compressed.
class MemberSet {
 public:
  MemberSet() = default;

  /// Builds from any tuple list (sorts + dedups a copy).
  static MemberSet FromTuples(const std::vector<edbms::TupleId>& tuples);
  /// Builds from a strictly ascending list (asserted in debug builds).
  static MemberSet FromSorted(const std::vector<edbms::TupleId>& sorted);

  /// --- Point ops -----------------------------------------------------------

  /// Inserts `tid`; returns false if it was already present.
  bool Add(edbms::TupleId tid);
  /// Erases `tid`; returns false if it was absent.
  bool Remove(edbms::TupleId tid);
  bool Contains(edbms::TupleId tid) const;
  /// The rank-th smallest member (0-based). rank < Size() required.
  edbms::TupleId Select(size_t rank) const;

  size_t Size() const { return size_; }
  bool Empty() const { return size_ == 0; }
  void Clear();

  /// --- Set ops (ascending-merge; operands may alias) ----------------------

  static MemberSet Union(const MemberSet& a, const MemberSet& b);
  static MemberSet Intersect(const MemberSet& a, const MemberSet& b);
  static MemberSet Difference(const MemberSet& a, const MemberSet& b);
  /// In-place union (chain merges: |containers| work, not |members|, when
  /// the operands' containers do not collide).
  void UnionWith(const MemberSet& other);

  /// --- Iteration (ascending) ----------------------------------------------

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Container& c : containers_) ForEachIn(c, fn);
  }
  std::vector<edbms::TupleId> ToVector() const;
  /// Appends all members to `out` (winner assembly without a temp vector).
  void AppendTo(std::vector<edbms::TupleId>* out) const;

  /// --- Maintenance / accounting -------------------------------------------

  /// Re-packs every container into its cheapest form (including runs).
  void Optimize();
  /// Compressed heap footprint in bytes (container payloads + headers).
  size_t SizeBytes() const;
  size_t ContainerCount() const { return containers_.size(); }

  /// --- Serialization (WAL deltas; docs/PERSISTENCE.md §3) ------------------

  void EncodeTo(Encoder* enc) const;
  Status DecodeFrom(Decoder* dec);

  /// Content equality (form-insensitive: a run container equals the array
  /// holding the same ids).
  bool operator==(const MemberSet& other) const;

 private:
  /// At most 4096 entries as an array; above that a bitmap is smaller.
  static constexpr size_t kArrayMax = 4096;
  static constexpr size_t kBitmapWords = 1024;  // 65536 bits

  struct Container {
    enum Kind : uint8_t { kArray = 0, kBitmap = 1, kRun = 2 };
    uint16_t key = 0;  // high 16 bits of every member
    Kind kind = kArray;
    uint32_t n = 0;  // cardinality
    /// kArray: sorted values. kRun: (start, length−1) pairs, sorted,
    /// non-adjacent. kBitmap: unused.
    std::vector<uint16_t> vals;
    std::vector<uint64_t> bits;  // kBitmap only
  };

  static uint16_t KeyOf(edbms::TupleId tid) {
    return static_cast<uint16_t>(tid >> 16);
  }
  static uint16_t LowOf(edbms::TupleId tid) {
    return static_cast<uint16_t>(tid & 0xFFFF);
  }
  static edbms::TupleId Join(uint16_t key, uint16_t low) {
    return (static_cast<edbms::TupleId>(key) << 16) | low;
  }

  /// Index of the container with `key`, or the insertion point.
  size_t LowerBound(uint16_t key) const;
  Container* FindContainer(uint16_t key);
  const Container* FindContainer(uint16_t key) const;

  static bool ContainerContains(const Container& c, uint16_t low);
  static bool ContainerAdd(Container* c, uint16_t low);
  static bool ContainerRemove(Container* c, uint16_t low);
  static uint16_t ContainerSelect(const Container& c, size_t rank);
  /// Converts a run container to array or bitmap (whichever fits) so point
  /// mutations stay simple.
  static void UnpackRuns(Container* c);
  static void ToBitmap(Container* c);
  /// Re-packs `c` into its cheapest of the three forms.
  static void Compact(Container* c);
  static size_t ContainerBytes(const Container& c);

  /// Expands run form so the binary set-op kernels see only array/bitmap.
  static const Container& Expanded(const Container& c, Container* scratch);
  static Container UnionC(const Container& a, const Container& b);
  static Container IntersectC(const Container& a, const Container& b);
  static Container DifferenceC(const Container& a, const Container& b);

  template <typename Fn>
  static void ForEachIn(const Container& c, Fn&& fn) {
    switch (c.kind) {
      case Container::kArray:
        for (uint16_t v : c.vals) fn(Join(c.key, v));
        break;
      case Container::kRun:
        for (size_t i = 0; i + 1 < c.vals.size(); i += 2) {
          const uint32_t start = c.vals[i];
          const uint32_t len = static_cast<uint32_t>(c.vals[i + 1]) + 1;
          for (uint32_t v = start; v < start + len; ++v) {
            fn(Join(c.key, static_cast<uint16_t>(v)));
          }
        }
        break;
      case Container::kBitmap:
        for (size_t w = 0; w < c.bits.size(); ++w) {
          uint64_t word = c.bits[w];
          while (word != 0) {
            const int bit = __builtin_ctzll(word);
            fn(Join(c.key, static_cast<uint16_t>(w * 64 + bit)));
            word &= word - 1;
          }
        }
        break;
    }
  }

  std::vector<Container> containers_;  // ascending by key
  size_t size_ = 0;
};

}  // namespace prkb::core

#endif  // PRKB_PRKB_MEMBERSET_H_
