#include "prkb/prkb_io.h"

#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <utility>
#include <vector>

#include "prkb/pop.h"

namespace prkb::core {
namespace {

constexpr uint32_t kMagic = 0x50524B42;  // "PRKB"
// v2 appends the repeat-predicate fast-path cache to each chain. Cut ids are
// preserved across a round trip (they always were), which is what lets the
// cache reference cuts by id.
// v3 appends the deferred-insert buffer (append order preserved — the order
// is knowledge state: it fixes the flush placement sequence).
constexpr uint8_t kVersion = 3;

}  // namespace

void EncodeTrapdoor(Encoder* enc, const edbms::Trapdoor& td) {
  enc->PutU32(td.attr);
  enc->PutU8(static_cast<uint8_t>(td.kind));
  enc->PutU64(td.uid);
  enc->PutBytes(td.blob);
}

Status DecodeTrapdoor(Decoder* dec, edbms::Trapdoor* td) {
  uint8_t kind;
  PRKB_RETURN_IF_ERROR(dec->GetU32(&td->attr));
  PRKB_RETURN_IF_ERROR(dec->GetU8(&kind));
  if (kind > static_cast<uint8_t>(edbms::PredicateKind::kBetween)) {
    return Status::Corruption("bad predicate kind");
  }
  td->kind = static_cast<edbms::PredicateKind>(kind);
  PRKB_RETURN_IF_ERROR(dec->GetU64(&td->uid));
  PRKB_RETURN_IF_ERROR(dec->GetBytes(&td->blob));
  return Status::Ok();
}

void Pop::EncodeTo(Encoder* enc) const {
  enc->PutVarint(chain_.size());
  for (PartitionId pid : chain_) {
    const MemberSet& m = slots_[pid].members;
    enc->PutVarint(m.Size());
    // Ascending, as MemberSet always iterates — the on-disk member lists are
    // a deterministic function of the knowledge state.
    m.ForEach([enc](edbms::TupleId tid) { enc->PutVarint(tid); });
  }
  // Cuts, referenced by chain position of their left partition.
  size_t live_cuts = 0;
  for (const Cut& cut : cuts_) live_cuts += !cut.dropped;
  enc->PutVarint(live_cuts);
  for (const Cut& cut : cuts_) {
    if (cut.dropped) continue;
    enc->PutU64(cut.id);
    enc->PutVarint(pos_[cut.left_pid]);
    enc->PutU8(cut.left_label ? 1 : 0);
    enc->PutU64(cut.sibling);
    EncodeTrapdoor(enc, cut.trapdoor);
  }
  enc->PutU64(next_cut_id_);
  // Fast-path cache, fingerprint-sorted so the encoding is deterministic
  // (replay tests compare chains byte-for-byte).
  std::vector<std::pair<TrapdoorFp, FastPathEntry>> entries(
      fp_cache_.begin(), fp_cache_.end());
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  enc->PutVarint(entries.size());
  for (const auto& [fp, e] : entries) {
    enc->PutU64(fp.hi);
    enc->PutU64(fp.lo);
    enc->PutU64(e.cut_id);
    enc->PutU64(e.cut_id2);
  }
  buffer_.EncodeTo(enc);
}

Status Pop::DecodeFrom(Decoder* dec) {
  slots_.clear();
  chain_.clear();
  pos_.clear();
  part_of_.clear();
  cuts_.clear();
  cut_index_.clear();
  fp_cache_.clear();
  buffer_.Clear();
  num_tuples_ = 0;

  uint64_t k;
  PRKB_RETURN_IF_ERROR(dec->GetVarint(&k));
  for (uint64_t p = 0; p < k; ++p) {
    uint64_t m;
    PRKB_RETURN_IF_ERROR(dec->GetVarint(&m));
    if (m == 0) return Status::Corruption("empty partition");
    std::vector<edbms::TupleId> members;
    members.reserve(m);
    const PartitionId pid = static_cast<PartitionId>(slots_.size());
    for (uint64_t i = 0; i < m; ++i) {
      uint64_t tid;
      PRKB_RETURN_IF_ERROR(dec->GetVarint(&tid));
      members.push_back(static_cast<edbms::TupleId>(tid));
      if (tid >= part_of_.size()) part_of_.resize(tid + 1, kNoPartition);
      if (part_of_[tid] != kNoPartition) {
        return Status::Corruption("tuple in two partitions");
      }
      part_of_[tid] = pid;
      ++num_tuples_;
    }
    NewPartition(MemberSet::FromTuples(members));
    chain_.push_back(pid);
  }
  RebuildPositionsFrom(0);

  uint64_t ncuts;
  PRKB_RETURN_IF_ERROR(dec->GetVarint(&ncuts));
  for (uint64_t i = 0; i < ncuts; ++i) {
    Cut cut;
    uint64_t left_pos;
    uint8_t label;
    PRKB_RETURN_IF_ERROR(dec->GetU64(&cut.id));
    PRKB_RETURN_IF_ERROR(dec->GetVarint(&left_pos));
    PRKB_RETURN_IF_ERROR(dec->GetU8(&label));
    PRKB_RETURN_IF_ERROR(dec->GetU64(&cut.sibling));
    PRKB_RETURN_IF_ERROR(DecodeTrapdoor(dec, &cut.trapdoor));
    if (chain_.empty() || left_pos + 1 >= chain_.size()) {
      return Status::Corruption("cut position out of range");
    }
    cut.left_label = label != 0;
    cut.left_pid = chain_[left_pos];
    cut.fp = FingerprintTrapdoor(cut.trapdoor);
    cut_index_[cut.id] = cuts_.size();
    cuts_.push_back(std::move(cut));
  }
  PRKB_RETURN_IF_ERROR(dec->GetU64(&next_cut_id_));
  uint64_t nentries;
  PRKB_RETURN_IF_ERROR(dec->GetVarint(&nentries));
  for (uint64_t i = 0; i < nentries; ++i) {
    TrapdoorFp fp;
    FastPathEntry e;
    PRKB_RETURN_IF_ERROR(dec->GetU64(&fp.hi));
    PRKB_RETURN_IF_ERROR(dec->GetU64(&fp.lo));
    PRKB_RETURN_IF_ERROR(dec->GetU64(&e.cut_id));
    PRKB_RETURN_IF_ERROR(dec->GetU64(&e.cut_id2));
    fp_cache_.insert_or_assign(fp, e);
  }
  PRKB_RETURN_IF_ERROR(buffer_.DecodeFrom(dec));
  // Validate() rejects entries whose anchors are missing or whose
  // fingerprint does not match the anchor cut's trapdoor, and buffered
  // tuples that also appear on the chain.
  return Validate();
}

Status SavePrkb(const PrkbIndex& index, const std::string& path) {
  Encoder enc;
  enc.PutU32(kMagic);
  enc.PutU8(kVersion);
  const auto attrs = index.EnabledAttrs();
  enc.PutVarint(attrs.size());
  for (edbms::AttrId attr : attrs) {
    enc.PutU32(attr);
    index.pop(attr).EncodeTo(&enc);
  }

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  const auto& buf = enc.buffer();
  const size_t written = std::fwrite(buf.data(), 1, buf.size(), f);
  std::fclose(f);
  if (written != buf.size()) return Status::IoError("short write to " + path);
  return Status::Ok();
}

Status LoadPrkb(PrkbIndex* index, const std::string& path,
                std::vector<edbms::AttrId>* loaded) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<uint8_t> buf(static_cast<size_t>(size));
  const size_t read = std::fread(buf.data(), 1, buf.size(), f);
  std::fclose(f);
  if (read != buf.size()) return Status::IoError("short read from " + path);

  Decoder dec(buf);
  uint32_t magic;
  uint8_t version;
  PRKB_RETURN_IF_ERROR(dec.GetU32(&magic));
  if (magic != kMagic) return Status::Corruption("bad magic");
  PRKB_RETURN_IF_ERROR(dec.GetU8(&version));
  if (version != kVersion) return Status::NotSupported("unknown version");
  uint64_t nattrs;
  PRKB_RETURN_IF_ERROR(dec.GetVarint(&nattrs));
  for (uint64_t i = 0; i < nattrs; ++i) {
    uint32_t attr;
    PRKB_RETURN_IF_ERROR(dec.GetU32(&attr));
    Pop pop;
    PRKB_RETURN_IF_ERROR(pop.DecodeFrom(&dec));
    index->InstallPop(attr, std::move(pop));
    if (loaded != nullptr) loaded->push_back(attr);
  }
  if (!dec.Done()) return Status::Corruption("trailing bytes");
  return Status::Ok();
}

}  // namespace prkb::core
