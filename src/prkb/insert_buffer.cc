#include "prkb/insert_buffer.h"

#include <algorithm>
#include <cassert>

namespace prkb::core {

void InsertBuffer::Append(edbms::TupleId tid) {
  assert(!set_.contains(tid));
  order_.push_back(tid);
  set_.insert(tid);
}

bool InsertBuffer::Remove(edbms::TupleId tid) {
  if (set_.erase(tid) == 0) return false;
  // Buffers are bounded (PrkbOptions::max_buffered_inserts) and removals are
  // either a full drain in append order (flush: pops the front repeatedly) or
  // a rare mid-buffer delete, so the linear erase is fine.
  order_.erase(std::find(order_.begin(), order_.end(), tid));
  return true;
}

void InsertBuffer::Clear() {
  order_.clear();
  set_.clear();
}

void InsertBuffer::AppendTo(std::vector<edbms::TupleId>* out) const {
  out->insert(out->end(), order_.begin(), order_.end());
}

size_t InsertBuffer::SizeBytes() const {
  return order_.size() * (sizeof(edbms::TupleId) + sizeof(edbms::TupleId));
}

void InsertBuffer::EncodeTo(Encoder* enc) const {
  enc->PutVarint(order_.size());
  for (edbms::TupleId tid : order_) enc->PutVarint(tid);
}

Status InsertBuffer::DecodeFrom(Decoder* dec) {
  Clear();
  uint64_t n = 0;
  PRKB_RETURN_IF_ERROR(dec->GetVarint(&n));
  order_.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t tid = 0;
    PRKB_RETURN_IF_ERROR(dec->GetVarint(&tid));
    if (set_.contains(static_cast<edbms::TupleId>(tid))) {
      return Status::Corruption("tuple buffered twice");
    }
    order_.push_back(static_cast<edbms::TupleId>(tid));
    set_.insert(static_cast<edbms::TupleId>(tid));
  }
  return Status::Ok();
}

}  // namespace prkb::core
