#ifndef PRKB_PRKB_INSERT_BUFFER_H_
#define PRKB_PRKB_INSERT_BUFFER_H_

#include <cstddef>
#include <unordered_set>
#include <vector>

#include "common/serial.h"
#include "common/status.h"
#include "edbms/types.h"

namespace prkb::core {

/// Per-chain unsorted insert buffer (DESIGN.md §14, after POPE): tuples whose
/// rows are stored in the EDBMS but whose chain placement is deferred until a
/// selection actually touches the attribute. Appends are O(1) and spend zero
/// QPF; a query either batch-scans the buffer (exactness) or flushes it
/// through one lock-step m-ary placement (amortised round trips).
///
/// Order matters: tuples are kept in append order, which is the order the
/// deferred placement replays them in — so a flush is byte-identical to the
/// eager placement sequence, and the WAL can reproduce the buffer verbatim
/// from its append records.
class InsertBuffer {
 public:
  /// Appends `tid`. Must not already be buffered.
  void Append(edbms::TupleId tid);

  /// Removes `tid` if buffered; returns whether it was. Append order of the
  /// remaining tuples is preserved.
  bool Remove(edbms::TupleId tid);

  bool Contains(edbms::TupleId tid) const { return set_.contains(tid); }
  size_t Size() const { return order_.size(); }
  bool Empty() const { return order_.empty(); }
  void Clear();

  /// Buffered tuples in append order.
  const std::vector<edbms::TupleId>& order() const { return order_; }
  void AppendTo(std::vector<edbms::TupleId>* out) const;

  /// Footprint for Pop::SizeBytes (Table 3 accounting).
  size_t SizeBytes() const;

  /// Deterministic: tuples encode in append order, which is part of the
  /// knowledge state (it fixes the deferred placement sequence).
  void EncodeTo(Encoder* enc) const;
  Status DecodeFrom(Decoder* dec);

 private:
  std::vector<edbms::TupleId> order_;
  std::unordered_set<edbms::TupleId> set_;
};

}  // namespace prkb::core

#endif  // PRKB_PRKB_INSERT_BUFFER_H_
