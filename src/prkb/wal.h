#ifndef PRKB_PRKB_WAL_H_
#define PRKB_PRKB_WAL_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "prkb/pop.h"

namespace prkb::core {

class PrkbIndex;

/// Durability knobs (docs/PERSISTENCE.md §5).
struct WalOptions {
  /// fsync the log file on every Commit(). Off trades the last commit for
  /// throughput (the OS still sees every byte; only a power cut loses them).
  bool fsync_on_commit = true;
  /// Log size (bytes) above which Commit() folds the log into a fresh
  /// snapshot and truncates. 0 disables automatic compaction.
  size_t compact_threshold_bytes = 8u << 20;
  /// When false, Commit() never compacts itself — it only raises
  /// compact_pending(), and the owner compacts at a safe point. Needed by
  /// ConcurrentPrkbIndex: compaction snapshots *every* chain, which is only
  /// safe under its exclusive map lock, not the per-attribute stripe lock a
  /// mutating Select holds.
  bool auto_compact = true;
};

/// Append-only write-ahead log for a PrkbIndex (docs/PERSISTENCE.md).
///
/// Layout inside the WAL directory:
///   snapshot.prkb — full v2 snapshot (prkb_io.h format), rewritten only by
///                   compaction, atomically (temp file + rename);
///   wal.log       — 8-byte magic, then CRC-framed records:
///                   [u32 len][u32 crc32(payload)][payload].
///
/// Every record is a *logical* chain operation (init / split / link / add /
/// remove / merge / remember), exactly the PopListener callback set, so
/// recovery is deterministic re-execution: load the snapshot, apply records
/// in order. Partitions are referenced by chain position and cuts by id —
/// both reproduce exactly during replay (positions by induction on the op
/// sequence, ids because the snapshot persists them and SplitPartition
/// assigns the next id deterministically). Split records ship only the left
/// half as a compressed MemberSet delta; replay computes
/// right = old \ left as a set difference.
///
/// Sensitivity: records hold tuple ids, chain positions and sealed
/// trapdoors — the same material as the live service-provider state and the
/// snapshot, nothing more (docs/PERSISTENCE.md §6).
///
/// Concurrency: listener callbacks fire under the index's own locks (the
/// ConcurrentPrkbIndex stripes); the WAL serialises its buffer and file
/// behind one internal mutex, so concurrent per-attribute mutators may
/// interleave records but never tear them.
class PrkbWal {
 public:
  /// Opens the WAL in `dir` (created if missing) and binds it to `index`:
  ///
  ///   1. If snapshot.prkb exists, loads it into the index (replacing any
  ///      enabled chains).
  ///   2. Replays wal.log, severing at the first torn or CRC-corrupt record
  ///      (the file is truncated to the last good record). Replay re-applies
  ///      the logged chain operations directly — zero QPF calls.
  ///   3. Attaches mutation listeners to every enabled chain. Chains already
  ///      enabled on `index` but absent from the recovered state are logged
  ///      as fresh init records (first-attach bootstrap).
  ///
  /// The index must outlive the returned WAL; destroying the WAL detaches
  /// the listeners (pending records are committed first).
  static Result<std::unique_ptr<PrkbWal>> Open(PrkbIndex* index,
                                               const std::string& dir,
                                               WalOptions options = {});

  ~PrkbWal();
  PrkbWal(const PrkbWal&) = delete;
  PrkbWal& operator=(const PrkbWal&) = delete;

  /// Makes every record appended so far durable: one write + (optionally)
  /// one fsync for the whole batch (group commit). Triggers compaction when
  /// the log has outgrown its threshold. No-op when nothing is pending.
  Status Commit();

  /// Folds the log into snapshot.prkb (atomic: temp + rename) and truncates
  /// wal.log back to its header. Recovery cost drops to one snapshot load.
  Status Compact();

  /// True when the log outgrew its threshold but auto_compact is off; the
  /// owner should call Compact() at its next safe (fully exclusive) point.
  bool compact_pending() const;

  /// Point-in-time counters for `.wal` status lines and tests.
  struct Stats {
    uint64_t appended_records = 0;  // records appended via listeners
    uint64_t appended_bytes = 0;    // framed bytes appended
    uint64_t commits = 0;
    uint64_t fsyncs = 0;
    uint64_t replayed_records = 0;  // records applied by Open()
    uint64_t compactions = 0;
    size_t pending_bytes = 0;  // buffered, not yet committed
    size_t log_bytes = 0;      // durable wal.log size (incl. header)
  };
  Stats stats() const;

  const std::string& dir() const { return dir_; }

 private:
  /// Forwards one chain's PopListener callbacks into the shared log.
  class AttrSink;
  friend class AttrSink;

  PrkbWal(PrkbIndex* index, std::string dir, WalOptions options);

  std::string SnapshotPath() const;
  std::string LogPath() const;

  Status OpenFiles();
  /// Loads snapshot + log into the index; truncates a torn/corrupt tail.
  Status Recover();
  Status ApplyRecord(const uint8_t* payload, size_t size);
  /// Appends one framed record to the in-memory batch (caller encoded the
  /// payload). Thread-safe.
  void Append(const std::vector<uint8_t>& payload);
  /// Attaches listeners for every enabled attribute; snapshots wholesale if
  /// any chain has no recovered state (first attach to a warm index).
  Status AttachAll();
  void HookLocked(edbms::AttrId attr);
  Status CommitLocked();
  Status CompactLocked();

  PrkbIndex* index_;
  const std::string dir_;
  const WalOptions options_;

  mutable std::mutex mu_;
  std::FILE* log_ = nullptr;
  std::vector<uint8_t> pending_;
  std::unordered_map<edbms::AttrId, std::unique_ptr<AttrSink>> sinks_;
  /// Attributes reconstructed by Recover() (snapshot or init records).
  std::unordered_set<edbms::AttrId> recovered_attrs_;
  bool compact_pending_ = false;
  Stats stats_;

  friend class PrkbIndex;
};

}  // namespace prkb::core

#endif  // PRKB_PRKB_WAL_H_
