#ifndef PRKB_CRYPTO_HMAC_H_
#define PRKB_CRYPTO_HMAC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/sha256.h"

namespace prkb::crypto {

/// HMAC-SHA-256 (RFC 2104). Used as the PRF of the searchable-encryption
/// layer (srci/) and for trapdoor integrity tags.
class HmacSha256 {
 public:
  using Tag = Sha256::Digest;

  /// Any key length is accepted; keys longer than the block size are hashed
  /// first, per RFC 2104.
  explicit HmacSha256(const std::vector<uint8_t>& key);

  /// One-shot MAC over `data`.
  Tag Compute(const uint8_t* data, size_t n) const;
  Tag Compute(const std::vector<uint8_t>& data) const {
    return Compute(data.data(), data.size());
  }
  Tag Compute(const std::string& data) const {
    return Compute(reinterpret_cast<const uint8_t*>(data.data()), data.size());
  }

  /// Constant-time tag comparison.
  static bool Verify(const Tag& a, const Tag& b);

 private:
  uint8_t ipad_[Sha256::kBlockSize];
  uint8_t opad_[Sha256::kBlockSize];
};

}  // namespace prkb::crypto

#endif  // PRKB_CRYPTO_HMAC_H_
