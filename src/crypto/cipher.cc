#include "crypto/cipher.h"

#include <cassert>
#include <cstring>

namespace prkb::crypto {

void AesCtr::Crypt(uint64_t nonce, uint8_t* data, size_t n) const {
  uint8_t block[16];
  uint8_t stream[16];
  uint64_t counter = 0;
  size_t pos = 0;
  while (pos < n) {
    std::memcpy(block, &nonce, 8);
    std::memcpy(block + 8, &counter, 8);
    aes_.EncryptBlock(block, stream);
    const size_t chunk = std::min<size_t>(16, n - pos);
    for (size_t i = 0; i < chunk; ++i) data[pos + i] ^= stream[i];
    pos += chunk;
    ++counter;
  }
}

uint64_t AesCtr::CryptWord(uint64_t nonce, uint64_t word) const {
  uint8_t block[16];
  uint8_t stream[16];
  const uint64_t counter = 0;
  std::memcpy(block, &nonce, 8);
  std::memcpy(block + 8, &counter, 8);
  aes_.EncryptBlock(block, stream);
  uint64_t ks;
  std::memcpy(&ks, stream, 8);
  return word ^ ks;
}

void AesEcb::Encrypt(const uint8_t* in, uint8_t* out, size_t n) const {
  assert(n % Aes128::kBlockSize == 0);
  for (size_t off = 0; off < n; off += Aes128::kBlockSize) {
    aes_.EncryptBlock(in + off, out + off);
  }
}

void AesEcb::Decrypt(const uint8_t* in, uint8_t* out, size_t n) const {
  assert(n % Aes128::kBlockSize == 0);
  for (size_t off = 0; off < n; off += Aes128::kBlockSize) {
    aes_.DecryptBlock(in + off, out + off);
  }
}

}  // namespace prkb::crypto
