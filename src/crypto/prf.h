#ifndef PRKB_CRYPTO_PRF_H_
#define PRKB_CRYPTO_PRF_H_

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/aes128.h"
#include "crypto/hmac.h"

namespace prkb::crypto {

/// Keyed pseudo-random function family built on HMAC-SHA-256. Provides the
/// key-derivation and label-hashing primitives the EDBMS and the SSE index
/// need:
///   - Derive(label): an independent subkey per purpose ("value-enc",
///     "trapdoor-enc", SSE node keys, ...)
///   - Eval64 / Eval128: PRF outputs used as table addresses and pads.
class Prf {
 public:
  explicit Prf(const std::vector<uint8_t>& key) : hmac_(key) {}

  /// Derives a 16-byte AES key bound to `label`.
  Aes128::Key DeriveAesKey(const std::string& label) const;

  /// Derives a 32-byte subkey bound to `label`.
  std::vector<uint8_t> DeriveKey(const std::string& label) const;

  /// 64-bit PRF output on (label, x).
  uint64_t Eval64(const std::string& label, uint64_t x) const;

  /// Full 32-byte PRF output on raw bytes.
  HmacSha256::Tag EvalBytes(const uint8_t* data, size_t n) const {
    return hmac_.Compute(data, n);
  }

 private:
  HmacSha256 hmac_;
};

}  // namespace prkb::crypto

#endif  // PRKB_CRYPTO_PRF_H_
