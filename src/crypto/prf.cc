#include "crypto/prf.h"

#include <cstring>

namespace prkb::crypto {

Aes128::Key Prf::DeriveAesKey(const std::string& label) const {
  const auto tag = hmac_.Compute("aes:" + label);
  Aes128::Key key;
  std::memcpy(key.data(), tag.data(), key.size());
  return key;
}

std::vector<uint8_t> Prf::DeriveKey(const std::string& label) const {
  const auto tag = hmac_.Compute("sub:" + label);
  return std::vector<uint8_t>(tag.begin(), tag.end());
}

uint64_t Prf::Eval64(const std::string& label, uint64_t x) const {
  std::vector<uint8_t> msg(label.begin(), label.end());
  for (int i = 0; i < 8; ++i) {
    msg.push_back(static_cast<uint8_t>(x >> (8 * i)));
  }
  const auto tag = hmac_.Compute(msg);
  uint64_t out;
  std::memcpy(&out, tag.data(), 8);
  return out;
}

}  // namespace prkb::crypto
