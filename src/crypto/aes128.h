#ifndef PRKB_CRYPTO_AES128_H_
#define PRKB_CRYPTO_AES128_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace prkb::crypto {

/// AES-128 block cipher (FIPS-197), implemented in portable C++ so the
/// library has no external crypto dependency. One instance holds an expanded
/// key schedule; Encrypt/Decrypt operate on single 16-byte blocks.
///
/// This is the EDBMS's "application level encryption": the data owner and the
/// trusted machine hold the key; the service provider only ever moves
/// ciphertext around.
class Aes128 {
 public:
  static constexpr size_t kBlockSize = 16;
  static constexpr size_t kKeySize = 16;

  using Block = std::array<uint8_t, kBlockSize>;
  using Key = std::array<uint8_t, kKeySize>;

  /// Expands `key` into the 11 round keys.
  explicit Aes128(const Key& key);

  /// Encrypts one block: out = E_k(in). `out` may alias `in`.
  void EncryptBlock(const uint8_t in[kBlockSize],
                    uint8_t out[kBlockSize]) const;

  /// Decrypts one block: out = D_k(in). `out` may alias `in`.
  void DecryptBlock(const uint8_t in[kBlockSize],
                    uint8_t out[kBlockSize]) const;

 private:
  // 11 round keys x 16 bytes.
  std::array<uint8_t, 176> round_keys_;
};

}  // namespace prkb::crypto

#endif  // PRKB_CRYPTO_AES128_H_
