#ifndef PRKB_CRYPTO_CIPHER_H_
#define PRKB_CRYPTO_CIPHER_H_

#include <cstdint>
#include <vector>

#include "crypto/aes128.h"

namespace prkb::crypto {

/// AES-128-CTR stream cipher. Encryption and decryption are the same
/// operation (XOR with the keystream). The 64-bit nonce must be unique per
/// message under one key; the data owner draws nonces from a counter.
class AesCtr {
 public:
  explicit AesCtr(const Aes128::Key& key) : aes_(key) {}

  /// XORs `n` bytes of keystream derived from (nonce, starting counter 0)
  /// into `data` in place.
  void Crypt(uint64_t nonce, uint8_t* data, size_t n) const;

  /// Convenience: encrypts/decrypts a single 64-bit word. This is the hot
  /// path of the EDBMS — one AES block op per attribute value.
  uint64_t CryptWord(uint64_t nonce, uint64_t word) const;

 private:
  Aes128 aes_;
};

/// AES-128-ECB, exposed for FIPS-197 test vectors and for fixed-size
/// deterministic token encryption inside the SSE layer. Do not use ECB for
/// attribute values (deterministic encryption leaks equality).
class AesEcb {
 public:
  explicit AesEcb(const Aes128::Key& key) : aes_(key) {}

  /// Encrypts/decrypts whole blocks; `n` must be a multiple of 16.
  void Encrypt(const uint8_t* in, uint8_t* out, size_t n) const;
  void Decrypt(const uint8_t* in, uint8_t* out, size_t n) const;

 private:
  Aes128 aes_;
};

}  // namespace prkb::crypto

#endif  // PRKB_CRYPTO_CIPHER_H_
