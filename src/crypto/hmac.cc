#include "crypto/hmac.h"

#include <cstring>

namespace prkb::crypto {

HmacSha256::HmacSha256(const std::vector<uint8_t>& key) {
  uint8_t k[Sha256::kBlockSize] = {0};
  if (key.size() > Sha256::kBlockSize) {
    const auto digest = Sha256::Hash(key.data(), key.size());
    std::memcpy(k, digest.data(), digest.size());
  } else {
    std::memcpy(k, key.data(), key.size());
  }
  for (size_t i = 0; i < Sha256::kBlockSize; ++i) {
    ipad_[i] = static_cast<uint8_t>(k[i] ^ 0x36);
    opad_[i] = static_cast<uint8_t>(k[i] ^ 0x5c);
  }
}

HmacSha256::Tag HmacSha256::Compute(const uint8_t* data, size_t n) const {
  Sha256 inner;
  inner.Update(ipad_, Sha256::kBlockSize);
  inner.Update(data, n);
  const auto inner_digest = inner.Finalize();

  Sha256 outer;
  outer.Update(opad_, Sha256::kBlockSize);
  outer.Update(inner_digest.data(), inner_digest.size());
  return outer.Finalize();
}

bool HmacSha256::Verify(const Tag& a, const Tag& b) {
  uint8_t diff = 0;
  for (size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

}  // namespace prkb::crypto
