#ifndef PRKB_CRYPTO_SHA256_H_
#define PRKB_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace prkb::crypto {

/// SHA-256 (FIPS-180-4). Streaming interface plus one-shot helper.
class Sha256 {
 public:
  static constexpr size_t kDigestSize = 32;
  static constexpr size_t kBlockSize = 64;

  using Digest = std::array<uint8_t, kDigestSize>;

  Sha256();

  /// Absorbs `n` bytes.
  void Update(const uint8_t* data, size_t n);
  void Update(const std::vector<uint8_t>& data) {
    Update(data.data(), data.size());
  }

  /// Finalizes and returns the digest. The object must not be reused after
  /// Finalize without reconstruction.
  Digest Finalize();

  /// One-shot digest.
  static Digest Hash(const uint8_t* data, size_t n);
  static Digest Hash(const std::string& s);

 private:
  void ProcessBlock(const uint8_t block[kBlockSize]);

  uint32_t h_[8];
  uint8_t buffer_[kBlockSize];
  size_t buffer_len_ = 0;
  uint64_t total_len_ = 0;
};

}  // namespace prkb::crypto

#endif  // PRKB_CRYPTO_SHA256_H_
