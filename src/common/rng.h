#ifndef PRKB_COMMON_RNG_H_
#define PRKB_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace prkb {

/// Deterministic pseudo-random number generator (xoshiro256**), seeded via
/// splitmix64. Every source of randomness in the library flows through an
/// `Rng` instance so that experiments are reproducible bit-for-bit.
///
/// Not cryptographically secure — cryptographic keys use crypto/prf.h.
class Rng {
 public:
  /// Seeds the four 64-bit lanes from `seed` using splitmix64.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit output.
  uint64_t Next();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  uint64_t UniformInt(uint64_t lo, uint64_t hi);

  /// Uniform signed integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt64(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Standard normal via Box-Muller.
  double Normal();

  /// Normal with the given mean / stddev.
  double Normal(double mean, double stddev) { return mean + stddev * Normal(); }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, i - 1));
      using std::swap;
      swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Picks a uniformly random element; requires a non-empty vector.
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    return v[static_cast<size_t>(UniformInt(0, v.size() - 1))];
  }

 private:
  uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace prkb

#endif  // PRKB_COMMON_RNG_H_
