#ifndef PRKB_COMMON_HISTOGRAM_H_
#define PRKB_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace prkb {

/// Streaming summary of a series of measurements (QPF counts, latencies).
/// Keeps every sample so exact percentiles are available; experiment series
/// are small (hundreds to thousands of points).
class Histogram {
 public:
  void Add(double v);

  size_t count() const { return samples_.size(); }
  double sum() const { return sum_; }
  double Mean() const;
  double Min() const;
  double Max() const;
  /// Exact percentile, q in [0, 100]. Requires at least one sample.
  double Percentile(double q) const;
  double Median() const { return Percentile(50.0); }
  double Stddev() const;

  /// One-line summary, e.g. "n=20 mean=1.2 p50=1.1 p99=3.0 max=3.2".
  std::string ToString() const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  double sum_ = 0.0;
};

}  // namespace prkb

#endif  // PRKB_COMMON_HISTOGRAM_H_
