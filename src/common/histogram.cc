#include "common/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace prkb {

void Histogram::Add(double v) {
  samples_.push_back(v);
  sum_ += v;
  sorted_ = false;
}

double Histogram::Mean() const {
  return samples_.empty() ? 0.0 : sum_ / static_cast<double>(samples_.size());
}

double Histogram::Min() const {
  assert(!samples_.empty());
  return *std::min_element(samples_.begin(), samples_.end());
}

double Histogram::Max() const {
  assert(!samples_.empty());
  return *std::max_element(samples_.begin(), samples_.end());
}

double Histogram::Percentile(double q) const {
  assert(!samples_.empty());
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const double rank = q / 100.0 * static_cast<double>(samples_.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double Histogram::Stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double mean = Mean();
  double acc = 0.0;
  for (double v : samples_) acc += (v - mean) * (v - mean);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

std::string Histogram::ToString() const {
  if (samples_.empty()) return "n=0";
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%zu mean=%.3g p50=%.3g p99=%.3g max=%.3g", count(), Mean(),
                Percentile(50.0), Percentile(99.0), Max());
  return buf;
}

}  // namespace prkb
