#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace prkb {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& lane : s_) lane = SplitMix64(&sm);
  // xoshiro256** must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t lo, uint64_t hi) {
  assert(lo <= hi);
  const uint64_t span = hi - lo;
  if (span == UINT64_MAX) return Next();
  // Rejection sampling to avoid modulo bias.
  const uint64_t bound = span + 1;
  const uint64_t limit = UINT64_MAX - UINT64_MAX % bound;
  uint64_t x;
  do {
    x = Next();
  } while (x >= limit);
  return lo + x % bound;
}

int64_t Rng::UniformInt64(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t span =
      static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo);
  uint64_t off = (span == UINT64_MAX) ? Next() : UniformInt(0, span);
  return static_cast<int64_t>(static_cast<uint64_t>(lo) + off);
}

double Rng::UniformDouble() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u1;
  do {
    u1 = UniformDouble();
  } while (u1 <= 0.0);
  const double u2 = UniformDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

}  // namespace prkb
