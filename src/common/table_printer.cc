#include "common/table_printer.h"

#include <cassert>
#include <cstdio>

namespace prkb {

void TablePrinter::SetHeader(std::vector<std::string> names) {
  assert(rows_.empty());
  header_ = std::move(names);
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  assert(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::Fmt(uint64_t v) { return std::to_string(v); }
std::string TablePrinter::Fmt(int64_t v) { return std::to_string(v); }

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
      if (c + 1 != row.size()) line += "  ";
    }
    line += '\n';
    return line;
  };

  std::string out;
  if (!title_.empty()) {
    out += "== " + title_ + " ==\n";
  }
  out += render_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 != widths.size() ? 2 : 0);
  }
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TablePrinter::Print() const {
  const std::string s = ToString();
  std::fwrite(s.data(), 1, s.size(), stdout);
  std::fflush(stdout);
}

}  // namespace prkb
