#ifndef PRKB_COMMON_RESULT_H_
#define PRKB_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace prkb {

/// Value-or-error carrier in the style of `arrow::Result`. Holds either a `T`
/// or a non-OK `Status`. Accessing the value of an errored result is a
/// programming error (checked by assert in debug builds).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value makes `return value;` work.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a (non-OK) status makes
  /// `return Status::InvalidArgument(...);` work.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok());
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a `Result<T>` expression to `lhs`, early-returning the
/// status on failure.
#define PRKB_ASSIGN_OR_RETURN(lhs, expr)          \
  auto PRKB_CONCAT_(_res_, __LINE__) = (expr);    \
  if (!PRKB_CONCAT_(_res_, __LINE__).ok())        \
    return PRKB_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(PRKB_CONCAT_(_res_, __LINE__)).value()

#define PRKB_CONCAT_(a, b) PRKB_CONCAT_IMPL_(a, b)
#define PRKB_CONCAT_IMPL_(a, b) a##b

}  // namespace prkb

#endif  // PRKB_COMMON_RESULT_H_
