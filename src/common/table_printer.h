#ifndef PRKB_COMMON_TABLE_PRINTER_H_
#define PRKB_COMMON_TABLE_PRINTER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace prkb {

/// Renders aligned text tables for the benchmark harness so every bench
/// binary prints the same rows/series the paper's tables and figures report.
class TablePrinter {
 public:
  /// `title` is printed above the table; pass "" to omit.
  explicit TablePrinter(std::string title = "") : title_(std::move(title)) {}

  /// Sets the header row. Must be called before adding rows.
  void SetHeader(std::vector<std::string> names);

  /// Appends a data row; its arity must match the header.
  void AddRow(std::vector<std::string> cells);

  /// Convenience cell formatters.
  static std::string Fmt(double v, int precision = 3);
  static std::string Fmt(uint64_t v);
  static std::string Fmt(int64_t v);

  /// Renders the table with column alignment.
  std::string ToString() const;

  /// Renders and writes to stdout.
  void Print() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace prkb

#endif  // PRKB_COMMON_TABLE_PRINTER_H_
