#include "common/bitvector.h"

#include <bit>
#include <cassert>

namespace prkb {

BitVector::BitVector(size_t n, bool value) { Resize(n, value); }

void BitVector::Resize(size_t n, bool value) {
  const size_t old_size = size_;
  size_ = n;
  words_.resize((n + 63) / 64, value ? ~0ULL : 0ULL);
  if (value && n > old_size) {
    // Bits between old_size and the end of its word must be raised.
    for (size_t i = old_size; i < n && (i & 63) != 0; ++i) Set(i);
  }
  ZeroTail();
}

void BitVector::ZeroTail() {
  const size_t tail = size_ & 63;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (1ULL << tail) - 1;
  }
}

size_t BitVector::Count() const {
  size_t n = 0;
  for (uint64_t w : words_) n += static_cast<size_t>(std::popcount(w));
  return n;
}

void BitVector::Reset() {
  for (auto& w : words_) w = 0;
}

std::vector<uint32_t> BitVector::ToIndices() const {
  std::vector<uint32_t> out;
  out.reserve(Count());
  for (size_t wi = 0; wi < words_.size(); ++wi) {
    uint64_t w = words_[wi];
    while (w != 0) {
      const int bit = std::countr_zero(w);
      out.push_back(static_cast<uint32_t>(wi * 64 + bit));
      w &= w - 1;
    }
  }
  return out;
}

void BitVector::And(const BitVector& other) {
  assert(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
}

void BitVector::Or(const BitVector& other) {
  assert(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
}

}  // namespace prkb
