#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace prkb {
namespace {

/// Pool telemetry: queue_depth's high-water mark shows backlog under load;
/// task_ns is per-task execution time, not queueing delay
/// (docs/OBSERVABILITY.md).
struct PoolMetrics {
  obs::Counter* tasks;
  obs::Gauge* queue_depth;
  obs::LatencyHistogram* task_ns;

  static const PoolMetrics& Get() {
    static const PoolMetrics m = {
        obs::MetricsRegistry::Global().GetCounter("threadpool.tasks"),
        obs::MetricsRegistry::Global().GetGauge("threadpool.queue_depth"),
        obs::MetricsRegistry::Global().GetHistogram("threadpool.task_ns"),
    };
    return m;
  }
};

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(fn));
    PoolMetrics::Get().queue_depth->Set(
        static_cast<int64_t>(queue_.size()));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> fn;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping
      fn = std::move(queue_.front());
      queue_.pop_front();
      PoolMetrics::Get().queue_depth->Set(
          static_cast<int64_t>(queue_.size()));
    }
    const PoolMetrics& metrics = PoolMetrics::Get();
    metrics.tasks->Add(1);
    const uint64_t t0 = obs::ObsTracer::NowNs();
    fn();
    metrics.task_ns->Record(obs::ObsTracer::NowNs() - t0);
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                             size_t max_concurrency) {
  if (n == 0) return;
  if (max_concurrency == 0) max_concurrency = 1;
  const size_t helpers = std::min({size(), n - 1, max_concurrency - 1});
  if (helpers == 0) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Shared work-claiming state; the caller participates so a busy pool can
  // never stall the query issuing the scan.
  struct Work {
    std::atomic<size_t> next{0};
    std::atomic<size_t> pending{0};
    std::mutex mu;
    std::condition_variable done;
  };
  auto work = std::make_shared<Work>();
  work->pending.store(helpers, std::memory_order_relaxed);

  auto drain = [work, n, &fn] {
    size_t i;
    while ((i = work->next.fetch_add(1, std::memory_order_relaxed)) < n) {
      fn(i);
    }
  };
  for (size_t h = 0; h < helpers; ++h) {
    Submit([work, drain] {
      drain();
      if (work->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(work->mu);
        work->done.notify_one();
      }
    });
  }
  drain();
  std::unique_lock<std::mutex> lock(work->mu);
  work->done.wait(lock, [&work] {
    return work->pending.load(std::memory_order_acquire) == 0;
  });
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = [] {
    const unsigned hw = std::thread::hardware_concurrency();
    const size_t n = std::min<size_t>(8, hw > 1 ? hw - 1 : 1);
    return new ThreadPool(n);
  }();
  return *pool;
}

}  // namespace prkb
