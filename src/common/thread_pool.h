#ifndef PRKB_COMMON_THREAD_POOL_H_
#define PRKB_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace prkb {

/// Small fixed-size worker pool for data-parallel scan work. Threads are
/// started once and reused; the intended consumers are batched QPF scans,
/// where each task issues one EvalBatch round trip and the pool keeps several
/// round trips in flight concurrently.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return threads_.size(); }

  /// Enqueues `fn` for execution on some worker.
  void Submit(std::function<void()> fn);

  /// Runs fn(0) … fn(n-1) across the workers *and* the calling thread,
  /// returning once all n invocations finished. `fn` must be safe to call
  /// concurrently. At most `max_concurrency` threads (including the caller)
  /// take part. Serial fallback when the pool is empty or n == 1.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                   size_t max_concurrency = static_cast<size_t>(-1));

  /// Process-wide pool, sized to the hardware (capped), created on first
  /// use. Scan code paths share it instead of spawning threads per query.
  static ThreadPool& Shared();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace prkb

#endif  // PRKB_COMMON_THREAD_POOL_H_
