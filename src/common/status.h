#ifndef PRKB_COMMON_STATUS_H_
#define PRKB_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace prkb {

/// Error handling follows the RocksDB/Arrow convention: library code never
/// throws; fallible operations return a `Status` (or a `Result<T>`, see
/// result.h) that the caller must inspect.
class Status {
 public:
  /// Machine-readable error category.
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kCorruption,
    kNotSupported,
    kOutOfRange,
    kIoError,
    kInternal,
  };

  /// Default-constructed status is success.
  Status() = default;

  /// Factory functions — the only way to build non-OK statuses.
  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(Code::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "InvalidArgument: empty table".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_ = Code::kOk;
  std::string message_;
};

/// Evaluates `expr` (a Status expression) and early-returns it on failure.
#define PRKB_RETURN_IF_ERROR(expr)              \
  do {                                          \
    ::prkb::Status _prkb_status = (expr);       \
    if (!_prkb_status.ok()) return _prkb_status; \
  } while (0)

}  // namespace prkb

#endif  // PRKB_COMMON_STATUS_H_
