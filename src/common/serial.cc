#include "common/serial.h"

#include <array>
#include <cstring>

namespace prkb {

uint32_t Crc32(const uint8_t* data, size_t size) {
  // Byte-at-a-time table, built once (reflected 0xEDB88320 polynomial).
  static const auto table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ data[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void Encoder::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void Encoder::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void Encoder::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<uint8_t>(v));
}

void Encoder::PutBytes(const std::vector<uint8_t>& bytes) {
  PutVarint(bytes.size());
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

void Encoder::PutString(const std::string& s) {
  PutVarint(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

Status Decoder::GetU8(uint8_t* out) {
  if (pos_ + 1 > size_) return Status::Corruption("truncated u8");
  *out = data_[pos_++];
  return Status::Ok();
}

Status Decoder::GetU32(uint32_t* out) {
  if (pos_ + 4 > size_) return Status::Corruption("truncated u32");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  *out = v;
  return Status::Ok();
}

Status Decoder::GetU64(uint64_t* out) {
  if (pos_ + 8 > size_) return Status::Corruption("truncated u64");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  *out = v;
  return Status::Ok();
}

Status Decoder::GetVarint(uint64_t* out) {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (pos_ >= size_) return Status::Corruption("truncated varint");
    if (shift >= 64) return Status::Corruption("varint overflow");
    const uint8_t byte = data_[pos_++];
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  *out = v;
  return Status::Ok();
}

Status Decoder::GetBytes(std::vector<uint8_t>* out) {
  uint64_t n = 0;
  PRKB_RETURN_IF_ERROR(GetVarint(&n));
  if (pos_ + n > size_) return Status::Corruption("truncated bytes");
  out->assign(data_ + pos_, data_ + pos_ + n);
  pos_ += n;
  return Status::Ok();
}

Status Decoder::GetString(std::string* out) {
  uint64_t n = 0;
  PRKB_RETURN_IF_ERROR(GetVarint(&n));
  if (pos_ + n > size_) return Status::Corruption("truncated string");
  out->assign(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return Status::Ok();
}

}  // namespace prkb
