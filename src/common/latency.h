#ifndef PRKB_COMMON_LATENCY_H_
#define PRKB_COMMON_LATENCY_H_

#include <chrono>
#include <cstdint>
#include <thread>

namespace prkb {

/// Polite busy-wait hint: tells the core we are spinning so a hyper-twin (or
/// the TSan scheduler) gets the pipeline. Falls back to a scheduler yield on
/// architectures without a dedicated relax instruction.
inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

/// Blocks the calling thread for `ns` nanoseconds to emulate a hardware or
/// network round trip. Short waits are spun (sleeping would overshoot badly
/// at microsecond scale); above the threshold the thread genuinely sleeps so
/// latency benchmarks with many workers don't burn one core per worker.
inline void SimulatedLatencyNanos(uint64_t ns) {
  if (ns == 0) return;
  constexpr uint64_t kSpinCeilingNs = 50'000;  // ~ scheduler quantum accuracy
  const auto start = std::chrono::steady_clock::now();
  if (ns >= kSpinCeilingNs) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
    return;
  }
  while (std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - start)
             .count() < static_cast<int64_t>(ns)) {
    CpuRelax();
  }
}

/// The single point where a backend charges simulated round-trip latency.
///
/// Every in-process QPF backend owns exactly one LatencyModel and calls
/// Apply() once per backend entry (TrustedMachine per TM call, SdbEdbms per
/// MPC round). Transport shims that ride a *real* wire
/// (net::RemoteQpfOracle / net::RemoteEdbms) never own one — the network
/// provides the latency — so a served evaluation is charged exactly once:
/// simulated at the hosting backend, or physical on the wire, never both.
/// A server hosting a backend for remote clients should zero the backend's
/// model unless it deliberately emulates extra hardware latency (an FPGA TM
/// behind a LAN hop pays both, which is then a modelling choice, not an
/// accounting bug).
class LatencyModel {
 public:
  LatencyModel() = default;
  explicit LatencyModel(uint64_t ns) : ns_(ns) {}

  void set_ns(uint64_t ns) { ns_ = ns; }
  uint64_t ns() const { return ns_; }
  bool enabled() const { return ns_ != 0; }

  /// Charges one simulated round trip. No-op when the model is disabled.
  void Apply() const { SimulatedLatencyNanos(ns_); }

 private:
  uint64_t ns_ = 0;
};

}  // namespace prkb

#endif  // PRKB_COMMON_LATENCY_H_
