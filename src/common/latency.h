#ifndef PRKB_COMMON_LATENCY_H_
#define PRKB_COMMON_LATENCY_H_

#include <chrono>
#include <cstdint>
#include <thread>

namespace prkb {

/// Blocks the calling thread for `ns` nanoseconds to emulate a hardware or
/// network round trip. Short waits are spun (sleeping would overshoot badly
/// at microsecond scale); above the threshold the thread genuinely sleeps so
/// latency benchmarks with many workers don't burn one core per worker.
inline void SimulatedLatencyNanos(uint64_t ns) {
  if (ns == 0) return;
  constexpr uint64_t kSpinCeilingNs = 50'000;  // ~ scheduler quantum accuracy
  const auto start = std::chrono::steady_clock::now();
  if (ns >= kSpinCeilingNs) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
    return;
  }
  while (std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - start)
             .count() < static_cast<int64_t>(ns)) {
  }
}

}  // namespace prkb

#endif  // PRKB_COMMON_LATENCY_H_
