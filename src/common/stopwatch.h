#ifndef PRKB_COMMON_STOPWATCH_H_
#define PRKB_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace prkb {

/// Monotonic wall-clock stopwatch used by the benchmark harness.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction / last Reset.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  uint64_t ElapsedMicros() const {
    return static_cast<uint64_t>(ElapsedSeconds() * 1e6);
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace prkb

#endif  // PRKB_COMMON_STOPWATCH_H_
