#ifndef PRKB_COMMON_SERIAL_H_
#define PRKB_COMMON_SERIAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace prkb {

/// Little binary encoder used by PRKB persistence (prkb/prkb_io.h).
/// Fixed-width little-endian integers plus LEB128 varints and
/// length-prefixed byte strings.
class Encoder {
 public:
  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutVarint(uint64_t v);
  void PutBytes(const std::vector<uint8_t>& bytes);
  void PutString(const std::string& s);

  const std::vector<uint8_t>& buffer() const { return buf_; }
  std::vector<uint8_t> Release() { return std::move(buf_); }

 private:
  std::vector<uint8_t> buf_;
};

/// CRC-32 (IEEE 802.3 polynomial, reflected) over `data[0..size)`. Frames
/// every WAL record (prkb/wal.h) so torn or bit-flipped tails are detected
/// on replay.
uint32_t Crc32(const uint8_t* data, size_t size);

/// Counterpart decoder. All getters return Corruption on truncated input.
class Decoder {
 public:
  Decoder(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit Decoder(const std::vector<uint8_t>& buf)
      : Decoder(buf.data(), buf.size()) {}

  Status GetU8(uint8_t* out);
  Status GetU32(uint32_t* out);
  Status GetU64(uint64_t* out);
  Status GetVarint(uint64_t* out);
  Status GetBytes(std::vector<uint8_t>* out);
  Status GetString(std::string* out);

  /// True when all bytes have been consumed.
  bool Done() const { return pos_ == size_; }
  size_t remaining() const { return size_ - pos_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace prkb

#endif  // PRKB_COMMON_SERIAL_H_
