#ifndef PRKB_COMMON_BITVECTOR_H_
#define PRKB_COMMON_BITVECTOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace prkb {

/// Compact dynamic bit set. Used for selection result sets and grid masks,
/// where `std::vector<bool>` lacks a popcount and word-level access.
class BitVector {
 public:
  BitVector() = default;
  /// Creates `n` bits, all set to `value`.
  explicit BitVector(size_t n, bool value = false);

  size_t size() const { return size_; }

  /// Grows/shrinks to `n` bits; new bits are `value`.
  void Resize(size_t n, bool value = false);

  bool Get(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }
  void Set(size_t i) { words_[i >> 6] |= 1ULL << (i & 63); }
  void Clear(size_t i) { words_[i >> 6] &= ~(1ULL << (i & 63)); }
  void Assign(size_t i, bool value) {
    if (value) {
      Set(i);
    } else {
      Clear(i);
    }
  }

  /// Number of set bits.
  size_t Count() const;

  /// Sets every bit to false without changing the size.
  void Reset();

  /// Indices of all set bits, in increasing order.
  std::vector<uint32_t> ToIndices() const;

  /// In-place intersection; both vectors must have equal size.
  void And(const BitVector& other);
  /// In-place union; both vectors must have equal size.
  void Or(const BitVector& other);

  bool operator==(const BitVector& other) const {
    return size_ == other.size_ && words_ == other.words_;
  }

 private:
  void ZeroTail();

  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace prkb

#endif  // PRKB_COMMON_BITVECTOR_H_
