#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace prkb::obs {
namespace {

/// Small stable per-thread id, assigned in first-use order (Chrome's viewer
/// renders one row per tid; std::thread::id values are too wide to be
/// readable).
uint32_t ThisThreadId() {
  static std::atomic<uint32_t> next{1};
  thread_local const uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace

ObsTracer& ObsTracer::Global() {
  static ObsTracer* tracer = new ObsTracer();
  return *tracer;
}

uint64_t ObsTracer::NowNs() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point origin = Clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           origin)
          .count());
}

void ObsTracer::Enable(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.assign(capacity == 0 ? 1 : capacity, TraceEvent{});
  next_seq_ = 0;
  enabled_.store(true, std::memory_order_relaxed);
}

void ObsTracer::Disable() { enabled_.store(false, std::memory_order_relaxed); }

void ObsTracer::Record(const char* name, uint64_t start_ns, uint64_t dur_ns) {
  const uint32_t tid = ThisThreadId();
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.empty()) return;  // enabled flag raced an Enable(); drop
  TraceEvent& slot = ring_[next_seq_ % ring_.size()];
  slot.name = name;
  slot.start_ns = start_ns;
  slot.dur_ns = dur_ns;
  slot.tid = tid;
  slot.seq = next_seq_++;
}

std::vector<TraceEvent> ObsTracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  if (ring_.empty() || next_seq_ == 0) return out;
  const uint64_t live = std::min<uint64_t>(next_seq_, ring_.size());
  out.reserve(live);
  for (uint64_t seq = next_seq_ - live; seq < next_seq_; ++seq) {
    out.push_back(ring_[seq % ring_.size()]);
  }
  return out;
}

uint64_t ObsTracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.empty() || next_seq_ <= ring_.size() ? 0
                                                    : next_seq_ - ring_.size();
}

uint64_t ObsTracer::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_;
}

bool ObsTracer::ExportChromeTrace(const std::string& path) const {
  const std::vector<TraceEvent> events = Snapshot();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write trace to %s\n", path.c_str());
    return false;
  }
  // Complete ("X" phase) events with microsecond timestamps — the minimal
  // schema chrome://tracing and Perfetto both accept.
  std::fprintf(f, "{\"traceEvents\":[\n");
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    std::fprintf(f,
                 "{\"name\":\"%s\",\"cat\":\"prkb\",\"ph\":\"X\","
                 "\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%u}%s\n",
                 e.name, static_cast<double>(e.start_ns) / 1e3,
                 static_cast<double>(e.dur_ns) / 1e3, e.tid,
                 i + 1 < events.size() ? "," : "");
  }
  std::fprintf(f, "]}\n");
  std::fclose(f);
  return true;
}

std::string ObsTracer::DumpText() const {
  std::string out;
  char line[256];
  for (const TraceEvent& e : Snapshot()) {
    std::snprintf(line, sizeof(line), "%12.3f %10.3f  tid=%-3u %s\n",
                  static_cast<double>(e.start_ns) / 1e3,
                  static_cast<double>(e.dur_ns) / 1e3, e.tid, e.name);
    out += line;
  }
  return out;
}

}  // namespace prkb::obs
