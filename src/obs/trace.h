#ifndef PRKB_OBS_TRACE_H_
#define PRKB_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace prkb::obs {

/// One completed span. `name` must be a string literal (or otherwise outlive
/// the tracer) — spans are recorded on hot-ish paths and never copy strings.
struct TraceEvent {
  const char* name = nullptr;
  uint64_t start_ns = 0;  ///< Relative to the process-local trace clock.
  uint64_t dur_ns = 0;
  uint32_t tid = 0;  ///< Stable per-thread id (small integer, first-use order).
  uint64_t seq = 0;  ///< Global record order; survivors are the newest.
};

/// Span-based tracer with a fixed-capacity ring buffer. Disabled (the
/// default) it costs one relaxed atomic load per span; enabled, each span
/// costs two clock reads and a short critical section. When the buffer wraps,
/// the oldest events are overwritten and counted as dropped.
///
/// Export targets: Chrome's trace_event JSON (load via chrome://tracing or
/// https://ui.perfetto.dev) and a flat text dump. See docs/OBSERVABILITY.md.
class ObsTracer {
 public:
  static ObsTracer& Global();

  /// Clears the buffer, (re)sizes it, and starts recording.
  void Enable(size_t capacity = kDefaultCapacity);
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Records one completed span (normally via Span, not directly).
  void Record(const char* name, uint64_t start_ns, uint64_t dur_ns);

  /// Surviving events, oldest first. Thread-safe; recording may continue.
  std::vector<TraceEvent> Snapshot() const;
  /// Events overwritten by ring-buffer wraparound since Enable().
  uint64_t dropped() const;
  /// Total events ever recorded since Enable().
  uint64_t recorded() const;

  /// Writes the surviving events as a Chrome trace_event JSON document.
  /// Returns false (message on stderr) if the file cannot be written.
  bool ExportChromeTrace(const std::string& path) const;
  /// Flat text dump: one `start_us dur_us tid name` line per event.
  std::string DumpText() const;

  /// Nanoseconds on the tracer's monotonic clock (0 = process start-ish).
  static uint64_t NowNs();

  /// RAII span: samples the clock at construction and records itself at
  /// destruction. Zero-cost (beyond one atomic load) while the tracer is
  /// disabled; becoming enabled mid-span records a short tail, which is fine.
  class Span {
   public:
    explicit Span(const char* name)
        : name_(name),
          start_ns_(Global().enabled() ? NowNs() : 0) {}
    ~Span() {
      if (start_ns_ != 0 && Global().enabled()) {
        Global().Record(name_, start_ns_, NowNs() - start_ns_);
      }
    }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

   private:
    const char* name_;
    uint64_t start_ns_;
  };

 private:
  static constexpr size_t kDefaultCapacity = 1 << 16;

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  uint64_t next_seq_ = 0;  // also the total recorded count
};

}  // namespace prkb::obs

#endif  // PRKB_OBS_TRACE_H_
