#ifndef PRKB_OBS_METRICS_H_
#define PRKB_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace prkb::obs {

/// Monotonically increasing event count. All mutators are single relaxed
/// atomics — safe to bump from any thread, including pool workers mid-scan.
class Counter {
 public:
  void Add(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Instantaneous signed level (queue depth, chain length). Tracks the
/// high-water mark since the last reset alongside the current value.
class Gauge {
 public:
  void Set(int64_t v) {
    v_.store(v, std::memory_order_relaxed);
    RaiseMax(v);
  }
  void Add(int64_t d) {
    RaiseMax(v_.fetch_add(d, std::memory_order_relaxed) + d);
  }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }
  int64_t max() const { return max_.load(std::memory_order_relaxed); }
  void Reset() {
    v_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  void RaiseMax(int64_t v) {
    int64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::atomic<int64_t> v_{0};
  std::atomic<int64_t> max_{0};
};

/// Fixed-bucket histogram with power-of-two bucket boundaries, built for
/// latencies but unit-agnostic (the metric name's suffix declares the unit:
/// `_ns`, `_tuples`, ...). Bucket 0 counts the value 0; bucket b >= 1 counts
/// values in [2^(b-1), 2^b - 1]; the last bucket absorbs everything larger.
/// Recording is a handful of relaxed atomics — no locks on the fast path.
class LatencyHistogram {
 public:
  static constexpr size_t kBuckets = 48;

  /// Bucket index a value lands in (exposed for tests and renderers).
  static size_t BucketOf(uint64_t v) {
    size_t b = 0;
    while (v > 0) {
      ++b;
      v >>= 1;
    }
    return b < kBuckets ? b : kBuckets - 1;
  }
  /// Inclusive upper bound of bucket `b` (2^b - 1; saturates at the top).
  static uint64_t BucketUpper(size_t b) {
    return b >= 64 ? ~uint64_t{0} : (uint64_t{1} << b) - 1;
  }

  void Record(uint64_t v) {
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    buckets_[BucketOf(v)].fetch_add(1, std::memory_order_relaxed);
    uint64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  uint64_t bucket(size_t b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }
  void Reset();

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
  std::atomic<uint64_t> buckets_[kBuckets] = {};
};

/// Point-in-time copy of one histogram, with derived statistics.
struct HistogramSnapshot {
  std::string name;
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  std::vector<uint64_t> buckets;

  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// Upper bound of the bucket containing the p-th percentile sample
  /// (p in [0, 1]); exact to within one power-of-two bucket.
  uint64_t ApproxPercentile(double p) const;
};

/// Point-in-time copy of the whole registry, detached from the live
/// instruments. Name-sorted so renderings and JSON exports are stable.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  struct GaugeValue {
    std::string name;
    int64_t value = 0;
    int64_t max = 0;
  };
  std::vector<GaugeValue> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Multi-line human-readable dump (one instrument per line).
  std::string ToText() const;
};

/// Process-wide catalogue of named instruments. Lookup registers on first
/// use under a mutex; the returned pointers are stable for the process
/// lifetime, so call sites cache them in function-local statics and the
/// steady-state cost of an update is the instrument's own atomics.
///
/// docs/OBSERVABILITY.md is the authoritative list of names this codebase
/// registers; keep it in sync when instrumenting new call sites.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  LatencyHistogram* GetHistogram(std::string_view name);

  MetricsSnapshot Snapshot() const;
  /// Zeroes every instrument. Registrations (and handed-out pointers)
  /// survive — this is the uniform "start a fresh measurement" operation.
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>, std::less<>>
      histograms_;
};

}  // namespace prkb::obs

#endif  // PRKB_OBS_METRICS_H_
