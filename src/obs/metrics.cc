#include "obs/metrics.h"

#include <cstdio>

namespace prkb::obs {

void LatencyHistogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

uint64_t HistogramSnapshot::ApproxPercentile(double p) const {
  if (count == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  // Rank of the percentile sample, 1-based; walk buckets until covered.
  const uint64_t rank =
      static_cast<uint64_t>(p * static_cast<double>(count - 1)) + 1;
  uint64_t seen = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    seen += buckets[b];
    if (seen >= rank) return LatencyHistogram::BucketUpper(b);
  }
  return max;
}

std::string MetricsSnapshot::ToText() const {
  std::string out;
  char line[256];
  for (const auto& [name, value] : counters) {
    std::snprintf(line, sizeof(line), "counter    %-34s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    out += line;
  }
  for (const auto& g : gauges) {
    std::snprintf(line, sizeof(line), "gauge      %-34s %lld (max %lld)\n",
                  g.name.c_str(), static_cast<long long>(g.value),
                  static_cast<long long>(g.max));
    out += line;
  }
  for (const auto& h : histograms) {
    std::snprintf(line, sizeof(line),
                  "histogram  %-34s count=%llu mean=%.1f p50<=%llu "
                  "p99<=%llu max=%llu\n",
                  h.name.c_str(), static_cast<unsigned long long>(h.count),
                  h.Mean(),
                  static_cast<unsigned long long>(h.ApproxPercentile(0.50)),
                  static_cast<unsigned long long>(h.ApproxPercentile(0.99)),
                  static_cast<unsigned long long>(h.max));
    out += line;
  }
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

LatencyHistogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<LatencyHistogram>())
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g->value(), g->max()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.count = h->count();
    hs.sum = h->sum();
    hs.max = h->max();
    hs.buckets.resize(LatencyHistogram::kBuckets);
    for (size_t b = 0; b < LatencyHistogram::kBuckets; ++b) {
      hs.buckets[b] = h->bucket(b);
    }
    snap.histograms.push_back(std::move(hs));
  }
  return snap;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace prkb::obs
