#include "attack/order_recovery.h"

#include <algorithm>

namespace prkb::attack {

using edbms::CompareOp;
using edbms::PlainPredicate;
using edbms::Value;

OrderRecovery::OrderRecovery(std::vector<Value> column)
    : distinct_(std::move(column)) {
  std::sort(distinct_.begin(), distinct_.end());
  distinct_.erase(std::unique(distinct_.begin(), distinct_.end()),
                  distinct_.end());
}

void OrderRecovery::AddCut(Value threshold, bool strict_less) {
  // Rank r such that the cut separates distinct_[0..r-1] from
  // distinct_[r..]: values v with (v < threshold) (strict) or
  // (v <= threshold) (non-strict) are below the cut.
  size_t r;
  if (strict_less) {
    r = static_cast<size_t>(
        std::lower_bound(distinct_.begin(), distinct_.end(), threshold) -
        distinct_.begin());
  } else {
    r = static_cast<size_t>(
        std::upper_bound(distinct_.begin(), distinct_.end(), threshold) -
        distinct_.begin());
  }
  // Cuts at the extremes split nothing.
  if (r == 0 || r >= distinct_.size()) return;
  cut_ranks_.insert(r);
}

void OrderRecovery::Observe(const PlainPredicate& pred) {
  if (pred.kind == edbms::PredicateKind::kBetween) {
    ObserveRange(pred.lo, pred.hi);
    return;
  }
  switch (pred.op) {
    case CompareOp::kLt:   // below side: v < c
    case CompareOp::kGe:   // same split point
      AddCut(pred.lo, /*strict_less=*/true);
      break;
    case CompareOp::kLe:   // below side: v <= c
    case CompareOp::kGt:
      AddCut(pred.lo, /*strict_less=*/false);
      break;
  }
}

void OrderRecovery::ObserveRange(Value lo, Value hi) {
  // 'lo <= X <= hi' splits at both band edges (Appendix A general case).
  AddCut(lo, /*strict_less=*/true);
  AddCut(hi, /*strict_less=*/false);
}

}  // namespace prkb::attack
