#ifndef PRKB_ATTACK_ORDER_RECOVERY_H_
#define PRKB_ATTACK_ORDER_RECOVERY_H_

#include <cstdint>
#include <set>
#include <vector>

#include "edbms/types.h"

namespace prkb::attack {

/// Measures how much ordering information a compromised service provider can
/// accumulate from observed selection results (Sec. 3.3 / Sec. 8.1, after
/// Kellaris et al. CCS'16).
///
/// Every comparison predicate an attacker observes splits the (hidden) sorted
/// order of the column at one point. The union of all observed split points
/// is exactly the partial order partitions PRKB would hold, so the recovered
/// knowledge can be computed directly on ground truth without running the
/// cryptographic machinery: this class is an *information* meter, not a
/// processing-cost meter. `order_recovery_test.cc` cross-checks it against a
/// real PRKB run.
///
/// RPOI (recovered portion of ordering information) is defined in the paper
/// as (recovered partial order length) / (total order length), where a
/// partial order's length is its longest chain. One tuple per partition can
/// be chained, so the recovered length equals the partition count; the total
/// order length is the number of distinct values.
class OrderRecovery {
 public:
  /// `column` is the victim attribute's plain values (ground truth).
  explicit OrderRecovery(std::vector<edbms::Value> column);

  /// Feeds one observed comparison predicate. Only the induced split point
  /// matters; equivalent predicates add nothing (Def. 4.3).
  void Observe(const edbms::PlainPredicate& pred);

  /// Feeds a BETWEEN predicate (two split points, Appendix A general case).
  void ObserveRange(edbms::Value lo, edbms::Value hi);

  /// Number of partitions the attacker's knowledge currently induces.
  size_t partitions() const { return cut_ranks_.size() + 1; }

  /// Longest chain of the recovered partial order = partitions().
  size_t RecoveredOrderLength() const { return partitions(); }

  /// Total order length = number of distinct values.
  size_t TotalOrderLength() const { return distinct_.size(); }

  /// RPOI in [0, 1].
  double Rpoi() const {
    return TotalOrderLength() == 0
               ? 0.0
               : static_cast<double>(RecoveredOrderLength()) /
                     static_cast<double>(TotalOrderLength());
  }

 private:
  /// Registers the cut that places values < `threshold` on one side
  /// (strict) or values <= `threshold` (non-strict).
  void AddCut(edbms::Value threshold, bool strict_less);

  std::vector<edbms::Value> distinct_;  // sorted distinct values
  std::set<size_t> cut_ranks_;  // cut between distinct_[r-1] and distinct_[r]
};

}  // namespace prkb::attack

#endif  // PRKB_ATTACK_ORDER_RECOVERY_H_
