#!/usr/bin/env bash
# Reruns every experiment at the paper's dataset sizes (--scale=1.0).
#
# WARNING: paper scale means 10M-20M tuples and Logarithmic-SRC-i indexes of
# several GB; budget tens of GB of RAM and multiple hours on one core. The
# default-scale run (`for b in build/bench/bench_*; do $b; done`) reproduces
# every qualitative result in minutes; this script exists for full-size
# validation runs on a big machine.
#
# Usage: scripts/run_paper_scale.sh [output-file]

set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-bench_output_paper_scale.txt}"
build_dir="build"

if [ ! -d "$build_dir/bench" ]; then
  echo "build first: cmake -B build -G Ninja && cmake --build build" >&2
  exit 1
fi

{
  for b in "$build_dir"/bench/bench_*; do
    [ -x "$b" ] && [ -f "$b" ] || continue
    name="$(basename "$b")"
    echo "===== $name (--scale=1.0) ====="
    start=$SECONDS
    "$b" --scale=1.0
    echo "[elapsed $((SECONDS - start))s]"
    echo
  done
} | tee "$out"

echo "wrote $out"
