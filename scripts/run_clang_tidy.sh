#!/usr/bin/env bash
# Runs clang-tidy (profile: .clang-tidy — modernize + bugprone + performance)
# over the first-party sources using the compile database exported by CMake
# (CMAKE_EXPORT_COMPILE_COMMANDS is ON in the top-level CMakeLists.txt).
#
# Exits 0 with a notice when clang-tidy is not installed so local builds on
# minimal containers are not blocked; CI installs clang-tidy and treats its
# findings (WarningsAsErrors in .clang-tidy) as failures.
#
# Usage: scripts/run_clang_tidy.sh [build_dir] [clang-tidy-binary]

set -u
cd "$(dirname "$0")/.."

build_dir="${1:-build}"
tidy_bin="${2:-clang-tidy}"

if ! command -v "$tidy_bin" >/dev/null 2>&1; then
  echo "run_clang_tidy: $tidy_bin not installed; skipping (CI runs it)"
  exit 0
fi

db="$build_dir/compile_commands.json"
if [ ! -f "$db" ]; then
  echo "run_clang_tidy: $db missing — configure first: cmake -B $build_dir -S ." >&2
  exit 2
fi

# First-party translation units only; third-party and generated code are
# outside the profile's scope.
mapfile -t sources < <(git ls-files 'src/**/*.cc' 'tools/*.cc' 'bench/*.cc')
if [ "${#sources[@]}" -eq 0 ]; then
  echo "run_clang_tidy: no sources found" >&2
  exit 2
fi

echo "run_clang_tidy: ${#sources[@]} file(s) against $db"
status=0
# run-clang-tidy parallelises when available; otherwise iterate.
if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -clang-tidy-binary "$tidy_bin" -p "$build_dir" -quiet \
    "${sources[@]}" || status=$?
else
  for f in "${sources[@]}"; do
    "$tidy_bin" -p "$build_dir" --quiet "$f" || status=$?
  done
fi
exit $status
