#!/usr/bin/env bash
# Validates that a bench JSON document follows the layout contracted in
# docs/BENCH_FORMAT.md: top-level bench/config/rows/metrics, the common
# config keys, non-empty rows with a consistent key set, and a flat
# scalar-valued metrics block. Guards checked-in baselines (BENCH_*.json)
# and the CI smoke runs against silent schema drift.
#
# Usage: scripts/check_bench_schema.sh <file.json> [expected_row_key ...]

set -u

if [ "$#" -lt 1 ]; then
  echo "usage: $0 <file.json> [expected_row_key ...]" >&2
  exit 2
fi

file="$1"
shift

python3 - "$file" "$@" <<'EOF'
import json
import sys

path, expected_keys = sys.argv[1], sys.argv[2:]
fail = []

try:
    with open(path) as f:
        doc = json.load(f)
except (OSError, ValueError) as e:
    print(f"{path}: unreadable or invalid JSON: {e}", file=sys.stderr)
    sys.exit(1)

for key, typ in (("bench", str), ("config", dict), ("rows", list),
                 ("metrics", dict)):
    if not isinstance(doc.get(key), typ):
        fail.append(f"top-level '{key}' missing or not a {typ.__name__}")

config = doc.get("config", {})
if isinstance(config, dict):
    for key in ("scale", "seed", "tmlat_ns"):
        if key not in config:
            fail.append(f"config missing common key '{key}'")

rows = doc.get("rows", [])
if isinstance(rows, list):
    if not rows:
        fail.append("rows is empty")
    scalar = (int, float, str)
    keysets = set()
    for i, row in enumerate(rows):
        if not isinstance(row, dict):
            fail.append(f"rows[{i}] is not an object")
            continue
        keysets.add(tuple(sorted(row)))
        for k, v in row.items():
            if not isinstance(v, scalar) or isinstance(v, bool):
                fail.append(f"rows[{i}].{k} is not a number or string")
    if len(keysets) > 1:
        fail.append(f"rows have {len(keysets)} different key sets "
                    "(every row must mirror the same printed table)")
    if expected_keys and keysets:
        missing = set(expected_keys) - set(next(iter(keysets)))
        if missing:
            fail.append(f"rows missing expected key(s): {sorted(missing)}")

metrics = doc.get("metrics", {})
if isinstance(metrics, dict):
    for k, v in metrics.items():
        if not isinstance(v, (int, float)) or isinstance(v, bool):
            fail.append(f"metrics['{k}'] is not a number")

if fail:
    for msg in fail:
        print(f"{path}: {msg}", file=sys.stderr)
    sys.exit(1)
print(f"{path}: schema OK "
      f"({len(rows)} row(s), {len(metrics)} metric(s))")
EOF
