#!/usr/bin/env bash
# Checks intra-repository markdown links: every [text](target) whose target
# is a relative path (not a URL or pure #anchor) must resolve to an existing
# file or directory. Run from anywhere; operates on the repo root.
#
# Usage: scripts/check_links.sh [file.md ...]   (default: all tracked *.md)

set -u

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root"

if [ "$#" -gt 0 ]; then
  files=("$@")
else
  # Tracked markdown only, so build trees and third_party stay out of scope.
  mapfile -t files < <(git ls-files '*.md')
fi

fail=0
for f in "${files[@]}"; do
  [ -f "$f" ] || { echo "MISSING FILE: $f"; fail=1; continue; }
  dir="$(dirname "$f")"
  # Extract (target) of every markdown link, dropping any #anchor suffix.
  # Inline code spans are not parsed; false positives there would show up
  # as failures, so docs keep literal parens out of code-span link examples.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|\#*|'') continue ;;
    esac
    path="${target%%#*}"
    [ -n "$path" ] || continue
    if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
      echo "BROKEN LINK: $f -> $target"
      fail=1
    fi
  done < <(grep -oE '\]\([^)]+\)' "$f" | sed -E 's/^\]\(//; s/\)$//')
done

if [ "$fail" -ne 0 ]; then
  echo "link check FAILED"
  exit 1
fi
echo "link check OK (${#files[@]} files)"
