#!/usr/bin/env bash
# Golden-EXPLAIN snapshot check: drives tools/prkb_shell over a fixed
# deployment (--rows/--attrs/--seed pinned below) with a fixed statement
# script, extracts every rendered plan tree, and diffs the result against
# tests/golden/explain.golden. Plan shapes, estimated costs, and
# post-execution actual QPF costs are all deterministic for a fixed seed
# (the same property replay_test pins), so any diff is a real plan-shape or
# cost-model regression — review it, then re-bless with --update if the
# change is intended.
#
# Usage: scripts/check_explain.sh [--update] [path/to/prkb_shell]

set -eu
cd "$(dirname "$0")/.."

update=0
shell_bin="build/tools/prkb_shell"
for arg in "$@"; do
  if [ "$arg" = "--update" ]; then
    update=1
  else
    shell_bin="$arg"
  fi
done
golden="tests/golden/explain.golden"

if [ ! -x "$shell_bin" ]; then
  echo "check_explain: $shell_bin not built (cmake --build build --target prkb_shell)" >&2
  exit 2
fi

# The statement script covers every route the planner can choose: single
# comparison, same-attribute collapse to BETWEEN, explicit BETWEEN,
# multi-attribute MD grid, a contradiction, and one executed statement
# re-explained so the golden also pins per-operator *actual* QPF costs.
raw=$("$shell_bin" --rows=400 --attrs=3 --seed=7 <<'EOF'
EXPLAIN SELECT * FROM t WHERE c0 < 500000
EXPLAIN SELECT * FROM t WHERE c0 > 100000 AND c0 < 900000
EXPLAIN SELECT * FROM t WHERE c1 BETWEEN 200000 AND 700000
EXPLAIN SELECT * FROM t WHERE c0 > 100000 AND c1 < 800000 AND c2 > 50000
EXPLAIN SELECT * FROM t WHERE c0 > 900000 AND c0 < 100000
SELECT * FROM t WHERE c0 < 500000
.explain
.quit
EOF
)

# Keep only plan output: the "plan: <summary>" headers and operator lines
# (every operator line carries an "(est ...)" annotation). Prompts are glued
# to the first line of each response because the shell prints "prkb> "
# without a newline.
actual=$(printf '%s\n' "$raw" | sed 's/^\(prkb> \)*//' \
         | grep -E '^plan:|\(est ' || true)

if [ -z "$actual" ]; then
  echo "check_explain: no plan output captured from $shell_bin" >&2
  exit 1
fi

if [ "$update" -eq 1 ]; then
  mkdir -p "$(dirname "$golden")"
  printf '%s\n' "$actual" > "$golden"
  echo "check_explain: wrote $(printf '%s\n' "$actual" | wc -l | tr -d ' ') lines to $golden"
  exit 0
fi

if [ ! -f "$golden" ]; then
  echo "check_explain: $golden missing (run scripts/check_explain.sh --update)" >&2
  exit 1
fi

if ! diff -u "$golden" <(printf '%s\n' "$actual"); then
  echo "check_explain: plan shapes diverged from $golden" >&2
  echo "check_explain: if intended, re-bless with scripts/check_explain.sh --update" >&2
  exit 1
fi
echo "check_explain: plans match $golden"
