// Reproduces Table 2: recovered portion of ordering information (RPOI) on
// the four victim attributes, varying the number of queries the attacker
// observes (Sec. 8.1).

#include <vector>

#include "attack/order_recovery.h"
#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "workload/query_gen.h"
#include "workload/real_emulators.h"

namespace prkb::bench {
namespace {

struct Victim {
  std::string name;
  std::vector<edbms::Value> column;
  edbms::Value domain_lo, domain_hi;
};

int Main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv, /*default_scale=*/0.05);
  PrintBanner("Table 2: RPOI on real-data emulators", "EDBT'18 Table 2", args,
              "RPOI grows with queries but with sharply decreasing returns. "
              "NOTE: absolute RPOI inflates by ~1/scale (the denominator is "
              "the scaled dataset's distinct count while query counts stay "
              "at paper values); --scale=1.0 reproduces paper magnitudes");

  std::vector<Victim> victims;
  {
    auto h = workload::MakeHospitalCharges(args.scale, args.seed + 1);
    victims.push_back(Victim{"Hospital", h.table.column(0), h.domain_lo[0],
                             h.domain_hi[0]});
    auto l = workload::MakeLaborSalary(args.scale, args.seed + 2);
    victims.push_back(
        Victim{"Labor", l.table.column(0), l.domain_lo[0], l.domain_hi[0]});
    auto b = workload::MakeUsBuildings(args.scale, args.seed + 3);
    victims.push_back(Victim{"Latitude", b.table.column(0), b.domain_lo[0],
                             b.domain_hi[0]});
    victims.push_back(Victim{"Longitude", b.table.column(1), b.domain_lo[1],
                             b.domain_hi[1]});
  }

  const std::vector<int> checkpoints = {250, 1000, 10000, 100000, 1000000};
  JsonBench json("bench_table2_rpoi", args);
  TablePrinter tp("RPOI (%) vs number of observed queries");
  tp.SetHeader({"Victim", "Size", "250", "1K", "10K", "100K", "1M"});

  for (const Victim& v : victims) {
    attack::OrderRecovery rec(v.column);
    workload::QueryGen gen(v.domain_lo, v.domain_hi, args.seed * 7 + 1);
    std::vector<std::string> row = {v.name, std::to_string(v.column.size())};
    int q = 0;
    for (int cp : checkpoints) {
      for (; q < cp; ++q) rec.Observe(gen.RandomComparison(0));
      row.push_back(TablePrinter::Fmt(rec.Rpoi() * 100.0, 3));
      json.BeginRow();
      json.Field("victim", v.name);
      json.Field("column_size", static_cast<uint64_t>(v.column.size()));
      json.Field("observed_queries", static_cast<uint64_t>(cp));
      json.Field("rpoi_pct", rec.Rpoi() * 100.0);
    }
    tp.AddRow(row);
  }
  tp.Print();
  json.WriteIfRequested(args);
  std::printf(
      "\nPaper reference (paper-scale data): Hospital 0.007..2.846%%, "
      "Labor 0.042..5.807%%, Latitude 0.008..11.167%%, "
      "Longitude 0.011..13.592%%\n");
  return 0;
}

}  // namespace
}  // namespace prkb::bench

int main(int argc, char** argv) { return prkb::bench::Main(argc, argv); }
