// Cross-query round coalescing: shared round bus vs pipelined-only serving.
//
// Serving phase: a loopback QpfServer with ONE worker — the trusted machine
// as a serial resource, the regime where per-entry latency is the bill —
// answering 64 concurrent single-predicate selection streams over a
// 4-shard index at 300 µs TM latency (override with --tmlat=<ns>). Two
// configurations over identical streams:
//
//   pipelined   RemoteEdbms only: PR-style correlation-id pipelining, one
//               backend entry per logical probe round (the prior baseline)
//   coalesced   net::CoalescedEdbms over the same RemoteEdbms: concurrent
//               selections' rounds merge in the bus's linger window into
//               few trusted-machine entries
//
// Reported per configuration: QPS, per-selection p50/p99, logical probe
// rounds (qpf.round_trips — identical accounting in both configs), physical
// trusted-machine entries (tm.round_trips), and entries per logical round.
// Every winner set is checked against the plaintext oracle.
//
// Loopback phase: tmlat=0, no socket — a local CoalescedEdbms over
// CipherbaseEdbms against the bare backend, single stream. The adaptive
// linger snaps to zero below the latency floor, so the bus must cost ~
// nothing: single-query p99 within 5% of uncoalesced is the gate.
//
// Gates (full runs; --smoke skips them):
//   coalesced QPS >= 2x pipelined, entries-per-round reduced >= 4x,
//   all winner sets byte-identical to the oracle, loopback p99 <= 1.05x.
//
// Extra flags beyond the common set (bench_util.h):
//   --smoke   tiny configuration, gates skipped (CI schema check)

#include <algorithm>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/histogram.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "net/coalesce.h"
#include "net/qpf_client.h"
#include "net/qpf_server.h"
#include "prkb/shard.h"
#include "workload/synthetic_table.h"

namespace prkb::bench {
namespace {

using edbms::TupleId;
using edbms::Value;

struct OpStream {
  edbms::AttrId attr = 0;
  std::vector<edbms::Trapdoor> tds;
  std::vector<std::vector<TupleId>> expected;  // oracle winners, sorted
};

/// One fresh-comparison stream per attribute, identical predicates in every
/// configuration; oracle winners precomputed outside the timed region.
std::vector<OpStream> MakeStreams(size_t streams, int ops_per_stream,
                                  const edbms::PlainTable& plain,
                                  edbms::Edbms* issuer, uint64_t seed) {
  std::vector<OpStream> out(streams);
  for (size_t s = 0; s < streams; ++s) {
    out[s].attr = static_cast<edbms::AttrId>(s);
    Rng rng(seed + 31 * s);
    for (int i = 0; i < ops_per_stream; ++i) {
      const Value c = rng.UniformInt64(0, 999'999);
      out[s].tds.push_back(
          issuer->MakeComparison(out[s].attr, edbms::CompareOp::kLt, c));
      std::vector<TupleId> winners;
      for (TupleId tid = 0; tid < plain.num_rows(); ++tid) {
        if (plain.at(out[s].attr, tid) < c) winners.push_back(tid);
      }
      out[s].expected.push_back(std::move(winners));
    }
  }
  return out;
}

struct RunResult {
  double millis = 0;
  uint64_t total_ops = 0;
  uint64_t qpf_uses = 0;
  uint64_t logical_rounds = 0;
  uint64_t tm_entries = 0;
  double factor = 1.0;
  Histogram latency_ms;
  std::vector<double> flat_ms;  // per-op latency in stream-major order
  bool results_match = true;
};

/// Drives `streams` concurrently (one thread per stream) through `index`,
/// measuring per-selection wall time and checking winners.
RunResult DriveStreams(core::ShardedPrkbIndex& index,
                       const std::vector<OpStream>& streams,
                       edbms::CipherbaseEdbms& db) {
  RunResult res;
  obs::Counter* trip_counter =
      obs::MetricsRegistry::Global().GetCounter("qpf.round_trips");
  obs::Counter* uses_counter =
      obs::MetricsRegistry::Global().GetCounter("qpf.uses");
  const uint64_t trips0 = trip_counter->value();
  const uint64_t uses0 = uses_counter->value();
  const uint64_t tm0 = db.trusted_machine().round_trips();

  std::vector<std::vector<double>> lat(streams.size());
  std::vector<std::vector<std::vector<TupleId>>> got(streams.size());
  Stopwatch watch;
  std::vector<std::thread> workers;
  workers.reserve(streams.size());
  for (size_t s = 0; s < streams.size(); ++s) {
    workers.emplace_back([&, s] {
      for (size_t i = 0; i < streams[s].tds.size(); ++i) {
        const auto op0 = std::chrono::steady_clock::now();
        auto winners = index.Select(streams[s].tds[i]);
        const auto op1 = std::chrono::steady_clock::now();
        lat[s].push_back(
            std::chrono::duration<double, std::milli>(op1 - op0).count());
        got[s].push_back(std::move(winners));
      }
    });
  }
  for (auto& w : workers) w.join();
  res.millis = watch.ElapsedMillis();
  res.logical_rounds = trip_counter->value() - trips0;
  res.qpf_uses = uses_counter->value() - uses0;
  res.tm_entries = db.trusted_machine().round_trips() - tm0;
  for (size_t s = 0; s < streams.size(); ++s) {
    res.total_ops += streams[s].tds.size();
    for (const double ms : lat[s]) {
      res.latency_ms.Add(ms);
      res.flat_ms.push_back(ms);
    }
    for (size_t i = 0; i < streams[s].tds.size(); ++i) {
      std::sort(got[s][i].begin(), got[s][i].end());
      if (got[s][i] != streams[s].expected[i]) res.results_match = false;
    }
  }
  return res;
}

int Main(int argc, char** argv) {
  bool smoke = false;
  bool tmlat_given = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strncmp(argv[i], "--tmlat=", 8) == 0) tmlat_given = true;
  }
  BenchArgs args = BenchArgs::Parse(argc, argv, /*default_scale=*/0.001);
  if (!tmlat_given) args.tm_latency_ns = 300'000;

  const size_t rows = ScaledRows(1'000'000, args.scale);
  const size_t streams = smoke ? 8 : 64;
  const int ops = args.queries > 0 ? args.queries : (smoke ? 2 : 6);
  const int loop_queries = smoke ? 40 : 2400;
  PrintBanner("Cross-query round coalescing: shared round bus",
              "beyond-paper serving experiment", args,
              "a serial trusted machine (1 server worker) charges the full "
              "per-entry latency; the round bus merges concurrent "
              "selections' probe rounds into one entry within an adaptive "
              "linger window, so entries-per-round collapses while winners "
              "stay byte-identical");

  workload::SyntheticSpec spec;
  spec.rows = rows;
  spec.attrs = streams;
  spec.seed = args.seed;
  const auto plain = workload::MakeSyntheticTable(spec);

  JsonBench json("bench_coalesce", args);
  json.Config("rows", static_cast<double>(rows));
  json.Config("streams", static_cast<double>(streams));
  json.Config("ops_per_stream", static_cast<double>(ops));
  json.Config("loopback_queries", static_cast<double>(loop_queries));
  json.Config("server_workers", 1.0);
  json.Config("shards", 4.0);
  json.Config("batch_size", 256.0);
  json.Config("transport", "tcp-loopback");
  json.Config("smoke", smoke ? "true" : "false");

  TablePrinter tp("serial TM serving, " + std::to_string(rows) + " rows x " +
                  std::to_string(streams) + " streams, tmlat " +
                  std::to_string(args.tm_latency_ns) + "ns");
  tp.SetHeader({"mode", "QPS", "p50 ms", "p99 ms", "logical rounds",
                "TM entries", "entries/round", "factor", "match"});

  double pipelined_qps = 0.0;
  double pipelined_epr = 0.0;
  double coalesced_qps = 0.0;
  double coalesced_epr = 0.0;
  bool all_match = true;

  for (const bool coalesce : {false, true}) {
    // Fresh deployment per configuration: chains, caches, counters and the
    // socket pair must not leak across runs.
    auto db = edbms::CipherbaseEdbms::FromPlainTable(args.seed, plain);
    db.trusted_machine().set_call_latency_ns(args.tm_latency_ns);
    net::QpfServerOptions sopts;
    sopts.workers = 1;  // the serial trusted machine is the scarce resource
    net::QpfServer server(&db, sopts);
    if (!server.ServeTcp(0).ok()) {
      std::fprintf(stderr, "cannot start loopback server\n");
      return 1;
    }
    auto conn = net::QpfClient::ConnectTcp("127.0.0.1", server.port());
    if (!conn.ok()) {
      std::fprintf(stderr, "cannot connect: %s\n",
                   conn.status().ToString().c_str());
      return 1;
    }
    auto client = std::move(conn).value();
    net::RemoteEdbms remote(&db, client.get());
    std::unique_ptr<net::CoalescedEdbms> bus;
    edbms::Edbms* front = &remote;
    if (coalesce) {
      bus = std::make_unique<net::CoalescedEdbms>(&remote);
      // Prime the linger from the same hint the planner starts from; the
      // executor re-pushes the calibrator's fit after every query.
      bus->CalibrateTransport(args.tm_latency_ns);
      front = bus.get();
    }

    core::PrkbOptions options;
    options.seed = args.seed;
    options.batch_size = 256;
    options.rt_latency_hint_ns = static_cast<double>(args.tm_latency_ns);
    core::ShardedPrkbIndex index(front, 4, options);
    for (size_t a = 0; a < streams; ++a) {
      index.EnableAttr(static_cast<edbms::AttrId>(a));
    }
    const auto op_streams =
        MakeStreams(streams, ops, plain, front, args.seed + 7);

    RunResult res = DriveStreams(index, op_streams, db);
    if (coalesce) res.factor = bus->CoalescingFactor();
    server.Stop();

    const double qps = res.total_ops / (res.millis / 1000.0);
    const double epr = res.logical_rounds > 0
                           ? static_cast<double>(res.tm_entries) /
                                 static_cast<double>(res.logical_rounds)
                           : 0.0;
    if (coalesce) {
      coalesced_qps = qps;
      coalesced_epr = epr;
    } else {
      pipelined_qps = qps;
      pipelined_epr = epr;
    }
    all_match = all_match && res.results_match;

    const std::string mode = coalesce ? "coalesced" : "pipelined";
    tp.AddRow({mode, TablePrinter::Fmt(qps, 0),
               TablePrinter::Fmt(res.latency_ms.Percentile(50), 2),
               TablePrinter::Fmt(res.latency_ms.Percentile(99), 2),
               std::to_string(res.logical_rounds),
               std::to_string(res.tm_entries), TablePrinter::Fmt(epr, 3),
               TablePrinter::Fmt(res.factor, 2) + "x",
               res.results_match ? "yes" : "NO"});
    json.BeginRow();
    json.Field("phase", "serving");
    json.Field("mode", mode);
    json.Field("streams", static_cast<uint64_t>(streams));
    json.Field("total_ops", res.total_ops);
    json.Field("millis", res.millis);
    json.Field("qps", qps);
    json.Field("p50_ms", res.latency_ms.Percentile(50));
    json.Field("p99_ms", res.latency_ms.Percentile(99));
    json.Field("qpf_uses", res.qpf_uses);
    json.Field("logical_rounds", res.logical_rounds);
    json.Field("tm_entries", res.tm_entries);
    json.Field("entries_per_round", epr);
    json.Field("factor", res.factor);
    json.Field("results_match", res.results_match ? "true" : "false");
  }
  tp.Print();

  // Loopback phase: no socket, no TM latency, single stream — the bus must
  // be a passthrough (adaptive linger 0 below the latency floor).
  TablePrinter lp("loopback single-stream, " + std::to_string(rows) +
                  " rows, tmlat 0");
  lp.SetHeader({"mode", "QPS", "p50 ms", "p99 ms", "logical rounds",
                "TM entries", "match"});
  double plain_p99 = 0.0;
  double bus_p99 = 0.0;
  // Both modes replay the identical deterministic query sequence, so the
  // honest estimator on a noisy host is paired-by-query: run several fresh
  // deployments per mode, take each query's MEDIAN latency across trials
  // (killing per-deployment jitter — deployments here vary ±30% for
  // identical code), then compare percentiles over those medians. The gate
  // asks about the bus's intrinsic overhead, not the OS's worst moment.
  const int trials = smoke ? 1 : 7;
  // perq[mode][q] = that query's latency in each trial.
  std::vector<std::vector<double>> perq[2];
  perq[0].resize(loop_queries);
  perq[1].resize(loop_queries);
  RunResult agg[2];
  double bus_factor = 1.0;
  for (int trial = 0; trial < trials; ++trial) {
    // Alternate which mode runs first: within-process heap growth and cache
    // state systematically penalise whichever deployment runs later in a
    // trial, so a fixed order would bias the comparison.
    const bool first = (trial % 2) != 0;
    for (const bool coalesce : {first, !first}) {
      auto db = edbms::CipherbaseEdbms::FromPlainTable(args.seed, plain);
      std::unique_ptr<net::CoalescedEdbms> bus;
      edbms::Edbms* front = &db;
      if (coalesce) {
        bus = std::make_unique<net::CoalescedEdbms>(&db);
        front = bus.get();
      }
      core::PrkbOptions options;
      options.seed = args.seed;
      options.batch_size = 256;
      core::ShardedPrkbIndex index(front, 1, options);
      index.EnableAttr(0);
      // Warm the chain and the allocator identically in both modes before
      // the measured window, so the comparison is not first-touch noise.
      const int warm = smoke ? 5 : 150;
      const auto warm_streams =
          MakeStreams(1, warm, plain, front, args.seed + 29);
      for (const auto& td : warm_streams[0].tds) index.Select(td);
      const auto op_streams =
          MakeStreams(1, loop_queries, plain, front, args.seed + 13);
      RunResult r = DriveStreams(index, op_streams, db);
      const int mi = coalesce ? 1 : 0;
      if (coalesce) bus_factor = bus->CoalescingFactor();
      for (size_t q = 0; q < r.flat_ms.size(); ++q) {
        perq[mi][q].push_back(r.flat_ms[q]);
      }
      agg[mi].millis += r.millis;
      agg[mi].total_ops += r.total_ops;
      agg[mi].qpf_uses += r.qpf_uses;
      agg[mi].logical_rounds += r.logical_rounds;
      agg[mi].tm_entries += r.tm_entries;
      agg[mi].results_match = agg[mi].results_match && r.results_match;
    }
  }
  const auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  for (const bool coalesce : {false, true}) {
    const int mi = coalesce ? 1 : 0;
    const RunResult& res = agg[mi];
    const double qps = res.total_ops / (res.millis / 1000.0);
    Histogram med_hist;
    for (auto& samples : perq[mi]) med_hist.Add(median(samples));
    const double p50 = med_hist.Percentile(50);
    const double p99 = med_hist.Percentile(99);
    if (coalesce) {
      bus_p99 = p99;
    } else {
      plain_p99 = p99;
    }
    all_match = all_match && res.results_match;
    const std::string mode = coalesce ? "coalesced" : "uncoalesced";
    lp.AddRow({mode, TablePrinter::Fmt(qps, 0), TablePrinter::Fmt(p50, 3),
               TablePrinter::Fmt(p99, 3), std::to_string(res.logical_rounds),
               std::to_string(res.tm_entries),
               res.results_match ? "yes" : "NO"});
    json.BeginRow();
    json.Field("phase", "loopback");
    json.Field("mode", mode);
    json.Field("streams", static_cast<uint64_t>(1));
    json.Field("total_ops", res.total_ops);
    json.Field("millis", res.millis);
    json.Field("qps", qps);
    json.Field("p50_ms", p50);
    json.Field("p99_ms", p99);
    json.Field("qpf_uses", res.qpf_uses);
    json.Field("logical_rounds", res.logical_rounds);
    json.Field("tm_entries", res.tm_entries);
    json.Field("entries_per_round",
               res.logical_rounds > 0
                   ? static_cast<double>(res.tm_entries) /
                         static_cast<double>(res.logical_rounds)
                   : 0.0);
    json.Field("factor", coalesce ? bus_factor : 1.0);
    json.Field("results_match", res.results_match ? "true" : "false");
  }
  lp.Print();

  const double speedup = pipelined_qps > 0 ? coalesced_qps / pipelined_qps : 0;
  const double reduction = coalesced_epr > 0 ? pipelined_epr / coalesced_epr : 0;
  const double p99_ratio = plain_p99 > 0 ? bus_p99 / plain_p99 : 0;
  const bool gate_qps = speedup >= 2.0;
  const bool gate_entries = reduction >= 4.0;
  const bool gate_p99 = p99_ratio <= 1.05;

  json.Config("speedup_vs_pipelined", speedup);
  json.Config("entry_reduction", reduction);
  json.Config("loopback_p99_ratio", p99_ratio);
  json.Config("all_results_match", all_match ? "true" : "false");
  json.Config("gate_coalesce_2x_qps",
              smoke ? "skipped" : (gate_qps ? "pass" : "fail"));
  json.Config("gate_entry_reduction_4x",
              smoke ? "skipped" : (gate_entries ? "pass" : "fail"));
  json.Config("gate_loopback_p99_5pct",
              smoke ? "skipped" : (gate_p99 ? "pass" : "fail"));

  std::printf("winner sets vs oracle: %s\n",
              all_match ? "all match" : "MISMATCH");
  std::printf("coalesced vs pipelined: %.2fx QPS, %.2fx fewer TM entries "
              "per logical round\n",
              speedup, reduction);
  std::printf("loopback p99 coalesced/uncoalesced: %.3f\n", p99_ratio);
  if (!smoke) {
    std::printf("gate (QPS >= 2x): %s\n", gate_qps ? "pass" : "FAIL");
    std::printf("gate (entries/round reduced >= 4x): %s\n",
                gate_entries ? "pass" : "FAIL");
    std::printf("gate (loopback p99 within 5%%): %s\n",
                gate_p99 ? "pass" : "FAIL");
  }
  json.WriteIfRequested(args);
  if (!all_match) return 1;
  if (!smoke && !(gate_qps && gate_entries && gate_p99)) return 1;
  return 0;
}

}  // namespace
}  // namespace prkb::bench

int main(int argc, char** argv) { return prkb::bench::Main(argc, argv); }
