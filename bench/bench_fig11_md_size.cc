// Reproduces Fig. 11: multi-dimensional range query cost varying dataset
// size (d=3, 2% selectivity/dimension, static 250-partition PRKBs):
// PRKB(SD+) vs PRKB(MD) vs Logarithmic-SRC-i (Sec. 8.2.5).

#include <unordered_set>
#include <vector>

#include "bench/bench_util.h"
#include "common/histogram.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "srci/srci.h"
#include "workload/query_gen.h"
#include "workload/synthetic_table.h"

namespace prkb::bench {
namespace {

using edbms::TupleId;
using edbms::Value;

/// Multi-attribute SRC-i: one index per attribute; intersect candidate sets,
/// then confirm every dimension inside the TM.
std::vector<TupleId> SrciMdQuery(
    std::vector<srci::LogSrcI>* indexes, edbms::CipherbaseEdbms* db,
    const std::vector<std::pair<Value, Value>>& ranges, double* millis) {
  Stopwatch watch;
  std::vector<TupleId> cand =
      (*indexes)[0].QueryCandidates(ranges[0].first, ranges[0].second);
  for (size_t d = 1; d < indexes->size() && !cand.empty(); ++d) {
    const auto next =
        (*indexes)[d].QueryCandidates(ranges[d].first, ranges[d].second);
    std::unordered_set<TupleId> keep(next.begin(), next.end());
    std::vector<TupleId> merged;
    for (TupleId tid : cand) {
      if (keep.contains(tid)) merged.push_back(tid);
    }
    cand = std::move(merged);
  }
  auto& tm = db->trusted_machine();
  std::vector<TupleId> out;
  for (TupleId tid : cand) {
    if (!db->table().IsLive(tid)) continue;
    bool all = true;
    for (size_t d = 0; d < ranges.size(); ++d) {
      const Value v = tm.DecryptValue(
          db->table().at(static_cast<edbms::AttrId>(d), tid));
      if (v < ranges[d].first || v > ranges[d].second) {
        all = false;
        break;
      }
    }
    if (all) out.push_back(tid);
  }
  *millis = watch.ElapsedMillis();
  return out;
}

int Main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv, /*default_scale=*/0.02);
  const int runs = args.queries > 0 ? args.queries : 15;
  constexpr int kDims = 3;
  PrintBanner("Fig. 11: MD query cost vs dataset size (d=3, 2%/dim)",
              "EDBT'18 Fig. 11", args,
              "PRKB(MD) consistently below PRKB(SD+); both scale linearly; "
              "SRC-i slowest once chains are warm");

  const std::vector<size_t> paper_sizes = {2'000'000, 4'000'000, 6'000'000,
                                           8'000'000, 10'000'000};
  JsonBench json("bench_fig11_md_size", args);
  json.Config("runs_per_size", static_cast<double>(runs));
  json.Config("dims", static_cast<double>(kDims));
  TablePrinter tp("average of " + std::to_string(runs) + " queries");
  tp.SetHeader({"paper rows", "SD+ #QPF", "SD+ ms", "MD #QPF", "MD ms",
                "SRC-i ms"});

  for (size_t paper_rows : paper_sizes) {
    const size_t rows = ScaledRows(paper_rows, args.scale);
    workload::SyntheticSpec spec;
    spec.rows = rows;
    spec.attrs = kDims;
    spec.seed = args.seed + paper_rows;
    const auto plain = workload::MakeSyntheticTable(spec);
    auto db = edbms::CipherbaseEdbms::FromPlainTable(args.seed, plain);
    db.trusted_machine().set_call_latency_ns(args.tm_latency_ns);

    core::PrkbIndex sdp(&db, core::PrkbOptions{.seed = args.seed});
    core::PrkbIndex md(&db, core::PrkbOptions{.seed = args.seed + 1});
    std::vector<srci::LogSrcI> srci_indexes;
    for (edbms::AttrId a = 0; a < kDims; ++a) {
      sdp.EnableAttr(a);
      md.EnableAttr(a);
      workload::QueryGen warm_gen(spec.domain_lo, spec.domain_hi,
                                  args.seed + 13 + a);
      WarmToPartitions(&sdp, &db, a, &warm_gen, 250);
      workload::QueryGen warm_gen2(spec.domain_lo, spec.domain_hi,
                                   args.seed + 13 + a);
      WarmToPartitions(&md, &db, a, &warm_gen2, 250);
      srci_indexes.emplace_back(&db, a, spec.domain_lo, spec.domain_hi);
      if (auto s = srci_indexes.back().Build(); !s.ok()) return 1;
    }

    std::vector<edbms::AttrId> attrs;
    for (edbms::AttrId a = 0; a < kDims; ++a) attrs.push_back(a);
    workload::QueryGen gen(spec.domain_lo, spec.domain_hi, args.seed + 77);
    Histogram sdp_qpf, sdp_ms, md_qpf, md_ms, srci_ms;
    for (int r = 0; r < runs; ++r) {
      const auto box = gen.RandomBox(attrs, 0.02);
      std::vector<edbms::Trapdoor> tds;
      std::vector<std::pair<Value, Value>> ranges;
      for (size_t d = 0; d < box.size(); d += 2) {
        tds.push_back(db.MakeComparison(box[d].attr, box[d].op, box[d].lo));
        tds.push_back(
            db.MakeComparison(box[d + 1].attr, box[d + 1].op, box[d + 1].lo));
        ranges.emplace_back(box[d].lo + 1, box[d + 1].lo - 1);
      }
      edbms::SelectionStats st;
      sdp.SelectRangeSdPlus(tds, &st);
      sdp_qpf.Add(static_cast<double>(st.qpf_uses));
      sdp_ms.Add(st.millis);

      // Fresh trapdoors for the MD index (each index learns on its own).
      std::vector<edbms::Trapdoor> tds2;
      for (const auto& p : box) {
        tds2.push_back(db.MakeComparison(p.attr, p.op, p.lo));
      }
      md.SelectRangeMd(tds2, &st);
      md_qpf.Add(static_cast<double>(st.qpf_uses));
      md_ms.Add(st.millis);

      double srci_millis = 0;
      SrciMdQuery(&srci_indexes, &db, ranges, &srci_millis);
      srci_ms.Add(srci_millis);
    }
    tp.AddRow({std::to_string(paper_rows / 1'000'000) + "M",
               TablePrinter::Fmt(sdp_qpf.Mean(), 0),
               TablePrinter::Fmt(sdp_ms.Mean(), 2),
               TablePrinter::Fmt(md_qpf.Mean(), 0),
               TablePrinter::Fmt(md_ms.Mean(), 2),
               TablePrinter::Fmt(srci_ms.Mean(), 2)});
    json.BeginRow();
    json.Field("paper_rows", static_cast<uint64_t>(paper_rows));
    json.Field("rows", static_cast<uint64_t>(rows));
    json.Field("sdplus_qpf_uses", sdp_qpf.Mean());
    json.Field("sdplus_ms", sdp_ms.Mean());
    json.Field("md_qpf_uses", md_qpf.Mean());
    json.Field("md_ms", md_ms.Mean());
    json.Field("srci_ms", srci_ms.Mean());
  }
  tp.Print();
  json.WriteIfRequested(args);
  return 0;
}

}  // namespace
}  // namespace prkb::bench

int main(int argc, char** argv) { return prkb::bench::Main(argc, argv); }
