// Batched QPF pipeline microbenchmark: a no-index linear scan over a
// 100k-tuple table (the paper's Baseline processing mode) swept over
// batch size × worker count × simulated trusted-machine round-trip latency.
//
// The point the numbers make: the paper's cost metric (QPF uses) is
// *identical* in every configuration — batching only changes how many
// backend round trips those uses are packed into, which is where all the
// wall-clock time goes once the TM round trip costs microseconds.
//
//   bench_batch_qpf [--scale=1.0] [--seed=n] [--queries=n] [--tmlat=ns]
//                   [--json=path]
//
// --tmlat pins a single latency instead of the default {0, 1µs, 10µs}
// sweep. --json writes the measurement rows for checked-in baselines
// (BENCH_batch_qpf.json).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "edbms/service_provider.h"
#include "workload/synthetic_table.h"

namespace prkb::bench {
namespace {

using edbms::BatchPolicy;
using edbms::CipherbaseEdbms;
using edbms::SelectionStats;
using edbms::Trapdoor;

constexpr size_t kPaperRows = 100000;

struct Config {
  size_t batch_size;
  size_t workers;
};

int Run(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv, /*default_scale=*/1.0);
  const size_t rows = ScaledRows(kPaperRows, args.scale);
  const int queries = args.queries > 0 ? args.queries : 3;
  PrintBanner("bench_batch_qpf",
              "the batched-pipeline speedup claim (ISSUE 1)", args,
              "wall-clock drops ~linearly in round trips; uses are constant");

  workload::SyntheticSpec spec;
  spec.rows = rows;
  spec.domain_lo = 0;
  spec.domain_hi = 999;
  spec.seed = args.seed;
  const edbms::PlainTable plain = workload::MakeSyntheticTable(spec);
  auto db = CipherbaseEdbms::FromPlainTable(args.seed, plain);

  std::vector<uint64_t> latencies;
  if (args.tm_latency_ns > 0) {
    latencies.push_back(args.tm_latency_ns);
  } else {
    latencies = {0, 1000, 10000};
  }
  const Config configs[] = {{1, 1},   {64, 1},  {64, 4},
                            {512, 1}, {512, 4}, {4096, 4}};

  JsonBench json("bench_batch_qpf", args);
  json.Config("rows", static_cast<double>(rows));
  json.Config("queries", static_cast<double>(queries));

  std::printf("%10s %6s %8s %12s %12s %12s %10s %9s\n", "tmlat_us", "batch",
              "workers", "millis", "uses", "round_trips", "us/tuple",
              "speedup");
  for (uint64_t lat : latencies) {
    double scalar_millis = 0.0;
    uint64_t scalar_uses = 0;
    for (const Config& cfg : configs) {
      db.trusted_machine().set_call_latency_ns(lat);
      db.ResetUses();
      const edbms::BaselineScanner scanner(
          &db, BatchPolicy{cfg.batch_size, cfg.workers});
      Stopwatch watch;
      size_t total_hits = 0;
      for (int q = 0; q < queries; ++q) {
        // Same predicate stream in every configuration (seeded per config).
        Rng qrng(args.seed + 1000 + q);
        const Trapdoor td = db.MakeComparison(
            0, edbms::CompareOp::kLt, qrng.UniformInt64(0, 999));
        total_hits += scanner.Select(td).size();
      }
      const double millis = watch.ElapsedMillis();
      const uint64_t uses = db.uses();
      const uint64_t trips = db.round_trips();
      if (cfg.batch_size == 1 && cfg.workers == 1) {
        scalar_millis = millis;
        scalar_uses = uses;
      }
      const double speedup = millis > 0 ? scalar_millis / millis : 0.0;
      std::printf("%10.1f %6zu %8zu %12.2f %12llu %12llu %10.3f %8.1fx\n",
                  lat / 1000.0, cfg.batch_size, cfg.workers, millis,
                  static_cast<unsigned long long>(uses),
                  static_cast<unsigned long long>(trips),
                  millis * 1000.0 / static_cast<double>(uses), speedup);
      if (uses != scalar_uses) {
        std::printf("!! QPF-use mismatch vs scalar: %llu != %llu\n",
                    static_cast<unsigned long long>(uses),
                    static_cast<unsigned long long>(scalar_uses));
        return 1;
      }
      json.BeginRow();
      json.Field("tmlat_ns", lat);
      json.Field("batch_size", static_cast<uint64_t>(cfg.batch_size));
      json.Field("workers", static_cast<uint64_t>(cfg.workers));
      json.Field("millis", millis);
      json.Field("qpf_uses", uses);
      json.Field("round_trips", trips);
      json.Field("speedup_vs_scalar", speedup);
      json.Field("hits", static_cast<uint64_t>(total_hits));
    }
    std::printf("\n");
  }
  json.WriteIfRequested(args);
  return 0;
}

}  // namespace
}  // namespace prkb::bench

int main(int argc, char** argv) { return prkb::bench::Run(argc, argv); }
