// Reproduces Fig. 13 and the Sec. 8.2.6 use case: a tourist repeatedly asks
// for all buildings inside a 1km x 1km window of the (emulated) US Buildings
// dataset. Query cost while the 2-D PRKB grows from scratch, vs
// Logarithmic-SRC-i, plus the storage ratios quoted in the text.

#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "srci/srci.h"
#include "workload/query_gen.h"
#include "workload/real_emulators.h"

namespace prkb::bench {
namespace {

using edbms::TupleId;
using edbms::Value;

int Main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv, /*default_scale=*/0.1);
  const int total_queries = args.queries > 0 ? args.queries : 600;
  PrintBanner("Fig. 13: growing PRKB on the US Buildings use case",
              "EDBT'18 Fig. 13 + Sec. 8.2.6 storage ratios", args,
              "PRKB(MD) beats SRC-i after ~50 queries and keeps improving; "
              "PRKB consumes ~1% of the encrypted data's size, SRC-i >40%");

  const auto ds = workload::MakeUsBuildings(args.scale, args.seed);
  auto db = edbms::CipherbaseEdbms::FromPlainTable(args.seed, ds.table);
  db.trusted_machine().set_call_latency_ns(args.tm_latency_ns);

  std::printf("# building Logarithmic-SRC-i on both attributes...\n");
  std::vector<srci::LogSrcI> srci_indexes;
  for (edbms::AttrId a = 0; a < 2; ++a) {
    srci_indexes.emplace_back(&db, a, ds.domain_lo[a], ds.domain_hi[a]);
    if (auto s = srci_indexes.back().Build(); !s.ok()) return 1;
  }

  core::PrkbIndex index(&db, core::PrkbOptions{.seed = args.seed});
  index.EnableAttr(0);
  index.EnableAttr(1);

  JsonBench json("bench_fig13_buildings", args);
  json.Config("rows", static_cast<double>(db.num_rows()));
  json.Config("total_queries", static_cast<double>(total_queries));

  workload::QueryGen gen(0, 1, args.seed + 7);
  TablePrinter tp("cost of the i-th 1km x 1km window query");
  tp.SetHeader({"query#", "PRKB(MD) #QPF", "PRKB(MD) ms", "SRC-i ms"});
  const std::vector<int> report_at = {1,   2,   5,   10,  25,  50,
                                      100, 200, 300, 400, 500, 600};
  size_t report_idx = 0;

  for (int q = 1; q <= total_queries; ++q) {
    const auto window = gen.RandomWindow({0, 1}, ds.domain_lo, ds.domain_hi,
                                         workload::kMicroDegPerKm);
    std::vector<edbms::Trapdoor> tds;
    for (const auto& p : window) {
      tds.push_back(db.MakeComparison(p.attr, p.op, p.lo));
    }
    edbms::SelectionStats st;
    index.SelectRangeMd(tds, &st);

    if (report_idx < report_at.size() && q == report_at[report_idx]) {
      ++report_idx;
      Stopwatch watch;
      auto cand = srci_indexes[0].QueryCandidates(window[0].lo + 1,
                                                  window[1].lo - 1);
      auto cand2 = srci_indexes[1].QueryCandidates(window[2].lo + 1,
                                                   window[3].lo - 1);
      std::vector<TupleId> both;
      {
        std::vector<bool> keep(db.num_rows(), false);
        for (TupleId t : cand2) keep[t] = true;
        for (TupleId t : cand) {
          if (keep[t]) both.push_back(t);
        }
      }
      auto& tm = db.trusted_machine();
      for (TupleId tid : both) {
        const Value lat = tm.DecryptValue(db.table().at(0, tid));
        const Value lon = tm.DecryptValue(db.table().at(1, tid));
        (void)lat;
        (void)lon;
      }
      tp.AddRow({std::to_string(q), TablePrinter::Fmt(st.qpf_uses),
                 TablePrinter::Fmt(st.millis, 2),
                 TablePrinter::Fmt(watch.ElapsedMillis(), 2)});
      json.BeginRow();
      json.Field("query", static_cast<uint64_t>(q));
      json.Field("md_qpf_uses", st.qpf_uses);
      json.Field("md_ms", st.millis);
      json.Field("srci_ms", watch.ElapsedMillis());
    }
  }
  tp.Print();

  const double enc_bytes = static_cast<double>(db.StoredBytes());
  TablePrinter storage("index size relative to encrypted data");
  storage.SetHeader({"method", "MB", "% of encrypted data"});
  const double prkb_mb = static_cast<double>(index.SizeBytes()) / 1e6;
  const double srci_mb = static_cast<double>(srci_indexes[0].SizeBytes() +
                                             srci_indexes[1].SizeBytes()) /
                         1e6;
  storage.AddRow({"PRKB", TablePrinter::Fmt(prkb_mb, 2),
                  TablePrinter::Fmt(100.0 * prkb_mb * 1e6 / enc_bytes, 1)});
  storage.AddRow({"Logarithmic-SRC-i", TablePrinter::Fmt(srci_mb, 1),
                  TablePrinter::Fmt(100.0 * srci_mb * 1e6 / enc_bytes, 1)});
  storage.Print();
  std::printf(
      "\nPaper reference: PRKB 8.81MB of 1.04GB (<1%%), SRC-i 441MB (>43%%); "
      "PRKB query time <100ms after 50 queries, 9ms after 600; baseline "
      "15.9s\n");
  json.Config("prkb_mb", prkb_mb);
  json.Config("srci_mb", srci_mb);
  json.WriteIfRequested(args);
  return 0;
}

}  // namespace
}  // namespace prkb::bench

int main(int argc, char** argv) { return prkb::bench::Main(argc, argv); }
