// Reproduces Fig. 8: query cost (#QPF uses and wall time) of the i-th
// distinct query while the PRKB grows from scratch on a synthetic table,
// against Baseline (no index) and Logarithmic-SRC-i; plus Table 3-style
// storage accounting for this run (Sec. 8.2.3).

#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "edbms/service_provider.h"
#include "srci/srci.h"
#include "workload/query_gen.h"
#include "workload/synthetic_table.h"

namespace prkb::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv, /*default_scale=*/0.02);
  const size_t rows = ScaledRows(10'000'000, args.scale);
  const int total_queries = args.queries > 0 ? args.queries : 600;
  PrintBanner("Fig. 8: query cost while PRKB grows (1% selectivity)",
              "EDBT'18 Fig. 8 + Table 3 storage columns", args,
              "PRKB starts at Baseline cost, drops ~10x by query 50 and ends "
              ">=1 order of magnitude below Logarithmic-SRC-i; PRKB storage "
              "is ~4 bytes/tuple vs SRC-i's O(n lg n) blowup");

  workload::SyntheticSpec spec;
  spec.rows = rows;
  spec.attrs = 1;
  spec.seed = args.seed;
  const auto plain = workload::MakeSyntheticTable(spec);
  auto db = edbms::CipherbaseEdbms::FromPlainTable(args.seed, plain);
  db.trusted_machine().set_call_latency_ns(args.tm_latency_ns);

  std::printf("# building Logarithmic-SRC-i (TM-side bulk load)...\n");
  srci::LogSrcI srci_index(&db, 0, spec.domain_lo, spec.domain_hi);
  Stopwatch build_watch;
  if (auto s = srci_index.Build(); !s.ok()) {
    std::fprintf(stderr, "SRC-i build failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("# SRC-i built in %.1fs\n", build_watch.ElapsedSeconds());

  core::PrkbIndex index(&db, core::PrkbOptions{.seed = args.seed});
  index.EnableAttr(0);
  edbms::BaselineScanner baseline(&db);
  workload::QueryGen gen(spec.domain_lo, spec.domain_hi, args.seed + 99);

  JsonBench json("bench_fig8_growth", args);
  json.Config("rows", static_cast<double>(rows));
  json.Config("total_queries", static_cast<double>(total_queries));

  TablePrinter tp("cost of the i-th distinct query");
  tp.SetHeader({"query#", "PRKB(SD) #QPF", "PRKB(SD) ms", "SRC-i ms",
                "Baseline #QPF", "Baseline ms", "k"});

  const std::vector<int> report_at = {1,  2,   5,   10,  25,  50, 100,
                                      200, 300, 400, 500, 600};
  size_t report_idx = 0;
  for (int q = 1; q <= total_queries; ++q) {
    const auto range = gen.RandomRange(0, /*selectivity=*/0.01);
    const bool report = report_idx < report_at.size() &&
                        q == report_at[report_idx] && q <= total_queries;

    // PRKB processes the range as two comparison trapdoors (SD+ on one dim).
    edbms::SelectionStats prkb_stats;
    std::vector<edbms::Trapdoor> tds = {
        db.MakeComparison(0, range[0].op, range[0].lo),
        db.MakeComparison(0, range[1].op, range[1].lo)};
    index.SelectRangeSdPlus(tds, &prkb_stats);

    if (report) {
      ++report_idx;
      edbms::SelectionStats srci_stats;
      srci_index.Query(range[0].lo + 1, range[1].lo - 1, &srci_stats);
      // Baseline is sampled (it is flat by construction) to keep default
      // runs fast.
      edbms::SelectionStats base_stats;
      baseline.SelectConjunction(tds, &base_stats);
      tp.AddRow({std::to_string(q),
                 TablePrinter::Fmt(prkb_stats.qpf_uses),
                 TablePrinter::Fmt(prkb_stats.millis, 2),
                 TablePrinter::Fmt(srci_stats.millis, 2),
                 TablePrinter::Fmt(base_stats.qpf_uses),
                 TablePrinter::Fmt(base_stats.millis, 2),
                 std::to_string(index.pop(0).k())});
      json.BeginRow();
      json.Field("query", static_cast<uint64_t>(q));
      json.Field("prkb_qpf_uses", prkb_stats.qpf_uses);
      json.Field("prkb_ms", prkb_stats.millis);
      json.Field("srci_ms", srci_stats.millis);
      json.Field("baseline_qpf_uses", base_stats.qpf_uses);
      json.Field("baseline_ms", base_stats.millis);
      json.Field("k", static_cast<uint64_t>(index.pop(0).k()));
    }
  }
  tp.Print();

  TablePrinter storage("index storage for this run");
  storage.SetHeader({"method", "bytes", "bytes/tuple"});
  storage.AddRow({"PRKB-" + std::to_string(index.pop(0).k()),
                  TablePrinter::Fmt(uint64_t{index.SizeBytes()}),
                  TablePrinter::Fmt(
                      static_cast<double>(index.SizeBytes()) /
                          static_cast<double>(rows),
                      2)});
  storage.AddRow({"Logarithmic-SRC-i",
                  TablePrinter::Fmt(uint64_t{srci_index.SizeBytes()}),
                  TablePrinter::Fmt(
                      static_cast<double>(srci_index.SizeBytes()) /
                          static_cast<double>(rows),
                      2)});
  storage.Print();

  json.Config("prkb_bytes", static_cast<double>(index.SizeBytes()));
  json.Config("srci_bytes", static_cast<double>(srci_index.SizeBytes()));
  json.WriteIfRequested(args);
  return 0;
}

}  // namespace
}  // namespace prkb::bench

int main(int argc, char** argv) { return prkb::bench::Main(argc, argv); }
