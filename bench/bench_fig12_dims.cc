// Reproduces Fig. 12: multi-dimensional range query cost varying the number
// of dimensions 1..7 (fixed table, 2% selectivity/dimension, static
// 250-partition PRKBs): PRKB(SD+) vs PRKB(MD) vs Logarithmic-SRC-i
// (Sec. 8.2.5).

#include <unordered_set>
#include <vector>

#include "bench/bench_util.h"
#include "common/histogram.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "srci/srci.h"
#include "workload/query_gen.h"
#include "workload/synthetic_table.h"

namespace prkb::bench {
namespace {

using edbms::TupleId;
using edbms::Value;

int Main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv, /*default_scale=*/0.02);
  const size_t rows = ScaledRows(5'000'000, args.scale);
  const int runs = args.queries > 0 ? args.queries : 15;
  constexpr int kMaxDims = 7;
  PrintBanner("Fig. 12: MD query cost vs dimensionality (2%/dim)",
              "EDBT'18 Fig. 12", args,
              "PRKB(SD+) cost grows with d (each dimension processed "
              "separately); PRKB(MD) cost *decreases* with d (more "
              "predicates filter more NS candidates for free)");

  workload::SyntheticSpec spec;
  spec.rows = rows;
  spec.attrs = kMaxDims;
  spec.seed = args.seed;
  const auto plain = workload::MakeSyntheticTable(spec);
  auto db = edbms::CipherbaseEdbms::FromPlainTable(args.seed, plain);
  db.trusted_machine().set_call_latency_ns(args.tm_latency_ns);

  core::PrkbIndex sdp(&db, core::PrkbOptions{.seed = args.seed});
  core::PrkbIndex md(&db, core::PrkbOptions{.seed = args.seed + 1});
  std::vector<srci::LogSrcI> srci_indexes;
  for (edbms::AttrId a = 0; a < kMaxDims; ++a) {
    sdp.EnableAttr(a);
    md.EnableAttr(a);
    workload::QueryGen warm1(spec.domain_lo, spec.domain_hi,
                             args.seed + 13 + a);
    WarmToPartitions(&sdp, &db, a, &warm1, 250);
    workload::QueryGen warm2(spec.domain_lo, spec.domain_hi,
                             args.seed + 13 + a);
    WarmToPartitions(&md, &db, a, &warm2, 250);
    srci_indexes.emplace_back(&db, a, spec.domain_lo, spec.domain_hi);
    if (auto s = srci_indexes.back().Build(); !s.ok()) return 1;
  }

  JsonBench json("bench_fig12_dims", args);
  json.Config("rows", static_cast<double>(rows));
  json.Config("runs_per_dim", static_cast<double>(runs));

  TablePrinter tp("average of " + std::to_string(runs) + " queries, " +
                  std::to_string(rows) + " rows");
  tp.SetHeader({"d", "SD+ #QPF", "SD+ ms", "MD #QPF", "MD ms", "SRC-i ms"});

  for (int d = 1; d <= kMaxDims; ++d) {
    std::vector<edbms::AttrId> attrs;
    for (int a = 0; a < d; ++a) attrs.push_back(static_cast<edbms::AttrId>(a));
    workload::QueryGen gen(spec.domain_lo, spec.domain_hi,
                           args.seed + 200 + d);
    Histogram sdp_qpf, sdp_ms, md_qpf, md_ms, srci_ms;
    for (int r = 0; r < runs; ++r) {
      const auto box = gen.RandomBox(attrs, 0.02);
      std::vector<edbms::Trapdoor> tds, tds2;
      std::vector<std::pair<Value, Value>> ranges;
      for (size_t i = 0; i < box.size(); i += 2) {
        tds.push_back(db.MakeComparison(box[i].attr, box[i].op, box[i].lo));
        tds.push_back(
            db.MakeComparison(box[i + 1].attr, box[i + 1].op, box[i + 1].lo));
        ranges.emplace_back(box[i].lo + 1, box[i + 1].lo - 1);
      }
      for (const auto& p : box) {
        tds2.push_back(db.MakeComparison(p.attr, p.op, p.lo));
      }
      edbms::SelectionStats st;
      sdp.SelectRangeSdPlus(tds, &st);
      sdp_qpf.Add(static_cast<double>(st.qpf_uses));
      sdp_ms.Add(st.millis);
      md.SelectRangeMd(tds2, &st);
      md_qpf.Add(static_cast<double>(st.qpf_uses));
      md_ms.Add(st.millis);

      // SRC-i: intersect candidates from the d per-attribute indexes, then
      // confirm all dimensions in the TM.
      Stopwatch watch;
      std::vector<TupleId> cand =
          srci_indexes[0].QueryCandidates(ranges[0].first, ranges[0].second);
      for (int dim = 1; dim < d && !cand.empty(); ++dim) {
        const auto next = srci_indexes[dim].QueryCandidates(
            ranges[dim].first, ranges[dim].second);
        std::unordered_set<TupleId> keep(next.begin(), next.end());
        std::vector<TupleId> merged;
        for (TupleId tid : cand) {
          if (keep.contains(tid)) merged.push_back(tid);
        }
        cand = std::move(merged);
      }
      auto& tm = db.trusted_machine();
      for (TupleId tid : cand) {
        for (int dim = 0; dim < d; ++dim) {
          const Value v = tm.DecryptValue(
              db.table().at(static_cast<edbms::AttrId>(dim), tid));
          if (v < ranges[dim].first || v > ranges[dim].second) break;
        }
      }
      srci_ms.Add(watch.ElapsedMillis());
    }
    tp.AddRow({std::to_string(d), TablePrinter::Fmt(sdp_qpf.Mean(), 0),
               TablePrinter::Fmt(sdp_ms.Mean(), 2),
               TablePrinter::Fmt(md_qpf.Mean(), 0),
               TablePrinter::Fmt(md_ms.Mean(), 2),
               TablePrinter::Fmt(srci_ms.Mean(), 2)});
    json.BeginRow();
    json.Field("dims", static_cast<uint64_t>(d));
    json.Field("sdplus_qpf_uses", sdp_qpf.Mean());
    json.Field("sdplus_ms", sdp_ms.Mean());
    json.Field("md_qpf_uses", md_qpf.Mean());
    json.Field("md_ms", md_ms.Mean());
    json.Field("srci_ms", srci_ms.Mean());
  }
  tp.Print();
  json.WriteIfRequested(args);
  return 0;
}

}  // namespace
}  // namespace prkb::bench

int main(int argc, char** argv) { return prkb::bench::Main(argc, argv); }
