// Membership-compression footprint at scale (ISSUE 7 gate): builds a
// 10M-row index (at --scale=1), splits it with a few hundred selections and
// reports the compressed MemberSet footprint against what the same
// memberships would cost as raw vector<TupleId> storage — the representation
// Table 3 originally priced.
//
// Two dataset shapes bracket the container spectrum:
//   clustered — values correlate with insertion order (sequential keys, the
//               common ingest pattern), so value-contiguous partitions are
//               tuple-id runs → run containers, two orders of magnitude
//               smaller than raw;
//   uniform   — the paper's Sec. 8.2.2 setup, value independent of tuple id,
//               so partitions scatter across the id space → array/bitmap
//               containers, bounded below by ~2 bytes/tuple.
//
// Every selection's winner set is checked byte-identical (as a sorted id
// list) to the plaintext oracle, so the compressed path provably changes
// nothing about query answers. The binary exits non-zero if the clustered
// shape falls under the committed 5× reduction floor or any winner set
// deviates.

#include <algorithm>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "workload/query_gen.h"
#include "workload/synthetic_table.h"

namespace prkb::bench {
namespace {

using edbms::TupleId;
using edbms::Value;

std::vector<TupleId> Oracle(const edbms::PlainTable& plain,
                            const edbms::PlainPredicate& pred) {
  std::vector<TupleId> out;
  for (TupleId tid = 0; tid < plain.num_rows(); ++tid) {
    if (pred.Satisfies(plain.at(pred.attr, tid))) out.push_back(tid);
  }
  return out;
}

uint64_t Fnv1a(const std::vector<TupleId>& ids) {
  uint64_t h = 1469598103934665603ULL;
  for (TupleId t : ids) {
    for (int b = 0; b < 4; ++b) {
      h ^= (t >> (8 * b)) & 0xFF;
      h *= 1099511628211ULL;
    }
  }
  return h;
}

int Main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv, /*default_scale=*/0.01);
  PrintBanner("membership footprint at 10M rows (compressed vs raw)",
              "ISSUE 7 gate; Table 3 context", args,
              "clustered data compresses to run containers (>>5x); uniform "
              "data lower-bounds at ~2 bytes/tuple via u16 arrays");

  const size_t rows = ScaledRows(10'000'000, args.scale);
  const int queries = args.queries > 0 ? args.queries : 120;

  JsonBench json("bench_memory_10m", args);
  json.Config("rows", static_cast<double>(rows));
  json.Config("queries", static_cast<double>(queries));
  TablePrinter tp("membership footprint");
  tp.SetHeader({"shape", "k", "raw MB", "compressed MB", "reduction",
                "containers", "winners"});

  bool gate_ok = true;
  for (const std::string shape : {"clustered", "uniform"}) {
    edbms::PlainTable plain(1);
    const Value domain_hi = static_cast<Value>(rows) * 3;
    if (shape == "clustered") {
      // Sequential-key ingest: value tracks tuple id with a little jitter.
      Rng rng(args.seed);
      for (size_t i = 0; i < rows; ++i) {
        plain.AddRow({static_cast<Value>(i) * 3 +
                      static_cast<Value>(rng.UniformInt(0, 2))});
      }
    } else {
      workload::SyntheticSpec spec;
      spec.rows = rows;
      spec.domain_lo = 1;
      spec.domain_hi = domain_hi;
      spec.seed = args.seed + 1;
      plain = workload::MakeSyntheticTable(spec);
    }
    auto db = edbms::CipherbaseEdbms::FromPlainTable(args.seed, plain);
    core::PrkbIndex index(&db, core::PrkbOptions{.seed = args.seed});
    index.EnableAttr(0);

    workload::QueryGen gen(1, domain_hi, args.seed + 7);
    size_t winners_checked = 0;
    uint64_t winner_hash = 0;
    bool winners_ok = true;
    for (int q = 0; q < queries; ++q) {
      const auto pred = gen.RandomComparison(0);
      auto win = index.Select(db.MakeComparison(pred.attr, pred.op, pred.lo));
      std::sort(win.begin(), win.end());
      if (win != Oracle(plain, pred)) winners_ok = false;
      winner_hash ^= Fnv1a(win);
      ++winners_checked;
    }

    const core::Pop& pop = index.pop(0);
    const double raw_mb =
        static_cast<double>(pop.RawMembershipBytes()) / 1e6;
    const double comp_mb = static_cast<double>(pop.MembershipBytes()) / 1e6;
    const double reduction = comp_mb > 0 ? raw_mb / comp_mb : 0;
    if (shape == "clustered" && reduction < 5.0) gate_ok = false;
    if (!winners_ok) gate_ok = false;

    tp.AddRow({shape, std::to_string(pop.k()), TablePrinter::Fmt(raw_mb, 2),
               TablePrinter::Fmt(comp_mb, 3), TablePrinter::Fmt(reduction, 1),
               std::to_string(pop.MembershipContainers()),
               winners_ok ? "identical" : "MISMATCH"});
    json.BeginRow();
    json.Field("shape", shape);
    json.Field("rows", static_cast<uint64_t>(rows));
    json.Field("k", static_cast<uint64_t>(pop.k()));
    json.Field("raw_mb", raw_mb);
    json.Field("compressed_mb", comp_mb);
    json.Field("reduction", reduction);
    json.Field("containers", static_cast<uint64_t>(pop.MembershipContainers()));
    json.Field("index_total_mb",
               static_cast<double>(index.SizeBytes()) / 1e6);
    json.Field("winners_checked", static_cast<uint64_t>(winners_checked));
    json.Field("winners_identical", std::string(winners_ok ? "true" : "false"));
    json.Field("winner_hash", std::to_string(winner_hash));
  }
  tp.Print();
  json.WriteIfRequested(args);
  std::printf("\nGate: clustered reduction >= 5x and all winner sets "
              "oracle-identical: %s\n", gate_ok ? "PASS" : "FAIL");
  return gate_ok ? 0 : 1;
}

}  // namespace
}  // namespace prkb::bench

int main(int argc, char** argv) { return prkb::bench::Main(argc, argv); }
