// Concurrent selection throughput: shared-lock striped serving with the
// repeat-predicate fast path vs the pre-existing global-mutex facade.
//
// Workload model: a multi-client service provider answering single-predicate
// selections where a fraction of the stream repeats a hot set of predicates
// byte-identically (prepared-statement / dashboard traffic). Three modes:
//   global          one std::mutex around PrkbIndex, fast path off — the
//                   repo's previous ConcurrentPrkbIndex behaviour
//   striped         ConcurrentPrkbIndex: shared_mutex + per-attribute lock
//                   striping + zero-QPF repeat fast path (this is the mode
//                   the service provider ships with)
//   striped-nocache lock rewrite alone, fast path off (ablation: separates
//                   the locking win from the QPF-elimination win)
//
// Extra flags beyond the common set (bench_util.h):
//   --smoke   single tiny configuration (CI schema check)
// The trusted-machine latency defaults to 2000 ns here (not 0) so repeats
// have a realistic backend cost to avoid; override with --tmlat=<ns>.

#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "edbms/service_provider.h"
#include "prkb/concurrent.h"
#include "workload/synthetic_table.h"

namespace prkb::bench {
namespace {

using edbms::TupleId;

constexpr size_t kHotPredicates = 16;

/// The pre-PR concurrency story, reconstructed as the baseline: every
/// operation behind one exclusive mutex, no fast path.
class GlobalMutexIndex {
 public:
  GlobalMutexIndex(edbms::Edbms* db, core::PrkbOptions options)
      : index_(db, options) {}
  std::vector<TupleId> Select(const edbms::Trapdoor& td) {
    std::lock_guard<std::mutex> lock(mu_);
    return index_.Select(td);
  }
  core::PrkbIndex& inner() { return index_; }

 private:
  std::mutex mu_;
  core::PrkbIndex index_;
};

struct RunConfig {
  std::string mode;
  int threads;
  int repeat_pct;
  int ops_per_thread;
};

struct RunResult {
  double millis = 0;
  uint64_t total_ops = 0;
  uint64_t qpf_uses = 0;
  uint64_t cache_hits = 0;
};

/// Drives `select` with cfg.threads workers mixing hot repeats and fresh
/// predicates. `hot` must be pre-warmed; `fresh[t]` is thread t's private
/// stream of never-seen trapdoors.
template <typename SelectFn>
RunResult DriveWorkload(const RunConfig& cfg,
                        const std::vector<edbms::Trapdoor>& hot,
                        const std::vector<std::vector<edbms::Trapdoor>>& fresh,
                        const edbms::Edbms& db, SelectFn&& select) {
  RunResult res;
  const uint64_t uses0 = db.uses();
  const uint64_t hits0 =
      obs::MetricsRegistry::Global().GetCounter("prkb.cache.hits")->value();
  Stopwatch watch;
  std::vector<std::thread> workers;
  for (int t = 0; t < cfg.threads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(1000 + t);
      size_t next_fresh = 0;
      for (int i = 0; i < cfg.ops_per_thread; ++i) {
        if (rng.UniformInt64(1, 100) <= cfg.repeat_pct) {
          select(hot[rng.UniformInt64(0, hot.size() - 1)]);
        } else {
          select(fresh[t][next_fresh++ % fresh[t].size()]);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  res.millis = watch.ElapsedMillis();
  res.total_ops = static_cast<uint64_t>(cfg.threads) * cfg.ops_per_thread;
  res.qpf_uses = db.uses() - uses0;
  res.cache_hits =
      obs::MetricsRegistry::Global().GetCounter("prkb.cache.hits")->value() -
      hits0;
  return res;
}

int Main(int argc, char** argv) {
  bool smoke = false;
  bool tmlat_given = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strncmp(argv[i], "--tmlat=", 8) == 0) tmlat_given = true;
  }
  BenchArgs args = BenchArgs::Parse(argc, argv, /*default_scale=*/0.0004);
  if (!tmlat_given) args.tm_latency_ns = 2000;

  const size_t rows = ScaledRows(10'000'000, args.scale);
  const int ops = args.queries > 0 ? args.queries : (smoke ? 50 : 400);
  PrintBanner("Concurrent serving: striped shared locks + repeat fast path",
              "beyond-paper concurrency experiment", args,
              "global mode re-pays QFilter probes + NS scans on every repeat; "
              "striped mode answers repeats from the chain with 0 QPF uses "
              "under a shared lock");

  workload::SyntheticSpec spec;
  spec.rows = rows;
  spec.seed = args.seed;
  const auto plain = workload::MakeSyntheticTable(spec);

  std::vector<RunConfig> configs;
  const std::vector<std::string> modes = {"global", "striped-nocache",
                                          "striped"};
  const std::vector<int> thread_counts = smoke ? std::vector<int>{2}
                                               : std::vector<int>{1, 2, 4, 8};
  const std::vector<int> repeat_pcts =
      smoke ? std::vector<int>{90} : std::vector<int>{50, 90, 99};
  for (const auto& mode : modes) {
    for (int threads : thread_counts) {
      for (int pct : repeat_pcts) {
        configs.push_back(RunConfig{mode, threads, pct, ops});
      }
    }
  }

  JsonBench json("bench_concurrent", args);
  json.Config("rows", static_cast<double>(rows));
  json.Config("hot_predicates", static_cast<double>(kHotPredicates));
  json.Config("ops_per_thread", static_cast<double>(ops));
  json.Config("smoke", smoke ? "true" : "false");

  TablePrinter tp("selection throughput, " + std::to_string(rows) +
                  " rows, tmlat " + std::to_string(args.tm_latency_ns) + "ns");
  tp.SetHeader({"mode", "threads", "repeat %", "ops/s", "QPF uses",
                "cache hits", "vs global"});

  // ops_per_sec of the global baseline, keyed by (threads, repeat_pct).
  std::vector<std::vector<double>> global_ops(9, std::vector<double>(101, 0));

  for (const RunConfig& cfg : configs) {
    // Fresh everything per configuration: the chain, the cache and the QPF
    // counters must not leak across runs.
    auto db = edbms::CipherbaseEdbms::FromPlainTable(args.seed, plain);
    db.trusted_machine().set_call_latency_ns(args.tm_latency_ns);
    core::PrkbOptions options;
    options.seed = args.seed;
    options.fast_path = cfg.mode == "striped";

    // Hot pool (warmed = each predicate's cut is in the chain before
    // measurement) and per-thread fresh streams, pre-issued because the
    // DataOwner is outside the SP-side concurrency story.
    std::vector<edbms::Trapdoor> hot;
    const edbms::Value lo = spec.domain_lo, hi = spec.domain_hi;
    for (size_t h = 0; h < kHotPredicates; ++h) {
      hot.push_back(db.MakeComparison(
          0, edbms::CompareOp::kLt,
          lo + (hi - lo) * static_cast<edbms::Value>(h + 1) /
                   (kHotPredicates + 1)));
    }
    std::vector<std::vector<edbms::Trapdoor>> fresh(cfg.threads);
    Rng fresh_rng(args.seed + 7);
    for (int t = 0; t < cfg.threads; ++t) {
      for (int i = 0; i < cfg.ops_per_thread; ++i) {
        fresh[t].push_back(db.MakeComparison(0, edbms::CompareOp::kLt,
                                             fresh_rng.UniformInt64(lo, hi)));
      }
    }

    RunResult res;
    if (cfg.mode == "global") {
      GlobalMutexIndex index(&db, options);
      index.inner().EnableAttr(0);
      for (const auto& td : hot) index.inner().Select(td);
      res = DriveWorkload(cfg, hot, fresh, db,
                          [&](const edbms::Trapdoor& td) { index.Select(td); });
    } else {
      core::ConcurrentPrkbIndex index(&db, options);
      index.EnableAttr(0);
      for (const auto& td : hot) index.Select(td);
      res = DriveWorkload(cfg, hot, fresh, db,
                          [&](const edbms::Trapdoor& td) { index.Select(td); });
    }

    const double ops_per_sec = res.total_ops / (res.millis / 1000.0);
    if (cfg.mode == "global") {
      global_ops[cfg.threads][cfg.repeat_pct] = ops_per_sec;
    }
    const double base = global_ops[cfg.threads][cfg.repeat_pct];
    const double speedup = base > 0 ? ops_per_sec / base : 0.0;

    tp.AddRow({cfg.mode, std::to_string(cfg.threads),
               std::to_string(cfg.repeat_pct),
               TablePrinter::Fmt(ops_per_sec, 0),
               std::to_string(res.qpf_uses), std::to_string(res.cache_hits),
               cfg.mode == "global" ? "1.00"
                                    : TablePrinter::Fmt(speedup, 2) + "x"});
    json.BeginRow();
    json.Field("mode", cfg.mode);
    json.Field("threads", static_cast<uint64_t>(cfg.threads));
    json.Field("repeat_pct", static_cast<uint64_t>(cfg.repeat_pct));
    json.Field("total_ops", res.total_ops);
    json.Field("millis", res.millis);
    json.Field("ops_per_sec", ops_per_sec);
    json.Field("qpf_uses", res.qpf_uses);
    json.Field("cache_hits", res.cache_hits);
    json.Field("speedup_vs_global", speedup);
  }

  tp.Print();
  json.WriteIfRequested(args);
  return 0;
}

}  // namespace
}  // namespace prkb::bench

int main(int argc, char** argv) { return prkb::bench::Main(argc, argv); }
