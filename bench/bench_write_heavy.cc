// Write-heavy serving: 90/10 open-loop insert/select mix over one chain,
// eager per-insert placement vs the deferred insert buffer (DESIGN.md §14).
//
// Both modes replay the *same* operation stream against identical
// deployments. Eager mode pays the placement probe rounds on every insert at
// the simulated trusted-machine latency; buffered mode appends in O(1) and
// lets the first selection that touches the chain flush the whole buffer via
// fused m-ary rounds. The interesting numbers are sustained insert
// throughput, the query latency tail (the flush cost lands on queries), and
// the latency of the first flush-triggering query specifically.
//
// Extra flags beyond the common set (bench_util.h):
//   --smoke   single tiny configuration (CI schema check; gates skipped)
// The trusted-machine latency defaults to 300000 ns (the paper's WAN-ish
// setting) so deferral has a realistic cost to avoid; override with
// --tmlat=<ns>.
//
// Full (non-smoke) runs gate the result: buffered insert throughput must be
// >= 3x eager, every query must return the same winner set in both modes,
// and the first flush-triggering query must stay within 2x the eager-mode
// query p99 (fused rounds keep the flush at ~ceil(log_m k) round trips on
// top of an ordinary fresh query, not one descent per buffered tuple).

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "obs/metrics.h"
#include "prkb/selection.h"
#include "workload/query_gen.h"
#include "workload/synthetic_table.h"

namespace prkb::bench {
namespace {

struct Op {
  bool is_insert;
  edbms::Value v;  // inserted value, or the query's comparison constant
};

struct ModeResult {
  uint64_t inserts = 0;
  double insert_tps = 0;
  double query_p50_us = 0;
  double query_p99_us = 0;
  double first_flush_ms = 0;
  uint64_t flushes = 0;
  std::vector<std::vector<edbms::TupleId>> answers;
};

double PercentileUs(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const size_t i = static_cast<size_t>(p / 100.0 * (v.size() - 1) + 0.5);
  return v[i];
}

ModeResult RunMode(bool buffered, const BenchArgs& args,
                   const workload::SyntheticSpec& spec,
                   const std::vector<Op>& ops, int warm_partitions) {
  const auto plain = workload::MakeSyntheticTable(spec);
  auto db = edbms::CipherbaseEdbms::FromPlainTable(args.seed, plain);

  core::PrkbOptions options;
  options.seed = args.seed;
  options.buffered_inserts = buffered;
  options.rt_latency_hint_ns = static_cast<double>(args.tm_latency_ns);
  core::PrkbIndex index(&db, options);
  index.EnableAttr(0);

  // Warm the chain at zero latency; only the measured mix pays round trips.
  workload::QueryGen warm_gen(spec.domain_lo, spec.domain_hi, args.seed + 3);
  WarmToPartitions(&index, &db, 0, &warm_gen, warm_partitions);
  db.trusted_machine().set_call_latency_ns(args.tm_latency_ns);

  obs::Counter* flush_counter =
      obs::MetricsRegistry::Global().GetCounter("update.buffer.flushes");
  const uint64_t flushes0 = flush_counter->value();

  ModeResult res;
  double insert_secs = 0;
  std::vector<double> query_us;
  for (const Op& op : ops) {
    if (op.is_insert) {
      Stopwatch w;
      index.Insert({op.v});
      insert_secs += w.ElapsedSeconds();
      ++res.inserts;
      continue;
    }
    const auto td = db.MakeComparison(0, edbms::CompareOp::kGe, op.v);
    const uint64_t f0 = flush_counter->value();
    Stopwatch w;
    auto winners = index.Select(td);
    const double ms = w.ElapsedMillis();
    query_us.push_back(ms * 1000.0);
    if (res.first_flush_ms == 0 && flush_counter->value() > f0) {
      res.first_flush_ms = ms;
    }
    std::sort(winners.begin(), winners.end());
    res.answers.push_back(std::move(winners));
  }
  res.insert_tps =
      insert_secs > 0 ? static_cast<double>(res.inserts) / insert_secs : 0;
  res.query_p50_us = PercentileUs(query_us, 50);
  res.query_p99_us = PercentileUs(query_us, 99);
  res.flushes = flush_counter->value() - flushes0;
  return res;
}

int Main(int argc, char** argv) {
  bool smoke = false;
  bool tmlat_given = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strncmp(argv[i], "--tmlat=", 8) == 0) tmlat_given = true;
  }
  BenchArgs args = BenchArgs::Parse(argc, argv, /*default_scale=*/0.1);
  if (!tmlat_given) args.tm_latency_ns = 300'000;

  const size_t rows = smoke ? 1'500 : ScaledRows(200'000, args.scale);
  const int total_ops = args.queries > 0 ? args.queries : (smoke ? 120 : 1000);
  const int warm_partitions = smoke ? 24 : 128;
  PrintBanner("Write-heavy 90/10 mix: eager placement vs insert buffer",
              "beyond-paper update experiment", args,
              "buffered inserts are O(1) store appends, so sustained insert "
              "throughput rises >=3x while queries flush the backlog in "
              "fused rounds and answer identically");

  workload::SyntheticSpec spec;
  spec.rows = rows;
  spec.seed = args.seed;
  const auto plain_domain_lo = spec.domain_lo;
  const auto plain_domain_hi = spec.domain_hi;

  // One seeded 90/10 stream, replayed verbatim by both modes.
  std::vector<Op> ops;
  ops.reserve(static_cast<size_t>(total_ops));
  Rng oprng(args.seed + 17);
  for (int i = 0; i < total_ops; ++i) {
    Op op;
    op.is_insert = oprng.UniformInt64(1, 100) <= 90;
    op.v = oprng.UniformInt64(plain_domain_lo, plain_domain_hi);
    ops.push_back(op);
  }

  const ModeResult eager = RunMode(/*buffered=*/false, args, spec, ops,
                                   warm_partitions);
  const ModeResult buffered = RunMode(/*buffered=*/true, args, spec, ops,
                                      warm_partitions);

  const bool results_match = eager.answers == buffered.answers;
  const double speedup =
      eager.insert_tps > 0 ? buffered.insert_tps / eager.insert_tps : 0;

  JsonBench json("bench_write_heavy", args);
  json.Config("smoke", smoke ? "true" : "false");
  json.Config("rows", static_cast<double>(rows));
  json.Config("total_ops", static_cast<double>(total_ops));

  TablePrinter tp("90/10 open-loop mix, " + std::to_string(total_ops) +
                  " ops, tmlat=" + std::to_string(args.tm_latency_ns) + "ns");
  tp.SetHeader({"mode", "insert t/s", "query p50 us", "query p99 us",
                "first flush ms", "flushes"});
  for (const bool is_buffered : {false, true}) {
    const ModeResult& r = is_buffered ? buffered : eager;
    const std::string mode = is_buffered ? "buffered" : "eager";
    tp.AddRow({mode, TablePrinter::Fmt(r.insert_tps, 0),
               TablePrinter::Fmt(r.query_p50_us, 1),
               TablePrinter::Fmt(r.query_p99_us, 1),
               TablePrinter::Fmt(r.first_flush_ms, 2),
               std::to_string(r.flushes)});
    json.BeginRow();
    json.Field("mode", mode);
    json.Field("ops", static_cast<uint64_t>(total_ops));
    json.Field("inserts", r.inserts);
    json.Field("insert_tuples_per_s", r.insert_tps);
    json.Field("query_p50_us", r.query_p50_us);
    json.Field("query_p99_us", r.query_p99_us);
    json.Field("first_flush_ms", r.first_flush_ms);
    json.Field("flushes", r.flushes);
    json.Field("results_match", static_cast<uint64_t>(results_match ? 1 : 0));
    json.Field("speedup", is_buffered ? speedup : 1.0);
  }
  tp.Print();
  json.WriteIfRequested(args);
  std::printf("\nbuffered/eager insert speedup: %.1fx, results %s\n", speedup,
              results_match ? "match" : "DIVERGE");

  if (!smoke) {
    if (!results_match) {
      std::fprintf(stderr, "GATE: buffered winners diverge from eager\n");
      return 1;
    }
    if (speedup < 3.0) {
      std::fprintf(stderr, "GATE: insert speedup %.2fx < 3x\n", speedup);
      return 1;
    }
    const double flush_bound_ms = 2.0 * eager.query_p99_us / 1000.0;
    if (buffered.first_flush_ms <= 0 ||
        buffered.first_flush_ms > flush_bound_ms) {
      std::fprintf(stderr,
                   "GATE: first flush-triggering query %.2f ms outside "
                   "(0, %.2f] (2x eager p99)\n",
                   buffered.first_flush_ms, flush_bound_ms);
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace prkb::bench

int main(int argc, char** argv) { return prkb::bench::Main(argc, argv); }
