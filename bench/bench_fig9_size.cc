// Reproduces Fig. 9: single-dimensional query cost varying dataset size
// (1% selectivity, static PRKB with 250 partitions) for PRKB(SD),
// Logarithmic-SRC-i and Baseline (Sec. 8.2.4).

#include <vector>

#include "bench/bench_util.h"
#include "common/histogram.h"
#include "common/table_printer.h"
#include "edbms/service_provider.h"
#include "srci/srci.h"
#include "workload/query_gen.h"
#include "workload/synthetic_table.h"

namespace prkb::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv, /*default_scale=*/0.02);
  const int runs = args.queries > 0 ? args.queries : 20;
  PrintBanner("Fig. 9: SD query cost vs dataset size",
              "EDBT'18 Fig. 9", args,
              "all methods scale linearly; PRKB(SD) ~2 orders of magnitude "
              "below Baseline and ~4x below Logarithmic-SRC-i");

  const std::vector<size_t> paper_sizes = {10'000'000, 12'000'000, 14'000'000,
                                           16'000'000, 18'000'000,
                                           20'000'000};
  JsonBench json("bench_fig9_size", args);
  json.Config("runs_per_size", static_cast<double>(runs));
  TablePrinter tp("average of " + std::to_string(runs) + " queries");
  tp.SetHeader({"paper rows", "PRKB #QPF", "PRKB ms", "SRC-i ms",
                "Base #QPF", "Base ms"});

  for (size_t paper_rows : paper_sizes) {
    const size_t rows = ScaledRows(paper_rows, args.scale);
    workload::SyntheticSpec spec;
    spec.rows = rows;
    spec.seed = args.seed + paper_rows;
    const auto plain = workload::MakeSyntheticTable(spec);
    auto db = edbms::CipherbaseEdbms::FromPlainTable(args.seed, plain);
    db.trusted_machine().set_call_latency_ns(args.tm_latency_ns);

    core::PrkbIndex index(&db, core::PrkbOptions{.seed = args.seed});
    index.EnableAttr(0);
    workload::QueryGen warm_gen(spec.domain_lo, spec.domain_hi,
                                args.seed + 13);
    WarmToPartitions(&index, &db, 0, &warm_gen, 250);

    srci::LogSrcI srci_index(&db, 0, spec.domain_lo, spec.domain_hi);
    if (auto s = srci_index.Build(); !s.ok()) return 1;
    edbms::BaselineScanner baseline(&db);

    workload::QueryGen gen(spec.domain_lo, spec.domain_hi, args.seed + 21);
    Histogram prkb_qpf, prkb_ms, srci_ms, base_qpf, base_ms;
    for (int r = 0; r < runs; ++r) {
      const auto range = gen.RandomRange(0, 0.01);
      std::vector<edbms::Trapdoor> tds = {
          db.MakeComparison(0, range[0].op, range[0].lo),
          db.MakeComparison(0, range[1].op, range[1].lo)};
      edbms::SelectionStats st;
      index.SelectRangeSdPlus(tds, &st);
      prkb_qpf.Add(static_cast<double>(st.qpf_uses));
      prkb_ms.Add(st.millis);

      srci_index.Query(range[0].lo + 1, range[1].lo - 1, &st);
      srci_ms.Add(st.millis);

      if (r < 3) {  // baseline is flat; a few samples suffice
        baseline.SelectConjunction(tds, &st);
        base_qpf.Add(static_cast<double>(st.qpf_uses));
        base_ms.Add(st.millis);
      }
    }
    tp.AddRow({std::to_string(paper_rows / 1'000'000) + "M",
               TablePrinter::Fmt(prkb_qpf.Mean(), 0),
               TablePrinter::Fmt(prkb_ms.Mean(), 2),
               TablePrinter::Fmt(srci_ms.Mean(), 2),
               TablePrinter::Fmt(base_qpf.Mean(), 0),
               TablePrinter::Fmt(base_ms.Mean(), 2)});
    json.BeginRow();
    json.Field("paper_rows", static_cast<uint64_t>(paper_rows));
    json.Field("rows", static_cast<uint64_t>(rows));
    json.Field("prkb_qpf_uses", prkb_qpf.Mean());
    json.Field("prkb_ms", prkb_ms.Mean());
    json.Field("srci_ms", srci_ms.Mean());
    json.Field("baseline_qpf_uses", base_qpf.Mean());
    json.Field("baseline_ms", base_ms.Mean());
  }
  tp.Print();
  json.WriteIfRequested(args);
  return 0;
}

}  // namespace
}  // namespace prkb::bench

int main(int argc, char** argv) { return prkb::bench::Main(argc, argv); }
