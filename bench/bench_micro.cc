// Google-benchmark microbenchmarks for the primitive operations underneath
// the experiments: crypto blocks, QPF evaluation, QFilter, insert placement.
// These quantify the constant factors the paper's cost model rests on
// (one QPF use >> one plain comparison).

#include <benchmark/benchmark.h>

#include "crypto/aes128.h"
#include "crypto/hmac.h"
#include "edbms/cipherbase_qpf.h"
#include "prkb/qfilter.h"
#include "prkb/selection.h"
#include "workload/query_gen.h"
#include "workload/synthetic_table.h"

namespace prkb::bench {
namespace {

void BM_AesEncryptBlock(benchmark::State& state) {
  crypto::Aes128 aes(crypto::Aes128::Key{1, 2, 3, 4});
  uint8_t block[16] = {0};
  for (auto _ : state) {
    aes.EncryptBlock(block, block);
    benchmark::DoNotOptimize(block);
  }
}
BENCHMARK(BM_AesEncryptBlock);

void BM_HmacSha256(benchmark::State& state) {
  crypto::HmacSha256 mac(std::vector<uint8_t>{1, 2, 3});
  uint8_t msg[8] = {7};
  for (auto _ : state) {
    auto tag = mac.Compute(msg, sizeof(msg));
    benchmark::DoNotOptimize(tag);
  }
}
BENCHMARK(BM_HmacSha256);

struct QpfFixtureState {
  edbms::CipherbaseEdbms db;
  edbms::Trapdoor td;

  QpfFixtureState()
      : db(edbms::CipherbaseEdbms(1, 1)),
        td() {
    for (int i = 0; i < 1000; ++i) db.Insert({i});
    td = db.MakeComparison(0, edbms::CompareOp::kLt, 500);
  }
};

void BM_QpfEval(benchmark::State& state) {
  static QpfFixtureState* fixture = new QpfFixtureState();
  edbms::TupleId tid = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture->db.Eval(fixture->td, tid));
    tid = (tid + 1) % 1000;
  }
}
BENCHMARK(BM_QpfEval);

void BM_PlainComparison(benchmark::State& state) {
  // The cost QPF evaluation replaces — the paper's "one cycle" reference.
  volatile int64_t c = 500;
  int64_t v = 123;
  for (auto _ : state) {
    benchmark::DoNotOptimize(v < c);
    v = (v + 7) % 1000;
  }
}
BENCHMARK(BM_PlainComparison);

struct WarmIndexState {
  edbms::CipherbaseEdbms db;
  core::PrkbIndex index;
  workload::QueryGen gen;

  WarmIndexState()
      : db(MakeDb()), index(&db, core::PrkbOptions{.seed = 3}),
        gen(1, 30'000'000, 5) {
    index.EnableAttr(0);
    for (int i = 0; i < 400; ++i) {
      const auto p = gen.RandomComparison(0);
      index.Select(db.MakeComparison(p.attr, p.op, p.lo));
    }
  }

  static edbms::CipherbaseEdbms MakeDb() {
    workload::SyntheticSpec spec;
    spec.rows = 100000;
    spec.seed = 2;
    return edbms::CipherbaseEdbms::FromPlainTable(
        1, workload::MakeSyntheticTable(spec));
  }
};

WarmIndexState* WarmIndex() {
  static WarmIndexState* state = new WarmIndexState();
  return state;
}

void BM_QFilterOnWarmChain(benchmark::State& state) {
  auto* s = WarmIndex();
  Rng rng(9);
  for (auto _ : state) {
    const auto p = s->gen.RandomComparison(0);
    const auto td = s->db.MakeComparison(p.attr, p.op, p.lo);
    benchmark::DoNotOptimize(core::QFilter(s->index.pop(0), td, &s->db, &rng));
  }
}
BENCHMARK(BM_QFilterOnWarmChain);

void BM_WarmSelect(benchmark::State& state) {
  auto* s = WarmIndex();
  for (auto _ : state) {
    const auto p = s->gen.RandomComparison(0);
    benchmark::DoNotOptimize(
        s->index.Select(s->db.MakeComparison(p.attr, p.op, p.lo)));
  }
}
BENCHMARK(BM_WarmSelect);

void BM_InsertPlacement(benchmark::State& state) {
  auto* s = WarmIndex();
  Rng rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        s->index.Insert({rng.UniformInt64(1, 30'000'000)}));
  }
}
BENCHMARK(BM_InsertPlacement);

}  // namespace
}  // namespace prkb::bench

BENCHMARK_MAIN();
