// Reproduces Fig. 10: single-dimensional query cost varying selectivity
// 1%..10% on a fixed table (static 250-partition PRKB) (Sec. 8.2.4).

#include <vector>

#include "bench/bench_util.h"
#include "common/histogram.h"
#include "common/table_printer.h"
#include "edbms/service_provider.h"
#include "obs/metrics.h"
#include "srci/srci.h"
#include "workload/query_gen.h"
#include "workload/synthetic_table.h"

namespace prkb::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv, /*default_scale=*/0.02);
  const size_t rows = ScaledRows(10'000'000, args.scale);
  const int runs = args.queries > 0 ? args.queries : 20;
  PrintBanner("Fig. 10: SD query cost vs selectivity",
              "EDBT'18 Fig. 10", args,
              "PRKB(SD) cost is flat in selectivity (it touches only the two "
              "NS partitions); Baseline is flat too but ~2 orders higher; "
              "SRC-i cost grows with the answer (confirmation)");

  workload::SyntheticSpec spec;
  spec.rows = rows;
  spec.seed = args.seed;
  const auto plain = workload::MakeSyntheticTable(spec);
  auto db = edbms::CipherbaseEdbms::FromPlainTable(args.seed, plain);
  db.trusted_machine().set_call_latency_ns(args.tm_latency_ns);

  core::PrkbIndex index(&db, core::PrkbOptions{.seed = args.seed});
  index.EnableAttr(0);
  workload::QueryGen warm_gen(spec.domain_lo, spec.domain_hi, args.seed + 13);
  WarmToPartitions(&index, &db, 0, &warm_gen, 250);

  srci::LogSrcI srci_index(&db, 0, spec.domain_lo, spec.domain_hi);
  if (auto s = srci_index.Build(); !s.ok()) return 1;
  edbms::BaselineScanner baseline(&db);

  // The metrics snapshot should describe the measured static-PRKB phase, not
  // the warm-up growth — this is the worked example in docs/COST_MODEL.md
  // (qfilter.probes / qfilter.invocations <= 2 + ceil(lg k) with k = 250).
  obs::MetricsRegistry::Global().Reset();

  JsonBench json("bench_fig10_selectivity", args);
  json.Config("rows", static_cast<double>(rows));
  json.Config("runs_per_selectivity", static_cast<double>(runs));
  json.Config("warm_partitions", static_cast<double>(index.pop(0).k()));

  TablePrinter tp("average of " + std::to_string(runs) + " queries, " +
                  std::to_string(rows) + " rows");
  tp.SetHeader({"selectivity %", "PRKB #QPF", "PRKB ms", "SRC-i ms",
                "Base #QPF", "Base ms"});
  for (int sel = 1; sel <= 10; ++sel) {
    workload::QueryGen gen(spec.domain_lo, spec.domain_hi,
                           args.seed + 100 + sel);
    Histogram prkb_qpf, prkb_ms, srci_ms, base_qpf, base_ms;
    for (int r = 0; r < runs; ++r) {
      const auto range = gen.RandomRange(0, sel / 100.0);
      std::vector<edbms::Trapdoor> tds = {
          db.MakeComparison(0, range[0].op, range[0].lo),
          db.MakeComparison(0, range[1].op, range[1].lo)};
      edbms::SelectionStats st;
      index.SelectRangeSdPlus(tds, &st);
      prkb_qpf.Add(static_cast<double>(st.qpf_uses));
      prkb_ms.Add(st.millis);
      srci_index.Query(range[0].lo + 1, range[1].lo - 1, &st);
      srci_ms.Add(st.millis);
      if (r < 3) {
        baseline.SelectConjunction(tds, &st);
        base_qpf.Add(static_cast<double>(st.qpf_uses));
        base_ms.Add(st.millis);
      }
    }
    tp.AddRow({std::to_string(sel), TablePrinter::Fmt(prkb_qpf.Mean(), 0),
               TablePrinter::Fmt(prkb_ms.Mean(), 2),
               TablePrinter::Fmt(srci_ms.Mean(), 2),
               TablePrinter::Fmt(base_qpf.Mean(), 0),
               TablePrinter::Fmt(base_ms.Mean(), 2)});
    json.BeginRow();
    json.Field("selectivity_pct", static_cast<uint64_t>(sel));
    json.Field("prkb_qpf_uses", prkb_qpf.Mean());
    json.Field("prkb_ms", prkb_ms.Mean());
    json.Field("srci_ms", srci_ms.Mean());
    json.Field("baseline_qpf_uses", base_qpf.Mean());
    json.Field("baseline_ms", base_ms.Mean());
  }
  tp.Print();
  json.WriteIfRequested(args);
  return 0;
}

}  // namespace
}  // namespace prkb::bench

int main(int argc, char** argv) { return prkb::bench::Main(argc, argv); }
