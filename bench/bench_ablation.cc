// Ablation studies for the design choices called out in DESIGN.md:
//   (a) binary-search QFilter vs a linear NS-pair hunt
//   (b) QScan early stop vs always scanning both NS partitions
//   (c) PRKB(MD) lazy vs eager chain updates
//   (d) QPF backend cost structure: Cipherbase-style TM vs SDB-style MPC
//   (e) sensitivity to per-QPF hardware latency (the paper's observation
//       that QPF evaluation dominates, Sec. 8.2.3 point 3)

#include <vector>

#include "bench/bench_util.h"
#include "common/histogram.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "edbms/sdb_qpf.h"
#include "edbms/service_provider.h"
#include "prkb/qfilter.h"
#include "prkb/qscan.h"
#include "workload/query_gen.h"
#include "workload/synthetic_table.h"

namespace prkb::bench {
namespace {

using core::PrkbIndex;
using core::PrkbOptions;
using edbms::SelectionStats;
using edbms::Trapdoor;

/// (a) Linear NS-pair hunt: probe partition samples left to right until the
/// label flips. Costs O(position of cut) instead of O(lg k).
uint64_t LinearFilterCost(const core::Pop& pop, const Trapdoor& td,
                          edbms::Edbms* db, Rng* rng) {
  const uint64_t before = db->uses();
  if (pop.k() < 2) return 0;
  const bool first = db->Eval(td, core::SamplePartition(pop, 0, rng));
  for (size_t p = 1; p < pop.k(); ++p) {
    if (db->Eval(td, core::SamplePartition(pop, p, rng)) != first) break;
  }
  return db->uses() - before;
}

int Main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv, /*default_scale=*/0.02);
  const size_t rows = ScaledRows(10'000'000, args.scale);
  PrintBanner("Ablations: PRKB design choices", "DESIGN.md ablation index",
              args, "");

  workload::SyntheticSpec spec;
  spec.rows = rows;
  spec.seed = args.seed;
  const auto plain = workload::MakeSyntheticTable(spec);
  auto db = edbms::CipherbaseEdbms::FromPlainTable(args.seed, plain);

  PrkbIndex index(&db, PrkbOptions{.seed = args.seed});
  index.EnableAttr(0);
  workload::QueryGen warm_gen(spec.domain_lo, spec.domain_hi, args.seed + 3);
  WarmToPartitions(&index, &db, 0, &warm_gen, 250);

  JsonBench json("bench_ablation", args);
  json.Config("rows", static_cast<double>(rows));
  // Each row is one (ablation, strategy) cell; "metric" names the unit.
  auto emit = [&json](const std::string& ablation, const std::string& strategy,
                      const std::string& metric, double value) {
    json.BeginRow();
    json.Field("ablation", ablation);
    json.Field("strategy", strategy);
    json.Field("metric", metric);
    json.Field("value", value);
  };

  // ---------------- (a) QFilter: binary search vs linear hunt ----------
  {
    workload::QueryGen gen(spec.domain_lo, spec.domain_hi, args.seed + 5);
    Rng rng(args.seed + 6);
    Histogram binary_cost, linear_cost;
    for (int i = 0; i < 50; ++i) {
      const auto p = gen.RandomComparison(0);
      const Trapdoor td = db.MakeComparison(p.attr, p.op, p.lo);
      const uint64_t before = db.uses();
      core::QFilter(index.pop(0), td, &db, &rng);
      binary_cost.Add(static_cast<double>(db.uses() - before));
      linear_cost.Add(
          static_cast<double>(LinearFilterCost(index.pop(0), td, &db, &rng)));
    }
    TablePrinter tp("(a) NS-pair location cost, k=" +
                    std::to_string(index.pop(0).k()));
    tp.SetHeader({"strategy", "mean #QPF", "max #QPF"});
    tp.AddRow({"binary search (paper)",
               TablePrinter::Fmt(binary_cost.Mean(), 1),
               TablePrinter::Fmt(binary_cost.Max(), 0)});
    tp.AddRow({"linear hunt", TablePrinter::Fmt(linear_cost.Mean(), 1),
               TablePrinter::Fmt(linear_cost.Max(), 0)});
    tp.Print();
    emit("qfilter", "binary_search", "mean_qpf", binary_cost.Mean());
    emit("qfilter", "linear_hunt", "mean_qpf", linear_cost.Mean());
  }

  // ---------------- (b) QScan: early stop vs scan-both -----------------
  {
    workload::QueryGen gen(spec.domain_lo, spec.domain_hi, args.seed + 7);
    Rng rng(args.seed + 8);
    Histogram early, both;
    for (int i = 0; i < 50; ++i) {
      const auto p = gen.RandomComparison(0);
      const Trapdoor td = db.MakeComparison(p.attr, p.op, p.lo);
      const auto filter = core::QFilter(index.pop(0), td, &db, &rng);
      uint64_t before = db.uses();
      core::QScan(index.pop(0), filter, td, &db);
      early.Add(static_cast<double>(db.uses() - before));
      // Scan-both alternative: always pay both partitions in full.
      both.Add(static_cast<double>(
          index.pop(0).members_at(filter.ns_a).Size() +
          (filter.ns_b != filter.ns_a
               ? index.pop(0).members_at(filter.ns_b).Size()
               : 0)));
    }
    TablePrinter tp("(b) NS-pair scan cost");
    tp.SetHeader({"strategy", "mean #QPF"});
    tp.AddRow({"early stop (paper)", TablePrinter::Fmt(early.Mean(), 0)});
    tp.AddRow({"scan both always", TablePrinter::Fmt(both.Mean(), 0)});
    tp.Print();
    emit("qscan", "early_stop", "mean_qpf", early.Mean());
    emit("qscan", "scan_both", "mean_qpf", both.Mean());
  }

  // ---------------- (c) MD updates: lazy vs eager -----------------------
  {
    workload::SyntheticSpec md_spec = spec;
    md_spec.rows = std::min<size_t>(rows, 100000);
    md_spec.attrs = 3;
    const auto md_plain = workload::MakeSyntheticTable(md_spec);
    auto md_db = edbms::CipherbaseEdbms::FromPlainTable(args.seed, md_plain);
    PrkbIndex lazy(&md_db, PrkbOptions{.seed = 1, .eager_md_update = false});
    PrkbIndex eager(&md_db, PrkbOptions{.seed = 1, .eager_md_update = true});
    for (edbms::AttrId a = 0; a < 3; ++a) {
      lazy.EnableAttr(a);
      eager.EnableAttr(a);
    }
    std::vector<edbms::AttrId> attrs = {0, 1, 2};
    workload::QueryGen gen(md_spec.domain_lo, md_spec.domain_hi,
                           args.seed + 9);
    uint64_t lazy_total = 0, eager_total = 0;
    Histogram lazy_tail, eager_tail;
    const int kQueries = 80;
    for (int q = 0; q < kQueries; ++q) {
      const auto box = gen.RandomBox(attrs, 0.02);
      std::vector<Trapdoor> t1, t2;
      for (const auto& p : box) {
        t1.push_back(md_db.MakeComparison(p.attr, p.op, p.lo));
        t2.push_back(md_db.MakeComparison(p.attr, p.op, p.lo));
      }
      SelectionStats st;
      lazy.SelectRangeMd(t1, &st);
      lazy_total += st.qpf_uses;
      if (q >= kQueries - 20) lazy_tail.Add(static_cast<double>(st.qpf_uses));
      eager.SelectRangeMd(t2, &st);
      eager_total += st.qpf_uses;
      if (q >= kQueries - 20) eager_tail.Add(static_cast<double>(st.qpf_uses));
    }
    size_t k_lazy = 0, k_eager = 0;
    for (edbms::AttrId a = 0; a < 3; ++a) {
      k_lazy += lazy.pop(a).k();
      k_eager += eager.pop(a).k();
    }
    TablePrinter tp("(c) MD chain updates over " + std::to_string(kQueries) +
                    " box queries (" + std::to_string(md_spec.rows) +
                    " rows)");
    tp.SetHeader({"mode", "total #QPF", "last-20 mean #QPF", "sum k"});
    tp.AddRow({"lazy (paper)", TablePrinter::Fmt(lazy_total),
               TablePrinter::Fmt(lazy_tail.Mean(), 0),
               std::to_string(k_lazy)});
    tp.AddRow({"eager", TablePrinter::Fmt(eager_total),
               TablePrinter::Fmt(eager_tail.Mean(), 0),
               std::to_string(k_eager)});
    tp.Print();
    emit("md_update", "lazy", "total_qpf", static_cast<double>(lazy_total));
    emit("md_update", "eager", "total_qpf", static_cast<double>(eager_total));
  }

  // ---------------- (d) backend cost structure --------------------------
  {
    workload::SyntheticSpec b_spec = spec;
    b_spec.rows = std::min<size_t>(rows, 100000);
    const auto b_plain = workload::MakeSyntheticTable(b_spec);
    auto cb = edbms::CipherbaseEdbms::FromPlainTable(args.seed, b_plain);
    auto sdb = edbms::SdbEdbms::FromPlainTable(args.seed, b_plain);
    sdb.set_round_latency_ns(2000);  // emulate a fast LAN round trip

    TablePrinter tp("(d) warm PRKB query on different QPF backends (" +
                    std::to_string(b_spec.rows) + " rows)");
    tp.SetHeader({"backend", "mean #QPF", "mean ms"});
    auto run = [&](edbms::Edbms* backend, const std::string& name) {
      PrkbIndex idx(backend, PrkbOptions{.seed = args.seed});
      idx.EnableAttr(0);
      workload::QueryGen wgen(b_spec.domain_lo, b_spec.domain_hi,
                              args.seed + 31);
      WarmToPartitions(&idx, backend, 0, &wgen, 250);
      workload::QueryGen qgen(b_spec.domain_lo, b_spec.domain_hi,
                              args.seed + 32);
      Histogram qpf, ms;
      for (int i = 0; i < 30; ++i) {
        const auto p = qgen.RandomComparison(0);
        SelectionStats st;
        idx.Select(backend->MakeComparison(p.attr, p.op, p.lo), &st);
        qpf.Add(static_cast<double>(st.qpf_uses));
        ms.Add(st.millis);
      }
      tp.AddRow({name, TablePrinter::Fmt(qpf.Mean(), 0),
                 TablePrinter::Fmt(ms.Mean(), 3)});
      emit("backend", name, "mean_ms", ms.Mean());
    };
    run(&cb, "Cipherbase-style TM");
    run(&sdb, "SDB-style MPC (2us rounds)");
    tp.Print();
  }

  // ---------------- (e) TM latency sensitivity --------------------------
  {
    workload::SyntheticSpec l_spec = spec;
    l_spec.rows = std::min<size_t>(rows, 50000);
    const auto l_plain = workload::MakeSyntheticTable(l_spec);
    TablePrinter tp("(e) PRKB vs Baseline as per-QPF hardware latency grows (" +
                    std::to_string(l_spec.rows) + " rows)");
    tp.SetHeader({"TM latency", "PRKB ms", "Baseline ms", "speedup"});
    for (uint64_t latency_ns : {uint64_t{0}, uint64_t{1000}, uint64_t{10000}}) {
      auto ldb = edbms::CipherbaseEdbms::FromPlainTable(args.seed, l_plain);
      ldb.trusted_machine().set_call_latency_ns(latency_ns);
      PrkbIndex idx(&ldb, PrkbOptions{.seed = args.seed});
      idx.EnableAttr(0);
      workload::QueryGen wgen(l_spec.domain_lo, l_spec.domain_hi,
                              args.seed + 41);
      WarmToPartitions(&idx, &ldb, 0, &wgen, 250);
      edbms::BaselineScanner baseline(&ldb);
      workload::QueryGen qgen(l_spec.domain_lo, l_spec.domain_hi,
                              args.seed + 42);
      Histogram prkb_ms, base_ms;
      for (int i = 0; i < 5; ++i) {
        const auto p = qgen.RandomComparison(0);
        const Trapdoor td = ldb.MakeComparison(p.attr, p.op, p.lo);
        SelectionStats st;
        idx.Select(td, &st);
        prkb_ms.Add(st.millis);
        baseline.Select(td, &st);
        base_ms.Add(st.millis);
      }
      tp.AddRow({std::to_string(latency_ns / 1000) + "us",
                 TablePrinter::Fmt(prkb_ms.Mean(), 2),
                 TablePrinter::Fmt(base_ms.Mean(), 2),
                 TablePrinter::Fmt(base_ms.Mean() / prkb_ms.Mean(), 0) + "x"});
      emit("tm_latency", std::to_string(latency_ns) + "ns", "speedup",
           base_ms.Mean() / prkb_ms.Mean());
    }
    tp.Print();
  }
  json.WriteIfRequested(args);
  return 0;
}

}  // namespace
}  // namespace prkb::bench

int main(int argc, char** argv) { return prkb::bench::Main(argc, argv); }
