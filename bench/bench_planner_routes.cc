// Cost-based planner routing vs the old fixed rules, on the ad-hoc
// cold-deployment regime (the left edge of the paper's Fig. 11/12 curves,
// where every chain still has k = 1).
//
// Workload model: an analyst fires two-attribute box conjunctions
//   `a0 > L0 AND a0 < H0 AND a1 > L1 AND a1 < H1`
// at a freshly loaded deployment (snapshot restore, staging copy, or a
// first-touch table) — each query pays the cold-chain cost. A fraction of
// the boxes is contradictory (inverted windows from user input).  Two modes:
//   fixed-md    the repo's previous routing rule: every all-comparison
//               conjunction becomes one PRKB(MD) call with four trapdoors
//   cost-based  query::Planner: each same-attribute pair collapses into one
//               BETWEEN (contradictions short-circuit to an empty plan);
//               the two BETWEENs run as an SD+ intersection
//
// On cold chains the collapsed route reads each attribute's no-index window
// once per BETWEEN instead of once per comparison, and contradictions cost
// zero QPF instead of a full scan — the cost-based planner must be
// measurably no slower than the fixed rule here.  (On developed chains the
// MD grid's cross-dimension pruning wins instead; that crossover is what
// the estimator in src/exec/cost.cc encodes and exec_test pins.)
//
// Extra flags beyond the common set (bench_util.h):
//   --smoke   single tiny configuration (CI schema check)

#include <algorithm>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "query/planner.h"
#include "workload/synthetic_table.h"

namespace prkb::bench {
namespace {

using edbms::CompareOp;
using edbms::TupleId;
using edbms::Value;

struct Box {
  Value lo0, hi0, lo1, hi1;
  bool contradictory;
};

/// The box stream is deterministic in the seed so both modes answer the
/// same logical queries. Contradictory boxes invert attribute 0's window.
std::vector<Box> MakeBoxes(int queries, int contra_pct, uint64_t seed,
                           Value domain_lo, Value domain_hi) {
  std::vector<Box> boxes;
  Rng rng(seed + 101);
  const Value span = domain_hi - domain_lo;
  for (int q = 0; q < queries; ++q) {
    Box b;
    b.lo0 = domain_lo + rng.UniformInt64(0, span / 2);
    b.hi0 = b.lo0 + rng.UniformInt64(span / 8, span / 2);
    b.lo1 = domain_lo + rng.UniformInt64(0, span / 2);
    b.hi1 = b.lo1 + rng.UniformInt64(span / 8, span / 2);
    b.contradictory = rng.UniformInt64(1, 100) <= contra_pct;
    if (b.contradictory) std::swap(b.lo0, b.hi0);
    boxes.push_back(b);
  }
  return boxes;
}

struct RunResult {
  double millis = 0;
  uint64_t qpf_uses = 0;
  uint64_t round_trips = 0;
  std::vector<std::vector<TupleId>> rows;  // per-query, sorted
};

/// Runs the whole stream in one mode. Every query gets a fresh deployment
/// (the cold-start regime under study), built outside the timed section.
RunResult RunMode(const std::string& mode, const std::vector<Box>& boxes,
                  const edbms::PlainTable& plain, const BenchArgs& args) {
  RunResult res;
  for (const Box& b : boxes) {
    auto db = edbms::CipherbaseEdbms::FromPlainTable(args.seed, plain);
    db.trusted_machine().set_call_latency_ns(args.tm_latency_ns);
    core::PrkbIndex index(&db, core::PrkbOptions{.seed = args.seed});
    index.EnableAttr(0);
    index.EnableAttr(1);

    std::vector<TupleId> rows;
    const uint64_t uses0 = db.uses();
    const uint64_t rt0 = db.round_trips();
    Stopwatch watch;
    if (mode == "fixed-md") {
      // The pre-refactor rule: all-comparison conjunction => PRKB(MD).
      rows = index.SelectRangeMd({
          db.MakeComparison(0, CompareOp::kGt, b.lo0),
          db.MakeComparison(0, CompareOp::kLt, b.hi0),
          db.MakeComparison(1, CompareOp::kGt, b.lo1),
          db.MakeComparison(1, CompareOp::kLt, b.hi1),
      });
    } else {
      query::Catalog catalog;
      catalog.RegisterTable("t", {"a0", "a1"});
      query::Planner planner(&catalog, &db, &index);
      char sql[256];
      std::snprintf(sql, sizeof(sql),
                    "SELECT * FROM t WHERE a0 > %lld AND a0 < %lld "
                    "AND a1 > %lld AND a1 < %lld",
                    static_cast<long long>(b.lo0),
                    static_cast<long long>(b.hi0),
                    static_cast<long long>(b.lo1),
                    static_cast<long long>(b.hi1));
      auto r = planner.ExecuteSql(sql);
      if (!r.ok()) {
        std::fprintf(stderr, "planner error: %s\n",
                     r.status().ToString().c_str());
        continue;
      }
      rows = std::move(r->rows);
    }
    res.millis += watch.ElapsedMillis();
    res.qpf_uses += db.uses() - uses0;
    res.round_trips += db.round_trips() - rt0;
    std::sort(rows.begin(), rows.end());
    res.rows.push_back(std::move(rows));
  }
  return res;
}

int Main(int argc, char** argv) {
  bool smoke = false;
  bool tmlat_given = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strncmp(argv[i], "--tmlat=", 8) == 0) tmlat_given = true;
  }
  BenchArgs args = BenchArgs::Parse(argc, argv, /*default_scale=*/0.00006);
  if (!tmlat_given) args.tm_latency_ns = 2000;

  const size_t rows = ScaledRows(10'000'000, args.scale);
  const int queries = args.queries > 0 ? args.queries : (smoke ? 4 : 20);
  PrintBanner("Planner routing: cost-based collapse vs old fixed MD rule",
              "cold-chain regime of Fig. 11/12 (k = 1)", args,
              "each box query runs against a fresh deployment; the collapsed "
              "SD+ route scans each no-index window twice (once per BETWEEN) "
              "where fixed MD scans it four times (once per comparison), and "
              "contradictory boxes cost the planner zero QPF");

  workload::SyntheticSpec spec;
  spec.rows = rows;
  spec.attrs = 2;
  spec.seed = args.seed;
  const auto plain = workload::MakeSyntheticTable(spec);

  const std::vector<int> contra_pcts =
      smoke ? std::vector<int>{25} : std::vector<int>{0, 25};

  JsonBench json("bench_planner_routes", args);
  json.Config("rows", static_cast<double>(rows));
  json.Config("queries", static_cast<double>(queries));
  json.Config("smoke", smoke ? "true" : "false");

  TablePrinter tp("cold-deployment box conjunctions, " + std::to_string(rows) +
                  " rows, " + std::to_string(queries) + " queries");
  tp.SetHeader({"mode", "contra %", "QPF uses", "QPF/query", "round trips",
                "millis", "vs fixed-md"});

  for (int contra_pct : contra_pcts) {
    const auto boxes =
        MakeBoxes(queries, contra_pct, args.seed, spec.domain_lo,
                  spec.domain_hi);
    const RunResult fixed = RunMode("fixed-md", boxes, plain, args);
    const RunResult cost = RunMode("cost-based", boxes, plain, args);

    bool match = fixed.rows == cost.rows;
    for (const auto& mode_res :
         {std::make_pair("fixed-md", &fixed),
          std::make_pair("cost-based", &cost)}) {
      const RunResult& r = *mode_res.second;
      const double ratio =
          fixed.qpf_uses > 0
              ? static_cast<double>(r.qpf_uses) / fixed.qpf_uses
              : 0.0;
      tp.AddRow({mode_res.first, std::to_string(contra_pct),
                 std::to_string(r.qpf_uses),
                 TablePrinter::Fmt(static_cast<double>(r.qpf_uses) / queries,
                                   1),
                 std::to_string(r.round_trips), TablePrinter::Fmt(r.millis, 1),
                 TablePrinter::Fmt(ratio, 2) + "x"});
      json.BeginRow();
      json.Field("mode", std::string(mode_res.first));
      json.Field("contradiction_pct", static_cast<uint64_t>(contra_pct));
      json.Field("queries", static_cast<uint64_t>(queries));
      json.Field("qpf_uses", r.qpf_uses);
      json.Field("qpf_round_trips", r.round_trips);
      json.Field("millis", r.millis);
      json.Field("qpf_vs_fixed", ratio);
      json.Field("results_match", match ? "true" : "false");
    }
    if (!match) {
      std::fprintf(stderr,
                   "FATAL: routes disagree on results (contra %d%%)\n",
                   contra_pct);
      return 1;
    }
    // Gate: the calibrated cost-based planner must match or beat the best
    // static route on every cold-box workload — identical answers for less
    // (or equal) QPF. A regression here means a costing change made the
    // planner pick a worse physical route than the old fixed rule.
    if (cost.qpf_uses > fixed.qpf_uses) {
      std::fprintf(stderr,
                   "FATAL: cost-based spent %llu QPF uses vs fixed-md %llu "
                   "(contra %d%%)\n",
                   static_cast<unsigned long long>(cost.qpf_uses),
                   static_cast<unsigned long long>(fixed.qpf_uses),
                   contra_pct);
      return 1;
    }
  }

  tp.Print();
  json.WriteIfRequested(args);
  return 0;
}

}  // namespace
}  // namespace prkb::bench

int main(int argc, char** argv) { return prkb::bench::Main(argc, argv); }
