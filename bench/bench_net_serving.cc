// Distributed serving throughput: pipelined QPF transport × sharded index.
//
// Workload model: a service provider whose trusted machine lives behind a
// real socket (loopback QpfServer + QpfClient + RemoteEdbms), answering
// fresh single-predicate selections from concurrent client sessions that
// multiplex one channel. Sweeps
//
//   in-flight ∈ {1, 2, 4, 8}   concurrently blocked selections (1 = the
//                              serial round-trip baseline)
//   shards   ∈ {1, 4}          ShardedPrkbIndex routing over the remote Θ
//
// and reports QPS plus per-selection p50/p99 latency. Every winner set is
// checked against the plaintext oracle, so "results_match" doubles as the
// byte-identical-to-single-process gate (the serving tests prove oracle ==
// single-process winners).
//
// The trusted-machine latency defaults to 300 µs per round trip here (not 0)
// — an FPGA TM reached over a LAN hop, the regime the transport is for — so
// pipelining has an honest backend cost to overlap; override with
// --tmlat=<ns>. SimulatedLatencyNanos sleeps at this magnitude, so overlap
// is real even on a single-core host where the AES compute itself cannot
// parallelise. The expected shape: QPS scales with in-flight depth until
// the server's worker pool or the per-attribute chain locks saturate, while
// p50 latency stays near the serial value — overlap, not batching.
//
// After each closed-loop configuration, the same deployment shape is rerun
// OPEN-LOOP: arrivals follow a precomputed Poisson schedule at 80% of the
// closed-loop QPS just measured, and latency is measured from the *scheduled*
// arrival — so queueing delay a closed loop self-throttles away from shows up
// in the tail. Open rows carry mode="open" and offered_qps; closed rows carry
// offered_qps=0.
//
// Extra flags beyond the common set (bench_util.h):
//   --smoke   single tiny configuration (CI schema check)

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/histogram.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "net/qpf_client.h"
#include "net/qpf_server.h"
#include "prkb/shard.h"
#include "workload/synthetic_table.h"

namespace prkb::bench {
namespace {

using edbms::TupleId;
using edbms::Value;

constexpr size_t kAttrs = 8;

struct RunConfig {
  size_t shards;
  int inflight;
  int ops_per_stream;
};

struct OpStream {
  edbms::AttrId attr = 0;
  std::vector<edbms::Trapdoor> tds;
  std::vector<std::vector<TupleId>> expected;  // oracle winners, sorted
};

/// The workload is FIXED across configurations: one fresh-comparison stream
/// per attribute, identical predicates every run, so each attribute's chain
/// carves through the same op sequence no matter the in-flight depth. The
/// depth only decides how many threads interleave the streams — QPS deltas
/// measure overlap, not workload drift. Oracle winner sets are precomputed
/// so verification never touches the timed region.
std::vector<OpStream> MakeStreams(int ops_per_stream,
                                  const edbms::PlainTable& plain,
                                  edbms::Edbms* issuer, uint64_t seed) {
  std::vector<OpStream> streams(kAttrs);
  for (size_t s = 0; s < kAttrs; ++s) {
    streams[s].attr = static_cast<edbms::AttrId>(s);
    Rng rng(seed + 31 * s);
    for (int i = 0; i < ops_per_stream; ++i) {
      const Value c = rng.UniformInt64(0, 999'999);
      streams[s].tds.push_back(
          issuer->MakeComparison(streams[s].attr, edbms::CompareOp::kLt, c));
      std::vector<TupleId> winners;
      for (TupleId tid = 0; tid < plain.num_rows(); ++tid) {
        if (plain.at(streams[s].attr, tid) < c) winners.push_back(tid);
      }
      streams[s].expected.push_back(std::move(winners));
    }
  }
  return streams;
}

struct RunResult {
  double millis = 0;
  uint64_t total_ops = 0;
  uint64_t qpf_uses = 0;
  uint64_t round_trips = 0;
  Histogram latency_ms;
  bool results_match = true;
};

/// One measured run on a fresh deployment (chains, caches, counters and the
/// socket pair must not leak across runs). `offered_qps <= 0` is the closed
/// loop: cfg.inflight threads issue back-to-back. Positive `offered_qps` is
/// the open loop: each thread round-robins its owned streams against a
/// precomputed exponential inter-arrival schedule at its share of the
/// offered rate, and each op's latency runs from its scheduled arrival —
/// late dispatch is queueing delay, not excused.
RunResult RunOne(const RunConfig& cfg, const edbms::PlainTable& plain,
                 const BenchArgs& args, double offered_qps) {
  auto db = edbms::CipherbaseEdbms::FromPlainTable(args.seed, plain);
  db.trusted_machine().set_call_latency_ns(args.tm_latency_ns);
  net::QpfServerOptions sopts;
  sopts.workers = 16;
  net::QpfServer server(&db, sopts);
  if (!server.ServeTcp(0).ok()) {
    std::fprintf(stderr, "cannot start loopback server\n");
    std::exit(1);
  }
  auto conn = net::QpfClient::ConnectTcp("127.0.0.1", server.port());
  if (!conn.ok()) {
    std::fprintf(stderr, "cannot connect: %s\n",
                 conn.status().ToString().c_str());
    std::exit(1);
  }
  auto client = std::move(conn).value();
  net::RemoteEdbms remote(&db, client.get());

  core::PrkbOptions options;
  options.seed = args.seed;
  // Serving config, not the paper-literal scalar model: scans ride the
  // batched wire entry so a round trip carries many tuples. Every
  // (trapdoor, tuple) pair still evaluates identically.
  options.batch_size = 256;
  core::ShardedPrkbIndex index(&remote, cfg.shards, options);
  for (size_t a = 0; a < kAttrs; ++a) {
    index.EnableAttr(static_cast<edbms::AttrId>(a));
  }
  const auto streams =
      MakeStreams(cfg.ops_per_stream, plain, &remote, args.seed + 7);

  RunResult res;
  res.total_ops = kAttrs * static_cast<uint64_t>(cfg.ops_per_stream);
  const uint64_t uses0 = remote.uses();
  // Round trips from the process-global counter: per-op SelectionStats
  // windows overlap under concurrency and would double-count.
  obs::Counter* trip_counter =
      obs::MetricsRegistry::Global().GetCounter("qpf.round_trips");
  const uint64_t trips0 = trip_counter->value();
  std::vector<std::vector<double>> lat(kAttrs);
  std::vector<std::vector<std::vector<TupleId>>> got(kAttrs);
  for (size_t s = 0; s < kAttrs; ++s) {
    lat[s].resize(static_cast<size_t>(cfg.ops_per_stream));
    got[s].resize(static_cast<size_t>(cfg.ops_per_stream));
  }
  Stopwatch watch;
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  // Thread t owns streams {t, t+inflight, ...}; within a stream ops run in
  // order, so every attribute sees the identical carve sequence at every
  // depth — only cross-stream overlap changes.
  for (int t = 0; t < cfg.inflight; ++t) {
    workers.emplace_back([&, t] {
      std::vector<size_t> owned;
      for (size_t s = t; s < kAttrs; s += cfg.inflight) owned.push_back(s);
      if (owned.empty()) return;
      if (offered_qps <= 0) {
        for (const size_t s : owned) {
          for (int i = 0; i < cfg.ops_per_stream; ++i) {
            const auto op0 = std::chrono::steady_clock::now();
            auto winners = index.Select(streams[s].tds[i]);
            const auto op1 = std::chrono::steady_clock::now();
            lat[s][i] =
                std::chrono::duration<double, std::milli>(op1 - op0).count();
            got[s][i] = std::move(winners);
          }
        }
        return;
      }
      // Open loop: this thread's share of the offered rate, Poisson
      // arrivals precomputed before the first dispatch.
      const size_t thread_ops = owned.size() * cfg.ops_per_stream;
      const double rate =
          offered_qps * static_cast<double>(thread_ops) / res.total_ops;
      Rng rng(args.seed + 97 * (t + 1));
      std::vector<double> arrival_s(thread_ops);
      double at = 0;
      for (size_t k = 0; k < thread_ops; ++k) {
        // Exponential inter-arrival; 1-U keeps the log argument off zero.
        at += -std::log(1.0 - rng.UniformDouble()) / rate;
        arrival_s[k] = at;
      }
      for (size_t k = 0; k < thread_ops; ++k) {
        // Round-robin over owned streams preserves in-stream op order.
        const size_t s = owned[k % owned.size()];
        const int i = static_cast<int>(k / owned.size());
        const auto sched =
            start + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(arrival_s[k]));
        std::this_thread::sleep_until(sched);
        auto winners = index.Select(streams[s].tds[i]);
        const auto done = std::chrono::steady_clock::now();
        lat[s][i] =
            std::chrono::duration<double, std::milli>(done - sched).count();
        got[s][i] = std::move(winners);
      }
    });
  }
  for (auto& w : workers) w.join();
  res.millis = watch.ElapsedMillis();
  res.qpf_uses = remote.uses() - uses0;
  res.round_trips = trip_counter->value() - trips0;
  for (size_t s = 0; s < kAttrs; ++s) {
    for (const double ms : lat[s]) res.latency_ms.Add(ms);
    for (int i = 0; i < cfg.ops_per_stream; ++i) {
      std::sort(got[s][i].begin(), got[s][i].end());
      if (got[s][i] != streams[s].expected[i]) res.results_match = false;
    }
  }
  server.Stop();
  return res;
}

int Main(int argc, char** argv) {
  bool smoke = false;
  bool tmlat_given = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strncmp(argv[i], "--tmlat=", 8) == 0) tmlat_given = true;
  }
  BenchArgs args = BenchArgs::Parse(argc, argv, /*default_scale=*/0.001);
  if (!tmlat_given) args.tm_latency_ns = 300'000;

  const size_t rows = ScaledRows(1'000'000, args.scale);
  const int ops = args.queries > 0 ? args.queries : (smoke ? 4 : 40);
  PrintBanner("Distributed serving: pipelined transport x sharded index",
              "beyond-paper serving experiment", args,
              "in-flight selections multiplex one channel by correlation id; "
              "the server's worker pool overlaps their trusted-machine round "
              "trips, so QPS scales with depth while p50 holds");

  workload::SyntheticSpec spec;
  spec.rows = rows;
  spec.attrs = kAttrs;
  spec.seed = args.seed;
  const auto plain = workload::MakeSyntheticTable(spec);

  const std::vector<size_t> shard_counts =
      smoke ? std::vector<size_t>{2} : std::vector<size_t>{1, 4};
  const std::vector<int> inflights =
      smoke ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8};
  std::vector<RunConfig> configs;
  for (const size_t shards : shard_counts) {
    for (const int inflight : inflights) {
      configs.push_back(RunConfig{shards, inflight, ops});
    }
  }

  JsonBench json("bench_net_serving", args);
  json.Config("rows", static_cast<double>(rows));
  json.Config("attrs", static_cast<double>(kAttrs));
  json.Config("ops_per_stream", static_cast<double>(ops));
  json.Config("transport", "tcp-loopback");
  json.Config("batch_size", 256.0);
  json.Config("smoke", smoke ? "true" : "false");

  TablePrinter tp("loopback serving, " + std::to_string(rows) +
                  " rows, tmlat " + std::to_string(args.tm_latency_ns) + "ns");
  tp.SetHeader({"mode", "shards", "in-flight", "offered", "QPS", "p50 ms",
                "p99 ms", "QPF uses", "round trips", "match", "vs serial"});

  // QPS of the serial (in-flight 1) run, keyed by shard count.
  std::vector<double> serial_qps(64, 0.0);
  bool all_match = true;
  bool gate_4x = true;

  const auto emit = [&](const char* mode, const RunConfig& cfg,
                        const RunResult& res, double offered,
                        double speedup) {
    const double qps = res.total_ops / (res.millis / 1000.0);
    tp.AddRow({mode, std::to_string(cfg.shards), std::to_string(cfg.inflight),
               offered > 0 ? TablePrinter::Fmt(offered, 0) : "-",
               TablePrinter::Fmt(qps, 0),
               TablePrinter::Fmt(res.latency_ms.Percentile(50), 2),
               TablePrinter::Fmt(res.latency_ms.Percentile(99), 2),
               std::to_string(res.qpf_uses), std::to_string(res.round_trips),
               res.results_match ? "yes" : "NO",
               speedup > 0 ? TablePrinter::Fmt(speedup, 2) + "x" : "-"});
    json.BeginRow();
    json.Field("mode", mode);
    json.Field("shards", static_cast<uint64_t>(cfg.shards));
    json.Field("inflight", static_cast<uint64_t>(cfg.inflight));
    json.Field("offered_qps", offered > 0 ? offered : 0.0);
    json.Field("total_ops", res.total_ops);
    json.Field("millis", res.millis);
    json.Field("qps", qps);
    json.Field("p50_ms", res.latency_ms.Percentile(50));
    json.Field("p99_ms", res.latency_ms.Percentile(99));
    json.Field("qpf_uses", res.qpf_uses);
    json.Field("round_trips", res.round_trips);
    json.Field("results_match", res.results_match ? "true" : "false");
    json.Field("speedup_vs_serial", speedup);
  };

  for (const RunConfig& cfg : configs) {
    const RunResult res = RunOne(cfg, plain, args, /*offered_qps=*/0);
    const double qps = res.total_ops / (res.millis / 1000.0);
    if (cfg.inflight == 1) serial_qps[cfg.shards] = qps;
    const double base = serial_qps[cfg.shards];
    const double speedup = base > 0 ? qps / base : 0.0;
    all_match = all_match && res.results_match;
    if (!smoke && cfg.inflight == 8 && speedup < 4.0) gate_4x = false;
    emit(cfg.inflight == 1 ? "serial" : "pipelined", cfg, res, 0, speedup);

    // Open-loop sibling: same deployment shape, arrivals at 80% of the
    // closed-loop QPS just measured — under the knee, so the queue drains,
    // but close enough that scheduled-arrival latency exposes queueing the
    // closed loop self-throttles away.
    const double offered = 0.8 * qps;
    const RunResult open = RunOne(cfg, plain, args, offered);
    all_match = all_match && open.results_match;
    emit("open", cfg, open, offered, 0);
  }

  tp.Print();
  json.Config("all_results_match", all_match ? "true" : "false");
  json.Config("gate_pipeline_4x_at_8", smoke ? "skipped"
                                             : (gate_4x ? "pass" : "fail"));
  std::printf("winner sets vs oracle: %s\n",
              all_match ? "all match" : "MISMATCH");
  if (!smoke) {
    std::printf("gate (pipelined >= 4x serial at 8 in-flight): %s\n",
                gate_4x ? "pass" : "FAIL");
  }
  json.WriteIfRequested(args);
  return all_match ? 0 : 1;
}

}  // namespace
}  // namespace prkb::bench

int main(int argc, char** argv) { return prkb::bench::Main(argc, argv); }
