#ifndef PRKB_BENCH_BENCH_UTIL_H_
#define PRKB_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "edbms/cipherbase_qpf.h"
#include "prkb/selection.h"
#include "workload/query_gen.h"

namespace prkb::bench {

/// Command-line knobs shared by every experiment binary.
///
///   --scale=<f>    multiplies the paper's dataset sizes (each binary has a
///                  default small enough for a laptop-class single core;
///                  --scale matching the binary's `paper_scale` reruns the
///                  paper's exact sizes)
///   --seed=<n>     master seed
///   --queries=<n>  overrides the query count where applicable
///   --tmlat=<ns>   artificial per-call trusted-machine latency (default 0;
///                  a few microseconds emulates FPGA/coprocessor round trips
///                  and reproduces the paper's absolute-time regime)
///   --json=<path>  additionally writes the run's measurements as a
///                  machine-readable JSON file (see JsonBench) so checked-in
///                  baselines can track the perf trajectory across PRs
///   --trace=<path> enables the span tracer for the whole run and exports
///                  a Chrome trace_event JSON (open in chrome://tracing or
///                  https://ui.perfetto.dev) when the binary writes output
struct BenchArgs {
  double scale;
  uint64_t seed = 42;
  int queries = -1;  // -1 = binary default
  uint64_t tm_latency_ns = 0;
  std::string json_path;   // empty = no JSON output
  std::string trace_path;  // empty = tracer stays disabled

  /// Parses argv; `default_scale` is the binary's laptop default.
  static BenchArgs Parse(int argc, char** argv, double default_scale);
};

/// Collects measurement rows and writes them as one flat JSON document:
/// `{"bench": ..., "config": {...}, "rows": [{...}, ...], "metrics": {...}}`.
/// Values are numbers or strings only — enough for diffing checked-in
/// baselines. The "metrics" block is a flattened snapshot of the process
/// obs registry taken at write time (docs/BENCH_FORMAT.md).
class JsonBench {
 public:
  JsonBench(std::string bench_name, const BenchArgs& args);

  /// Adds a config-level key (emitted once, under "config").
  void Config(const std::string& key, double value);
  void Config(const std::string& key, const std::string& value);

  /// Starts a new measurement row; subsequent Field calls land in it.
  void BeginRow();
  void Field(const std::string& key, double value);
  void Field(const std::string& key, uint64_t value);
  void Field(const std::string& key, const std::string& value);

  /// Writes the document to `path`, snapshotting the obs registry into the
  /// "metrics" block. Returns false (with a message on stderr) if the file
  /// cannot be written.
  bool WriteTo(const std::string& path) const;
  /// Convenience: writes to args.json_path when --json= was given, and
  /// exports the Chrome trace to args.trace_path when --trace= was given.
  void WriteIfRequested(const BenchArgs& args) const;

 private:
  using Entry = std::pair<std::string, std::string>;  // key, rendered value
  std::string bench_name_;
  std::vector<Entry> config_;
  std::vector<std::vector<Entry>> rows_;
};

/// Prints the standard experiment banner so every binary's output starts
/// with what it reproduces and at which scale.
void PrintBanner(const std::string& experiment, const std::string& paper_ref,
                 const BenchArgs& args, const std::string& shape_note);

/// Rows after scaling (at least 1).
size_t ScaledRows(size_t paper_rows, double scale);

/// Issues random distinct comparison queries until the chain reaches
/// `target_partitions` (the paper's "static PRKB with k partitions" setup,
/// Sec. 8.2.4). Returns the number of queries used.
int WarmToPartitions(core::PrkbIndex* index, edbms::Edbms* db,
                     edbms::AttrId attr, workload::QueryGen* gen,
                     size_t target_partitions, int max_queries = 100000);

}  // namespace prkb::bench

#endif  // PRKB_BENCH_BENCH_UTIL_H_
