// Probe-scheduler benchmark: cold-chain selections (fingerprint-cache
// misses on a warmed POP chain) swept over scheduler fanout m ∈ {2,4,8,16}
// × simulated trusted-machine round-trip latency ∈ {0, 100µs, 1ms}. The
// m = 2 row runs the paper-literal sequential search (one blocking Eval per
// probe); the others run the m-ary batched scheduler with fusion and
// speculation on.
//
// The point the numbers make: QPF uses rise by the predicted ≤ (m−1)/lg m
// factor while round trips collapse from ~lg k to ~log_m k per filter, so
// once a round trip costs real time the scheduled selects win end-to-end —
// with byte-identical result sets.
//
//   bench_probe_rounds [--scale=0.2] [--seed=n] [--queries=n] [--tmlat=ns]
//                      [--json=path] [--smoke]
//
// Gates (full run only): at 1ms latency, m=8 must finish the measured
// workload in ≤ 1/3 of the m=2 wall-clock; the m=8 comparison-search probe
// inflation must match (m−1)/lg m within 15%; measured qfilter.rounds per
// comparison stay ≤ 2 + ceil(log8 k); every configuration must return the
// same result sets. Violations exit non-zero.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "workload/synthetic_table.h"

namespace prkb::bench {
namespace {

using edbms::CipherbaseEdbms;
using edbms::PlainPredicate;
using edbms::Trapdoor;
using edbms::TupleId;
using edbms::Value;

constexpr size_t kPaperRows = 100000;

/// One measured query of the mixed stream: alternating comparisons (the
/// m-ary filter in isolation) and BETWEENs (two fused end-searches).
struct QuerySpec {
  bool between;
  PlainPredicate pred;  // comparison, or lo/hi for BETWEEN
};

uint64_t HashResult(std::vector<TupleId> ids, uint64_t h) {
  std::sort(ids.begin(), ids.end());
  for (TupleId t : ids) {
    h ^= static_cast<uint64_t>(t) + 0x9E3779B97F4A7C15ULL + (h << 6) +
         (h >> 2);
  }
  return h;
}

struct CounterReading {
  uint64_t probes;
  uint64_t rounds;
  uint64_t invocations;
  uint64_t spec_waste;

  static CounterReading Now() {
    auto& reg = obs::MetricsRegistry::Global();
    return CounterReading{
        reg.GetCounter("qfilter.probes")->value(),
        reg.GetCounter("qfilter.rounds")->value(),
        reg.GetCounter("qfilter.invocations")->value(),
        reg.GetCounter("probe_sched.speculative_waste")->value(),
    };
  }
};

int Run(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      argv[i] = const_cast<char*>("--scale=0.02");
    }
  }
  BenchArgs args = BenchArgs::Parse(argc, argv, smoke ? 0.02 : 0.2);
  const size_t rows = ScaledRows(kPaperRows, args.scale);
  const size_t warm_k = smoke ? 32 : 512;
  const int queries = args.queries > 0 ? args.queries : (smoke ? 6 : 40);
  PrintBanner("bench_probe_rounds",
              "the round-trip-optimal probe scheduling claim (ISSUE 5)", args,
              "uses rise <= (m-1)/lg m; trips and wall-clock fall ~lg m");

  workload::SyntheticSpec spec;
  spec.rows = rows;
  spec.attrs = 1;
  spec.domain_lo = 0;
  spec.domain_hi = 999999;
  spec.seed = args.seed;
  const edbms::PlainTable plain = workload::MakeSyntheticTable(spec);

  // One predicate stream for every configuration.
  workload::QueryGen cmp_gen(spec.domain_lo, spec.domain_hi, args.seed + 2);
  Rng btw_rng(args.seed + 3);
  std::vector<QuerySpec> stream;
  for (int q = 0; q < queries; ++q) {
    QuerySpec qs;
    qs.between = (q % 2) == 1;
    if (qs.between) {
      qs.pred.attr = 0;
      qs.pred.lo = btw_rng.UniformInt64(0, 900000);
      qs.pred.hi = qs.pred.lo + btw_rng.UniformInt64(0, 80000);
    } else {
      qs.pred = cmp_gen.RandomComparison(0);
    }
    stream.push_back(qs);
  }

  std::vector<uint64_t> latencies;
  if (args.tm_latency_ns > 0) {
    latencies.push_back(args.tm_latency_ns);
  } else if (smoke) {
    latencies = {0};
  } else {
    latencies = {0, 100000, 1000000};
  }
  const std::vector<size_t> fanouts =
      smoke ? std::vector<size_t>{2, 8} : std::vector<size_t>{2, 4, 8, 16};

  JsonBench json("bench_probe_rounds", args);
  json.Config("rows", static_cast<double>(rows));
  json.Config("queries", static_cast<double>(queries));
  json.Config("warm_partitions", static_cast<double>(warm_k));
  json.Config("smoke", smoke ? "true" : "false");

  int failures = 0;
  std::printf("%10s %4s %10s %10s %12s %9s %9s %9s %9s\n", "tmlat_us", "m",
              "millis", "qpf_uses", "round_trips", "f.probes", "f.rounds",
              "infl", "speedup");
  for (uint64_t lat : latencies) {
    double base_millis = 0.0;
    double base_search_probes = 0.0;
    uint64_t base_hash = 0;
    for (size_t m : fanouts) {
      core::PrkbOptions opts;
      opts.seed = args.seed;
      opts.batch_size = 4096;
      if (m == 2) {
        // Paper-literal control: every probe its own blocking round trip.
        opts.probe_fanout = 2;
        opts.probe_fusion = false;
        opts.speculative_scan = false;
        opts.sequential_probes = true;
      } else {
        opts.probe_fanout = m;
      }

      auto db = CipherbaseEdbms::FromPlainTable(args.seed, plain);
      core::PrkbIndex index(&db, opts);
      index.EnableAttr(0);

      // Warm the chain to ~warm_k partitions at zero latency, then measure
      // a never-seen (fingerprint-cold) stream under the latency regime.
      workload::QueryGen warm_gen(spec.domain_lo, spec.domain_hi,
                                  args.seed + 1);
      WarmToPartitions(&index, &db, 0, &warm_gen, warm_k);
      db.trusted_machine().set_call_latency_ns(lat);
      db.ResetUses();

      uint64_t hash = 0;
      size_t hits = 0;
      // Comparison-only qfilter deltas, for the inflation and round bounds
      // (BETWEEN filter work would mix two fused searches into the ratio).
      uint64_t cmp_probes = 0, cmp_rounds = 0, cmp_invocations = 0;
      Stopwatch watch;
      for (const QuerySpec& qs : stream) {
        const Trapdoor td =
            qs.between
                ? db.MakeBetween(qs.pred.attr, qs.pred.lo, qs.pred.hi)
                : db.MakeComparison(qs.pred.attr, qs.pred.op, qs.pred.lo);
        const CounterReading before = CounterReading::Now();
        const auto out = index.Select(td);
        if (!qs.between) {
          const CounterReading after = CounterReading::Now();
          cmp_probes += after.probes - before.probes;
          cmp_rounds += after.rounds - before.rounds;
          cmp_invocations += after.invocations - before.invocations;
        }
        hits += out.size();
        hash = HashResult(out, hash);
      }
      const double millis = watch.ElapsedMillis();
      const uint64_t uses = db.uses();
      const uint64_t trips = db.round_trips();
      const size_t k_final = index.pop(0).k();

      // Search probes exclude the two per-call end probes on both sides so
      // the ratio isolates the narrowing loop the (m−1)/lg m bound covers.
      const double search_probes =
          static_cast<double>(cmp_probes) - 2.0 * cmp_invocations;
      if (m == 2) {
        base_millis = millis;
        base_search_probes = search_probes;
        base_hash = hash;
      }
      const double speedup = millis > 0.0 ? base_millis / millis : 0.0;
      const double inflation =
          base_search_probes > 0.0 ? search_probes / base_search_probes : 0.0;
      std::printf("%10.1f %4zu %10.2f %10llu %12llu %9llu %9llu %8.2fx %8.2fx\n",
                  lat / 1000.0, m, millis,
                  static_cast<unsigned long long>(uses),
                  static_cast<unsigned long long>(trips),
                  static_cast<unsigned long long>(cmp_probes),
                  static_cast<unsigned long long>(cmp_rounds), inflation,
                  speedup);

      if (hash != base_hash) {
        std::printf("!! result sets diverged from the m=2 baseline (m=%zu)\n",
                    m);
        ++failures;
      }
      if (!smoke && m == 8) {
        const double log_m_k =
            std::ceil(std::log2(static_cast<double>(k_final)) / 3.0);
        const double rounds_per_call =
            cmp_invocations > 0
                ? static_cast<double>(cmp_rounds) / cmp_invocations
                : 0.0;
        if (rounds_per_call > 2.0 + log_m_k) {
          std::printf("!! rounds/call %.2f exceeds 2 + ceil(log8 %zu) = %.0f\n",
                      rounds_per_call, k_final, 2.0 + log_m_k);
          ++failures;
        }
        const double predicted = 7.0 / std::log2(8.0);  // (m-1)/lg m
        if (inflation > 0.0 &&
            (inflation < predicted * 0.85 || inflation > predicted * 1.15)) {
          std::printf("!! probe inflation %.2fx outside 15%% of %.2fx\n",
                      inflation, predicted);
          ++failures;
        }
        if (lat >= 1000000 && speedup < 3.0) {
          std::printf("!! speedup %.2fx below the 3x gate at 1ms\n", speedup);
          ++failures;
        }
      }

      json.BeginRow();
      json.Field("tmlat_ns", lat);
      json.Field("fanout", static_cast<uint64_t>(m));
      json.Field("sequential", static_cast<uint64_t>(m == 2 ? 1 : 0));
      json.Field("millis", millis);
      json.Field("qpf_uses", uses);
      json.Field("round_trips", trips);
      json.Field("qfilter_probes_cmp", cmp_probes);
      json.Field("qfilter_rounds_cmp", cmp_rounds);
      json.Field("qfilter_invocations_cmp", cmp_invocations);
      json.Field("probe_inflation_vs_m2", inflation);
      json.Field("speedup_vs_m2", speedup);
      json.Field("hits", static_cast<uint64_t>(hits));
      json.Field("k_final", static_cast<uint64_t>(k_final));
      json.Field("result_hash", std::to_string(hash));
    }
    std::printf("\n");
  }
  json.WriteIfRequested(args);
  if (failures > 0) {
    std::printf("%d gate violation(s)\n", failures);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace prkb::bench

int main(int argc, char** argv) { return prkb::bench::Run(argc, argv); }
