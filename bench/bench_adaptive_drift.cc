// Adaptive routing under mid-run drift: one deployment, one planner, no
// restarts — the workload's selectivity and the TM's transport latency both
// shift underneath it, and the online calibrator (src/exec/calibrate.h) must
// re-fit the cost constants until the arbitration lands back on the right
// route.
//
// Four phases over the same PrkbIndex + SrciRoute pair, attribute c0. Every
// query is a one-sided comparison `c0 <= X`: comparisons always split the
// mixed boundary partition, so the chain keeps developing and the PRKB
// estimate tracks its actuals (a pure-BETWEEN workload would freeze the
// chain — an interior (F,T,F) band never satisfies updatePRKB's split rule).
//   P1 wide      sel ~55%, loopback TM  -> prkb   (SRC-i confirms ~half the
//                                                  table one decrypt each)
//   P2 narrow    sel ~0.2%, loopback TM -> srci   (PRKB still scans windows)
//   P3 remote    sel ~0.2%, TM lat L    -> prkb   (SRC-i pays a scalar round
//                                                  trip per candidate; PRKB
//                                                  batches and opens fanout)
//   P4 recovery  sel ~0.2%, loopback TM -> srci   (the latency fit must decay
//                                                  back down without restart)
//
// Every query is also answered by a plaintext oracle; the chosen route's
// winner set must be byte-identical throughout (winner_mismatches == 0).
// Per phase the bench gates `converged_at` — the first query index from
// which the planner's route stays on the expected winner — against a bound,
// and the final query of each phase must be on the expected route. Any
// violation exits 1, so the committed BENCH_adaptive_drift.json certifies
// convergence within the bounds.
//
// Extra flags beyond the common set (bench_util.h):
//   --smoke   shorter phases, milder shift (CI schema check)
//   --tmlat=N override the P3 transport shift, ns

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "query/alt_routes.h"
#include "query/planner.h"
#include "workload/query_gen.h"
#include "workload/synthetic_table.h"

namespace prkb::bench {
namespace {

using edbms::TupleId;
using edbms::Value;

struct Phase {
  const char* name;
  bool narrow;           // narrow band near domain_lo vs wide mid-domain cut
  uint64_t tm_latency_ns;
  const char* expect;    // route that must win once the fits catch up
  int bound;             // converged_at must be <= this (1-based)
};

int Main(int argc, char** argv) {
  bool smoke = false;
  bool tmlat_given = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strncmp(argv[i], "--tmlat=", 8) == 0) tmlat_given = true;
  }
  BenchArgs args = BenchArgs::Parse(argc, argv, /*default_scale=*/0.0008);
  if (!tmlat_given) args.tm_latency_ns = smoke ? 100'000 : 300'000;

  const size_t rows = ScaledRows(10'000'000, args.scale);
  const int phase_len = args.queries > 0 ? args.queries : (smoke ? 12 : 16);

  PrintBanner("Adaptive routing under mid-run drift",
              "selectivity + TM latency shift; no restart", args,
              "one planner and one calibrator live through all four phases; "
              "SRC-i is pre-built while the TM is on loopback");

  workload::SyntheticSpec spec;
  spec.rows = rows;
  spec.attrs = 1;
  spec.seed = args.seed;
  const auto plain = workload::MakeSyntheticTable(spec);
  const std::vector<Value>& col = plain.column(0);
  const double span = static_cast<double>(spec.domain_hi - spec.domain_lo);

  auto db = edbms::CipherbaseEdbms::FromPlainTable(args.seed, plain);
  core::PrkbIndex index(
      &db, core::PrkbOptions{.seed = args.seed, .batch_size = 64});
  index.EnableAttr(0);
  query::Catalog catalog;
  catalog.RegisterTable("t", {"c0"});
  query::Planner planner(&catalog, &db, &index);
  query::SrciRoute srci(&db, 0, spec.domain_lo, spec.domain_hi);
  // Build the SRC-i index up front: a lazy build during a remote phase would
  // pay one scalar TM entry per row at the shifted latency.
  if (Status s = srci.EnsureBuilt(); !s.ok()) {
    std::fprintf(stderr, "FATAL: srci build: %s\n", s.ToString().c_str());
    return 1;
  }
  planner.RegisterAltRoute(&srci);

  // Develop the chain before arbitration starts: with k partitions the PRKB
  // comparison estimate scales as n/k, so an undeveloped chain would price
  // PRKB as a near-full scan in every phase and the wide/remote phases could
  // never flip to it.
  workload::QueryGen warm_gen(spec.domain_lo, spec.domain_hi, args.seed + 5);
  const int warm_queries = WarmToPartitions(&index, &db, 0, &warm_gen, 32, 200);

  // P4's bound is the interesting one: the latency fit decays by kFitAlpha
  // per query, so recovery needs ~log(L_shift / L_flip) / log(1/(1-alpha))
  // queries. The other phases flip within a couple of queries.
  const std::vector<Phase> phases =
      smoke ? std::vector<Phase>{{"wide", false, 0, "prkb", 3},
                                 {"narrow", true, 0, "srci", 3},
                                 {"remote", true, args.tm_latency_ns, "prkb",
                                  4},
                                 {"recovery", true, 0, "srci", 11}}
            : std::vector<Phase>{{"wide", false, 0, "prkb", 3},
                                 {"narrow", true, 0, "srci", 3},
                                 {"remote", true, args.tm_latency_ns, "prkb",
                                  4},
                                 {"recovery", true, 0, "srci", 15}};

  JsonBench json("bench_adaptive_drift", args);
  json.Config("rows", static_cast<double>(rows));
  json.Config("phase_len", static_cast<double>(phase_len));
  json.Config("warm_queries", static_cast<double>(warm_queries));
  json.Config("smoke", smoke ? "true" : "false");

  TablePrinter tp("drift phases, " + std::to_string(rows) + " rows, " +
                  std::to_string(phase_len) + " queries/phase");
  tp.SetHeader({"phase", "tmlat us", "sel %", "converged@", "bound", "route",
                "mismatch", "millis"});

  Rng rng(args.seed + 7);
  int failures = 0;
  for (const Phase& ph : phases) {
    db.trusted_machine().set_call_latency_ns(ph.tm_latency_ns);
    int last_off_route = 0;
    int winner_mismatches = 0;
    double sel_sum = 0.0;
    std::string final_route;
    Stopwatch watch;
    for (int q = 1; q <= phase_len; ++q) {
      const double u = rng.UniformDouble();
      // Wide cuts land mid-domain (sel ~50-60%); narrow ones hug domain_lo
      // (sel ~0.1-0.2%) so SRC-i's candidate block stays small.
      const double frac =
          ph.narrow ? 0.002 * (0.5 + u) : 0.50 + 0.10 * u;
      const Value x =
          spec.domain_lo + static_cast<Value>(frac * span);
      char sql[96];
      std::snprintf(sql, sizeof(sql), "SELECT * FROM t WHERE c0 <= %lld",
                    static_cast<long long>(x));
      auto r = planner.ExecuteSql(sql);
      if (!r.ok()) {
        std::fprintf(stderr, "FATAL: planner: %s\n",
                     r.status().ToString().c_str());
        return 1;
      }
      std::vector<TupleId> got = std::move(r->rows);
      std::sort(got.begin(), got.end());
      std::vector<TupleId> want;
      for (TupleId tid = 0; tid < col.size(); ++tid) {
        if (col[tid] <= x) want.push_back(tid);
      }
      if (got != want) ++winner_mismatches;
      sel_sum += static_cast<double>(want.size()) /
                 static_cast<double>(col.size());
      final_route = r->physical.route;
      if (final_route != ph.expect) last_off_route = q;
    }
    const double millis = watch.ElapsedMillis();
    const int converged_at = last_off_route + 1;
    const double sel_pct = 100.0 * sel_sum / phase_len;

    tp.AddRow({ph.name, TablePrinter::Fmt(ph.tm_latency_ns / 1e3, 0),
               TablePrinter::Fmt(sel_pct, 2), std::to_string(converged_at),
               std::to_string(ph.bound), final_route,
               std::to_string(winner_mismatches),
               TablePrinter::Fmt(millis, 1)});
    json.BeginRow();
    json.Field("phase", std::string(ph.name));
    json.Field("tmlat_ns", static_cast<uint64_t>(ph.tm_latency_ns));
    json.Field("target_pct", sel_pct);
    json.Field("queries", static_cast<uint64_t>(phase_len));
    json.Field("converged_at", static_cast<uint64_t>(converged_at));
    json.Field("converge_bound", static_cast<uint64_t>(ph.bound));
    json.Field("route", final_route);
    json.Field("winner_mismatches",
               static_cast<uint64_t>(winner_mismatches));

    if (winner_mismatches != 0) {
      std::fprintf(stderr, "FATAL: phase %s: %d winner-set mismatch(es)\n",
                   ph.name, winner_mismatches);
      ++failures;
    }
    if (final_route != ph.expect) {
      std::fprintf(stderr, "FATAL: phase %s ended on route %s, expected %s\n",
                   ph.name, final_route.c_str(), ph.expect);
      ++failures;
    } else if (converged_at > ph.bound) {
      std::fprintf(stderr,
                   "FATAL: phase %s converged at query %d, bound %d\n",
                   ph.name, converged_at, ph.bound);
      ++failures;
    }
  }

  tp.Print();
  json.WriteIfRequested(args);
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace prkb::bench

int main(int argc, char** argv) { return prkb::bench::Main(argc, argv); }
