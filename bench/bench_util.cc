#include "bench/bench_util.h"

#include <cstdlib>
#include <cstring>

namespace prkb::bench {

BenchArgs BenchArgs::Parse(int argc, char** argv, double default_scale) {
  BenchArgs args;
  args.scale = default_scale;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--scale=", 8) == 0) {
      args.scale = std::atof(a + 8);
    } else if (std::strncmp(a, "--seed=", 7) == 0) {
      args.seed = std::strtoull(a + 7, nullptr, 10);
    } else if (std::strncmp(a, "--queries=", 10) == 0) {
      args.queries = std::atoi(a + 10);
    } else if (std::strncmp(a, "--tmlat=", 8) == 0) {
      args.tm_latency_ns = std::strtoull(a + 8, nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", a);
    }
  }
  return args;
}

void PrintBanner(const std::string& experiment, const std::string& paper_ref,
                 const BenchArgs& args, const std::string& shape_note) {
  std::printf("#\n# %s  (reproduces %s)\n", experiment.c_str(),
              paper_ref.c_str());
  std::printf("# scale=%.4g seed=%llu  (--scale=1.0 reruns paper-size inputs)\n",
              args.scale, static_cast<unsigned long long>(args.seed));
  if (!shape_note.empty()) std::printf("# expected shape: %s\n", shape_note.c_str());
  std::printf("#\n");
  std::fflush(stdout);
}

size_t ScaledRows(size_t paper_rows, double scale) {
  const double rows = static_cast<double>(paper_rows) * scale;
  return rows < 1.0 ? 1 : static_cast<size_t>(rows);
}

int WarmToPartitions(core::PrkbIndex* index, edbms::Edbms* db,
                     edbms::AttrId attr, workload::QueryGen* gen,
                     size_t target_partitions, int max_queries) {
  int used = 0;
  while (index->pop(attr).k() < target_partitions && used < max_queries) {
    const auto p = gen->RandomComparison(attr);
    index->Select(db->MakeComparison(p.attr, p.op, p.lo));
    ++used;
  }
  return used;
}

}  // namespace prkb::bench
