#include "bench/bench_util.h"

#include <cstdlib>
#include <cstring>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace prkb::bench {

BenchArgs BenchArgs::Parse(int argc, char** argv, double default_scale) {
  BenchArgs args;
  args.scale = default_scale;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--scale=", 8) == 0) {
      args.scale = std::atof(a + 8);
    } else if (std::strncmp(a, "--seed=", 7) == 0) {
      args.seed = std::strtoull(a + 7, nullptr, 10);
    } else if (std::strncmp(a, "--queries=", 10) == 0) {
      args.queries = std::atoi(a + 10);
    } else if (std::strncmp(a, "--tmlat=", 8) == 0) {
      args.tm_latency_ns = std::strtoull(a + 8, nullptr, 10);
    } else if (std::strncmp(a, "--json=", 7) == 0) {
      args.json_path = a + 7;
    } else if (std::strncmp(a, "--trace=", 8) == 0) {
      args.trace_path = a + 8;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", a);
    }
  }
  if (!args.trace_path.empty()) obs::ObsTracer::Global().Enable();
  return args;
}

void PrintBanner(const std::string& experiment, const std::string& paper_ref,
                 const BenchArgs& args, const std::string& shape_note) {
  std::printf("#\n# %s  (reproduces %s)\n", experiment.c_str(),
              paper_ref.c_str());
  std::printf("# scale=%.4g seed=%llu  (--scale=1.0 reruns paper-size inputs)\n",
              args.scale, static_cast<unsigned long long>(args.seed));
  if (!shape_note.empty()) std::printf("# expected shape: %s\n", shape_note.c_str());
  std::printf("#\n");
  std::fflush(stdout);
}

size_t ScaledRows(size_t paper_rows, double scale) {
  const double rows = static_cast<double>(paper_rows) * scale;
  return rows < 1.0 ? 1 : static_cast<size_t>(rows);
}

namespace {

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

std::string RenderNumber(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void WriteEntries(std::FILE* f,
                  const std::vector<std::pair<std::string, std::string>>& es,
                  const char* indent) {
  for (size_t i = 0; i < es.size(); ++i) {
    std::fprintf(f, "%s\"%s\": %s%s\n", indent, JsonEscape(es[i].first).c_str(),
                 es[i].second.c_str(), i + 1 < es.size() ? "," : "");
  }
}

std::string RenderU64(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

std::string RenderI64(int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  return buf;
}

/// Flattens the registry snapshot to one-level key/value pairs so consumers
/// (tools/obs_report, diff scripts) need no nested-JSON handling. Counters
/// emit their name; gauges add `.max`; histograms expand to
/// `.count/.sum/.mean/.max/.p50/.p90/.p99` (docs/BENCH_FORMAT.md).
std::vector<std::pair<std::string, std::string>> FlattenMetrics(
    const obs::MetricsSnapshot& snap) {
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& [name, value] : snap.counters) {
    out.emplace_back(name, RenderU64(value));
  }
  for (const auto& g : snap.gauges) {
    out.emplace_back(g.name, RenderI64(g.value));
    out.emplace_back(g.name + ".max", RenderI64(g.max));
  }
  for (const auto& h : snap.histograms) {
    out.emplace_back(h.name + ".count", RenderU64(h.count));
    out.emplace_back(h.name + ".sum", RenderU64(h.sum));
    out.emplace_back(h.name + ".mean", RenderNumber(h.Mean()));
    out.emplace_back(h.name + ".max", RenderU64(h.max));
    out.emplace_back(h.name + ".p50", RenderU64(h.ApproxPercentile(0.50)));
    out.emplace_back(h.name + ".p90", RenderU64(h.ApproxPercentile(0.90)));
    out.emplace_back(h.name + ".p99", RenderU64(h.ApproxPercentile(0.99)));
  }
  return out;
}

}  // namespace

JsonBench::JsonBench(std::string bench_name, const BenchArgs& args)
    : bench_name_(std::move(bench_name)) {
  Config("scale", args.scale);
  Config("seed", static_cast<double>(args.seed));
  Config("tmlat_ns", static_cast<double>(args.tm_latency_ns));
}

void JsonBench::Config(const std::string& key, double value) {
  config_.emplace_back(key, RenderNumber(value));
}
void JsonBench::Config(const std::string& key, const std::string& value) {
  config_.emplace_back(key, "\"" + JsonEscape(value) + "\"");
}
void JsonBench::BeginRow() { rows_.emplace_back(); }
void JsonBench::Field(const std::string& key, double value) {
  rows_.back().emplace_back(key, RenderNumber(value));
}
void JsonBench::Field(const std::string& key, uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(value));
  rows_.back().emplace_back(key, buf);
}
void JsonBench::Field(const std::string& key, const std::string& value) {
  rows_.back().emplace_back(key, "\"" + JsonEscape(value) + "\"");
}

bool JsonBench::WriteTo(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write JSON output to %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"config\": {\n",
               JsonEscape(bench_name_).c_str());
  WriteEntries(f, config_, "    ");
  std::fprintf(f, "  },\n  \"rows\": [\n");
  for (size_t r = 0; r < rows_.size(); ++r) {
    std::fprintf(f, "    {\n");
    WriteEntries(f, rows_[r], "      ");
    std::fprintf(f, "    }%s\n", r + 1 < rows_.size() ? "," : "");
  }
  const auto metrics =
      FlattenMetrics(obs::MetricsRegistry::Global().Snapshot());
  std::fprintf(f, "  ],\n  \"metrics\": {\n");
  WriteEntries(f, metrics, "    ");
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  return true;
}

void JsonBench::WriteIfRequested(const BenchArgs& args) const {
  if (!args.json_path.empty()) WriteTo(args.json_path);
  if (!args.trace_path.empty()) {
    obs::ObsTracer::Global().ExportChromeTrace(args.trace_path);
  }
}

int WarmToPartitions(core::PrkbIndex* index, edbms::Edbms* db,
                     edbms::AttrId attr, workload::QueryGen* gen,
                     size_t target_partitions, int max_queries) {
  int used = 0;
  while (index->pop(attr).k() < target_partitions && used < max_queries) {
    const auto p = gen->RandomComparison(attr);
    index->Select(db->MakeComparison(p.attr, p.op, p.lo));
    ++used;
  }
  return used;
}

}  // namespace prkb::bench
