// Reproduces Table 3: storage size of the index, varying dataset size, for
// PRKB frozen after 250 and after 600 distinct queries vs Logarithmic-SRC-i
// (Sec. 8.2.3).

#include <vector>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "srci/srci.h"
#include "workload/query_gen.h"
#include "workload/synthetic_table.h"

namespace prkb::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv, /*default_scale=*/0.02);
  PrintBanner("Table 3: index storage vs dataset size",
              "EDBT'18 Table 3", args,
              "PRKB ~4 bytes/tuple, nearly identical for 250 vs 600 retained "
              "queries; Logarithmic-SRC-i is ~2 orders of magnitude larger");

  const std::vector<size_t> paper_sizes = {10'000'000, 12'000'000, 14'000'000,
                                           16'000'000, 18'000'000,
                                           20'000'000};

  JsonBench json("bench_table3_storage", args);
  TablePrinter tp("index storage (MB)");
  tp.SetHeader({"paper rows", "actual rows", "PRKB-250", "PRKB-600",
                "memb raw", "memb compressed", "Log-SRC-i"});
  for (size_t paper_rows : paper_sizes) {
    const size_t rows = ScaledRows(paper_rows, args.scale);
    workload::SyntheticSpec spec;
    spec.rows = rows;
    spec.seed = args.seed + paper_rows;
    const auto plain = workload::MakeSyntheticTable(spec);
    auto db = edbms::CipherbaseEdbms::FromPlainTable(args.seed, plain);

    core::PrkbIndex index(&db, core::PrkbOptions{.seed = args.seed});
    index.EnableAttr(0);
    workload::QueryGen gen(spec.domain_lo, spec.domain_hi, args.seed + 5);
    double prkb250 = 0;
    for (int q = 1; q <= 600; ++q) {
      const auto p = gen.RandomComparison(0);
      index.Select(db.MakeComparison(p.attr, p.op, p.lo));
      if (q == 250) prkb250 = static_cast<double>(index.SizeBytes()) / 1e6;
    }
    const double prkb600 = static_cast<double>(index.SizeBytes()) / 1e6;
    // Membership footprint side by side: what the partitions' tuple-id sets
    // would cost as raw vector<TupleId> vs the compressed MemberSets actually
    // held (bench_memory_10m isolates this across data shapes).
    const double memb_raw_mb =
        static_cast<double>(index.pop(0).RawMembershipBytes()) / 1e6;
    const double memb_mb =
        static_cast<double>(index.pop(0).MembershipBytes()) / 1e6;

    srci::LogSrcI srci_index(&db, 0, spec.domain_lo, spec.domain_hi);
    if (auto s = srci_index.Build(); !s.ok()) {
      std::fprintf(stderr, "SRC-i build failed: %s\n", s.ToString().c_str());
      return 1;
    }
    const double srci_mb = static_cast<double>(srci_index.SizeBytes()) / 1e6;

    tp.AddRow({std::to_string(paper_rows / 1'000'000) + "M",
               std::to_string(rows), TablePrinter::Fmt(prkb250, 2),
               TablePrinter::Fmt(prkb600, 2), TablePrinter::Fmt(memb_raw_mb, 2),
               TablePrinter::Fmt(memb_mb, 3), TablePrinter::Fmt(srci_mb, 1)});
    json.BeginRow();
    json.Field("paper_rows", static_cast<uint64_t>(paper_rows));
    json.Field("rows", static_cast<uint64_t>(rows));
    json.Field("prkb250_mb", prkb250);
    json.Field("prkb600_mb", prkb600);
    json.Field("membership_raw_mb", memb_raw_mb);
    json.Field("membership_compressed_mb", memb_mb);
    json.Field("srci_mb", srci_mb);
  }
  tp.Print();
  json.WriteIfRequested(args);
  std::printf(
      "\nPaper reference (10M..20M rows): PRKB-250 38.2..76.3 MB, PRKB-600 "
      "38.2..76.4 MB, Log-SRC-i 3589..6758 MB\n");
  return 0;
}

}  // namespace
}  // namespace prkb::bench

int main(int argc, char** argv) { return prkb::bench::Main(argc, argv); }
