// Reproduces Table 4: insertion throughput (tuples/second) over 5 batches of
// new tuples appended to an existing table, PRKB vs Logarithmic-SRC-i
// (Sec. 8.2.7).

#include <cstring>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "srci/srci.h"
#include "workload/query_gen.h"
#include "workload/synthetic_table.h"

namespace prkb::bench {
namespace {

int Main(int argc, char** argv) {
  // --smoke: CI-sized run (tiny table, same shape) so the schema gate can
  // execute this bench on every push without paying the full workload.
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const BenchArgs args = BenchArgs::Parse(argc, argv, /*default_scale=*/0.02);
  const size_t base_rows = smoke ? 2'000 : ScaledRows(10'000'000, args.scale);
  const size_t batch_rows = smoke ? 400 : ScaledRows(2'000'000, args.scale);
  const size_t warm_partitions = smoke ? 40 : 250;
  PrintBanner("Table 4: insert throughput over 5 batches",
              "EDBT'18 Table 4", args,
              "PRKB sustains ~10x the SRC-i throughput and stays flat across "
              "batches (O(lg k) per insert, independent of table size)");

  workload::SyntheticSpec spec;
  spec.rows = base_rows;
  spec.seed = args.seed;
  const auto plain = workload::MakeSyntheticTable(spec);

  // Two identical deployments so each method pays only its own maintenance.
  auto db_prkb = edbms::CipherbaseEdbms::FromPlainTable(args.seed, plain);
  auto db_srci = edbms::CipherbaseEdbms::FromPlainTable(args.seed, plain);

  core::PrkbIndex index(&db_prkb, core::PrkbOptions{.seed = args.seed});
  index.EnableAttr(0);
  workload::QueryGen warm_gen(spec.domain_lo, spec.domain_hi, args.seed + 3);
  WarmToPartitions(&index, &db_prkb, 0, &warm_gen, warm_partitions);

  // Warm-up at zero latency; the timed batches pay the simulated TM
  // round-trip on every QPF call, which is what separates the two methods.
  db_prkb.trusted_machine().set_call_latency_ns(args.tm_latency_ns);
  db_srci.trusted_machine().set_call_latency_ns(args.tm_latency_ns);

  srci::LogSrcI srci_index(&db_srci, 0, spec.domain_lo, spec.domain_hi);
  if (auto s = srci_index.Build(/*capacity_factor=*/4.0); !s.ok()) return 1;

  JsonBench json("bench_table4_update", args);
  json.Config("smoke", smoke ? "true" : "false");
  json.Config("base_rows", static_cast<double>(base_rows));
  json.Config("batch_rows", static_cast<double>(batch_rows));

  TablePrinter tp("insert throughput (tuples/second), batches of " +
                  std::to_string(batch_rows));
  tp.SetHeader({"batch", "PRKB", "Log-SRC-i"});

  Rng vrng(args.seed + 11);
  for (int batch = 1; batch <= 5; ++batch) {
    Stopwatch prkb_watch;
    for (size_t i = 0; i < batch_rows; ++i) {
      index.Insert({vrng.UniformInt64(spec.domain_lo, spec.domain_hi)});
    }
    const double prkb_tps =
        static_cast<double>(batch_rows) / prkb_watch.ElapsedSeconds();

    Stopwatch srci_watch;
    for (size_t i = 0; i < batch_rows; ++i) {
      const auto tid = db_srci.Insert(
          {vrng.UniformInt64(spec.domain_lo, spec.domain_hi)});
      if (auto s = srci_index.InsertTuple(tid); !s.ok()) {
        std::fprintf(stderr, "SRC-i insert failed: %s\n",
                     s.ToString().c_str());
        return 1;
      }
    }
    const double srci_tps =
        static_cast<double>(batch_rows) / srci_watch.ElapsedSeconds();

    tp.AddRow({std::to_string(batch), TablePrinter::Fmt(prkb_tps, 0),
               TablePrinter::Fmt(srci_tps, 0)});
    json.BeginRow();
    json.Field("batch", static_cast<uint64_t>(batch));
    json.Field("prkb_tuples_per_s", prkb_tps);
    json.Field("srci_tuples_per_s", srci_tps);
  }
  tp.Print();
  json.WriteIfRequested(args);
  std::printf(
      "\nPaper reference (10M base, 2M batches): PRKB ~32,100-32,356 t/s "
      "flat; Log-SRC-i ~2,935-2,967 t/s\n");
  return 0;
}

}  // namespace
}  // namespace prkb::bench

int main(int argc, char** argv) { return prkb::bench::Main(argc, argv); }
