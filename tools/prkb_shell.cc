// prkb_shell — interactive console over an encrypted demo table.
//
//   $ ./tools/prkb_shell [--rows=N] [--attrs=K] [--seed=S] [--shards=N]
//                        [--remote] [--bus] [--wal-dir=<dir>]
//
// Accepts the mini-SQL subset on stdin plus dot-commands:
//   SELECT * FROM t WHERE c0 < 100 AND c1 BETWEEN 5 AND 9
//   EXPLAIN SELECT ...  cost-based physical plan with estimates, no execution
//   .explain          last executed statement's plan with actual QPF costs
//   .stats            chain shape per attribute
//   .cache            repeat-predicate fast-path state (entries, hits/misses);
//                     with --remote, also the net.* transport counters
//                     fetched from the serving process over the wire
//   .cost             calibrated cost-model state: fitted eval/latency
//                     constants and per-route win/loss/error telemetry
//                     (per shard with --shards=N)
//   .shards           per-shard chain/op tallies plus lock/queue telemetry
//                     (requires --shards=N)
//   .wal              durability status: log/snapshot sizes, appended and
//                     replayed record counts, fsyncs, compactions
//                     (requires --wal-dir)
//   .bus              round-bus state: live coalescing factor, linger
//                     window, rounds/requests carried, backend entries,
//                     merged rounds, cross-request trapdoor dedups and
//                     overflow splits (requires --bus); with --remote, also
//                     the serving process's net.*/qpf.* counters over the
//                     wire, like .cache
//
// Note: retyping a SELECT re-issues its trapdoor through the data owner,
// which seals with a fresh nonce — different bytes, so the fast path misses
// by design (DESIGN.md §9). Hits require re-sending the *same* trapdoor,
// the prepared-statement model the fast-path tests and bench exercise.
//   .insert v0 v1 ..  insert a row (one value per attribute)
//   .delete <tid>     tombstone a tuple
//   .save <path>      snapshot the PRKB
//   .load <path>      restore a snapshot
//   .help / .quit
//
// Deployment flags:
//   --shards=N   serve the index as N attribute-hash shards
//                (ShardedPrkbIndex). EXPLAIN / .explain / .save / .load are
//                unavailable in sharded mode; SELECTs are routed directly.
//   --remote     host the QPF behind a loopback QpfServer and evaluate every
//                Θ over a real socket (RemoteEdbms), as a served deployment
//                would. Composes with --shards.
//   --bus        ride every Θ round over a round bus (CoalescedEdbms,
//                DESIGN.md §15), merging concurrent selections' probe
//                rounds into shared backend entries. Composes with --remote
//                (the merge point sits in front of the socket) and
//                --shards.
//   --wal-dir=D  make the index durable under D (docs/PERSISTENCE.md):
//                state recovered on start — chains enabled in a previous
//                WAL-backed session come back warm, repeats stay zero-QPF —
//                and every chain mutation is logged from then on. Composes
//                with --shards (one WAL per shard under D/shard-N).
//
// Useful both as a demo and for poking at the index by hand.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "edbms/cipherbase_qpf.h"
#include "net/coalesce.h"
#include "net/qpf_client.h"
#include "net/qpf_server.h"
#include "prkb/concurrent.h"
#include "prkb/prkb_io.h"
#include "prkb/selection.h"
#include "prkb/shard.h"
#include "prkb/wal.h"
#include "query/alt_routes.h"
#include "query/parser.h"
#include "query/planner.h"
#include "workload/synthetic_table.h"

namespace {

using namespace prkb;

struct ShellOptions {
  size_t rows = 20000;
  size_t attrs = 2;
  uint64_t seed = 42;
  size_t shards = 0;  // 0 = unsharded planner mode
  bool remote = false;
  bool bus = false;
  std::string wal_dir;  // empty = not durable
};

ShellOptions ParseOptions(int argc, char** argv) {
  ShellOptions opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--rows=", 7) == 0) {
      opt.rows = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strncmp(argv[i], "--attrs=", 8) == 0) {
      opt.attrs = std::strtoull(argv[i] + 8, nullptr, 10);
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      opt.seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      opt.shards = std::strtoull(argv[i] + 9, nullptr, 10);
    } else if (std::strcmp(argv[i], "--remote") == 0) {
      opt.remote = true;
    } else if (std::strcmp(argv[i], "--bus") == 0) {
      opt.bus = true;
    } else if (std::strncmp(argv[i], "--wal-dir=", 10) == 0) {
      opt.wal_dir = argv[i] + 10;
    }
  }
  return opt;
}

void PrintHelp(const ShellOptions& opt) {
  std::printf(
      "commands:\n"
      "  SELECT * FROM t WHERE c0 < 100 AND c1 BETWEEN 5 AND 9\n"
      "  EXPLAIN SELECT ...   (plan + cost estimates, no execution)\n"
      "  .explain | .stats | .cache | .cost | .insert v0 v1 .. |"
      " .delete <tid> | .save <p> | .load <p>\n"
      "  .shards | .wal | .bus | .help | .quit\n");
  if (opt.shards > 0) {
    std::printf("(sharded mode: EXPLAIN/.explain/.save/.load unavailable)\n");
  }
  if (opt.remote) {
    std::printf("(remote mode: QPF evaluations cross a loopback socket)\n");
  }
  if (opt.bus) {
    std::printf("(bus mode: probe rounds merge on a shared round bus)\n");
  }
  if (!opt.wal_dir.empty()) {
    std::printf("(durable: chain mutations logged under %s)\n",
                opt.wal_dir.c_str());
  }
}

uint64_t CounterValue(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name)->value();
}

/// net.* / qpf.* rows of the serving process, over the stats RPC — the same
/// answer a shell attached to a genuinely remote server would get.
void PrintRemoteCounters(net::QpfClient* client) {
  auto stats = client->FetchStats();
  if (!stats.ok()) {
    std::printf("stats fetch failed: %s\n",
                stats.status().ToString().c_str());
    return;
  }
  std::printf("serving process counters (over the wire):\n");
  for (const auto& [name, value] : stats.value()) {
    if (name.rfind("net.", 0) == 0 || name.rfind("qpf.", 0) == 0) {
      std::printf("  %-24s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    }
  }
  std::printf("  %-24s %lld\n", "net.inflight",
              static_cast<long long>(
                  obs::MetricsRegistry::Global().GetGauge("net.inflight")
                      ->value()));
}

void PrintShardReport(const core::ShardedPrkbIndex& sharded,
                      const net::QpfServer* server) {
  for (const auto& r : sharded.Describe()) {
    std::printf("shard %zu: %zu chain(s), %zu tuple-slot(s), %zu bytes, "
                "%llu select(s), %llu placement(s)\n",
                r.shard, r.chains, r.tuples, r.bytes,
                static_cast<unsigned long long>(r.selects),
                static_cast<unsigned long long>(r.placements));
    for (const edbms::AttrId attr : r.attrs) {
      const auto cs = sharded.StatsFor(attr);
      std::printf("  attr %u: k=%zu cuts=%zu tuples=%zu\n", attr, cs.k,
                  cs.cuts, cs.tuples);
    }
  }
  std::printf("locks: %llu shared, %llu exclusive, %llu select retr(ies)\n",
              static_cast<unsigned long long>(
                  CounterValue("prkb.lock.shared_acquisitions")),
              static_cast<unsigned long long>(
                  CounterValue("prkb.lock.exclusive_acquisitions")),
              static_cast<unsigned long long>(
                  CounterValue("prkb.lock.select_retries")));
  std::printf(
      "routing: %llu routed, %llu md co-located, %llu md composed\n",
      static_cast<unsigned long long>(CounterValue("shard.selects_routed")),
      static_cast<unsigned long long>(CounterValue("shard.md_colocated")),
      static_cast<unsigned long long>(CounterValue("shard.md_composed")));
  if (server != nullptr) {
    std::printf("queue: %llu frame(s) served, inflight now %lld\n",
                static_cast<unsigned long long>(server->frames_served()),
                static_cast<long long>(
                    obs::MetricsRegistry::Global().GetGauge("net.inflight")
                        ->value()));
  }
}

/// Compiles and routes one parsed statement against the sharded index.
void RunSharded(const query::SelectStatement& stmt, const query::Catalog& cat,
                edbms::Edbms* issuer, core::ShardedPrkbIndex* sharded) {
  if (stmt.explain) {
    std::printf("error: EXPLAIN is unavailable in sharded mode\n");
    return;
  }
  std::vector<edbms::Trapdoor> tds;
  for (const query::Condition& cond : stmt.conditions) {
    const auto attr = cat.ResolveColumn(stmt.table, cond.column);
    if (!attr.ok()) {
      std::printf("error: %s\n", attr.status().ToString().c_str());
      return;
    }
    if (cond.kind == query::Condition::Kind::kBetween) {
      tds.push_back(issuer->MakeBetween(attr.value(), cond.lo, cond.hi));
    } else {
      tds.push_back(issuer->MakeComparison(attr.value(), cond.op, cond.lo));
    }
  }
  edbms::SelectionStats stats;
  std::vector<edbms::TupleId> rows;
  const char* route = "";
  if (tds.empty()) {
    for (edbms::TupleId tid = 0; tid < issuer->num_rows(); ++tid) {
      if (issuer->IsLive(tid)) rows.push_back(tid);
    }
    route = "full-table";
  } else if (tds.size() == 1) {
    rows = sharded->Select(tds[0], &stats);
    route = "shard-select";
  } else {
    rows = sharded->SelectRangeMd(tds, &stats);
    route = "shard-md";
  }
  std::printf("%zu rows  [%s, qpf_uses=%llu, %.2f ms]\n", rows.size(), route,
              static_cast<unsigned long long>(stats.qpf_uses), stats.millis);
  for (size_t i = 0; i < rows.size() && i < 10; ++i) {
    std::printf("  tid %u\n", rows[i]);
  }
  if (rows.size() > 10) {
    std::printf("  ... (%zu more)\n", rows.size() - 10);
  }
}

void PrintWalStats(const char* label, const core::PrkbWal& wal) {
  const core::PrkbWal::Stats s = wal.stats();
  std::printf(
      "%s%s: log %llu byte(s) (%llu pending), %llu record(s) appended "
      "(%llu bytes) over %llu commit(s) / %llu fsync(s); recovery replayed "
      "%llu record(s); %llu compaction(s)%s\n",
      label, wal.dir().c_str(),
      static_cast<unsigned long long>(s.log_bytes),
      static_cast<unsigned long long>(s.pending_bytes),
      static_cast<unsigned long long>(s.appended_records),
      static_cast<unsigned long long>(s.appended_bytes),
      static_cast<unsigned long long>(s.commits),
      static_cast<unsigned long long>(s.fsyncs),
      static_cast<unsigned long long>(s.replayed_records),
      static_cast<unsigned long long>(s.compactions),
      wal.compact_pending() ? " [compaction pending]" : "");
}

}  // namespace

int main(int argc, char** argv) {
  const ShellOptions opt = ParseOptions(argc, argv);

  workload::SyntheticSpec spec;
  spec.rows = opt.rows;
  spec.attrs = opt.attrs;
  spec.domain_lo = 0;
  spec.domain_hi = 1'000'000;
  spec.seed = opt.seed;
  const edbms::PlainTable plain = workload::MakeSyntheticTable(spec);
  auto db = edbms::CipherbaseEdbms::FromPlainTable(opt.seed, plain);

  // Remote mode: host the local backend behind a loopback server and make
  // every Θ evaluation a real round trip through the client.
  std::unique_ptr<net::QpfServer> server;
  std::unique_ptr<net::QpfClient> client;
  std::unique_ptr<net::RemoteEdbms> remote;
  edbms::Edbms* backend = &db;
  if (opt.remote) {
    server = std::make_unique<net::QpfServer>(&db);
    const Status s = server->ServeTcp(0);
    if (!s.ok()) {
      std::printf("cannot start QPF server: %s\n", s.ToString().c_str());
      return 1;
    }
    auto conn = net::QpfClient::ConnectTcp("127.0.0.1", server->port());
    if (!conn.ok()) {
      std::printf("cannot connect QPF client: %s\n",
                  conn.status().ToString().c_str());
      return 1;
    }
    client = std::move(conn).value();
    remote = std::make_unique<net::RemoteEdbms>(&db, client.get());
    backend = remote.get();
    std::printf("QPF served on 127.0.0.1:%u\n", server->port());
  }

  // Bus mode: the merge point sits in front of whatever backend the flags
  // built — the socket client in remote mode, the local oracle otherwise.
  std::unique_ptr<net::CoalescedEdbms> bus_db;
  if (opt.bus) {
    bus_db = std::make_unique<net::CoalescedEdbms>(backend);
    backend = bus_db.get();
  }

  const core::PrkbOptions prkb_opts{.seed = opt.seed};
  core::PrkbIndex index(backend, prkb_opts);
  std::unique_ptr<core::ShardedPrkbIndex> sharded;
  if (opt.shards > 0) {
    sharded =
        std::make_unique<core::ShardedPrkbIndex>(backend, opt.shards, prkb_opts);
  }
  // Durability: open (and recover from) the WAL before enabling attributes,
  // so chains a previous session already paid for come back instead of
  // being re-initialised from scratch.
  std::unique_ptr<core::PrkbWal> wal;  // unsharded mode only
  if (!opt.wal_dir.empty()) {
    if (sharded != nullptr) {
      const Status s = sharded->OpenWal(opt.wal_dir);
      if (!s.ok()) {
        std::printf("cannot open WAL: %s\n", s.ToString().c_str());
        return 1;
      }
    } else {
      auto w = core::PrkbWal::Open(&index, opt.wal_dir);
      if (!w.ok()) {
        std::printf("cannot open WAL: %s\n", w.status().ToString().c_str());
        return 1;
      }
      wal = std::move(w).value();
      if (wal->stats().replayed_records > 0 || index.EnabledAttrs().size() > 0) {
        std::printf("recovered %zu chain(s) from %s (%llu log record(s) "
                    "replayed)\n",
                    index.EnabledAttrs().size(), opt.wal_dir.c_str(),
                    static_cast<unsigned long long>(
                        wal->stats().replayed_records));
      }
    }
  }

  query::Catalog catalog;
  std::vector<std::string> columns;
  for (size_t a = 0; a < opt.attrs; ++a) {
    const auto attr = static_cast<edbms::AttrId>(a);
    columns.push_back("c" + std::to_string(a));
    if (sharded != nullptr) {
      if (!sharded->IsEnabled(attr)) sharded->EnableAttr(attr);
    } else if (!index.IsEnabled(attr)) {
      index.EnableAttr(attr);
    }
  }
  catalog.RegisterTable("t", columns);
  query::Planner planner(&catalog, backend, &index);

  // Alternative routes on c0 (local unsharded mode only — SRC-i confirmation
  // enters the TM directly, which a remote deployment routes differently):
  // SRC-i competes for real, OPE is costed-but-inadmissible so EXPLAIN shows
  // what the leakage budget is paying (docs/COST_MODEL.md).
  std::unique_ptr<query::SrciRoute> srci_route;
  std::unique_ptr<query::OpeRoute> ope_route;
  if (!opt.remote && sharded == nullptr && opt.attrs > 0) {
    srci_route = std::make_unique<query::SrciRoute>(
        &db, /*attr=*/0, spec.domain_lo, spec.domain_hi);
    ope_route = std::make_unique<query::OpeRoute>(
        &db, /*attr=*/0, plain.column(0), /*key=*/opt.seed ^ 0x09e5u);
    planner.RegisterAltRoute(srci_route.get());
    planner.RegisterAltRoute(ope_route.get());
  }

  std::string deployment;
  if (opt.shards > 0) {
    deployment.append(", ").append(std::to_string(opt.shards)).append(
        " shards");
  }
  std::printf(
      "prkb_shell: table 't' with %zu encrypted rows, columns c0..c%zu, "
      "domain [0, 1000000]%s\n",
      db.num_rows(), opt.attrs - 1, deployment.c_str());
  PrintHelp(opt);

  std::string line;
  std::optional<query::ExecutionResult> last;
  while (true) {
    std::printf("prkb> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;

    if (line[0] == '.') {
      std::istringstream in(line);
      std::string cmd;
      in >> cmd;
      if (cmd == ".quit" || cmd == ".exit") break;
      if (cmd == ".help") {
        PrintHelp(opt);
      } else if (cmd == ".explain") {
        if (sharded != nullptr) {
          std::printf(".explain is unavailable in sharded mode\n");
        } else if (!last.has_value()) {
          std::printf("no statement executed yet\n");
        } else {
          // Re-render the last plan: after execution each operator also
          // carries its actual QPF spend next to the estimate.
          std::printf("%s", last->Explain().c_str());
        }
      } else if (cmd == ".stats") {
        if (sharded != nullptr) {
          for (const edbms::AttrId attr : sharded->EnabledAttrs()) {
            const auto cs = sharded->StatsFor(attr);
            std::printf("attr %u (shard %zu): k=%zu cuts=%zu tuples=%zu\n",
                        attr, sharded->ShardOf(attr), cs.k, cs.cuts,
                        cs.tuples);
          }
        } else {
          std::printf("%s", index.DescribeStats().c_str());
        }
      } else if (cmd == ".cost") {
        if (sharded != nullptr) {
          for (size_t i = 0; i < sharded->num_shards(); ++i) {
            std::printf("shard %zu:\n%s", i,
                        sharded->shard(i).calibrator().Describe().c_str());
          }
        } else {
          std::printf("%s", index.calibrator().Describe().c_str());
        }
      } else if (cmd == ".shards") {
        if (sharded == nullptr) {
          std::printf("not sharded; start with --shards=N\n");
        } else {
          PrintShardReport(*sharded, server.get());
        }
      } else if (cmd == ".wal") {
        if (opt.wal_dir.empty()) {
          std::printf("not durable; start with --wal-dir=<dir>\n");
        } else if (sharded != nullptr) {
          for (size_t i = 0; i < sharded->num_shards(); ++i) {
            const core::PrkbWal* w = sharded->shard(i).wal();
            if (w == nullptr) continue;
            std::printf("shard %zu ", i);
            PrintWalStats("", *w);
          }
        } else {
          PrintWalStats("", *wal);
        }
      } else if (cmd == ".bus") {
        if (bus_db == nullptr) {
          std::printf("no round bus; start with --bus\n");
        } else {
          const net::RoundBus::Stats bs = bus_db->bus().stats();
          std::printf(
              "round bus: factor %.2fx, linger %llu ns\n"
              "  %llu round(s) / %llu request(s) over %llu backend "
              "entr(ies)\n"
              "  %llu merged round(s), %llu trapdoor dedup(s), %llu "
              "overflow split(s)\n",
              bs.factor, static_cast<unsigned long long>(bs.linger_ns),
              static_cast<unsigned long long>(bs.rounds),
              static_cast<unsigned long long>(bs.requests),
              static_cast<unsigned long long>(bs.entries),
              static_cast<unsigned long long>(bs.merged_rounds),
              static_cast<unsigned long long>(bs.dedup_tds),
              static_cast<unsigned long long>(bs.overflow_splits));
          if (client != nullptr) PrintRemoteCounters(client.get());
        }
      } else if (cmd == ".cache") {
        const auto print_entries = [](edbms::AttrId attr, size_t entries) {
          std::printf("attr %u: %zu cached predicate(s)\n", attr, entries);
        };
        if (sharded != nullptr) {
          for (const edbms::AttrId attr : sharded->EnabledAttrs()) {
            sharded->shard(sharded->ShardOf(attr))
                .WithLocked([&](core::PrkbIndex& idx) {
                  print_entries(attr, idx.pop(attr).fast_path_entries());
                  return 0;
                });
          }
        } else {
          for (const edbms::AttrId attr : index.EnabledAttrs()) {
            print_entries(attr, index.pop(attr).fast_path_entries());
          }
        }
        const core::CacheMetrics& cm = core::CacheMetrics::Get();
        std::printf("session: %llu hit(s), %llu miss(es)\n",
                    static_cast<unsigned long long>(cm.hits->value()),
                    static_cast<unsigned long long>(cm.misses->value()));
        if (client != nullptr) PrintRemoteCounters(client.get());
      } else if (cmd == ".insert") {
        std::vector<edbms::Value> row;
        edbms::Value v;
        while (in >> v) row.push_back(v);
        if (row.size() != opt.attrs) {
          std::printf("need %zu values\n", opt.attrs);
          continue;
        }
        edbms::SelectionStats st;
        const auto tid = sharded != nullptr ? sharded->Insert(row, &st)
                                            : index.Insert(row, &st);
        std::printf("inserted tuple %u (%llu QPF uses)\n", tid,
                    static_cast<unsigned long long>(st.qpf_uses));
      } else if (cmd == ".delete") {
        edbms::TupleId tid;
        if (!(in >> tid) || tid >= db.num_rows()) {
          std::printf("usage: .delete <tid>\n");
          continue;
        }
        if (sharded != nullptr) {
          sharded->Delete(tid);
        } else {
          index.Delete(tid);
        }
        std::printf("tombstoned tuple %u\n", tid);
      } else if (cmd == ".save" || cmd == ".load") {
        if (sharded != nullptr) {
          std::printf("%s is unavailable in sharded mode\n", cmd.c_str());
          continue;
        }
        std::string path;
        if (!(in >> path)) {
          std::printf("usage: %s <path>\n", cmd.c_str());
          continue;
        }
        const Status s = cmd == ".save" ? core::SavePrkb(index, path)
                                        : core::LoadPrkb(&index, path);
        std::printf("%s\n", s.ToString().c_str());
      } else {
        std::printf("unknown command %s\n", cmd.c_str());
      }
      continue;
    }

    if (sharded != nullptr) {
      auto stmt = query::Parse(line);
      if (!stmt.ok()) {
        std::printf("error: %s\n", stmt.status().ToString().c_str());
        continue;
      }
      RunSharded(stmt.value(), catalog, backend, sharded.get());
      continue;
    }

    auto res = planner.ExecuteSql(line);
    if (!res.ok()) {
      std::printf("error: %s\n", res.status().ToString().c_str());
      continue;
    }
    if (res->explain_only) {
      std::printf("%s", res->Explain().c_str());
      continue;
    }
    std::printf("%zu rows  [%s, qpf_uses=%llu, %.2f ms]\n", res->rows.size(),
                res->plan.c_str(),
                static_cast<unsigned long long>(res->stats.qpf_uses),
                res->stats.millis);
    for (size_t i = 0; i < res->rows.size() && i < 10; ++i) {
      std::printf("  tid %u\n", res->rows[i]);
    }
    if (res->rows.size() > 10) {
      std::printf("  ... (%zu more)\n", res->rows.size() - 10);
    }
    last = std::move(*res);
  }
  return 0;
}
