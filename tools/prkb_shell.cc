// prkb_shell — interactive console over an encrypted demo table.
//
//   $ ./tools/prkb_shell [--rows=N] [--attrs=K] [--seed=S]
//
// Accepts the mini-SQL subset on stdin plus dot-commands:
//   SELECT * FROM t WHERE c0 < 100 AND c1 BETWEEN 5 AND 9
//   EXPLAIN SELECT ...  cost-based physical plan with estimates, no execution
//   .explain          last executed statement's plan with actual QPF costs
//   .stats            chain shape per attribute
//   .cache            repeat-predicate fast-path state (entries, hits/misses)
//
// Note: retyping a SELECT re-issues its trapdoor through the data owner,
// which seals with a fresh nonce — different bytes, so the fast path misses
// by design (DESIGN.md §9). Hits require re-sending the *same* trapdoor,
// the prepared-statement model the fast-path tests and bench exercise.
//   .insert v0 v1 ..  insert a row (one value per attribute)
//   .delete <tid>     tombstone a tuple
//   .save <path>      snapshot the PRKB
//   .load <path>      restore a snapshot
//   .help / .quit
//
// Useful both as a demo and for poking at the index by hand.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "edbms/cipherbase_qpf.h"
#include "prkb/prkb_io.h"
#include "prkb/selection.h"
#include "query/planner.h"
#include "workload/synthetic_table.h"

namespace {

using namespace prkb;

struct ShellOptions {
  size_t rows = 20000;
  size_t attrs = 2;
  uint64_t seed = 42;
};

ShellOptions ParseOptions(int argc, char** argv) {
  ShellOptions opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--rows=", 7) == 0) {
      opt.rows = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strncmp(argv[i], "--attrs=", 8) == 0) {
      opt.attrs = std::strtoull(argv[i] + 8, nullptr, 10);
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      opt.seed = std::strtoull(argv[i] + 7, nullptr, 10);
    }
  }
  return opt;
}

void PrintHelp() {
  std::printf(
      "commands:\n"
      "  SELECT * FROM t WHERE c0 < 100 AND c1 BETWEEN 5 AND 9\n"
      "  EXPLAIN SELECT ...   (plan + cost estimates, no execution)\n"
      "  .explain | .stats | .cache | .insert v0 v1 .. | .delete <tid> |"
      " .save <p> | .load <p>\n"
      "  .help | .quit\n");
}

}  // namespace

int main(int argc, char** argv) {
  const ShellOptions opt = ParseOptions(argc, argv);

  workload::SyntheticSpec spec;
  spec.rows = opt.rows;
  spec.attrs = opt.attrs;
  spec.domain_lo = 0;
  spec.domain_hi = 1'000'000;
  spec.seed = opt.seed;
  auto db = edbms::CipherbaseEdbms::FromPlainTable(
      opt.seed, workload::MakeSyntheticTable(spec));

  core::PrkbIndex index(&db, core::PrkbOptions{.seed = opt.seed});
  query::Catalog catalog;
  std::vector<std::string> columns;
  for (size_t a = 0; a < opt.attrs; ++a) {
    columns.push_back("c" + std::to_string(a));
    index.EnableAttr(static_cast<edbms::AttrId>(a));
  }
  catalog.RegisterTable("t", columns);
  query::Planner planner(&catalog, &db, &index);

  std::printf(
      "prkb_shell: table 't' with %zu encrypted rows, columns c0..c%zu, "
      "domain [0, 1000000]\n",
      db.num_rows(), opt.attrs - 1);
  PrintHelp();

  std::string line;
  std::optional<query::ExecutionResult> last;
  while (true) {
    std::printf("prkb> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;

    if (line[0] == '.') {
      std::istringstream in(line);
      std::string cmd;
      in >> cmd;
      if (cmd == ".quit" || cmd == ".exit") break;
      if (cmd == ".help") {
        PrintHelp();
      } else if (cmd == ".explain") {
        if (!last.has_value()) {
          std::printf("no statement executed yet\n");
        } else {
          // Re-render the last plan: after execution each operator also
          // carries its actual QPF spend next to the estimate.
          std::printf("%s", last->Explain().c_str());
        }
      } else if (cmd == ".stats") {
        std::printf("%s", index.DescribeStats().c_str());
      } else if (cmd == ".cache") {
        for (const edbms::AttrId attr : index.EnabledAttrs()) {
          std::printf("attr %u: %zu cached predicate(s)\n", attr,
                      index.pop(attr).fast_path_entries());
        }
        const core::CacheMetrics& cm = core::CacheMetrics::Get();
        std::printf("session: %llu hit(s), %llu miss(es)\n",
                    static_cast<unsigned long long>(cm.hits->value()),
                    static_cast<unsigned long long>(cm.misses->value()));
      } else if (cmd == ".insert") {
        std::vector<edbms::Value> row;
        edbms::Value v;
        while (in >> v) row.push_back(v);
        if (row.size() != opt.attrs) {
          std::printf("need %zu values\n", opt.attrs);
          continue;
        }
        edbms::SelectionStats st;
        const auto tid = index.Insert(row, &st);
        std::printf("inserted tuple %u (%llu QPF uses)\n", tid,
                    static_cast<unsigned long long>(st.qpf_uses));
      } else if (cmd == ".delete") {
        edbms::TupleId tid;
        if (!(in >> tid) || tid >= db.num_rows()) {
          std::printf("usage: .delete <tid>\n");
          continue;
        }
        index.Delete(tid);
        std::printf("tombstoned tuple %u\n", tid);
      } else if (cmd == ".save" || cmd == ".load") {
        std::string path;
        if (!(in >> path)) {
          std::printf("usage: %s <path>\n", cmd.c_str());
          continue;
        }
        const Status s = cmd == ".save" ? core::SavePrkb(index, path)
                                        : core::LoadPrkb(&index, path);
        std::printf("%s\n", s.ToString().c_str());
      } else {
        std::printf("unknown command %s\n", cmd.c_str());
      }
      continue;
    }

    auto res = planner.ExecuteSql(line);
    if (!res.ok()) {
      std::printf("error: %s\n", res.status().ToString().c_str());
      continue;
    }
    if (res->explain_only) {
      std::printf("%s", res->Explain().c_str());
      continue;
    }
    std::printf("%zu rows  [%s, qpf_uses=%llu, %.2f ms]\n", res->rows.size(),
                res->plan.c_str(),
                static_cast<unsigned long long>(res->stats.qpf_uses),
                res->stats.millis);
    for (size_t i = 0; i < res->rows.size() && i < 10; ++i) {
      std::printf("  tid %u\n", res->rows[i]);
    }
    if (res->rows.size() > 10) {
      std::printf("  ... (%zu more)\n", res->rows.size() - 10);
    }
    last = std::move(*res);
  }
  return 0;
}
