// Renders the "metrics" block of a bench JSON file (docs/BENCH_FORMAT.md)
// as aligned tables, grouped by instrument kind. Usage:
//
//   obs_report <bench.json> [--prefix=<p>]
//
// With --prefix only metrics whose name starts with <p> are shown (e.g.
// --prefix=qfilter.). The parser is deliberately line-based: bench JSON is
// written one key per line by JsonBench, so no JSON library is needed.

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/table_printer.h"

namespace prkb::tools {
namespace {

struct Entry {
  std::string key;
  std::string value;
};

/// Extracts `"key": value` pairs from the lines between `"metrics": {` and
/// its closing brace. Returns false if the file has no metrics block.
bool ParseMetricsBlock(std::FILE* f, std::vector<Entry>* out) {
  char line[1024];
  bool in_metrics = false;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (!in_metrics) {
      if (std::strstr(line, "\"metrics\"") != nullptr &&
          std::strchr(line, '{') != nullptr) {
        in_metrics = true;
      }
      continue;
    }
    const char* q1 = std::strchr(line, '"');
    if (q1 == nullptr) return true;  // closing brace line
    const char* q2 = std::strchr(q1 + 1, '"');
    if (q2 == nullptr) return true;
    const char* colon = std::strchr(q2, ':');
    if (colon == nullptr) return true;
    std::string value = colon + 1;
    while (!value.empty() &&
           (value.back() == '\n' || value.back() == '\r' ||
            value.back() == ',' || value.back() == ' ')) {
      value.pop_back();
    }
    while (!value.empty() && value.front() == ' ') value.erase(0, 1);
    out->push_back(Entry{std::string(q1 + 1, q2), std::move(value)});
  }
  return in_metrics;
}

/// Histogram-derived keys share the base name with a known stat suffix.
const char* const kHistSuffixes[] = {".count", ".sum",  ".mean", ".max",
                                     ".p50",   ".p90", ".p99"};

bool SplitHistKey(const std::string& key, std::string* base,
                  std::string* stat) {
  for (const char* suffix : kHistSuffixes) {
    const size_t len = std::strlen(suffix);
    if (key.size() > len &&
        key.compare(key.size() - len, len, suffix) == 0) {
      *base = key.substr(0, key.size() - len);
      *stat = suffix + 1;
      return true;
    }
  }
  return false;
}

int Main(int argc, char** argv) {
  std::string path;
  std::string prefix;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--prefix=", 9) == 0) {
      prefix = argv[i] + 9;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    } else {
      path = argv[i];
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "usage: obs_report <bench.json> [--prefix=<p>]\n");
    return 2;
  }
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::vector<Entry> entries;
  const bool found = ParseMetricsBlock(f, &entries);
  std::fclose(f);
  if (!found) {
    std::fprintf(stderr,
                 "%s has no \"metrics\" block — re-run the bench with "
                 "--json= (benches built before the obs subsystem, or "
                 "bench_micro, do not emit one)\n",
                 path.c_str());
    return 1;
  }

  // A histogram contributes 7 keys; group them into one row per histogram.
  // Everything else (counters, gauges, gauge .max) renders as scalars.
  // Keys arrive name-sorted from the registry snapshot, so a histogram's
  // stats are contiguous, but a std::map keeps this robust to hand edits.
  std::map<std::string, std::map<std::string, std::string>> hists;
  std::vector<Entry> scalars;
  for (const Entry& e : entries) {
    if (!prefix.empty() && e.key.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    std::string base, stat;
    if (SplitHistKey(e.key, &base, &stat)) {
      hists[base][stat] = e.value;
    } else {
      scalars.push_back(e);
    }
  }
  // A gauge's plain key plus `.max` looks like a 1-stat histogram ("max");
  // fold such singletons back into the scalar list.
  for (auto it = hists.begin(); it != hists.end();) {
    if (it->second.size() <= 1) {
      for (const auto& [stat, value] : it->second) {
        scalars.push_back(Entry{it->first + "." + stat, value});
      }
      it = hists.erase(it);
    } else {
      ++it;
    }
  }

  if (!scalars.empty()) {
    TablePrinter tp("counters and gauges");
    tp.SetHeader({"metric", "value"});
    for (const Entry& e : scalars) tp.AddRow({e.key, e.value});
    tp.Print();
    std::printf("\n");
  }
  if (!hists.empty()) {
    TablePrinter tp("histograms (percentiles are bucket upper bounds)");
    tp.SetHeader({"metric", "count", "sum", "mean", "p50", "p90", "p99",
                  "max"});
    for (const auto& [base, stats] : hists) {
      auto get = [&stats](const char* k) {
        auto it = stats.find(k);
        return it == stats.end() ? std::string("-") : it->second;
      };
      tp.AddRow({base, get("count"), get("sum"), get("mean"), get("p50"),
                 get("p90"), get("p99"), get("max")});
    }
    tp.Print();
  }
  if (scalars.empty() && hists.empty()) {
    std::printf("no metrics%s\n",
                prefix.empty() ? "" : (" matching prefix " + prefix).c_str());
  }
  return 0;
}

}  // namespace
}  // namespace prkb::tools

int main(int argc, char** argv) { return prkb::tools::Main(argc, argv); }
