// Attack audit: quantifies what a compromised service provider learns from
// watching selection results (the paper's Sec. 8.1 security analysis) — run
// this against your own column profile before deciding whether revealing
// selection results is acceptable.
//
//   $ ./examples/attack_audit

#include <cstdio>

#include "attack/order_recovery.h"
#include "edbms/ope.h"
#include "workload/query_gen.h"
#include "workload/real_emulators.h"
#include "workload/synthetic_table.h"

int main() {
  using namespace prkb;

  struct Profile {
    const char* name;
    std::vector<edbms::Value> column;
    edbms::Value lo, hi;
  };
  std::vector<Profile> profiles;

  // A high-risk profile: tiny domain (e.g. ages). The paper's point: for
  // small domains an attacker recovers the total order quickly.
  {
    workload::SyntheticSpec spec;
    spec.rows = 50000;
    spec.domain_lo = 0;
    spec.domain_hi = 120;
    spec.seed = 1;
    profiles.push_back(
        {"ages (domain 120)", workload::MakeSyntheticTable(spec).column(0), 0,
         120});
  }
  // A low-risk profile: large skewed domain (emulated hospital charges).
  {
    auto ds = workload::MakeHospitalCharges(0.02, 2);
    profiles.push_back({"hospital charges (domain 10M)", ds.table.column(0),
                        ds.domain_lo[0], ds.domain_hi[0]});
  }

  std::printf(
      "How much of the hidden ordering can a compromised server recover?\n"
      "(RPOI = recovered / total order length; 100%% = inference attacks "
      "like Naveed et al. become fully effective)\n");

  for (auto& p : profiles) {
    attack::OrderRecovery rec(p.column);
    workload::QueryGen gen(p.lo, p.hi, 7);
    std::printf("\n%s — %zu rows, %zu distinct values\n", p.name,
                p.column.size(), rec.TotalOrderLength());
    int q = 0;
    for (int checkpoint : {100, 1000, 10000, 100000}) {
      for (; q < checkpoint; ++q) rec.Observe(gen.RandomComparison(0));
      std::printf("  after %6d observed queries: RPOI %6.2f%%  (%zu of %zu "
                  "chain steps)\n",
                  checkpoint, rec.Rpoi() * 100.0, rec.RecoveredOrderLength(),
                  rec.TotalOrderLength());
    }
  }

  // The CryptDB/OPE contrast (paper Sec. 8.1, closing remark): with
  // order-preserving encryption the server holds the full order before a
  // single query is answered.
  {
    const auto& column = profiles[1].column;
    const auto ope = edbms::OpeColumn::Build(column, 13);
    const auto recovered = ope.RecoverTotalOrder();
    std::printf(
        "\nContrast — the same column under OPE (CryptDB-style): the server "
        "reads the total order of all %zu tuples from the codes alone, "
        "RPOI 100.00%% after 0 queries.\n",
        recovered.size());
  }

  std::printf(
      "\nReading: small domains are a liability under result-revealing "
      "EDBMSs — the PRKB itself adds nothing to this leakage (it stores "
      "only what the server already saw), but the underlying model does.\n");
  return 0;
}
