// Adaptive warehouse: a longer-lived deployment exercising the full API
// surface — mixed comparison/BETWEEN analytics, inserts and deletes arriving
// continuously, PRKB snapshots to disk, extension operators (MIN/MAX,
// skyline), and an SDB-style MPC backend side by side with the trusted-
// machine backend.
//
//   $ ./examples/adaptive_warehouse

#include <cstdio>
#include <string>

#include "edbms/cipherbase_qpf.h"
#include "edbms/sdb_qpf.h"
#include "ext/minmax.h"
#include "ext/skyline.h"
#include "prkb/prkb_io.h"
#include "prkb/selection.h"
#include "workload/query_gen.h"
#include "workload/synthetic_table.h"

namespace {

constexpr prkb::edbms::Value kDomainHi = 1'000'000;

}  // namespace

int main() {
  using namespace prkb;

  // Orders table: (amount, delivery_days).
  workload::SyntheticSpec spec;
  spec.rows = 50000;
  spec.attrs = 2;
  spec.domain_lo = 0;
  spec.domain_hi = kDomainHi;
  spec.seed = 17;
  auto plain = workload::MakeSyntheticTable(spec);
  auto db = edbms::CipherbaseEdbms::FromPlainTable(23, plain);

  core::PrkbIndex index(&db);
  index.EnableAttr(0);
  index.EnableAttr(1);

  workload::QueryGen gen(0, kDomainHi, 29);
  Rng churn(31);

  std::printf("warehouse: %zu encrypted orders, 2 indexed attributes\n\n",
              db.num_rows());

  // --- A day of mixed traffic. ---------------------------------------------
  uint64_t analytics_qpf = 0;
  int selects = 0, inserts = 0, deletes = 0;
  for (int tick = 0; tick < 400; ++tick) {
    const double dice = churn.UniformDouble();
    if (dice < 0.10) {
      index.Insert({churn.UniformInt64(0, kDomainHi),
                    churn.UniformInt64(0, kDomainHi)});
      ++inserts;
    } else if (dice < 0.15) {
      const auto victim =
          static_cast<edbms::TupleId>(churn.UniformInt(0, db.num_rows() - 1));
      if (db.IsLive(victim)) {
        index.Delete(victim);
        ++deletes;
      }
    } else if (dice < 0.45) {
      // BETWEEN analytics: amounts inside a band.
      const auto lo = churn.UniformInt64(0, kDomainHi - 50'000);
      edbms::SelectionStats st;
      index.Select(db.MakeBetween(0, lo, lo + 50'000), &st);
      analytics_qpf += st.qpf_uses;
      ++selects;
    } else {
      // Plain comparison on either attribute.
      const auto p = gen.RandomComparison(
          static_cast<edbms::AttrId>(churn.UniformInt(0, 1)));
      edbms::SelectionStats st;
      index.Select(db.MakeComparison(p.attr, p.op, p.lo), &st);
      analytics_qpf += st.qpf_uses;
      ++selects;
    }
  }
  std::printf(
      "day 1: %d selects, %d inserts, %d deletes; %.0f QPF uses/select "
      "average; chains k=(%zu, %zu)\n",
      selects, inserts, deletes,
      static_cast<double>(analytics_qpf) / selects, index.pop(0).k(),
      index.pop(1).k());

  // --- Nightly snapshot & restart. ----------------------------------------
  const std::string snapshot = "/tmp/warehouse_prkb.bin";
  if (auto s = core::SavePrkb(index, snapshot); !s.ok()) {
    std::printf("snapshot failed: %s\n", s.ToString().c_str());
    return 1;
  }
  core::PrkbIndex restarted(&db);
  if (auto s = core::LoadPrkb(&restarted, snapshot); !s.ok()) {
    std::printf("restore failed: %s\n", s.ToString().c_str());
    return 1;
  }
  edbms::SelectionStats st;
  restarted.Select(db.MakeComparison(0, edbms::CompareOp::kLt, 300'000), &st);
  std::printf(
      "restart: snapshot restored, first query cost %llu QPF uses (knowledge "
      "survived the restart)\n",
      static_cast<unsigned long long>(st.qpf_uses));

  // --- Extension operators on the partial order. ---------------------------
  const auto mn = ext::FindMin(restarted, &db, 0);
  const auto mx = ext::FindMax(restarted, &db, 0);
  std::printf(
      "MIN/MAX(amount): tuples %u / %u found with %llu TM decrypts "
      "(vs %zu for a full scan)\n",
      mn.tid, mx.tid,
      static_cast<unsigned long long>(mn.tm_decrypts + mx.tm_decrypts),
      2 * db.num_rows());

  // Cheapest-and-fastest orders: min-min skyline over (amount, days).
  // Orientation bits come from the data owner (it can learn them from any
  // answered query).
  auto min_at_front = [&](edbms::AttrId attr) {
    const auto& pop = restarted.pop(attr);
    if (pop.k() < 2) return true;
    return plain.at(attr, pop.members_at(0).Select(0)) <
           plain.at(attr, pop.members_at(pop.k() - 1).Select(0));
  };
  const auto sky =
      ext::SkylineMinMin(restarted, &db, 0, 1, min_at_front(0),
                         min_at_front(1));
  std::printf(
      "skyline(amount, days): %zu offers on the frontier; grid pruning cut "
      "candidates to %zu of %zu tuples\n",
      sky.skyline.size(), sky.candidates, db.num_rows());

  // --- Same workload shape on the SDB-style MPC backend. -------------------
  auto sdb = edbms::SdbEdbms::FromPlainTable(23, plain);
  core::PrkbIndex sdb_index(&sdb);
  sdb_index.EnableAttr(0);
  for (int i = 0; i < 50; ++i) {
    const auto p = gen.RandomComparison(0);
    sdb_index.Select(sdb.MakeComparison(p.attr, p.op, p.lo));
  }
  std::printf(
      "\nSDB backend: 50 selections cost %llu MPC rounds / %llu bytes on the "
      "wire — PRKB is backend-agnostic, it only ever sees Θ's output bit\n",
      static_cast<unsigned long long>(sdb.rounds()),
      static_cast<unsigned long long>(sdb.bytes_transferred()));
  std::remove(snapshot.c_str());
  return 0;
}
