// Quickstart: stand up an encrypted database, run selections with and
// without the Past Result Knowledge Base, and watch the QPF cost collapse.
//
//   $ ./examples/quickstart
//
// Walks through the library's core loop:
//   1. the data owner encrypts a table and uploads it,
//   2. the service provider answers trapdoor queries with the QPF,
//   3. PRKB consolidates past results so new queries get cheaper.

#include <cstdio>

#include "edbms/cipherbase_qpf.h"
#include "edbms/service_provider.h"
#include "prkb/selection.h"
#include "workload/synthetic_table.h"

int main() {
  using namespace prkb;

  // --- Data owner side: build and encrypt a table. ------------------------
  workload::SyntheticSpec spec;
  spec.rows = 100000;
  spec.attrs = 1;
  spec.domain_lo = 0;
  spec.domain_hi = 1'000'000;
  spec.seed = 7;
  const edbms::PlainTable plain = workload::MakeSyntheticTable(spec);

  // One call stands up the whole deployment: the data owner encrypts every
  // cell (AES-CTR), the service provider stores ciphertext only, and a
  // trusted machine (provisioned with the key) realises the QPF.
  auto db = edbms::CipherbaseEdbms::FromPlainTable(/*master_seed=*/42, plain);
  std::printf("uploaded %zu encrypted tuples (%zu bytes of ciphertext)\n",
              db.num_rows(), db.StoredBytes());

  // --- Service provider side: baseline selection. -------------------------
  edbms::BaselineScanner baseline(&db);
  const edbms::Trapdoor first_query =
      db.MakeComparison(0, edbms::CompareOp::kLt, 250'000);
  edbms::SelectionStats stats;
  auto result = baseline.Select(first_query, &stats);
  std::printf("\nbaseline:  |result|=%zu  qpf_uses=%llu  (%.1f ms)\n",
              result.size(), static_cast<unsigned long long>(stats.qpf_uses),
              stats.millis);

  // --- Enable PRKB and replay a small workload. ----------------------------
  core::PrkbIndex index(&db);
  index.EnableAttr(0);

  Rng rng(99);
  std::printf("\nPRKB-assisted selections (watch qpf_uses fall):\n");
  for (int i = 1; i <= 64; ++i) {
    const auto c = rng.UniformInt64(0, 1'000'000);
    const edbms::Trapdoor td = db.MakeComparison(0, edbms::CompareOp::kLt, c);
    result = index.Select(td, &stats);
    if ((i & (i - 1)) == 0) {  // powers of two
      std::printf("  query %2d: |result|=%6zu  qpf_uses=%8llu  k=%zu\n", i,
                  result.size(),
                  static_cast<unsigned long long>(stats.qpf_uses),
                  index.pop(0).k());
    }
  }

  // --- Updates keep working. ----------------------------------------------
  const edbms::TupleId fresh = index.Insert({123'456}, &stats);
  std::printf(
      "\ninserted tuple %u with only %llu QPF uses (binary search over %zu "
      "partitions)\n",
      fresh, static_cast<unsigned long long>(stats.qpf_uses),
      index.pop(0).k());
  index.Delete(fresh);
  std::printf("deleted it again; index holds %zu tuples\n",
              index.pop(0).num_tuples());

  std::printf("\nindex footprint: %zu bytes (~%.1f bytes/tuple)\n",
              index.SizeBytes(),
              static_cast<double>(index.SizeBytes()) /
                  static_cast<double>(db.num_rows()));
  return 0;
}
