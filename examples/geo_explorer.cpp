// Geo explorer: the paper's Sec. 8.2.6 use case as an application. A tourist
// service stores an encrypted buildings table (latitude/longitude) in the
// cloud and answers "what is within this 1km x 1km window?" using the
// multi-dimensional PRKB processing, with a mini-SQL front end.
//
//   $ ./examples/geo_explorer

#include <cstdio>
#include <string>

#include "edbms/cipherbase_qpf.h"
#include "prkb/selection.h"
#include "query/planner.h"
#include "workload/real_emulators.h"

int main() {
  using namespace prkb;

  // Emulated US buildings dataset (see DESIGN.md on the substitution for the
  // GeoNames data): ~112k buildings at 1/10 scale, clustered like cities.
  const auto ds = workload::MakeUsBuildings(/*scale=*/0.1, /*seed=*/3);
  auto db = edbms::CipherbaseEdbms::FromPlainTable(/*master_seed=*/11,
                                                   ds.table);
  std::printf("geo service online: %zu encrypted buildings\n", db.num_rows());

  core::PrkbIndex index(&db);
  index.EnableAttr(0);  // latitude
  index.EnableAttr(1);  // longitude

  query::Catalog catalog;
  catalog.RegisterTable("buildings", {"lat", "lon"});
  query::Planner planner(&catalog, &db, &index);

  // A tourist walks through three cities; each stop issues the same window
  // shape at a different location. Coordinates in micro-degrees.
  struct Stop {
    const char* city;
    edbms::Value lat, lon;
  };
  const Stop trip[] = {
      {"stop A", 40'700'000, -74'000'000},
      {"stop B", 34'050'000, -118'250'000},
      {"stop C", 41'880'000, -87'630'000},
  };
  const edbms::Value half = workload::kMicroDegPerKm / 2;

  for (int round = 1; round <= 3; ++round) {
    std::printf("\n--- sightseeing round %d ---\n", round);
    for (const Stop& stop : trip) {
      char sql[256];
      std::snprintf(sql, sizeof(sql),
                    "SELECT * FROM buildings WHERE lat > %lld AND lat < %lld "
                    "AND lon > %lld AND lon < %lld",
                    static_cast<long long>(stop.lat - half),
                    static_cast<long long>(stop.lat + half),
                    static_cast<long long>(stop.lon - half),
                    static_cast<long long>(stop.lon + half));
      auto res = planner.ExecuteSql(sql);
      if (!res.ok()) {
        std::printf("query failed: %s\n", res.status().ToString().c_str());
        return 1;
      }
      std::printf(
          "  %s: %4zu buildings in 1km^2   [%s, qpf_uses=%7llu, %.2f ms]\n",
          stop.city, res->rows.size(), res->plan.c_str(),
          static_cast<unsigned long long>(res->stats.qpf_uses),
          res->stats.millis);
    }
    std::printf("  chain sizes now: lat k=%zu, lon k=%zu\n",
                index.pop(0).k(), index.pop(1).k());
  }

  std::printf(
      "\nEach revisit reuses the knowledge the earlier windows revealed: the "
      "same query shape costs orders of magnitude fewer QPF uses by round "
      "3.\n");
  return 0;
}
