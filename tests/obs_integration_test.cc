// Integration tests tying the obs registry to the paper-level accounting:
// on a comparison-only workload, every QPF use a selection pays is a QFilter
// probe, a QScan partition-member evaluation, or a wasted speculative
// prefetch, so the registry's per-mechanism counters must reconcile exactly
// with SelectionStats.qpf_uses
// — both on a live run and on a transcript replay. Also the regression test
// for SelectionStats reuse across operations (StatsScope must overwrite
// every field).

#include <cmath>
#include <vector>

#include "edbms/cipherbase_qpf.h"
#include "edbms/replay.h"
#include "gtest/gtest.h"
#include "net/coalesce.h"
#include "obs/metrics.h"
#include "prkb/selection.h"
#include "workload/query_gen.h"
#include "workload/synthetic_table.h"

namespace prkb {
namespace {

using edbms::SelectionStats;
using edbms::Trapdoor;

struct QueryRec {
  edbms::AttrId attr;
  edbms::CompareOp op;
  edbms::Value c;
};

/// Registry counters involved in comparison-selection accounting.
struct ObsReading {
  uint64_t qfilter_probes;
  uint64_t qscan_tuples;
  uint64_t qfilter_invocations;
  uint64_t spec_waste;

  static ObsReading Now() {
    auto& reg = obs::MetricsRegistry::Global();
    return ObsReading{
        reg.GetCounter("qfilter.probes")->value(),
        reg.GetCounter("qscan.tuples_scanned")->value(),
        reg.GetCounter("qfilter.invocations")->value(),
        reg.GetCounter("probe_sched.speculative_waste")->value(),
    };
  }
};

TEST(ObsIntegrationTest, ProbeAndScanCountersReconcileWithSelectionStats) {
  workload::SyntheticSpec spec;
  spec.rows = 20000;
  spec.seed = 7;
  const auto plain = workload::MakeSyntheticTable(spec);
  auto db = edbms::CipherbaseEdbms::FromPlainTable(3, plain);

  core::PrkbIndex index(&db, core::PrkbOptions{.seed = 11});
  index.EnableAttr(0);
  workload::QueryGen gen(spec.domain_lo, spec.domain_hi, 13);

  uint64_t stats_uses = 0;
  const ObsReading before = ObsReading::Now();
  for (int q = 0; q < 120; ++q) {
    const auto p = gen.RandomComparison(0);
    SelectionStats st;
    index.Select(db.MakeComparison(p.attr, p.op, p.lo), &st);
    stats_uses += st.qpf_uses;
  }
  const ObsReading after = ObsReading::Now();

  // Comparison selections on an enabled attribute spend QPF uses in exactly
  // three places: QFilter sampling probes, QScan NS-partition scans (the
  // tuples counter covers scheduler-prefetched outcomes QScan consumed
  // instead of re-paying), and prefetches QScan never asked for (the
  // speculation's waste).
  EXPECT_EQ((after.qfilter_probes - before.qfilter_probes) +
                (after.qscan_tuples - before.qscan_tuples) +
                (after.spec_waste - before.spec_waste),
            stats_uses);
  EXPECT_EQ(after.qfilter_invocations - before.qfilter_invocations, 120u);
}

TEST(ObsIntegrationTest, CoalescedTransportReconcilesTheSameWay) {
  // Same identity through the round bus (net::CoalescedEdbms): coalescing
  // changes how rounds travel, never the logical QPF accounting, so probes +
  // scans + speculative waste must still equal the per-selection uses.
  workload::SyntheticSpec spec;
  spec.rows = 20000;
  spec.seed = 43;
  const auto plain = workload::MakeSyntheticTable(spec);
  auto db = edbms::CipherbaseEdbms::FromPlainTable(3, plain);
  net::CoalescedEdbms bus_db(&db);

  core::PrkbIndex index(&bus_db, core::PrkbOptions{.seed = 11});
  index.EnableAttr(0);
  workload::QueryGen gen(spec.domain_lo, spec.domain_hi, 47);

  uint64_t stats_uses = 0;
  const ObsReading before = ObsReading::Now();
  for (int q = 0; q < 120; ++q) {
    const auto p = gen.RandomComparison(0);
    SelectionStats st;
    index.Select(db.MakeComparison(p.attr, p.op, p.lo), &st);
    stats_uses += st.qpf_uses;
  }
  const ObsReading after = ObsReading::Now();

  EXPECT_EQ((after.qfilter_probes - before.qfilter_probes) +
                (after.qscan_tuples - before.qscan_tuples) +
                (after.spec_waste - before.spec_waste),
            stats_uses);
  EXPECT_EQ(after.qfilter_invocations - before.qfilter_invocations, 120u);
}

TEST(ObsIntegrationTest, ReplayedWorkloadReconcilesTheSameWay) {
  workload::SyntheticSpec spec;
  spec.rows = 10000;
  spec.seed = 17;
  const auto plain = workload::MakeSyntheticTable(spec);
  auto live_db = edbms::CipherbaseEdbms::FromPlainTable(5, plain);

  // Live run: record the full QPF transcript and the trapdoors used.
  edbms::QpfTranscript transcript;
  edbms::RecordingEdbms recorder(&live_db, &transcript);
  std::vector<Trapdoor> tds;
  {
    core::PrkbIndex index(&recorder, core::PrkbOptions{.seed = 19});
    index.EnableAttr(0);
    workload::QueryGen gen(spec.domain_lo, spec.domain_hi, 23);
    for (int q = 0; q < 60; ++q) {
      const auto p = gen.RandomComparison(0);
      tds.push_back(live_db.MakeComparison(p.attr, p.op, p.lo));
      index.Select(tds.back());
    }
  }

  // Replay against the transcript only. Selection must pull every answer
  // from the recorded bits (misses() == 0), and the obs counters must still
  // reconcile exactly with the per-query SelectionStats accounting.
  edbms::ReplayEdbms replay(live_db.num_attrs(), live_db.num_rows(),
                            transcript);
  core::PrkbIndex replay_index(&replay, core::PrkbOptions{.seed = 19});
  replay_index.EnableAttr(0);

  uint64_t stats_uses = 0;
  const ObsReading before = ObsReading::Now();
  for (const Trapdoor& td : tds) {
    SelectionStats st;
    replay_index.Select(td, &st);
    stats_uses += st.qpf_uses;
  }
  const ObsReading after = ObsReading::Now();

  EXPECT_EQ(replay.misses(), 0u);
  EXPECT_EQ((after.qfilter_probes - before.qfilter_probes) +
                (after.qscan_tuples - before.qscan_tuples) +
                (after.spec_waste - before.spec_waste),
            stats_uses);
}

TEST(ObsIntegrationTest, ProbesPerCallRespectsLgKBound) {
  workload::SyntheticSpec spec;
  spec.rows = 20000;
  spec.seed = 29;
  const auto plain = workload::MakeSyntheticTable(spec);
  auto db = edbms::CipherbaseEdbms::FromPlainTable(7, plain);

  core::PrkbIndex index(&db, core::PrkbOptions{.seed = 31});
  index.EnableAttr(0);
  workload::QueryGen gen(spec.domain_lo, spec.domain_hi, 37);

  auto& reg = obs::MetricsRegistry::Global();
  obs::LatencyHistogram* per_call =
      reg.GetHistogram("qfilter.probes_per_call");
  obs::LatencyHistogram* chain_k = reg.GetHistogram("qfilter.chain_k");

  for (int q = 0; q < 300; ++q) {
    const auto p = gen.RandomComparison(0);
    index.Select(db.MakeComparison(p.attr, p.op, p.lo));
  }
  // Paper Sec. 6.1 bounds the binary QFilter at 2 + ceil(lg k) sampled
  // probes; the m-ary scheduler trades probes for round trips, paying at
  // most m-1 pivots per narrowing round over ceil(log_m k) rounds. The
  // histograms are process-global (other tests also record into them, all
  // with the default fanout), but the bound is monotone in k, so checking
  // against the global chain-length max remains sound.
  const double k_max = static_cast<double>(chain_k->max());
  ASSERT_GT(k_max, 0.0);
  const uint64_t m = core::PrkbOptions{}.probe_fanout;
  ASSERT_GE(m, 2u);
  const uint64_t log_m_k = static_cast<uint64_t>(
      std::ceil(std::log2(k_max) / std::log2(static_cast<double>(m))));
  const uint64_t bound = 2 + (m - 1) * log_m_k;
  EXPECT_LE(per_call->max(), bound);

  // The trip-side of the trade: every call finishes in at most the ends
  // round plus the narrowing rounds.
  obs::LatencyHistogram* rounds_per_call =
      reg.GetHistogram("qfilter.rounds_per_call");
  EXPECT_LE(rounds_per_call->max(), 2 + log_m_k);
}

TEST(ObsIntegrationTest, ReusedSelectionStatsNeverKeepsStaleFields) {
  workload::SyntheticSpec spec;
  spec.rows = 5000;
  spec.seed = 41;
  const auto plain = workload::MakeSyntheticTable(spec);
  auto db = edbms::CipherbaseEdbms::FromPlainTable(9, plain);

  // Batched scan policy so the selection records qpf_batches > 0, with
  // sequential probes so Insert's placement stays scalar — the assertions
  // below pin the scalar path's batches==0 / trips==uses signature.
  core::PrkbIndex index(&db, core::PrkbOptions{.seed = 43,
                                               .batch_size = 256,
                                               .sequential_probes = true});
  index.EnableAttr(0);
  workload::QueryGen gen(spec.domain_lo, spec.domain_hi, 47);
  for (int q = 0; q < 30; ++q) {  // grow a chain so selects batch-scan
    const auto p = gen.RandomComparison(0);
    index.Select(db.MakeComparison(p.attr, p.op, p.lo));
  }

  SelectionStats st;
  const auto p = gen.RandomComparison(0);
  index.Select(db.MakeComparison(p.attr, p.op, p.lo), &st);
  ASSERT_GT(st.qpf_batches, 0u) << "select did not batch; test setup broken";

  // Insert places the tuple with scalar QPF probes — no batches. Before
  // StatsScope, Insert left qpf_batches untouched, so a reused struct
  // reported the previous selection's value here.
  index.Insert({123}, &st);
  EXPECT_EQ(st.qpf_batches, 0u);
  EXPECT_GT(st.qpf_uses, 0u);
  EXPECT_EQ(st.qpf_round_trips, st.qpf_uses);
}

}  // namespace
}  // namespace prkb
