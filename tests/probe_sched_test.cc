// Differential tests for the batched probe scheduler (DESIGN.md §11): the
// m-ary QFilter, probe fusion, and speculative QScan overlap must be pure
// round-trip optimisations — same winner sets and same final POP chains as
// the paper's sequential binary search, at every fanout. Also pins the
// scheduler's round bound, the fast-path short-circuit, and transcript
// replay through the batched entry point.

#include <cmath>
#include <cstddef>
#include <vector>

#include "edbms/cipherbase_qpf.h"
#include "edbms/replay.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "prkb/probe_sched.h"
#include "prkb/selection.h"
#include "tests/test_util.h"
#include "workload/query_gen.h"

namespace prkb::core {
namespace {

using edbms::CipherbaseEdbms;
using edbms::PlainPredicate;
using edbms::PlainTable;
using edbms::SelectionStats;
using edbms::Trapdoor;
using edbms::TupleId;
using edbms::Value;
using testutil::OracleSelect;
using testutil::OracleSelectAll;
using testutil::RandomTable;
using testutil::Sorted;

constexpr uint64_t kSeed = 0x5C4ED;

/// The paper-literal control: scalar blocking probes, no fusion, no
/// speculation. Everything the scheduler does is measured against this.
PrkbOptions SequentialBaseline() {
  PrkbOptions o;
  o.probe_fanout = 2;
  o.probe_fusion = false;
  o.speculative_scan = false;
  o.sequential_probes = true;
  return o;
}

std::vector<std::vector<TupleId>> ChainShape(const Pop& pop) {
  std::vector<std::vector<TupleId>> shape;
  shape.reserve(pop.k());
  for (size_t p = 0; p < pop.k(); ++p) shape.push_back(pop.members_at(p).ToVector());
  return shape;
}

struct Workbench {
  Workbench(const PlainTable& plain, PrkbOptions options)
      : db(CipherbaseEdbms::FromPlainTable(kSeed, plain)),
        index(&db, options) {
    index.EnableAttr(0);
  }

  CipherbaseEdbms db;
  PrkbIndex index;
};

// ------------------------------------------------------------- FlipSearch

TEST(FlipSearchTest, FanoutTwoPivotIsTheLegacyMidpoint) {
  // The binary QFilter probes (a + b) / 2; FlipSearch at fanout 2 must
  // propose exactly that position so m = 2 reproduces the paper's search
  // probe-for-probe.
  for (size_t a = 0; a < 20; ++a) {
    for (size_t b = a + 2; b < 24; ++b) {
      FlipSearch search(a, b, true, 2);
      std::vector<size_t> pivots;
      search.Pivots(&pivots);
      ASSERT_EQ(pivots.size(), 1u) << "a=" << a << " b=" << b;
      EXPECT_EQ(pivots[0], (a + b) / 2) << "a=" << a << " b=" << b;
    }
  }
}

TEST(FlipSearchTest, ConvergesToTheFlipWithinTheRoundBound) {
  // Ground truth: positions <= flip are true, the rest false. For every
  // (k, m, flip) the search must land on the adjacent pair around the flip
  // in at most ceil(log_m k) narrowing rounds.
  for (size_t k : {2u, 3u, 7u, 16u, 33u, 100u}) {
    for (size_t m : {2u, 3u, 4u, 8u, 16u}) {
      for (size_t flip = 0; flip + 1 < k; ++flip) {
        FlipSearch search(0, k - 1, true, m);
        const uint64_t bound = static_cast<uint64_t>(
            std::ceil(std::log2(static_cast<double>(k)) /
                      std::log2(static_cast<double>(m))));
        uint64_t rounds = 0;
        std::vector<size_t> pivots;
        std::vector<uint8_t> labels;
        while (!search.done()) {
          pivots.clear();
          labels.clear();
          search.Pivots(&pivots);
          ASSERT_FALSE(pivots.empty());
          ASSERT_LE(pivots.size(), m - 1);
          for (size_t p : pivots) labels.push_back(p <= flip ? 1 : 0);
          search.Absorb(pivots, labels);
          ++rounds;
        }
        EXPECT_EQ(search.a(), flip) << "k=" << k << " m=" << m;
        EXPECT_EQ(search.b(), flip + 1) << "k=" << k << " m=" << m;
        EXPECT_LE(rounds, bound) << "k=" << k << " m=" << m;
      }
    }
  }
}

// --------------------------------------------------- full-index differential

/// Drives the same mixed workload (comparisons, BETWEENs, inserts, deletes)
/// through the sequential baseline and a scheduler configuration, comparing
/// winner sets at every step and the full chain shape at the end. The
/// scheduler changes which samples pay for the narrowing, never the ground
/// truth the narrowing converges to, so the final chains must match exactly.
void RunDifferentialWorkload(PrkbOptions sched_opts) {
  Rng data_rng(7);
  PlainTable plain = RandomTable(500, 2, &data_rng, 0, 2000);
  Workbench ref(plain, SequentialBaseline());
  Workbench bat(plain, sched_opts);

  workload::QueryGen gen(0, 2000, 71);
  Rng op_rng(91);
  for (int step = 0; step < 120; ++step) {
    const uint64_t dice = op_rng.UniformInt64(0, 9);
    SCOPED_TRACE(::testing::Message() << "step " << step << " dice " << dice);
    SelectionStats ref_stats, bat_stats;
    if (dice < 5) {
      const PlainPredicate p = gen.RandomComparison(0);
      const auto r = ref.index.Select(
          ref.db.MakeComparison(p.attr, p.op, p.lo), &ref_stats);
      const auto b = bat.index.Select(
          bat.db.MakeComparison(p.attr, p.op, p.lo), &bat_stats);
      EXPECT_EQ(Sorted(r), Sorted(b));
      EXPECT_EQ(Sorted(b), OracleSelect(plain, p, &bat.db));
    } else if (dice < 8) {
      const Value lo = op_rng.UniformInt64(0, 1500);
      const Value hi = lo + op_rng.UniformInt64(0, 400);
      const auto r =
          ref.index.Select(ref.db.MakeBetween(0, lo, hi), &ref_stats);
      const auto b =
          bat.index.Select(bat.db.MakeBetween(0, lo, hi), &bat_stats);
      EXPECT_EQ(Sorted(r), Sorted(b));
    } else {
      const Value v0 = op_rng.UniformInt64(0, 2000);
      const Value v1 = op_rng.UniformInt64(0, 2000);
      const TupleId rt = ref.index.Insert({v0, v1}, &ref_stats);
      const TupleId bt = bat.index.Insert({v0, v1}, &bat_stats);
      plain.AddRow({v0, v1});
      EXPECT_EQ(rt, bt);
      if (op_rng.UniformInt64(0, 1) == 0) {
        ref.index.Delete(rt);
        bat.index.Delete(bt);
      }
    }
    // No per-step round-trip comparison: different sample draws can settle
    // on the other admissible NS pair, whose partitions may cost a larger
    // scan — same winners and chains, incomparable trip counts. The trip
    // bound is pinned path-identically in the m = 2 test below and by
    // RoundsPerCallStaysWithinTheScheduleBound.
  }
  EXPECT_EQ(ChainShape(ref.index.pop(0)), ChainShape(bat.index.pop(0)));
}

TEST(ProbeSchedTest, DefaultMaryMatchesSequentialChains) {
  RunDifferentialWorkload(PrkbOptions{});  // m = 8, fusion + speculation on
}

TEST(ProbeSchedTest, Fanout4Matches) {
  PrkbOptions o;
  o.probe_fanout = 4;
  RunDifferentialWorkload(o);
}

TEST(ProbeSchedTest, Fanout16Matches) {
  PrkbOptions o;
  o.probe_fanout = 16;
  RunDifferentialWorkload(o);
}

TEST(ProbeSchedTest, SpeculationOffMatches) {
  PrkbOptions o;
  o.speculative_scan = false;
  RunDifferentialWorkload(o);
}

TEST(ProbeSchedTest, FanoutTwoSchedulerIsUseIdenticalToLegacy) {
  // At m = 2 with fusion and speculation off, the scheduler's pivots and
  // sample draws coincide with the legacy binary search exactly, so the QPF
  // spend — not just the winners — must match probe for probe at every step.
  Rng data_rng(7);
  PlainTable plain = RandomTable(400, 2, &data_rng, 0, 2000);
  PrkbOptions m2;
  m2.probe_fanout = 2;
  m2.probe_fusion = false;
  m2.speculative_scan = false;
  Workbench ref(plain, SequentialBaseline());
  Workbench bat(plain, m2);

  workload::QueryGen gen(0, 2000, 171);
  for (int step = 0; step < 80; ++step) {
    SCOPED_TRACE(::testing::Message() << "step " << step);
    const PlainPredicate p = gen.RandomComparison(0);
    SelectionStats ref_stats, bat_stats;
    const auto r = ref.index.Select(ref.db.MakeComparison(p.attr, p.op, p.lo),
                                    &ref_stats);
    const auto b = bat.index.Select(bat.db.MakeComparison(p.attr, p.op, p.lo),
                                    &bat_stats);
    EXPECT_EQ(Sorted(r), Sorted(b));
    EXPECT_EQ(ref_stats.qpf_uses, bat_stats.qpf_uses);
    EXPECT_LE(bat_stats.qpf_round_trips, ref_stats.qpf_round_trips);
  }
  EXPECT_EQ(ref.db.uses(), bat.db.uses());
  EXPECT_EQ(ChainShape(ref.index.pop(0)), ChainShape(bat.index.pop(0)));
}

// ------------------------------------------------------------ MD and fusion

TEST(ProbeSchedTest, FusedMdWinnersMatchUnfusedAndOracle) {
  Rng data_rng(23);
  const PlainTable plain = RandomTable(400, 2, &data_rng, 0, 1000);
  workload::QueryGen gen(0, 1000, 29);
  std::vector<std::vector<PlainPredicate>> boxes;
  for (int i = 0; i < 12; ++i) boxes.push_back(gen.RandomBox({0, 1}, 0.4));

  PrkbOptions fused;  // defaults: fusion on
  PrkbOptions unfused;
  unfused.probe_fusion = false;
  PrkbOptions sequential = SequentialBaseline();

  auto& reg = obs::MetricsRegistry::Global();
  const uint64_t fused_before = reg.GetCounter("probe_sched.fused")->value();

  for (const PrkbOptions& opts : {fused, unfused, sequential}) {
    auto db = CipherbaseEdbms::FromPlainTable(kSeed, plain);
    PrkbIndex index(&db, opts);
    index.EnableAttr(0);
    index.EnableAttr(1);
    for (const auto& box : boxes) {
      std::vector<Trapdoor> tds;
      for (const auto& p : box) {
        tds.push_back(db.MakeComparison(p.attr, p.op, p.lo));
      }
      const auto got = index.SelectRangeMd(tds);
      EXPECT_EQ(Sorted(got), OracleSelectAll(plain, box, &db));
    }
  }
  // The fused configuration must actually have shared rounds across the two
  // per-dimension filters.
  EXPECT_GT(reg.GetCounter("probe_sched.fused")->value(), fused_before);
}

// ------------------------------------------------------- bounds and caching

TEST(ProbeSchedTest, RoundsPerCallStaysWithinTheScheduleBound) {
  // Drive a default-fanout workload, then check every recorded call kept
  // within the schedule bound. The histograms are process-global (under the
  // raw binary, earlier tests also record — at several fanouts), so check
  // the loosest bound they all satisfy: 2 + ceil(lg k_max) rounds (m = 2;
  // larger m only lowers the count, and the sequential path's rounds equal
  // its probes, bounded the same way).
  Rng data_rng(61);
  const PlainTable plain = RandomTable(2000, 1, &data_rng, 0, 100000);
  auto db = CipherbaseEdbms::FromPlainTable(kSeed, plain);
  PrkbIndex index(&db, PrkbOptions{});
  index.EnableAttr(0);
  workload::QueryGen gen(0, 100000, 67);
  for (int q = 0; q < 200; ++q) {
    const auto p = gen.RandomComparison(0);
    index.Select(db.MakeComparison(p.attr, p.op, p.lo));
  }

  auto& reg = obs::MetricsRegistry::Global();
  obs::LatencyHistogram* rounds = reg.GetHistogram("qfilter.rounds_per_call");
  obs::LatencyHistogram* chain_k = reg.GetHistogram("qfilter.chain_k");
  ASSERT_GT(chain_k->max(), 0.0);
  const uint64_t bound = 2 + static_cast<uint64_t>(std::ceil(
                                 std::log2(chain_k->max())));
  EXPECT_LE(rounds->max(), bound);
  // The tight m-ary per-call form (2 + ceil(log_m k)) is asserted in
  // obs_integration_test.cc, whose process records default-fanout calls
  // only.
}

TEST(ProbeSchedTest, FastPathRepeatSkipsTheSchedulerEntirely) {
  Rng data_rng(37);
  const PlainTable plain = RandomTable(300, 1, &data_rng, 0, 1000);
  auto db = CipherbaseEdbms::FromPlainTable(kSeed, plain);
  PrkbIndex index(&db, PrkbOptions{});  // fast_path on, scheduler on
  index.EnableAttr(0);

  const Trapdoor td = db.MakeComparison(0, edbms::CompareOp::kLt, 500);
  const auto first = index.Select(td);

  auto& reg = obs::MetricsRegistry::Global();
  const uint64_t probes = reg.GetCounter("qfilter.probes")->value();
  const uint64_t requests = reg.GetCounter("probe_sched.requests")->value();
  const uint64_t uses = db.uses();

  SelectionStats st;
  const auto second = index.Select(td, &st);  // byte-identical trapdoor
  EXPECT_EQ(Sorted(second), Sorted(first));
  EXPECT_EQ(st.qpf_uses, 0u);
  EXPECT_EQ(db.uses(), uses);
  EXPECT_EQ(reg.GetCounter("qfilter.probes")->value(), probes);
  EXPECT_EQ(reg.GetCounter("probe_sched.requests")->value(), requests);
}

// ----------------------------------------------------------------- replay

TEST(ProbeSchedTest, TranscriptReplayStaysExactWithSchedulerOn) {
  // The scheduler's EvalMany rounds must replay deterministically through
  // the transcript (same seed → same pivots → same lane order), including
  // speculative prefetch lanes.
  Rng data_rng(41);
  const PlainTable plain = RandomTable(400, 1, &data_rng, 0, 1000);
  auto live_db = CipherbaseEdbms::FromPlainTable(kSeed, plain);

  edbms::QpfTranscript transcript;
  edbms::RecordingEdbms recorder(&live_db, &transcript);
  std::vector<Trapdoor> tds;
  std::vector<std::vector<TupleId>> live_results;
  {
    PrkbIndex index(&recorder, PrkbOptions{.seed = 53});
    index.EnableAttr(0);
    workload::QueryGen gen(0, 1000, 59);
    for (int q = 0; q < 40; ++q) {
      const auto p = gen.RandomComparison(0);
      tds.push_back(live_db.MakeComparison(p.attr, p.op, p.lo));
      live_results.push_back(Sorted(index.Select(tds.back())));
    }
  }

  edbms::ReplayEdbms replay(live_db.num_attrs(), live_db.num_rows(),
                            transcript);
  PrkbIndex replay_index(&replay, PrkbOptions{.seed = 53});
  replay_index.EnableAttr(0);
  for (size_t q = 0; q < tds.size(); ++q) {
    EXPECT_EQ(Sorted(replay_index.Select(tds[q])), live_results[q])
        << "query " << q;
  }
  EXPECT_EQ(replay.misses(), 0u);
}

}  // namespace
}  // namespace prkb::core
