#include <vector>

#include "edbms/cipherbase_qpf.h"
#include "edbms/sdb_qpf.h"
#include "edbms/service_provider.h"
#include "gtest/gtest.h"

namespace prkb::edbms {
namespace {

constexpr uint64_t kSeed = 0xC0FFEE;

PlainTable SmallTable() {
  PlainTable t(2);
  t.AddRow({10, 100});
  t.AddRow({20, 50});
  t.AddRow({-5, 200});
  t.AddRow({20, 0});
  return t;
}

// ------------------------------------------------------------- Predicates

TEST(PlainPredicateTest, ComparisonSemantics) {
  PlainPredicate p{.attr = 0, .op = CompareOp::kLt, .lo = 10};
  EXPECT_TRUE(p.Satisfies(9));
  EXPECT_FALSE(p.Satisfies(10));
  p.op = CompareOp::kLe;
  EXPECT_TRUE(p.Satisfies(10));
  p.op = CompareOp::kGt;
  EXPECT_FALSE(p.Satisfies(10));
  EXPECT_TRUE(p.Satisfies(11));
  p.op = CompareOp::kGe;
  EXPECT_TRUE(p.Satisfies(10));
}

TEST(PlainPredicateTest, BetweenIsInclusive) {
  PlainPredicate p{.attr = 0, .kind = PredicateKind::kBetween, .lo = 5,
                   .hi = 8};
  EXPECT_FALSE(p.Satisfies(4));
  EXPECT_TRUE(p.Satisfies(5));
  EXPECT_TRUE(p.Satisfies(8));
  EXPECT_FALSE(p.Satisfies(9));
}

TEST(PlainPredicateTest, ToStringMentionsOperator) {
  PlainPredicate p{.attr = 1, .op = CompareOp::kGe, .lo = 42};
  EXPECT_EQ(p.ToString(), "C1 >= 42");
  PlainPredicate b{.attr = 0, .kind = PredicateKind::kBetween, .lo = 1,
                   .hi = 2};
  EXPECT_EQ(b.ToString(), "C0 BETWEEN 1 AND 2");
}

// ------------------------------------------------------------- Encryption

TEST(EncryptionTest, ValueRoundTrip) {
  DataOwner owner(kSeed);
  for (Value v : {Value{0}, Value{1}, Value{-1}, Value{1LL << 40},
                  Value{-(1LL << 40)}}) {
    const auto row = owner.EncryptRow({v});
    EXPECT_EQ(owner.DecryptValue(row[0]), v);
  }
}

TEST(EncryptionTest, EqualPlaintextsGetDistinctCiphertexts) {
  DataOwner owner(kSeed);
  const auto a = owner.EncryptRow({42});
  const auto b = owner.EncryptRow({42});
  EXPECT_NE(a[0].nonce, b[0].nonce);
  EXPECT_NE(a[0].ct, b[0].ct);  // distinct nonces => distinct streams
}

TEST(EncryptionTest, TrustedMachineSharesKeys) {
  DataOwner owner(kSeed);
  TrustedMachine tm(kSeed);
  const auto row = owner.EncryptRow({1234});
  EXPECT_EQ(tm.DecryptValue(row[0]), 1234);
}

TEST(EncryptionTest, TamperedTrapdoorIsRejected) {
  DataOwner owner(kSeed);
  TrustedMachine tm(kSeed);
  Trapdoor td = owner.MakeComparison(0, CompareOp::kLt, 7);
  td.blob[10] ^= 0xFF;
  const auto cell = owner.EncryptRow({1})[0];
  bool ok = true;
  tm.EvalPredicate(td, cell, &ok);
  EXPECT_FALSE(ok);
}

TEST(EncryptionTest, TrapdoorBoundToAttrAndKind) {
  DataOwner owner(kSeed);
  TrustedMachine tm(kSeed);
  Trapdoor td = owner.MakeComparison(0, CompareOp::kLt, 7);
  td.attr = 1;  // relabeled by a malicious SP
  bool ok = true;
  tm.EvalPredicate(td, owner.EncryptRow({1, 1})[0], &ok);
  EXPECT_FALSE(ok);
}

// --------------------------------------------------------------- Backends

template <typename T>
class EdbmsBackendTest : public ::testing::Test {
 public:
  static T MakeDb(const PlainTable& plain) {
    return T::FromPlainTable(kSeed, plain);
  }
};

using Backends = ::testing::Types<CipherbaseEdbms, SdbEdbms>;
TYPED_TEST_SUITE(EdbmsBackendTest, Backends);

TYPED_TEST(EdbmsBackendTest, QpfMatchesPlainEvaluation) {
  const PlainTable plain = SmallTable();
  auto db = TestFixture::MakeDb(plain);
  struct Case {
    AttrId attr;
    CompareOp op;
    Value c;
  };
  const Case cases[] = {
      {0, CompareOp::kLt, 15}, {0, CompareOp::kGt, 10},
      {0, CompareOp::kLe, 20}, {0, CompareOp::kGe, 20},
      {1, CompareOp::kLt, 60}, {1, CompareOp::kGt, 100},
  };
  for (const auto& c : cases) {
    const Trapdoor td = db.MakeComparison(c.attr, c.op, c.c);
    PlainPredicate p{.attr = c.attr, .op = c.op, .lo = c.c};
    for (TupleId tid = 0; tid < plain.num_rows(); ++tid) {
      EXPECT_EQ(db.Eval(td, tid), p.Satisfies(plain.at(c.attr, tid)))
          << p.ToString() << " tid=" << tid;
    }
  }
}

TYPED_TEST(EdbmsBackendTest, BetweenQpfMatchesPlainEvaluation) {
  const PlainTable plain = SmallTable();
  auto db = TestFixture::MakeDb(plain);
  const Trapdoor td = db.MakeBetween(1, 40, 120);
  PlainPredicate p{.attr = 1, .kind = PredicateKind::kBetween, .lo = 40,
                   .hi = 120};
  for (TupleId tid = 0; tid < plain.num_rows(); ++tid) {
    EXPECT_EQ(db.Eval(td, tid), p.Satisfies(plain.at(1, tid)));
  }
}

TYPED_TEST(EdbmsBackendTest, UsesCounterCountsEveryEval) {
  auto db = TestFixture::MakeDb(SmallTable());
  const Trapdoor td = db.MakeComparison(0, CompareOp::kLt, 15);
  EXPECT_EQ(db.uses(), 0u);
  db.Eval(td, 0);
  db.Eval(td, 1);
  EXPECT_EQ(db.uses(), 2u);
  db.ResetUses();
  EXPECT_EQ(db.uses(), 0u);
}

TYPED_TEST(EdbmsBackendTest, InsertAndDelete) {
  auto db = TestFixture::MakeDb(SmallTable());
  const TupleId tid = db.Insert({99, 1});
  EXPECT_EQ(tid, 4u);
  EXPECT_TRUE(db.IsLive(tid));
  const Trapdoor td = db.MakeComparison(0, CompareOp::kGt, 50);
  EXPECT_TRUE(db.Eval(td, tid));
  db.Delete(tid);
  EXPECT_FALSE(db.IsLive(tid));
}

TYPED_TEST(EdbmsBackendTest, StoredBytesGrowWithRows) {
  auto db = TestFixture::MakeDb(SmallTable());
  const size_t before = db.StoredBytes();
  db.Insert({1, 2});
  EXPECT_GT(db.StoredBytes(), before);
}

// ---------------------------------------------------------------- Baseline

TEST(BaselineScannerTest, SelectMatchesGroundTruth) {
  const PlainTable plain = SmallTable();
  auto db = CipherbaseEdbms::FromPlainTable(kSeed, plain);
  BaselineScanner scan(&db);
  const Trapdoor td = db.MakeComparison(0, CompareOp::kGe, 10);
  SelectionStats stats;
  const auto got = scan.Select(td, &stats);
  EXPECT_EQ(got, (std::vector<TupleId>{0, 1, 3}));
  EXPECT_EQ(stats.qpf_uses, plain.num_rows());
}

TEST(BaselineScannerTest, SkipsTombstonedRows) {
  auto db = CipherbaseEdbms::FromPlainTable(kSeed, SmallTable());
  db.Delete(1);
  BaselineScanner scan(&db);
  const Trapdoor td = db.MakeComparison(0, CompareOp::kGe, 10);
  EXPECT_EQ(scan.Select(td), (std::vector<TupleId>{0, 3}));
}

TEST(BaselineScannerTest, ConjunctionShortCircuits) {
  const PlainTable plain = SmallTable();
  auto db = CipherbaseEdbms::FromPlainTable(kSeed, plain);
  BaselineScanner scan(&db);
  // First predicate matches only tuple 2; second is never evaluated for the
  // other three tuples.
  const Trapdoor a = db.MakeComparison(0, CompareOp::kLt, 0);
  const Trapdoor b = db.MakeComparison(1, CompareOp::kGt, 100);
  SelectionStats stats;
  const auto got = scan.SelectConjunction({a, b}, &stats);
  EXPECT_EQ(got, (std::vector<TupleId>{2}));
  EXPECT_EQ(stats.qpf_uses, 4u + 1u);
}

TEST(SdbEdbmsTest, TracksRoundsAndBytes) {
  auto db = SdbEdbms::FromPlainTable(kSeed, SmallTable());
  const Trapdoor td = db.MakeComparison(0, CompareOp::kLt, 100);
  db.Eval(td, 0);
  db.Eval(td, 1);
  EXPECT_EQ(db.rounds(), 2u);
  EXPECT_GT(db.bytes_transferred(), 0u);
}

}  // namespace
}  // namespace prkb::edbms
