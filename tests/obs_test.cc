// Unit tests for the obs subsystem: MetricsRegistry instruments under
// concurrency, histogram bucket boundaries, and the span tracer's ring
// buffer semantics.

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace prkb::obs {
namespace {

// Registry instruments are process-global; every test uses its own metric
// names so tests stay independent regardless of execution order.

TEST(CounterTest, ConcurrentIncrementsSumExactly) {
  Counter* c = MetricsRegistry::Global().GetCounter("test.concurrent_sum");
  constexpr int kThreads = 8;
  constexpr int kIncrementsPerThread = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (int i = 0; i < kIncrementsPerThread; ++i) c->Add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c->value(),
            static_cast<uint64_t>(kThreads) * kIncrementsPerThread);
}

TEST(CounterTest, RegistryReturnsStablePointers) {
  Counter* a = MetricsRegistry::Global().GetCounter("test.stable");
  Counter* b = MetricsRegistry::Global().GetCounter("test.stable");
  EXPECT_EQ(a, b);
  // Registering more instruments must not move existing ones.
  for (int i = 0; i < 100; ++i) {
    MetricsRegistry::Global().GetCounter("test.stable_filler" +
                                         std::to_string(i));
  }
  EXPECT_EQ(MetricsRegistry::Global().GetCounter("test.stable"), a);
}

TEST(GaugeTest, TracksValueAndHighWaterMark) {
  Gauge* g = MetricsRegistry::Global().GetGauge("test.gauge");
  g->Set(5);
  g->Set(12);
  g->Set(3);
  EXPECT_EQ(g->value(), 3);
  EXPECT_EQ(g->max(), 12);
  g->Add(-10);
  EXPECT_EQ(g->value(), -7);
  EXPECT_EQ(g->max(), 12);
}

TEST(HistogramTest, BucketBoundariesArePowersOfTwo) {
  // Bucket 0 holds the value 0; bucket b >= 1 holds [2^(b-1), 2^b - 1].
  EXPECT_EQ(LatencyHistogram::BucketOf(0), 0u);
  EXPECT_EQ(LatencyHistogram::BucketOf(1), 1u);
  EXPECT_EQ(LatencyHistogram::BucketOf(2), 2u);
  EXPECT_EQ(LatencyHistogram::BucketOf(3), 2u);
  EXPECT_EQ(LatencyHistogram::BucketOf(4), 3u);
  EXPECT_EQ(LatencyHistogram::BucketOf(7), 3u);
  EXPECT_EQ(LatencyHistogram::BucketOf(8), 4u);
  EXPECT_EQ(LatencyHistogram::BucketOf(1023), 10u);
  EXPECT_EQ(LatencyHistogram::BucketOf(1024), 11u);
  // Everything beyond the last boundary lands in the final bucket.
  EXPECT_EQ(LatencyHistogram::BucketOf(~uint64_t{0}),
            LatencyHistogram::kBuckets - 1);

  EXPECT_EQ(LatencyHistogram::BucketUpper(0), 0u);
  EXPECT_EQ(LatencyHistogram::BucketUpper(1), 1u);
  EXPECT_EQ(LatencyHistogram::BucketUpper(3), 7u);
  EXPECT_EQ(LatencyHistogram::BucketUpper(10), 1023u);
}

TEST(HistogramTest, RecordsCountSumMaxAndBuckets) {
  LatencyHistogram* h =
      MetricsRegistry::Global().GetHistogram("test.hist_basic");
  for (uint64_t v : {0, 1, 2, 3, 4, 7, 8, 100}) h->Record(v);
  EXPECT_EQ(h->count(), 8u);
  EXPECT_EQ(h->sum(), 125u);
  EXPECT_EQ(h->max(), 100u);
  EXPECT_EQ(h->bucket(0), 1u);  // 0
  EXPECT_EQ(h->bucket(1), 1u);  // 1
  EXPECT_EQ(h->bucket(2), 2u);  // 2, 3
  EXPECT_EQ(h->bucket(3), 2u);  // 4, 7
  EXPECT_EQ(h->bucket(4), 1u);  // 8
  EXPECT_EQ(h->bucket(7), 1u);  // 100 in [64, 127]
}

TEST(HistogramTest, ConcurrentRecordsSumExactly) {
  LatencyHistogram* h =
      MetricsRegistry::Global().GetHistogram("test.hist_concurrent");
  constexpr int kThreads = 8;
  constexpr int kRecordsPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h] {
      for (int i = 0; i < kRecordsPerThread; ++i) {
        h->Record(static_cast<uint64_t>(i % 17));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h->count(),
            static_cast<uint64_t>(kThreads) * kRecordsPerThread);
  uint64_t bucket_total = 0;
  for (size_t b = 0; b < LatencyHistogram::kBuckets; ++b) {
    bucket_total += h->bucket(b);
  }
  EXPECT_EQ(bucket_total, h->count());
}

TEST(SnapshotTest, PercentileIsBucketUpperBound) {
  LatencyHistogram* h =
      MetricsRegistry::Global().GetHistogram("test.hist_pctl");
  for (int i = 0; i < 99; ++i) h->Record(1);
  h->Record(1000);
  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  const HistogramSnapshot* hs = nullptr;
  for (const auto& s : snap.histograms) {
    if (s.name == "test.hist_pctl") hs = &s;
  }
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->ApproxPercentile(0.5), 1u);
  // 1000 lands in bucket [512, 1023]; its upper bound is the p100 answer.
  EXPECT_EQ(hs->ApproxPercentile(1.0), 1023u);
}

TEST(SnapshotTest, ResetZeroesButKeepsRegistrations) {
  Counter* c = MetricsRegistry::Global().GetCounter("test.reset_me");
  c->Add(41);
  MetricsRegistry::Global().Reset();
  EXPECT_EQ(c->value(), 0u);
  // Same pointer still registered and usable after Reset.
  EXPECT_EQ(MetricsRegistry::Global().GetCounter("test.reset_me"), c);
  c->Add(1);
  EXPECT_EQ(c->value(), 1u);
}

TEST(TracerTest, RecordsNestedSpans) {
  ObsTracer& tracer = ObsTracer::Global();
  tracer.Enable(1024);
  {
    const ObsTracer::Span outer("test.outer");
    const ObsTracer::Span inner("test.inner");
  }
  const auto events = tracer.Snapshot();
  tracer.Disable();
  ASSERT_EQ(events.size(), 2u);
  // Spans record at destruction, so the inner span lands first; the outer
  // one must fully contain it on the timeline.
  EXPECT_STREQ(events[0].name, "test.inner");
  EXPECT_STREQ(events[1].name, "test.outer");
  EXPECT_LE(events[1].start_ns, events[0].start_ns);
  EXPECT_GE(events[1].start_ns + events[1].dur_ns,
            events[0].start_ns + events[0].dur_ns);
}

TEST(TracerTest, RingWrapsAndCountsDropped) {
  ObsTracer& tracer = ObsTracer::Global();
  tracer.Enable(/*capacity=*/8);
  for (int i = 0; i < 20; ++i) {
    const ObsTracer::Span span("test.wrap");
  }
  const auto events = tracer.Snapshot();
  EXPECT_EQ(events.size(), 8u);
  EXPECT_EQ(tracer.recorded(), 20u);
  EXPECT_EQ(tracer.dropped(), 12u);
  // Survivors are the newest events, in record order.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GT(events[i].seq, events[i - 1].seq);
  }
  EXPECT_EQ(events.back().seq, 19u);
  tracer.Disable();
}

TEST(TracerTest, DisabledSpansRecordNothing) {
  ObsTracer& tracer = ObsTracer::Global();
  tracer.Enable(64);
  tracer.Disable();
  {
    const ObsTracer::Span span("test.disabled");
  }
  tracer.Enable(64);  // Enable clears the buffer
  EXPECT_TRUE(tracer.Snapshot().empty());
  tracer.Disable();
}

TEST(TracerTest, ChromeExportIsWellFormed) {
  ObsTracer& tracer = ObsTracer::Global();
  tracer.Enable(64);
  {
    const ObsTracer::Span span("test.export");
  }
  const std::string path = ::testing::TempDir() + "/obs_trace.json";
  ASSERT_TRUE(tracer.ExportChromeTrace(path));
  tracer.Disable();

  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  std::fclose(f);
  EXPECT_NE(content.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(content.find("\"test.export\""), std::string::npos);
  EXPECT_NE(content.find("\"ph\":\"X\""), std::string::npos);
}

}  // namespace
}  // namespace prkb::obs
