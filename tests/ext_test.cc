#include <algorithm>
#include <vector>

#include "edbms/cipherbase_qpf.h"
#include "ext/minmax.h"
#include "ext/skyline.h"
#include "gtest/gtest.h"
#include "prkb/selection.h"
#include "tests/test_util.h"
#include "workload/query_gen.h"

namespace prkb::ext {
namespace {

using edbms::CipherbaseEdbms;
using edbms::CompareOp;
using edbms::PlainTable;
using edbms::TupleId;
using edbms::Value;
using testutil::RandomTable;

constexpr uint64_t kSeed = 606;

/// Warms a chain with random comparison queries.
void Warm(core::PrkbIndex* index, CipherbaseEdbms* db, edbms::AttrId attr,
          Value domain_hi, int queries, uint64_t seed) {
  Rng rng(seed);
  for (int i = 0; i < queries; ++i) {
    index->Select(db->MakeComparison(attr, CompareOp::kLt,
                                     rng.UniformInt64(0, domain_hi)));
  }
}

TupleId OracleMin(const PlainTable& plain, edbms::AttrId attr) {
  TupleId best = 0;
  for (TupleId t = 1; t < plain.num_rows(); ++t) {
    if (plain.at(attr, t) < plain.at(attr, best)) best = t;
  }
  return best;
}

TupleId OracleMax(const PlainTable& plain, edbms::AttrId attr) {
  TupleId best = 0;
  for (TupleId t = 1; t < plain.num_rows(); ++t) {
    if (plain.at(attr, t) > plain.at(attr, best)) best = t;
  }
  return best;
}

TEST(MinMaxTest, FindsExtremesOnWarmChain) {
  Rng data_rng(1);
  PlainTable plain = RandomTable(1000, 1, &data_rng, 0, 1000000);
  auto db = CipherbaseEdbms::FromPlainTable(kSeed, plain);
  core::PrkbIndex index(&db);
  index.EnableAttr(0);
  Warm(&index, &db, 0, 1000000, 80, 2);

  const auto mn = FindMin(index, &db, 0);
  const auto mx = FindMax(index, &db, 0);
  ASSERT_TRUE(mn.found);
  ASSERT_TRUE(mx.found);
  EXPECT_EQ(plain.at(0, mn.tid), plain.at(0, OracleMin(plain, 0)));
  EXPECT_EQ(plain.at(0, mx.tid), plain.at(0, OracleMax(plain, 0)));
  // The chain prunes the TM work to the two end partitions.
  EXPECT_LT(mn.tm_decrypts, 1000u / 2);
}

TEST(MinMaxTest, FallsBackToFullScanWithoutIndex) {
  Rng data_rng(2);
  PlainTable plain = RandomTable(50, 1, &data_rng, 0, 100);
  auto db = CipherbaseEdbms::FromPlainTable(kSeed, plain);
  core::PrkbIndex index(&db);  // attr not enabled
  const auto mn = FindMin(index, &db, 0);
  ASSERT_TRUE(mn.found);
  EXPECT_EQ(plain.at(0, mn.tid), plain.at(0, OracleMin(plain, 0)));
  EXPECT_EQ(mn.tm_decrypts, 50u);
}

TEST(MinMaxTest, EmptyTableReportsNotFound) {
  PlainTable plain(1);
  auto db = CipherbaseEdbms::FromPlainTable(kSeed, plain);
  core::PrkbIndex index(&db);
  index.EnableAttr(0);
  EXPECT_FALSE(FindMin(index, &db, 0).found);
}

// Oracle skyline: minimal in both attributes, strict dominance.
std::vector<TupleId> OracleSkyline(const PlainTable& plain) {
  std::vector<TupleId> out;
  for (TupleId a = 0; a < plain.num_rows(); ++a) {
    bool dominated = false;
    for (TupleId b = 0; b < plain.num_rows() && !dominated; ++b) {
      if (a == b) continue;
      const bool le_x = plain.at(0, b) <= plain.at(0, a);
      const bool le_y = plain.at(1, b) <= plain.at(1, a);
      const bool lt_any =
          plain.at(0, b) < plain.at(0, a) || plain.at(1, b) < plain.at(1, a);
      dominated = le_x && le_y && lt_any;
    }
    if (!dominated) out.push_back(a);
  }
  return out;
}

/// Determines chain orientation from ground truth (stands in for the DO).
bool MinAtFront(const core::Pop& pop, const std::vector<Value>& column) {
  if (pop.k() < 2) return true;
  Value front_min = column[pop.members_at(0).Select(0)];
  Value back_min = column[pop.members_at(pop.k() - 1).Select(0)];
  return front_min < back_min;
}

class SkylineSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SkylineSweepTest, MatchesOracleOnWarmGrids) {
  const uint64_t seed = GetParam();
  Rng data_rng(seed);
  PlainTable plain = RandomTable(300, 2, &data_rng, 0, 10000);
  auto db = CipherbaseEdbms::FromPlainTable(kSeed, plain);
  core::PrkbIndex index(&db);
  index.EnableAttr(0);
  index.EnableAttr(1);
  Warm(&index, &db, 0, 10000, 40, seed * 3 + 1);
  Warm(&index, &db, 1, 10000, 40, seed * 3 + 2);

  const auto res = SkylineMinMin(
      index, &db, 0, 1, MinAtFront(index.pop(0), plain.column(0)),
      MinAtFront(index.pop(1), plain.column(1)));
  auto got = res.skyline;
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, OracleSkyline(plain));
  // Grid pruning must beat the trivial all-candidates bound.
  EXPECT_LT(res.candidates, 300u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SkylineSweepTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(SkylineTest, ColdGridDegeneratesToFullCandidates) {
  Rng data_rng(7);
  PlainTable plain = RandomTable(50, 2, &data_rng, 0, 100);
  auto db = CipherbaseEdbms::FromPlainTable(kSeed, plain);
  core::PrkbIndex index(&db);
  index.EnableAttr(0);
  index.EnableAttr(1);
  const auto res = SkylineMinMin(index, &db, 0, 1, true, true);
  EXPECT_EQ(res.candidates, 50u);  // k=1 on both: nothing can be pruned
  auto got = res.skyline;
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, OracleSkyline(plain));
}

TEST(SkylineTest, DuplicatePointsAllSurvive) {
  PlainTable plain(2);
  plain.AddRow({1, 9});
  plain.AddRow({1, 9});
  plain.AddRow({5, 5});
  plain.AddRow({9, 1});
  plain.AddRow({7, 7});  // dominated by (5,5)
  auto db = CipherbaseEdbms::FromPlainTable(kSeed, plain);
  core::PrkbIndex index(&db);
  index.EnableAttr(0);
  index.EnableAttr(1);
  const auto res = SkylineMinMin(index, &db, 0, 1, true, true);
  auto got = res.skyline;
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<TupleId>{0, 1, 2, 3}));
}

}  // namespace
}  // namespace prkb::ext
