// The exec/ physical-plan layer: cost-model golden values, plan rendering,
// executor actual-cost capture, read-only plan execution, and — the point of
// a cost-based planner — that the estimated ranking of routes agrees with
// the measured QPF spend on concrete workloads.

#include <string>
#include <vector>

#include "edbms/cipherbase_qpf.h"
#include "exec/cost.h"
#include "exec/executor.h"
#include "exec/plan.h"
#include "gtest/gtest.h"
#include "prkb/selection.h"
#include "query/planner.h"
#include "tests/test_util.h"

namespace prkb::exec {
namespace {

using edbms::CipherbaseEdbms;
using edbms::CompareOp;
using edbms::PlainPredicate;
using edbms::PlainTable;
using edbms::Trapdoor;
using edbms::TupleId;
using testutil::OracleSelectAll;
using testutil::Sorted;

// ------------------------------------------------------------- Cost model

TEST(CostModelTest, CeilLgGoldenValues) {
  EXPECT_EQ(CeilLg(0), 0.0);
  EXPECT_EQ(CeilLg(1), 0.0);
  EXPECT_EQ(CeilLg(2), 1.0);
  EXPECT_EQ(CeilLg(3), 2.0);
  EXPECT_EQ(CeilLg(8), 3.0);
  EXPECT_EQ(CeilLg(9), 4.0);
  EXPECT_EQ(CeilLg(1024), 10.0);
}

TEST(CostModelTest, ComparisonGoldenValues) {
  // Developed chain: QFilter ≈ 2+⌈lg k⌉ probes, QScan ≈ 1.5·n/k (early
  // stop halfway through the second NS partition on average).
  const CostEstimate c = EstimateComparison(16, 1600);
  EXPECT_DOUBLE_EQ(c.probes, 6.0);
  EXPECT_DOUBLE_EQ(c.scans, 150.0);
  EXPECT_DOUBLE_EQ(c.Total(), 156.0);

  // Cold chain (k = 1): one probe, then the whole table.
  const CostEstimate cold = EstimateComparison(1, 200);
  EXPECT_DOUBLE_EQ(cold.probes, 1.0);
  EXPECT_DOUBLE_EQ(cold.scans, 200.0);

  // Probe count can never exceed k (one sample per partition).
  EXPECT_DOUBLE_EQ(EstimateComparison(3, 300).probes, 3.0);
}

TEST(CostModelTest, BetweenGoldenValues) {
  // Appendix A: anchor hunt + two binary searches ≈ 4+2⌈lg k⌉ probes, then
  // up to four end partitions ≈ 3·n/k scan evaluations.
  const CostEstimate b = EstimateBetween(16, 1600);
  EXPECT_DOUBLE_EQ(b.probes, 12.0);
  EXPECT_DOUBLE_EQ(b.scans, 300.0);
  EXPECT_DOUBLE_EQ(EstimateBetween(1, 200).probes, 1.0);
  EXPECT_DOUBLE_EQ(EstimateBetween(1, 200).scans, 200.0);
}

TEST(CostModelTest, MdGridGoldenValues) {
  // Per dimension: QFilter probes; bands of ≈ 2 partitions each, with the
  // cross-dimension short circuit modelled as half an evaluation per tuple.
  const CostEstimate md = EstimateMdGrid({MdDim{16, 1600}, MdDim{4, 1600}});
  EXPECT_DOUBLE_EQ(md.probes, 10.0);   // (2+4) + min(4, 2+2)
  EXPECT_DOUBLE_EQ(md.scans, 500.0);   // 0.5·(200 + 800)
  EXPECT_DOUBLE_EQ(EstimateMdGrid({}).Total(), 0.0);
}

TEST(CostModelTest, LinearScanGoldenValues) {
  const CostEstimate lin = EstimateLinearScan(777);
  EXPECT_DOUBLE_EQ(lin.probes, 0.0);
  EXPECT_DOUBLE_EQ(lin.scans, 777.0);
}

TEST(CostModelTest, CostsShrinkAsChainsDevelop) {
  // The whole premise of the PRKB: more past cuts → cheaper selections.
  EXPECT_LT(EstimateComparison(64, 2000).Total(),
            EstimateComparison(4, 2000).Total());
  EXPECT_LT(EstimateBetween(64, 2000).Total(),
            EstimateBetween(4, 2000).Total());
  EXPECT_LT(EstimateMdGrid({MdDim{64, 2000}, MdDim{64, 2000}}).Total(),
            EstimateMdGrid({MdDim{4, 2000}, MdDim{4, 2000}}).Total());
}

TEST(CostModelTest, DegenerateChainShapes) {
  // k = 0 (attribute never enabled): the estimators return the zero
  // estimate rather than dividing by the partition count.
  EXPECT_DOUBLE_EQ(EstimateComparison(0, 1000).Total(), 0.0);
  EXPECT_DOUBLE_EQ(EstimateComparison(0, 1000).round_trips, 0.0);
  EXPECT_DOUBLE_EQ(EstimateBetween(0, 1000).Total(), 0.0);
  EXPECT_DOUBLE_EQ(EstimateBufferFlush(0, 16).Total(), 0.0);
  EXPECT_DOUBLE_EQ(EstimateBufferFlush(8, 0).probes, 0.0);

  // Empty table on a bootstrapped chain: nothing to probe or scan beyond
  // the capped bounds, and never a negative or NaN component.
  const CostEstimate empty = EstimateComparison(1, 0);
  EXPECT_DOUBLE_EQ(empty.scans, 0.0);
  EXPECT_DOUBLE_EQ(empty.probes, 1.0);
  EXPECT_DOUBLE_EQ(EstimateBetween(1, 0).scans, 0.0);
}

TEST(CostModelTest, FanoutBelowTwoClampsToBinary) {
  // m = 1 would make every formula's (m−1) term vanish and log_m diverge;
  // the model clamps to the paper's binary search instead.
  CostConstants c = CostConstants::Defaults();
  c.probe_fanout = 1.0;
  const CostEstimate one = EstimateComparison(16, 1600, c);
  c.probe_fanout = 2.0;
  const CostEstimate two = EstimateComparison(16, 1600, c);
  EXPECT_DOUBLE_EQ(one.probes, two.probes);
  EXPECT_DOUBLE_EQ(one.round_trips, two.round_trips);
  EXPECT_DOUBLE_EQ(EstimateBufferFlush(8, 16, c).round_trips,
                   CeilLogM(16, 2.0));

  EXPECT_DOUBLE_EQ(CeilLogM(0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(CeilLogM(1, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(CeilLogM(16, 1.0), 4.0);
}

// ----------------------------------------------------------- Plan render

TEST(PlanRenderTest, ShowsEstimatesAndActuals) {
  Plan plan;
  plan.summary = "prkb-sd";
  plan.root = PlanNode(PlanOp::kPredicateSelect, 3, 0);
  plan.root.detail = "temp < 60";
  plan.root.estimated = CostEstimate{6.0, 150.0, 155.0};
  plan.root.has_estimate = true;
  PlanNode probe(PlanOp::kQFilterProbe, 3, 0);
  probe.actual.executed = true;
  probe.actual.qpf_uses = 7;
  probe.actual.qpf_round_trips = 7;
  plan.root.children.push_back(probe);
  PlanNode lookup(PlanOp::kFastPathLookup, 3, 0);
  lookup.actual.executed = true;
  lookup.actual.cache_hit = true;
  plan.root.children.push_back(lookup);

  const std::string out = plan.Render();
  EXPECT_NE(out.find("plan: prkb-sd"), std::string::npos);
  EXPECT_NE(out.find("PredicateSelect attr=3 [temp < 60]"), std::string::npos);
  EXPECT_NE(out.find("(est 6.0 probes + 150.0 scans, 155.0 trips)"),
            std::string::npos);
  EXPECT_NE(out.find("  QFilterProbe attr=3  (actual 7 qpf, 7 round trips)"),
            std::string::npos);
  EXPECT_NE(out.find("(actual cache hit, 0 qpf)"), std::string::npos);
}

// -------------------------------------------------------------- Executor

class ExecutorTest : public ::testing::Test {
 protected:
  static constexpr size_t kRows = 400;

  ExecutorTest()
      : plain_(MakePlain()),
        db_(CipherbaseEdbms::FromPlainTable(7, plain_)),
        index_(&db_) {
    index_.EnableAttr(0);
    index_.EnableAttr(1);
  }

  static PlainTable MakePlain() {
    Rng rng(21);
    return testutil::RandomTable(kRows, 2, &rng, 0, 1000);
  }

  PlainTable plain_;
  CipherbaseEdbms db_;
  core::PrkbIndex index_;
};

TEST_F(ExecutorTest, SingleSelectPlanRecordsStageActuals) {
  const Trapdoor td = db_.MakeComparison(0, CompareOp::kLt, 500);
  Plan plan;
  plan.BorrowTrapdoor(&td);
  BuildSingleSelectPlan(index_, &plan, /*estimate=*/true);
  ASSERT_EQ(plan.root.op, PlanOp::kPredicateSelect);
  EXPECT_TRUE(plan.root.has_estimate);

  edbms::SelectionStats stats;
  const std::vector<TupleId> rows = Executor(&index_).Run(&plan, &stats);
  EXPECT_EQ(Sorted(rows),
            OracleSelectAll(plain_,
                            {{.attr = 0, .op = CompareOp::kLt, .lo = 500}}));

  EXPECT_TRUE(plan.root.actual.executed);
  EXPECT_EQ(plan.root.actual.qpf_uses, stats.qpf_uses);
  const PlanNode* probe = plan.root.Child(PlanOp::kQFilterProbe);
  const PlanNode* scan = plan.root.Child(PlanOp::kPartitionScan);
  ASSERT_NE(probe, nullptr);
  ASSERT_NE(scan, nullptr);
  EXPECT_GT(probe->actual.qpf_uses, 0u);
  EXPECT_GT(scan->actual.qpf_uses, 0u);
  // The per-stage split is exhaustive.
  EXPECT_EQ(probe->actual.qpf_uses + scan->actual.qpf_uses, stats.qpf_uses);
}

TEST_F(ExecutorTest, ReadOnlyPlanRefusesFreshPredicateThenServesRepeat) {
  const Trapdoor td = db_.MakeComparison(0, CompareOp::kLt, 300);
  std::vector<TupleId> out;

  // Fresh predicate: answering would cut the chain — must refuse without
  // spending QPF.
  const uint64_t uses0 = db_.uses();
  EXPECT_FALSE(index_.TrySelectShared(td, &out));
  EXPECT_EQ(db_.uses(), uses0);

  // Exclusive-path answer caches the cut...
  const std::vector<TupleId> rows = index_.Select(td);

  // ...so the byte-identical trapdoor is now provably read-only.
  const uint64_t uses1 = db_.uses();
  ASSERT_TRUE(index_.TrySelectShared(td, &out));
  EXPECT_EQ(db_.uses(), uses1);
  EXPECT_EQ(Sorted(out), Sorted(rows));
}

// ------------------------------------------- Estimated vs measured routes

/// Twin deployments with identical seeds stay byte-identical in QPF and RNG
/// behaviour, so each can measure one route of the same logical query.
struct Twin {
  explicit Twin(const PlainTable& plain)
      : db(CipherbaseEdbms::FromPlainTable(11, plain)), index(&db) {
    index.EnableAttr(0);
    index.EnableAttr(1);
  }
  CipherbaseEdbms db;
  core::PrkbIndex index;
};

TEST(RouteChoiceTest, PlannerPicksMeasuredCheaperRouteOnSkewedChains) {
  Rng rng(31);
  const PlainTable plain = testutil::RandomTable(600, 2, &rng, 0, 2000);
  Twin md_twin(plain), sd_twin(plain), est_twin(plain);

  // Skew the chains: attribute 0 well developed, attribute 1 cold.
  for (core::PrkbIndex* idx :
       {&md_twin.index, &sd_twin.index, &est_twin.index}) {
    for (int i = 1; i <= 8; ++i) {
      idx->Select(idx->db()->MakeComparison(0, CompareOp::kLt, i * 240));
    }
  }

  // The logical query: temp > 800 AND humidity < 1200 (one-sided, distinct
  // attributes — MD-capable, never collapsed).
  const auto make_tds = [](Twin* t) {
    return std::vector<Trapdoor>{
        t->db.MakeComparison(0, CompareOp::kGt, 800),
        t->db.MakeComparison(1, CompareOp::kLt, 1200),
    };
  };

  // Estimated ranking (pure: no QPF, no RNG, no cache mutation).
  std::vector<Trapdoor> est_tds = make_tds(&est_twin);
  Plan md_plan;
  for (const Trapdoor& td : est_tds) md_plan.BorrowTrapdoor(&td);
  BuildMdGridPlan(est_twin.index, &md_plan, /*estimate=*/true);
  Plan sd_plan;
  for (const Trapdoor& td : est_tds) sd_plan.BorrowTrapdoor(&td);
  BuildSdPlusPlan(est_twin.index, &sd_plan, /*estimate=*/true);
  const bool estimate_prefers_md =
      md_plan.root.estimated.Total() <= sd_plan.root.estimated.Total();

  // Measured spend of each route on its own twin.
  const std::vector<Trapdoor> md_tds = make_tds(&md_twin);
  const uint64_t md_before = md_twin.db.uses();
  const auto md_rows = md_twin.index.SelectRangeMd(md_tds);
  const uint64_t md_uses = md_twin.db.uses() - md_before;

  const std::vector<Trapdoor> sd_tds = make_tds(&sd_twin);
  const uint64_t sd_before = sd_twin.db.uses();
  const auto sd_rows = sd_twin.index.SelectRangeSdPlus(sd_tds);
  const uint64_t sd_uses = sd_twin.db.uses() - sd_before;

  EXPECT_EQ(Sorted(md_rows), Sorted(sd_rows));
  const bool measured_prefers_md = md_uses <= sd_uses;
  EXPECT_EQ(estimate_prefers_md, measured_prefers_md)
      << "estimates ranked md=" << md_plan.root.estimated.Total()
      << " vs sd+=" << sd_plan.root.estimated.Total() << ", measured md="
      << md_uses << " vs sd+=" << sd_uses;
}

TEST(RouteChoiceTest, CollapsedBoxNoSlowerThanOldFixedMdRouteWhenCold) {
  // The old fixed rule sent the four-comparison box
  //   `x > a AND x < b AND y > c AND y < d`
  // to PRKB(MD) with four trapdoors. The cost-based planner collapses each
  // same-attribute pair into one BETWEEN and intersects the two (SD+). On a
  // cold deployment every route degenerates to scanning the no-index window,
  // and the collapsed plan reads each chain once per BETWEEN instead of once
  // per comparison — so it must not spend more QPF than the old route.
  Rng rng(37);
  const PlainTable plain = testutil::RandomTable(600, 2, &rng, 0, 2000);
  Twin md_twin(plain), collapsed_twin(plain);

  const uint64_t md_before = md_twin.db.uses();
  const auto md_rows = md_twin.index.SelectRangeMd(
      {md_twin.db.MakeComparison(0, CompareOp::kGt, 500),
       md_twin.db.MakeComparison(0, CompareOp::kLt, 1500),
       md_twin.db.MakeComparison(1, CompareOp::kGt, 400),
       md_twin.db.MakeComparison(1, CompareOp::kLt, 1600)});
  const uint64_t md_uses = md_twin.db.uses() - md_before;

  const uint64_t bt_before = collapsed_twin.db.uses();
  const auto bt_rows = collapsed_twin.index.SelectRangeSdPlus(
      {collapsed_twin.db.MakeBetween(0, 501, 1499),
       collapsed_twin.db.MakeBetween(1, 401, 1599)});
  const uint64_t bt_uses = collapsed_twin.db.uses() - bt_before;

  EXPECT_EQ(Sorted(md_rows), Sorted(bt_rows));
  EXPECT_LE(bt_uses, md_uses) << "collapsed SD+ box spent more QPF ("
                              << bt_uses << ") than the old MD route ("
                              << md_uses << ")";
}

TEST(RouteChoiceTest, LatencyHintMakesThePlannerPickAWideFanout) {
  // With a transport-latency hint the planner prices each route at every
  // candidate fanout and keeps the cheapest PriceNs; at 1ms per round trip
  // a developed chain must pick m > 2 (round trips dominate), the plan must
  // render its choice, and executing it must return the exact rows. With
  // no hint the ranking is pure QPF uses and the fanout stays the index
  // default (probe_fanout = 0 on the plan).
  Rng rng(41);
  const PlainTable plain = testutil::RandomTable(600, 2, &rng, 0, 2000);

  query::Catalog catalog;
  catalog.RegisterTable("t", {"c0", "c1"});

  for (const bool hinted : {false, true}) {
    SCOPED_TRACE(::testing::Message() << "hinted=" << hinted);
    CipherbaseEdbms db = CipherbaseEdbms::FromPlainTable(11, plain);
    core::PrkbOptions opts;
    if (hinted) opts.rt_latency_hint_ns = 1e6;
    core::PrkbIndex index(&db, opts);
    index.EnableAttr(0);
    for (int i = 1; i <= 8; ++i) {
      index.Select(db.MakeComparison(0, CompareOp::kLt, i * 240));
    }

    query::Planner planner(&catalog, &db, &index);
    const auto result = planner.ExecuteSql("SELECT * FROM t WHERE c0 < 900");
    ASSERT_TRUE(result.ok()) << result.status().message();
    const PlainPredicate p{0, edbms::PredicateKind::kComparison,
                           CompareOp::kLt, 900, 0};
    EXPECT_EQ(Sorted(result->rows),
              OracleSelectAll(plain, {p}, &db));
    if (hinted) {
      EXPECT_GT(result->physical.probe_fanout, 2u);
      EXPECT_NE(result->Explain().find(" m="), std::string::npos)
          << result->Explain();
    } else {
      EXPECT_EQ(result->physical.probe_fanout, 0u);
      EXPECT_EQ(result->Explain().find(" m="), std::string::npos)
          << result->Explain();
    }
  }
}

}  // namespace
}  // namespace prkb::exec
