#ifndef PRKB_TESTS_TEST_UTIL_H_
#define PRKB_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "edbms/cipherbase_qpf.h"
#include "edbms/table.h"
#include "edbms/types.h"

namespace prkb::testutil {

/// Builds a plaintext table with `rows` rows and `attrs` attributes whose
/// values are drawn uniformly from [lo, hi].
inline edbms::PlainTable RandomTable(size_t rows, size_t attrs, Rng* rng,
                                     edbms::Value lo = 0,
                                     edbms::Value hi = 999) {
  edbms::PlainTable t(attrs);
  std::vector<edbms::Value> row(attrs);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t a = 0; a < attrs; ++a) row[a] = rng->UniformInt64(lo, hi);
    t.AddRow(row);
  }
  return t;
}

/// Ground-truth evaluation of a plaintext predicate over the plain table,
/// restricted to live rows of `db` when provided.
inline std::vector<edbms::TupleId> OracleSelect(
    const edbms::PlainTable& plain, const edbms::PlainPredicate& pred,
    const edbms::Edbms* db = nullptr) {
  std::vector<edbms::TupleId> out;
  for (edbms::TupleId tid = 0; tid < plain.num_rows(); ++tid) {
    if (db != nullptr && !db->IsLive(tid)) continue;
    if (pred.Satisfies(plain.at(pred.attr, tid))) out.push_back(tid);
  }
  return out;
}

/// Conjunction oracle.
inline std::vector<edbms::TupleId> OracleSelectAll(
    const edbms::PlainTable& plain,
    const std::vector<edbms::PlainPredicate>& preds,
    const edbms::Edbms* db = nullptr) {
  std::vector<edbms::TupleId> out;
  for (edbms::TupleId tid = 0; tid < plain.num_rows(); ++tid) {
    if (db != nullptr && !db->IsLive(tid)) continue;
    bool all = true;
    for (const auto& p : preds) {
      if (!p.Satisfies(plain.at(p.attr, tid))) {
        all = false;
        break;
      }
    }
    if (all) out.push_back(tid);
  }
  return out;
}

/// Sorts a selection result for comparison against an oracle.
inline std::vector<edbms::TupleId> Sorted(std::vector<edbms::TupleId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

/// Plain values of one attribute indexed by tuple id (for
/// Pop::ValidateAgainstPlain).
inline std::vector<edbms::Value> ColumnOf(const edbms::PlainTable& plain,
                                          edbms::AttrId attr) {
  return plain.column(attr);
}

}  // namespace prkb::testutil

#endif  // PRKB_TESTS_TEST_UTIL_H_
