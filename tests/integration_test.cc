// End-to-end integration: a single deployment driven through every public
// surface — SQL planner, mixed predicate kinds, churn, snapshots, extension
// operators — continuously cross-checked against a plaintext oracle.

#include <cstdio>
#include <string>
#include <vector>

#include "edbms/cipherbase_qpf.h"
#include "ext/minmax.h"
#include "ext/skyline.h"
#include "gtest/gtest.h"
#include "prkb/prkb_io.h"
#include "prkb/selection.h"
#include "query/planner.h"
#include "tests/test_util.h"

namespace prkb {
namespace {

using edbms::CipherbaseEdbms;
using edbms::CompareOp;
using edbms::PlainPredicate;
using edbms::PlainTable;
using edbms::TupleId;
using edbms::Value;
using testutil::OracleSelectAll;
using testutil::Sorted;

class IntegrationTest : public ::testing::Test {
 protected:
  IntegrationTest()
      : plain_(MakePlain()),
        db_(CipherbaseEdbms::FromPlainTable(1234, plain_)),
        index_(&db_, core::PrkbOptions{.seed = 55}),
        planner_(&catalog_, &db_, &index_) {
    catalog_.RegisterTable("orders", {"amount", "days", "rating"});
    for (edbms::AttrId a = 0; a < 3; ++a) index_.EnableAttr(a);
  }

  static PlainTable MakePlain() {
    Rng rng(9);
    return testutil::RandomTable(600, 3, &rng, 0, 2000);
  }

  std::vector<TupleId> Sql(const std::string& sql) {
    auto res = planner_.ExecuteSql(sql);
    EXPECT_TRUE(res.ok()) << res.status().ToString();
    return res.ok() ? Sorted(res->rows) : std::vector<TupleId>{};
  }

  PlainTable plain_;
  CipherbaseEdbms db_;
  core::PrkbIndex index_;
  query::Catalog catalog_;
  query::Planner planner_;
};

TEST_F(IntegrationTest, FullLifecycle) {
  Rng rng(77);

  // Phase 1: query traffic through the SQL layer, all plan shapes.
  for (int round = 0; round < 25; ++round) {
    const Value a = rng.UniformInt64(0, 1500);
    const Value b = a + rng.UniformInt64(10, 400);
    char sql[256];

    // Same-attribute pair: the cost-based planner collapses it into one
    // BETWEEN trapdoor before routing.
    std::snprintf(sql, sizeof(sql),
                  "SELECT * FROM orders WHERE amount > %lld AND amount < %lld",
                  static_cast<long long>(a), static_cast<long long>(b));
    EXPECT_EQ(Sql(sql),
              OracleSelectAll(
                  plain_,
                  {{.attr = 0, .op = CompareOp::kGt, .lo = a},
                   {.attr = 0, .op = CompareOp::kLt, .lo = b}},
                  &db_))
        << sql;

    // Single comparison on the same attribute: keeps carving cuts into the
    // chain (a BETWEEN alone cannot split a single-partition chain — the
    // Appendix-A interior band has no neighbour to orient against).
    std::snprintf(sql, sizeof(sql),
                  "SELECT * FROM orders WHERE amount >= %lld",
                  static_cast<long long>(a));
    EXPECT_EQ(Sql(sql),
              OracleSelectAll(plain_,
                              {{.attr = 0, .op = CompareOp::kGe, .lo = a}},
                              &db_))
        << sql;

    std::snprintf(sql, sizeof(sql),
                  "SELECT * FROM orders WHERE days BETWEEN %lld AND %lld "
                  "AND rating > %lld",
                  static_cast<long long>(a), static_cast<long long>(b),
                  static_cast<long long>(a / 2));
    EXPECT_EQ(
        Sql(sql),
        OracleSelectAll(plain_,
                        {{.attr = 1,
                          .kind = edbms::PredicateKind::kBetween,
                          .lo = a,
                          .hi = b},
                         {.attr = 2, .op = CompareOp::kGt, .lo = a / 2}},
                        &db_))
        << sql;
  }

  // Phase 2: churn, then re-validate all chains.
  for (int i = 0; i < 40; ++i) {
    const Value v0 = rng.UniformInt64(0, 2000);
    const Value v1 = rng.UniformInt64(0, 2000);
    const Value v2 = rng.UniformInt64(0, 2000);
    index_.Insert({v0, v1, v2});
    plain_.AddRow({v0, v1, v2});
  }
  for (int i = 0; i < 20; ++i) {
    const auto tid =
        static_cast<TupleId>(rng.UniformInt(0, db_.num_rows() - 1));
    if (db_.IsLive(tid)) index_.Delete(tid);
  }
  for (edbms::AttrId a = 0; a < 3; ++a) {
    ASSERT_TRUE(
        index_.pop(a).ValidateAgainstPlain(plain_.column(a)).ok())
        << "attr " << a;
  }

  // Phase 3: snapshot round trip mid-life.
  const std::string path = "/tmp/prkb_integration.bin";
  ASSERT_TRUE(core::SavePrkb(index_, path).ok());
  core::PrkbIndex restored(&db_, core::PrkbOptions{.seed = 55});
  ASSERT_TRUE(core::LoadPrkb(&restored, path).ok());
  std::remove(path.c_str());
  const auto q =
      db_.MakeComparison(0, CompareOp::kLt, 1000);
  EXPECT_EQ(Sorted(restored.Select(q)),
            OracleSelectAll(plain_,
                            {{.attr = 0, .op = CompareOp::kLt, .lo = 1000}},
                            &db_));

  // Phase 4: extension operators agree with ground truth on live tuples.
  const auto mn = ext::FindMin(restored, &db_, 0);
  ASSERT_TRUE(mn.found);
  Value true_min = std::numeric_limits<Value>::max();
  for (TupleId t = 0; t < plain_.num_rows(); ++t) {
    if (db_.IsLive(t)) true_min = std::min(true_min, plain_.at(0, t));
  }
  EXPECT_EQ(plain_.at(0, mn.tid), true_min);

  // Phase 5: stats describe a sane shape.
  const auto st = index_.StatsFor(0);
  EXPECT_GT(st.k, 10u);
  EXPECT_EQ(st.tuples, index_.pop(0).num_tuples());
  EXPECT_GE(st.max_partition, st.min_partition);
  EXPECT_GE(st.cuts, st.insert_usable_cuts);
  EXPECT_NE(index_.DescribeStats().find("attr 0"), std::string::npos);
}

TEST_F(IntegrationTest, StatsTrackChainGrowth) {
  const auto before = index_.StatsFor(0);
  EXPECT_EQ(before.k, 1u);
  Sql("SELECT * FROM orders WHERE amount < 500");
  Sql("SELECT * FROM orders WHERE amount < 1200");
  const auto after = index_.StatsFor(0);
  EXPECT_EQ(after.k, 3u);
  EXPECT_EQ(after.cuts, 2u);
  EXPECT_EQ(after.insert_usable_cuts, 2u);
}

}  // namespace
}  // namespace prkb
