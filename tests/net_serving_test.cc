// Loopback serving differential: every selection workload driven through a
// RemoteQpfOracle talking to a QpfServer over a real socket must produce
// byte-identical winner sets and identical QPF-use counts to the same
// workload run in-process — the wire changes *where* Θ evaluates, never
// which bits it produces or how many the client pays for. Plus transport
// failure handling: killing the server mid-session surfaces as a clean
// Status through the planner, not a hang, crash or silent empty result.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>

#include <memory>
#include <thread>
#include <vector>

#include "edbms/cipherbase_qpf.h"
#include "gtest/gtest.h"
#include "net/qpf_client.h"
#include "net/qpf_server.h"
#include "prkb/concurrent.h"
#include "prkb/selection.h"
#include "query/planner.h"
#include "tests/test_util.h"

namespace prkb {
namespace {

using edbms::CompareOp;
using edbms::PlainPredicate;
using edbms::PredicateKind;
using edbms::SelectionStats;
using edbms::TupleId;
using edbms::Value;

/// One served deployment: a local Edbms hosted behind a loopback QpfServer,
/// with a connected client and the RemoteEdbms facade over both.
struct Loopback {
  edbms::CipherbaseEdbms db;
  std::unique_ptr<net::QpfServer> server;
  std::unique_ptr<net::QpfClient> client;
  std::unique_ptr<net::RemoteEdbms> remote;

  explicit Loopback(edbms::CipherbaseEdbms local_db)
      : db(std::move(local_db)) {
    server = std::make_unique<net::QpfServer>(&db);
    EXPECT_TRUE(server->ServeTcp(0).ok());
    auto c = net::QpfClient::ConnectTcp("127.0.0.1", server->port());
    EXPECT_TRUE(c.ok());
    client = std::move(c).value();
    remote = std::make_unique<net::RemoteEdbms>(&db, client.get());
  }
};

PlainPredicate Cmp(edbms::AttrId attr, CompareOp op, Value c) {
  PlainPredicate p;
  p.attr = attr;
  p.op = op;
  p.lo = c;
  return p;
}

PlainPredicate Btw(edbms::AttrId attr, Value lo, Value hi) {
  PlainPredicate p;
  p.attr = attr;
  p.kind = PredicateKind::kBetween;
  p.lo = lo;
  p.hi = hi;
  return p;
}

struct OpCost {
  uint64_t uses = 0;
  uint64_t trips = 0;
  uint64_t hits = 0;

  bool operator==(const OpCost&) const = default;
};

OpCost CostOf(const SelectionStats& s) {
  return OpCost{s.qpf_uses, s.qpf_round_trips, s.cache_hits};
}

TEST(NetServingTest, PingAndStatsOverTcp) {
  Rng rng(1);
  Loopback lb(edbms::CipherbaseEdbms::FromPlainTable(
      7, testutil::RandomTable(50, 1, &rng)));
  EXPECT_TRUE(lb.client->Ping().ok());
  auto stats = lb.client->FetchStats();
  ASSERT_TRUE(stats.ok());
  bool saw_qpf_uses = false;
  for (const auto& [name, value] : stats.value()) {
    if (name == "qpf.uses") saw_qpf_uses = true;
  }
  EXPECT_TRUE(saw_qpf_uses);
  EXPECT_TRUE(lb.client->Health().ok());
}

TEST(NetServingTest, PingOverUnixSocket) {
  Rng rng(2);
  auto db = edbms::CipherbaseEdbms::FromPlainTable(
      8, testutil::RandomTable(20, 1, &rng));
  net::QpfServer server(&db);
  const std::string path =
      ::testing::TempDir() + "/prkb_qpf_test.sock";
  ASSERT_TRUE(server.ServeUnix(path).ok());
  auto client = net::QpfClient::ConnectUnix(path);
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE(client.value()->Ping().ok());
}

/// Runs the full single-predicate workload (comparisons, BETWEENs, repeats
/// interleaved) through one PrkbIndex and returns winners + per-op costs.
struct RunResult {
  std::vector<std::vector<TupleId>> winners;
  std::vector<OpCost> costs;
};

RunResult DriveSinglePredicate(core::PrkbIndex* index, edbms::Edbms* issuer,
                               const std::vector<PlainPredicate>& preds) {
  RunResult out;
  std::vector<edbms::Trapdoor> tds;
  for (const auto& p : preds) {
    if (p.kind == PredicateKind::kBetween) {
      tds.push_back(issuer->MakeBetween(p.attr, p.lo, p.hi));
    } else {
      tds.push_back(issuer->MakeComparison(p.attr, p.op, p.lo));
    }
  }
  // Each predicate twice — fresh then repeat — then every third once more,
  // exercising the zero-QPF fast path over the wire.
  std::vector<size_t> order;
  for (size_t i = 0; i < tds.size(); ++i) {
    order.push_back(i);
    order.push_back(i);
  }
  for (size_t i = 0; i < tds.size(); i += 3) order.push_back(i);
  for (const size_t i : order) {
    SelectionStats stats;
    out.winners.push_back(testutil::Sorted(index->Select(tds[i], &stats)));
    out.costs.push_back(CostOf(stats));
  }
  return out;
}

TEST(NetServingTest, SinglePredicateWorkloadIsByteIdenticalOverLoopback) {
  Rng rng(11);
  const auto plain = testutil::RandomTable(300, 2, &rng, 0, 999);

  const std::vector<PlainPredicate> preds = {
      Cmp(0, CompareOp::kLt, 500), Cmp(0, CompareOp::kGe, 250),
      Btw(0, 300, 700),            Cmp(1, CompareOp::kGt, 100),
      Btw(1, 50, 800),             Cmp(0, CompareOp::kLe, 900),
  };

  // In-process reference run.
  auto db_local = edbms::CipherbaseEdbms::FromPlainTable(99, plain);
  core::PrkbIndex local_index(&db_local);
  local_index.EnableAttr(0);
  local_index.EnableAttr(1);
  const RunResult local = DriveSinglePredicate(&local_index, &db_local, preds);

  // Served run: identical deployment (same master seed), Θ over the wire.
  Loopback lb(edbms::CipherbaseEdbms::FromPlainTable(99, plain));
  core::PrkbIndex remote_index(lb.remote.get());
  remote_index.EnableAttr(0);
  remote_index.EnableAttr(1);
  const RunResult served =
      DriveSinglePredicate(&remote_index, lb.remote.get(), preds);

  ASSERT_EQ(local.winners.size(), served.winners.size());
  for (size_t i = 0; i < local.winners.size(); ++i) {
    EXPECT_EQ(local.winners[i], served.winners[i]) << "operation " << i;
    EXPECT_EQ(local.costs[i], served.costs[i])
        << "operation " << i << ": uses " << local.costs[i].uses << " vs "
        << served.costs[i].uses << ", trips " << local.costs[i].trips
        << " vs " << served.costs[i].trips;
  }
  // Sanity: repeats actually hit the zero-QPF path on the served run too.
  bool saw_zero_use_repeat = false;
  for (const OpCost& c : served.costs) {
    if (c.uses == 0 && c.hits > 0) saw_zero_use_repeat = true;
  }
  EXPECT_TRUE(saw_zero_use_repeat);
  // And the served run really crossed the wire.
  EXPECT_GT(lb.server->frames_served(), 0u);
}

TEST(NetServingTest, MdAndSdPlusAreByteIdenticalOverLoopback) {
  Rng rng(13);
  const auto plain = testutil::RandomTable(250, 3, &rng, 0, 999);

  auto db_local = edbms::CipherbaseEdbms::FromPlainTable(77, plain);
  core::PrkbIndex local_index(&db_local);
  Loopback lb(edbms::CipherbaseEdbms::FromPlainTable(77, plain));
  core::PrkbIndex remote_index(lb.remote.get());
  for (edbms::AttrId a = 0; a < 3; ++a) {
    local_index.EnableAttr(a);
    remote_index.EnableAttr(a);
  }

  const auto run_md = [](core::PrkbIndex* index, edbms::Edbms* issuer,
                         SelectionStats* stats) {
    const std::vector<edbms::Trapdoor> tds = {
        issuer->MakeComparison(0, CompareOp::kLt, 600),
        issuer->MakeComparison(1, CompareOp::kGt, 200),
        issuer->MakeComparison(2, CompareOp::kLe, 850),
    };
    return testutil::Sorted(index->SelectRangeMd(tds, stats));
  };
  SelectionStats local_md, served_md;
  EXPECT_EQ(run_md(&local_index, &db_local, &local_md),
            run_md(&remote_index, lb.remote.get(), &served_md));
  EXPECT_EQ(CostOf(local_md), CostOf(served_md));

  const auto run_sd = [](core::PrkbIndex* index, edbms::Edbms* issuer,
                         SelectionStats* stats) {
    const std::vector<edbms::Trapdoor> tds = {
        issuer->MakeBetween(0, 100, 700),
        issuer->MakeBetween(1, 300, 900),
    };
    return testutil::Sorted(index->SelectRangeSdPlus(tds, stats));
  };
  SelectionStats local_sd, served_sd;
  EXPECT_EQ(run_sd(&local_index, &db_local, &local_sd),
            run_sd(&remote_index, lb.remote.get(), &served_sd));
  EXPECT_EQ(CostOf(local_sd), CostOf(served_sd));
}

TEST(NetServingTest, InsertPlacementIsByteIdenticalOverLoopback) {
  Rng rng(17);
  const auto plain = testutil::RandomTable(200, 1, &rng, 0, 999);

  auto db_local = edbms::CipherbaseEdbms::FromPlainTable(55, plain);
  core::PrkbIndex local_index(&db_local);
  Loopback lb(edbms::CipherbaseEdbms::FromPlainTable(55, plain));
  core::PrkbIndex remote_index(lb.remote.get());
  local_index.EnableAttr(0);
  remote_index.EnableAttr(0);

  // Carve some structure first so placement has cuts to binary-search.
  for (const Value c : {200, 400, 600, 800}) {
    const auto td_l = db_local.MakeComparison(0, CompareOp::kLt, c);
    const auto td_r = lb.remote->MakeComparison(0, CompareOp::kLt, c);
    ASSERT_EQ(testutil::Sorted(local_index.Select(td_l)),
              testutil::Sorted(remote_index.Select(td_r)));
  }
  for (int i = 0; i < 10; ++i) {
    const Value v = static_cast<Value>(i * 97 % 1000);
    SelectionStats sl, sr;
    const TupleId tl = local_index.Insert({v}, &sl);
    const TupleId tr = remote_index.Insert({v}, &sr);
    EXPECT_EQ(tl, tr);
    EXPECT_EQ(CostOf(sl), CostOf(sr)) << "insert " << i;
  }
  // Post-insert selections still agree.
  const auto td_l = db_local.MakeComparison(0, CompareOp::kGe, 500);
  const auto td_r = lb.remote->MakeComparison(0, CompareOp::kGe, 500);
  EXPECT_EQ(testutil::Sorted(local_index.Select(td_l)),
            testutil::Sorted(remote_index.Select(td_r)));
}

TEST(NetServingTest, ConcurrentSelectionsMultiplexOneChannel) {
  Rng rng(19);
  const auto plain = testutil::RandomTable(300, 4, &rng, 0, 999);
  Loopback lb(edbms::CipherbaseEdbms::FromPlainTable(33, plain));
  core::ConcurrentPrkbIndex index(lb.remote.get());
  for (edbms::AttrId a = 0; a < 4; ++a) index.EnableAttr(a);

  // 8 threads, each running selections on its own attribute stream, all
  // funnelled through the single client channel via correlation ids.
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 12;
  std::vector<std::vector<PlainPredicate>> preds(kThreads);
  std::vector<std::vector<edbms::Trapdoor>> tds(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kOpsPerThread; ++i) {
      const auto attr = static_cast<edbms::AttrId>(t % 4);
      const Value c = static_cast<Value>((i * 131 + t * 17) % 1000);
      preds[t].push_back(Cmp(attr, CompareOp::kLt, c));
      tds[t].push_back(lb.remote->MakeComparison(attr, CompareOp::kLt, c));
    }
  }
  std::vector<std::vector<std::vector<TupleId>>> got(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        got[t].push_back(testutil::Sorted(index.Select(tds[t][i])));
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kOpsPerThread; ++i) {
      EXPECT_EQ(got[t][i], testutil::OracleSelect(plain, preds[t][i]))
          << "thread " << t << " op " << i;
    }
  }
  EXPECT_TRUE(lb.client->Health().ok());
}

TEST(NetServingTest, KillingServerSurfacesCleanStatusThroughPlanner) {
  Rng rng(23);
  const auto plain = testutil::RandomTable(150, 1, &rng, 0, 999);
  Loopback lb(edbms::CipherbaseEdbms::FromPlainTable(44, plain));
  core::PrkbIndex index(lb.remote.get());
  index.EnableAttr(0);

  query::Catalog catalog;
  catalog.RegisterTable("t", {"c"});
  query::Planner planner(&catalog, lb.remote.get(), &index);

  // Healthy round first.
  auto ok = planner.ExecuteSql("SELECT * FROM t WHERE c < 500");
  ASSERT_TRUE(ok.ok());
  EXPECT_FALSE(ok.value().rows.empty());

  // Kill the server, then query again: the executor's probes fail closed and
  // the planner converts the sticky transport failure into a clean error.
  lb.server->Stop();
  auto dead = planner.ExecuteSql("SELECT * FROM t WHERE c < 100");
  ASSERT_FALSE(dead.ok());
  EXPECT_EQ(dead.status().code(), Status::Code::kIoError);
  EXPECT_FALSE(lb.client->Health().ok());

  // The client stays failed-fast, not hung, for every later call.
  EXPECT_FALSE(lb.client->Ping().ok());
}

TEST(NetServingTest, MalformedFrameGetsErrorResponseAndSeveredConnection) {
  Rng rng(29);
  auto db = edbms::CipherbaseEdbms::FromPlainTable(
      66, testutil::RandomTable(30, 1, &rng));
  net::QpfServer server(&db);
  ASSERT_TRUE(server.ServeTcp(0).ok());

  // Raw channel, bypassing QpfClient: ship a frame with a garbage payload.
  auto ch = net::Channel::ConnectTcp("127.0.0.1", server.port());
  ASSERT_TRUE(ch.ok());
  net::Frame bad;
  bad.type = net::MsgType::kEvalReq;
  bad.corr = 42;
  bad.payload = {0xDE, 0xAD, 0xBE, 0xEF};
  ASSERT_TRUE(ch.value().Send(bad).ok());
  net::Frame resp;
  ASSERT_TRUE(ch.value().Recv(&resp).ok());
  EXPECT_EQ(resp.type, net::MsgType::kErrorResp);
  EXPECT_EQ(resp.corr, 42u);
  Status remote;
  ASSERT_TRUE(net::DecodeErrorResp(resp.payload, &remote).ok());
  EXPECT_FALSE(remote.ok());

  // A corrupt *header* (bad magic) severs the connection after an error
  // frame: Channel::Send always writes a valid header, so speak raw bytes.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const uint8_t garbage[net::kFrameHeaderBytes] = {0xFF, 0xFF, 0xFF, 0xFF};
  ASSERT_EQ(::send(fd, garbage, sizeof(garbage), 0),
            static_cast<ssize_t>(sizeof(garbage)));
  net::Channel raw(fd);  // takes ownership for the read side
  net::Frame err;
  ASSERT_TRUE(raw.Recv(&err).ok());
  EXPECT_EQ(err.type, net::MsgType::kErrorResp);
  // After the error frame the server hangs up; the next read is EOF, and the
  // server process is still alive and serving.
  net::Frame eof;
  EXPECT_FALSE(raw.Recv(&eof).ok());
  auto alive = net::QpfClient::ConnectTcp("127.0.0.1", server.port());
  ASSERT_TRUE(alive.ok());
  EXPECT_TRUE(alive.value()->Ping().ok());
  server.Stop();
}

}  // namespace
}  // namespace prkb
