// Shared-lock concurrency stress: mixed repeat/fresh selections racing
// inserts and deletes on ConcurrentPrkbIndex, cross-checked against a
// plaintext oracle. Sized to run under TSan in CI: the point is interleaving
// coverage (shared-shared on cache hits, shared-exclusive on mutation
// fallbacks, exclusive-exclusive on churn), not volume.
//
// Invariant exploited for mid-flight checking: churn never touches the
// initially-loaded tuples [0, kStableRows), and no partition can empty while
// every stable tuple survives — so the stable slice of every selection result
// must match the plaintext oracle exactly at any interleaving, and the warmed
// cuts (hence the fast-path cache entries) outlive the whole run.

#include <atomic>
#include <thread>
#include <vector>

#include "edbms/cipherbase_qpf.h"
#include "gtest/gtest.h"
#include "prkb/concurrent.h"
#include "tests/test_util.h"
#include "workload/query_gen.h"

namespace prkb {
namespace {

using edbms::CompareOp;
using edbms::PlainPredicate;
using edbms::TupleId;
using edbms::Value;

constexpr size_t kStableRows = 300;
constexpr int kSelectorThreads = 4;
constexpr int kOpsPerSelector = 40;

struct HotQuery {
  edbms::Trapdoor td;
  PlainPredicate pred;
  std::vector<TupleId> stable;  // oracle answer over the stable prefix
};

TEST(ConcurrentStressTest, MixedRepeatFreshChurnStaysExact) {
  Rng data_rng(21);
  auto plain = testutil::RandomTable(kStableRows, 1, &data_rng, 0, 1000);
  auto db = edbms::CipherbaseEdbms::FromPlainTable(42, plain);
  core::ConcurrentPrkbIndex index(&db);
  index.EnableAttr(0);

  // Hot set: warmed single-threaded so every repeat is a pure shared-lock
  // cache hit. One BETWEEN (warmed after a comparison boundary exists so
  // both its ends split and link).
  std::vector<HotQuery> hot;
  for (const Value c : {250, 500, 750}) {
    HotQuery q;
    q.pred.attr = 0;
    q.pred.op = CompareOp::kLt;
    q.pred.lo = c;
    q.td = db.MakeComparison(0, CompareOp::kLt, c);
    q.stable = testutil::OracleSelect(plain, q.pred);
    index.Select(q.td);
    hot.push_back(std::move(q));
  }
  {
    HotQuery q;
    q.pred.attr = 0;
    q.pred.kind = edbms::PredicateKind::kBetween;
    q.pred.lo = 300;
    q.pred.hi = 600;
    q.td = db.MakeBetween(0, 300, 600);
    q.stable = testutil::OracleSelect(plain, q.pred);
    index.Select(q.td);
    hot.push_back(std::move(q));
  }

  const uint64_t hits_before = core::CacheMetrics::Get().hits->value();

  // Fresh predicates, pre-issued per selector thread (the DataOwner is not
  // part of the SP-side concurrency story).
  std::vector<std::vector<HotQuery>> fresh(kSelectorThreads);
  workload::QueryGen gen(0, 1000, 3);
  for (int t = 0; t < kSelectorThreads; ++t) {
    for (int i = 0; i < 8; ++i) {
      HotQuery q;
      q.pred = gen.RandomComparison(0);
      q.td = db.MakeComparison(q.pred.attr, q.pred.op, q.pred.lo);
      q.stable = testutil::OracleSelect(plain, q.pred);
      fresh[t].push_back(std::move(q));
    }
  }

  std::atomic<int> failures{0};
  auto check = [&](const HotQuery& q, std::vector<TupleId> got) {
    // Stable slice must be oracle-exact; anything else must be churn-born.
    std::vector<TupleId> stable_got;
    for (TupleId tid : got) {
      if (tid < kStableRows) stable_got.push_back(tid);
    }
    if (testutil::Sorted(std::move(stable_got)) != q.stable) {
      failures.fetch_add(1);
    }
  };

  auto selector = [&](int t) {
    Rng rng(100 + t);
    for (int i = 0; i < kOpsPerSelector; ++i) {
      // ~75% repeats of the hot set, ~25% fresh predicates.
      if (rng.UniformInt64(0, 3) != 0) {
        const HotQuery& q = hot[rng.UniformInt64(0, hot.size() - 1)];
        check(q, index.Select(q.td));
      } else {
        const HotQuery& q = fresh[t][rng.UniformInt64(0, fresh[t].size() - 1)];
        check(q, index.Select(q.td));
      }
    }
  };

  // Churn thread: inserts fresh rows and deletes only rows it inserted, so
  // the stable prefix is never touched.
  std::vector<TupleId> churn_tids;
  std::vector<Value> churn_vals;
  auto churner = [&] {
    Rng rng(999);
    for (int i = 0; i < 30; ++i) {
      const Value v = rng.UniformInt64(0, 1000);
      churn_tids.push_back(index.Insert({v}));
      churn_vals.push_back(v);
      if (i % 3 == 2) index.Delete(churn_tids[churn_tids.size() - 2]);
    }
  };

  std::vector<std::thread> threads;
  for (int t = 0; t < kSelectorThreads; ++t) threads.emplace_back(selector, t);
  threads.emplace_back(churner);
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(core::CacheMetrics::Get().hits->value(), hits_before);

  // Quiesced replay: every hot query re-answered single-threaded must match
  // the full oracle including surviving churn rows, off the cache.
  index.WithLocked([&](core::PrkbIndex& inner) {
    EXPECT_TRUE(inner.pop(0).Validate().ok());
    return 0;
  });
  for (const HotQuery& q : hot) {
    std::vector<TupleId> expect = q.stable;
    for (size_t i = 0; i < churn_tids.size(); ++i) {
      if (db.IsLive(churn_tids[i]) && q.pred.Satisfies(churn_vals[i])) {
        expect.push_back(churn_tids[i]);
      }
    }
    edbms::SelectionStats stats;
    EXPECT_EQ(testutil::Sorted(index.Select(q.td, &stats)),
              testutil::Sorted(std::move(expect)));
    EXPECT_EQ(stats.qpf_uses, 0u);  // warmed cuts survive the churn
  }
}

TEST(ConcurrentStressTest, ReadOnlyStatsRaceSelections) {
  Rng data_rng(22);
  auto plain = testutil::RandomTable(200, 1, &data_rng, 0, 1000);
  auto db = edbms::CipherbaseEdbms::FromPlainTable(43, plain);
  core::ConcurrentPrkbIndex index(&db);
  index.EnableAttr(0);

  const auto td = db.MakeComparison(0, CompareOp::kLt, 500);
  index.Select(td);

  std::thread reader([&] {
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(index.IsEnabled(0));
      ASSERT_EQ(index.EnabledAttrs(), std::vector<edbms::AttrId>{0});
      ASSERT_GT(index.StatsFor(0).tuples, 0u);
      ASSERT_GT(index.SizeBytes(), 0u);
    }
  });
  std::thread selector([&] {
    for (int i = 0; i < 200; ++i) index.Select(td);
  });
  std::thread inserter([&] {
    Rng rng(7);
    for (int i = 0; i < 20; ++i) index.Insert({rng.UniformInt64(0, 1000)});
  });
  reader.join();
  selector.join();
  inserter.join();

  index.WithLocked([&](core::PrkbIndex& inner) {
    EXPECT_TRUE(inner.pop(0).Validate().ok());
    EXPECT_EQ(inner.pop(0).num_tuples(), 220u);
    return 0;
  });
}

}  // namespace
}  // namespace prkb
