#include <algorithm>
#include <set>

#include "gtest/gtest.h"
#include "workload/query_gen.h"
#include "workload/real_emulators.h"
#include "workload/synthetic_table.h"

namespace prkb::workload {
namespace {

using edbms::Value;

TEST(DistributionsTest, AllDistributionsStayInDomain) {
  Rng rng(1);
  for (Distribution d :
       {Distribution::kUniform, Distribution::kNormal,
        Distribution::kCorrelated, Distribution::kAntiCorrelated,
        Distribution::kZipf, Distribution::kLogNormal}) {
    for (int i = 0; i < 2000; ++i) {
      const Value v = DrawValue(d, 100, 10000, rng.UniformDouble(), &rng);
      EXPECT_GE(v, 100) << static_cast<int>(d);
      EXPECT_LE(v, 10000) << static_cast<int>(d);
    }
  }
}

TEST(DistributionsTest, CorrelatedAttributesTrackTheLatent) {
  Rng rng(2);
  double low_base_sum = 0, high_base_sum = 0;
  for (int i = 0; i < 3000; ++i) {
    low_base_sum += static_cast<double>(
        DrawValue(Distribution::kCorrelated, 0, 1000, 0.1, &rng));
    high_base_sum += static_cast<double>(
        DrawValue(Distribution::kCorrelated, 0, 1000, 0.9, &rng));
  }
  EXPECT_LT(low_base_sum, high_base_sum);
}

TEST(DistributionsTest, AntiCorrelatedAttributesInvertTheLatent) {
  Rng rng(3);
  double low_base_sum = 0, high_base_sum = 0;
  for (int i = 0; i < 3000; ++i) {
    low_base_sum += static_cast<double>(
        DrawValue(Distribution::kAntiCorrelated, 0, 1000, 0.1, &rng));
    high_base_sum += static_cast<double>(
        DrawValue(Distribution::kAntiCorrelated, 0, 1000, 0.9, &rng));
  }
  EXPECT_GT(low_base_sum, high_base_sum);
}

TEST(SyntheticTableTest, BuildsRequestedShapeDeterministically) {
  SyntheticSpec spec;
  spec.rows = 500;
  spec.attrs = 3;
  spec.domain_lo = 1;
  spec.domain_hi = 1000;
  spec.seed = 7;
  const auto t1 = MakeSyntheticTable(spec);
  const auto t2 = MakeSyntheticTable(spec);
  ASSERT_EQ(t1.num_rows(), 500u);
  ASSERT_EQ(t1.num_attrs(), 3u);
  for (edbms::TupleId tid = 0; tid < 500; ++tid) {
    for (edbms::AttrId a = 0; a < 3; ++a) {
      EXPECT_EQ(t1.at(a, tid), t2.at(a, tid));
      EXPECT_GE(t1.at(a, tid), 1);
      EXPECT_LE(t1.at(a, tid), 1000);
    }
  }
}

TEST(RealEmulatorsTest, CardinalitiesScale) {
  const auto hospital = MakeHospitalCharges(0.001);
  EXPECT_EQ(hospital.table.num_rows(), 2426u);
  EXPECT_EQ(hospital.name, "Hospital");
  const auto labor = MakeLaborSalary(0.001);
  EXPECT_EQ(labor.table.num_rows(), 6156u);
  const auto buildings = MakeUsBuildings(0.001);
  EXPECT_EQ(buildings.table.num_rows(), 1122u);
  EXPECT_EQ(buildings.table.num_attrs(), 2u);
}

TEST(RealEmulatorsTest, ValuesRespectDeclaredDomains) {
  for (const auto& ds : {MakeHospitalCharges(0.002), MakeLaborSalary(0.001),
                         MakeUsBuildings(0.002)}) {
    for (size_t a = 0; a < ds.table.num_attrs(); ++a) {
      for (edbms::TupleId t = 0; t < ds.table.num_rows(); ++t) {
        EXPECT_GE(ds.table.at(a, t), ds.domain_lo[a]) << ds.name;
        EXPECT_LE(ds.table.at(a, t), ds.domain_hi[a]) << ds.name;
      }
    }
  }
}

TEST(RealEmulatorsTest, SalariesAreRoundedAndDuplicated) {
  const auto labor = MakeLaborSalary(0.002);
  std::set<Value> distinct;
  for (edbms::TupleId t = 0; t < labor.table.num_rows(); ++t) {
    EXPECT_EQ(labor.table.at(0, t) % 10, 0);
    distinct.insert(labor.table.at(0, t));
  }
  EXPECT_LT(distinct.size(), labor.table.num_rows());
}

TEST(RealEmulatorsTest, BuildingsAreClustered) {
  // Urban clustering => a small window around a dense point catches many
  // rows, far more than a uniform spread would.
  const auto b = MakeUsBuildings(0.01);
  const size_t n = b.table.num_rows();
  // Take the first clustered-looking point and count neighbours within 50km.
  size_t best = 0;
  for (edbms::TupleId probe = 0; probe < 20; ++probe) {
    size_t close_count = 0;
    const Value lat0 = b.table.at(0, probe), lon0 = b.table.at(1, probe);
    for (edbms::TupleId t = 0; t < n; ++t) {
      if (std::abs(b.table.at(0, t) - lat0) < 50 * kMicroDegPerKm &&
          std::abs(b.table.at(1, t) - lon0) < 50 * kMicroDegPerKm) {
        ++close_count;
      }
    }
    best = std::max(best, close_count);
  }
  // Uniform density over the US bounding box would put well under 1% of
  // points in a 100km x 100km window.
  EXPECT_GT(best, n / 50);
}

TEST(QueryGenTest, RangeWidthMatchesSelectivity) {
  QueryGen gen(0, 1'000'000, 5);
  for (int i = 0; i < 50; ++i) {
    const auto range = gen.RandomRange(0, 0.02);
    ASSERT_EQ(range.size(), 2u);
    EXPECT_EQ(range[0].op, edbms::CompareOp::kGt);
    EXPECT_EQ(range[1].op, edbms::CompareOp::kLt);
    EXPECT_EQ(range[1].lo - range[0].lo, 20000);
    EXPECT_GE(range[0].lo, 0);
    EXPECT_LE(range[1].lo, 1'000'000);
  }
}

TEST(QueryGenTest, BoxCoversEveryRequestedAttr) {
  QueryGen gen(0, 1000, 6);
  const auto box = gen.RandomBox({0, 1, 2}, 0.1);
  ASSERT_EQ(box.size(), 6u);
  for (size_t d = 0; d < 3; ++d) {
    EXPECT_EQ(box[2 * d].attr, d);
    EXPECT_EQ(box[2 * d + 1].attr, d);
  }
}

TEST(QueryGenTest, WindowHasFixedSide) {
  QueryGen gen(0, 1000, 7);
  const auto w = gen.RandomWindow({0, 1}, {0, 0}, {1000, 1000}, 100);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w[1].lo - w[0].lo, 100);
  EXPECT_EQ(w[3].lo - w[2].lo, 100);
}

TEST(QueryGenTest, ComparisonOpsAreMixed) {
  QueryGen gen(0, 1000, 8);
  std::set<edbms::CompareOp> ops;
  for (int i = 0; i < 100; ++i) ops.insert(gen.RandomComparison(0).op);
  EXPECT_EQ(ops.size(), 4u);
}

}  // namespace
}  // namespace prkb::workload
