// Checks of the model's stated security properties (Sec. 3.1/3.3) at the
// level this simulator can enforce them:
//  - trapdoors do not reveal the comparison operator or constants,
//  - equal plaintexts yield unlinkable ciphertexts,
//  - the SDB backend's shares carry no plaintext structure,
//  - the PRKB index stores tuple ids and sealed trapdoors only.

#include <cstring>
#include <set>
#include <vector>

#include "common/serial.h"
#include "edbms/cipherbase_qpf.h"
#include "edbms/sdb_qpf.h"
#include "gtest/gtest.h"
#include "prkb/selection.h"
#include "tests/test_util.h"
#include "workload/query_gen.h"

namespace prkb::edbms {
namespace {

TEST(SecurityTest, TrapdoorsAreOperatorAndConstantUniform) {
  DataOwner owner(1);
  // Whatever operator or constant goes in, the SP-visible part is the same:
  // attr, kind, a fresh uid, and a fixed-size pseudorandom blob.
  std::vector<Trapdoor> tds = {
      owner.MakeComparison(0, CompareOp::kLt, 5),
      owner.MakeComparison(0, CompareOp::kGt, 5),
      owner.MakeComparison(0, CompareOp::kLe, 999999),
      owner.MakeComparison(0, CompareOp::kGe, -999999),
  };
  std::set<std::vector<uint8_t>> blobs;
  for (const auto& td : tds) {
    EXPECT_EQ(td.blob.size(), kTrapdoorBlobSize);
    EXPECT_EQ(td.kind, PredicateKind::kComparison);
    blobs.insert(td.blob);
  }
  EXPECT_EQ(blobs.size(), tds.size());  // no two blobs alike

  // Identical plain predicates issued twice still produce distinct blobs
  // (fresh nonce per trapdoor): the SP cannot even link repeats.
  const auto a = owner.MakeComparison(1, CompareOp::kLt, 7);
  const auto b = owner.MakeComparison(1, CompareOp::kLt, 7);
  EXPECT_NE(a.blob, b.blob);
  EXPECT_NE(a.uid, b.uid);
}

TEST(SecurityTest, CiphertextsOfEqualPlaintextsAreUnlinkable) {
  DataOwner owner(2);
  std::set<uint64_t> cts;
  for (int i = 0; i < 100; ++i) {
    cts.insert(owner.EncryptRow({42})[0].ct);
  }
  EXPECT_EQ(cts.size(), 100u);
}

TEST(SecurityTest, SdbSharesOfEqualPlaintextsDiffer) {
  PlainTable plain(1);
  for (int i = 0; i < 50; ++i) plain.AddRow({77});
  auto db = SdbEdbms::FromPlainTable(3, plain);
  // All 50 rows hold the same plaintext; the SP-side shares must not repeat
  // (each cell is masked by an independent PRF output), and a different key
  // produces entirely different shares.
  std::set<uint64_t> shares;
  for (TupleId t = 0; t < 50; ++t) shares.insert(db.share_at(0, t));
  EXPECT_EQ(shares.size(), 50u);
  auto db2 = SdbEdbms::FromPlainTable(4, plain);
  EXPECT_NE(db.share_at(0, 0), db2.share_at(0, 0));
  // And QPF still answers correctly over the masked store.
  const Trapdoor td = db.MakeComparison(0, CompareOp::kLe, 77);
  for (TupleId t = 0; t < 50; ++t) EXPECT_TRUE(db.Eval(td, t));
}

TEST(SecurityTest, PrkbStateContainsNoPlaintextValues) {
  // Build an index over values with a distinctive bit pattern and verify the
  // serialised index never contains any of them: the chain is ids + order +
  // sealed trapdoors, nothing derived from plaintext bytes.
  PlainTable plain(1);
  std::vector<Value> secrets;
  Rng rng(5);
  for (int i = 0; i < 64; ++i) {
    // Values with a high-entropy 64-bit pattern, recognisable in a dump.
    const Value v = static_cast<Value>(rng.Next() | 0x8000000000000001ULL);
    secrets.push_back(v);
    plain.AddRow({v});
  }
  auto db = CipherbaseEdbms::FromPlainTable(6, plain);
  core::PrkbIndex index(&db);
  index.EnableAttr(0);
  for (int i = 0; i < 20; ++i) {
    index.Select(db.MakeComparison(
        0, CompareOp::kLt, secrets[rng.UniformInt(0, secrets.size() - 1)]));
  }
  Encoder enc;
  index.pop(0).EncodeTo(&enc);
  const auto& bytes = enc.buffer();
  for (Value secret : secrets) {
    uint8_t pattern[8];
    std::memcpy(pattern, &secret, 8);
    bool found = false;
    for (size_t i = 0; i + 8 <= bytes.size() && !found; ++i) {
      found = std::memcmp(bytes.data() + i, pattern, 8) == 0;
    }
    EXPECT_FALSE(found) << "plaintext value leaked into index encoding";
  }
}

TEST(SecurityTest, QpfRevealsExactlyOneBitPerCall) {
  // The PRKB path never asks the backend for anything but Θ evaluations:
  // the QPF use counter fully accounts for all backend interaction.
  Rng data_rng(7);
  auto plain = testutil::RandomTable(200, 1, &data_rng, 0, 1000);
  auto db = CipherbaseEdbms::FromPlainTable(8, plain);
  core::PrkbIndex index(&db);
  index.EnableAttr(0);
  const uint64_t tm_before = db.trusted_machine().predicate_evals();
  workload::QueryGen gen(0, 1000, 9);
  for (int i = 0; i < 30; ++i) {
    const auto p = gen.RandomComparison(0);
    index.Select(db.MakeComparison(p.attr, p.op, p.lo));
  }
  EXPECT_EQ(db.trusted_machine().predicate_evals() - tm_before, db.uses());
  EXPECT_EQ(db.trusted_machine().value_decrypts(), 0u);
}

}  // namespace
}  // namespace prkb::edbms
