#include "srci/srci.h"

#include <algorithm>
#include <set>

#include "gtest/gtest.h"
#include "srci/sse_index.h"
#include "srci/tdag.h"
#include "tests/test_util.h"

namespace prkb::srci {
namespace {

using edbms::CipherbaseEdbms;
using edbms::PlainPredicate;
using edbms::PlainTable;
using edbms::TupleId;
using edbms::Value;
using testutil::RandomTable;
using testutil::Sorted;

constexpr uint64_t kSeed = 2718;

// ------------------------------------------------------------------- TDAG

TEST(TdagTest, LevelsForCoversDomain) {
  EXPECT_EQ(Tdag::LevelsFor(2), 1);
  EXPECT_EQ(Tdag::LevelsFor(3), 2);
  EXPECT_EQ(Tdag::LevelsFor(1024), 10);
  EXPECT_EQ(Tdag::LevelsFor(1025), 11);
}

TEST(TdagTest, CoverNodesAllContainTheValue) {
  Tdag t(10);
  for (uint64_t v : {uint64_t{0}, uint64_t{1}, uint64_t{511}, uint64_t{512},
                     uint64_t{1023}}) {
    for (uint64_t id : t.Cover(v)) {
      uint64_t lo, hi;
      t.NodeRange(id, &lo, &hi);
      EXPECT_LE(lo, v);
      EXPECT_GE(hi, v);
    }
  }
}

TEST(TdagTest, BestCoverContainsRangeAndIsTight) {
  Tdag t(12);
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    const uint64_t a = rng.UniformInt(0, t.domain_size() - 1);
    const uint64_t b = rng.UniformInt(a, t.domain_size() - 1);
    const uint64_t id = t.BestCover(a, b);
    uint64_t lo, hi;
    t.NodeRange(id, &lo, &hi);
    ASSERT_LE(lo, a);
    ASSERT_GE(hi, b);
    // SRC tightness: the covering node is at most ~4x the range length.
    const uint64_t range_len = b - a + 1;
    const uint64_t node_len = hi - lo + 1;
    EXPECT_LE(node_len, 4 * range_len);
  }
}

TEST(TdagTest, BestCoverOfWholeDomainIsRoot) {
  Tdag t(8);
  const uint64_t id = t.BestCover(0, t.domain_size() - 1);
  uint64_t lo, hi;
  t.NodeRange(id, &lo, &hi);
  EXPECT_EQ(lo, 0u);
  EXPECT_EQ(hi, t.domain_size() - 1);
}

TEST(TdagTest, BestCoverIsAlwaysACoverNodeOfEveryRangeMember) {
  // Soundness link between Cover() and BestCover(): the best cover of [a,b]
  // must appear in Cover(v) for every v in [a,b] — otherwise a bulk-loaded
  // index would miss it.
  Tdag t(8);
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const uint64_t a = rng.UniformInt(0, t.domain_size() - 1);
    const uint64_t b =
        rng.UniformInt(a, std::min(t.domain_size() - 1, a + 40));
    const uint64_t id = t.BestCover(a, b);
    for (uint64_t v = a; v <= b; ++v) {
      const auto cover = t.Cover(v);
      ASSERT_NE(std::find(cover.begin(), cover.end(), id), cover.end())
          << "v=" << v << " a=" << a << " b=" << b;
    }
  }
}

// -------------------------------------------------------------------- SSE

TEST(SseIndexTest, RoundTripsPostingsInOrder) {
  SseIndex sse(std::vector<uint8_t>{1, 2, 3});
  sse.Put(42, 100);
  sse.Put(42, 200);
  sse.Put(7, 300);
  sse.Put(42, 400);
  EXPECT_EQ(sse.Retrieve(sse.MakeToken(42)),
            (std::vector<uint64_t>{100, 200, 400}));
  EXPECT_EQ(sse.Retrieve(sse.MakeToken(7)), (std::vector<uint64_t>{300}));
  EXPECT_TRUE(sse.Retrieve(sse.MakeToken(999)).empty());
}

TEST(SseIndexTest, StorageIsFlatAndOpaque) {
  SseIndex sse(std::vector<uint8_t>{9});
  for (uint64_t l = 0; l < 50; ++l) sse.Put(l, l * 11);
  EXPECT_EQ(sse.entries(), 50u);
  EXPECT_GT(sse.SizeBytes(), 50u * 16);
}

TEST(SseIndexTest, DifferentKeysProduceDisjointViews) {
  SseIndex a(std::vector<uint8_t>{1});
  SseIndex b(std::vector<uint8_t>{2});
  a.Put(5, 123);
  EXPECT_TRUE(b.Retrieve(b.MakeToken(5)).empty());
  // And a's token does not retrieve from b even for the same label.
  EXPECT_EQ(a.Retrieve(a.MakeToken(5)), (std::vector<uint64_t>{123}));
}

// ------------------------------------------------------------------ SRC-i

PlainPredicate BetweenPred(Value lo, Value hi) {
  return PlainPredicate{.attr = 0,
                        .kind = edbms::PredicateKind::kBetween,
                        .lo = lo,
                        .hi = hi};
}

TEST(LogSrcITest, QueryMatchesOracle) {
  Rng data_rng(1);
  PlainTable plain = RandomTable(500, 1, &data_rng, 0, 4000);
  auto db = CipherbaseEdbms::FromPlainTable(kSeed, plain);
  LogSrcI srci(&db, 0, 0, 4000);
  ASSERT_TRUE(srci.Build().ok());
  Rng qrng(2);
  for (int i = 0; i < 40; ++i) {
    const Value lo = qrng.UniformInt64(0, 4000);
    const Value hi = lo + qrng.UniformInt64(0, 500);
    const auto got = srci.Query(lo, hi);
    ASSERT_EQ(Sorted(got),
              testutil::OracleSelect(plain, BetweenPred(lo, hi)))
        << "lo=" << lo << " hi=" << hi;
  }
}

TEST(LogSrcITest, QueryClampsOutOfDomainRanges) {
  Rng data_rng(3);
  PlainTable plain = RandomTable(100, 1, &data_rng, 10, 100);
  auto db = CipherbaseEdbms::FromPlainTable(kSeed, plain);
  LogSrcI srci(&db, 0, 10, 100);
  ASSERT_TRUE(srci.Build().ok());
  EXPECT_EQ(srci.Query(-50, 500).size(), 100u);
  EXPECT_TRUE(srci.Query(200, 300).empty());
  EXPECT_TRUE(srci.Query(50, 40).empty());
}

TEST(LogSrcITest, CandidatesAreASupersetConfirmedExactly) {
  Rng data_rng(4);
  PlainTable plain = RandomTable(400, 1, &data_rng, 0, 2000);
  auto db = CipherbaseEdbms::FromPlainTable(kSeed, plain);
  LogSrcI srci(&db, 0, 0, 2000);
  ASSERT_TRUE(srci.Build().ok());
  const auto cand = srci.QueryCandidates(500, 700);
  const auto exact = srci.Confirm(cand, 500, 700);
  const auto oracle = testutil::OracleSelect(plain, BetweenPred(500, 700));
  EXPECT_EQ(Sorted(exact), oracle);
  EXPECT_GE(cand.size(), oracle.size());
  std::set<TupleId> cand_set(cand.begin(), cand.end());
  for (TupleId tid : oracle) EXPECT_TRUE(cand_set.contains(tid));
}

TEST(LogSrcITest, InsertedTuplesAreRetrieved) {
  Rng data_rng(5);
  PlainTable plain = RandomTable(200, 1, &data_rng, 0, 1000);
  auto db = CipherbaseEdbms::FromPlainTable(kSeed, plain);
  LogSrcI srci(&db, 0, 0, 1000);
  ASSERT_TRUE(srci.Build().ok());
  for (Value v : {Value{50}, Value{500}, Value{999}}) {
    const TupleId tid = db.Insert({v});
    ASSERT_TRUE(srci.InsertTuple(tid).ok());
    plain.AddRow({v});
  }
  Rng qrng(6);
  for (int i = 0; i < 20; ++i) {
    const Value lo = qrng.UniformInt64(0, 1000);
    const Value hi = lo + qrng.UniformInt64(0, 300);
    ASSERT_EQ(Sorted(srci.Query(lo, hi)),
              testutil::OracleSelect(plain, BetweenPred(lo, hi)));
  }
}

TEST(LogSrcITest, DeletedTuplesAreFilteredAtConfirmation) {
  Rng data_rng(7);
  PlainTable plain = RandomTable(100, 1, &data_rng, 0, 500);
  auto db = CipherbaseEdbms::FromPlainTable(kSeed, plain);
  LogSrcI srci(&db, 0, 0, 500);
  ASSERT_TRUE(srci.Build().ok());
  db.Delete(3);
  db.Delete(42);
  const auto got = srci.Query(0, 500);
  EXPECT_EQ(got.size(), 98u);
  for (TupleId tid : got) EXPECT_NE(tid, 3u);
}

TEST(LogSrcITest, CapacityExhaustionIsReported) {
  PlainTable plain(1);
  plain.AddRow({5});
  auto db = CipherbaseEdbms::FromPlainTable(kSeed, plain);
  LogSrcI srci(&db, 0, 0, 100);
  ASSERT_TRUE(srci.Build(/*capacity_factor=*/1.0).ok());
  // Capacity is max(16, 1); fill it up.
  Status last = Status::Ok();
  for (int i = 0; i < 40 && last.ok(); ++i) {
    const TupleId tid = db.Insert({7});
    last = srci.InsertTuple(tid);
  }
  EXPECT_EQ(last.code(), Status::Code::kOutOfRange);
}

TEST(LogSrcITest, DoubleBuildRejected) {
  PlainTable plain(1);
  plain.AddRow({1});
  auto db = CipherbaseEdbms::FromPlainTable(kSeed, plain);
  LogSrcI srci(&db, 0, 0, 10);
  ASSERT_TRUE(srci.Build().ok());
  EXPECT_EQ(srci.Build().code(), Status::Code::kNotSupported);
}

TEST(LogSrcITest, StorageFootprintDwarfsPrkbScale) {
  // O(n lg n) replicated postings: storage grows with n and sits orders of
  // magnitude above PRKB's ~4 bytes/tuple (the Table 3 contrast).
  Rng data_rng(8);
  PlainTable small = RandomTable(200, 1, &data_rng, 0, 10000);
  PlainTable big = RandomTable(400, 1, &data_rng, 0, 10000);
  auto db1 = CipherbaseEdbms::FromPlainTable(kSeed, small);
  auto db2 = CipherbaseEdbms::FromPlainTable(kSeed, big);
  LogSrcI s1(&db1, 0, 0, 10000), s2(&db2, 0, 0, 10000);
  ASSERT_TRUE(s1.Build().ok());
  ASSERT_TRUE(s2.Build().ok());
  EXPECT_GE(s2.SizeBytes(), s1.SizeBytes() * 3 / 2);
  EXPECT_GT(s1.SizeBytes(), 200u * 4 * 50);  // >50x PRKB's bytes/tuple
}

}  // namespace
}  // namespace prkb::srci
