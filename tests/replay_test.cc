// The paper's leakage argument, mechanised (Sec. 3.3): the PRKB is a pure
// function of what the SP observed from the QPF. We record a live run's
// transcript, rebuild the index against a ciphertext-free replay oracle that
// knows ONLY that transcript, and require the rebuilt index to be
// byte-identical.

#include <vector>

#include "common/serial.h"
#include "edbms/cipherbase_qpf.h"
#include "edbms/replay.h"
#include "gtest/gtest.h"
#include "prkb/selection.h"
#include "tests/test_util.h"
#include "workload/query_gen.h"

namespace prkb::core {
namespace {

using edbms::QpfTranscript;
using edbms::RecordingEdbms;
using edbms::ReplayEdbms;
using edbms::Trapdoor;

std::vector<uint8_t> Fingerprint(const Pop& pop) {
  Encoder enc;
  pop.EncodeTo(&enc);
  return enc.Release();
}

TEST(ReplayTest, IndexIsAPureFunctionOfTheTranscript) {
  Rng data_rng(1);
  const auto plain = testutil::RandomTable(400, 2, &data_rng, 0, 5000);
  auto db = edbms::CipherbaseEdbms::FromPlainTable(77, plain);

  // ---- Live run, recorded. ----
  QpfTranscript transcript;
  RecordingEdbms recorder(&db, &transcript);
  PrkbIndex live(&recorder, PrkbOptions{.seed = 9});
  live.EnableAttr(0);
  live.EnableAttr(1);

  std::vector<Trapdoor> issued;
  workload::QueryGen gen(0, 5000, 3);
  for (int i = 0; i < 60; ++i) {
    if (i % 4 == 0) {
      const auto lo = gen.rng()->UniformInt64(0, 4500);
      issued.push_back(db.MakeBetween(0, lo, lo + 400));
    } else {
      const auto p = gen.RandomComparison(
          static_cast<edbms::AttrId>(i % 2));
      issued.push_back(db.MakeComparison(p.attr, p.op, p.lo));
    }
    live.Select(issued.back());
  }
  ASSERT_FALSE(transcript.entries.empty());

  // ---- Replay run: no keys, no ciphertext — only the observed bits. ----
  ReplayEdbms replay(db.num_attrs(), db.num_rows(), transcript);
  PrkbIndex rebuilt(&replay, PrkbOptions{.seed = 9});
  rebuilt.EnableAttr(0);
  rebuilt.EnableAttr(1);
  for (const Trapdoor& td : issued) rebuilt.Select(td);

  EXPECT_EQ(replay.misses(), 0u);
  for (edbms::AttrId a = 0; a < 2; ++a) {
    EXPECT_EQ(Fingerprint(live.pop(a)), Fingerprint(rebuilt.pop(a)))
        << "attr " << a;
  }
}

TEST(ReplayTest, ReplayUsesNoMoreEvaluationsThanTheLiveRun) {
  Rng data_rng(2);
  const auto plain = testutil::RandomTable(200, 1, &data_rng, 0, 1000);
  auto db = edbms::CipherbaseEdbms::FromPlainTable(88, plain);
  QpfTranscript transcript;
  RecordingEdbms recorder(&db, &transcript);
  PrkbIndex live(&recorder, PrkbOptions{.seed = 5});
  live.EnableAttr(0);
  std::vector<Trapdoor> issued;
  workload::QueryGen gen(0, 1000, 4);
  for (int i = 0; i < 30; ++i) {
    const auto p = gen.RandomComparison(0);
    issued.push_back(db.MakeComparison(p.attr, p.op, p.lo));
    live.Select(issued.back());
  }

  ReplayEdbms replay(1, db.num_rows(), transcript);
  PrkbIndex rebuilt(&replay, PrkbOptions{.seed = 5});
  rebuilt.EnableAttr(0);
  for (const Trapdoor& td : issued) rebuilt.Select(td);
  EXPECT_EQ(replay.uses(), transcript.entries.size());
  EXPECT_EQ(replay.misses(), 0u);
}

TEST(ReplayTest, MissingTranscriptEntriesAreCounted) {
  QpfTranscript empty;
  ReplayEdbms replay(1, 10, empty);
  Trapdoor td;
  td.uid = 1;
  replay.Eval(td, 3);
  EXPECT_EQ(replay.misses(), 1u);
}

}  // namespace
}  // namespace prkb::core
