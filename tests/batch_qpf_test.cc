// Differential tests for the batched QPF pipeline: for identical query
// streams, the batched/parallel paths must be observationally identical to
// the paper's scalar model — same winner sets, same final POP chains, same
// total QPF-use counts — at every batch size, with batch_size = 1
// reproducing today's behaviour exactly.

#include <cstddef>
#include <vector>

#include "edbms/batch_scan.h"
#include "edbms/cipherbase_qpf.h"
#include "edbms/sdb_qpf.h"
#include "edbms/service_provider.h"
#include "gtest/gtest.h"
#include "prkb/selection.h"
#include "tests/test_util.h"
#include "workload/query_gen.h"

namespace prkb::core {
namespace {

using edbms::BatchPolicy;
using edbms::CipherbaseEdbms;
using edbms::CompareOp;
using edbms::PlainPredicate;
using edbms::PlainTable;
using edbms::SdbEdbms;
using edbms::SelectionStats;
using edbms::Trapdoor;
using edbms::TupleId;
using edbms::Value;
using testutil::OracleSelect;
using testutil::OracleSelectAll;
using testutil::RandomTable;
using testutil::Sorted;

constexpr uint64_t kSeed = 0xBA7C4;

// The batch sizes the issue pins down, including the degenerate scalar one
// and one far larger than any table in these tests (single-batch scans).
const size_t kBatchSizes[] = {1, 7, 64, 4096};

// Full structural identity of a chain: partition order and exact member
// order within each partition (both paths append tuples in member order, so
// even the ordering must survive batching).
std::vector<std::vector<TupleId>> ChainShape(const Pop& pop) {
  std::vector<std::vector<TupleId>> shape;
  shape.reserve(pop.k());
  for (size_t p = 0; p < pop.k(); ++p) shape.push_back(pop.members_at(p).ToVector());
  return shape;
}

// ------------------------------------------------------------ oracle level

TEST(EvalBatchTest, MatchesScalarBitsAndAccountsUses) {
  Rng rng(3);
  const PlainTable plain = RandomTable(200, 1, &rng);
  auto db = CipherbaseEdbms::FromPlainTable(kSeed, plain);
  const Trapdoor td = db.MakeComparison(0, CompareOp::kLt, 500);

  std::vector<TupleId> tids;
  for (TupleId t = 0; t < 200; ++t) tids.push_back(t);

  std::vector<bool> scalar;
  for (TupleId t : tids) scalar.push_back(db.Eval(td, t));
  const uint64_t uses_after_scalar = db.uses();
  EXPECT_EQ(uses_after_scalar, 200u);
  EXPECT_EQ(db.round_trips(), 200u);

  const BitVector bits = db.EvalBatch(td, tids);
  for (size_t i = 0; i < tids.size(); ++i) {
    EXPECT_EQ(bits.Get(i), scalar[i]) << "tuple " << tids[i];
  }
  // One batch: |tids| more uses, exactly one more round trip.
  EXPECT_EQ(db.uses(), uses_after_scalar + 200u);
  EXPECT_EQ(db.round_trips(), 201u);
  EXPECT_EQ(db.batches(), 1u);
}

TEST(EvalBatchTest, SdbBackendMatchesScalarAndCountsOneRound) {
  Rng rng(4);
  const PlainTable plain = RandomTable(150, 1, &rng);
  auto db = SdbEdbms::FromPlainTable(kSeed, plain);
  const Trapdoor td = db.MakeComparison(0, CompareOp::kGe, 300);

  std::vector<TupleId> tids;
  for (TupleId t = 0; t < 150; ++t) tids.push_back(t);
  std::vector<bool> scalar;
  for (TupleId t : tids) scalar.push_back(db.Eval(td, t));
  const uint64_t rounds_after_scalar = db.rounds();
  EXPECT_EQ(rounds_after_scalar, 150u);

  const BitVector bits = db.EvalBatch(td, tids);
  for (size_t i = 0; i < tids.size(); ++i) {
    EXPECT_EQ(bits.Get(i), scalar[i]);
  }
  EXPECT_EQ(db.rounds(), rounds_after_scalar + 1);  // one MPC round
}

TEST(ScanTuplesTest, AllPoliciesAgreeOnBitsAndUses) {
  Rng rng(5);
  const PlainTable plain = RandomTable(300, 1, &rng);
  auto db = CipherbaseEdbms::FromPlainTable(kSeed, plain);
  const Trapdoor td = db.MakeComparison(0, CompareOp::kGt, 444);
  std::vector<TupleId> tids;
  for (TupleId t = 0; t < 300; ++t) tids.push_back(t);

  db.ResetUses();
  const std::vector<uint8_t> ref = ScanTuples(&db, td, tids, BatchPolicy{});
  const uint64_t ref_uses = db.uses();
  EXPECT_EQ(ref_uses, 300u);

  for (size_t batch : kBatchSizes) {
    for (size_t workers : {size_t{1}, size_t{4}}) {
      db.ResetUses();
      const std::vector<uint8_t> got =
          ScanTuples(&db, td, tids, BatchPolicy{batch, workers});
      EXPECT_EQ(got, ref) << "batch=" << batch << " workers=" << workers;
      EXPECT_EQ(db.uses(), ref_uses)
          << "batch=" << batch << " workers=" << workers;
      if (batch > 1) {
        EXPECT_EQ(db.round_trips(), (tids.size() + batch - 1) / batch);
      }
    }
  }
}

// ------------------------------------------------------- full PRKB workload

struct Workbench {
  Workbench(const PlainTable& plain, PrkbOptions options)
      : db(CipherbaseEdbms::FromPlainTable(kSeed, plain)),
        index(&db, options) {
    index.EnableAttr(0);
    // attr 1 stays un-enabled so its queries exercise the no-index linear
    // scan fallback.
  }

  CipherbaseEdbms db;
  PrkbIndex index;
};

// Drives the same mixed single-predicate workload (comparisons, BETWEENs,
// no-index fallback scans, inserts, deletes) through one scalar-policy and
// one batched-policy instance, comparing every observable after every step.
void RunDifferentialWorkload(size_t batch_size, size_t workers) {
  SCOPED_TRACE(::testing::Message()
               << "batch_size=" << batch_size << " workers=" << workers);
  Rng data_rng(11);
  // Mutable: rows inserted during the workload are mirrored here so the
  // plaintext oracle stays the ground truth for the whole run.
  PlainTable plain = RandomTable(500, 2, &data_rng, 0, 2000);

  // Probes stay sequential on both sides: this suite pins the *scan* batch
  // pipeline against the scalar model, and the probe scheduler (a separate
  // axis, differential-tested in probe_sched_test.cc) would otherwise add
  // batch-size-dependent speculative prefetches to the QPF spend.
  PrkbOptions scalar_opts;
  scalar_opts.sequential_probes = true;
  PrkbOptions batched_opts;
  batched_opts.sequential_probes = true;
  batched_opts.batch_size = batch_size;
  batched_opts.scan_workers = workers;
  Workbench ref(plain, scalar_opts);
  Workbench bat(plain, batched_opts);

  workload::QueryGen gen(0, 2000, 77);
  Rng op_rng(99);
  for (int step = 0; step < 120; ++step) {
    const uint64_t dice = op_rng.UniformInt64(0, 9);
    SCOPED_TRACE(::testing::Message() << "step " << step << " dice " << dice);
    SelectionStats ref_stats, bat_stats;
    if (dice < 5) {
      // Comparison on the PRKB attribute.
      const PlainPredicate p = gen.RandomComparison(0);
      const auto r = ref.index.Select(
          ref.db.MakeComparison(p.attr, p.op, p.lo), &ref_stats);
      const auto b = bat.index.Select(
          bat.db.MakeComparison(p.attr, p.op, p.lo), &bat_stats);
      EXPECT_EQ(Sorted(r), Sorted(b));
      EXPECT_EQ(Sorted(b), OracleSelect(plain, p, &bat.db));
    } else if (dice < 7) {
      // BETWEEN on the PRKB attribute (Appendix A path).
      const Value lo = op_rng.UniformInt64(0, 1500);
      const Value hi = lo + op_rng.UniformInt64(0, 400);
      const auto r =
          ref.index.Select(ref.db.MakeBetween(0, lo, hi), &ref_stats);
      const auto b =
          bat.index.Select(bat.db.MakeBetween(0, lo, hi), &bat_stats);
      EXPECT_EQ(Sorted(r), Sorted(b));
    } else if (dice < 9) {
      // Comparison on the un-enabled attribute: no-index linear scan.
      const PlainPredicate p = gen.RandomComparison(1);
      const auto r = ref.index.Select(
          ref.db.MakeComparison(p.attr, p.op, p.lo), &ref_stats);
      const auto b = bat.index.Select(
          bat.db.MakeComparison(p.attr, p.op, p.lo), &bat_stats);
      EXPECT_EQ(Sorted(r), Sorted(b));
      EXPECT_EQ(Sorted(b), OracleSelect(plain, p, &bat.db));
    } else {
      // Mutations keep both instances in lockstep.
      const Value v0 = op_rng.UniformInt64(0, 2000);
      const Value v1 = op_rng.UniformInt64(0, 2000);
      const TupleId rt = ref.index.Insert({v0, v1}, &ref_stats);
      const TupleId bt = bat.index.Insert({v0, v1}, &bat_stats);
      plain.AddRow({v0, v1});
      EXPECT_EQ(rt, bt);
      if (op_rng.UniformInt64(0, 1) == 0) {
        ref.index.Delete(rt);
        bat.index.Delete(bt);
      }
    }
    // The paper's cost metric must not notice batching at any step.
    EXPECT_EQ(ref_stats.qpf_uses, bat_stats.qpf_uses);
    EXPECT_GE(ref_stats.qpf_round_trips, bat_stats.qpf_round_trips);
  }

  // Identical cumulative QPF-use counts and identical final chains.
  EXPECT_EQ(ref.db.uses(), bat.db.uses());
  EXPECT_EQ(ChainShape(ref.index.pop(0)), ChainShape(bat.index.pop(0)));
  if (batch_size == 1 && workers == 1) {
    // batch_size = 1 must *be* the legacy path: not a single batch call.
    EXPECT_EQ(bat.db.batches(), 0u);
    EXPECT_EQ(bat.db.round_trips(), bat.db.uses());
  }
}

TEST(BatchDifferentialTest, Batch1IsExactlyScalar) {
  RunDifferentialWorkload(1, 1);
}
TEST(BatchDifferentialTest, Batch7) { RunDifferentialWorkload(7, 1); }
TEST(BatchDifferentialTest, Batch64) { RunDifferentialWorkload(64, 1); }
TEST(BatchDifferentialTest, Batch4096SingleBatchPerScan) {
  RunDifferentialWorkload(4096, 1);
}
TEST(BatchDifferentialTest, Batch64ParallelWorkers) {
  RunDifferentialWorkload(64, 4);
}

// --------------------------------------------------------- conjunction path

TEST(BatchDifferentialTest, BaselineConjunctionSurvivorSetsMatchScalar) {
  Rng data_rng(21);
  const PlainTable plain = RandomTable(400, 3, &data_rng, 0, 1000);
  workload::QueryGen gen(0, 1000, 5);

  for (int round = 0; round < 10; ++round) {
    const auto box = gen.RandomBox({0, 1, 2}, 0.5);
    auto ref_db = CipherbaseEdbms::FromPlainTable(kSeed, plain);
    std::vector<Trapdoor> ref_tds;
    for (const auto& p : box) {
      ref_tds.push_back(ref_db.MakeComparison(p.attr, p.op, p.lo));
    }
    SelectionStats ref_stats;
    const auto ref_out = edbms::BaselineScanner(&ref_db).SelectConjunction(
        ref_tds, &ref_stats);

    for (size_t batch : kBatchSizes) {
      auto db = CipherbaseEdbms::FromPlainTable(kSeed, plain);
      std::vector<Trapdoor> tds;
      for (const auto& p : box) {
        tds.push_back(db.MakeComparison(p.attr, p.op, p.lo));
      }
      SelectionStats stats;
      const auto out = edbms::BaselineScanner(&db, BatchPolicy{batch, 1})
                           .SelectConjunction(tds, &stats);
      EXPECT_EQ(Sorted(out), Sorted(ref_out)) << "batch=" << batch;
      // Predicate i runs on exactly the survivors of 0..i-1 either way.
      EXPECT_EQ(stats.qpf_uses, ref_stats.qpf_uses) << "batch=" << batch;
    }
    EXPECT_EQ(Sorted(ref_out), OracleSelectAll(plain, box, &ref_db));
  }
}

// ------------------------------------------------------- multi-dimensional

// PRKB(MD) batches with chunk-granular early stop: results must stay exact
// for every batch size (QPF spend may differ by at most the bits already in
// flight within one chunk, so it is not asserted equal here).
TEST(BatchDifferentialTest, MdWinnersExactForAllBatchSizes) {
  Rng data_rng(31);
  const PlainTable plain = RandomTable(400, 2, &data_rng, 0, 1000);
  workload::QueryGen gen(0, 1000, 13);
  std::vector<std::vector<PlainPredicate>> boxes;
  for (int i = 0; i < 12; ++i) boxes.push_back(gen.RandomBox({0, 1}, 0.4));

  for (size_t batch : kBatchSizes) {
    SCOPED_TRACE(::testing::Message() << "batch=" << batch);
    auto db = CipherbaseEdbms::FromPlainTable(kSeed, plain);
    PrkbOptions opts;
    opts.batch_size = batch;
    PrkbIndex index(&db, opts);
    index.EnableAttr(0);
    index.EnableAttr(1);
    for (const auto& box : boxes) {
      std::vector<Trapdoor> tds;
      for (const auto& p : box) {
        tds.push_back(db.MakeComparison(p.attr, p.op, p.lo));
      }
      const auto got = index.SelectRangeMd(tds);
      EXPECT_EQ(Sorted(got), OracleSelectAll(plain, box, &db));
    }
  }
}

}  // namespace
}  // namespace prkb::core
