#include "attack/order_recovery.h"

#include <vector>

#include "edbms/cipherbase_qpf.h"
#include "gtest/gtest.h"
#include "prkb/selection.h"
#include "tests/test_util.h"
#include "workload/query_gen.h"

namespace prkb::attack {
namespace {

using edbms::CompareOp;
using edbms::PlainPredicate;
using edbms::Value;

TEST(OrderRecoveryTest, NoQueriesMeansOnePartition) {
  OrderRecovery rec({5, 1, 9, 1});
  EXPECT_EQ(rec.partitions(), 1u);
  EXPECT_EQ(rec.TotalOrderLength(), 3u);  // distinct {1, 5, 9}
  EXPECT_NEAR(rec.Rpoi(), 1.0 / 3.0, 1e-9);
}

TEST(OrderRecoveryTest, EachInequivalentCutAddsAPartition) {
  OrderRecovery rec({10, 20, 30, 40});
  rec.Observe(PlainPredicate{.attr = 0, .op = CompareOp::kLt, .lo = 25});
  EXPECT_EQ(rec.partitions(), 2u);
  rec.Observe(PlainPredicate{.attr = 0, .op = CompareOp::kLt, .lo = 15});
  EXPECT_EQ(rec.partitions(), 3u);
  rec.Observe(PlainPredicate{.attr = 0, .op = CompareOp::kLt, .lo = 35});
  EXPECT_EQ(rec.partitions(), 4u);
  EXPECT_DOUBLE_EQ(rec.Rpoi(), 1.0);
}

TEST(OrderRecoveryTest, EquivalentPredicatesAddNothing) {
  OrderRecovery rec({10, 20, 30, 40});
  rec.Observe(PlainPredicate{.attr = 0, .op = CompareOp::kLt, .lo = 25});
  // All of these induce the same {10,20} | {30,40} split (Def. 4.3).
  rec.Observe(PlainPredicate{.attr = 0, .op = CompareOp::kLt, .lo = 21});
  rec.Observe(PlainPredicate{.attr = 0, .op = CompareOp::kLe, .lo = 20});
  rec.Observe(PlainPredicate{.attr = 0, .op = CompareOp::kGt, .lo = 22});
  rec.Observe(PlainPredicate{.attr = 0, .op = CompareOp::kGe, .lo = 30});
  EXPECT_EQ(rec.partitions(), 2u);
}

TEST(OrderRecoveryTest, ExtremePredicatesAddNothing) {
  OrderRecovery rec({10, 20, 30});
  rec.Observe(PlainPredicate{.attr = 0, .op = CompareOp::kLt, .lo = 5});
  rec.Observe(PlainPredicate{.attr = 0, .op = CompareOp::kGt, .lo = 99});
  rec.Observe(PlainPredicate{.attr = 0, .op = CompareOp::kLe, .lo = 30});
  EXPECT_EQ(rec.partitions(), 1u);
}

TEST(OrderRecoveryTest, StrictVsNonStrictCutDifferOnDataPoints) {
  OrderRecovery rec({10, 20, 30});
  // 'X < 20' cuts {10} | {20, 30}; 'X <= 20' cuts {10, 20} | {30}.
  rec.Observe(PlainPredicate{.attr = 0, .op = CompareOp::kLt, .lo = 20});
  EXPECT_EQ(rec.partitions(), 2u);
  rec.Observe(PlainPredicate{.attr = 0, .op = CompareOp::kLe, .lo = 20});
  EXPECT_EQ(rec.partitions(), 3u);
}

TEST(OrderRecoveryTest, BetweenAddsUpToTwoCuts) {
  OrderRecovery rec({10, 20, 30, 40, 50});
  rec.ObserveRange(15, 35);  // cuts at 15 and 35
  EXPECT_EQ(rec.partitions(), 3u);
}

TEST(OrderRecoveryTest, RpoiGrowsSublinearlyOnDuplicatedData) {
  // Heavy duplication (small domain) means random queries quickly repeat
  // known cuts — the paper's Sec. 8.1 observation that RPOI gains slow down.
  Rng rng(1);
  std::vector<Value> column;
  for (int i = 0; i < 20000; ++i) {
    column.push_back(rng.UniformInt64(0, 2000));
  }
  OrderRecovery rec(column);
  workload::QueryGen gen(0, 2000, 2);
  double checkpoints[4] = {0, 0, 0, 0};  // after 1k, 2k, 3k, 4k queries
  for (int q = 1; q <= 4000; ++q) {
    rec.Observe(gen.RandomComparison(0));
    if (q % 1000 == 0) checkpoints[q / 1000 - 1] = rec.Rpoi();
  }
  // Monotone growth with strictly decreasing marginal gain per 1k queries
  // (coupon-collector saturation on the duplicated domain).
  EXPECT_LT(checkpoints[0], checkpoints[1]);
  EXPECT_LT(checkpoints[1], checkpoints[2]);
  EXPECT_LT(checkpoints[2], checkpoints[3]);
  EXPECT_LT(checkpoints[1] - checkpoints[0], checkpoints[0]);
  EXPECT_LT(checkpoints[2] - checkpoints[1], checkpoints[1] - checkpoints[0]);
  EXPECT_LT(checkpoints[3] - checkpoints[2], checkpoints[2] - checkpoints[1]);
}

// The meter must agree with an actual PRKB build observing the same queries.
TEST(OrderRecoveryTest, MatchesRealPrkbPartitionCount) {
  Rng data_rng(3);
  auto plain = testutil::RandomTable(500, 1, &data_rng, 0, 5000);
  auto db = edbms::CipherbaseEdbms::FromPlainTable(99, plain);
  core::PrkbIndex index(&db);
  index.EnableAttr(0);
  OrderRecovery rec(plain.column(0));

  workload::QueryGen gen(0, 5000, 4);
  for (int q = 0; q < 120; ++q) {
    const PlainPredicate p = gen.RandomComparison(0);
    index.Select(db.MakeComparison(p.attr, p.op, p.lo));
    rec.Observe(p);
    ASSERT_EQ(index.pop(0).k(), rec.partitions()) << "after query " << q;
  }
}

}  // namespace
}  // namespace prkb::attack
